(* Static-analysis + oblivious-transcript certifier driver.

     orq_lint lint   [--json] [paths...]   leakage lint (default path: lib)
     orq_lint lint   --expect-violations p self-test: fixture must trip rules
     orq_lint concur [--json] [paths...]   concurrency-discipline lint
     orq_lint concur --expect-violations p self-test: fixture must trip rules
     orq_lint certify [options]            predicted-vs-measured transcripts

   Exit codes (both lint passes and certify):
     0  clean — no violations / all pairs certified
     1  violations found (or, with --expect-violations, expected
        violations missing)
     2  usage error or unreadable input *)

module Lint = Orq_analysis.Lint
module Declass = Orq_analysis.Declass
module Concur = Orq_analysis.Concur
module Lockmap = Orq_analysis.Lockmap
module Certify = Orq_analysis.Certify

let say fmt = Format.printf (fmt ^^ "@.")

(* ---------------- JSON rendering (hand-rolled; no dependency) -------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_finding ~pass ~file ~line ~rule ~site ~detail =
  Printf.sprintf
    "{\"pass\":\"%s\",\"file\":\"%s\",\"line\":%d,\"rule\":\"%s\",\"site\":\"%s\",\"detail\":\"%s\"}"
    pass (json_escape file) line (json_escape rule) (json_escape site)
    (json_escape detail)

let emit_json ~pass items =
  print_string "{\"pass\":\"";
  print_string pass;
  print_string "\",\"violations\":[";
  print_string (String.concat "," items);
  Printf.printf "],\"count\":%d}\n" (List.length items)

(* ---------------- leakage lint ---------------- *)

let run_lint ~expect_violations ~json paths =
  let paths = if paths = [] then [ "lib" ] else paths in
  let findings =
    try Lint.lint_paths paths
    with Sys_error e ->
      say "orq_lint: %s" e;
      exit 2
  in
  let violations = Lint.violations findings in
  let leaky = Lint.leaky_findings findings in
  let allowed =
    List.filter
      (fun f -> match Lint.verdict f with Lint.Allowed _ -> true | _ -> false)
      findings
  in
  if expect_violations then begin
    (* self-test over the seeded fixture: both core rules must fire *)
    let has rule =
      List.exists (fun (f : Lint.finding) -> f.Lint.f_rule = rule) violations
    in
    List.iter (fun f -> say "seeded: %a" Lint.pp_finding f) violations;
    if has Declass.Declass && has Declass.Branch then begin
      say "lint self-test: fixture trips declass + branch rules (%d findings)"
        (List.length violations);
      exit 0
    end
    else begin
      say
        "lint self-test FAILED: expected both an unregistered open_ and a \
         branch-on-opened violation in %s"
        (String.concat " " paths);
      exit 1
    end
  end
  else if json then begin
    emit_json ~pass:"leakage"
      (List.map
         (fun (f : Lint.finding) ->
           json_finding ~pass:"leakage" ~file:f.Lint.f_file ~line:f.Lint.f_line
             ~rule:(Declass.rule_label f.Lint.f_rule)
             ~site:f.Lint.f_site ~detail:("uses " ^ f.Lint.f_callee))
         violations);
    exit (if violations = [] then 0 else 1)
  end
  else begin
    List.iter
      (fun (f : Lint.finding) ->
        match Lint.verdict f with
        | Lint.Leaky e ->
            say "leaky: %a  (%s)" Lint.pp_finding f e.Declass.d_why
        | _ -> ())
      leaky;
    List.iter (fun f -> say "VIOLATION: %a" Lint.pp_finding f) violations;
    say
      "lint: %d findings — %d audited declassifications, %d leaky-by-design \
       baseline sites, %d violations"
      (List.length findings) (List.length allowed) (List.length leaky)
      (List.length violations);
    exit (if violations = [] then 0 else 1)
  end

(* ---------------- concurrency lint ---------------- *)

let run_concur ~expect_violations ~json paths =
  let paths = if paths = [] then [ "lib" ] else paths in
  let violations =
    try Concur.lint_paths paths
    with Sys_error e ->
      say "orq_lint: %s" e;
      exit 2
  in
  if expect_violations then begin
    (* self-test over the seeded fixture: every rule must fire *)
    let has rule =
      List.exists
        (fun (f : Concur.finding) -> f.Concur.c_rule = rule)
        violations
    in
    List.iter (fun f -> say "seeded: %a" Concur.pp_finding f) violations;
    let missing =
      List.filter
        (fun r -> not (has r))
        [
          Lockmap.Registry;
          Lockmap.Order;
          Lockmap.Blocking;
          Lockmap.Shared;
          Lockmap.Finaliser;
        ]
    in
    if missing = [] then begin
      say
        "concur self-test: fixture trips all five rules (%d findings)"
        (List.length violations);
      exit 0
    end
    else begin
      say "concur self-test FAILED: rule(s) %s not tripped in %s"
        (String.concat ", " (List.map Lockmap.rule_label missing))
        (String.concat " " paths);
      exit 1
    end
  end
  else if json then begin
    emit_json ~pass:"concur"
      (List.map
         (fun (f : Concur.finding) ->
           json_finding ~pass:"concur" ~file:f.Concur.c_file
             ~line:f.Concur.c_line
             ~rule:(Lockmap.rule_label f.Concur.c_rule)
             ~site:f.Concur.c_site ~detail:f.Concur.c_detail)
         violations);
    exit (if violations = [] then 0 else 1)
  end
  else begin
    List.iter (fun f -> say "VIOLATION: %a" Concur.pp_finding f) violations;
    say "concur: %d registered locks, %d violations"
      (List.length Lockmap.locks) (List.length violations);
    exit (if violations = [] then 0 else 1)
  end

(* ---------------- certify ---------------- *)

(* Quick mode mirrors the round-fusion bench's representative subset, one
   protocol per security model class. *)
let quick_names = [ "Q1"; "Q4"; "Q6"; "Q13"; "Aspirin"; "Comorbidity" ]

let run_certify ~quick ~sf ~other_n ~out =
  let names = if quick then Some quick_names else None in
  let kinds =
    if quick then [ Orq_proto.Ctx.Sh_dm; Orq_proto.Ctx.Mal_hm ]
    else Orq_proto.Ctx.all_kinds
  in
  let certs = Certify.run_suite ~sf ~other_n ~kinds ?names () in
  List.iter (fun c -> say "%a" Certify.pp_cert c) certs;
  let ok = Certify.all_ok certs in
  let oc = open_out out in
  output_string oc (Certify.report_json ~sf ~other_n certs);
  close_out oc;
  say "wrote %s" out;
  let exact =
    List.length (List.filter (fun c -> c.Certify.c_mode = Certify.Exact) certs)
  in
  say
    "certify: %d/%d (query, protocol) pairs certified (%d exact, %d \
     modulo-quicksort)%s"
    (List.length (List.filter (fun c -> c.Certify.c_ok) certs))
    (List.length certs) exact
    (List.length certs - exact)
    (if ok then "" else " — TRANSCRIPT DEPENDS ON SECRET DATA");
  exit (if ok then 0 else 1)

(* ---------------- arg parsing ---------------- *)

let usage () =
  say
    "usage: orq_lint [lint [--json] [--expect-violations] [paths...]]\n\
    \       orq_lint concur [--json] [--expect-violations] [paths...]\n\
    \       orq_lint certify [--quick] [--sf F] [--n N] [--out FILE]\n\
     exit codes: 0 clean, 1 violations, 2 usage/input error";
  exit 2

let lint_flags rest =
  let expect = List.mem "--expect-violations" rest in
  let json = List.mem "--json" rest in
  let paths =
    List.filter (fun a -> a <> "--expect-violations" && a <> "--json") rest
  in
  if List.exists (fun a -> String.length a > 0 && a.[0] = '-') paths then
    usage ();
  (expect, json, paths)

let () =
  match Array.to_list Sys.argv with
  | _ :: "certify" :: rest ->
      let quick = ref (Sys.getenv_opt "ORQ_CERTIFY_QUICK" <> None) in
      let sf = ref 0.0002 and n = ref 400 and out = ref "CERTIFICATE.json" in
      let rec parse = function
        | [] -> ()
        | "--quick" :: r -> quick := true; parse r
        | "--sf" :: v :: r -> sf := float_of_string v; parse r
        | "--n" :: v :: r -> n := int_of_string v; parse r
        | "--out" :: v :: r -> out := v; parse r
        | _ -> usage ()
      in
      parse rest;
      run_certify ~quick:!quick ~sf:!sf ~other_n:!n ~out:!out
  | _ :: "concur" :: rest -> (
      match rest with
      | "--help" :: _ | "-h" :: _ -> usage ()
      | _ ->
          let expect, json, paths = lint_flags rest in
          run_concur ~expect_violations:expect ~json paths)
  | argv -> (
      let rest =
        match argv with _ :: "lint" :: r -> r | _ :: r -> r | [] -> []
      in
      match rest with
      | "--help" :: _ | "-h" :: _ -> usage ()
      | _ ->
          let expect, json, paths = lint_flags rest in
          run_lint ~expect_violations:expect ~json paths)
