(* tpch_datagen — dump the deterministic TPC-H-shaped dataset as CSV files
   (one per table), so data owners in a real deployment could inspect what
   the generator produces and external tools can cross-check query results.

   Usage: tpch_datagen [SF] [OUTDIR]   (defaults: 0.001 ./tpch-data) *)

open Orq_workloads
module P = Orq_plaintext.Ptable

let dump_table dir name (t : P.t) =
  let path = Filename.concat dir (name ^ ".csv") in
  let oc = open_out path in
  output_string oc (String.concat "," (P.schema t));
  output_char oc '\n';
  List.iter
    (fun row ->
      output_string oc (String.concat "," (List.map string_of_int row));
      output_char oc '\n')
    t.P.rows;
  close_out oc;
  Printf.printf "  %-12s %6d rows -> %s\n" name (P.nrows t) path

let () =
  let sf =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 0.001
  in
  let dir = if Array.length Sys.argv > 2 then Sys.argv.(2) else "tpch-data" in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  Printf.printf "generating TPC-H data at SF=%g into %s/\n" sf dir;
  let db = Tpch_gen.generate sf in
  dump_table dir "region" db.Tpch_gen.region;
  dump_table dir "nation" db.Tpch_gen.nation;
  dump_table dir "supplier" db.Tpch_gen.supplier;
  dump_table dir "customer" db.Tpch_gen.customer;
  dump_table dir "part" db.Tpch_gen.part;
  dump_table dir "partsupp" db.Tpch_gen.partsupp;
  dump_table dir "orders" db.Tpch_gen.orders;
  dump_table dir "lineitem" db.Tpch_gen.lineitem;
  Printf.printf "total input rows: %d\n" (Tpch_gen.total_rows db)
