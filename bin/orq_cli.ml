(* orq_cli — run any registered query of the workload suite under a chosen
   MPC protocol and deployment profile, print the (opened) result and the
   protocol costs, and optionally validate against the plaintext engine.

   Examples:
     orq_cli --list
     orq_cli -q Q3 -p sh-hm --sf 0.001
     orq_cli -q Comorbidity -p mal-hm -n 1000 --validate
     orq_cli -q Q21 -p sh-dm --profile wan
     orq_cli --sql "SELECT o_orderpriority, COUNT(*) AS n FROM orders \
                    GROUP BY o_orderpriority" *)

open Orq_proto
open Orq_workloads
module Netsim = Orq_net.Netsim

type runnable = {
  r_name : string;
  r_run : Ctx.t -> float -> int -> Orq_core.Table.t * (unit -> bool);
}

let runnables : runnable list =
  List.map
    (fun (q : Tpch.query) ->
      {
        r_name = q.Tpch.name;
        r_run =
          (fun ctx sf _n ->
            let plain = Tpch_gen.generate sf in
            let mdb = Tpch_gen.share ctx plain in
            ( q.Tpch.run mdb,
              fun () ->
                let ok, _, _ = Tpch.validate q plain mdb in
                ok ));
      })
    Tpch.all
  @ List.map
      (fun (q : Other_queries.query) ->
        {
          r_name = q.Other_queries.name;
          r_run =
            (fun ctx _sf n ->
              let plain = Other_gen.generate n in
              let mdb = Other_gen.share ctx plain in
              ( q.Other_queries.run mdb,
                fun () ->
                  let ok, _, _ = Other_queries.validate q plain mdb in
                  ok ));
        })
      Other_queries.all
  @ List.map
      (fun (q : Secretflow_queries.query) ->
        {
          r_name = q.Secretflow_queries.name;
          r_run =
            (fun ctx sf _n ->
              let plain = Tpch_gen.generate sf in
              let mdb = Tpch_gen.share ctx plain in
              ( q.Secretflow_queries.run mdb,
                fun () ->
                  let ok, _, _ = Secretflow_queries.validate q plain mdb in
                  ok ));
        })
      Secretflow_queries.all

let protocol_of_string = function
  | "sh-dm" | "2pc" -> Ok Ctx.Sh_dm
  | "sh-hm" | "3pc" -> Ok Ctx.Sh_hm
  | "mal-hm" | "4pc" -> Ok Ctx.Mal_hm
  | s -> Error (`Msg ("unknown protocol " ^ s ^ " (sh-dm|sh-hm|mal-hm)"))

let profile_of_string = function
  | "lan" -> Ok Netsim.lan
  | "wan" -> Ok Netsim.wan
  | "geo" -> Ok Netsim.geo
  | s -> Error (`Msg ("unknown profile " ^ s ^ " (lan|wan|geo)"))

(* --sql: run an ad-hoc SQL query against the TPC-H catalog through the
   automatic planner (lib/planner). *)
let tpch_catalog (db : Tpch_gen.mpc) : Orq_planner.Sql.catalog =
 fun name ->
  match name with
  | "region" -> (db.Tpch_gen.m_region, [ [ "r_regionkey" ] ])
  | "nation" -> (db.Tpch_gen.m_nation, [ [ "n_nationkey" ] ])
  | "supplier" -> (db.Tpch_gen.m_supplier, [ [ "s_suppkey" ] ])
  | "customer" -> (db.Tpch_gen.m_customer, [ [ "c_custkey" ] ])
  | "part" -> (db.Tpch_gen.m_part, [ [ "p_partkey" ] ])
  | "partsupp" -> (db.Tpch_gen.m_partsupp, [ [ "ps_partkey"; "ps_suppkey" ] ])
  | "orders" -> (db.Tpch_gen.m_orders, [ [ "o_orderkey" ] ])
  | "lineitem" -> (db.Tpch_gen.m_lineitem, [])
  | _ -> raise Not_found

let run_sql sql proto sf profile =
  let ctx = Ctx.create proto in
  let db = Tpch_gen.share ctx (Tpch_gen.generate sf) in
  Printf.printf "planning and running under %s...\n%!" (Ctx.kind_label proto);
  match Orq_planner.Sql.run (tpch_catalog db) sql with
  | exception Orq_planner.Sql.Parse_error msg ->
      Printf.eprintf "SQL error: %s\n" msg;
      1
  | t, cols, fallbacks ->
      let opened = Orq_core.Table.reveal t in
      let nrows =
        match opened with (_, c) :: _ -> Array.length c | [] -> 0
      in
      Printf.printf "result (%d rows):\n  %s\n" nrows (String.concat " | " cols);
      for i = 0 to min (nrows - 1) 19 do
        Printf.printf "  %s\n"
          (String.concat " | "
             (List.map
                (fun c ->
                  match List.assoc_opt c opened with
                  | Some v -> string_of_int v.(i)
                  | None -> "-")
                cols))
      done;
      if fallbacks > 0 then
        Printf.printf
          "note: %d join(s) were outside the tractable class and took the \
           quadratic oblivious fallback\n"
          fallbacks;
      let tally = Orq_net.Comm.snapshot ctx.Ctx.comm in
      Printf.printf "costs: %d rounds | %.2f MiB | estimated %s: %.2fs\n"
        tally.Orq_net.Comm.t_rounds
        (float_of_int tally.Orq_net.Comm.t_bits /. 8. /. 1024. /. 1024.)
        profile.Netsim.label
        (Netsim.network_time profile tally);
      0

let run_registered query proto sf n profile validate =
    match List.find_opt (fun r -> r.r_name = query) runnables with
    | None ->
        Printf.eprintf "unknown query %s (try --list)\n" query;
        1
    | Some r ->
        let ctx = Ctx.create proto in
        Printf.printf "running %s under %s (%d parties)...\n%!" query
          (Ctx.kind_label proto) ctx.Ctx.parties;
        let t0 = Unix.gettimeofday () in
        let result, check = r.r_run ctx sf n in
        let compute = Unix.gettimeofday () -. t0 in
        let opened = Orq_core.Table.reveal result in
        let tally = Orq_net.Comm.snapshot ctx.Ctx.comm in
        let pre = Orq_net.Comm.snapshot ctx.Ctx.preproc in
        let nrows =
          match opened with (_, c) :: _ -> Array.length c | [] -> 0
        in
        Printf.printf "\nresult (%d rows, opened to the analyst):\n" nrows;
        let names = List.map fst opened in
        Printf.printf "  %s\n" (String.concat " | " names);
        for i = 0 to min (nrows - 1) 19 do
          Printf.printf "  %s\n"
            (String.concat " | "
               (List.map (fun (_, c) -> string_of_int c.(i)) opened))
        done;
        if nrows > 20 then Printf.printf "  ... (%d more)\n" (nrows - 20);
        Printf.printf
          "\ncosts: %d online rounds | %.2f MiB online | %.2f MiB preprocessing\n"
          tally.Orq_net.Comm.t_rounds
          (float_of_int tally.Orq_net.Comm.t_bits /. 8. /. 1024. /. 1024.)
          (float_of_int pre.Orq_net.Comm.t_bits /. 8. /. 1024. /. 1024.);
        Printf.printf "simulation compute: %.2fs | estimated %s end-to-end: %.2fs\n"
          compute profile.Netsim.label
          (compute +. Netsim.network_time profile tally);
        if validate then
          if check () then begin
            print_endline "validation against plaintext engine: OK";
            0
          end
          else begin
            print_endline "validation against plaintext engine: MISMATCH";
            1
          end
        else 0


let run list_only query sql proto sf n profile validate =
  if list_only then begin
    print_endline "available queries:";
    List.iter (fun r -> Printf.printf "  %s\n" r.r_name) runnables;
    0
  end
  else
    match sql with
    | Some sql -> run_sql sql proto sf profile
    | None -> run_registered query proto sf n profile validate

open Cmdliner

let list_t =
  Arg.(value & flag & info [ "list" ] ~doc:"List available queries and exit.")

let query_t =
  Arg.(
    value
    & opt string "Q3"
    & info [ "q"; "query" ] ~docv:"NAME" ~doc:"Query to run (see --list).")

let sql_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "sql" ] ~docv:"QUERY"
        ~doc:
          "Run an ad-hoc SQL query against the TPC-H catalog through the \
           automatic planner, e.g. \"SELECT o_orderpriority, COUNT(*) AS n \
           FROM orders GROUP BY o_orderpriority\".")

let proto_t =
  Arg.(
    value
    & opt (conv (protocol_of_string, fun ppf k -> Fmt.string ppf (Ctx.kind_label k))) Ctx.Sh_hm
    & info [ "p"; "protocol" ] ~docv:"PROTO"
        ~doc:"MPC protocol: sh-dm (2PC), sh-hm (3PC) or mal-hm (4PC).")

let sf_t =
  Arg.(
    value
    & opt float 0.001
    & info [ "sf" ] ~docv:"SF" ~doc:"TPC-H scale factor (micro scale).")

let n_t =
  Arg.(
    value
    & opt int 800
    & info [ "n" ] ~docv:"N" ~doc:"Rows for the non-TPC-H datasets.")

let profile_t =
  Arg.(
    value
    & opt (conv (profile_of_string, fun ppf p -> Fmt.string ppf p.Netsim.label)) Netsim.lan
    & info [ "profile" ] ~docv:"ENV" ~doc:"Network model: lan, wan or geo.")

let validate_t =
  Arg.(
    value & flag
    & info [ "validate" ] ~doc:"Check the result against the plaintext engine.")

let domains_t =
  Arg.(
    value & opt int 0
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "Data-parallel domains for local vector work (default: the \
           ORQ_DOMAINS environment variable, else 1).")

let run_with_domains domains list_only query sql proto sf n profile validate =
  if domains > 0 then Orq_util.Parallel.set_num_domains domains;
  run list_only query sql proto sf n profile validate

let cmd =
  let doc = "run ORQ oblivious relational queries under MPC" in
  Cmd.v
    (Cmd.info "orq_cli" ~doc)
    Term.(
      const run_with_domains $ domains_t $ list_t $ query_t $ sql_t $ proto_t
      $ sf_t $ n_t $ profile_t $ validate_t)

let () =
  Orq_util.Parallel.init_from_env ();
  exit (Cmd.eval' cmd)
