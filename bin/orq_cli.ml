(* orq_cli — run ORQ oblivious relational queries under MPC.

   Three modes:
     - the default (also `orq_cli run`): one-shot batch execution of a
       registered workload query or ad-hoc SQL, as in the paper's §5;
     - `orq_cli serve`: long-running query service on a Unix-domain
       socket (framed Wire protocol, session scheduler, plan cache);
     - `orq_cli query`: client for a running service.

   Examples:
     orq_cli --list
     orq_cli -q Q3 -p sh-hm --sf 0.001
     orq_cli -q Comorbidity -p mal-hm -n 1000 --validate
     orq_cli --sql "SELECT o_orderpriority, COUNT(*) AS n FROM orders \
                    GROUP BY o_orderpriority"
     orq_cli serve --socket /tmp/orq.sock --sf 0.001 &
     orq_cli query --socket /tmp/orq.sock -p sh-hm \
       "SELECT o_orderpriority, COUNT(*) AS n FROM orders GROUP BY o_orderpriority" *)

open Orq_proto
open Orq_workloads
module Netsim = Orq_net.Netsim
module Wire = Orq_net.Wire
module Transport = Orq_net.Transport
module Service = Orq_service.Service
module Client = Orq_service.Client
module Cluster = Orq_party.Cluster

(* Cost lines name the round-counting mode so logs from fused and
   unfused (ORQ_NO_FUSION=1) runs are distinguishable side by side. *)
let rounds_label () =
  if Mpc.fusion_enabled () then "rounds (fused)" else "rounds (unfused)"

(* Out-of-core accounting for batch runs: printed only when streaming is
   on, since otherwise share vectors are untracked monolithic arrays. *)
let print_local_memory () =
  if Orq_util.Chunkvec.streaming_enabled () then begin
    let m = Orq_util.Chunkvec.stats () in
    Printf.printf
      "memory: peak %.2f MiB chunked (budget %s) | %d spills, %.2f MiB to \
       disk | rss peak %d KiB\n"
      (float_of_int m.Orq_util.Chunkvec.st_peak_live_bytes /. 1024. /. 1024.)
      (match Orq_util.Chunkvec.budget () with
      | 0 -> "unlimited"
      | b -> Printf.sprintf "%.2f MiB" (float_of_int b /. 1024. /. 1024.))
      m.Orq_util.Chunkvec.st_spills
      (float_of_int m.Orq_util.Chunkvec.st_spilled_bytes /. 1024. /. 1024.)
      (Orq_util.Chunkvec.rss_peak_kb ())
  end

type runnable = {
  r_name : string;
  r_run : Ctx.t -> float -> int -> Orq_core.Table.t * (unit -> bool);
}

let runnables : runnable list =
  List.map
    (fun (q : Tpch.query) ->
      {
        r_name = q.Tpch.name;
        r_run =
          (fun ctx sf _n ->
            let plain = Tpch_gen.generate sf in
            let mdb = Tpch_gen.share ctx plain in
            ( q.Tpch.run mdb,
              fun () ->
                let ok, _, _ = Tpch.validate q plain mdb in
                ok ));
      })
    Tpch.all
  @ List.map
      (fun (q : Other_queries.query) ->
        {
          r_name = q.Other_queries.name;
          r_run =
            (fun ctx _sf n ->
              let plain = Other_gen.generate n in
              let mdb = Other_gen.share ctx plain in
              ( q.Other_queries.run mdb,
                fun () ->
                  let ok, _, _ = Other_queries.validate q plain mdb in
                  ok ));
        })
      Other_queries.all
  @ List.map
      (fun (q : Secretflow_queries.query) ->
        {
          r_name = q.Secretflow_queries.name;
          r_run =
            (fun ctx sf _n ->
              let plain = Tpch_gen.generate sf in
              let mdb = Tpch_gen.share ctx plain in
              ( q.Secretflow_queries.run mdb,
                fun () ->
                  let ok, _, _ = Secretflow_queries.validate q plain mdb in
                  ok ));
        })
      Secretflow_queries.all

let protocol_of_string s =
  match Service.proto_of_label s with
  | Ok k -> Ok k
  | Error msg -> Error (`Msg msg)

let profile_of_string = function
  | "lan" -> Ok Netsim.lan
  | "wan" -> Ok Netsim.wan
  | "geo" -> Ok Netsim.geo
  | s -> Error (`Msg ("unknown profile " ^ s ^ " (lan|wan|geo)"))

(* ORQ_TRACE=1: record the structural communication transcript while the
   query runs and dump it event-by-event afterwards — the same recorder the
   transcript certifier (orq_lint certify) compares against the cost model. *)
let trace_requested =
  match Sys.getenv_opt "ORQ_TRACE" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let start_trace (ctx : Ctx.t) =
  if trace_requested then Orq_net.Comm.start_recording ctx.Ctx.comm

let dump_trace (ctx : Ctx.t) =
  if trace_requested then begin
    let tr = Orq_net.Comm.transcript ctx.Ctx.comm in
    let dropped = Orq_net.Comm.dropped_events ctx.Ctx.comm in
    Printf.printf "\ntranscript (%d events%s):\n" (Array.length tr)
      (if dropped > 0 then Printf.sprintf "; oldest %d dropped" dropped else "");
    Array.iteri
      (fun i e -> Format.printf "  %6d  %a@." i Orq_net.Comm.pp_event e)
      tr;
    Orq_net.Comm.stop_recording ctx.Ctx.comm
  end

(* --sql: run an ad-hoc SQL query against the TPC-H catalog through the
   automatic planner (lib/planner). *)
let run_sql sql proto sf profile =
  let ctx = Ctx.create proto in
  start_trace ctx;
  let db = Tpch_gen.share ctx (Tpch_gen.generate sf) in
  Printf.printf "planning and running under %s...\n%!" (Ctx.kind_label proto);
  match Orq_planner.Sql.run (Tpch_gen.catalog db) sql with
  | exception Orq_planner.Sql.Parse_error msg ->
      Printf.eprintf "SQL error: %s\n" msg;
      1
  | t, cols, fallbacks ->
      let opened = Orq_core.Table.reveal t in
      let nrows =
        match opened with (_, c) :: _ -> Array.length c | [] -> 0
      in
      Printf.printf "result (%d rows):\n  %s\n" nrows (String.concat " | " cols);
      for i = 0 to min (nrows - 1) 19 do
        Printf.printf "  %s\n"
          (String.concat " | "
             (List.map
                (fun c ->
                  match List.assoc_opt c opened with
                  | Some v -> string_of_int v.(i)
                  | None -> "-")
                cols))
      done;
      if fallbacks > 0 then
        Printf.printf
          "note: %d join(s) were outside the tractable class and took the \
           quadratic oblivious fallback\n"
          fallbacks;
      let tally = Orq_net.Comm.snapshot ctx.Ctx.comm in
      Printf.printf "costs: %d %s | %.2f MiB | estimated %s: %.2fs\n"
        tally.Orq_net.Comm.t_rounds (rounds_label ())
        (float_of_int tally.Orq_net.Comm.t_bits /. 8. /. 1024. /. 1024.)
        profile.Netsim.label
        (Netsim.network_time profile tally);
      print_local_memory ();
      dump_trace ctx;
      0

let run_registered query proto sf n profile validate =
    match List.find_opt (fun r -> r.r_name = query) runnables with
    | None ->
        Printf.eprintf "unknown query %s (try --list)\n" query;
        1
    | Some r ->
        let ctx = Ctx.create proto in
        start_trace ctx;
        Printf.printf "running %s under %s (%d parties)...\n%!" query
          (Ctx.kind_label proto) ctx.Ctx.parties;
        let t0 = Unix.gettimeofday () in
        let result, check = r.r_run ctx sf n in
        let compute = Unix.gettimeofday () -. t0 in
        let opened = Orq_core.Table.reveal result in
        let tally = Orq_net.Comm.snapshot ctx.Ctx.comm in
        let pre = Orq_net.Comm.snapshot ctx.Ctx.preproc in
        let nrows =
          match opened with (_, c) :: _ -> Array.length c | [] -> 0
        in
        Printf.printf "\nresult (%d rows, opened to the analyst):\n" nrows;
        let names = List.map fst opened in
        Printf.printf "  %s\n" (String.concat " | " names);
        for i = 0 to min (nrows - 1) 19 do
          Printf.printf "  %s\n"
            (String.concat " | "
               (List.map (fun (_, c) -> string_of_int c.(i)) opened))
        done;
        if nrows > 20 then Printf.printf "  ... (%d more)\n" (nrows - 20);
        Printf.printf
          "\ncosts: %d online %s | %.2f MiB online | %.2f MiB preprocessing\n"
          tally.Orq_net.Comm.t_rounds (rounds_label ())
          (float_of_int tally.Orq_net.Comm.t_bits /. 8. /. 1024. /. 1024.)
          (float_of_int pre.Orq_net.Comm.t_bits /. 8. /. 1024. /. 1024.);
        Printf.printf "simulation compute: %.2fs | estimated %s end-to-end: %.2fs\n"
          compute profile.Netsim.label
          (compute +. Netsim.network_time profile tally);
        print_local_memory ();
        dump_trace ctx;
        if validate then
          if check () then begin
            print_endline "validation against plaintext engine: OK";
            0
          end
          else begin
            print_endline "validation against plaintext engine: MISMATCH";
            1
          end
        else 0


let run list_only query sql proto sf n profile validate =
  if list_only then begin
    print_endline "available queries:";
    List.iter (fun r -> Printf.printf "  %s\n" r.r_name) runnables;
    0
  end
  else
    match sql with
    | Some sql -> run_sql sql proto sf profile
    | None -> run_registered query proto sf n profile validate

(* ------------------------------------------------------------------ *)
(* serve / query: the long-running service and its client              *)
(* ------------------------------------------------------------------ *)

let serve socket sf seed workers pace_label max_jobs max_rows cache_cap verbose
    =
  match Service.pace_of_label (String.lowercase_ascii pace_label) with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Ok pace ->
      let defaults = Service.default_config () in
      let cfg =
        {
          Service.socket_path = socket;
          sf;
          seed;
          workers = max 1 workers;
          max_jobs;
          max_rows;
          cache_capacity = cache_cap;
          admit_timeout_s = defaults.Service.admit_timeout_s;
          drain_timeout_s = defaults.Service.drain_timeout_s;
          pace;
          prewarm = defaults.Service.prewarm;
          verbose;
          job_hook = None;
        }
      in
      let t = Service.start cfg in
      Printf.printf
        "orq service listening on %s (sf=%g, workers=%d, max-jobs=%d, \
         max-rows=%d, cache=%d%s)\n\
         stop with Ctrl-C; query with: orq_cli query --socket %s \"SELECT \
         ...\"\n\
         %!"
        socket sf cfg.Service.workers max_jobs max_rows cache_cap
        (match pace with
        | Some p -> ", pace=" ^ p.Orq_net.Netsim.label
        | None -> "")
        socket;
      Service.wait t;
      0

(* ------------------------------------------------------------------ *)
(* party: one process of a real multi-party cluster                    *)
(* ------------------------------------------------------------------ *)

let print_result label (r : Wire.query_result) =
  let n = List.length r.Wire.r_rows in
  Printf.printf "result (%d rows%s, under %s):\n  %s\n" n
    (if r.Wire.r_truncated then ", truncated" else "")
    label
    (String.concat " | " r.Wire.r_cols);
  List.iteri
    (fun i row ->
      if i < 20 then
        Printf.printf "  %s\n"
          (String.concat " | " (List.map string_of_int row)))
    r.Wire.r_rows;
  if n > 20 then Printf.printf "  ... (%d more)\n" (n - 20)

let print_net_stats (s : Wire.net_stats) =
  Printf.printf
    "wire: %d parties | %d exchanges (%d refunded) | %.2f MiB measured \
     payload | %d messages | %d frames | %.3fs wall\n"
    s.Wire.n_parties s.Wire.n_exchanges s.Wire.n_refunds
    (float_of_int s.Wire.n_payload_bytes /. 1024. /. 1024.)
    s.Wire.n_messages s.Wire.n_frames s.Wire.n_wall_s

let local_demo_queries =
  [
    "SELECT o_orderpriority, COUNT(*) AS n FROM orders GROUP BY \
     o_orderpriority";
    "SELECT n_regionkey, COUNT(*) AS n FROM nation GROUP BY n_regionkey";
  ]

(* --local: fork a full cluster on loopback, run a few demo queries as a
   client, print results and measured wire traffic, shut down. The
   three-terminal workflow (README) does the same by hand. *)
let party_local proto seed sf max_rows verbose =
  let label = String.lowercase_ascii (Ctx.kind_label proto) in
  Printf.printf "launching a local %d-party %s cluster on loopback TCP...\n%!"
    (Ctx.parties_of proto) label;
  let l = Cluster.launch_local ~seed ~sf ~max_rows ~verbose proto in
  Fun.protect ~finally:(fun () -> Cluster.shutdown_local l) @@ fun () ->
  let c =
    Client.connect ~retry_ms:10_000 (Transport.format_addr l.Cluster.l_client)
  in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  match Client.set_protocol c label with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Ok _ ->
      Printf.printf "cluster up at %s\n%!"
        (Transport.format_addr l.Cluster.l_client);
      let rc = ref 0 in
      List.iter
        (fun sql ->
          Printf.printf "\n> %s\n%!" sql;
          match Client.query c sql with
          | Error (code, msg) ->
              Printf.eprintf "error (%s): %s\n" (Wire.err_label code) msg;
              rc := 1
          | Ok r -> (
              print_result label r;
              Printf.printf "metered: %d rounds | %d bits | %d messages\n"
                r.Wire.r_tally.Orq_net.Comm.t_rounds
                r.Wire.r_tally.Orq_net.Comm.t_bits
                r.Wire.r_tally.Orq_net.Comm.t_messages;
              match Client.net_stats c with
              | Ok s -> print_net_stats s
              | Error msg -> Printf.eprintf "net-stats: %s\n" msg))
        local_demo_queries;
      !rc

let party_run id listen_s peers_s client_s proto seed sf max_rows verbose
    local =
  if local then party_local proto seed sf max_rows verbose
  else
    let parse what s =
      match Transport.parse_addr s with
      | Ok a -> a
      | Error m ->
          Printf.eprintf "bad %s address: %s\n" what m;
          exit 2
    in
    let peers =
      match peers_s with
      | [] ->
          Printf.eprintf
            "a party needs --peers with one mesh address per party (or \
             --local for a self-contained demo cluster)\n";
          exit 2
      | l -> Array.of_list (List.map (parse "peer") l)
    in
    let cfg =
      {
        (Cluster.default_config ~party:id ~proto ~peers ()) with
        Cluster.seed;
        sf;
        max_rows;
        verbose;
        listen = Option.map (parse "listen") listen_s;
        client = Option.map (parse "client") client_s;
      }
    in
    match Cluster.run cfg with
    | () -> 0
    | exception Cluster.Cluster_error msg ->
        Printf.eprintf "party error: %s\n" msg;
        1

(* --explain: the per-join-node physical-operator decisions of a cold
   execution — chosen operator first, then every priced candidate. *)
let print_explain label (e : Wire.explain) =
  Printf.printf "physical join plan under %s (mode %s, profile %s):\n" label
    e.Wire.e_mode e.Wire.e_profile;
  if e.Wire.e_joins = [] then print_endline "  (no join nodes)";
  List.iter
    (fun (j : Wire.join_decision) ->
      Printf.printf "  %s  [%s, n=%d, m=%d] -> %s%s\n" j.Wire.je_node
        j.Wire.je_variant j.Wire.je_n j.Wire.je_m j.Wire.je_chosen
        (if j.Wire.je_forced then " (forced)" else "");
      List.iter
        (fun (c : Wire.join_cand) ->
          Printf.printf
            "   %s %-6s  %7d rounds | %11d bits | %9d msgs | est. %.4fs\n"
            (if c.Wire.jc_op = j.Wire.je_chosen then "*" else " ")
            c.Wire.jc_op c.Wire.jc_rounds c.Wire.jc_bits c.Wire.jc_messages
            c.Wire.jc_est_s)
        j.Wire.je_cands)
    e.Wire.e_joins;
  if e.Wire.e_fallbacks > 0 then
    Printf.printf "note: %d out-of-class quadratic fallback(s)\n"
      e.Wire.e_fallbacks

let client_query socket proto prio timeout_ms set_workers net_stats explain sql
    =
  match Client.connect ?timeout_ms socket with
  | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "cannot connect to %s: %s (is the server running?)\n"
        socket (Unix.error_message e);
      1
  | c -> (
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      (match set_workers with
      | Some n ->
          let s = Client.set_workers c n in
          Printf.printf "workers resized to %d\n%!" s.Wire.s_workers
      | None -> ());
      match Client.set_protocol c proto with
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          1
      | Ok label when explain -> (
          match Client.explain c sql with
          | Error (code, msg) ->
              Printf.eprintf "error (%s): %s\n" (Wire.err_label code) msg;
              1
          | Ok e ->
              print_explain label e;
              0)
      | Ok label -> (
          match Client.query ?prio c sql with
          | Error (code, msg) ->
              Printf.eprintf "error (%s): %s\n" (Wire.err_label code) msg;
              1
          | Ok r ->
              let n = List.length r.Wire.r_rows in
              Printf.printf "result (%d rows%s, under %s%s):\n  %s\n" n
                (if r.Wire.r_truncated then ", truncated" else "")
                label
                (if r.Wire.r_cache_hit then ", plan-cache hit" else "")
                (String.concat " | " r.Wire.r_cols);
              List.iteri
                (fun i row ->
                  if i < 20 then
                    Printf.printf "  %s\n"
                      (String.concat " | " (List.map string_of_int row)))
                r.Wire.r_rows;
              if n > 20 then Printf.printf "  ... (%d more)\n" (n - 20);
              if r.Wire.r_fallbacks > 0 then
                Printf.printf "note: %d quadratic join fallback(s)\n"
                  r.Wire.r_fallbacks;
              Printf.printf
                "costs: %d online %s | %.2f MiB online | %.2f MiB \
                 preprocessing | est. LAN %.3fs | est. WAN %.3fs\n"
                r.Wire.r_tally.Orq_net.Comm.t_rounds (rounds_label ())
                (float_of_int r.Wire.r_tally.Orq_net.Comm.t_bits /. 8.
                /. 1024. /. 1024.)
                (float_of_int r.Wire.r_pre.Orq_net.Comm.t_bits /. 8. /. 1024.
               /. 1024.)
                r.Wire.r_lan_s r.Wire.r_wan_s;
              if r.Wire.r_peak_bytes > 0 then
                Printf.printf "memory: peak %.2f MiB chunked | %d spills\n"
                  (float_of_int r.Wire.r_peak_bytes /. 1024. /. 1024.)
                  r.Wire.r_spills;
              (if net_stats then
                 match Client.net_stats c with
                 | Ok s -> print_net_stats s
                 | Error msg -> Printf.printf "net-stats: %s\n" msg);
              0))

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let list_t =
  Arg.(value & flag & info [ "list" ] ~doc:"List available queries and exit.")

let query_t =
  Arg.(
    value
    & opt string "Q3"
    & info [ "q"; "query" ] ~docv:"NAME" ~doc:"Query to run (see --list).")

let sql_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "sql" ] ~docv:"QUERY"
        ~doc:
          "Run an ad-hoc SQL query against the TPC-H catalog through the \
           automatic planner, e.g. \"SELECT o_orderpriority, COUNT(*) AS n \
           FROM orders GROUP BY o_orderpriority\".")

let proto_conv =
  Arg.conv (protocol_of_string, fun ppf k -> Fmt.string ppf (Ctx.kind_label k))

let proto_t =
  Arg.(
    value
    & opt proto_conv Ctx.Sh_hm
    & info [ "p"; "protocol" ] ~docv:"PROTO"
        ~doc:"MPC protocol: sh-dm (2PC), sh-hm (3PC) or mal-hm (4PC).")

let sf_t =
  Arg.(
    value
    & opt float 0.001
    & info [ "sf" ] ~docv:"SF" ~doc:"TPC-H scale factor (micro scale).")

let n_t =
  Arg.(
    value
    & opt int 800
    & info [ "n" ] ~docv:"N" ~doc:"Rows for the non-TPC-H datasets.")

let profile_t =
  Arg.(
    value
    & opt (conv (profile_of_string, fun ppf p -> Fmt.string ppf p.Netsim.label)) Netsim.lan
    & info [ "profile" ] ~docv:"ENV" ~doc:"Network model: lan, wan or geo.")

let validate_t =
  Arg.(
    value & flag
    & info [ "validate" ] ~doc:"Check the result against the plaintext engine.")

let domains_t =
  Arg.(
    value & opt int 0
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "Data-parallel domains for local vector work (default: the \
           ORQ_DOMAINS environment variable, else 1).")

let run_with_domains domains list_only query sql proto sf n profile validate =
  if domains > 0 then Orq_util.Parallel.set_num_domains domains;
  run list_only query sql proto sf n profile validate

let run_term =
  Term.(
    const run_with_domains $ domains_t $ list_t $ query_t $ sql_t $ proto_t
    $ sf_t $ n_t $ profile_t $ validate_t)

let run_cmd =
  Cmd.v (Cmd.info "run" ~doc:"one-shot batch execution (the default)") run_term

(* serve flags: defaults honor ORQ_SERVICE_MAX_JOBS / ORQ_SERVICE_MAX_ROWS
   like the ORQ_DOMAINS plumbing above — env sets the default, flag wins. *)
let service_defaults = Service.default_config ()

let socket_t =
  Arg.(
    value
    & opt string service_defaults.Service.socket_path
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let serve_cmd =
  let workers_t =
    Arg.(
      value
      & opt int service_defaults.Service.workers
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Execution worker domains (default: the ORQ_SERVICE_WORKERS \
             environment variable, else 1).")
  in
  let pace_t =
    Arg.(
      value
      & opt string
          (match service_defaults.Service.pace with
          | Some p -> p.Orq_net.Netsim.label
          | None -> "off")
      & info [ "pace" ] ~docv:"PROFILE"
          ~doc:
            "Paced execution: each worker holds its slot for the query's \
             modeled network time under this Netsim profile (off, lan, wan \
             or geo; default: the ORQ_SERVICE_PACE environment variable, \
             else off).")
  in
  let max_jobs_t =
    Arg.(
      value
      & opt int service_defaults.Service.max_jobs
      & info [ "max-jobs" ] ~docv:"K"
          ~doc:
            "Admission control: maximum in-flight queries (default: the \
             ORQ_SERVICE_MAX_JOBS environment variable, else 4).")
  in
  let max_rows_t =
    Arg.(
      value
      & opt int service_defaults.Service.max_rows
      & info [ "max-rows" ] ~docv:"R"
          ~doc:
            "Truncate responses beyond this many rows (default: the \
             ORQ_SERVICE_MAX_ROWS environment variable, else 10000).")
  in
  let cache_t =
    Arg.(
      value
      & opt int service_defaults.Service.cache_capacity
      & info [ "cache" ] ~docv:"C"
          ~doc:"Plan-cache capacity in entries; 0 disables caching.")
  in
  let seed_t =
    Arg.(
      value
      & opt int service_defaults.Service.seed
      & info [ "seed" ] ~docv:"S" ~doc:"Catalog generation seed.")
  in
  let verbose_t =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log sessions to stderr.")
  in
  let serve_with_domains domains socket sf seed workers pace max_jobs max_rows
      cache verbose =
    if domains > 0 then Orq_util.Parallel.set_num_domains domains;
    serve socket sf seed workers pace max_jobs max_rows cache verbose
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"start the oblivious query service on a Unix-domain socket")
    Term.(
      const serve_with_domains $ domains_t $ socket_t $ sf_t $ seed_t
      $ workers_t $ pace_t $ max_jobs_t $ max_rows_t $ cache_t $ verbose_t)

let query_cmd =
  let sql_pos_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SQL" ~doc:"The SQL query text.")
  in
  let proto_label_t =
    Arg.(
      value
      & opt string "sh-hm"
      & info [ "p"; "protocol" ] ~docv:"PROTO"
          ~doc:"Session protocol: sh-dm, sh-hm or mal-hm.")
  in
  let prio_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "prio" ] ~docv:"P"
          ~doc:"Priority class: 0 = high, 1 = normal, 2 = low.")
  in
  let timeout_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:
            "Receive timeout in milliseconds (default: the \
             ORQ_CLIENT_TIMEOUT_MS environment variable, else none).")
  in
  let set_workers_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "set-workers" ] ~docv:"N"
          ~doc:"Live-resize the server's worker pool before querying.")
  in
  let net_stats_t =
    Arg.(
      value & flag
      & info [ "net-stats" ]
          ~doc:
            "After the query, fetch the cluster's measured on-the-wire \
             traffic (party clusters only).")
  in
  let explain_t =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "Instead of the result, print the per-join-node physical \
             operator decisions of a cold execution: the chosen operator \
             and every applicable candidate's predicted rounds, bits, \
             messages, and modeled network seconds.")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"send one SQL query to a running service or party cluster")
    Term.(
      const client_query $ socket_t $ proto_label_t $ prio_t $ timeout_t
      $ set_workers_t $ net_stats_t $ explain_t $ sql_pos_t)

let party_cmd =
  let id_t =
    Arg.(
      value & opt int 0
      & info [ "id" ] ~docv:"K" ~doc:"This process's party id (0-based).")
  in
  let listen_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "Mesh bind address override (default: this party's --peers \
             entry). Addresses are unix:/path, tcp:host:port, or host:port.")
  in
  let peers_t =
    Arg.(
      value
      & opt (list string) []
      & info [ "peers" ] ~docv:"A0,A1,.."
          ~doc:
            "Comma-separated mesh addresses of every party, in party-id \
             order; the list length fixes the party count and must match \
             the protocol (2 for sh-dm, 3 for sh-hm, 4 for mal-hm).")
  in
  let client_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "client" ] ~docv:"ADDR"
          ~doc:
            "Party 0 only: serve the query-service protocol to clients on \
             this address.")
  in
  let seed_t =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"S"
          ~doc:"Cluster seed (must agree across all parties).")
  in
  let max_rows_t =
    Arg.(
      value & opt int 10_000
      & info [ "max-rows" ] ~docv:"R"
          ~doc:"Truncate responses beyond this many rows.")
  in
  let verbose_t =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ] ~doc:"Log mesh and query events to stderr.")
  in
  let local_t =
    Arg.(
      value & flag
      & info [ "local" ]
          ~doc:
            "Coordinator mode: fork a complete local cluster on loopback \
             TCP, run demo queries against it, print results and measured \
             wire traffic, and shut it down.")
  in
  Cmd.v
    (Cmd.info "party"
       ~doc:
         "run one party of a real multi-party deployment: N processes \
          exchanging actual framed messages over TCP or Unix sockets, \
          round-for-round equal to the metered simulation")
    Term.(
      const party_run $ id_t $ listen_t $ peers_t $ client_t $ proto_t
      $ seed_t $ sf_t $ max_rows_t $ verbose_t $ local_t)

(* lint: the static leakage lint, also available as the standalone orq_lint
   driver (which adds the fixture self-test and the transcript certifier). *)
let run_lint_cli paths =
  let module Lint = Orq_analysis.Lint in
  let findings =
    try Lint.lint_paths paths
    with Sys_error e ->
      Printf.eprintf "lint: %s\n" e;
      exit 2
  in
  let violations = Lint.violations findings in
  List.iter
    (fun (f : Lint.finding) ->
      match Lint.verdict f with
      | Lint.Leaky e ->
          Format.printf "leaky: %a  (%s)@." Lint.pp_finding f
            e.Orq_analysis.Declass.d_why
      | _ -> ())
    (Lint.leaky_findings findings);
  List.iter
    (fun f -> Format.printf "VIOLATION: %a@." Lint.pp_finding f)
    violations;
  Format.printf "lint: %d findings, %d violations@." (List.length findings)
    (List.length violations);
  if violations = [] then 0 else 1

let lint_cmd =
  let paths_t =
    Arg.(
      value
      & pos_all string [ "lib" ]
      & info [] ~docv:"PATH" ~doc:"Files or directories to lint.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "static leakage lint: every declassification and every branch on \
          opened data must be registered in the audited allowlist")
    Term.(const run_lint_cli $ paths_t)

let cmd =
  let doc = "run ORQ oblivious relational queries under MPC" in
  Cmd.group ~default:run_term
    (Cmd.info "orq_cli" ~doc)
    [ run_cmd; serve_cmd; query_cmd; party_cmd; lint_cmd ]

let () =
  Orq_util.Parallel.init_from_env ();
  exit (Cmd.eval' cmd)
