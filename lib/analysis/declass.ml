(** The audited declassification allowlist.

    Every place the engine opens a secret-shared value — and every piece of
    control flow driven by an opened value — must be registered here with a
    written justification, or {!Lint} fails the build. The registry is the
    human-readable half of the zero-leakage argument: the lint proves the
    list is exhaustive, the justifications argue each entry is safe.

    Two safety classes:

    - regular entries are *safe-by-argument*: the opened value is masked by
      fresh randomness (share conversions), routed through a fresh random
      shuffle first (permutation protocols, shuffle-then-reveal quicksort),
      or is the analyst's final output (§3.1);
    - [d_leaky = true] entries are *leak-by-design* baselines kept for
      benchmark comparison only; the lint reports them separately and
      refuses them outside [lib/baselines/]. *)

type rule =
  | Declass  (** an [open_*] call site *)
  | Branch  (** control flow whose scrutinee flows from an opened value *)
  | In_parallel  (** an interactive primitive inside a [Parallel] lambda *)

let rule_label = function
  | Declass -> "declass"
  | Branch -> "branch"
  | In_parallel -> "parallel"

type entry = {
  d_site : string;  (** ["Module.function"], module = capitalized basename *)
  d_rule : rule;
  d_callee : string;  (** opened primitive or flagged construct; ["*"] = any *)
  d_leaky : bool;  (** leak-by-design baseline, only valid in lib/baselines/ *)
  d_why : string;  (** the written safety argument, with a paper reference *)
}

let ok site rule callee why =
  { d_site = site; d_rule = rule; d_callee = callee; d_leaky = false; d_why = why }

let leaky site rule callee why =
  { d_site = site; d_rule = rule; d_callee = callee; d_leaky = true; d_why = why }

let all : entry list =
  [
    (* --- protocol layer: the primitives themselves --- *)
    ok "Mpc.open_many" Declass "open_"
      "fusion fallback of the batched opening delegates to the single-lane \
       opening primitive; no extra information revealed (same lanes, same \
       traffic)";
    ok "Mpc.open_f_many" Declass "open_f"
      "fusion fallback of the batched packed-flag opening delegates to the \
       single-lane packed opening primitive";
    (* --- share conversions: openings of freshly masked values --- *)
    ok "Convert.bit_b2a_many_unpacked" Declass "open_many"
      "opens b xor r with r a fresh dealer daBit; the opened bit is \
       uniformly random (§2.3 conversion correlations)";
    ok "Convert.bit_b2a_flags_many" Declass "open_f_many"
      "packed-lane variant of the daBit masking: opens b xor r per packed \
       word, uniform for uniform r";
    ok "Convert.b2a" Declass "open_"
      "opens bit-decomposed x xor r against per-bit daBits; each opened bit \
       is uniform";
    ok "Convert.a2b_many" Declass "open_many"
      "opens x + r with r a fresh edaBit mask; uniform in the ring (§2.3)";
    (* --- permutation protocols: openings behind a fresh random shuffle --- *)
    ok "Permops.apply_elementwise" Declass "open_"
      "Protocol 5: opens rho routed through a fresh random sharded \
       permutation pi — the opened vector is rho o pi^{-1}, uniform for \
       uniform pi (Appendix A.4)";
    ok "Permops.apply_elementwise_flags" Declass "open_"
      "packed-flag Protocol 5; identical opening to apply_elementwise";
    ok "Permops.apply_elementwise_table" Declass "open_"
      "multi-column Protocol 5; the single opened vector is uniform as in \
       apply_elementwise";
    ok "Permops.apply_elementwise_table_c" Declass "open_"
      "chunked multi-column Protocol 5; rho's shuffle-then-open is the \
       same single monolithic opening as apply_elementwise_table — only \
       the data columns stream chunk-at-a-time";
    ok "Permops.compose" Declass "open_"
      "Protocol 6: opens sigma behind a fresh sharded permutation; uniform \
       (Appendix A.4)";
    ok "Permops.convert" Declass "open_"
      "Protocol 7: opens the shuffled permutation, whose multiset of values \
       (0..n-1) is public and whose order is uniform behind the fresh \
       shuffle";
    (* --- sorting: shuffle-then-reveal (quarantined: distributional) --- *)
    ok "Quicksort.sort" Declass "open_f"
      "shuffle-then-reveal quicksort (Hamada et al., Appendix B.1): \
       comparison bits opened after the initial random shuffle of unique \
       rows; their joint distribution depends only on n, not the data";
    ok "Quicksort.sort" Branch "*"
      "partition control flow driven by the post-shuffle comparison bits \
       above; trace is data-independent in distribution (Appendix B.1) — \
       certified modulo-quicksort by the transcript certifier";
    (* --- linear join: keyed fingerprints behind independent shuffles --- *)
    ok "Linjoin.join" Declass "open_many"
      "LINQ-style linear join (PAPERS.md): opens per-row key fingerprints \
       f = PRF_k(key) after (a) displacing every invalid row by a fresh \
       uniform mask, (b) routing each side through an independent fresh \
       random shuffle, and (c) keying the fingerprint with per-query \
       secret constants (a secret multiplier and two keyed squarings \
       standing in for a shared-key PRF). The opened multisets reveal \
       only the declared LINQ profile — each side's valid key-multiplicity \
       histogram and the cross-side match structure, behind uniform row \
       positions — which Joincost prices as this operator's leakage class; \
       the zero-leakage alternative remains the sort-based Joinagg";
    ok "Linjoin.join" Branch "*"
      "plaintext hash matching over the opened fingerprints above: \
       control flow is a function of the declared opened values only, and \
       drives nothing but local gathers and public validity masks (no \
       further interactive work depends on it, so transcripts stay \
       shape-deterministic for the certifier)";
    (* --- result delivery --- *)
    ok "Table.reveal" Declass "open_"
      "the analyst's output opening (§3.1): invalid rows are zero-masked \
       and the table shuffled before opening, so only valid result rows \
       carry information";
    ok "Table.reveal" Branch "*"
      "row filtering on the opened validity bits of the final shuffled \
       result — the output size is part of the analyst's result (§3.1)";
    (* --- leak-by-design baselines (benchmark comparison only) --- *)
    leaky "Leaky_join.inner_join" Declass "open_"
      "insecure baseline: opens join keys and validity in the clear to \
       price the cost of obliviousness; never part of the secure engine";
    leaky "Leaky_join.inner_join" Branch "*"
      "insecure baseline: hash-join control flow over plaintext keys";
  ]

let find ~site ~rule ~callee =
  List.find_opt
    (fun e ->
      e.d_site = site && e.d_rule = rule
      && (e.d_callee = "*" || e.d_callee = callee))
    all
