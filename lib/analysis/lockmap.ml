(** The audited lock registry: the written half of the concurrency
    discipline (see DESIGN.md "Concurrency discipline").

    Every mutex in the engine is a {!Orq_util.Locked.t} created with a
    [name] and a [rank] that must match an entry here, or {!Concur}
    fails the build. Ranks declare a {e total lock order}: while any
    registered lock is held, only locks of strictly {e higher} rank may
    be acquired. The static lint checks syntactic nesting against the
    declared ranks; the runtime checker ([ORQ_DEBUG_CHECKS=1]) checks
    every acquisition order the test suite actually performs. Lower
    rank = outer layer: the service front door sits at 10, the chunk
    store — entered from every kernel, so it must be a leaf — at 70.

    The registry is deliberately small. A new lock means a new entry
    with a written justification of (a) why the state cannot be
    [Atomic] or domain-local and (b) why its rank slot is correct with
    respect to every lock its regions can reach. *)

type lock = {
  lk_name : string;  (** the literal passed to [Locked.create ~name] *)
  lk_rank : int;  (** total-order position; strictly increasing inward *)
  lk_site : string;  (** ["Module.binding"] expected to create it *)
  lk_why : string;  (** the written safety argument *)
}

let locks : lock list =
  [
    {
      lk_name = "service";
      lk_rank = 10;
      lk_site = "Service.start";
      lk_why =
        "guards the service control plane (sessions, counters, worker \
         list, running flag); outermost because session and lifecycle \
         code calls into the queue, cache and chunk store while \
         logically inside a service operation, never the reverse";
    };
    {
      lk_name = "jobqueue";
      lk_rank = 20;
      lk_site = "Jobqueue.create";
      lk_why =
        "guards the prioritized admission queue (per-group FIFOs, \
         rings, wait samples); sits inside the service lock because \
         service handlers push/pop jobs, and outside the cache and \
         store because queue regions only mutate queue state";
    };
    {
      lk_name = "plan_cache";
      lk_rank = 30;
      lk_site = "Plan_cache.create";
      lk_why =
        "guards the response cache and the single-flight ticket table; \
         regions are pure table updates — they never execute queries \
         or touch the store — so every deeper lock outranks it";
    };
    {
      lk_name = "plan_flight";
      lk_rank = 35;
      lk_site = "Plan_cache.fresh_flight";
      lk_why =
        "per-flight leader/follower handoff (done flag + value); ranks \
         just above the cache lock so a resolving leader that has just \
         left the cache region can take it, while a follower parked on \
         it holds nothing else";
    };
    {
      lk_name = "service_job";
      lk_rank = 40;
      lk_site = "Service.fresh_job";
      lk_why =
        "per-job reply slot between a worker domain and the waiting \
         session thread; taken with nothing else held on both sides, \
         ranked inside the queue/cache layer it is reached from";
    };
    {
      lk_name = "exchange";
      lk_rank = 50;
      lk_site = "Exchange.create";
      lk_why =
        "per-peer inbox between a receiver thread and the execution \
         thread; regions are queue push/pop only (frame I/O happens \
         outside), and execution holds no outer engine lock while \
         blocked on a peer";
    };
    {
      lk_name = "parallel";
      lk_rank = 60;
      lk_site = "Parallel.ensure_pool";
      lk_why =
        "per-domain worker-pool dispatch lock (span queue, pending \
         count, failure slot); span bodies run outside it, so the only \
         lock reachable from a region is nothing at all — ranked just \
         outside the chunk store, which span bodies do enter";
    };
    {
      lk_name = "chunkvec";
      lk_rank = 70;
      lk_site = "Chunkvec.mutex";
      lk_why =
        "the chunk-store accounting lock, entered from operator \
         kernels, pool workers and session threads alike; the \
         innermost leaf: no region may acquire anything (GC finalisers \
         hand dead chunks off through the lock-free graveyard instead \
         of locking — the PR 9 deadlock class)";
    };
  ]

let find_name name = List.find_opt (fun l -> l.lk_name = name) locks
let rank_of name = Option.map (fun l -> l.lk_rank) (find_name name)

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)
(* ------------------------------------------------------------------ *)

type rule =
  | Registry  (** unregistered / misdeclared lock creation *)
  | Order  (** syntactic nesting violating the declared total order *)
  | Blocking  (** blocking call inside a held-lock region *)
  | Shared  (** top-level mutable state reaching another domain/thread *)
  | Finaliser  (** a [Gc.finalise] callback that can take a registered lock *)

let rule_label = function
  | Registry -> "registry"
  | Order -> "order"
  | Blocking -> "blocking"
  | Shared -> "shared"
  | Finaliser -> "finaliser"

(* ------------------------------------------------------------------ *)
(* Audited exemptions                                                  *)
(* ------------------------------------------------------------------ *)

(* Blocking-under-lock exemptions: sites allowed to perform the named
   blocking call inside a held-lock region, each with the argument for
   why the block is bounded and deadlock-free. *)
type blocking_exempt = {
  ex_site : string;  (** ["Module.function"] containing the call *)
  ex_callee : string;  (** the blocking callee, e.g. ["Unix.write"] *)
  ex_why : string;
}

let blocking_exempts : blocking_exempt list =
  [
    {
      ex_site = "Chunkvec.write_slot";
      ex_callee = "Unix.write";
      ex_why =
        "spill-slot writes go to an unlinked tempfile through one \
         shared fd with lseek, so they must serialize under the store \
         lock; local disk I/O is bounded and depends on no other lock \
         or thread (chunkvec is the leaf rank, so nothing can wait on \
         us while we wait on the disk)";
    };
    {
      ex_site = "Chunkvec.read_slot";
      ex_callee = "Unix.read";
      ex_why =
        "faulting a spilled chunk back in reads the private unlinked \
         tempfile under the store lock for the same single-fd/lseek \
         reason as write_slot; bounded local disk I/O at the leaf rank";
    };
    {
      ex_site = "Chunkvec.spill_channels";
      ex_callee = "Unix.openfile";
      ex_why =
        "one-time lazy creation of the unlinked spill tempfile, under \
         the store lock so exactly one fd ever exists; a single local \
         open at the leaf rank";
    };
  ]

let find_blocking_exempt ~site ~callee =
  List.find_opt
    (fun e -> e.ex_site = site && e.ex_callee = callee)
    blocking_exempts

(* Domain-shared mutable state exemptions: top-level mutable bindings
   that escape into another domain's or thread's closure yet are safe,
   with the argument why. *)
type shared_exempt = {
  sh_site : string;  (** ["Module.binding"] of the mutable top-level *)
  sh_why : string;
}

let shared_exempts : shared_exempt list = []

let find_shared_exempt ~site =
  List.find_opt (fun e -> e.sh_site = site) shared_exempts
