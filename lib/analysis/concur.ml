(** Static concurrency-discipline lint: a second Parsetree walker (same
    zero-dependency [compiler-libs] style as {!Lint}) that checks every
    [.ml] under [lib/] against the lock discipline written down in
    {!Lockmap}:

    {b Rule 1 (registry)} — mutexes exist only as [Locked.t]: any raw
    [Mutex.create]/[lock]/[unlock] (and any unstructured
    [Locked.lock]/[unlock]) outside [lib/util/locked.ml] is a
    violation, and every [Locked.create] site must pass literal
    [~name]/[~rank] arguments matching a {!Lockmap.locks} entry.

    {b Rule 2 (order)} — syntactic nesting of lock regions
    ([Locked.with_lock], or a local wrapper function whose body enters
    one) must respect the declared total order: acquiring a lock of
    lower or equal rank while one is held is a violation, as is
    [Locked.wait] on a lock that is not the innermost held. Lock
    identities resolve through top-level [let x = Locked.create ...]
    bindings and record fields initialised with [Locked.create ...]
    in record literals; the walk recurses into same-file functions
    referenced from a held region, so indirect acquisition through
    local helpers is seen.

    {b Rule 3 (blocking)} — no blocking call inside a held region:
    [Unix] I/O and sleeps, [Domain.join]/[Thread.join], raw
    [Condition.wait], or interactive [Mpc] primitives
    ({!Lint.interactive_names}). Audited exceptions live in
    {!Lockmap.blocking_exempts} (today: the chunk store's single-fd
    spill I/O, which must serialize under the store lock).

    {b Rule 4 (shared)} — a top-level [ref]/[Hashtbl]/[Queue] may not
    be captured by a closure handed to [Domain.spawn],
    [Thread.create], or a [Parallel] entry point: cross-domain mutable
    state must be [Atomic], domain-local, or a registered locked
    structure. (This is the rule that would have flagged the
    preconditions of both PR 9 chunk-store bugs.)

    {b Rule 5 (finaliser)} — a [Gc.finalise] callback must not take a
    registered lock: finalisers fire at allocation points, possibly on
    a thread already holding the very lock they would take (the PR 9
    deadlock). Callbacks wrapped in [Locked.finaliser_guard] are
    accepted — the runtime checker polices their body.

    The analysis is per-file and syntactic: cross-module acquisition
    chains (e.g. a service region calling a [Plan_cache] accessor) are
    out of static scope and covered by the runtime half — the
    [ORQ_DEBUG_CHECKS=1] held-stack checker in {!Orq_util.Locked} —
    which validates every acquisition order the test suite actually
    performs against the same registry. *)

open Parsetree

type finding = {
  c_rule : Lockmap.rule;
  c_file : string;
  c_line : int;
  c_site : string;  (** enclosing ["Module.function"] *)
  c_detail : string;  (** what happened, with the names involved *)
}

let pp_finding ppf (f : finding) =
  Fmt.pf ppf "%s:%d: [concur:%s] %s: %s" f.c_file f.c_line
    (Lockmap.rule_label f.c_rule)
    f.c_site f.c_detail

(* The runtime wrapper implements the raw operations the rest of the
   tree is forbidden to use; it is audited by hand and by its own
   runtime-checker tests. *)
let exempt_file file = Filename.basename file = "locked.ml"

let last_of = Lint.last_of
let qualifier = Lint.qualifier

let blocking_callees =
  [
    ("Unix", "read");
    ("Unix", "write");
    ("Unix", "connect");
    ("Unix", "accept");
    ("Unix", "select");
    ("Unix", "sleep");
    ("Unix", "sleepf");
    ("Unix", "system");
    ("Unix", "waitpid");
    ("Unix", "openfile");
    ("Domain", "join");
    ("Thread", "join");
    ("Condition", "wait");
  ]

let mutable_makers = [ ("", "ref"); ("Hashtbl", "create"); ("Queue", "create") ]

let spawn_like lid =
  match (qualifier lid, last_of lid) with
  | "Domain", "spawn" | "Thread", "create" -> true
  | "Parallel", l -> List.mem l Lint.parallel_entry_points
  | _ -> false

(* ---------------- lock-expression resolution ---------------- *)

let const_string = function
  | Pconst_string (s, _, _) -> Some s
  | _ -> None

let const_int = function
  | Pconst_integer (s, None) -> int_of_string_opt s
  | _ -> None

(* [Locked.create ~name:LIT ~rank:LIT ()] → (name?, rank?) when [e] is a
   create application (literal args only; [None] components otherwise). *)
let lock_create_args e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
    when qualifier txt = "Locked" && last_of txt = "create" ->
      let labelled l =
        List.find_map
          (function
            | Asttypes.Labelled l', { pexp_desc = Pexp_constant c; _ }
              when l' = l ->
                Some c
            | _ -> None)
          args
      in
      Some
        ( Option.bind (labelled "name") const_string,
          Option.bind (labelled "rank") const_int )
  | _ -> None

let rank_of_create = function
  | Some (_, Some r) -> Some r
  | Some (Some n, None) -> Lockmap.rank_of n
  | _ -> None

(* ---------------- per-file environment ---------------- *)

type env = {
  modname : string;
  var_ranks : (string, int) Hashtbl.t;  (** top-level lock bindings *)
  field_ranks : (string, int) Hashtbl.t;  (** record fields holding locks *)
  wrappers : (string, int option) Hashtbl.t;
      (** local functions whose body immediately enters a lock region *)
  bindings : (string, expression) Hashtbl.t;  (** all top-level bindings *)
  mutable_tops : (string, unit) Hashtbl.t;  (** top-level ref/Hashtbl/Queue *)
}

let rec strip_fun e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) | Pexp_newtype (_, body) -> strip_fun body
  | _ -> e

let binding_name vb =
  match Lint.pat_vars vb.pvb_pat with v :: _ -> Some v | [] -> None

(* Resolve the first argument of a [with_lock]-style application to a
   (description, rank?) pair. *)
let rec lock_of env e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident n; _ } ->
      (n, Hashtbl.find_opt env.var_ranks n)
  | Pexp_field (_, { txt; _ }) ->
      let f = last_of txt in
      (f, Hashtbl.find_opt env.field_ranks f)
  | Pexp_constraint (e, _) -> lock_of env e
  | _ -> ("<lock>", None)

let rec is_mutable_maker e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> is_mutable_maker e
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      List.mem (qualifier txt, last_of txt) mutable_makers
  | _ -> false

let build_env ~file (str : structure) : env =
  let env =
    {
      modname =
        String.capitalize_ascii Filename.(remove_extension (basename file));
      var_ranks = Hashtbl.create 8;
      field_ranks = Hashtbl.create 8;
      wrappers = Hashtbl.create 8;
      bindings = Hashtbl.create 64;
      mutable_tops = Hashtbl.create 8;
    }
  in
  let scan_binding vb =
    match binding_name vb with
    | None -> ()
    | Some name ->
        Hashtbl.replace env.bindings name vb.pvb_expr;
        (match rank_of_create (lock_create_args vb.pvb_expr) with
        | Some r -> Hashtbl.replace env.var_ranks name r
        | None -> ());
        if is_mutable_maker vb.pvb_expr then
          Hashtbl.replace env.mutable_tops name ()
  in
  let rec scan_item item =
    match item.pstr_desc with
    | Pstr_value (_, vbs) -> List.iter scan_binding vbs
    | Pstr_module { pmb_expr; _ } -> scan_module pmb_expr
    | Pstr_recmodule mbs -> List.iter (fun mb -> scan_module mb.pmb_expr) mbs
    | Pstr_include { pincl_mod; _ } -> scan_module pincl_mod
    | _ -> ()
  and scan_module me =
    match me.pmod_desc with
    | Pmod_structure s -> List.iter scan_item s
    | Pmod_functor (_, body) -> scan_module body
    | Pmod_constraint (me, _) -> scan_module me
    | _ -> ()
  in
  List.iter scan_item str;
  (* record fields initialised with a lock, anywhere in the file *)
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.pexp_desc with
          | Pexp_record (fields, _) ->
              List.iter
                (fun ({ Location.txt; _ }, value) ->
                  match rank_of_create (lock_create_args value) with
                  | Some r -> Hashtbl.replace env.field_ranks (last_of txt) r
                  | None -> ())
                fields
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.structure it str;
  (* wrappers: [let w params = Locked.with_lock LOCK ...] — calling [w]
     acquires LOCK around its function argument *)
  Hashtbl.iter
    (fun name body ->
      match (strip_fun body).pexp_desc with
      | Pexp_apply
          ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (_, lockarg) :: _)
        when qualifier txt = "Locked" && last_of txt = "with_lock"
             && body != strip_fun body ->
          Hashtbl.replace env.wrappers name (snd (lock_of env lockarg))
      | _ -> ())
    env.bindings;
  env

(* ---------------- the walker ---------------- *)

let analyze_structure ~file (str : structure) : finding list =
  let env = build_env ~file str in
  let findings = ref [] in
  let add rule ~loc ~site detail =
    findings :=
      {
        c_rule = rule;
        c_file = file;
        c_line = loc.Location.loc_start.Lexing.pos_lnum;
        c_site = site;
        c_detail = detail;
      }
      :: !findings
  in
  (* held: innermost-first (description, rank option) *)
  let check_order ~loc ~site ~held (desc, rank) =
    match (held, rank) with
    | (tdesc, Some tr) :: _, Some r when tr >= r ->
        add Lockmap.Order ~loc ~site
          (Printf.sprintf
             "acquires %S (rank %d) while holding %S (rank %d) — ranks must \
              strictly increase inward"
             desc r tdesc tr)
    | _ -> ()
  in
  let check_blocking ~loc ~site txt =
    let q = qualifier txt and l = last_of txt in
    let callee = if q = "" then l else q ^ "." ^ l in
    let is_blocking =
      List.mem (q, l) blocking_callees || Lint.is_interactive_mpc txt
    in
    if is_blocking && Lockmap.find_blocking_exempt ~site ~callee = None then
      add Lockmap.Blocking ~loc ~site
        (Printf.sprintf
           "calls %s inside a held-lock region (no blocking under lock; \
            audited exemptions live in lockmap.ml)"
           callee)
  in
  (* Does [e] (transitively through same-file bindings) acquire a
     registered lock? Used for the finaliser rule. *)
  let acquires_lock e0 =
    let found = ref false in
    let visited = Hashtbl.create 8 in
    let rec go e =
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun self ex ->
              (match ex.pexp_desc with
              | Pexp_ident { txt; _ }
                when qualifier txt = "Locked"
                     && List.mem (last_of txt) [ "with_lock"; "lock"; "wait" ]
                ->
                  found := true
              | Pexp_ident { txt = Longident.Lident n; _ }
                when Hashtbl.mem env.wrappers n ->
                  found := true
              | Pexp_ident { txt = Longident.Lident n; _ }
                when Hashtbl.mem env.bindings n
                     && not (Hashtbl.mem visited n) ->
                  Hashtbl.replace visited n ();
                  go (Hashtbl.find env.bindings n)
              | _ -> ());
              if not !found then Ast_iterator.default_iterator.expr self ex);
        }
      in
      it.expr it e
    in
    go e0;
    !found
  in
  let check_finaliser ~loc ~site cb =
    let guarded =
      match cb.pexp_desc with
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
          qualifier txt = "Locked" && last_of txt = "finaliser_guard"
      | _ -> false
    in
    let body =
      match cb.pexp_desc with
      | Pexp_ident { txt = Longident.Lident n; _ } ->
          Hashtbl.find_opt env.bindings n
      | _ -> Some cb
    in
    match (guarded, body) with
    | true, _ -> ()
    | false, Some b when acquires_lock b ->
        add Lockmap.Finaliser ~loc ~site
          "Gc.finalise callback can take a registered lock — finalisers \
           fire at allocation points, possibly while this very lock is \
           held; hand work off lock-free (graveyard pattern) and wrap the \
           callback in Locked.finaliser_guard"
    | _ -> ()
  in
  let registry_check ~loc ~site e =
    match lock_create_args e with
    | None -> ()
    | Some (name, rank) -> (
        match (name, rank) with
        | None, _ | _, None ->
            add Lockmap.Registry ~loc ~site
              "Locked.create without literal ~name/~rank arguments — lock \
               identities must be auditable in lockmap.ml"
        | Some n, Some r -> (
            match Lockmap.find_name n with
            | None ->
                add Lockmap.Registry ~loc ~site
                  (Printf.sprintf
                     "lock %S is not registered in lockmap.ml — every lock \
                      needs a rank and a written justification"
                     n)
            | Some lk when lk.Lockmap.lk_rank <> r ->
                add Lockmap.Registry ~loc ~site
                  (Printf.sprintf
                     "lock %S created with rank %d but registered with rank \
                      %d in lockmap.ml"
                     n r lk.Lockmap.lk_rank)
            | Some _ -> ()))
  in
  (* The main walk: [site] is the function whose body we are inside
     (recursion into same-file helpers updates it, so blocking
     exemptions anchor to the helper that performs the call). *)
  let rec walk ~site ~held ~visited e =
    let recurse = walk ~visited in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self ex ->
            registry_check ~loc:ex.pexp_loc ~site ex;
            match ex.pexp_desc with
            | Pexp_apply
                ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) -> (
                let q = qualifier txt and l = last_of txt in
                match (q, l) with
                | "Mutex", _ when not (exempt_file file) ->
                    add Lockmap.Registry ~loc ~site
                      (Printf.sprintf
                         "raw Mutex.%s — engine mutexes are Locked.t, \
                          created/held only through Locked.create and \
                          Locked.with_lock"
                         l)
                | "Locked", ("lock" | "unlock") when not (exempt_file file)
                  ->
                    add Lockmap.Registry ~loc ~site
                      (Printf.sprintf
                         "unstructured Locked.%s — hold locks only through \
                          Locked.with_lock regions"
                         l)
                | "Locked", "with_lock" ->
                    let lk =
                      match args with
                      | (_, a) :: _ -> lock_of env a
                      | [] -> ("<lock>", None)
                    in
                    check_order ~loc ~site ~held lk;
                    List.iter
                      (fun (_, a) -> recurse ~site ~held:(lk :: held) a)
                      args
                | "Locked", "wait" ->
                    (let lk =
                       match args with
                       | (_, a) :: _ -> lock_of env a
                       | [] -> ("<lock>", None)
                     in
                     match (held, lk) with
                     | [], _ ->
                         add Lockmap.Order ~loc ~site
                           (Printf.sprintf
                              "Locked.wait on %S outside any held-lock \
                               region"
                              (fst lk))
                     | (tdesc, Some tr) :: _, (desc, Some r) when tr <> r ->
                         add Lockmap.Order ~loc ~site
                           (Printf.sprintf
                              "Locked.wait on %S (rank %d) while %S (rank \
                               %d) is innermost — wait only on the \
                               innermost held lock"
                              desc r tdesc tr)
                     | _ -> ());
                    List.iter (fun (_, a) -> recurse ~site ~held a) args
                | "Gc", ("finalise" | "finalise_last") ->
                    (match args with
                    | (_, cb) :: _ -> check_finaliser ~loc ~site cb
                    | [] -> ());
                    List.iter (fun (_, a) -> recurse ~site ~held a) args
                | "", n when Hashtbl.mem env.wrappers n ->
                    let rank = Hashtbl.find env.wrappers n in
                    let lk = (n, rank) in
                    check_order ~loc ~site ~held lk;
                    List.iter
                      (fun (_, a) -> recurse ~site ~held:(lk :: held) a)
                      args
                | _ ->
                    if held <> [] then check_blocking ~loc ~site txt;
                    Ast_iterator.default_iterator.expr self ex)
            | Pexp_ident { txt = Longident.Lident n; _ }
              when held <> []
                   && Hashtbl.mem env.bindings n
                   && not (Hashtbl.mem visited n) ->
                Hashtbl.replace visited n ();
                walk
                  ~site:(env.modname ^ "." ^ n)
                  ~held ~visited
                  (Hashtbl.find env.bindings n)
            | _ -> Ast_iterator.default_iterator.expr self ex);
      }
    in
    it.expr it e
  in
  (* rule 4: top-level mutable state captured by cross-domain closures *)
  let shared_check ~site body =
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self ex ->
            (match ex.pexp_desc with
            | Pexp_apply
                ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args)
              when spawn_like txt
                   || (qualifier txt = ""
                      && env.modname = "Parallel"
                      && List.mem (last_of txt) Lint.parallel_entry_points)
              ->
                List.iter
                  (fun (_, arg) ->
                    Hashtbl.iter
                      (fun name () ->
                        let mentions =
                          Lint.exists_ident
                            (fun lid ->
                              lid = Longident.Lident name)
                            arg
                        in
                        let exempt =
                          Lockmap.find_shared_exempt
                            ~site:(env.modname ^ "." ^ name)
                          <> None
                        in
                        if mentions && not exempt then
                          add Lockmap.Shared ~loc ~site
                            (Printf.sprintf
                               "top-level mutable %S reaches a %s closure — \
                                cross-domain state must be Atomic, \
                                domain-local, or a registered locked \
                                structure"
                               name
                               (last_of txt)))
                      env.mutable_tops)
                  args
            | _ -> ());
            Ast_iterator.default_iterator.expr self ex);
      }
    in
    it.expr it body
  in
  let scan_binding vb =
    let name =
      match binding_name vb with Some v -> v | None -> "_"
    in
    let site = env.modname ^ "." ^ name in
    let visited = Hashtbl.create 8 in
    Hashtbl.replace visited name ();
    walk ~site ~held:[] ~visited vb.pvb_expr;
    shared_check ~site vb.pvb_expr
  in
  let rec scan_item item =
    match item.pstr_desc with
    | Pstr_value (_, vbs) -> List.iter scan_binding vbs
    | Pstr_module { pmb_expr; _ } -> scan_module pmb_expr
    | Pstr_recmodule mbs -> List.iter (fun mb -> scan_module mb.pmb_expr) mbs
    | Pstr_include { pincl_mod; _ } -> scan_module pincl_mod
    | _ -> ()
  and scan_module me =
    match me.pmod_desc with
    | Pmod_structure s -> List.iter scan_item s
    | Pmod_functor (_, body) -> scan_module body
    | Pmod_constraint (me, _) -> scan_module me
    | _ -> ()
  in
  List.iter scan_item str;
  (* several walk roots can reach the same helper; report each site once *)
  List.sort_uniq compare (List.rev !findings)

(* ---------------- entry points (mirror Lint's) ---------------- *)

let lint_string ~filename src : finding list =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf filename;
  analyze_structure ~file:filename (Parse.implementation lexbuf)

let lint_file path : finding list =
  if exempt_file path then []
  else
    let ic = open_in_bin path in
    let src =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    lint_string ~filename:path src

let lint_paths paths : finding list =
  List.concat_map (fun p -> List.concat_map lint_file (Lint.ml_files p)) paths
