(** Oblivious-transcript certifier: machine-check that every query's
    communication transcript is a function of public shape only.

    The check materializes the definition of obliviousness (§2.4, Appendix
    C). For each query and protocol it records two structural transcripts
    ({!Orq_net.Comm.start_recording}):

    - {b measured} — the query over the real benchmark data, validated
      against the plaintext reference engine while recording;
    - {b predicted} — the cost model's whole-plan prediction: the same
      plan evaluated over a {e shape twin} of the database, in which every
      value has been replaced by a deterministic function of its (table,
      column, row index) coordinate. The twin shares nothing with the data
      but its public shape, so this run is exactly the symbolic evaluation
      of the {!Costmodel} cost semantics over (rows, widths, protocol).

    If the two transcripts are event-for-event identical, no event of the
    trace — round boundary, payload size, message count, operator label —
    depended on anything secret: a certificate of zero leakage for that
    (query, protocol) pair.

    Shuffle-then-reveal quicksort (triggered by sort keys wider than the
    radixsort threshold) is the engine's one {e distributionally} oblivious
    component: its partition trace is drawn fresh per run from a
    data-independent distribution (Appendix B.1), so it cannot be certified
    by transcript equality. Those queries are certified {e
    modulo-quicksort}: events under a "quicksort" label — the exact site
    quarantined in {!Declass} — are projected out of both transcripts and
    the remainders must still be identical, which certifies everything
    outside the quarantined declassification. *)

open Orq_proto
open Orq_workloads
module Comm = Orq_net.Comm
module Ptable = Orq_plaintext.Ptable

(* ------------------------------------------------------------------ *)
(* Shape twins                                                         *)
(* ------------------------------------------------------------------ *)

(** Replace every value of a plaintext table by a deterministic function of
    its (column, row) coordinate — same schema, same row count, nothing
    else in common with the data. *)
let twin_ptable (p : Ptable.t) : Ptable.t =
  {
    p with
    Ptable.rows =
      List.mapi
        (fun i row ->
          List.mapi (fun j _ -> ((i * 31) + (j * 17) + 5) land 0xFFFF) row)
        p.Ptable.rows;
  }

let twin_tpch (p : Tpch_gen.plain) : Tpch_gen.plain =
  {
    Tpch_gen.region = twin_ptable p.Tpch_gen.region;
    nation = twin_ptable p.Tpch_gen.nation;
    supplier = twin_ptable p.Tpch_gen.supplier;
    customer = twin_ptable p.Tpch_gen.customer;
    part = twin_ptable p.Tpch_gen.part;
    partsupp = twin_ptable p.Tpch_gen.partsupp;
    orders = twin_ptable p.Tpch_gen.orders;
    lineitem = twin_ptable p.Tpch_gen.lineitem;
  }

let twin_other (p : Other_gen.plain) : Other_gen.plain =
  {
    Other_gen.diagnosis = twin_ptable p.Other_gen.diagnosis;
    medication = twin_ptable p.Other_gen.medication;
    labs = twin_ptable p.Other_gen.labs;
    cohort = twin_ptable p.Other_gen.cohort;
    passwords = twin_ptable p.Other_gen.passwords;
    credit = twin_ptable p.Other_gen.credit;
    r_att = twin_ptable p.Other_gen.r_att;
    s_val = twin_ptable p.Other_gen.s_val;
    transactions = twin_ptable p.Other_gen.transactions;
    yr = twin_ptable p.Other_gen.yr;
    ys = twin_ptable p.Other_gen.ys;
    yt = twin_ptable p.Other_gen.yt;
  }

(* ------------------------------------------------------------------ *)
(* Certificates                                                        *)
(* ------------------------------------------------------------------ *)

type mode =
  | Exact  (** transcripts event-for-event identical *)
  | Modulo_quicksort
      (** identical after projecting out the quarantined quicksort events
          (distributional obliviousness, Appendix B.1) *)

let mode_label = function
  | Exact -> "exact"
  | Modulo_quicksort -> "modulo-quicksort"

type cert = {
  c_query : string;
  c_protocol : string;
  c_mode : mode;
  c_ok : bool;
  c_validated : bool;  (** measured run also matched the plaintext engine *)
  c_events : int;  (** measured transcript length *)
  c_tally : Comm.tally;  (** measured online traffic *)
  c_detail : string;  (** first divergence on failure, "" otherwise *)
}

let contains ~sub s =
  let ls = String.length s and lb = String.length sub in
  let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
  lb = 0 || go 0

let quicksort_event (e : Comm.event) = contains ~sub:"quicksort" e.Comm.ev_label

let project_quicksort evs =
  Array.of_list
    (List.filter (fun e -> not (quicksort_event e)) (Array.to_list evs))

let diff_detail which = function
  | None -> ""
  | Some (i, a, b) ->
      let pp = function
        | None -> "<end of transcript>"
        | Some e -> Fmt.str "%a" Comm.pp_event e
      in
      Fmt.str "%s event %d: measured %s vs predicted %s" which i (pp a) (pp b)

(* Record the transcript of [f] on [ctx]'s online meter. *)
let record ?(capacity = 1 lsl 20) (ctx : Ctx.t) f =
  Comm.start_recording ~capacity ctx.Ctx.comm;
  let finish () =
    let tr = Comm.transcript ctx.Ctx.comm in
    let dropped = Comm.dropped_events ctx.Ctx.comm in
    Comm.stop_recording ctx.Ctx.comm;
    (tr, dropped)
  in
  let r = try f () with e -> ignore (finish ()); raise e in
  let tr, dropped = finish () in
  (r, tr, dropped)

(** Certify one query given the two runs as closures over fresh, same-seed
    contexts: [measured] validates over the real data, [predicted] runs the
    plan over the shape twin. *)
let certify_one ~query ~kind ~(measured : Ctx.t -> bool) ~(predicted : Ctx.t -> unit) : cert =
  let seed = 5 in
  let ctx_m = Ctx.create ~seed kind in
  let validated, tr_m, drop_m = record ctx_m (fun () -> measured ctx_m) in
  let ctx_p = Ctx.create ~seed kind in
  let (), tr_p, drop_p = record ctx_p (fun () -> predicted ctx_p) in
  let base =
    {
      c_query = query;
      c_protocol = Ctx.kind_label kind;
      c_mode = Exact;
      c_ok = false;
      c_validated = validated;
      c_events = Array.length tr_m;
      c_tally = Costmodel.tally_of tr_m;
      c_detail = "";
    }
  in
  if drop_m > 0 || drop_p > 0 then
    { base with c_detail = "transcript ring overflow; raise capacity" }
  else
    match Comm.transcript_diff tr_m tr_p with
    | None -> { base with c_ok = true }
    | Some _ as d ->
        let qs_m = Array.exists quicksort_event tr_m in
        let qs_p = Array.exists quicksort_event tr_p in
        if not (qs_m && qs_p) then
          { base with c_detail = diff_detail "full" d }
        else begin
          (* quarantined distributional component present in both runs:
             certify everything outside it *)
          match
            Comm.transcript_diff (project_quicksort tr_m)
              (project_quicksort tr_p)
          with
          | None -> { base with c_mode = Modulo_quicksort; c_ok = true }
          | Some _ as d ->
              {
                base with
                c_mode = Modulo_quicksort;
                c_detail = diff_detail "quicksort-projected" d;
              }
        end

(* ------------------------------------------------------------------ *)
(* The 31-query suite                                                  *)
(* ------------------------------------------------------------------ *)

(** Certify the full workload (22 TPC-H + 9 prior-work queries) under the
    given protocols. [names] restricts the query set (quick mode). *)
let run_suite ?(sf = 0.0002) ?(other_n = 400) ?(kinds = Ctx.all_kinds)
    ?(names : string list option) () : cert list =
  let keep n = match names with None -> true | Some ns -> List.mem n ns in
  let plain = Tpch_gen.generate ~seed:99 sf in
  let twin = twin_tpch plain in
  let oplain = Other_gen.generate ~seed:31 other_n in
  let otwin = twin_other oplain in
  List.concat_map
    (fun kind ->
      List.filter_map
        (fun (q : Tpch.query) ->
          if not (keep q.Tpch.name) then None
          else
            Some
              (certify_one ~query:q.Tpch.name ~kind
                 ~measured:(fun ctx ->
                   let mdb = Tpch_gen.share ctx plain in
                   let ok, _, _ = Tpch.validate q plain mdb in
                   ok)
                 ~predicted:(fun ctx ->
                   let mdb = Tpch_gen.share ctx twin in
                   ignore (q.Tpch.run mdb))))
        Tpch.all
      @ List.filter_map
          (fun (q : Other_queries.query) ->
            if not (keep q.Other_queries.name) then None
            else
              Some
                (certify_one ~query:q.Other_queries.name ~kind
                   ~measured:(fun ctx ->
                     let mdb = Other_gen.share ctx oplain in
                     let ok, _, _ = Other_queries.validate q oplain mdb in
                     ok)
                   ~predicted:(fun ctx ->
                     let mdb = Other_gen.share ctx otwin in
                     ignore (q.Other_queries.run mdb))))
          Other_queries.all)
    kinds

let all_ok certs = List.for_all (fun c -> c.c_ok && c.c_validated) certs

let pp_cert ppf c =
  Fmt.pf ppf "%-14s %-7s %-17s %-9s %8d events  %a%s" c.c_query c.c_protocol
    (if c.c_ok then "certified" else "NOT-OBLIVIOUS")
    (mode_label c.c_mode) c.c_events Comm.pp_tally c.c_tally
    (if c.c_detail = "" then "" else "\n    " ^ c.c_detail)

let json_escape s =
  String.concat ""
    (List.map
       (function '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

(** The certificate report uploaded by CI. *)
let report_json ?(sf = 0.0002) ?(other_n = 400) (certs : cert list) : string =
  let rows =
    List.map
      (fun c ->
        Printf.sprintf
          "    {\"query\":\"%s\",\"protocol\":\"%s\",\"mode\":\"%s\",\
           \"certified\":%b,\"validated\":%b,\"events\":%d,\"rounds\":%d,\
           \"bits\":%d,\"messages\":%d,\"detail\":\"%s\"}"
          (json_escape c.c_query) c.c_protocol (mode_label c.c_mode) c.c_ok
          c.c_validated c.c_events c.c_tally.Comm.t_rounds
          c.c_tally.Comm.t_bits c.c_tally.Comm.t_messages
          (json_escape c.c_detail))
      certs
  in
  Printf.sprintf
    "{\n  \"sf\": %g,\n  \"other_n\": %d,\n  \"certified\": %b,\n\
    \  \"certificates\": [\n%s\n  ]\n}\n"
    sf other_n (all_ok certs)
    (String.concat ",\n" rows)
