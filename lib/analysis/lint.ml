(** Static leakage lint: a Parsetree walker (built on [compiler-libs], which
    ships with the compiler — no new dependency) that checks every [.ml]
    under [lib/] against the declassification discipline:

    {b Rule 1 (declass)} — any syntactic use of the opening primitives
    ([open_], [open_f], [open_many], [open_f_many], bare or
    [Mpc]-qualified) must be registered in {!Declass.all} for its enclosing
    [Module.function] site.

    {b Rule 2 (branch)} — any [if]/[match]/[while] scrutinee or [for] bound
    that flows from an opened value must likewise be registered. Flow is
    tracked per top-level binding as a syntactic taint: names let-bound (or
    [:=]-assigned) from an expression containing an opening call are
    tainted, taint propagates through further bindings that mention a
    tainted name, and control-flow scrutinees mentioning a tainted name (or
    containing an opening call directly) are flagged. The analysis is
    intentionally over- rather than under-approximate within a binding, but
    it does not follow values through function parameters — the allowlist
    documents the audited residue.

    {b Rule 3 (parallel)} — interactive [Mpc] primitives must not be called
    inside [Parallel] worker lambdas: workers race on the shared meter, so
    the transcript event order would become scheduler-dependent
    (trace nondeterminism), and in a real deployment each domain would need
    its own channel schedule. No allowlist for this rule.

    Findings against a [leaky:] allowlist entry are legal only under
    [lib/baselines/] and are reported separately instead of failing. *)

open Parsetree

let open_names = [ "open_"; "open_f"; "open_many"; "open_f_many" ]

(* Interactive (round-consuming) Mpc primitives for rule 3. Local share
   algebra (xor, add, shifts, …) is domain-safe and deliberately absent. *)
let interactive_names =
  open_names
  @ [
      "mul";
      "mul_many";
      "band";
      "band_many";
      "band1";
      "band_f";
      "bor";
      "bor_many";
      "bor1";
      "bor_f";
      "mux";
      "mux_many";
      "mux_f";
      "fuse_rounds";
    ]

let parallel_entry_points =
  [ "run_spans"; "run_tasks"; "map"; "map2"; "apply_perm" ]

type finding = {
  f_rule : Declass.rule;
  f_file : string;
  f_line : int;
  f_site : string;  (** enclosing ["Module.function"] *)
  f_callee : string;  (** opened primitive, branch keyword, or Mpc callee *)
}

type verdict =
  | Allowed of Declass.entry
  | Leaky of Declass.entry  (** leak-by-design baseline, in lib/baselines/ *)
  | Violation

let in_baselines file =
  List.exists (fun seg -> seg = "baselines") (String.split_on_char '/' file)

let verdict (f : finding) : verdict =
  match
    Declass.find ~site:f.f_site ~rule:f.f_rule ~callee:f.f_callee
  with
  | None -> Violation
  | Some e when e.d_leaky -> if in_baselines f.f_file then Leaky e else Violation
  | Some e -> Allowed e

let violations fs = List.filter (fun f -> verdict f = Violation) fs

let leaky_findings fs =
  List.filter (fun f -> match verdict f with Leaky _ -> true | _ -> false) fs

let pp_finding ppf (f : finding) =
  Fmt.pf ppf "%s:%d: [%s] %s uses %s" f.f_file f.f_line
    (Declass.rule_label f.f_rule)
    f.f_site f.f_callee

(* ---------------- Longident helpers ---------------- *)

let parts lid = try Longident.flatten lid with _ -> []

let last_of lid = match List.rev (parts lid) with x :: _ -> x | [] -> ""

let qualifier lid =
  match List.rev (parts lid) with _ :: q :: _ -> q | _ -> ""

(* Opening primitives: bare (inside Mpc itself) or Mpc-qualified. *)
let is_open_ident lid =
  List.mem (last_of lid) open_names
  && (match qualifier lid with "" | "Mpc" -> true | _ -> false)

let is_interactive_mpc lid =
  let l = last_of lid in
  List.mem l interactive_names
  && (qualifier lid = "Mpc" || (qualifier lid = "" && List.mem l open_names))

let is_parallel_entry lid =
  qualifier lid = "Parallel" && List.mem (last_of lid) parallel_entry_points

(* ---------------- generic expression scans ---------------- *)

(* [exists_ident p e]: does [e] contain a [Pexp_ident] satisfying [p]? *)
let exists_ident p (e : expression) =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.pexp_desc with
          | Pexp_ident lid when p lid.Location.txt -> found := true
          | _ -> ());
          if not !found then Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.expr it e;
  !found

let pat_vars (p : pattern) =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self pa ->
          (match pa.ppat_desc with
          | Ppat_var { txt; _ } -> acc := txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat self pa);
    }
  in
  it.pat it p;
  !acc

module Sset = Set.Make (String)

(* ---------------- rule 2: per-binding taint ---------------- *)

let mentions_tainted taint e =
  exists_ident (fun lid -> Sset.mem (last_of lid) taint) e

let tainted_source taint e =
  exists_ident is_open_ident e || mentions_tainted taint e

(* One pass collecting newly tainted names from let-bindings and [:=]. *)
let taint_pass (body : expression) (taint : Sset.t) : Sset.t =
  let taint = ref taint in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.pexp_desc with
          | Pexp_let (_, vbs, _) ->
              List.iter
                (fun vb ->
                  if tainted_source !taint vb.pvb_expr then
                    List.iter
                      (fun v -> taint := Sset.add v !taint)
                      (pat_vars vb.pvb_pat))
                vbs
          | Pexp_apply
              ( { pexp_desc = Pexp_ident { txt = Lident ":="; _ }; _ },
                [ (_, { pexp_desc = Pexp_ident { txt = l; _ }; _ }); (_, rhs) ]
              )
            when tainted_source !taint rhs ->
              taint := Sset.add (last_of l) !taint
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.expr it body;
  !taint

let rec taint_fixpoint body taint fuel =
  let taint' = taint_pass body taint in
  if fuel = 0 || Sset.equal taint taint' then taint'
  else taint_fixpoint body taint' (fuel - 1)

(* ---------------- the walker ---------------- *)

let lint_structure ~file (str : structure) : finding list =
  let modname =
    String.capitalize_ascii Filename.(remove_extension (basename file))
  in
  let findings = ref [] in
  let add rule ~loc ~site ~callee =
    findings :=
      {
        f_rule = rule;
        f_file = file;
        f_line = loc.Location.loc_start.Lexing.pos_lnum;
        f_site = site;
        f_callee = callee;
      }
      :: !findings
  in
  (* rules 1 and 3, one traversal per top-level binding *)
  let scan_rules_1_3 ~site body =
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self ex ->
            (match ex.pexp_desc with
            | Pexp_ident { txt; loc } when is_open_ident txt ->
                add Declass ~loc ~site ~callee:(last_of txt)
            | Pexp_apply
                ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args)
              when is_parallel_entry txt ->
                List.iter
                  (fun (_, arg) ->
                    if exists_ident is_interactive_mpc arg then
                      add In_parallel ~loc ~site
                        ~callee:(last_of txt))
                  args
            | _ -> ());
            Ast_iterator.default_iterator.expr self ex);
      }
    in
    it.expr it body
  in
  (* rule 2: taint, then flag control flow on tainted scrutinees *)
  let scan_rule_2 ~site body =
    let taint = taint_fixpoint body Sset.empty 8 in
    if not (Sset.is_empty taint) || exists_ident is_open_ident body then begin
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun self ex ->
              (match ex.pexp_desc with
              | Pexp_ifthenelse (c, _, _) when tainted_source taint c ->
                  add Branch ~loc:ex.pexp_loc ~site ~callee:"if"
              | Pexp_match (scrut, _) when tainted_source taint scrut ->
                  add Branch ~loc:ex.pexp_loc ~site ~callee:"match"
              | Pexp_while (c, _) when tainted_source taint c ->
                  add Branch ~loc:ex.pexp_loc ~site ~callee:"while"
              | Pexp_for (_, lo, hi, _, _)
                when tainted_source taint lo || tainted_source taint hi ->
                  add Branch ~loc:ex.pexp_loc ~site ~callee:"for"
              | _ -> ());
              Ast_iterator.default_iterator.expr self ex);
        }
      in
      it.expr it body
    end
  in
  let rec scan_item (item : structure_item) =
    match item.pstr_desc with
    | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            let name =
              match pat_vars vb.pvb_pat with v :: _ -> v | [] -> "_"
            in
            let site = modname ^ "." ^ name in
            scan_rules_1_3 ~site vb.pvb_expr;
            scan_rule_2 ~site vb.pvb_expr)
          vbs
    | Pstr_module { pmb_expr; _ } -> scan_module_expr pmb_expr
    | Pstr_recmodule mbs ->
        List.iter (fun mb -> scan_module_expr mb.pmb_expr) mbs
    | Pstr_include { pincl_mod; _ } -> scan_module_expr pincl_mod
    | _ -> ()
  and scan_module_expr me =
    match me.pmod_desc with
    | Pmod_structure str -> List.iter scan_item str
    | Pmod_functor (_, body) -> scan_module_expr body
    | Pmod_constraint (me, _) -> scan_module_expr me
    | _ -> ()
  in
  List.iter scan_item str;
  List.rev !findings

let lint_string ~filename src : finding list =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf filename;
  lint_structure ~file:filename (Parse.implementation lexbuf)

let lint_file path : finding list =
  let ic = open_in_bin path in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  lint_string ~filename:path src

(* Walk directories for .ml files (sorted for stable reports). *)
let rec ml_files path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.concat_map (fun f -> ml_files (Filename.concat path f))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let lint_paths paths : finding list =
  List.concat_map (fun p -> List.concat_map lint_file (ml_files p)) paths
