(** Symbolic cost model: the predicted communication transcript of each MPC
    primitive as a closed-form function of {b public shape only} — protocol
    kind, bit width [w], and element count [n]. Nothing here ever sees a
    share or a value.

    The formulas mirror the protocol analyses the metering layer implements
    (ABY / Araki / Fantastic Four; Appendix A): an opening moves each
    [w·n]-bit share vector once per receiving party (plus digests under
    Mal-HM's redundant delivery), a multiplication/AND is one round of
    masked-difference exchange, comparisons are the fused logarithmic
    ladders of §B, and a sharded-permutation application pays the Table-1
    per-pass totals. {!Orq_analysis.Certify} and [test_analysis] assert
    these predictions are event-identical to the recorded transcripts —
    if an implementation change makes a primitive's trace depend on
    anything beyond (kind, w, n), the certificate breaks.

    Whole-plan predictions compose these primitive transcripts by evaluating
    the engine's own operator control flow — which the lint guarantees is
    shape-directed outside the audited sites — on a shape twin of the input
    (see {!Certify.twin_tpch}); the per-primitive forms below are the base
    case that makes that evaluation a cost semantics rather than a
    measurement. *)

open Orq_proto
module Comm = Orq_net.Comm

let hash_bits = 256 (* Mal-HM digest size, must match Mpc.hash_bits *)

(* One fused lane of multiplication/AND traffic (bits, messages). *)
let mul_lane kind ~w ~n =
  match kind with
  | Ctx.Sh_dm -> (2 * 2 * w * n, 2)
  | Ctx.Sh_hm -> (3 * w * n, 3)
  | Ctx.Mal_hm -> (4 * 3 * w * n, 12)

(* One fused lane of opening traffic. *)
let open_lane kind ~w ~n =
  match kind with
  | Ctx.Sh_dm -> (2 * w * n, 2)
  | Ctx.Sh_hm -> (3 * w * n, 3)
  | Ctx.Mal_hm -> (4 * ((w * n) + hash_bits), 8)

let round_ev (bits, messages) =
  {
    Comm.ev_op = Comm.Round;
    ev_label = "";
    ev_rounds = 1;
    ev_bits = bits;
    ev_messages = messages;
  }

let barrier_ev k =
  { Comm.ev_op = Comm.Barrier; ev_label = ""; ev_rounds = k; ev_bits = 0; ev_messages = 0 }

(** Opening a [w]-bit vector of [n] elements: one round. *)
let open_events kind ~w ~n = [| round_ev (open_lane kind ~w ~n) |]

(** Multiplication / bitwise AND / OR / MUX on [w]-bit vectors: one round
    of masked-difference exchange. *)
let mul_events kind ~w ~n = [| round_ev (mul_lane kind ~w ~n) |]

(** Single-bit boolean→arithmetic conversion of [n] bits: opens the
    daBit-masked bits in one width-1 round (the correlations themselves are
    preprocessing and do not appear in the online transcript). *)
let bit_b2a_events kind ~n = open_events kind ~w:1 ~n

(** Equality of [w]-bit vectors ([n] lanes deep): XOR locally, then the
    logarithmic OR-fold — one round per level at halving stride widths,
    ⌈log₂ w⌉ rounds total (zero for w = 1). *)
let eq_events kind ~w ~n =
  let evs = ref [] in
  let s = ref (Orq_util.Ring.next_pow2 w / 2) in
  while !s > 0 do
    evs := round_ev (mul_lane kind ~w:(max 1 !s) ~n) :: !evs;
    s := !s / 2
  done;
  Array.of_list (List.rev !evs)

(** Less-than on [w]-bit vectors: the (lt, eq) block-combination ladder of
    §B — an initial width-[w] AND, then one level per doubling block size,
    each AND packing both combination products over doubled-length
    operands. ⌈log₂ w⌉ + 1 rounds. *)
let lt_events kind ~w ~n =
  let evs = ref [ round_ev (mul_lane kind ~w ~n) ] in
  let d = ref 1 in
  while !d < w do
    evs := round_ev (mul_lane kind ~w:(max 1 (w / (2 * !d))) ~n:(2 * n)) :: !evs;
    d := 2 * !d
  done;
  Array.of_list (List.rev !evs)

(** One sharded-permutation application over [n] elements of [w] bits
    (Table 1): a payload round followed by the remaining passes as
    payload-free barrier rounds. *)
let shuffle_events kind ~w ~n =
  let bits, rounds, messages =
    match kind with
    | Ctx.Sh_dm -> (2 * w * n, 2, 2)
    | Ctx.Sh_hm -> (6 * w * n, 3, 6)
    | Ctx.Mal_hm -> (24 * w * n, 4, 12)
  in
  [| round_ev (bits, messages); barrier_ev (rounds - 1) |]

let tally_of (evs : Comm.event array) : Comm.tally =
  Array.fold_left
    (fun (t : Comm.tally) (e : Comm.event) ->
      {
        Comm.t_rounds = t.Comm.t_rounds + e.Comm.ev_rounds;
        t_bits = t.Comm.t_bits + e.Comm.ev_bits;
        t_messages = t.Comm.t_messages + e.Comm.ev_messages;
      })
    Comm.zero_tally evs

(* ------------------------------------------------------------------ *)
(* Physical join candidates                                            *)
(* ------------------------------------------------------------------ *)

(** The planner-facing face of the cost model: closed-form (rounds, bits,
    messages) per candidate physical join operator, as a function of
    public node shape only. The forms themselves live next to the
    operators in {!Orq_core.Joincost} — where {!Orq_core.Dataflow} prices
    every join node before executing the winner — and are re-exported
    here so analysis tooling prices plans through one module. *)
module Join = struct
  type op = Orq_core.Joincost.op = Sort | Linear | Quad

  type shape = Orq_core.Joincost.shape = {
    j_n : int;
    j_m : int;
    j_key_w : int list;
    j_copy_w : int list;
    j_pay_w : int list;
    j_aggs : bool;
    j_bounded : bool;
    j_variant : Orq_core.Joincost.variant;
  }

  let applicable = Orq_core.Joincost.applicable
  let predict = Orq_core.Joincost.predict
  let seconds = Orq_core.Joincost.seconds
  let choose = Orq_core.Joincost.choose

  (** Every applicable candidate with its predicted tally and modeled
      network seconds under the active pacing profile, cheapest first. *)
  let rank ctx shape =
    List.filter_map
      (fun op ->
        if applicable ctx shape op then
          let t = predict ctx shape op in
          Some (op, t, seconds t)
        else None)
      [ Sort; Linear; Quad ]
    |> List.sort (fun (_, _, a) (_, _, b) -> compare a b)
end
