(** Deterministic TPC-H-shaped data generator (§5.1 "Inputs").

    Reproduces the TPC-H schema, table-size ratios, key relationships and
    value distributions at laptop micro scale factors, with all values
    integer-encoded as the paper does (prices in cents, dates as day
    offsets from 1992-01-01, categorical strings as enums). Generation is
    seeded; the MPC engine and the plaintext reference consume the same
    tables, so results compare row for row. *)

(** {2 Schema constants} *)

val w_key : int
val w_small : int
val w_date : int
val w_price : int
val w_qty : int
val date_range : int

val day_of : year:int -> month:int -> day:int -> int
(** Civil date -> day offset, used to define query parameters. *)

type plain = {
  region : Orq_plaintext.Ptable.t;
  nation : Orq_plaintext.Ptable.t;
  supplier : Orq_plaintext.Ptable.t;
  customer : Orq_plaintext.Ptable.t;
  part : Orq_plaintext.Ptable.t;
  partsupp : Orq_plaintext.Ptable.t;
  orders : Orq_plaintext.Ptable.t;
  lineitem : Orq_plaintext.Ptable.t;
}

type mpc = {
  m_region : Orq_core.Table.t;
  m_nation : Orq_core.Table.t;
  m_supplier : Orq_core.Table.t;
  m_customer : Orq_core.Table.t;
  m_part : Orq_core.Table.t;
  m_partsupp : Orq_core.Table.t;
  m_orders : Orq_core.Table.t;
  m_lineitem : Orq_core.Table.t;
}

val sizes : float -> int * int * int * int
(** (supplier, customer, part, orders) row counts at a scale factor. *)

val generate : ?seed:int -> float -> plain
val share : Orq_proto.Ctx.t -> plain -> mpc

val total_rows : plain -> int
(** Total input rows — the paper's query-size metric. *)

val catalog : mpc -> string -> Orq_core.Table.t * string list list
(** Planner catalog over the shared database: table name -> (shared
    table, candidate keys). Matches {!Orq_planner.Sql.catalog}; raises
    [Not_found] for unknown tables. *)
