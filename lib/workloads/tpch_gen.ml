(** Deterministic TPC-H-shaped data generator.

    The paper's evaluation standardizes query size on the TPC-H scale
    factor (§5.1): at SF1 the smallest table (supplier) has 10k rows and
    the largest (lineitem) about 6M. This generator reproduces the schema,
    table-size ratios, key relationships (PK-FK with realistic fan-outs)
    and value distributions at laptop micro scale factors, with all values
    integer-encoded exactly as the paper does for its own runs (prices in
    cents, dates as day offsets from 1992-01-01, categorical strings as
    small enums — the paper likewise replaces floats with integers and
    LIKE-patterns with (in)equalities).

    Generation is seeded and deterministic: the MPC engine and the
    plaintext reference engine consume the *same* plaintext tables, so
    query results can be compared row for row. *)

open Orq_util

(* ------------------------------------------------------------------ *)
(* Schema constants                                                    *)
(* ------------------------------------------------------------------ *)

(* column widths (bits) for MPC sharing *)
let w_key = 24
let w_small = 8
let w_date = 12 (* day offsets 0 .. ~2557 *)
let w_price = 28
let w_qty = 8

(* date helpers: days since 1992-01-01, 7 years of data *)
let date_range = 2557
let day_of ~year ~month ~day =
  (* close-enough civil date -> offset; only used to define the paper's
     query parameters consistently with generated data *)
  ((year - 1992) * 365) + ((month - 1) * 30) + (day - 1)

type plain = {
  region : Orq_plaintext.Ptable.t;
  nation : Orq_plaintext.Ptable.t;
  supplier : Orq_plaintext.Ptable.t;
  customer : Orq_plaintext.Ptable.t;
  part : Orq_plaintext.Ptable.t;
  partsupp : Orq_plaintext.Ptable.t;
  orders : Orq_plaintext.Ptable.t;
  lineitem : Orq_plaintext.Ptable.t;
}

type mpc = {
  m_region : Orq_core.Table.t;
  m_nation : Orq_core.Table.t;
  m_supplier : Orq_core.Table.t;
  m_customer : Orq_core.Table.t;
  m_part : Orq_core.Table.t;
  m_partsupp : Orq_core.Table.t;
  m_orders : Orq_core.Table.t;
  m_lineitem : Orq_core.Table.t;
}

(* per-table column descriptions: (name, width) *)
let region_cols = [ ("r_regionkey", w_small) ]
let nation_cols = [ ("n_nationkey", w_small); ("n_regionkey", w_small) ]

let supplier_cols =
  [ ("s_suppkey", w_key); ("s_nationkey", w_small); ("s_acctbal", w_price) ]

let customer_cols =
  [
    ("c_custkey", w_key);
    ("c_nationkey", w_small);
    ("c_mktsegment", w_small);
    ("c_acctbal", w_price);
    ("c_phone_cc", w_small);
  ]

let part_cols =
  [
    ("p_partkey", w_key);
    ("p_brand", w_small);
    ("p_type", w_small);
    ("p_size", w_small);
    ("p_container", w_small);
    ("p_retailprice", w_price);
  ]

let partsupp_cols =
  [
    ("ps_partkey", w_key);
    ("ps_suppkey", w_key);
    ("ps_availqty", 14);
    ("ps_supplycost", w_price);
  ]

let orders_cols =
  [
    ("o_orderkey", w_key);
    ("o_custkey", w_key);
    ("o_orderstatus", w_small);
    ("o_totalprice", w_price);
    ("o_orderdate", w_date);
    ("o_orderpriority", w_small);
    ("o_shippriority", w_small);
  ]

let lineitem_cols =
  [
    ("l_orderkey", w_key);
    ("l_partkey", w_key);
    ("l_suppkey", w_key);
    ("l_quantity", w_qty);
    ("l_extendedprice", w_price);
    ("l_discount", w_small);
    ("l_tax", w_small);
    ("l_returnflag", w_small);
    ("l_linestatus", w_small);
    ("l_shipdate", w_date);
    ("l_commitdate", w_date);
    ("l_receiptdate", w_date);
    ("l_shipmode", w_small);
    ("l_shipinstruct", w_small);
  ]

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

let rows_at sf base = max 1 (int_of_float (float_of_int base *. sf))

(** Table row counts at a given scale factor (TPC-H ratios). *)
let sizes sf =
  let supplier = rows_at sf 10_000 in
  let customer = rows_at sf 150_000 in
  let part = rows_at sf 200_000 in
  let orders = rows_at sf 1_500_000 in
  (supplier, customer, part, orders)

let generate ?(seed = 2024) (sf : float) : plain =
  let prg = Prg.create seed in
  let r n bound = Array.init n (fun _ -> Prg.int_below prg bound) in
  let n_supplier, n_customer, n_part, n_orders = sizes sf in
  let region =
    Orq_plaintext.Ptable.of_cols [ ("r_regionkey", Array.init 5 Fun.id) ]
  in
  let nation =
    Orq_plaintext.Ptable.of_cols
      [
        ("n_nationkey", Array.init 25 Fun.id);
        ("n_regionkey", Array.init 25 (fun i -> i mod 5));
      ]
  in
  let supplier =
    Orq_plaintext.Ptable.of_cols
      [
        ("s_suppkey", Array.init n_supplier (fun i -> i + 1));
        ("s_nationkey", r n_supplier 25);
        ("s_acctbal", r n_supplier 1_000_000);
      ]
  in
  let customer =
    Orq_plaintext.Ptable.of_cols
      [
        ("c_custkey", Array.init n_customer (fun i -> i + 1));
        ("c_nationkey", r n_customer 25);
        ("c_mktsegment", Array.map (fun x -> x + 1) (r n_customer 5));
        ("c_acctbal", r n_customer 1_000_000);
        ("c_phone_cc", Array.map (fun x -> x + 10) (r n_customer 25));
      ]
  in
  let part =
    Orq_plaintext.Ptable.of_cols
      [
        ("p_partkey", Array.init n_part (fun i -> i + 1));
        ("p_brand", Array.map (fun x -> x + 1) (r n_part 25));
        ("p_type", Array.map (fun x -> x + 1) (r n_part 150));
        ("p_size", Array.map (fun x -> x + 1) (r n_part 50));
        ("p_container", Array.map (fun x -> x + 1) (r n_part 40));
        ("p_retailprice", Array.init n_part (fun i -> 90_000 + (i mod 200 * 100)));
      ]
  in
  (* partsupp: up to 4 distinct suppliers per part, deterministic spread;
     (ps_partkey, ps_suppkey) is a primary key as in the TPC-H schema *)
  let per_part = min 4 n_supplier in
  let n_ps = n_part * per_part in
  let ps_partkey = Array.init n_ps (fun i -> (i / per_part) + 1) in
  let ps_suppkey =
    Array.init n_ps (fun i ->
        (((i / per_part) + (i mod per_part)) mod n_supplier) + 1)
  in
  let partsupp =
    Orq_plaintext.Ptable.of_cols
      [
        ("ps_partkey", ps_partkey);
        ("ps_suppkey", ps_suppkey);
        ("ps_availqty", Array.map (fun x -> x + 1) (r n_ps 9999));
        ("ps_supplycost", Array.map (fun x -> x + 100) (r n_ps 99_900));
      ]
  in
  let o_orderdate = r n_orders date_range in
  let orders =
    Orq_plaintext.Ptable.of_cols
      [
        ("o_orderkey", Array.init n_orders (fun i -> i + 1));
        ("o_custkey", Array.map (fun x -> x + 1) (r n_orders n_customer));
        (* 0 = F, 1 = O, 2 = P *)
        ("o_orderstatus", r n_orders 3);
        ("o_totalprice", Array.map (fun x -> x + 10_000) (r n_orders 500_000));
        ("o_orderdate", o_orderdate);
        ("o_orderpriority", Array.map (fun x -> x + 1) (r n_orders 5));
        ("o_shippriority", Array.make n_orders 0);
      ]
  in
  (* lineitem: 1-7 lines per order (avg 4), dates relative to order date *)
  let lines = ref [] in
  for oi = 0 to n_orders - 1 do
    let nl = 1 + Prg.int_below prg 7 in
    for ln = 0 to nl - 1 do
      ignore ln;
      let qty = 1 + Prg.int_below prg 50 in
      let price_per = 900 + Prg.int_below prg 1200 in
      let ship = min (date_range + 120) (o_orderdate.(oi) + 1 + Prg.int_below prg 121) in
      let commit = min (date_range + 120) (o_orderdate.(oi) + 30 + Prg.int_below prg 61) in
      let receipt = ship + 1 + Prg.int_below prg 30 in
      lines :=
        [|
          oi + 1;
          1 + Prg.int_below prg n_part;
          1 + Prg.int_below prg n_supplier;
          qty;
          qty * price_per;
          Prg.int_below prg 11;
          Prg.int_below prg 9;
          Prg.int_below prg 3;
          Prg.int_below prg 2;
          ship;
          commit;
          receipt;
          1 + Prg.int_below prg 7;
          1 + Prg.int_below prg 4;
        |]
        :: !lines
    done
  done;
  let lines = Array.of_list (List.rev !lines) in
  let n_li = Array.length lines in
  let li_col j = Array.init n_li (fun i -> lines.(i).(j)) in
  let lineitem =
    Orq_plaintext.Ptable.of_cols
      (List.mapi (fun j (name, _) -> (name, li_col j)) lineitem_cols)
  in
  { region; nation; supplier; customer; part; partsupp; orders; lineitem }

(* ------------------------------------------------------------------ *)
(* Sharing the database                                                *)
(* ------------------------------------------------------------------ *)

let share_table (ctx : Orq_proto.Ctx.t) name (cols : (string * int) list)
    (p : Orq_plaintext.Ptable.t) : Orq_core.Table.t =
  let n = Orq_plaintext.Ptable.nrows p in
  if not (Orq_util.Chunkvec.streaming_enabled ()) then
    Orq_core.Table.create ctx name
      (List.map
         (fun (cname, w) ->
           let get = Orq_plaintext.Ptable.get p cname in
           (cname, w, Array.of_list (List.map get p.Orq_plaintext.Ptable.rows)))
         cols)
    |> fun t ->
    assert (Orq_core.Table.nrows t = n);
    t
  else begin
    (* chunk-by-chunk sharing: each column's share vectors enter the
       budget-managed store as they are produced (evictable immediately),
       so the peak resident share data of catalog loading is bounded by
       the budget, not the table size. Draws are element-major, identical
       to sharing the whole column at once. *)
    let rows = Array.of_list p.Orq_plaintext.Ptable.rows in
    let shared_cols =
      List.map
        (fun (cname, w) ->
          let ci = Orq_plaintext.Ptable.col_idx p cname in
          let ck =
            Orq_proto.Share.share_chunked ctx Orq_proto.Share.Bool ~n
              (fun pos len ->
                Array.init len (fun i -> List.nth rows.(pos + i) ci))
          in
          (cname, Orq_core.Column.of_chunked ~width:w ck))
        cols
    in
    let valid = Orq_proto.Share.share ctx Orq_proto.Share.Bool (Array.make n 1) in
    Orq_core.Table.of_columns ctx name ~valid shared_cols
  end

(** Secret-share a generated database for the computing parties. *)
let share (ctx : Orq_proto.Ctx.t) (db : plain) : mpc =
  {
    m_region = share_table ctx "region" region_cols db.region;
    m_nation = share_table ctx "nation" nation_cols db.nation;
    m_supplier = share_table ctx "supplier" supplier_cols db.supplier;
    m_customer = share_table ctx "customer" customer_cols db.customer;
    m_part = share_table ctx "part" part_cols db.part;
    m_partsupp = share_table ctx "partsupp" partsupp_cols db.partsupp;
    m_orders = share_table ctx "orders" orders_cols db.orders;
    m_lineitem = share_table ctx "lineitem" lineitem_cols db.lineitem;
  }

(** Total input rows of a database (the paper's query-size metric). *)
let total_rows (db : plain) =
  let n t = Orq_plaintext.Ptable.nrows t in
  n db.region + n db.nation + n db.supplier + n db.customer + n db.part
  + n db.partsupp + n db.orders + n db.lineitem

(* ------------------------------------------------------------------ *)
(* Planner catalog                                                     *)
(* ------------------------------------------------------------------ *)

(** Resolve TPC-H table names for the SQL planner, with each table's
    declared candidate keys (used by the optimizer's key reasoning).
    Raises [Not_found] for unknown names — the planner converts that to a
    [Parse_error]. *)
let catalog (db : mpc) (name : string) :
    Orq_core.Table.t * string list list =
  match name with
  | "region" -> (db.m_region, [ [ "r_regionkey" ] ])
  | "nation" -> (db.m_nation, [ [ "n_nationkey" ] ])
  | "supplier" -> (db.m_supplier, [ [ "s_suppkey" ] ])
  | "customer" -> (db.m_customer, [ [ "c_custkey" ] ])
  | "part" -> (db.m_part, [ [ "p_partkey" ] ])
  | "partsupp" -> (db.m_partsupp, [ [ "ps_partkey"; "ps_suppkey" ] ])
  | "orders" -> (db.m_orders, [ [ "o_orderkey" ] ])
  | "lineitem" -> (db.m_lineitem, [])
  | _ -> raise Not_found
