(** Registry of the TPC-H workload: all 22 queries, each as an MPC
    dataflow plan plus its plaintext reference, with the result columns
    used for validation (the paper validates every query against SQLite,
    §5.1). *)

type query = {
  name : string;
  run : Tpch_gen.mpc -> Orq_core.Table.t;
  reference : Tpch_gen.plain -> Orq_plaintext.Ptable.t;
  compare_cols : string list;
}

val all : query list

val find : string -> query
(** @raise Not_found for unknown names ("Q1".."Q22"). *)

val validate :
  query -> Tpch_gen.plain -> Tpch_gen.mpc ->
  bool * int list list * int list list
(** Run the query under MPC and in the plaintext engine; compare valid
    rows masked to the MPC column widths (signed aggregates are two's
    complement at their width). Returns (ok, mpc rows, reference rows). *)
