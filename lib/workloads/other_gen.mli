(** Synthetic datasets for the nine queries from prior relational-MPC
    works (§5.1): medical studies, credit scoring, password reuse, market
    share, and the Secure Yannakakis example — the paper's shapes scaled
    down deterministically, integer-encoded. *)

module P = Orq_plaintext.Ptable

val w_id : int
val w_code : int
val w_time : int
val w_score : int
val w_price : int

val diag_hd : int
(** Diagnosis code for heart disease (Aspirin). *)

val diag_cdiff : int
val med_aspirin : int

type plain = {
  diagnosis : P.t;  (** (pid, diag, dtime) *)
  medication : P.t;  (** (pid, med, mtime) *)
  labs : P.t;  (** (pid, test, ltime) *)
  cohort : P.t;  (** (pid) — study cohort membership *)
  passwords : P.t;  (** (uid, site, pwd) *)
  credit : P.t;  (** (cid, agency, score) *)
  r_att : P.t;  (** SecQ2 R(id, att) *)
  s_val : P.t;  (** SecQ2 S(id, val) *)
  transactions : P.t;  (** MarketShare (company, price) *)
  yr : P.t;  (** SYan R(person, coins) — unique person *)
  ys : P.t;  (** SYan S(person, disease, cost) *)
  yt : P.t;  (** SYan T(disease, class) — unique disease *)
}

type mpc = {
  m_diagnosis : Orq_core.Table.t;
  m_medication : Orq_core.Table.t;
  m_labs : Orq_core.Table.t;
  m_cohort : Orq_core.Table.t;
  m_passwords : Orq_core.Table.t;
  m_credit : Orq_core.Table.t;
  m_r_att : Orq_core.Table.t;
  m_s_val : Orq_core.Table.t;
  m_transactions : Orq_core.Table.t;
  m_yr : Orq_core.Table.t;
  m_ys : Orq_core.Table.t;
  m_yt : Orq_core.Table.t;
}

val generate : ?seed:int -> int -> plain
(** [generate n]: about [n] rows in each primary table. *)

val share : Orq_proto.Ctx.t -> plain -> mpc
