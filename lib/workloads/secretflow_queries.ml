(** The five peer-to-peer TPC-H variations used by SecretFlow-SCQL, as in
    the paper's Figure 5 (right): S1/S2 are single-table filter-aggregate
    queries (no joins), S3/S4 add a PK-FK join with aggregation, and S5 an
    oblivious group-by. Run under SH-DM (the ABY-based protocol SecretFlow
    also builds on). *)

open Tpch_util
open Tpch_params
module G = Tpch_gen

type query = {
  name : string;
  run : G.mpc -> Orq_core.Table.t;
  reference : G.plain -> P.t;
  compare_cols : string list;
}

(* S1: filtered global revenue (no join, no sort) *)
let s1_run (db : G.mpc) =
  let li = D.filter db.G.m_lineitem E.(col "l_shipdate" >=. const q6_date) in
  let li =
    D.map li ~dst:"revenue"
      E.(Div_pub (col "l_extendedprice" *! (const 100 -! col "l_discount"), 100))
  in
  D.global_aggregate li ~aggs:[ sum "revenue" "total" ]

let s1_ref (db : G.plain) =
  let li = P.filter db.G.lineitem (fun g r -> g "l_shipdate" r >= q6_date) in
  let li =
    P.map li ~dst:"revenue" (fun g r ->
        g "l_extendedprice" r * (100 - g "l_discount" r) / 100)
  in
  pglobal li ~aggs:[ psum "revenue" "total" ]

(* S2: filtered global count + min/max (no join) *)
let s2_run (db : G.mpc) =
  let li = D.filter db.G.m_lineitem E.(col "l_quantity" >=. const 25) in
  D.global_aggregate li
    ~aggs:
      [
        cnt "l_quantity" "n";
        { D.src = "l_extendedprice"; dst = "hi"; fn = D.Max };
        { D.src = "l_extendedprice"; dst = "lo"; fn = D.Min };
      ]

let s2_ref (db : G.plain) =
  let li = P.filter db.G.lineitem (fun g r -> g "l_quantity" r >= 25) in
  pglobal li
    ~aggs:
      [
        pcnt "l_quantity" "n";
        pmx "l_extendedprice" "hi";
        pmn "l_extendedprice" "lo";
      ]

(* S3: PK-FK join + global aggregate *)
let s3_run (db : G.mpc) =
  let o = D.filter db.G.m_orders E.(col "o_orderdate" >=. const q3_date) in
  let j =
    D.inner_join
      (select o [ ("o_orderkey", "l_orderkey") ])
      db.G.m_lineitem ~on:[ "l_orderkey" ]
  in
  D.global_aggregate j ~aggs:[ sum "l_extendedprice" "total" ]

let s3_ref (db : G.plain) =
  let o = P.filter db.G.orders (fun g r -> g "o_orderdate" r >= q3_date) in
  let j =
    P.inner_join (pselect o [ ("o_orderkey", "l_orderkey") ]) db.G.lineitem
      ~on:[ "l_orderkey" ]
  in
  pglobal j ~aggs:[ psum "l_extendedprice" "total" ]

(* S4: join + per-key aggregation *)
let s4_run (db : G.mpc) =
  let j =
    D.inner_join
      (select db.G.m_orders
         [ ("o_orderkey", "l_orderkey"); ("o_orderpriority", "o_orderpriority") ])
      db.G.m_lineitem
      ~on:[ "l_orderkey" ]
      ~copy:[ "o_orderpriority" ]
  in
  D.aggregate j ~keys:[ "o_orderpriority" ] ~aggs:[ sum "l_quantity" "qty" ]

let s4_ref (db : G.plain) =
  let j =
    P.inner_join
      (pselect db.G.orders
         [ ("o_orderkey", "l_orderkey"); ("o_orderpriority", "o_orderpriority") ])
      db.G.lineitem
      ~on:[ "l_orderkey" ]
  in
  P.group_by j ~keys:[ "o_orderpriority" ] ~aggs:[ psum "l_quantity" "qty" ]

(* S5: oblivious group-by over a composite key *)
let s5_run (db : G.mpc) =
  D.aggregate db.G.m_lineitem
    ~keys:[ "l_returnflag"; "l_shipmode" ]
    ~aggs:[ sum "l_extendedprice" "total"; cnt "l_extendedprice" "n" ]

let s5_ref (db : G.plain) =
  P.group_by db.G.lineitem
    ~keys:[ "l_returnflag"; "l_shipmode" ]
    ~aggs:[ psum "l_extendedprice" "total"; pcnt "l_extendedprice" "n" ]

let all : query list =
  [
    { name = "S1"; run = s1_run; reference = s1_ref; compare_cols = [ "total" ] };
    { name = "S2"; run = s2_run; reference = s2_ref; compare_cols = [ "n"; "hi"; "lo" ] };
    { name = "S3"; run = s3_run; reference = s3_ref; compare_cols = [ "total" ] };
    { name = "S4"; run = s4_run; reference = s4_ref;
      compare_cols = [ "o_orderpriority"; "qty" ] };
    { name = "S5"; run = s5_run; reference = s5_ref;
      compare_cols = [ "l_returnflag"; "l_shipmode"; "total"; "n" ] };
  ]

let find name = List.find (fun q -> q.name = name) all

let validate (q : query) (plain : G.plain) (mdb : G.mpc) :
    bool * int list list * int list list =
  let result = q.run mdb in
  let widths =
    List.map (fun c -> Orq_core.Table.width result c) q.compare_cols
  in
  let mask_row row =
    List.map2 (fun v w -> v land Orq_util.Ring.mask w) row widths
  in
  let mpc_rows =
    List.map mask_row (Orq_core.Table.valid_rows_sorted result q.compare_cols)
  in
  let ref_rows =
    List.map mask_row (P.rows_sorted (q.reference plain) q.compare_cols)
  in
  (mpc_rows = ref_rows, mpc_rows, ref_rows)
