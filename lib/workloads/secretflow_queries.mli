(** The five peer-to-peer TPC-H variations used by SecretFlow-SCQL
    (Figure 5 right): S1/S2 single-table filter-aggregates, S3/S4 PK-FK
    joins with aggregation, S5 an oblivious group-by. *)

type query = {
  name : string;
  run : Tpch_gen.mpc -> Orq_core.Table.t;
  reference : Tpch_gen.plain -> Orq_plaintext.Ptable.t;
  compare_cols : string list;
}

val all : query list
val find : string -> query

val validate :
  query -> Tpch_gen.plain -> Tpch_gen.mpc ->
  bool * int list list * int list list
