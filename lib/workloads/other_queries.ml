(** The nine queries the paper collects from prior relational MPC systems
    (§5.1): Aspirin, C.Diff, Password, Credit Score, Comorbidity and SecQ2
    (Secrecy / Conclave / Senate), Market Share (Conclave), SYan (Wang &
    Yi's Secure Yannakakis Example 1.1), and Patients (the Shrinkwrap
    3-way-join used to showcase the cascading effect, which ORQ avoids by
    pre-aggregating multiplicities, §3.6). Each query ships with its
    plaintext reference twin. *)

open Tpch_util
open Orq_core
module G = Other_gen

type query = {
  name : string;
  run : G.mpc -> Table.t;
  reference : G.plain -> P.t;
  compare_cols : string list;
}

(* ------------------------------------------------------------------ *)
(* Comorbidity (Secrecy / SMCQL): most common diagnoses in a cohort    *)
(* ------------------------------------------------------------------ *)

let comorbidity_run (db : G.mpc) =
  let d = D.semi_join db.G.m_diagnosis db.G.m_cohort ~on:[ "pid" ] in
  let agg = D.aggregate d ~keys:[ "diag" ] ~aggs:[ cnt "pid" "cnt" ] in
  D.limit (D.order_by agg [ ("cnt", D.Desc); ("diag", D.Asc) ]) 10

let comorbidity_ref (db : G.plain) =
  let d = P.semi_join db.G.diagnosis db.G.cohort ~on:[ "pid" ] in
  let agg = P.group_by d ~keys:[ "diag" ] ~aggs:[ pcnt "pid" "cnt" ] in
  P.limit (P.sort agg [ ("cnt", -1); ("diag", 1) ]) 10

(* ------------------------------------------------------------------ *)
(* Aspirin count (Senate / Secrecy): patients who took aspirin after a *)
(* heart-disease diagnosis — many-to-many on pid, pre-aggregated       *)
(* ------------------------------------------------------------------ *)

let aspirin_run (db : G.mpc) =
  let d = D.filter db.G.m_diagnosis E.(col "diag" ==. const G.diag_hd) in
  let d =
    D.aggregate d ~keys:[ "pid" ]
      ~aggs:[ { D.src = "dtime"; dst = "first_diag"; fn = D.Min } ]
  in
  let m = D.filter db.G.m_medication E.(col "med" ==. const G.med_aspirin) in
  let m =
    D.aggregate m ~keys:[ "pid" ]
      ~aggs:[ { D.src = "mtime"; dst = "last_asp"; fn = D.Max } ]
  in
  let j =
    D.inner_join
      (select d [ ("pid", "pid"); ("first_diag", "first_diag") ])
      (select m [ ("pid", "pid"); ("last_asp", "last_asp") ])
      ~on:[ "pid" ] ~copy:[ "first_diag" ]
  in
  let j = D.filter j E.(col "last_asp" >=. col "first_diag") in
  D.global_aggregate j ~aggs:[ cnt "pid" "patients" ]

let aspirin_ref (db : G.plain) =
  let d = P.filter db.G.diagnosis (fun g r -> g "diag" r = G.diag_hd) in
  let d = P.group_by d ~keys:[ "pid" ] ~aggs:[ pmn "dtime" "first_diag" ] in
  let m = P.filter db.G.medication (fun g r -> g "med" r = G.med_aspirin) in
  let m = P.group_by m ~keys:[ "pid" ] ~aggs:[ pmx "mtime" "last_asp" ] in
  let j = P.inner_join d m ~on:[ "pid" ] in
  let j = P.filter j (fun g r -> g "last_asp" r >= g "first_diag" r) in
  pglobal j ~aggs:[ pcnt "pid" "patients" ]

(* ------------------------------------------------------------------ *)
(* C.Diff (Secrecy): recurrent infection — second diagnosis 15..56     *)
(* days after the previous one (adjacent-pair oblivious rewrite)       *)
(* ------------------------------------------------------------------ *)

let cdiff_run (db : G.mpc) =
  let ctx = Table.ctx db.G.m_diagnosis in
  let d = D.filter db.G.m_diagnosis E.(col "diag" ==. const G.diag_cdiff) in
  let d =
    Tablesort.sort
      ~lead:[ (d.Table.valid, 1, Tablesort.Asc) ]
      d
      [ ("pid", Tablesort.Asc); ("dtime", Tablesort.Asc) ]
  in
  let n = Table.nrows d in
  let pid = Table.column d "pid" and tm = Table.column d "dtime" in
  let v = d.Table.valid in
  let hd s = Orq_proto.Share.sub_range s 0 (n - 1) in
  let tl s = Orq_proto.Share.sub_range s 1 (n - 1) in
  let same_pid =
    Orq_circuits.Compare.eq ctx ~w:G.w_id (hd pid) (tl pid)
  in
  let both_valid = Orq_proto.Mpc.band1 ctx (hd v) (tl v) in
  let diff = Orq_circuits.Adder.sub ctx ~w:(G.w_time + 1) (tl tm) (hd tm) in
  let ge15 =
    Orq_circuits.Compare.ge ctx ~w:(G.w_time + 1) diff
      (Orq_proto.Share.public ctx Orq_proto.Share.Bool (n - 1) 15)
  in
  let le56 =
    Orq_circuits.Compare.le ctx ~w:(G.w_time + 1) diff
      (Orq_proto.Share.public ctx Orq_proto.Share.Bool (n - 1) 56)
  in
  let mark =
    Orq_proto.Mpc.band1 ctx
      (Orq_proto.Mpc.band1 ctx same_pid both_valid)
      (Orq_proto.Mpc.band1 ctx ge15 le56)
  in
  let marker =
    Orq_proto.Share.append (Orq_proto.Share.public ctx Orq_proto.Share.Bool 1 0) mark
  in
  let d = Table.and_valid d marker in
  let d = D.distinct d [ "pid" ] in
  D.global_aggregate d ~aggs:[ cnt "pid" "patients" ]

let cdiff_ref (db : G.plain) =
  let d = P.filter db.G.diagnosis (fun g r -> g "diag" r = G.diag_cdiff) in
  let d = P.sort d [ ("pid", 1); ("dtime", 1) ] in
  let rows = d.P.rows in
  let getp = P.get d "pid" and gett = P.get d "dtime" in
  let rec pids acc = function
    | a :: (b :: _ as tl) ->
        let acc =
          if getp a = getp b && gett b - gett a >= 15 && gett b - gett a <= 56
          then getp a :: acc
          else acc
        in
        pids acc tl
    | _ -> acc
  in
  let distinct_pids = List.sort_uniq compare (pids [] rows) in
  P.create [ "patients" ] [ [ List.length distinct_pids ] ]

(* ------------------------------------------------------------------ *)
(* Password reuse (Senate / Secrecy): users with the same password on  *)
(* at least two sites                                                  *)
(* ------------------------------------------------------------------ *)

let password_run (db : G.mpc) =
  let p = D.distinct db.G.m_passwords [ "uid"; "pwd"; "site" ] in
  let agg = D.aggregate p ~keys:[ "uid"; "pwd" ] ~aggs:[ cnt "site" "nsites" ] in
  let reused = D.filter agg E.(col "nsites" >=. const 2) in
  let users = D.distinct reused [ "uid" ] in
  D.global_aggregate users ~aggs:[ cnt "uid" "reusers" ]

let password_ref (db : G.plain) =
  let p = P.distinct db.G.passwords [ "uid"; "pwd"; "site" ] in
  let agg = P.group_by p ~keys:[ "uid"; "pwd" ] ~aggs:[ pcnt "site" "nsites" ] in
  let reused = P.filter agg (fun g r -> g "nsites" r >= 2) in
  let users = P.distinct reused [ "uid" ] in
  pglobal users ~aggs:[ pcnt "uid" "reusers" ]

(* ------------------------------------------------------------------ *)
(* Credit score (SMCQL / Secrecy): persons whose scores from the two   *)
(* bureaus disagree by more than a threshold                           *)
(* ------------------------------------------------------------------ *)

let credit_delta = 50

let credit_run (db : G.mpc) =
  let agg =
    D.aggregate db.G.m_credit ~keys:[ "cid" ]
      ~aggs:
        [
          { D.src = "score"; dst = "lo"; fn = D.Min };
          { D.src = "score"; dst = "hi"; fn = D.Max };
        ]
  in
  let diff = D.filter agg E.(col "hi" -! col "lo" >. const credit_delta) in
  D.global_aggregate diff ~aggs:[ cnt "cid" "persons" ]

let credit_ref (db : G.plain) =
  let agg =
    P.group_by db.G.credit ~keys:[ "cid" ]
      ~aggs:[ pmn "score" "lo"; pmx "score" "hi" ]
  in
  let diff = P.filter agg (fun g r -> g "hi" r - g "lo" r > credit_delta) in
  pglobal diff ~aggs:[ pcnt "cid" "persons" ]

(* ------------------------------------------------------------------ *)
(* SecQ2 (Secrecy): per-attribute totals across a PK-FK join           *)
(* ------------------------------------------------------------------ *)

let secq2_run (db : G.mpc) =
  let j =
    D.inner_join db.G.m_r_att db.G.m_s_val ~on:[ "id" ] ~copy:[ "att" ]
  in
  D.aggregate j ~keys:[ "att" ] ~aggs:[ sum "val" "total" ]

let secq2_ref (db : G.plain) =
  let j = P.inner_join db.G.r_att db.G.s_val ~on:[ "id" ] in
  P.group_by j ~keys:[ "att" ] ~aggs:[ psum "val" "total" ]

(* ------------------------------------------------------------------ *)
(* Market share (Conclave): each company's share of total volume       *)
(* ------------------------------------------------------------------ *)

let market_share_run (db : G.mpc) =
  let t = db.G.m_transactions in
  let total = D.global_aggregate t ~aggs:[ sum "price" "total" ] in
  let agg = D.aggregate t ~keys:[ "company" ] ~aggs:[ sum "price" "volume" ] in
  let agg = D.with_scalar agg ~scalar:total ~src:"total" ~dst:"total" in
  D.map agg ~dst:"share_pct" E.(Div (col "volume" *! const 100, col "total"))

let market_share_ref (db : G.plain) =
  let t = db.G.transactions in
  let total = pglobal t ~aggs:[ psum "price" "total" ] in
  let agg = P.group_by t ~keys:[ "company" ] ~aggs:[ psum "price" "volume" ] in
  let agg = pwith_scalar agg ~scalar:total ~src:"total" ~dst:"total" in
  P.map agg ~dst:"share_pct" (fun g r -> g "volume" r * 100 / g "total" r)

(* ------------------------------------------------------------------ *)
(* SYan — Secure Yannakakis Example 1.1 (Wang & Yi):                   *)
(* SELECT T.class, SUM(S.cost * (1 - R.coins)) GROUP BY T.class        *)
(* ------------------------------------------------------------------ *)

let syan_run (db : G.mpc) =
  let j =
    D.inner_join db.G.m_yr db.G.m_ys ~on:[ "person" ] ~copy:[ "coins" ]
  in
  let j =
    D.map j ~dst:"net_cost"
      E.(Div_pub (col "cost" *! (const 100 -! col "coins"), 100))
  in
  let j2 = D.inner_join db.G.m_yt j ~on:[ "disease" ] ~copy:[ "class" ] in
  D.aggregate j2 ~keys:[ "class" ] ~aggs:[ sum "net_cost" "total" ]

let syan_ref (db : G.plain) =
  let j = P.inner_join db.G.yr db.G.ys ~on:[ "person" ] in
  let j =
    P.map j ~dst:"net_cost" (fun g r -> g "cost" r * (100 - g "coins" r) / 100)
  in
  let j2 = P.inner_join db.G.yt j ~on:[ "disease" ] in
  P.group_by j2 ~keys:[ "class" ] ~aggs:[ psum "net_cost" "total" ]

(* ------------------------------------------------------------------ *)
(* Patients (Shrinkwrap): COUNT(rows) of the 3-way many-to-many join      *)
(* diagnosis ⋈ medication ⋈ labs on pid — the cascading-effect query.  *)
(* ORQ evaluates it with multiplicity pre-aggregation (§3.6, Fig. 3).  *)
(* ------------------------------------------------------------------ *)

let patients_run (db : G.mpc) =
  let cd =
    D.aggregate db.G.m_diagnosis ~keys:[ "pid" ] ~aggs:[ cnt "diag" "cd" ]
  in
  let cm =
    D.aggregate db.G.m_medication ~keys:[ "pid" ] ~aggs:[ cnt "med" "cm" ]
  in
  let cl = D.aggregate db.G.m_labs ~keys:[ "pid" ] ~aggs:[ cnt "test" "cl" ] in
  let j =
    D.inner_join
      (select cd [ ("pid", "pid"); ("cd", "cd") ])
      (select cm [ ("pid", "pid"); ("cm", "cm") ])
      ~on:[ "pid" ] ~copy:[ "cd" ]
  in
  let j2 =
    D.inner_join
      (select j [ ("pid", "pid"); ("cd", "cd"); ("cm", "cm") ])
      (select cl [ ("pid", "pid"); ("cl", "cl") ])
      ~on:[ "pid" ]
      ~copy:[ "cd"; "cm" ]
  in
  let j2 = D.map j2 ~dst:"mult" E.(col "cd" *! col "cm" *! col "cl") in
  D.global_aggregate j2 ~aggs:[ sum "mult" "join_size" ]

let patients_ref (db : G.plain) =
  let cd = P.group_by db.G.diagnosis ~keys:[ "pid" ] ~aggs:[ pcnt "diag" "cd" ] in
  let cm = P.group_by db.G.medication ~keys:[ "pid" ] ~aggs:[ pcnt "med" "cm" ] in
  let cl = P.group_by db.G.labs ~keys:[ "pid" ] ~aggs:[ pcnt "test" "cl" ] in
  let j = P.inner_join cd cm ~on:[ "pid" ] in
  let j2 = P.inner_join j cl ~on:[ "pid" ] in
  let j2 = P.map j2 ~dst:"mult" (fun g r -> g "cd" r * g "cm" r * g "cl" r) in
  pglobal j2 ~aggs:[ psum "mult" "join_size" ]

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let all : query list =
  [
    { name = "Comorbidity"; run = comorbidity_run; reference = comorbidity_ref;
      compare_cols = [ "diag"; "cnt" ] };
    { name = "Aspirin"; run = aspirin_run; reference = aspirin_ref;
      compare_cols = [ "patients" ] };
    { name = "C.Diff"; run = cdiff_run; reference = cdiff_ref;
      compare_cols = [ "patients" ] };
    { name = "Password"; run = password_run; reference = password_ref;
      compare_cols = [ "reusers" ] };
    { name = "Credit"; run = credit_run; reference = credit_ref;
      compare_cols = [ "persons" ] };
    { name = "SecQ2"; run = secq2_run; reference = secq2_ref;
      compare_cols = [ "att"; "total" ] };
    { name = "MarketShare"; run = market_share_run; reference = market_share_ref;
      compare_cols = [ "company"; "share_pct" ] };
    { name = "SYan"; run = syan_run; reference = syan_ref;
      compare_cols = [ "class"; "total" ] };
    { name = "Patients"; run = patients_run; reference = patients_ref;
      compare_cols = [ "join_size" ] };
  ]

let find name = List.find (fun q -> q.name = name) all

let validate (q : query) (plain : G.plain) (mdb : G.mpc) :
    bool * int list list * int list list =
  let result = q.run mdb in
  let widths = List.map (fun c -> Table.width result c) q.compare_cols in
  let mask_row row =
    List.map2 (fun v w -> v land Orq_util.Ring.mask w) row widths
  in
  let mpc_rows =
    List.map mask_row (Table.valid_rows_sorted result q.compare_cols)
  in
  let ref_rows =
    List.map mask_row (P.rows_sorted (q.reference plain) q.compare_cols)
  in
  (mpc_rows = ref_rows, mpc_rows, ref_rows)
