(** Shared helpers for the workload queries: rename-projection, aggregation
    shorthands, and their plaintext-engine twins. *)

module D = Orq_core.Dataflow
module E = Orq_core.Expr
module T = Orq_core.Table
module P = Orq_plaintext.Ptable

(* MPC-side shorthands *)
let sum src dst = { D.src; dst; fn = D.Sum }
let cnt src dst = { D.src; dst; fn = D.Count }
let mn src dst = { D.src; dst; fn = D.Min }
let mx src dst = { D.src; dst; fn = D.Max }
let avg src dst = { D.src; dst; fn = D.Avg }

(** Project to the given columns, renaming on the way:
    [select t [(old, new); ...]]. *)
let select t (pairs : (string * string) list) =
  let t = T.project t (List.map fst pairs) in
  List.fold_left
    (fun t (from, into) -> if from = into then t else T.rename_col t ~from ~into)
    t pairs

(* Plaintext-side shorthands *)
let psum src dst = { P.src; dst; fn = P.Sum }
let pcnt src dst = { P.src; dst; fn = P.Count }
let pmn src dst = { P.src; dst; fn = P.Min }
let pmx src dst = { P.src; dst; fn = P.Max }
let pavg src dst = { P.src; dst; fn = P.Avg }

let pselect t (pairs : (string * string) list) =
  let t = P.project t (List.map fst pairs) in
  List.fold_left
    (fun t (from, into) -> if from = into then t else P.rename_col t ~from ~into)
    t pairs

(** Plaintext whole-table aggregation: one row (of the aggregates), no key. *)
let pglobal (t : P.t) ~(aggs : P.agg list) : P.t =
  let t1 = P.map t ~dst:"#one" (fun _ _ -> 1) in
  let g = P.group_by t1 ~keys:[ "#one" ] ~aggs in
  P.project g (List.map (fun a -> a.P.dst) aggs)

(** Plaintext scalar broadcast: attach the single value of [scalar.(src)]
    to every row of [t] as [dst]. *)
let pwith_scalar (t : P.t) ~(scalar : P.t) ~src ~dst : P.t =
  let v =
    match scalar.P.rows with
    | [ r ] -> P.get scalar src r
    | _ -> invalid_arg "pwith_scalar: not a scalar"
  in
  P.map t ~dst (fun _ _ -> v)
