(** TPC-H queries 1-11 in the ORQ dataflow API, each with its plaintext
    reference twin (the role SQLite plays in the paper's §5.1). Floats are
    pre-scaled integers and LIKE-patterns are (in)equalities, exactly as the
    paper's own TPC-H port does. *)

open Tpch_util
open Tpch_params
module G = Tpch_gen

(* ------------------------------------------------------------------ *)
(* Q1: pricing summary report                                          *)
(* ------------------------------------------------------------------ *)

let q1_run (db : G.mpc) =
  let li = db.G.m_lineitem in
  let li = D.filter li E.(col "l_shipdate" <=. const q1_delta_date) in
  let li =
    D.map li ~dst:"disc_price"
      E.(Div_pub (col "l_extendedprice" *! (const 100 -! col "l_discount"), 100))
  in
  let li =
    D.map li ~dst:"charge"
      E.(Div_pub (col "disc_price" *! (const 100 +! col "l_tax"), 100))
  in
  D.aggregate li
    ~keys:[ "l_returnflag"; "l_linestatus" ]
    ~aggs:
      [
        sum "l_quantity" "sum_qty";
        sum "l_extendedprice" "sum_base";
        sum "disc_price" "sum_disc_price";
        sum "charge" "sum_charge";
        avg "l_quantity" "avg_qty";
        cnt "l_quantity" "count_order";
      ]

let q1_ref (db : G.plain) =
  let li =
    P.filter db.G.lineitem (fun g r -> g "l_shipdate" r <= q1_delta_date)
  in
  let li =
    P.map li ~dst:"disc_price" (fun g r ->
        g "l_extendedprice" r * (100 - g "l_discount" r) / 100)
  in
  let li =
    P.map li ~dst:"charge" (fun g r ->
        g "disc_price" r * (100 + g "l_tax" r) / 100)
  in
  P.group_by li
    ~keys:[ "l_returnflag"; "l_linestatus" ]
    ~aggs:
      [
        psum "l_quantity" "sum_qty";
        psum "l_extendedprice" "sum_base";
        psum "disc_price" "sum_disc_price";
        psum "charge" "sum_charge";
        pavg "l_quantity" "avg_qty";
        pcnt "l_quantity" "count_order";
      ]

let q1_cols =
  [
    "l_returnflag";
    "l_linestatus";
    "sum_qty";
    "sum_base";
    "sum_disc_price";
    "sum_charge";
    "avg_qty";
    "count_order";
  ]

(* ------------------------------------------------------------------ *)
(* Q2: minimum-cost supplier                                           *)
(* ------------------------------------------------------------------ *)

let q2_run (db : G.mpc) =
  let nation_r =
    D.filter db.G.m_nation E.(col "n_regionkey" ==. const q2_region)
  in
  let supp =
    D.semi_join db.G.m_supplier
      (select nation_r [ ("n_nationkey", "s_nationkey") ])
      ~on:[ "s_nationkey" ]
  in
  let ps =
    D.semi_join db.G.m_partsupp
      (select supp [ ("s_suppkey", "ps_suppkey") ])
      ~on:[ "ps_suppkey" ]
  in
  let parts =
    D.filter db.G.m_part
      E.(col "p_size" <=. const q2_size &&. (col "p_type" <=. const q2_type))
  in
  let parts = select parts [ ("p_partkey", "ps_partkey") ] in
  let j = D.inner_join parts ps ~on:[ "ps_partkey" ] in
  let mins =
    D.aggregate j ~keys:[ "ps_partkey" ]
      ~aggs:[ mn "ps_supplycost" "min_cost" ]
  in
  let mins = select mins [ ("ps_partkey", "ps_partkey"); ("min_cost", "min_cost") ] in
  let j2 = D.inner_join mins j ~on:[ "ps_partkey" ] ~copy:[ "min_cost" ] in
  D.filter j2 E.(col "ps_supplycost" ==. col "min_cost")

let q2_ref (db : G.plain) =
  let nation_r =
    P.filter db.G.nation (fun g r -> g "n_regionkey" r = q2_region)
  in
  let supp =
    P.semi_join db.G.supplier
      (pselect nation_r [ ("n_nationkey", "s_nationkey") ])
      ~on:[ "s_nationkey" ]
  in
  let ps =
    P.semi_join db.G.partsupp
      (pselect supp [ ("s_suppkey", "ps_suppkey") ])
      ~on:[ "ps_suppkey" ]
  in
  let parts =
    P.filter db.G.part (fun g r ->
        g "p_size" r <= q2_size && g "p_type" r <= q2_type)
  in
  let parts = pselect parts [ ("p_partkey", "ps_partkey") ] in
  let j = P.inner_join parts ps ~on:[ "ps_partkey" ] in
  let mins =
    P.group_by j ~keys:[ "ps_partkey" ] ~aggs:[ pmn "ps_supplycost" "min_cost" ]
  in
  let j2 = P.inner_join mins j ~on:[ "ps_partkey" ] in
  P.filter j2 (fun g r -> g "ps_supplycost" r = g "min_cost" r)

let q2_cols = [ "ps_partkey"; "ps_suppkey"; "min_cost" ]

(* ------------------------------------------------------------------ *)
(* Q3: shipping priority (Listing 1)                                   *)
(* ------------------------------------------------------------------ *)

let q3_run (db : G.mpc) =
  let c =
    D.filter db.G.m_customer E.(col "c_mktsegment" ==. const q3_segment)
  in
  let o = D.filter db.G.m_orders E.(col "o_orderdate" <. const q3_date) in
  let li = D.filter db.G.m_lineitem E.(col "l_shipdate" >. const q3_date) in
  let li =
    D.map li ~dst:"revenue"
      E.(Div_pub (col "l_extendedprice" *! (const 100 -! col "l_discount"), 100))
  in
  let co =
    D.inner_join (select c [ ("c_custkey", "o_custkey") ]) o ~on:[ "o_custkey" ]
  in
  let j =
    D.inner_join
      (select co
         [
           ("o_orderkey", "l_orderkey");
           ("o_orderdate", "o_orderdate");
           ("o_shippriority", "o_shippriority");
         ])
      li
      ~on:[ "l_orderkey" ]
      ~copy:[ "o_orderdate"; "o_shippriority" ]
  in
  let agg =
    D.aggregate j
      ~keys:[ "l_orderkey"; "o_orderdate"; "o_shippriority" ]
      ~aggs:[ sum "revenue" "total_revenue" ]
  in
  D.limit (D.order_by agg [ ("total_revenue", D.Desc); ("o_orderdate", D.Asc) ]) 10

let q3_ref (db : G.plain) =
  let c = P.filter db.G.customer (fun g r -> g "c_mktsegment" r = q3_segment) in
  let o = P.filter db.G.orders (fun g r -> g "o_orderdate" r < q3_date) in
  let li = P.filter db.G.lineitem (fun g r -> g "l_shipdate" r > q3_date) in
  let li =
    P.map li ~dst:"revenue" (fun g r ->
        g "l_extendedprice" r * (100 - g "l_discount" r) / 100)
  in
  let co =
    P.inner_join (pselect c [ ("c_custkey", "o_custkey") ]) o ~on:[ "o_custkey" ]
  in
  let j =
    P.inner_join
      (pselect co
         [
           ("o_orderkey", "l_orderkey");
           ("o_orderdate", "o_orderdate");
           ("o_shippriority", "o_shippriority");
         ])
      li
      ~on:[ "l_orderkey" ]
  in
  let agg =
    P.group_by j
      ~keys:[ "l_orderkey"; "o_orderdate"; "o_shippriority" ]
      ~aggs:[ psum "revenue" "total_revenue" ]
  in
  P.limit (P.sort agg [ ("total_revenue", -1); ("o_orderdate", 1) ]) 10

let q3_cols = [ "l_orderkey"; "o_orderdate"; "o_shippriority"; "total_revenue" ]

(* ------------------------------------------------------------------ *)
(* Q4: order priority checking (semi-join)                             *)
(* ------------------------------------------------------------------ *)

let q4_run (db : G.mpc) =
  let o =
    D.filter db.G.m_orders
      E.(col "o_orderdate" >=. const q4_date &&. (col "o_orderdate" <. const (q4_date + 90)))
  in
  let li =
    D.filter db.G.m_lineitem E.(col "l_commitdate" <. col "l_receiptdate")
  in
  let sem =
    D.semi_join o (select li [ ("l_orderkey", "o_orderkey") ]) ~on:[ "o_orderkey" ]
  in
  D.aggregate sem ~keys:[ "o_orderpriority" ]
    ~aggs:[ cnt "o_orderkey" "order_count" ]

let q4_ref (db : G.plain) =
  let o =
    P.filter db.G.orders (fun g r ->
        g "o_orderdate" r >= q4_date && g "o_orderdate" r < q4_date + 90)
  in
  let li =
    P.filter db.G.lineitem (fun g r -> g "l_commitdate" r < g "l_receiptdate" r)
  in
  let sem =
    P.semi_join o (pselect li [ ("l_orderkey", "o_orderkey") ]) ~on:[ "o_orderkey" ]
  in
  P.group_by sem ~keys:[ "o_orderpriority" ]
    ~aggs:[ pcnt "o_orderkey" "order_count" ]

let q4_cols = [ "o_orderpriority"; "order_count" ]

(* ------------------------------------------------------------------ *)
(* Q5: local supplier volume (5-way join)                              *)
(* ------------------------------------------------------------------ *)

let q5_run (db : G.mpc) =
  let nation_r =
    D.filter db.G.m_nation E.(col "n_regionkey" ==. const q5_region)
  in
  let supp =
    D.semi_join db.G.m_supplier
      (select nation_r [ ("n_nationkey", "s_nationkey") ])
      ~on:[ "s_nationkey" ]
  in
  let li =
    D.inner_join
      (select supp [ ("s_suppkey", "l_suppkey"); ("s_nationkey", "s_nationkey") ])
      db.G.m_lineitem ~on:[ "l_suppkey" ] ~copy:[ "s_nationkey" ]
  in
  let o =
    D.filter db.G.m_orders
      E.(col "o_orderdate" >=. const q5_date &&. (col "o_orderdate" <. const (q5_date + 365)))
  in
  let co =
    D.inner_join
      (select db.G.m_customer
         [ ("c_custkey", "o_custkey"); ("c_nationkey", "c_nationkey") ])
      o ~on:[ "o_custkey" ] ~copy:[ "c_nationkey" ]
  in
  let j =
    D.inner_join
      (select co [ ("o_orderkey", "l_orderkey"); ("c_nationkey", "c_nationkey") ])
      li
      ~on:[ "l_orderkey" ]
      ~copy:[ "c_nationkey" ]
  in
  let j = D.filter j E.(col "c_nationkey" ==. col "s_nationkey") in
  let j =
    D.map j ~dst:"revenue"
      E.(Div_pub (col "l_extendedprice" *! (const 100 -! col "l_discount"), 100))
  in
  D.aggregate j ~keys:[ "s_nationkey" ] ~aggs:[ sum "revenue" "revenue_sum" ]

let q5_ref (db : G.plain) =
  let nation_r =
    P.filter db.G.nation (fun g r -> g "n_regionkey" r = q5_region)
  in
  let supp =
    P.semi_join db.G.supplier
      (pselect nation_r [ ("n_nationkey", "s_nationkey") ])
      ~on:[ "s_nationkey" ]
  in
  let li =
    P.inner_join
      (pselect supp [ ("s_suppkey", "l_suppkey"); ("s_nationkey", "s_nationkey") ])
      db.G.lineitem ~on:[ "l_suppkey" ]
  in
  let o =
    P.filter db.G.orders (fun g r ->
        g "o_orderdate" r >= q5_date && g "o_orderdate" r < q5_date + 365)
  in
  let co =
    P.inner_join
      (pselect db.G.customer
         [ ("c_custkey", "o_custkey"); ("c_nationkey", "c_nationkey") ])
      o ~on:[ "o_custkey" ]
  in
  let j =
    P.inner_join
      (pselect co [ ("o_orderkey", "l_orderkey"); ("c_nationkey", "c_nationkey") ])
      li
      ~on:[ "l_orderkey" ]
  in
  let j = P.filter j (fun g r -> g "c_nationkey" r = g "s_nationkey" r) in
  let j =
    P.map j ~dst:"revenue" (fun g r ->
        g "l_extendedprice" r * (100 - g "l_discount" r) / 100)
  in
  P.group_by j ~keys:[ "s_nationkey" ] ~aggs:[ psum "revenue" "revenue_sum" ]

let q5_cols = [ "s_nationkey"; "revenue_sum" ]

(* ------------------------------------------------------------------ *)
(* Q6: forecasting revenue change (no sorting at all)                  *)
(* ------------------------------------------------------------------ *)

let q6_run (db : G.mpc) =
  let li =
    D.filter db.G.m_lineitem
      E.(
        col "l_shipdate" >=. const q6_date
        &&. (col "l_shipdate" <. const (q6_date + 365))
        &&. (col "l_discount" >=. const (q6_discount - 1))
        &&. (col "l_discount" <=. const (q6_discount + 1))
        &&. (col "l_quantity" <. const q6_quantity))
  in
  let li =
    D.map li ~dst:"revenue"
      E.(Div_pub (col "l_extendedprice" *! col "l_discount", 100))
  in
  D.global_aggregate li ~aggs:[ sum "revenue" "revenue_sum" ]

let q6_ref (db : G.plain) =
  let li =
    P.filter db.G.lineitem (fun g r ->
        g "l_shipdate" r >= q6_date
        && g "l_shipdate" r < q6_date + 365
        && g "l_discount" r >= q6_discount - 1
        && g "l_discount" r <= q6_discount + 1
        && g "l_quantity" r < q6_quantity)
  in
  let li =
    P.map li ~dst:"revenue" (fun g r ->
        g "l_extendedprice" r * g "l_discount" r / 100)
  in
  pglobal li ~aggs:[ psum "revenue" "revenue_sum" ]

let q6_cols = [ "revenue_sum" ]

(* ------------------------------------------------------------------ *)
(* Q7: volume shipping between two nations                             *)
(* ------------------------------------------------------------------ *)

let q7_run (db : G.mpc) =
  let li =
    D.filter db.G.m_lineitem
      E.(col "l_shipdate" >=. const q7_date_lo &&. (col "l_shipdate" <=. const q7_date_hi))
  in
  let li =
    D.inner_join
      (select db.G.m_supplier
         [ ("s_suppkey", "l_suppkey"); ("s_nationkey", "s_nationkey") ])
      li ~on:[ "l_suppkey" ] ~copy:[ "s_nationkey" ]
  in
  let co =
    D.inner_join
      (select db.G.m_customer
         [ ("c_custkey", "o_custkey"); ("c_nationkey", "c_nationkey") ])
      db.G.m_orders ~on:[ "o_custkey" ] ~copy:[ "c_nationkey" ]
  in
  let j =
    D.inner_join
      (select co [ ("o_orderkey", "l_orderkey"); ("c_nationkey", "c_nationkey") ])
      li
      ~on:[ "l_orderkey" ]
      ~copy:[ "c_nationkey" ]
  in
  let j =
    D.filter j
      E.(
        col "s_nationkey" ==. const q7_nation1
        &&. (col "c_nationkey" ==. const q7_nation2)
        ||. (col "s_nationkey" ==. const q7_nation2
            &&. (col "c_nationkey" ==. const q7_nation1)))
  in
  let j = D.map j ~dst:"l_year" E.(Div_pub (col "l_shipdate", 365)) in
  let j =
    D.map j ~dst:"volume"
      E.(Div_pub (col "l_extendedprice" *! (const 100 -! col "l_discount"), 100))
  in
  D.aggregate j
    ~keys:[ "s_nationkey"; "c_nationkey"; "l_year" ]
    ~aggs:[ sum "volume" "revenue_sum" ]

let q7_ref (db : G.plain) =
  let li =
    P.filter db.G.lineitem (fun g r ->
        g "l_shipdate" r >= q7_date_lo && g "l_shipdate" r <= q7_date_hi)
  in
  let li =
    P.inner_join
      (pselect db.G.supplier
         [ ("s_suppkey", "l_suppkey"); ("s_nationkey", "s_nationkey") ])
      li ~on:[ "l_suppkey" ]
  in
  let co =
    P.inner_join
      (pselect db.G.customer
         [ ("c_custkey", "o_custkey"); ("c_nationkey", "c_nationkey") ])
      db.G.orders ~on:[ "o_custkey" ]
  in
  let j =
    P.inner_join
      (pselect co [ ("o_orderkey", "l_orderkey"); ("c_nationkey", "c_nationkey") ])
      li
      ~on:[ "l_orderkey" ]
  in
  let j =
    P.filter j (fun g r ->
        (g "s_nationkey" r = q7_nation1 && g "c_nationkey" r = q7_nation2)
        || (g "s_nationkey" r = q7_nation2 && g "c_nationkey" r = q7_nation1))
  in
  let j = P.map j ~dst:"l_year" (fun g r -> g "l_shipdate" r / 365) in
  let j =
    P.map j ~dst:"volume" (fun g r ->
        g "l_extendedprice" r * (100 - g "l_discount" r) / 100)
  in
  P.group_by j
    ~keys:[ "s_nationkey"; "c_nationkey"; "l_year" ]
    ~aggs:[ psum "volume" "revenue_sum" ]

let q7_cols = [ "s_nationkey"; "c_nationkey"; "l_year"; "revenue_sum" ]

(* ------------------------------------------------------------------ *)
(* Q8: national market share                                           *)
(* ------------------------------------------------------------------ *)

let q8_run (db : G.mpc) =
  let nation_r =
    D.filter db.G.m_nation E.(col "n_regionkey" ==. const q8_region)
  in
  let cust =
    D.semi_join db.G.m_customer
      (select nation_r [ ("n_nationkey", "c_nationkey") ])
      ~on:[ "c_nationkey" ]
  in
  let o =
    D.filter db.G.m_orders
      E.(col "o_orderdate" >=. const q8_date_lo &&. (col "o_orderdate" <=. const q8_date_hi))
  in
  let co =
    D.inner_join (select cust [ ("c_custkey", "o_custkey") ]) o ~on:[ "o_custkey" ]
  in
  let co = D.map co ~dst:"o_year" E.(Div_pub (col "o_orderdate", 365)) in
  let parts = D.filter db.G.m_part E.(col "p_type" <=. const q8_type) in
  let li =
    D.inner_join
      (select parts [ ("p_partkey", "l_partkey") ])
      db.G.m_lineitem ~on:[ "l_partkey" ]
  in
  let li =
    D.inner_join
      (select db.G.m_supplier
         [ ("s_suppkey", "l_suppkey"); ("s_nationkey", "s_nationkey") ])
      li ~on:[ "l_suppkey" ] ~copy:[ "s_nationkey" ]
  in
  let j =
    D.inner_join
      (select co [ ("o_orderkey", "l_orderkey"); ("o_year", "o_year") ])
      li
      ~on:[ "l_orderkey" ]
      ~copy:[ "o_year" ]
  in
  let j =
    D.map j ~dst:"volume"
      E.(Div_pub (col "l_extendedprice" *! (const 100 -! col "l_discount"), 100))
  in
  let j =
    D.map j ~dst:"nvolume"
      E.(If (col "s_nationkey" ==. const q8_nation, col "volume", const 0))
  in
  let agg =
    D.aggregate j ~keys:[ "o_year" ]
      ~aggs:[ sum "volume" "total"; sum "nvolume" "nation_total" ]
  in
  D.map agg ~dst:"share_pct" E.(Div (col "nation_total" *! const 100, col "total"))

let q8_ref (db : G.plain) =
  let nation_r = P.filter db.G.nation (fun g r -> g "n_regionkey" r = q8_region) in
  let cust =
    P.semi_join db.G.customer
      (pselect nation_r [ ("n_nationkey", "c_nationkey") ])
      ~on:[ "c_nationkey" ]
  in
  let o =
    P.filter db.G.orders (fun g r ->
        g "o_orderdate" r >= q8_date_lo && g "o_orderdate" r <= q8_date_hi)
  in
  let co =
    P.inner_join (pselect cust [ ("c_custkey", "o_custkey") ]) o ~on:[ "o_custkey" ]
  in
  let co = P.map co ~dst:"o_year" (fun g r -> g "o_orderdate" r / 365) in
  let parts = P.filter db.G.part (fun g r -> g "p_type" r <= q8_type) in
  let li =
    P.inner_join (pselect parts [ ("p_partkey", "l_partkey") ]) db.G.lineitem
      ~on:[ "l_partkey" ]
  in
  let li =
    P.inner_join
      (pselect db.G.supplier
         [ ("s_suppkey", "l_suppkey"); ("s_nationkey", "s_nationkey") ])
      li ~on:[ "l_suppkey" ]
  in
  let j =
    P.inner_join
      (pselect co [ ("o_orderkey", "l_orderkey"); ("o_year", "o_year") ])
      li
      ~on:[ "l_orderkey" ]
  in
  let j =
    P.map j ~dst:"volume" (fun g r ->
        g "l_extendedprice" r * (100 - g "l_discount" r) / 100)
  in
  let j =
    P.map j ~dst:"nvolume" (fun g r ->
        if g "s_nationkey" r = q8_nation then g "volume" r else 0)
  in
  let agg =
    P.group_by j ~keys:[ "o_year" ]
      ~aggs:[ psum "volume" "total"; psum "nvolume" "nation_total" ]
  in
  P.map agg ~dst:"share_pct" (fun g r -> g "nation_total" r * 100 / g "total" r)

let q8_cols = [ "o_year"; "share_pct" ]

(* ------------------------------------------------------------------ *)
(* Q9: product-type profit (6-way join, composite key, signed sums)    *)
(* ------------------------------------------------------------------ *)

let q9_run (db : G.mpc) =
  let parts = D.filter db.G.m_part E.(col "p_type" <=. const q9_type) in
  let li =
    D.inner_join
      (select parts [ ("p_partkey", "l_partkey") ])
      db.G.m_lineitem ~on:[ "l_partkey" ]
  in
  let li =
    D.inner_join
      (select db.G.m_partsupp
         [
           ("ps_partkey", "l_partkey");
           ("ps_suppkey", "l_suppkey");
           ("ps_supplycost", "ps_supplycost");
         ])
      li
      ~on:[ "l_partkey"; "l_suppkey" ]
      ~copy:[ "ps_supplycost" ]
  in
  let li =
    D.inner_join
      (select db.G.m_supplier
         [ ("s_suppkey", "l_suppkey"); ("s_nationkey", "s_nationkey") ])
      li ~on:[ "l_suppkey" ] ~copy:[ "s_nationkey" ]
  in
  let o = D.map db.G.m_orders ~dst:"o_year" E.(Div_pub (col "o_orderdate", 365)) in
  let j =
    D.inner_join
      (select o [ ("o_orderkey", "l_orderkey"); ("o_year", "o_year") ])
      li
      ~on:[ "l_orderkey" ]
      ~copy:[ "o_year" ]
  in
  let j =
    D.map j ~dst:"profit"
      E.(
        Div_pub (col "l_extendedprice" *! (const 100 -! col "l_discount"), 100)
        -! Div_pub (col "ps_supplycost" *! col "l_quantity", 100))
  in
  D.aggregate j ~keys:[ "s_nationkey"; "o_year" ] ~aggs:[ sum "profit" "profit_sum" ]

let q9_ref (db : G.plain) =
  let parts = P.filter db.G.part (fun g r -> g "p_type" r <= q9_type) in
  let li =
    P.inner_join (pselect parts [ ("p_partkey", "l_partkey") ]) db.G.lineitem
      ~on:[ "l_partkey" ]
  in
  let li =
    P.inner_join
      (pselect db.G.partsupp
         [
           ("ps_partkey", "l_partkey");
           ("ps_suppkey", "l_suppkey");
           ("ps_supplycost", "ps_supplycost");
         ])
      li
      ~on:[ "l_partkey"; "l_suppkey" ]
  in
  let li =
    P.inner_join
      (pselect db.G.supplier
         [ ("s_suppkey", "l_suppkey"); ("s_nationkey", "s_nationkey") ])
      li ~on:[ "l_suppkey" ]
  in
  let o = P.map db.G.orders ~dst:"o_year" (fun g r -> g "o_orderdate" r / 365) in
  let j =
    P.inner_join
      (pselect o [ ("o_orderkey", "l_orderkey"); ("o_year", "o_year") ])
      li
      ~on:[ "l_orderkey" ]
  in
  let j =
    P.map j ~dst:"profit" (fun g r ->
        (g "l_extendedprice" r * (100 - g "l_discount" r) / 100)
        - (g "ps_supplycost" r * g "l_quantity" r / 100))
  in
  P.group_by j ~keys:[ "s_nationkey"; "o_year" ] ~aggs:[ psum "profit" "profit_sum" ]

let q9_cols = [ "s_nationkey"; "o_year"; "profit_sum" ]

(* ------------------------------------------------------------------ *)
(* Q10: returned-item reporting                                        *)
(* ------------------------------------------------------------------ *)

let q10_run (db : G.mpc) =
  let o =
    D.filter db.G.m_orders
      E.(col "o_orderdate" >=. const q10_date &&. (col "o_orderdate" <. const (q10_date + 90)))
  in
  let li = D.filter db.G.m_lineitem E.(col "l_returnflag" ==. const 2) in
  let li =
    D.map li ~dst:"revenue"
      E.(Div_pub (col "l_extendedprice" *! (const 100 -! col "l_discount"), 100))
  in
  let j =
    D.inner_join
      (select o [ ("o_orderkey", "l_orderkey"); ("o_custkey", "o_custkey") ])
      li
      ~on:[ "l_orderkey" ]
      ~copy:[ "o_custkey" ]
  in
  let agg =
    D.aggregate j ~keys:[ "o_custkey" ] ~aggs:[ sum "revenue" "revenue_sum" ]
  in
  D.limit (D.order_by agg [ ("revenue_sum", D.Desc) ]) 20

let q10_ref (db : G.plain) =
  let o =
    P.filter db.G.orders (fun g r ->
        g "o_orderdate" r >= q10_date && g "o_orderdate" r < q10_date + 90)
  in
  let li = P.filter db.G.lineitem (fun g r -> g "l_returnflag" r = 2) in
  let li =
    P.map li ~dst:"revenue" (fun g r ->
        g "l_extendedprice" r * (100 - g "l_discount" r) / 100)
  in
  let j =
    P.inner_join
      (pselect o [ ("o_orderkey", "l_orderkey"); ("o_custkey", "o_custkey") ])
      li
      ~on:[ "l_orderkey" ]
  in
  let agg =
    P.group_by j ~keys:[ "o_custkey" ] ~aggs:[ psum "revenue" "revenue_sum" ]
  in
  P.limit (P.sort agg [ ("revenue_sum", -1) ]) 20

let q10_cols = [ "o_custkey"; "revenue_sum" ]

(* ------------------------------------------------------------------ *)
(* Q11: important stock identification (HAVING over a global sum)      *)
(* ------------------------------------------------------------------ *)

let q11_run (db : G.mpc) =
  let supp =
    D.filter db.G.m_supplier E.(col "s_nationkey" ==. const q11_nation)
  in
  let ps =
    D.semi_join db.G.m_partsupp
      (select supp [ ("s_suppkey", "ps_suppkey") ])
      ~on:[ "ps_suppkey" ]
  in
  let ps = D.map ps ~dst:"value" E.(col "ps_supplycost" *! col "ps_availqty") in
  let total = D.global_aggregate ps ~aggs:[ sum "value" "total_value" ] in
  let agg =
    D.aggregate ps ~keys:[ "ps_partkey" ] ~aggs:[ sum "value" "value_sum" ]
  in
  let agg = D.with_scalar agg ~scalar:total ~src:"total_value" ~dst:"total_value" in
  D.filter agg
    E.(col "value_sum" *! const q11_fraction_inv >. col "total_value")

let q11_ref (db : G.plain) =
  let supp = P.filter db.G.supplier (fun g r -> g "s_nationkey" r = q11_nation) in
  let ps =
    P.semi_join db.G.partsupp
      (pselect supp [ ("s_suppkey", "ps_suppkey") ])
      ~on:[ "ps_suppkey" ]
  in
  let ps = P.map ps ~dst:"value" (fun g r -> g "ps_supplycost" r * g "ps_availqty" r) in
  let total = pglobal ps ~aggs:[ psum "value" "total_value" ] in
  let agg = P.group_by ps ~keys:[ "ps_partkey" ] ~aggs:[ psum "value" "value_sum" ] in
  let agg = pwith_scalar agg ~scalar:total ~src:"total_value" ~dst:"total_value" in
  P.filter agg (fun g r -> g "value_sum" r * q11_fraction_inv > g "total_value" r)

let q11_cols = [ "ps_partkey"; "value_sum" ]
