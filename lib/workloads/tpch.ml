(** Registry of the TPC-H workload: all 22 queries, each as an MPC dataflow
    plan plus its plaintext reference, with the result columns used for
    validation (the paper validates every query against SQLite, §5.1). *)

type query = {
  name : string;
  run : Tpch_gen.mpc -> Orq_core.Table.t;
  reference : Tpch_gen.plain -> Orq_plaintext.Ptable.t;
  compare_cols : string list;
}

module A = Tpch_queries_a
module B = Tpch_queries_b

let all : query list =
  [
    { name = "Q1"; run = A.q1_run; reference = A.q1_ref; compare_cols = A.q1_cols };
    { name = "Q2"; run = A.q2_run; reference = A.q2_ref; compare_cols = A.q2_cols };
    { name = "Q3"; run = A.q3_run; reference = A.q3_ref; compare_cols = A.q3_cols };
    { name = "Q4"; run = A.q4_run; reference = A.q4_ref; compare_cols = A.q4_cols };
    { name = "Q5"; run = A.q5_run; reference = A.q5_ref; compare_cols = A.q5_cols };
    { name = "Q6"; run = A.q6_run; reference = A.q6_ref; compare_cols = A.q6_cols };
    { name = "Q7"; run = A.q7_run; reference = A.q7_ref; compare_cols = A.q7_cols };
    { name = "Q8"; run = A.q8_run; reference = A.q8_ref; compare_cols = A.q8_cols };
    { name = "Q9"; run = A.q9_run; reference = A.q9_ref; compare_cols = A.q9_cols };
    { name = "Q10"; run = A.q10_run; reference = A.q10_ref; compare_cols = A.q10_cols };
    { name = "Q11"; run = A.q11_run; reference = A.q11_ref; compare_cols = A.q11_cols };
    { name = "Q12"; run = B.q12_run; reference = B.q12_ref; compare_cols = B.q12_cols };
    { name = "Q13"; run = B.q13_run; reference = B.q13_ref; compare_cols = B.q13_cols };
    { name = "Q14"; run = B.q14_run; reference = B.q14_ref; compare_cols = B.q14_cols };
    { name = "Q15"; run = B.q15_run; reference = B.q15_ref; compare_cols = B.q15_cols };
    { name = "Q16"; run = B.q16_run; reference = B.q16_ref; compare_cols = B.q16_cols };
    { name = "Q17"; run = B.q17_run; reference = B.q17_ref; compare_cols = B.q17_cols };
    { name = "Q18"; run = B.q18_run; reference = B.q18_ref; compare_cols = B.q18_cols };
    { name = "Q19"; run = B.q19_run; reference = B.q19_ref; compare_cols = B.q19_cols };
    { name = "Q20"; run = B.q20_run; reference = B.q20_ref; compare_cols = B.q20_cols };
    { name = "Q21"; run = B.q21_run; reference = B.q21_ref; compare_cols = B.q21_cols };
    { name = "Q22"; run = B.q22_run; reference = B.q22_ref; compare_cols = B.q22_cols };
  ]

let find name = List.find (fun q -> q.name = name) all

(** Validate a query: run it under MPC and in the plaintext engine and
    compare the valid result rows (masked to the MPC column widths, since
    aggregates of possibly negative values are two's complement at their
    column width). Returns (ok, mpc_rows, ref_rows). *)
let validate (q : query) (plain : Tpch_gen.plain) (mdb : Tpch_gen.mpc) :
    bool * int list list * int list list =
  let result = q.run mdb in
  let widths =
    List.map (fun c -> Orq_core.Table.width result c) q.compare_cols
  in
  let mask_row row =
    List.map2 (fun v w -> v land Orq_util.Ring.mask w) row widths
  in
  let mpc_rows =
    List.map mask_row (Orq_core.Table.valid_rows_sorted result q.compare_cols)
  in
  let ref_rows =
    List.map mask_row
      (Orq_plaintext.Ptable.rows_sorted (q.reference plain) q.compare_cols)
  in
  (mpc_rows = ref_rows, mpc_rows, ref_rows)
