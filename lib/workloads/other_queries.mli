(** The nine queries the paper collects from prior relational MPC systems
    (§5.1): Aspirin, C.Diff, Password, Credit, Comorbidity, SecQ2
    (Secrecy / Conclave / Senate), Market Share (Conclave), SYan (Secure
    Yannakakis Example 1.1), and Patients (the Shrinkwrap cascading-effect
    query, evaluated here with §3.6 multiplicity pre-aggregation). *)

open Orq_core

type query = {
  name : string;
  run : Other_gen.mpc -> Table.t;
  reference : Other_gen.plain -> Orq_plaintext.Ptable.t;
  compare_cols : string list;
}

val credit_delta : int

val all : query list
val find : string -> query

val validate :
  query -> Other_gen.plain -> Other_gen.mpc ->
  bool * int list list * int list list
