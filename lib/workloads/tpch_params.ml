(** Query parameters for the TPC-H workload.

    TPC-H defines substitution parameters per query; we fix one
    deterministic choice (as the paper's benchmark harness does for its
    runs), expressed against the integer encodings of {!Tpch_gen}. *)

let day = Tpch_gen.day_of

(* dates *)
let q1_delta_date = day ~year:1998 ~month:9 ~day:2
let q3_date = day ~year:1995 ~month:3 ~day:15
let q4_date = day ~year:1993 ~month:7 ~day:1
let q5_date = day ~year:1994 ~month:1 ~day:1
let q6_date = day ~year:1994 ~month:1 ~day:1
let q7_date_lo = day ~year:1995 ~month:1 ~day:1
let q7_date_hi = day ~year:1996 ~month:12 ~day:31
let q8_date_lo = q7_date_lo
let q8_date_hi = q7_date_hi
let q10_date = day ~year:1993 ~month:10 ~day:1
let q12_date = day ~year:1994 ~month:1 ~day:1
let q14_date = day ~year:1995 ~month:9 ~day:1
let q15_date = day ~year:1996 ~month:1 ~day:1
let q20_date = day ~year:1994 ~month:1 ~day:1

(* categorical parameters (integer-encoded enums) *)
let q2_size = 15
let q2_type = 23
let q2_region = 3
let q3_segment = 1
let q5_region = 2
let q6_discount = 6
let q6_quantity = 24
let q7_nation1 = 5
let q7_nation2 = 12
let q8_nation = 5
let q8_region = 2
let q8_type = 77
let q9_type = 40
let q11_nation = 7
let q11_fraction_inv = 50 (* HAVING value > total / 50 at micro scale *)
let q12_mode1 = 3
let q12_mode2 = 5
let q13_priority_excluded = 2 (* stand-in for the o_comment NOT LIKE filter *)
let q14_type_promo_max = 50 (* p_type <= 50 plays PROMO% *)
let q16_brand = 5
let q16_type = 12
let q16_max_size = 9
let q16_bad_balance = 100_000 (* complaint stand-in: s_acctbal < threshold *)
let q17_brand = 3
let q17_container = 7
let q18_quantity = 150
let q19_brand1 = 1
let q19_brand2 = 2
let q19_brand3 = 3
let q19_qty1 = 10
let q19_qty2 = 15
let q19_qty3 = 25
let q21_nation = 4
let q22_codes = [ 13; 31; 23; 29; 30; 18; 17 ]
let q20_nation = 3
let q20_type = 30
