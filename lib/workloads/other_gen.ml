(** Synthetic datasets for the nine queries the paper collects from prior
    relational-MPC works (§5.1): medical studies (Aspirin, Comorbidity,
    C.Diff, Patients from Secrecy / Conclave / Senate / Shrinkwrap),
    credit scoring, password reuse, market share, and the Secure Yannakakis
    example. The paper sizes these at ~5M rows per scale factor; we scale
    the same shapes down deterministically. Values are small integer enums
    (diagnosis codes, medication codes, password hashes, ...). *)

open Orq_util
module P = Orq_plaintext.Ptable

let w_id = 20
let w_code = 10
let w_time = 12
let w_score = 10
let w_price = 20

(* disease/medication codes with fixed meanings for the queries *)
let diag_hd = 1 (* heart disease *)
let diag_cdiff = 2
let med_aspirin = 1

type plain = {
  diagnosis : P.t;  (** (pid, diag, dtime) *)
  medication : P.t;  (** (pid, med, mtime) *)
  labs : P.t;  (** (pid, test, ltime) *)
  cohort : P.t;  (** (pid) — study cohort membership *)
  passwords : P.t;  (** (uid, site, pwd) *)
  credit : P.t;  (** (cid, agency, score) *)
  r_att : P.t;  (** SecQ2 R(id, att) *)
  s_val : P.t;  (** SecQ2 S(id, val) *)
  transactions : P.t;  (** MarketShare (company, price), two owners merged *)
  yr : P.t;  (** SYan R(person, coins) — unique person *)
  ys : P.t;  (** SYan S(person, disease, cost) *)
  yt : P.t;  (** SYan T(disease, class) — unique disease *)
}

(** Generate all datasets with about [n] rows in each primary table. *)
let generate ?(seed = 7) (n : int) : plain =
  let prg = Prg.create seed in
  let r m bound = Array.init m (fun _ -> Prg.int_below prg bound) in
  let npat = max 4 (n / 4) in
  let diagnosis =
    P.of_cols
      [
        ("pid", Array.map (fun x -> x + 1) (r n npat));
        ("diag", Array.map (fun x -> x + 1) (r n 8));
        ("dtime", r n 3000);
      ]
  in
  let medication =
    P.of_cols
      [
        ("pid", Array.map (fun x -> x + 1) (r n npat));
        ("med", Array.map (fun x -> x + 1) (r n 6));
        ("mtime", r n 3000);
      ]
  in
  let labs =
    P.of_cols
      [
        ("pid", Array.map (fun x -> x + 1) (r n npat));
        ("test", Array.map (fun x -> x + 1) (r n 5));
        ("ltime", r n 3000);
      ]
  in
  let ncoh = max 2 (npat / 3) in
  let cohort_ids = Array.sub (Orq_shuffle.Localperm.random prg npat) 0 ncoh in
  let cohort = P.of_cols [ ("pid", Array.map (fun x -> x + 1) cohort_ids) ] in
  let passwords =
    P.of_cols
      [
        ("uid", Array.map (fun x -> x + 1) (r n (max 2 (n / 5))));
        ("site", Array.map (fun x -> x + 1) (r n 10));
        ("pwd", Array.map (fun x -> x + 1) (r n 12));
      ]
  in
  let ncred = max 4 (n / 2) in
  let credit =
    P.of_cols
      [
        ("cid", Array.init ncred (fun i -> (i / 2) + 1));
        ("agency", Array.init ncred (fun i -> (i mod 2) + 1));
        ("score", Array.map (fun x -> 300 + x) (r ncred 550));
      ]
  in
  let nr = max 2 (n / 3) in
  let r_att =
    P.of_cols
      [
        ("id", Array.init nr (fun i -> i + 1));
        ("att", Array.map (fun x -> x + 1) (r nr 6));
      ]
  in
  let s_val =
    P.of_cols
      [
        ("id", Array.map (fun x -> x + 1) (r n nr));
        ("val", r n 1000);
      ]
  in
  let transactions =
    P.of_cols
      [
        ("company", Array.map (fun x -> x + 1) (r n 12));
        ("price", Array.map (fun x -> x + 1) (r n 10_000));
      ]
  in
  let nper = max 2 (n / 5) and ndis = 10 in
  let yr =
    P.of_cols
      [
        ("person", Array.init nper (fun i -> i + 1));
        ("coins", r nper 100);
      ]
  in
  let ys =
    P.of_cols
      [
        ("person", Array.map (fun x -> x + 1) (r n nper));
        ("disease", Array.map (fun x -> x + 1) (r n ndis));
        ("cost", r n 5000);
      ]
  in
  let yt =
    P.of_cols
      [
        ("disease", Array.init ndis (fun i -> i + 1));
        ("class", Array.map (fun x -> x + 1) (r ndis 3));
      ]
  in
  {
    diagnosis;
    medication;
    labs;
    cohort;
    passwords;
    credit;
    r_att;
    s_val;
    transactions;
    yr;
    ys;
    yt;
  }

let share_table (ctx : Orq_proto.Ctx.t) name (cols : (string * int) list)
    (p : P.t) : Orq_core.Table.t =
  Orq_core.Table.create ctx name
    (List.map
       (fun (cname, w) ->
         let get = P.get p cname in
         (cname, w, Array.of_list (List.map get p.P.rows)))
       cols)

type mpc = {
  m_diagnosis : Orq_core.Table.t;
  m_medication : Orq_core.Table.t;
  m_labs : Orq_core.Table.t;
  m_cohort : Orq_core.Table.t;
  m_passwords : Orq_core.Table.t;
  m_credit : Orq_core.Table.t;
  m_r_att : Orq_core.Table.t;
  m_s_val : Orq_core.Table.t;
  m_transactions : Orq_core.Table.t;
  m_yr : Orq_core.Table.t;
  m_ys : Orq_core.Table.t;
  m_yt : Orq_core.Table.t;
}

let share (ctx : Orq_proto.Ctx.t) (db : plain) : mpc =
  {
    m_diagnosis =
      share_table ctx "diagnosis"
        [ ("pid", w_id); ("diag", w_code); ("dtime", w_time) ]
        db.diagnosis;
    m_medication =
      share_table ctx "medication"
        [ ("pid", w_id); ("med", w_code); ("mtime", w_time) ]
        db.medication;
    m_labs =
      share_table ctx "labs"
        [ ("pid", w_id); ("test", w_code); ("ltime", w_time) ]
        db.labs;
    m_cohort = share_table ctx "cohort" [ ("pid", w_id) ] db.cohort;
    m_passwords =
      share_table ctx "passwords"
        [ ("uid", w_id); ("site", w_code); ("pwd", w_code) ]
        db.passwords;
    m_credit =
      share_table ctx "credit"
        [ ("cid", w_id); ("agency", 2); ("score", w_score) ]
        db.credit;
    m_r_att =
      share_table ctx "r" [ ("id", w_id); ("att", w_code) ] db.r_att;
    m_s_val = share_table ctx "s" [ ("id", w_id); ("val", w_score) ] db.s_val;
    m_transactions =
      share_table ctx "transactions"
        [ ("company", w_code); ("price", w_price) ]
        db.transactions;
    m_yr = share_table ctx "yr" [ ("person", w_id); ("coins", 7) ] db.yr;
    m_ys =
      share_table ctx "ys"
        [ ("person", w_id); ("disease", w_code); ("cost", 13) ]
        db.ys;
    m_yt = share_table ctx "yt" [ ("disease", w_code); ("class", 3) ] db.yt;
  }
