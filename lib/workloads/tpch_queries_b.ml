(** TPC-H queries 12-22 in the ORQ dataflow API with plaintext reference
    twins. Q13 exercises the outer join, Q16 anti-join + distinct, Q21 the
    heaviest plan in the benchmark (the paper reports it calls the sorting
    operator 12 times), Q22 anti-join plus a fully private average. *)

open Tpch_util
open Tpch_params
module G = Tpch_gen

(* ------------------------------------------------------------------ *)
(* Q12: shipping modes and order priority                              *)
(* ------------------------------------------------------------------ *)

let q12_run (db : G.mpc) =
  let li =
    D.filter db.G.m_lineitem
      E.(
        (col "l_shipmode" ==. const q12_mode1 ||. (col "l_shipmode" ==. const q12_mode2))
        &&. (col "l_receiptdate" >=. const q12_date)
        &&. (col "l_receiptdate" <. const (q12_date + 365))
        &&. (col "l_commitdate" <. col "l_receiptdate")
        &&. (col "l_shipdate" <. col "l_commitdate"))
  in
  let j =
    D.inner_join
      (select db.G.m_orders
         [ ("o_orderkey", "l_orderkey"); ("o_orderpriority", "o_orderpriority") ])
      li
      ~on:[ "l_orderkey" ]
      ~copy:[ "o_orderpriority" ]
  in
  let j = D.map j ~dst:"high" E.(If (col "o_orderpriority" <=. const 2, const 1, const 0)) in
  let j = D.map j ~dst:"low" E.(If (col "o_orderpriority" >. const 2, const 1, const 0)) in
  D.aggregate j ~keys:[ "l_shipmode" ]
    ~aggs:[ sum "high" "high_count"; sum "low" "low_count" ]

let q12_ref (db : G.plain) =
  let li =
    P.filter db.G.lineitem (fun g r ->
        (g "l_shipmode" r = q12_mode1 || g "l_shipmode" r = q12_mode2)
        && g "l_receiptdate" r >= q12_date
        && g "l_receiptdate" r < q12_date + 365
        && g "l_commitdate" r < g "l_receiptdate" r
        && g "l_shipdate" r < g "l_commitdate" r)
  in
  let j =
    P.inner_join
      (pselect db.G.orders
         [ ("o_orderkey", "l_orderkey"); ("o_orderpriority", "o_orderpriority") ])
      li
      ~on:[ "l_orderkey" ]
  in
  let j = P.map j ~dst:"high" (fun g r -> if g "o_orderpriority" r <= 2 then 1 else 0) in
  let j = P.map j ~dst:"low" (fun g r -> if g "o_orderpriority" r > 2 then 1 else 0) in
  P.group_by j ~keys:[ "l_shipmode" ]
    ~aggs:[ psum "high" "high_count"; psum "low" "low_count" ]

let q12_cols = [ "l_shipmode"; "high_count"; "low_count" ]

(* ------------------------------------------------------------------ *)
(* Q13: customer order-count distribution (outer join)                 *)
(* ------------------------------------------------------------------ *)

let q13_run (db : G.mpc) =
  let o =
    D.filter db.G.m_orders
      E.(col "o_orderpriority" <>. const q13_priority_excluded)
  in
  let j =
    D.left_outer_join
      (select db.G.m_customer [ ("c_custkey", "o_custkey") ])
      o ~on:[ "o_custkey" ]
  in
  (* order rows carry a real o_orderkey (>= 1); the left's own rows have
     NULL (0) there, so they contribute 0 to the per-customer count *)
  let j = D.map j ~dst:"is_order" E.(If (col "o_orderkey" <>. const 0, const 1, const 0)) in
  let per_cust =
    D.aggregate j ~keys:[ "o_custkey" ] ~aggs:[ sum "is_order" "c_count" ]
  in
  D.aggregate per_cust ~keys:[ "c_count" ] ~aggs:[ cnt "c_count" "custdist" ]

let q13_ref (db : G.plain) =
  let o =
    P.filter db.G.orders (fun g r -> g "o_orderpriority" r <> q13_priority_excluded)
  in
  let cnts =
    P.group_by o ~keys:[ "o_custkey" ] ~aggs:[ pcnt "o_orderkey" "c_count" ]
  in
  let zeros =
    P.anti_join
      (pselect db.G.customer [ ("c_custkey", "o_custkey") ])
      cnts ~on:[ "o_custkey" ]
  in
  let zeros = P.map zeros ~dst:"c_count" (fun _ _ -> 0) in
  let all = P.concat (P.project cnts [ "o_custkey"; "c_count" ]) zeros in
  P.group_by all ~keys:[ "c_count" ] ~aggs:[ pcnt "c_count" "custdist" ]

let q13_cols = [ "c_count"; "custdist" ]

(* ------------------------------------------------------------------ *)
(* Q14: promotion effect (private ratio of two global sums)            *)
(* ------------------------------------------------------------------ *)

let q14_run (db : G.mpc) =
  let li =
    D.filter db.G.m_lineitem
      E.(col "l_shipdate" >=. const q14_date &&. (col "l_shipdate" <. const (q14_date + 30)))
  in
  let j =
    D.inner_join
      (select db.G.m_part [ ("p_partkey", "l_partkey"); ("p_type", "p_type") ])
      li ~on:[ "l_partkey" ] ~copy:[ "p_type" ]
  in
  let j =
    D.map j ~dst:"revenue"
      E.(Div_pub (col "l_extendedprice" *! (const 100 -! col "l_discount"), 100))
  in
  let j =
    D.map j ~dst:"promo"
      E.(If (col "p_type" <=. const q14_type_promo_max, col "revenue", const 0))
  in
  let g =
    D.global_aggregate j ~aggs:[ sum "promo" "promo_sum"; sum "revenue" "rev_sum" ]
  in
  D.map g ~dst:"promo_pct" E.(Div (col "promo_sum" *! const 100, col "rev_sum"))

let q14_ref (db : G.plain) =
  let li =
    P.filter db.G.lineitem (fun g r ->
        g "l_shipdate" r >= q14_date && g "l_shipdate" r < q14_date + 30)
  in
  let j =
    P.inner_join
      (pselect db.G.part [ ("p_partkey", "l_partkey"); ("p_type", "p_type") ])
      li ~on:[ "l_partkey" ]
  in
  let j =
    P.map j ~dst:"revenue" (fun g r ->
        g "l_extendedprice" r * (100 - g "l_discount" r) / 100)
  in
  let j =
    P.map j ~dst:"promo" (fun g r ->
        if g "p_type" r <= q14_type_promo_max then g "revenue" r else 0)
  in
  let g = pglobal j ~aggs:[ psum "promo" "promo_sum"; psum "revenue" "rev_sum" ] in
  P.map g ~dst:"promo_pct" (fun g r -> g "promo_sum" r * 100 / g "rev_sum" r)

let q14_cols = [ "promo_pct" ]

(* ------------------------------------------------------------------ *)
(* Q15: top supplier (secret global max + equality)                    *)
(* ------------------------------------------------------------------ *)

let q15_run (db : G.mpc) =
  let li =
    D.filter db.G.m_lineitem
      E.(col "l_shipdate" >=. const q15_date &&. (col "l_shipdate" <. const (q15_date + 90)))
  in
  let li =
    D.map li ~dst:"revenue"
      E.(Div_pub (col "l_extendedprice" *! (const 100 -! col "l_discount"), 100))
  in
  let rev =
    D.aggregate li ~keys:[ "l_suppkey" ] ~aggs:[ sum "revenue" "total_rev" ]
  in
  let top = D.global_aggregate rev ~aggs:[ mx "total_rev" "max_rev" ] in
  let rev = D.with_scalar rev ~scalar:top ~src:"max_rev" ~dst:"max_rev" in
  D.filter rev E.(col "total_rev" ==. col "max_rev")

let q15_ref (db : G.plain) =
  let li =
    P.filter db.G.lineitem (fun g r ->
        g "l_shipdate" r >= q15_date && g "l_shipdate" r < q15_date + 90)
  in
  let li =
    P.map li ~dst:"revenue" (fun g r ->
        g "l_extendedprice" r * (100 - g "l_discount" r) / 100)
  in
  let rev =
    P.group_by li ~keys:[ "l_suppkey" ] ~aggs:[ psum "revenue" "total_rev" ]
  in
  let top = pglobal rev ~aggs:[ pmx "total_rev" "max_rev" ] in
  let rev = pwith_scalar rev ~scalar:top ~src:"max_rev" ~dst:"max_rev" in
  P.filter rev (fun g r -> g "total_rev" r = g "max_rev" r)

let q15_cols = [ "l_suppkey"; "total_rev" ]

(* ------------------------------------------------------------------ *)
(* Q16: parts/supplier relationship (anti-join + distinct count)       *)
(* ------------------------------------------------------------------ *)

let q16_run (db : G.mpc) =
  let bad =
    D.filter db.G.m_supplier E.(col "s_acctbal" <. const q16_bad_balance)
  in
  let ps =
    D.anti_join db.G.m_partsupp
      (select bad [ ("s_suppkey", "ps_suppkey") ])
      ~on:[ "ps_suppkey" ]
  in
  let parts =
    D.filter db.G.m_part
      E.(
        col "p_brand" <>. const q16_brand
        &&. (col "p_type" <>. const q16_type)
        &&. (col "p_size" <=. const q16_max_size))
  in
  let j =
    D.inner_join
      (select parts
         [
           ("p_partkey", "ps_partkey");
           ("p_brand", "p_brand");
           ("p_type", "p_type");
           ("p_size", "p_size");
         ])
      ps
      ~on:[ "ps_partkey" ]
      ~copy:[ "p_brand"; "p_type"; "p_size" ]
  in
  let d = D.distinct j [ "p_brand"; "p_type"; "p_size"; "ps_suppkey" ] in
  D.aggregate d
    ~keys:[ "p_brand"; "p_type"; "p_size" ]
    ~aggs:[ cnt "ps_suppkey" "supplier_cnt" ]

let q16_ref (db : G.plain) =
  let bad = P.filter db.G.supplier (fun g r -> g "s_acctbal" r < q16_bad_balance) in
  let ps =
    P.anti_join db.G.partsupp
      (pselect bad [ ("s_suppkey", "ps_suppkey") ])
      ~on:[ "ps_suppkey" ]
  in
  let parts =
    P.filter db.G.part (fun g r ->
        g "p_brand" r <> q16_brand
        && g "p_type" r <> q16_type
        && g "p_size" r <= q16_max_size)
  in
  let j =
    P.inner_join
      (pselect parts
         [
           ("p_partkey", "ps_partkey");
           ("p_brand", "p_brand");
           ("p_type", "p_type");
           ("p_size", "p_size");
         ])
      ps
      ~on:[ "ps_partkey" ]
  in
  let d = P.distinct j [ "p_brand"; "p_type"; "p_size"; "ps_suppkey" ] in
  P.group_by d
    ~keys:[ "p_brand"; "p_type"; "p_size" ]
    ~aggs:[ pcnt "ps_suppkey" "supplier_cnt" ]

let q16_cols = [ "p_brand"; "p_type"; "p_size"; "supplier_cnt" ]

(* ------------------------------------------------------------------ *)
(* Q17: small-quantity-order revenue (correlated average)              *)
(* ------------------------------------------------------------------ *)

let q17_run (db : G.mpc) =
  let parts =
    D.filter db.G.m_part
      E.(col "p_brand" <=. const q17_brand &&. (col "p_container" <=. const q17_container))
  in
  let li =
    D.inner_join
      (select parts [ ("p_partkey", "l_partkey") ])
      db.G.m_lineitem ~on:[ "l_partkey" ]
  in
  let avgq =
    D.aggregate li ~keys:[ "l_partkey" ] ~aggs:[ avg "l_quantity" "avg_qty" ]
  in
  let j =
    D.inner_join
      (select avgq [ ("l_partkey", "l_partkey"); ("avg_qty", "avg_qty") ])
      li ~on:[ "l_partkey" ] ~copy:[ "avg_qty" ]
  in
  let j = D.filter j E.(col "l_quantity" *! const 5 <. col "avg_qty") in
  let g = D.global_aggregate j ~aggs:[ sum "l_extendedprice" "total" ] in
  D.map g ~dst:"avg_yearly" E.(Div_pub (col "total", 7))

let q17_ref (db : G.plain) =
  let parts =
    P.filter db.G.part (fun g r ->
        g "p_brand" r <= q17_brand && g "p_container" r <= q17_container)
  in
  let li =
    P.inner_join (pselect parts [ ("p_partkey", "l_partkey") ]) db.G.lineitem
      ~on:[ "l_partkey" ]
  in
  let avgq =
    P.group_by li ~keys:[ "l_partkey" ] ~aggs:[ pavg "l_quantity" "avg_qty" ]
  in
  let j = P.inner_join avgq li ~on:[ "l_partkey" ] in
  let j = P.filter j (fun g r -> g "l_quantity" r * 5 < g "avg_qty" r) in
  let g = pglobal j ~aggs:[ psum "l_extendedprice" "total" ] in
  P.map g ~dst:"avg_yearly" (fun g r -> g "total" r / 7)

let q17_cols = [ "avg_yearly" ]

(* ------------------------------------------------------------------ *)
(* Q18: large-volume customers                                         *)
(* ------------------------------------------------------------------ *)

let q18_run (db : G.mpc) =
  let agg =
    D.aggregate db.G.m_lineitem ~keys:[ "l_orderkey" ]
      ~aggs:[ sum "l_quantity" "sum_qty" ]
  in
  let big = D.filter agg E.(col "sum_qty" >. const q18_quantity) in
  let big = select big [ ("l_orderkey", "o_orderkey"); ("sum_qty", "sum_qty") ] in
  let j = D.inner_join big db.G.m_orders ~on:[ "o_orderkey" ] ~copy:[ "sum_qty" ] in
  D.limit (D.order_by j [ ("o_totalprice", D.Desc); ("o_orderdate", D.Asc) ]) 100

let q18_ref (db : G.plain) =
  let agg =
    P.group_by db.G.lineitem ~keys:[ "l_orderkey" ]
      ~aggs:[ psum "l_quantity" "sum_qty" ]
  in
  let big = P.filter agg (fun g r -> g "sum_qty" r > q18_quantity) in
  let big = pselect big [ ("l_orderkey", "o_orderkey"); ("sum_qty", "sum_qty") ] in
  let j = P.inner_join big db.G.orders ~on:[ "o_orderkey" ] in
  P.limit (P.sort j [ ("o_totalprice", -1); ("o_orderdate", 1) ]) 100

let q18_cols = [ "o_orderkey"; "o_custkey"; "o_totalprice"; "sum_qty" ]

(* ------------------------------------------------------------------ *)
(* Q19: discounted revenue (disjunctive theta filters)                 *)
(* ------------------------------------------------------------------ *)

let q19_run (db : G.mpc) =
  let j =
    D.inner_join
      (select db.G.m_part
         [
           ("p_partkey", "l_partkey");
           ("p_brand", "p_brand");
           ("p_container", "p_container");
           ("p_size", "p_size");
         ])
      db.G.m_lineitem
      ~on:[ "l_partkey" ]
      ~copy:[ "p_brand"; "p_container"; "p_size" ]
  in
  let branch brand qty csize psize =
    E.(
      col "p_brand" ==. const brand
      &&. (col "p_container" <=. const csize)
      &&. (col "l_quantity" >=. const qty)
      &&. (col "l_quantity" <=. const (qty + 10))
      &&. (col "p_size" <=. const psize))
  in
  let j =
    D.filter j
      E.(
        branch q19_brand1 q19_qty1 10 5
        ||. branch q19_brand2 q19_qty2 20 10
        ||. branch q19_brand3 q19_qty3 30 15)
  in
  let j =
    D.map j ~dst:"revenue"
      E.(Div_pub (col "l_extendedprice" *! (const 100 -! col "l_discount"), 100))
  in
  D.global_aggregate j ~aggs:[ sum "revenue" "revenue_sum" ]

let q19_ref (db : G.plain) =
  let j =
    P.inner_join
      (pselect db.G.part
         [
           ("p_partkey", "l_partkey");
           ("p_brand", "p_brand");
           ("p_container", "p_container");
           ("p_size", "p_size");
         ])
      db.G.lineitem
      ~on:[ "l_partkey" ]
  in
  let branch g r brand qty csize psize =
    g "p_brand" r = brand
    && g "p_container" r <= csize
    && g "l_quantity" r >= qty
    && g "l_quantity" r <= qty + 10
    && g "p_size" r <= psize
  in
  let j =
    P.filter j (fun g r ->
        branch g r q19_brand1 q19_qty1 10 5
        || branch g r q19_brand2 q19_qty2 20 10
        || branch g r q19_brand3 q19_qty3 30 15)
  in
  let j =
    P.map j ~dst:"revenue" (fun g r ->
        g "l_extendedprice" r * (100 - g "l_discount" r) / 100)
  in
  pglobal j ~aggs:[ psum "revenue" "revenue_sum" ]

let q19_cols = [ "revenue_sum" ]

(* ------------------------------------------------------------------ *)
(* Q20: potential part promotion (nested semi-joins)                   *)
(* ------------------------------------------------------------------ *)

let q20_run (db : G.mpc) =
  let parts = D.filter db.G.m_part E.(col "p_type" <=. const q20_type) in
  let li =
    D.filter db.G.m_lineitem
      E.(col "l_shipdate" >=. const q20_date &&. (col "l_shipdate" <. const (q20_date + 365)))
  in
  let li =
    D.semi_join li (select parts [ ("p_partkey", "l_partkey") ]) ~on:[ "l_partkey" ]
  in
  let sq =
    D.aggregate li ~keys:[ "l_partkey"; "l_suppkey" ]
      ~aggs:[ sum "l_quantity" "sq" ]
  in
  let sq =
    select sq
      [ ("l_partkey", "ps_partkey"); ("l_suppkey", "ps_suppkey"); ("sq", "sq") ]
  in
  let j =
    D.inner_join sq db.G.m_partsupp
      ~on:[ "ps_partkey"; "ps_suppkey" ]
      ~copy:[ "sq" ]
  in
  let j = D.filter j E.(col "ps_availqty" *! const 2 >. col "sq") in
  let supp =
    D.semi_join db.G.m_supplier
      (select j [ ("ps_suppkey", "s_suppkey") ])
      ~on:[ "s_suppkey" ]
  in
  D.filter supp E.(col "s_nationkey" ==. const q20_nation)

let q20_ref (db : G.plain) =
  let parts = P.filter db.G.part (fun g r -> g "p_type" r <= q20_type) in
  let li =
    P.filter db.G.lineitem (fun g r ->
        g "l_shipdate" r >= q20_date && g "l_shipdate" r < q20_date + 365)
  in
  let li =
    P.semi_join li (pselect parts [ ("p_partkey", "l_partkey") ]) ~on:[ "l_partkey" ]
  in
  let sq =
    P.group_by li ~keys:[ "l_partkey"; "l_suppkey" ] ~aggs:[ psum "l_quantity" "sq" ]
  in
  let sq =
    pselect sq
      [ ("l_partkey", "ps_partkey"); ("l_suppkey", "ps_suppkey"); ("sq", "sq") ]
  in
  let j =
    P.inner_join sq db.G.partsupp ~on:[ "ps_partkey"; "ps_suppkey" ]
  in
  let j = P.filter j (fun g r -> g "ps_availqty" r * 2 > g "sq" r) in
  let supp =
    P.semi_join db.G.supplier
      (pselect j [ ("ps_suppkey", "s_suppkey") ])
      ~on:[ "s_suppkey" ]
  in
  P.filter supp (fun g r -> g "s_nationkey" r = q20_nation)

let q20_cols = [ "s_suppkey" ]

(* ------------------------------------------------------------------ *)
(* Q21: suppliers who kept orders waiting (self-joins via counts)      *)
(* ------------------------------------------------------------------ *)

let q21_run (db : G.mpc) =
  let o_f = D.filter db.G.m_orders E.(col "o_orderstatus" ==. const 0) in
  let li =
    D.semi_join db.G.m_lineitem
      (select o_f [ ("o_orderkey", "l_orderkey") ])
      ~on:[ "l_orderkey" ]
  in
  let d_all = D.distinct li [ "l_orderkey"; "l_suppkey" ] in
  let ns = D.aggregate d_all ~keys:[ "l_orderkey" ] ~aggs:[ cnt "l_suppkey" "ns" ] in
  let li_late = D.filter li E.(col "l_receiptdate" >. col "l_commitdate") in
  let d_late = D.distinct li_late [ "l_orderkey"; "l_suppkey" ] in
  let nl = D.aggregate d_late ~keys:[ "l_orderkey" ] ~aggs:[ cnt "l_suppkey" "nl" ] in
  let pairs = T.project d_late [ "l_orderkey"; "l_suppkey" ] in
  let j1 =
    D.inner_join
      (select ns [ ("l_orderkey", "l_orderkey"); ("ns", "ns") ])
      pairs ~on:[ "l_orderkey" ] ~copy:[ "ns" ]
  in
  let j2 =
    D.inner_join
      (select nl [ ("l_orderkey", "l_orderkey"); ("nl", "nl") ])
      j1 ~on:[ "l_orderkey" ] ~copy:[ "nl" ]
  in
  let j2 = D.filter j2 E.(col "ns" >=. const 2 &&. (col "nl" ==. const 1)) in
  let supp_n =
    D.filter db.G.m_supplier E.(col "s_nationkey" ==. const q21_nation)
  in
  let j2 =
    D.semi_join j2 (select supp_n [ ("s_suppkey", "l_suppkey") ]) ~on:[ "l_suppkey" ]
  in
  let agg = D.aggregate j2 ~keys:[ "l_suppkey" ] ~aggs:[ cnt "l_orderkey" "numwait" ] in
  D.limit (D.order_by agg [ ("numwait", D.Desc); ("l_suppkey", D.Asc) ]) 100

let q21_ref (db : G.plain) =
  let o_f = P.filter db.G.orders (fun g r -> g "o_orderstatus" r = 0) in
  let li =
    P.semi_join db.G.lineitem
      (pselect o_f [ ("o_orderkey", "l_orderkey") ])
      ~on:[ "l_orderkey" ]
  in
  let d_all = P.distinct (P.project li [ "l_orderkey"; "l_suppkey" ]) [ "l_orderkey"; "l_suppkey" ] in
  let ns = P.group_by d_all ~keys:[ "l_orderkey" ] ~aggs:[ pcnt "l_suppkey" "ns" ] in
  let li_late = P.filter li (fun g r -> g "l_receiptdate" r > g "l_commitdate" r) in
  let d_late =
    P.distinct (P.project li_late [ "l_orderkey"; "l_suppkey" ]) [ "l_orderkey"; "l_suppkey" ]
  in
  let nl = P.group_by d_late ~keys:[ "l_orderkey" ] ~aggs:[ pcnt "l_suppkey" "nl" ] in
  let j1 = P.inner_join ns d_late ~on:[ "l_orderkey" ] in
  let j2 = P.inner_join nl j1 ~on:[ "l_orderkey" ] in
  let j2 = P.filter j2 (fun g r -> g "ns" r >= 2 && g "nl" r = 1) in
  let supp_n = P.filter db.G.supplier (fun g r -> g "s_nationkey" r = q21_nation) in
  let j2 =
    P.semi_join j2 (pselect supp_n [ ("s_suppkey", "l_suppkey") ]) ~on:[ "l_suppkey" ]
  in
  let agg = P.group_by j2 ~keys:[ "l_suppkey" ] ~aggs:[ pcnt "l_orderkey" "numwait" ] in
  P.limit (P.sort agg [ ("numwait", -1); ("l_suppkey", 1) ]) 100

let q21_cols = [ "l_suppkey"; "numwait" ]

(* ------------------------------------------------------------------ *)
(* Q22: global sales opportunity (anti-join + private average)         *)
(* ------------------------------------------------------------------ *)

let q22_run (db : G.mpc) =
  let cc_pred =
    List.fold_left
      (fun acc code -> E.(acc ||. (col "c_phone_cc" ==. const code)))
      E.(col "c_phone_cc" ==. const (List.hd q22_codes))
      (List.tl q22_codes)
  in
  let c1 = D.filter db.G.m_customer cc_pred in
  let pos = D.filter c1 E.(col "c_acctbal" >. const 0) in
  let avg_t = D.global_aggregate pos ~aggs:[ avg "c_acctbal" "avg_bal" ] in
  let c2 = D.with_scalar c1 ~scalar:avg_t ~src:"avg_bal" ~dst:"avg_bal" in
  let c2 = D.filter c2 E.(col "c_acctbal" >. col "avg_bal") in
  let c3 =
    D.anti_join c2
      (select db.G.m_orders [ ("o_custkey", "c_custkey") ])
      ~on:[ "c_custkey" ]
  in
  D.aggregate c3 ~keys:[ "c_phone_cc" ]
    ~aggs:[ cnt "c_custkey" "numcust"; sum "c_acctbal" "totacctbal" ]

let q22_ref (db : G.plain) =
  let c1 =
    P.filter db.G.customer (fun g r -> List.mem (g "c_phone_cc" r) q22_codes)
  in
  let pos = P.filter c1 (fun g r -> g "c_acctbal" r > 0) in
  let avg_t = pglobal pos ~aggs:[ pavg "c_acctbal" "avg_bal" ] in
  let c2 = pwith_scalar c1 ~scalar:avg_t ~src:"avg_bal" ~dst:"avg_bal" in
  let c2 = P.filter c2 (fun g r -> g "c_acctbal" r > g "avg_bal" r) in
  let c3 =
    P.anti_join c2
      (pselect db.G.orders [ ("o_custkey", "c_custkey") ])
      ~on:[ "c_custkey" ]
  in
  P.group_by c3 ~keys:[ "c_phone_cc" ]
    ~aggs:[ pcnt "c_custkey" "numcust"; psum "c_acctbal" "totacctbal" ]

let q22_cols = [ "c_phone_cc"; "numcust"; "totacctbal" ]
