(** Oblivious comparisons on boolean-shared, bit-packed values: XOR +
    logarithmic OR-fold equality and divide-and-conquer less-than —
    [O(log w)] AND rounds for [w]-bit values, as assumed by the paper's
    sorting analysis (Appendix B). Results are single-bit boolean shares in
    the LSB. *)

open Orq_proto

val stride_mask : int -> int
(** Bit mask with ones at positions [0, s, 2s, ...] below the word size. *)

val eq : Ctx.t -> w:int -> Share.shared -> Share.shared -> Share.shared
(** [eq ctx ~w x y]: single-bit sharing of [x = y] over the low [w] bits;
    [log2 w] AND rounds. *)

val neq : Ctx.t -> w:int -> Share.shared -> Share.shared -> Share.shared

val lt :
  ?signed:bool -> Ctx.t -> w:int -> Share.shared -> Share.shared ->
  Share.shared
(** [lt ctx ~w x y]: single-bit sharing of [x < y]; unsigned by default,
    [~signed:true] compares [w]-bit two's complement (sign-bit flip). *)

val gt :
  ?signed:bool -> Ctx.t -> w:int -> Share.shared -> Share.shared ->
  Share.shared

val le :
  ?signed:bool -> Ctx.t -> w:int -> Share.shared -> Share.shared ->
  Share.shared

val ge :
  ?signed:bool -> Ctx.t -> w:int -> Share.shared -> Share.shared ->
  Share.shared

val lt_lex :
  ?signed:bool -> Ctx.t -> (Share.shared * Share.shared * int) list ->
  Share.shared
(** Lexicographic less-than over (x, y, width) column pairs — the
    composite-key comparator of TableSort and the sorting wrapper. *)

val eq_composite :
  Ctx.t -> (Share.shared * Share.shared * int) list -> Share.shared
(** Conjunction of per-column equality over composite keys. *)
