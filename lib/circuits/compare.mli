(** Oblivious comparisons on boolean-shared, bit-packed values: XOR +
    logarithmic OR-fold equality and divide-and-conquer less-than —
    [O(log w)] AND rounds for [w]-bit values, as assumed by the paper's
    sorting analysis (Appendix B). Results are single-bit boolean shares in
    the LSB.

    The [_many] entry points run k independent comparison lanes (possibly
    of different widths) in lockstep, one fused round per ladder level, so
    the batched round count is the {e maximum} lane depth instead of the
    sum; traffic is unchanged. Single-pair functions are the one-lane
    special case. *)

open Orq_proto

val stride_mask : int -> int
(** Bit mask with ones at positions [0, s, 2s, ...] below the word size. *)

val eq : Ctx.t -> w:int -> Share.shared -> Share.shared -> Share.shared
(** [eq ctx ~w x y]: single-bit sharing of [x = y] over the low [w] bits;
    [log2 w] AND rounds. *)

val eq_many :
  Ctx.t -> (Share.shared * Share.shared * int) array -> Share.shared array
(** k independent equalities (lanes are (x, y, width) triples) in
    max-lane-depth fused rounds; lanes drop out as their strides expire. *)

val neq : Ctx.t -> w:int -> Share.shared -> Share.shared -> Share.shared

val lt :
  ?signed:bool -> Ctx.t -> w:int -> Share.shared -> Share.shared ->
  Share.shared
(** [lt ctx ~w x y]: single-bit sharing of [x < y]; unsigned by default,
    [~signed:true] compares [w]-bit two's complement (sign-bit flip). *)

val lt_many :
  ?signed:bool -> Ctx.t -> (Share.shared * Share.shared * int) array ->
  Share.shared array
(** k independent less-than tests in max-lane-depth fused rounds. *)

val lt_eq_many :
  ?signed:bool -> Ctx.t -> (Share.shared * Share.shared * int) array ->
  (Share.shared * Share.shared) array
(** Per lane, the ([x < y], [x = y]) bit pair for the price of the fused
    less-than ladder alone — its block-equality word terminates holding
    full-width equality, so the second bit is free. *)

val gt :
  ?signed:bool -> Ctx.t -> w:int -> Share.shared -> Share.shared ->
  Share.shared

val le :
  ?signed:bool -> Ctx.t -> w:int -> Share.shared -> Share.shared ->
  Share.shared

val ge :
  ?signed:bool -> Ctx.t -> w:int -> Share.shared -> Share.shared ->
  Share.shared

val lt_lex :
  ?signed:bool -> Ctx.t -> (Share.shared * Share.shared * int) list ->
  Share.shared
(** Lexicographic less-than over (x, y, width) column pairs — the
    composite-key comparator of TableSort and the sorting wrapper. All
    columns' (lt, eq) ladders run in one fused lockstep pass, then a
    log-depth associative merge combines them. *)

val lt_lex_f :
  ?signed:bool -> Ctx.t -> (Share.shared * Share.shared * int) list ->
  Share.flags
(** {!lt_lex} delivered as packed flag lanes: the multi-bit ladders stay
    word-based, the column merge runs over packed flags (per-word
    randomness and local work; identical element-level traffic). *)

val eq_composite :
  Ctx.t -> (Share.shared * Share.shared * int) list -> Share.shared
(** Conjunction of per-column equality over composite keys: one fused
    equality pass, then a log-depth AND tree. *)

val eq_composite_many :
  Ctx.t -> (Share.shared * Share.shared * int) list array ->
  Share.shared array
(** Batched {!eq_composite}: every group's column equalities join one
    fused ladder and the AND trees reduce in lockstep — the aggregation
    network uses this to evaluate the group bits of all its levels at
    once. *)

val eq_composite_many_f :
  Ctx.t -> (Share.shared * Share.shared * int) list array ->
  Share.flags array
(** {!eq_composite_many} delivered as packed flag lanes (the AND trees run
    over packed words). *)
