(** Oblivious multiplexers (§3.1): [b ? y : x] without revealing [b]. *)

open Orq_proto

val mux_b :
  ?width:int -> Ctx.t -> Share.shared -> Share.shared -> Share.shared ->
  Share.shared
(** Boolean mux ([b] carries the condition in each element's LSB); one AND
    round. *)

val mux_b_many :
  ?width:int -> Ctx.t -> Share.shared ->
  (Share.shared * Share.shared) list -> Share.shared list
(** Mux several columns under one condition in a single round — the
    workhorse of the aggregation network. *)

val select_many :
  ?widths:int array -> Ctx.t ->
  (Share.shared * Share.shared * Share.shared) array -> Share.shared array
(** k independent muxes (lane i is (b, x, y), selecting [b ? y : x]) with
    per-lane widths, their AND legs fused into one round. *)

val select_flags_many :
  ?widths:int array -> Ctx.t ->
  (Share.flags * Share.shared * Share.shared) array -> Share.shared array
(** {!select_many} with packed flag conditions: mux masks extend straight
    from the packed words, no 0/1 intermediate. *)

val mux_a :
  ?width:int -> Ctx.t -> Share.shared -> Share.shared -> Share.shared ->
  Share.shared
(** Arithmetic mux with a 0/1 arithmetic condition (one multiplication at
    the value width). *)
