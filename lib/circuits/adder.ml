(** Kogge–Stone addition and subtraction over boolean shares.

    [O(log w)] AND rounds for [w]-bit operands; the two ANDs of each prefix
    level (generate and propagate updates) are batched into one round. These
    circuits back A2B conversion, the division circuit, and arithmetic on
    boolean columns.

    The [_many] entry points run k independent adder lanes (possibly of
    different widths) in lockstep: each Kogge–Stone level is issued for all
    still-active lanes as one {!Mpc.band_many} round, so the fused depth is
    the maximum ⌈log₂ w⌉ across lanes rather than the sum. Single-pair
    functions are the one-lane special case. *)

open Orq_proto
open Orq_util

(* Indices of lanes still active under [pred], as an array. *)
let active_lanes k pred =
  let rec go i acc = if i < 0 then acc else go (i - 1) (if pred i then i :: acc else acc) in
  Array.of_list (go (k - 1) [])

(** Lockstep prefix (G, P) computation over lanes of (g, p, w). Inputs are
    the initial generate/propagate words; returns full-prefix (G, P) per
    lane: G_i = carry-generate of span [0..i], P_i = propagate of span
    [0..i]. Shifted-in propagate bits must be 1 so short spans keep their
    value. *)
let prefix_gp_many (ctx : Ctx.t)
    (lanes : (Share.shared * Share.shared * int) array) :
    (Share.shared * Share.shared) array =
  let k = Array.length lanes in
  let g = Array.map (fun (g, _, _) -> g) lanes in
  let p = Array.map (fun (_, p, _) -> p) lanes in
  let s = Array.make k 1 in
  let width_of i =
    let _, _, w = lanes.(i) in
    w
  in
  let rec loop () =
    let active = active_lanes k (fun i -> s.(i) < width_of i) in
    if Array.length active > 0 then begin
      let xs = Array.map (fun i -> Share.append p.(i) p.(i)) active in
      let ys =
        Array.map
          (fun i ->
            let ss = s.(i) in
            let g_sh = Mpc.lshift g.(i) ss in
            let p_sh = Mpc.xor_pub (Mpc.lshift p.(i) ss) (Ring.mask ss) in
            Share.append g_sh p_sh)
          active
      in
      let ws = Array.map width_of active in
      let both = Mpc.band_many ~widths:ws ctx xs ys in
      Array.iteri
        (fun j i ->
          let pg, pp = Share.split2 both.(j) (Share.length g.(i)) in
          g.(i) <- Mpc.xor g.(i) pg;
          p.(i) <- pp;
          s.(i) <- 2 * s.(i))
        active;
      loop ()
    end
  in
  loop ();
  Array.init k (fun i -> (g.(i), p.(i)))

let prefix_gp (ctx : Ctx.t) ~w g p = (prefix_gp_many ctx [| (g, p, w) |]).(0)

(* Finish an addition from (x xor y), prefix (G, P) and a public carry-in. *)
let finish ~w ~cin xy g p =
  let carries = Mpc.lshift g 1 in
  let carries =
    if cin then Mpc.xor_pub (Mpc.xor carries (Mpc.lshift p 1)) 1 else carries
  in
  Mpc.and_mask (Mpc.xor xy carries) (Ring.mask w)

(** [add_many ctx lanes]: k independent boolean-shared sums (lanes are
    (x, y, w) triples, sums modulo 2^w) in max-lane-depth fused rounds —
    one fused round for all initial generates, then the lockstep prefix
    ladder. [cin] applies to every lane. *)
let add_many ?(cin = false) (ctx : Ctx.t)
    (lanes : (Share.shared * Share.shared * int) array) : Share.shared array =
  let masked =
    Array.map
      (fun (x, y, w) ->
        let mw = Ring.mask w in
        (Mpc.and_mask x mw, Mpc.and_mask y mw, w))
      lanes
  in
  let g =
    Mpc.band_many
      ~widths:(Array.map (fun (_, _, w) -> w) masked)
      ctx
      (Array.map (fun (x, _, _) -> x) masked)
      (Array.map (fun (_, y, _) -> y) masked)
  in
  let p = Array.map (fun (x, y, _) -> Mpc.xor x y) masked in
  let gp =
    prefix_gp_many ctx
      (Array.mapi
         (fun i (_, _, w) -> (g.(i), p.(i), w))
         masked)
  in
  Array.mapi
    (fun i (_, _, w) ->
      let g, p' = gp.(i) in
      finish ~w ~cin p.(i) g p')
    masked

(** [add ctx ~w x y]: boolean-shared sum modulo 2^w. *)
let add ?cin (ctx : Ctx.t) ~w x y = (add_many ?cin ctx [| (x, y, w) |]).(0)

(** [sub ctx ~w x y]: boolean-shared difference modulo 2^w
    (x + not y + 1). *)
let sub (ctx : Ctx.t) ~w x y =
  let ny = Mpc.and_mask (Mpc.bnot y) (Ring.mask w) in
  add ~cin:true ctx ~w x ny

(** Addition with a public operand per lane (lanes are (x, c, w)): the
    initial generate/propagate are local, saving the first AND round; the
    prefix ladders run in lockstep. *)
let add_pub_many ?(cin = false) (ctx : Ctx.t)
    (lanes : (Share.shared * Vec.t * int) array) : Share.shared array =
  let prepped =
    Array.map
      (fun (x, c, w) ->
        let mw = Ring.mask w in
        let x = Mpc.and_mask x mw in
        let c = Vec.and_scalar c mw in
        let g = Mpc.and_mask_vec x c in
        let p = Mpc.xor_pub_vec x c in
        (g, p, w))
      lanes
  in
  let gp = prefix_gp_many ctx prepped in
  Array.mapi
    (fun i (_, p, w) ->
      let g, p' = gp.(i) in
      finish ~w ~cin p g p')
    prepped

(** Addition with a public operand: the initial generate/propagate are
    local, saving one AND round. *)
let add_pub ?cin (ctx : Ctx.t) ~w x (c : Vec.t) =
  (add_pub_many ?cin ctx [| (x, c, w) |]).(0)

(** [sub_pub_minuend_many ctx lanes]: per lane (c, y, w), the boolean
    sharing of the public vector [c] minus the shared [y]: c + not y + 1.
    This is the A2B finishing step, batched so k conversions share each
    prefix round. *)
let sub_pub_minuend_many (ctx : Ctx.t)
    (lanes : (Vec.t * Share.shared * int) array) : Share.shared array =
  add_pub_many ~cin:true ctx
    (Array.map
       (fun (c, y, w) ->
         (Mpc.and_mask (Mpc.bnot y) (Ring.mask w), c, w))
       lanes)

(** [sub_pub_minuend ctx ~w c y] computes the boolean sharing of the public
    vector [c] minus the shared [y]: c + not y + 1. This is the A2B
    finishing step (x = (x + r) - r with (x + r) opened). *)
let sub_pub_minuend (ctx : Ctx.t) ~w (c : Vec.t) y =
  (sub_pub_minuend_many ctx [| (c, y, w) |]).(0)

(** Subtract a public vector from a shared value: x - c = x + (not c) + 1. *)
let sub_pub (ctx : Ctx.t) ~w x (c : Vec.t) =
  let nc = Vec.map (fun v -> lnot v land Ring.mask w) c in
  add_pub ~cin:true ctx ~w x nc

(** Two's-complement negation of a boolean sharing: 0 - x. *)
let neg (ctx : Ctx.t) ~w x =
  sub_pub_minuend ctx ~w (Vec.zeros (Share.length x)) x
