(** Kogge–Stone addition and subtraction over boolean shares.

    [O(log w)] AND rounds for [w]-bit operands; the two ANDs of each prefix
    level (generate and propagate updates) are batched into one round. These
    circuits back A2B conversion, the division circuit, and arithmetic on
    boolean columns. *)

open Orq_proto
open Orq_util

(* Prefix (G, P) computation. Inputs are the initial generate/propagate
   words; returns full-prefix (G, P): G_i = carry-generate of span [0..i],
   P_i = propagate of span [0..i]. Shifted-in propagate bits must be 1 so
   that short spans keep their value. *)
let prefix_gp (ctx : Ctx.t) ~w g p =
  let n = Share.length g in
  let rec go g p s =
    if s >= w then (g, p)
    else
      let g_sh = Mpc.lshift g s in
      let p_sh = Mpc.xor_pub (Mpc.lshift p s) (Ring.mask s) in
      let both =
        Mpc.band ~width:w ctx (Share.append p p) (Share.append g_sh p_sh)
      in
      let pg, pp = Share.split2 both n in
      go (Mpc.xor g pg) pp (2 * s)
  in
  go g p 1

(* Finish an addition from (x xor y), prefix (G, P) and a public carry-in. *)
let finish ~w ~cin xy g p =
  let carries = Mpc.lshift g 1 in
  let carries =
    if cin then Mpc.xor_pub (Mpc.xor carries (Mpc.lshift p 1)) 1 else carries
  in
  Mpc.and_mask (Mpc.xor xy carries) (Ring.mask w)

(** [add ctx ~w x y]: boolean-shared sum modulo 2^w. *)
let add ?(cin = false) (ctx : Ctx.t) ~w x y =
  let mw = Ring.mask w in
  let x = Mpc.and_mask x mw and y = Mpc.and_mask y mw in
  let g = Mpc.band ~width:w ctx x y in
  let p = Mpc.xor x y in
  let g, p' = prefix_gp ctx ~w g p in
  finish ~w ~cin p g p'

(** [sub ctx ~w x y]: boolean-shared difference modulo 2^w
    (x + not y + 1). *)
let sub (ctx : Ctx.t) ~w x y =
  let ny = Mpc.and_mask (Mpc.bnot y) (Ring.mask w) in
  add ~cin:true ctx ~w x ny

(** Addition with a public operand: the initial generate/propagate are
    local, saving one AND round. *)
let add_pub ?(cin = false) (ctx : Ctx.t) ~w x (c : Vec.t) =
  let mw = Ring.mask w in
  let x = Mpc.and_mask x mw in
  let c = Vec.and_scalar c mw in
  let g = Mpc.and_mask_vec x c in
  let p = Mpc.xor_pub_vec x c in
  let g, p' = prefix_gp ctx ~w g p in
  finish ~w ~cin p g p'

(** [sub_pub_minuend ctx ~w c y] computes the boolean sharing of the public
    vector [c] minus the shared [y]: c + not y + 1. This is the A2B
    finishing step (x = (x + r) - r with (x + r) opened). *)
let sub_pub_minuend (ctx : Ctx.t) ~w (c : Vec.t) y =
  let ny = Mpc.and_mask (Mpc.bnot y) (Ring.mask w) in
  add_pub ~cin:true ctx ~w ny c

(** Subtract a public vector from a shared value: x - c = x + (not c) + 1. *)
let sub_pub (ctx : Ctx.t) ~w x (c : Vec.t) =
  let nc = Vec.map (fun v -> lnot v land Ring.mask w) c in
  add_pub ~cin:true ctx ~w x nc

(** Two's-complement negation of a boolean sharing: 0 - x. *)
let neg (ctx : Ctx.t) ~w x =
  sub_pub_minuend ctx ~w (Vec.zeros (Share.length x)) x
