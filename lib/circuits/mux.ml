(** Oblivious multiplexers (§3.1): [mux b x y] evaluates [b ? y : x] without
    revealing [b]. The boolean variant costs one AND round; the arithmetic
    variant one multiplication. A batched variant muxes many columns under
    one condition in a single round — the workhorse of the aggregation
    network. *)

open Orq_proto

(** Boolean mux. [b] carries the condition in each element's LSB. *)
let mux_b ?width (ctx : Ctx.t) b x y =
  let d = Mpc.xor x y in
  let m = Mpc.band ?width ctx (Mpc.extend_bit b) d in
  Mpc.xor x m

(** Boolean mux of several columns under one condition; all columns are
    packed into a single AND so the whole select costs one round. *)
let mux_b_many ?width (ctx : Ctx.t) b (pairs : (Share.shared * Share.shared) list) :
    Share.shared list =
  match pairs with
  | [] -> []
  | _ ->
      let n = Share.length b in
      let ext = Mpc.extend_bit b in
      let diffs = List.map (fun (x, y) -> Mpc.xor x y) pairs in
      let exts = List.map (fun _ -> ext) pairs in
      let big = Mpc.band ?width ctx (Share.concat exts) (Share.concat diffs) in
      List.mapi (fun i (x, _) -> Mpc.xor x (Share.sub_range big (i * n) n)) pairs

(** Batched independent muxes: lane i selects [b_i ? y_i : x_i] under its
    own condition and width; the k AND legs share one fused round
    ({!Mpc.band_many}) instead of k sequential mux rounds. *)
let select_many ?widths (ctx : Ctx.t)
    (lanes : (Share.shared * Share.shared * Share.shared) array) :
    Share.shared array =
  if Array.length lanes = 0 then [||]
  else
    let exts = Array.map (fun (b, _, _) -> Mpc.extend_bit b) lanes in
    let diffs = Array.map (fun (_, x, y) -> Mpc.xor x y) lanes in
    let ms = Mpc.band_many ?widths ctx exts diffs in
    Array.mapi (fun i (_, x, _) -> Mpc.xor x ms.(i)) lanes

(** Batched independent muxes whose conditions arrive as packed flag
    lanes: the mux masks extend straight from the packed words
    ({!Share.extend_flags}, no 0/1 intermediate), the AND legs fuse as in
    {!select_many}. The selected columns are word-valued, so the AND runs
    at the lanes' data widths — only the condition side is packed. *)
let select_flags_many ?widths (ctx : Ctx.t)
    (lanes : (Share.flags * Share.shared * Share.shared) array) :
    Share.shared array =
  if Array.length lanes = 0 then [||]
  else
    let exts = Array.map (fun (b, _, _) -> Share.extend_flags b) lanes in
    let diffs = Array.map (fun (_, x, y) -> Mpc.xor x y) lanes in
    let ms = Mpc.band_many ?widths ctx exts diffs in
    Array.mapi (fun i (_, x, _) -> Mpc.xor x ms.(i)) lanes

(** Arithmetic mux: condition given as an arithmetic 0/1 sharing. *)
let mux_a ?width (ctx : Ctx.t) b x y =
  Mpc.add x (Mpc.mul ?width ctx b (Mpc.sub y x))
