(** Oblivious comparisons on boolean-shared, bit-packed values.

    Equality is an XOR followed by a logarithmic OR-fold; less-than is the
    classic divide-and-conquer (lt, eq) block-combination circuit. Both take
    [O(log w)] AND rounds for [w]-bit values — the costs the paper's sorting
    analysis (§B) assumes for secure comparisons. All results are single-bit
    boolean shares in the LSB.

    Every circuit here is written over *lanes*: the [_many] entry points
    run k independent comparisons (possibly of different widths) in
    lockstep, issuing each ladder level for all still-active lanes as one
    {!Mpc.band_many}/{!Mpc.bor_many} call, so the fused round count is the
    maximum lane depth rather than the sum. The single-pair functions are
    the one-lane special case. A useful byproduct: the less-than ladder's
    block-equality word terminates holding full-word equality in bit 0, so
    {!lt_eq_many} returns both bits for the price of the lt ladder — which
    is what lets {!lt_lex} and {!eq_composite} drop the separate equality
    circuits the unbatched versions paid for. *)

open Orq_proto

(** Bit mask with ones at positions [0, s, 2s, ...] below the word size,
    selecting the summary flag of each combined block at stride [s]. *)
let stride_mask s =
  let m = ref 0 in
  let i = ref 0 in
  while !i < Orq_util.Ring.word_bits do
    m := !m lor (1 lsl !i);
    i := !i + s
  done;
  !m

(* Indices of lanes still active under [pred], as an array. *)
let active_lanes k pred =
  let rec go i acc = if i < 0 then acc else go (i - 1) (if pred i then i :: acc else acc) in
  Array.of_list (go (k - 1) [])

(** [eq_many ctx lanes] runs k independent equality tests (lanes are
    (x, y, w) triples) in lockstep: ⌈log₂ w⌉ fused OR-fold rounds for the
    widest lane; narrower lanes drop out as their strides reach zero. *)
let eq_many (ctx : Ctx.t) (lanes : (Share.shared * Share.shared * int) array) :
    Share.shared array =
  let k = Array.length lanes in
  let z =
    Array.map
      (fun (x, y, w) -> Mpc.and_mask (Mpc.xor x y) (Orq_util.Ring.mask w))
      lanes
  in
  let s = Array.map (fun (_, _, w) -> Orq_util.Ring.next_pow2 w / 2) lanes in
  let rec loop () =
    let active = active_lanes k (fun i -> s.(i) > 0) in
    if Array.length active > 0 then begin
      let xs = Array.map (fun i -> z.(i)) active in
      let ys = Array.map (fun i -> Mpc.rshift z.(i) s.(i)) active in
      let ws = Array.map (fun i -> max 1 s.(i)) active in
      let rs = Mpc.bor_many ~widths:ws ctx xs ys in
      Array.iteri
        (fun j i ->
          z.(i) <- rs.(j);
          s.(i) <- s.(i) / 2)
        active;
      loop ()
    end
  in
  loop ();
  Array.map (fun zi -> Mpc.and_mask (Mpc.xor_pub zi 1) 1) z

(** [eq ctx ~w x y] returns the single-bit sharing of [x = y] over the low
    [w] bits. [log2 w] AND rounds. *)
let eq (ctx : Ctx.t) ~w x y = (eq_many ctx [| (x, y, w) |]).(0)

(** Pairwise-adjacent equality against a shifted copy, used by DISTINCT. *)
let neq ctx ~w x y = Mpc.xor_pub (eq ctx ~w x y) 1

(* Core of less-than, over lanes: each lane maintains per-block (lt, eq)
   summary flags packed in its word and merges adjacent blocks level by
   level:
     lt' = lt_hi xor (eq_hi and lt_lo)   (xor = or: the terms are disjoint)
     eq' = eq_hi and eq_lo
   Both ANDs of a lane's level are packed in its word (the append trick),
   and all active lanes share the level's single fused round. Returns the
   (lt, eq) bit pair per lane — eq is free, the ladder computes it anyway. *)
let lt_core_many (ctx : Ctx.t)
    (lanes : (Share.shared * Share.shared * int) array) :
    (Share.shared * Share.shared) array =
  let k = Array.length lanes in
  let ltb =
    Mpc.band_many
      ~widths:(Array.map (fun (_, _, w) -> w) lanes)
      ctx
      (Array.map
         (fun (x, _, w) ->
           let mw = Orq_util.Ring.mask w in
           Mpc.and_mask (Mpc.bnot (Mpc.and_mask x mw)) mw)
         lanes)
      (Array.map
         (fun (_, y, w) -> Mpc.and_mask y (Orq_util.Ring.mask w))
         lanes)
  in
  (* bits at positions >= w xor to zero, so eqb is 1 there: padding blocks
     behave as (lt = 0, eq = 1) and vanish in the combination *)
  let eqb =
    Array.map
      (fun (x, y, w) ->
        let mw = Orq_util.Ring.mask w in
        Mpc.bnot (Mpc.xor (Mpc.and_mask x mw) (Mpc.and_mask y mw)))
      lanes
  in
  let d = Array.make k 1 in
  let width_of i =
    let _, _, w = lanes.(i) in
    w
  in
  let rec loop () =
    let active = active_lanes k (fun i -> d.(i) < width_of i) in
    if Array.length active > 0 then begin
      let xs =
        Array.map
          (fun i ->
            let dd = d.(i) in
            let m = stride_mask (2 * dd) in
            let top =
              Orq_util.Ring.ones
              lsl (Orq_util.Ring.word_bits - dd)
              land Orq_util.Ring.ones
            in
            let eq_hi =
              Mpc.and_mask (Mpc.xor_pub (Mpc.rshift eqb.(i) dd) top) m
            in
            Share.append eq_hi eq_hi)
          active
      in
      let ys =
        Array.map
          (fun i ->
            let m = stride_mask (2 * d.(i)) in
            Share.append (Mpc.and_mask ltb.(i) m) (Mpc.and_mask eqb.(i) m))
          active
      in
      let ws = Array.map (fun i -> max 1 (width_of i / (2 * d.(i)))) active in
      let both = Mpc.band_many ~widths:ws ctx xs ys in
      Array.iteri
        (fun j i ->
          let dd = d.(i) in
          let m = stride_mask (2 * dd) in
          let lt_hi = Mpc.and_mask (Mpc.rshift ltb.(i) dd) m in
          let n = Share.length ltb.(i) in
          let a, b = Share.split2 both.(j) n in
          ltb.(i) <- Mpc.xor lt_hi a;
          eqb.(i) <- b;
          d.(i) <- 2 * dd)
        active;
      loop ()
    end
  in
  loop ();
  Array.init k (fun i -> (Mpc.and_mask ltb.(i) 1, Mpc.and_mask eqb.(i) 1))

(* Two's-complement comparison = unsigned comparison with flipped sign
   bits (a local xor). *)
let sign_flip ~w v = Mpc.xor_pub v (1 lsl (w - 1))

(** [lt_eq_many ctx lanes]: the (x < y, x = y) bit pair for each lane, for
    the price of the fused less-than ladder alone — ⌈log₂ w⌉ + 1 rounds at
    the widest lane. *)
let lt_eq_many ?(signed = false) (ctx : Ctx.t)
    (lanes : (Share.shared * Share.shared * int) array) :
    (Share.shared * Share.shared) array =
  let lanes =
    if signed then
      Array.map (fun (x, y, w) -> (sign_flip ~w x, sign_flip ~w y, w)) lanes
    else lanes
  in
  lt_core_many ctx lanes

(** [lt_many ctx lanes]: k independent less-than tests in max-lane-depth
    fused rounds. *)
let lt_many ?signed (ctx : Ctx.t)
    (lanes : (Share.shared * Share.shared * int) array) : Share.shared array =
  Array.map fst (lt_eq_many ?signed ctx lanes)

(** [lt ctx ~w x y]: single-bit sharing of [x < y]. Unsigned by default;
    [~signed:true] compares in two's complement by flipping the sign bit. *)
let lt ?signed (ctx : Ctx.t) ~w x y =
  (lt_many ?signed ctx [| (x, y, w) |]).(0)

let gt ?signed ctx ~w x y = lt ?signed ctx ~w y x
let le ?signed ctx ~w x y = Mpc.xor_pub (lt ?signed ctx ~w y x) 1
let ge ?signed ctx ~w x y = Mpc.xor_pub (lt ?signed ctx ~w x y) 1

(* Log-depth merge of per-column (lt, eq) pairs under the associative
   lexicographic combination (hi = more significant column):
     (lt_hi, eq_hi) ⊗ (lt_lo, eq_lo) = (lt_hi ⊕ eq_hi∧lt_lo, eq_hi∧eq_lo)
   Each level issues the two single-bit ANDs of every adjacent pair as one
   fused round, over packed flag lanes ({!Mpc.band_f_many}): randomness and
   local work are per word, element-level traffic unchanged. *)
let rec lex_reduce_f (ctx : Ctx.t) (ps : (Share.flags * Share.flags) array) :
    Share.flags =
  let m = Array.length ps in
  if m = 1 then fst ps.(0)
  else begin
    let pn = m / 2 in
    let xs = Array.init (2 * pn) (fun t -> snd ps.(2 * (t / 2))) in
    let ys =
      Array.init (2 * pn) (fun t ->
          let lo = ps.((2 * (t / 2)) + 1) in
          if t land 1 = 0 then fst lo else snd lo)
    in
    let rs = Mpc.band_f_many ctx xs ys in
    let merged =
      Array.init pn (fun j ->
          (Mpc.xor_f (fst ps.(2 * j)) rs.(2 * j), rs.((2 * j) + 1)))
    in
    let merged =
      if m mod 2 = 1 then Array.append merged [| ps.(m - 1) |] else merged
    in
    lex_reduce_f ctx merged
  end

(** Lexicographic less-than over a list of (x, y, width) column pairs,
    returned as packed flags — the composite-key comparator used by
    TableSort and the sorting wrapper (the (key, index) 128-bit padding
    construction of §B.2): lt = lt_1 or (eq_1 and (lt_2 or (eq_2 and ...))).
    All columns' (lt, eq) ladders run in one fused lockstep pass (the
    ladders stay word-based — they are genuinely multi-bit), their
    single-bit results pack into flag lanes, and a log-depth packed merge
    combines the columns. *)
let lt_lex_f ?signed (ctx : Ctx.t) = function
  | [] -> invalid_arg "lt_lex: empty key list"
  | [ (x, y, w) ] -> Share.pack_flags (lt ?signed ctx ~w x y)
  | cols ->
      lex_reduce_f ctx
        (Array.map
           (fun (l, e) -> (Share.pack_flags l, Share.pack_flags e))
           (lt_eq_many ?signed ctx (Array.of_list cols)))

let lt_lex ?signed (ctx : Ctx.t) = function
  | [ (x, y, w) ] -> lt ?signed ctx ~w x y
  | cols -> Share.unpack_flags (lt_lex_f ?signed ctx cols)

(** Conjunction of per-column equality over composite keys, as packed
    flags: one fused (word-based) equality pass over all columns, each
    column's result bit packed into flag lanes, then a log-depth packed
    AND tree (k - 1 single-bit ANDs, same traffic as the sequential
    fold). *)
let eq_composite_many_f (ctx : Ctx.t)
    (groups : (Share.shared * Share.shared * int) list array) :
    Share.flags array =
  if Array.length groups = 0 then [||]
  else begin
    Array.iter
      (fun g -> if g = [] then invalid_arg "eq_composite_many: empty key list")
      groups;
    (* one fused per-column equality pass over every group's columns *)
    let lanes = Array.of_list (List.concat (Array.to_list groups)) in
    let eqs = Array.map Share.pack_flags (eq_many ctx lanes) in
    let state = Array.make (Array.length groups) [||] in
    let off = ref 0 in
    Array.iteri
      (fun gi g ->
        let k = List.length g in
        state.(gi) <- Array.sub eqs !off k;
        off := !off + k)
      groups;
    (* lockstep log-depth AND tree: each level fuses the adjacent pairs of
       every still-unreduced group into one round; a group with an odd
       element carries it to the next level unchanged *)
    let live = ref (Array.exists (fun es -> Array.length es > 1) state) in
    while !live do
      let xs = ref [] and ys = ref [] in
      Array.iter
        (fun es ->
          for j = 0 to (Array.length es / 2) - 1 do
            xs := es.(2 * j) :: !xs;
            ys := es.((2 * j) + 1) :: !ys
          done)
        state;
      let xs = Array.of_list (List.rev !xs)
      and ys = Array.of_list (List.rev !ys) in
      let rs = Mpc.band_f_many ctx xs ys in
      let pos = ref 0 in
      Array.iteri
        (fun gi es ->
          let m = Array.length es in
          let pn = m / 2 in
          let merged = Array.sub rs !pos pn in
          pos := !pos + pn;
          state.(gi) <-
            (if m mod 2 = 1 then Array.append merged [| es.(m - 1) |]
             else merged))
        state;
      live := Array.exists (fun es -> Array.length es > 1) state
    done;
    Array.map (fun es -> es.(0)) state
  end

let eq_composite_many (ctx : Ctx.t) groups : Share.shared array =
  Array.map Share.unpack_flags (eq_composite_many_f ctx groups)

let eq_composite (ctx : Ctx.t) (cols : (Share.shared * Share.shared * int) list)
    =
  match cols with
  | [] -> invalid_arg "eq_composite: empty key list"
  | [ (x, y, w) ] -> eq ctx ~w x y
  | cols -> (eq_composite_many ctx [| cols |]).(0)
