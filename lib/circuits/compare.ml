(** Oblivious comparisons on boolean-shared, bit-packed values.

    Equality is an XOR followed by a logarithmic OR-fold; less-than is the
    classic divide-and-conquer (lt, eq) block-combination circuit. Both take
    [O(log w)] AND rounds for [w]-bit values — the costs the paper's sorting
    analysis (§B) assumes for secure comparisons. All results are single-bit
    boolean shares in the LSB. *)

open Orq_proto

(** Bit mask with ones at positions [0, s, 2s, ...] below the word size,
    selecting the summary flag of each combined block at stride [s]. *)
let stride_mask s =
  let m = ref 0 in
  let i = ref 0 in
  while !i < Orq_util.Ring.word_bits do
    m := !m lor (1 lsl !i);
    i := !i + s
  done;
  !m

(** [eq ctx ~w x y] returns the single-bit sharing of [x = y] over the low
    [w] bits. [log2 w] AND rounds. *)
let eq (ctx : Ctx.t) ~w x y =
  let z = Mpc.and_mask (Mpc.xor x y) (Orq_util.Ring.mask w) in
  let rec fold z s =
    if s = 0 then z
    else
      let z = Mpc.bor ~width:(max 1 s) ctx z (Mpc.rshift z s) in
      fold z (s / 2)
  in
  let z = fold z (Orq_util.Ring.next_pow2 w / 2) in
  Mpc.and_mask (Mpc.xor_pub z 1) 1

(** Pairwise-adjacent equality against a shifted copy, used by DISTINCT. *)
let neq ctx ~w x y = Mpc.xor_pub (eq ctx ~w x y) 1

(* Core of less-than: maintain per-block (lt, eq) summary flags packed in
   the word and merge adjacent blocks level by level:
     lt' = lt_hi xor (eq_hi and lt_lo)   (xor = or: the terms are disjoint)
     eq' = eq_hi and eq_lo
   Both ANDs of a level are batched into one round. *)
let lt_core (ctx : Ctx.t) ~w x y =
  let mw = Orq_util.Ring.mask w in
  let xw = Mpc.and_mask x mw and yw = Mpc.and_mask y mw in
  let ltb =
    Mpc.band ~width:w ctx (Mpc.and_mask (Mpc.bnot xw) mw) yw
  in
  (* bits at positions >= w xor to zero, so eqb is 1 there: padding blocks
     behave as (lt = 0, eq = 1) and vanish in the combination *)
  let eqb = Mpc.bnot (Mpc.xor xw yw) in
  let n = Share.length x in
  let rec go ltb eqb d =
    if d >= w then Mpc.and_mask ltb 1
    else
      let m = stride_mask (2 * d) in
      let lt_hi = Mpc.and_mask (Mpc.rshift ltb d) m in
      (* bits shifted in from beyond the 63-bit word stand for padding
         positions, which compare as (lt = 0, eq = 1): set them to 1 *)
      let top = Orq_util.Ring.ones lsl (Orq_util.Ring.word_bits - d) land Orq_util.Ring.ones in
      let eq_hi = Mpc.and_mask (Mpc.xor_pub (Mpc.rshift eqb d) top) m in
      let lt_lo = Mpc.and_mask ltb m in
      let eq_lo = Mpc.and_mask eqb m in
      let both =
        Mpc.band
          ~width:(max 1 (w / (2 * d)))
          ctx
          (Share.append eq_hi eq_hi)
          (Share.append lt_lo eq_lo)
      in
      let a, b = Share.split2 both n in
      go (Mpc.xor lt_hi a) b (2 * d)
  in
  go ltb eqb 1

(** [lt ctx ~w x y]: single-bit sharing of [x < y]. Unsigned by default;
    [~signed:true] compares in two's complement by flipping the sign bit. *)
let lt ?(signed = false) (ctx : Ctx.t) ~w x y =
  if signed then
    let flip = 1 lsl (w - 1) in
    lt_core ctx ~w (Mpc.xor_pub x flip) (Mpc.xor_pub y flip)
  else lt_core ctx ~w x y

let gt ?signed ctx ~w x y = lt ?signed ctx ~w y x
let le ?signed ctx ~w x y = Mpc.xor_pub (lt ?signed ctx ~w y x) 1
let ge ?signed ctx ~w x y = Mpc.xor_pub (lt ?signed ctx ~w x y) 1

(** Lexicographic less-than over a list of (x, y, width) column pairs —
    the composite-key comparator used by TableSort and the sorting wrapper
    (the (key, index) 128-bit padding construction of §B.2):
    lt = lt_1 or (eq_1 and (lt_2 or (eq_2 and ...))). *)
let rec lt_lex ?signed (ctx : Ctx.t) = function
  | [] -> invalid_arg "lt_lex: empty key list"
  | [ (x, y, w) ] -> lt ?signed ctx ~w x y
  | (x, y, w) :: rest ->
      let hd_lt = lt ?signed ctx ~w x y in
      let hd_eq = eq ctx ~w x y in
      let tail = lt_lex ?signed ctx rest in
      (* disjoint terms: or = xor *)
      Mpc.xor hd_lt (Mpc.band ~width:1 ctx hd_eq tail)

(** Conjunction of per-column equality over composite keys. *)
let eq_composite (ctx : Ctx.t) (cols : (Share.shared * Share.shared * int) list) =
  match cols with
  | [] -> invalid_arg "eq_composite: empty key list"
  | [ (x, y, w) ] -> eq ctx ~w x y
  | (x, y, w) :: rest ->
      List.fold_left
        (fun acc (x, y, w) -> Mpc.band ~width:1 ctx acc (eq ctx ~w x y))
        (eq ctx ~w x y) rest
