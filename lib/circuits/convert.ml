(** Conversions between arithmetic and boolean sharings (§2.3: "ORQ provides
    efficient MPC primitives to convert between the two representations
    without relying on data owners").

    Both directions are protocol-agnostic, consuming dealer correlations
    (daBits / edaBits) plus generic openings and adder circuits, so they work
    unchanged under all three protocols. *)

open Orq_proto
open Orq_util

(* Word-based batched single-bit boolean-to-arithmetic conversion: each
   lane masks with its own daBits (drawn per lane in lane order, matching
   the unbatched dealer stream) and all [b xor r] openings share one fused
   round; the recombination [c + [r]_A * (1 - 2c)] is local. This is the
   [ORQ_NO_BITPACK] fallback; the packed path below is the default. *)
let bit_b2a_many_unpacked (ctx : Ctx.t) (bs : Share.shared array) :
    Share.shared array =
  if Array.length bs = 0 then [||]
  else begin
    let das = Array.map (fun b -> Dealer.dabits ctx (Share.length b)) bs in
    let masked =
      Array.mapi
        (fun i b -> Mpc.and_mask (Mpc.xor b das.(i).Dealer.da_bool) 1)
        bs
    in
    let widths = Array.map (fun _ -> 1) bs in
    let cs = Mpc.open_many ~widths ctx masked in
    Array.mapi
      (fun i c ->
        let coeff = Vec.map (fun ci -> 1 - (2 * ci)) c in
        Mpc.add_pub_vec (Mpc.mul_pub_vec das.(i).Dealer.da_arith coeff) c)
      cs
  end

(** Packed-flag boolean-to-arithmetic conversion: the daBit masks arrive
    in packed lanes (per-word draws), the [b xor r] masking is a bulk word
    xor, and the openings reveal packed words — unpacking to 0/1 only at
    the final local recombination, where the result must become arithmetic
    words anyway. Traffic identical to the unpacked path at width 1. *)
let bit_b2a_flags_many (ctx : Ctx.t) (bs : Share.flags array) :
    Share.shared array =
  if Array.length bs = 0 then [||]
  else if not (Mpc.bitpack_enabled ()) then
    bit_b2a_many_unpacked ctx (Array.map Share.unpack_flags bs)
  else begin
    let das =
      Array.map (fun b -> Dealer.dabits_flags ctx (Share.flags_length b)) bs
    in
    let masked =
      Array.mapi (fun i b -> Mpc.xor_f b das.(i).Dealer.fda_bool) bs
    in
    let cs = Mpc.open_f_many ctx masked in
    Array.mapi
      (fun i cbits ->
        let c = Bits.unpack cbits in
        let coeff = Vec.map (fun ci -> 1 - (2 * ci)) c in
        Mpc.add_pub_vec (Mpc.mul_pub_vec das.(i).Dealer.fda_arith coeff) c)
      cs
  end

let bit_b2a_flags (ctx : Ctx.t) (b : Share.flags) : Share.shared =
  (bit_b2a_flags_many ctx [| b |]).(0)

(** Batched single-bit boolean-to-arithmetic conversion (word-valued bits
    in the LSB): routed through the packed path when bit-packing is on —
    packing drops the irrelevant high bits exactly like the word path's
    [and_mask 1]. *)
let bit_b2a_many (ctx : Ctx.t) (bs : Share.shared array) : Share.shared array =
  if Mpc.bitpack_enabled () then
    bit_b2a_flags_many ctx (Array.map Share.pack_flags bs)
  else bit_b2a_many_unpacked ctx bs

(** Convert single-bit boolean sharings (condition bits in the LSB) to
    arithmetic 0/1 sharings. One opening round:
    c = open(b xor r);  [b]_A = c + [r]_A * (1 - 2c). *)
let bit_b2a (ctx : Ctx.t) (b : Share.shared) : Share.shared =
  (bit_b2a_many ctx [| b |]).(0)

(** Full-width boolean-to-arithmetic conversion via per-bit daBits; all [w]
    bit openings are batched into a single round, then recombined locally as
    sum_i 2^i [b_i]_A. The [w]-bit value is interpreted as two's complement
    when [~signed:true] (the top bit weighs -2^(w-1)), so signed intermediates (e.g.
    profit columns) convert correctly; the default is raw
    unsigned recombination. Values below 2^(w-1) are unaffected either
    way. *)
let b2a ?w ?(signed = false) (ctx : Ctx.t) (x : Share.shared) : Share.shared =
  let w = Option.value w ~default:ctx.Ctx.ell in
  let w = min w Ring.word_bits in
  let n = Share.length x in
  let bits =
    List.init w (fun i -> Mpc.and_mask (Mpc.rshift x i) 1)
  in
  let all_bits = Share.concat bits in
  let { Dealer.da_bool; da_arith } = Dealer.dabits ctx (w * n) in
  let masked = Mpc.and_mask (Mpc.xor all_bits da_bool) 1 in
  let c = Mpc.open_ ~width:1 ctx masked in
  let coeff = Vec.map (fun ci -> 1 - (2 * ci)) c in
  let bits_a = Mpc.add_pub_vec (Mpc.mul_pub_vec da_arith coeff) c in
  let acc = ref (Share.public ctx Share.Arith n 0) in
  for i = 0 to w - 1 do
    let bi = Share.sub_range bits_a (i * n) n in
    let weight =
      if signed && i = w - 1 && w < Ring.word_bits then -(1 lsl i)
      else 1 lsl i
    in
    acc := Mpc.add !acc (Mpc.mul_pub bi weight)
  done;
  !acc

(** Batched arithmetic-to-boolean conversion over (x, w) lanes: each lane
    masks with its own doubly shared random value (edaBits, drawn per lane
    in lane order so the dealer stream matches the unbatched sequence),
    all [x + r] openings share one fused round, and the subtractions run
    through the lockstep boolean adder — one opening round plus a
    max-lane-depth adder for any number of conversions. *)
let a2b_many (ctx : Ctx.t) (lanes : (Share.shared * int) array) :
    Share.shared array =
  if Array.length lanes = 0 then [||]
  else begin
    let eds = Array.map (fun (x, _) -> Dealer.edabits ctx (Share.length x)) lanes in
    let masked =
      Array.mapi (fun i (x, _) -> Mpc.add x eds.(i).Dealer.ed_arith) lanes
    in
    let cs = Mpc.open_many ctx masked in
    Adder.sub_pub_minuend_many ctx
      (Array.mapi
         (fun i (_, w) ->
           (cs.(i), eds.(i).Dealer.ed_bool, min w Ring.word_bits))
         lanes)
  end

(** Arithmetic-to-boolean conversion: mask with a doubly shared random
    [r] (edaBits), open [x + r], and subtract [r] inside a boolean adder:
    [x]_B = (x + r) - [r]_B. One opening round plus one adder. *)
let a2b ?w (ctx : Ctx.t) (x : Share.shared) : Share.shared =
  let w = Option.value w ~default:(min ctx.Ctx.ell Ring.word_bits) in
  (a2b_many ctx [| (x, w) |]).(0)
