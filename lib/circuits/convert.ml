(** Conversions between arithmetic and boolean sharings (§2.3: "ORQ provides
    efficient MPC primitives to convert between the two representations
    without relying on data owners").

    Both directions are protocol-agnostic, consuming dealer correlations
    (daBits / edaBits) plus generic openings and adder circuits, so they work
    unchanged under all three protocols. *)

open Orq_proto
open Orq_util

(** Convert single-bit boolean sharings (condition bits in the LSB) to
    arithmetic 0/1 sharings. One opening round:
    c = open(b xor r);  [b]_A = c + [r]_A * (1 - 2c). *)
let bit_b2a (ctx : Ctx.t) (b : Share.shared) : Share.shared =
  let n = Share.length b in
  let { Dealer.da_bool; da_arith } = Dealer.dabits ctx n in
  let masked = Mpc.and_mask (Mpc.xor b da_bool) 1 in
  let c = Mpc.open_ ~width:1 ctx masked in
  let coeff = Vec.map (fun ci -> 1 - (2 * ci)) c in
  Mpc.add_pub_vec (Mpc.mul_pub_vec da_arith coeff) c

(** Full-width boolean-to-arithmetic conversion via per-bit daBits; all [w]
    bit openings are batched into a single round, then recombined locally as
    sum_i 2^i [b_i]_A. The [w]-bit value is interpreted as two's complement
    when [~signed:true] (the top bit weighs -2^(w-1)), so signed intermediates (e.g.
    profit columns) convert correctly; the default is raw
    unsigned recombination. Values below 2^(w-1) are unaffected either
    way. *)
let b2a ?w ?(signed = false) (ctx : Ctx.t) (x : Share.shared) : Share.shared =
  let w = Option.value w ~default:ctx.Ctx.ell in
  let w = min w Ring.word_bits in
  let n = Share.length x in
  let bits =
    List.init w (fun i -> Mpc.and_mask (Mpc.rshift x i) 1)
  in
  let all_bits = Share.concat bits in
  let { Dealer.da_bool; da_arith } = Dealer.dabits ctx (w * n) in
  let masked = Mpc.and_mask (Mpc.xor all_bits da_bool) 1 in
  let c = Mpc.open_ ~width:1 ctx masked in
  let coeff = Vec.map (fun ci -> 1 - (2 * ci)) c in
  let bits_a = Mpc.add_pub_vec (Mpc.mul_pub_vec da_arith coeff) c in
  let acc = ref (Share.public ctx Share.Arith n 0) in
  for i = 0 to w - 1 do
    let bi = Share.sub_range bits_a (i * n) n in
    let weight =
      if signed && i = w - 1 && w < Ring.word_bits then -(1 lsl i)
      else 1 lsl i
    in
    acc := Mpc.add !acc (Mpc.mul_pub bi weight)
  done;
  !acc

(** Arithmetic-to-boolean conversion: mask with a doubly shared random
    [r] (edaBits), open [x + r], and subtract [r] inside a boolean adder:
    [x]_B = (x + r) - [r]_B. One opening round plus one adder. *)
let a2b ?w (ctx : Ctx.t) (x : Share.shared) : Share.shared =
  let w = Option.value w ~default:(min ctx.Ctx.ell Ring.word_bits) in
  let w = min w Ring.word_bits in
  let { Dealer.ed_arith; ed_bool } = Dealer.edabits ctx (Share.length x) in
  let c = Mpc.open_ ctx (Mpc.add x ed_arith) in
  Adder.sub_pub_minuend ctx ~w c ed_bool
