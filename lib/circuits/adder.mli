(** Kogge–Stone addition and subtraction over boolean shares: [O(log w)]
    AND rounds for [w]-bit operands (generate/propagate updates of each
    prefix level batched into one round). Backs A2B conversion, division,
    and arithmetic on boolean columns. The [_many] entry points run k
    independent adder lanes in lockstep — each prefix level is one fused
    round across lanes, so batched depth is the max lane depth. *)

open Orq_proto

val prefix_gp :
  Ctx.t -> w:int -> Share.shared -> Share.shared ->
  Share.shared * Share.shared
(** Full-prefix (G, P) from initial generate/propagate words. *)

val prefix_gp_many :
  Ctx.t -> (Share.shared * Share.shared * int) array ->
  (Share.shared * Share.shared) array
(** Lockstep prefix (G, P) over (g, p, width) lanes. *)

val add :
  ?cin:bool -> Ctx.t -> w:int -> Share.shared -> Share.shared ->
  Share.shared
(** Boolean-shared sum modulo 2^w (optional public carry-in). *)

val add_many :
  ?cin:bool -> Ctx.t -> (Share.shared * Share.shared * int) array ->
  Share.shared array
(** k independent sums (lanes are (x, y, width)) in max-lane-depth fused
    rounds; [cin] applies to every lane. *)

val sub : Ctx.t -> w:int -> Share.shared -> Share.shared -> Share.shared
(** x - y = x + not y + 1, modulo 2^w. *)

val add_pub :
  ?cin:bool -> Ctx.t -> w:int -> Share.shared -> Orq_util.Vec.t ->
  Share.shared
(** Addition with a public operand (saves the initial AND round). *)

val add_pub_many :
  ?cin:bool -> Ctx.t -> (Share.shared * Orq_util.Vec.t * int) array ->
  Share.shared array
(** k independent public-operand additions (lanes are (x, c, width)). *)

val sub_pub_minuend :
  Ctx.t -> w:int -> Orq_util.Vec.t -> Share.shared -> Share.shared
(** Public vector minus shared value — the A2B finishing step. *)

val sub_pub_minuend_many :
  Ctx.t -> (Orq_util.Vec.t * Share.shared * int) array -> Share.shared array
(** k independent public-minus-shared subtractions (lanes are (c, y,
    width)) — the fused A2B finishing step. *)

val sub_pub : Ctx.t -> w:int -> Share.shared -> Orq_util.Vec.t -> Share.shared

val neg : Ctx.t -> w:int -> Share.shared -> Share.shared
(** Two's-complement negation (0 - x). *)
