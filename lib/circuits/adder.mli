(** Kogge–Stone addition and subtraction over boolean shares: [O(log w)]
    AND rounds for [w]-bit operands (generate/propagate updates of each
    prefix level batched into one round). Backs A2B conversion, division,
    and arithmetic on boolean columns. *)

open Orq_proto

val prefix_gp :
  Ctx.t -> w:int -> Share.shared -> Share.shared ->
  Share.shared * Share.shared
(** Full-prefix (G, P) from initial generate/propagate words. *)

val add :
  ?cin:bool -> Ctx.t -> w:int -> Share.shared -> Share.shared ->
  Share.shared
(** Boolean-shared sum modulo 2^w (optional public carry-in). *)

val sub : Ctx.t -> w:int -> Share.shared -> Share.shared -> Share.shared
(** x - y = x + not y + 1, modulo 2^w. *)

val add_pub :
  ?cin:bool -> Ctx.t -> w:int -> Share.shared -> Orq_util.Vec.t ->
  Share.shared
(** Addition with a public operand (saves the initial AND round). *)

val sub_pub_minuend :
  Ctx.t -> w:int -> Orq_util.Vec.t -> Share.shared -> Share.shared
(** Public vector minus shared value — the A2B finishing step. *)

val sub_pub : Ctx.t -> w:int -> Share.shared -> Orq_util.Vec.t -> Share.shared

val neg : Ctx.t -> w:int -> Share.shared -> Share.shared
(** Two's-complement negation (0 - x). *)
