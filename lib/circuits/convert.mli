(** Conversions between arithmetic and boolean sharings (§2.3) —
    protocol-agnostic, consuming dealer correlations (daBits / edaBits)
    plus generic openings and adder circuits. *)

open Orq_proto

val bit_b2a_many : Ctx.t -> Share.shared array -> Share.shared array
(** Batched {!bit_b2a}: all lane openings share one fused round. *)

val bit_b2a : Ctx.t -> Share.shared -> Share.shared
(** Single-bit boolean sharings (LSB) to arithmetic 0/1 sharings; one
    opening round: c = open(b xor r), [b]_A = c + [r]_A (1 - 2c). *)

val bit_b2a_flags_many : Ctx.t -> Share.flags array -> Share.shared array
(** {!bit_b2a_many} over packed flag lanes: per-word daBit masks, bulk
    word xors and packed openings; identical width-1 traffic. *)

val bit_b2a_flags : Ctx.t -> Share.flags -> Share.shared

val b2a : ?w:int -> ?signed:bool -> Ctx.t -> Share.shared -> Share.shared
(** Full-width boolean-to-arithmetic conversion via per-bit daBits, all
    openings batched into one round. With [~signed:true] the [w]-bit value
    is two's complement (the top bit weighs -2^(w-1)); default unsigned. *)

val a2b : ?w:int -> Ctx.t -> Share.shared -> Share.shared
(** Arithmetic-to-boolean: mask with a doubly shared random value
    (edaBits), open x + r, subtract [r] in a boolean adder. Correct modulo
    2^w (two's complement for negatives). *)

val a2b_many : Ctx.t -> (Share.shared * int) array -> Share.shared array
(** k independent A2B conversions (lanes are (x, width)): one fused
    opening round plus a max-lane-depth lockstep adder. *)
