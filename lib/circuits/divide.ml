(** Oblivious integer division.

    The paper implements fully private averages with a non-restoring
    division circuit "inspired by the hardware literature" (§5.1, citing
    Lu). We implement exactly that: [w] iterations, each shifting the
    partial remainder and adding +D or -D depending on the (secret) sign of
    the running remainder, with a final remainder fix-up. The invariant is

      X_consumed = Q·D + R + D·[R < 0],   R in [-D, D)

    so the quotient bits q_i = [R_new >= 0] need no digit correction; only a
    negative final remainder gets +D. The divisor may be secret-shared
    ([udiv]) or public ([udiv_pub], which makes the per-iteration addend
    selection local).

    Inputs are unsigned [w]-bit boolean sharings; the partial remainder is
    carried at width [w + 2] so signed intermediates (bounded by 2D) never
    overflow. Division by zero yields unspecified output, as in the paper's
    engine. *)

open Orq_proto
open Orq_util

let check_width w =
  if w < 1 || w > Ring.word_bits - 2 then
    invalid_arg "Divide: width must be in [1, word_bits - 2]"

(* Sign flag (bit wr - 1) of a wr-bit two's-complement sharing, as an LSB
   single-bit share. *)
let msb x ~wr = Mpc.and_mask (Mpc.rshift x (wr - 1)) 1

(* Shared skeleton of the non-restoring loop. [select_addend sign] must
   return the wr-bit boolean sharing of -D (sign = 0) or +D (sign = 1);
   [add_d ~neg r] must return r + D·neg for the final fix-up. *)
let nonrestoring (ctx : Ctx.t) ~w ~x ~select_addend ~add_d =
  check_width w;
  let wr = w + 2 in
  let n = Share.length x in
  let zero = Share.public ctx Share.Bool n 0 in
  let r = ref zero in
  let qbits = ref zero in
  for i = w - 1 downto 0 do
    let xi = Mpc.and_mask (Mpc.rshift x i) 1 in
    (* 2R + x_i : the shifted-in low bit is zero so xor inserts x_i *)
    let r2 = Mpc.and_mask (Mpc.xor (Mpc.lshift !r 1) xi) (Ring.mask wr) in
    let s = msb !r ~wr in
    let addend = select_addend s in
    r := Adder.add ctx ~w:wr r2 addend;
    (* quotient bit is 1 iff the new remainder is non-negative *)
    let q = Mpc.xor_pub (msb !r ~wr) 1 in
    qbits := Mpc.xor !qbits (Mpc.lshift q i)
  done;
  let neg = msb !r ~wr in
  let r_fixed = add_d ~neg !r in
  (Mpc.and_mask !qbits (Ring.mask w), Mpc.and_mask r_fixed (Ring.mask w))

(** [udiv ctx ~w x d] returns boolean sharings of the quotient and remainder
    of unsigned [w]-bit division by a secret divisor. *)
let udiv (ctx : Ctx.t) ~w x d : Share.shared * Share.shared =
  check_width w;
  let wr = w + 2 in
  let d = Mpc.and_mask d (Ring.mask w) in
  let neg_d = Adder.neg ctx ~w:wr d in
  let select_addend s = Mux.mux_b ~width:wr ctx s neg_d d in
  let add_d ~neg r =
    let cond_d = Mpc.band ~width:wr ctx (Mpc.extend_bit neg) d in
    Adder.add ctx ~w:wr r cond_d
  in
  nonrestoring ctx ~w ~x ~select_addend ~add_d

(** [udiv_pub ctx ~w x d] divides by a public divisor vector; the addend
    selection becomes local masking, saving one round per iteration. *)
let udiv_pub (ctx : Ctx.t) ~w x (d : Vec.t) : Share.shared * Share.shared =
  check_width w;
  let wr = w + 2 in
  let mask_r = Ring.mask wr in
  let d = Vec.and_scalar d (Ring.mask w) in
  let neg_d = Vec.map (fun v -> -v land mask_r) d in
  let diff = Vec.xor d neg_d in
  let select_addend s =
    (* (-d) xor (ext(s) and (d xor -d)) : +d when s = 1 *)
    Mpc.xor_pub_vec (Mpc.and_mask_vec (Mpc.extend_bit s) diff) neg_d
  in
  let add_d ~neg r =
    let cond_d = Mpc.and_mask_vec (Mpc.extend_bit neg) d in
    Adder.add ctx ~w:wr r cond_d
  in
  nonrestoring ctx ~w ~x ~select_addend ~add_d
