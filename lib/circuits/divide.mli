(** Oblivious integer division: the non-restoring circuit the paper uses
    for fully private averages (§5.1). [w] iterations of shift-and-add
    with a sign-selected ±divisor; quotient bits need no correction, a
    negative final remainder gets +D. Inputs are unsigned [w]-bit boolean
    sharings; division by zero is unspecified. *)

open Orq_proto

val udiv :
  Ctx.t -> w:int -> Share.shared -> Share.shared ->
  Share.shared * Share.shared
(** [udiv ctx ~w x d] = (quotient, remainder) with a secret divisor. *)

val udiv_pub :
  Ctx.t -> w:int -> Share.shared -> Orq_util.Vec.t ->
  Share.shared * Share.shared
(** Division by a public divisor vector (the per-iteration addend
    selection becomes local masking). *)
