(** High-level oblivious permutation protocols (Appendix A.4, Protocols
    4-8). Elementwise permutations are secret-shared vectors of
    destination indices; once routed through a random sharded permutation
    they may be safely opened — the opened vector is the destination
    vector of [rho ∘ pi^{-1}], uniform for uniform [pi]. *)

open Orq_proto

val perm_width : Ctx.t -> int

val shuffle : ?width:int -> Ctx.t -> Share.shared -> Share.shared
(** Protocol 4: generate and apply a random sharded permutation. *)

val shuffle_table : ?width:int -> Ctx.t -> Share.shared list -> Share.shared list

val apply_elementwise :
  ?width:int -> Ctx.t -> Share.shared -> Share.shared -> Share.shared
(** Protocol 5: apply a secret elementwise permutation to a shared vector. *)

val apply_elementwise_flags :
  Ctx.t -> Share.flags -> Share.shared -> Share.flags
(** Protocol 5 for a packed flag column — the single-bit payload moves as
    packed words; wire cost identical to [apply_elementwise ~width:1] on
    the unpacked column. *)

val apply_elementwise_table :
  ?width:int -> Ctx.t -> Share.shared list -> Share.shared -> Share.shared list
(** Protocol 5 over a table: the shuffle of [rho] and its opening are paid
    once for all columns (radixsort's carry). *)

val shuffle_table_c :
  ?width:int -> Ctx.t -> Share.chunked list -> Share.chunked list
(** Chunked Protocol 4 over a table — columns stream chunk-at-a-time;
    metering identical to {!shuffle_table}. *)

val apply_elementwise_table_c :
  ?width:int -> Ctx.t -> Share.chunked list -> Share.shared -> Share.chunked list
(** Chunked Protocol 5 over a table — the data columns stream, the index
    column [rho] stays monolithic; wire cost identical to
    {!apply_elementwise_table}. *)

val compose : Ctx.t -> Share.shared -> Share.shared -> Share.shared
(** Protocol 6: [compose sigma rho] = [rho ∘ sigma] (apply [sigma] first). *)

val invert : ?enc:Share.enc -> Ctx.t -> Share.shared -> Share.shared
(** Protocol 8: invert an elementwise permutation by applying it to the
    shared identity vector (Fact 1). *)

val convert : Ctx.t -> Share.shared -> Share.enc -> Share.shared
(** Protocol 7: convert an elementwise permutation between encodings —
    shuffle/open/reshare in the honest-majority settings, per-element
    conversion in 2PC. *)
