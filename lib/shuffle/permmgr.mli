(** The PermutationManager abstraction (Appendix A.4): setting-agnostic
    generation of sharded permutations, including pairs representing the
    same permutation (data and an elementwise permutation travelling under
    one shuffle). In 2PC a pair consumes an extra typed permutation
    correlation (correlations cannot be reused). *)

open Orq_proto

val gen : Ctx.t -> int -> Shardedperm.t
val gen_pair : Ctx.t -> int -> Shardedperm.t * Shardedperm.t
