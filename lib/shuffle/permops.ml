(** High-level oblivious permutation protocols (Appendix A.4): shuffle
    (Protocol 4), elementwise-permutation application (Protocol 5),
    composition (Protocol 6), encoding conversion (Protocol 7) and inversion
    (Protocol 8).

    Elementwise permutations are ordinary secret-shared vectors of
    destination indices; the common trick is that once such a vector has
    been routed through a random *sharded* permutation, it can be safely
    opened — the opened vector is the destination vector of [rho o pi^{-1}],
    uniform for uniform [pi]. *)

open Orq_proto

let perm_width (ctx : Ctx.t) = ctx.perm_bits

(** Protocol 4: oblivious shuffle — generate and apply a random sharded
    permutation. *)
let shuffle ?width (ctx : Ctx.t) (x : Share.shared) : Share.shared =
  Ctx.with_label ctx "shuffle" @@ fun () ->
  let p = Permmgr.gen ctx (Share.length x) in
  Shardedperm.apply ?width ctx x p

(** Shuffle several columns under one common permutation. *)
let shuffle_table ?width (ctx : Ctx.t) (cols : Share.shared list) :
    Share.shared list =
  match cols with
  | [] -> []
  | c :: _ ->
      Ctx.with_label ctx "shuffle" @@ fun () ->
      let p = Permmgr.gen ctx (Share.length c) in
      Shardedperm.apply_table ?width ctx cols p

(** Chunked Protocol 4 over a table: columns stream chunk-at-a-time
    through the sharded application; metering identical to
    {!shuffle_table}. *)
let shuffle_table_c ?width (ctx : Ctx.t) (cols : Share.chunked list) :
    Share.chunked list =
  match cols with
  | [] -> []
  | c :: _ ->
      Ctx.with_label ctx "shuffle" @@ fun () ->
      let p = Permmgr.gen ctx (Share.chunked_length c) in
      Shardedperm.apply_table_c ?width ctx cols p

(** Protocol 5: apply a secret elementwise permutation [rho] to [x]. The
    two sharded applications act on independent inputs under independent
    permutations, so their rounds are fused (their traffic is untouched). *)
let apply_elementwise ?width (ctx : Ctx.t) (x : Share.shared)
    (rho : Share.shared) : Share.shared =
  let n = Share.length x in
  if Share.length rho <> n then invalid_arg "apply_elementwise: length";
  Ctx.with_label ctx "applyperm" @@ fun () ->
  let p1, p2 = Permmgr.gen_pair ctx n in
  let pair =
    Mpc.fuse_rounds ctx
      [|
        (fun () -> Shardedperm.apply ?width ctx x p1);
        (fun () -> Shardedperm.apply ~width:(perm_width ctx) ctx rho p2);
      |]
  in
  let c = Mpc.open_ ~width:(perm_width ctx) ctx pair.(1) in
  Share.scatter pair.(0) c

(** Protocol 5 for a packed flag column: the data being permuted is a
    single bit per row, so the first sharded application moves packed
    words ({!Shardedperm.apply_flags}) and the final local rearrangement
    is a packed scatter. Wire cost identical to
    [apply_elementwise ~width:1] on the unpacked 0/1 column — which is
    exactly what it falls back to under [ORQ_NO_BITPACK]. *)
let apply_elementwise_flags (ctx : Ctx.t) (x : Share.flags)
    (rho : Share.shared) : Share.flags =
  let n = Share.flags_length x in
  if Share.length rho <> n then invalid_arg "apply_elementwise: length";
  if not (Mpc.bitpack_enabled ()) then
    Share.pack_flags (apply_elementwise ~width:1 ctx (Share.unpack_flags x) rho)
  else begin
    Ctx.with_label ctx "applyperm" @@ fun () ->
    let p1, p2 = Permmgr.gen_pair ctx n in
    let pair =
      Mpc.fuse_rounds ctx
        [|
          (fun () -> `F (Shardedperm.apply_flags ctx x p1));
          (fun () ->
            `S (Shardedperm.apply ~width:(perm_width ctx) ctx rho p2));
        |]
    in
    let xf = match pair.(0) with `F f -> f | `S _ -> assert false in
    let rs = match pair.(1) with `S s -> s | `F _ -> assert false in
    let c = Mpc.open_ ~width:(perm_width ctx) ctx rs in
    Share.flags_scatter xf c
  end

(** Protocol 5 over a table: several columns move under the same secret
    elementwise permutation, paying the shuffle of [rho] and its opening
    once. Used by radixsort to carry the data and padding columns. *)
let apply_elementwise_table ?width (ctx : Ctx.t) (cols : Share.shared list)
    (rho : Share.shared) : Share.shared list =
  match cols with
  | [] -> []
  | c0 :: _ ->
      Ctx.with_label ctx "applyperm" @@ fun () ->
      let n = Share.length c0 in
      let p1, p2 = Permmgr.gen_pair ctx n in
      let pair =
        Mpc.fuse_rounds ctx
          [|
            (fun () -> Shardedperm.apply_table ?width ctx cols p1);
            (fun () -> [ Shardedperm.apply ~width:(perm_width ctx) ctx rho p2 ]);
          |]
      in
      let rs = match pair.(1) with [ rs ] -> rs | _ -> assert false in
      let c = Mpc.open_ ~width:(perm_width ctx) ctx rs in
      List.map (fun x -> Share.scatter x c) pair.(0)

(** Chunked Protocol 5 over a table: the data columns stream chunk-at-a-
    time (sharded application and final scatter both chunk-aware); [rho]
    itself stays monolithic — it is a single index column, and its shuffle
    and opening are paid once for all columns exactly as in
    {!apply_elementwise_table}. *)
let apply_elementwise_table_c ?width (ctx : Ctx.t) (cols : Share.chunked list)
    (rho : Share.shared) : Share.chunked list =
  match cols with
  | [] -> []
  | c0 :: _ ->
      Ctx.with_label ctx "applyperm" @@ fun () ->
      let n = Share.chunked_length c0 in
      if Share.length rho <> n then invalid_arg "apply_elementwise: length";
      let p1, p2 = Permmgr.gen_pair ctx n in
      let pair =
        Mpc.fuse_rounds ctx
          [|
            (fun () -> `C (Shardedperm.apply_table_c ?width ctx cols p1));
            (fun () ->
              `S (Shardedperm.apply ~width:(perm_width ctx) ctx rho p2));
          |]
      in
      let cs = match pair.(0) with `C l -> l | `S _ -> assert false in
      let rs = match pair.(1) with `S s -> s | `C _ -> assert false in
      let c = Mpc.open_ ~width:(perm_width ctx) ctx rs in
      List.map
        (fun x ->
          let out = Share.scatter_c x c in
          Share.dispose_c x;
          out)
        cs

(** Protocol 6: compose two secret elementwise permutations, returning
    [rho o sigma] (apply [sigma] first). *)
let compose (ctx : Ctx.t) (sigma : Share.shared) (rho : Share.shared) :
    Share.shared =
  let n = Share.length sigma in
  if Share.length rho <> n then invalid_arg "compose: length";
  Ctx.with_label ctx "permcompose" @@ fun () ->
  let p = Permmgr.gen ctx n in
  let ps = Shardedperm.apply ~width:(perm_width ctx) ctx sigma p in
  let c = Mpc.open_ ~width:(perm_width ctx) ctx ps in
  (* localApplyPerm(rho, c^{-1}) is a gather by c *)
  let v = Share.gather rho c in
  Shardedperm.apply_inverse ~width:(perm_width ctx) ctx v p

(** Protocol 8: invert a secret elementwise permutation by obliviously
    applying it to the shared identity vector (Fact 1). *)
let invert ?enc (ctx : Ctx.t) (pi : Share.shared) : Share.shared =
  let n = Share.length pi in
  let enc = Option.value enc ~default:pi.Share.enc in
  Ctx.with_label ctx "perminvert" @@ fun () ->
  let identity = Share.public_vec ctx enc (Localperm.identity n) in
  apply_elementwise ~width:(perm_width ctx) ctx identity pi

(** Protocol 7: convert an elementwise permutation between arithmetic and
    boolean sharings. Honest-majority: shuffle, open, reshare under the
    target encoding, unshuffle — cheaper than per-element conversion because
    the multiset of values of a permutation is public. Dishonest-majority:
    per-element share conversion (the paper's choice for 2PC). *)
let convert (ctx : Ctx.t) (x : Share.shared) (target : Share.enc) :
    Share.shared =
  if x.Share.enc = target then x
  else
    Ctx.with_label ctx "permconvert" @@ fun () ->
    match ctx.kind with
    | Ctx.Sh_dm -> (
        match target with
        | Share.Bool -> Orq_circuits.Convert.a2b ~w:(perm_width ctx) ctx x
        | Share.Arith -> Orq_circuits.Convert.b2a ~w:(perm_width ctx) ctx x)
    | Ctx.Sh_hm | Ctx.Mal_hm ->
        let p = Permmgr.gen ctx (Share.length x) in
        let opened =
          Mpc.open_ ~width:(perm_width ctx) ctx
            (Shardedperm.apply ~width:(perm_width ctx) ctx x p)
        in
        let re = Share.public_vec ctx target opened in
        Shardedperm.apply_inverse ~width:(perm_width ctx) ctx re p
