(** Plaintext permutations (Appendix A.2), represented as index maps:
    [p.(i) = j] moves the value at position [i] to position [j]. Random
    permutations are Fisher–Yates over a seeded PRG; application is
    parallelized over disjoint input spans. *)

val identity : int -> int array
val random : Orq_util.Prg.t -> int -> int array

val apply : Orq_util.Vec.t -> int array -> Orq_util.Vec.t
(** [apply x p] places [x.(i)] at position [p.(i)]. *)

val apply_inverse : Orq_util.Vec.t -> int array -> Orq_util.Vec.t

val invert : int array -> int array

val compose : int array -> int array -> int array
(** [compose pi rho] is pi ∘ rho (apply rho first). *)

val is_permutation : int array -> bool
