(** The PermutationManager abstraction (Appendix A.4): generation of sharded
    permutations in a setting-agnostic way, including pairs of sharded
    permutations representing the same underlying permutation (needed
    whenever data and an elementwise permutation must travel under the same
    shuffle).

    In the honest-majority settings a pair is literally the same sharded
    permutation twice; in the dishonest-majority setting the second use
    needs its own type/encoding-bound permutation correlation (correlations
    cannot be securely reused), which we account as an extra preprocessing
    correlation. Because all generation is data-independent, the real system
    pregenerates in bulk; in the simulation generation is immediate and only
    its preprocessing traffic is recorded, so pooling would not change any
    measured quantity. *)

open Orq_proto

(** [gen ctx n]: a fresh random sharded permutation over [n] elements. *)
let gen (ctx : Ctx.t) n : Shardedperm.t = Shardedperm.gen ctx n

(** [gen_pair ctx n]: two sharded permutations guaranteed to represent the
    same permutation (the paper's [genShardedPermPair]). *)
let gen_pair (ctx : Ctx.t) n : Shardedperm.t * Shardedperm.t =
  let p = gen ctx n in
  (match ctx.kind with
  | Ctx.Sh_dm ->
      (* second typed correlation for the same permutation *)
      Orq_net.Comm.round ctx.preproc ~bits:(2 * 2 * ctx.ell * n) ~messages:2
  | Ctx.Sh_hm | Ctx.Mal_hm -> ());
  (p, p)
