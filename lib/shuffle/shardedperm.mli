(** Sharded permutations (Appendix A.3): a secret permutation as a
    composition of local permutations, each known to one shuffle group but
    none to the adversary. Generation is PRG-based for the honest-majority
    protocols and uses preprocessing permutation correlations (Peceny et
    al.) in 2PC; application is permute-and-reshare per component, metered
    at the paper's Table 1 totals. The Mal-HM redundant resharing detects
    tampering. *)

open Orq_proto

type t = {
  n : int;
  components : int array array;  (** applied left to right *)
}

val components_of_kind : Ctx.kind -> int

val apply_cost : Ctx.t -> w:int -> int -> int * int * int
(** (bits, rounds, messages) of one application over n elements of w bits. *)

val gen : Ctx.t -> int -> t
(** Random sharded permutation of [n] elements (2PC correlations charged
    to preprocessing). *)

val plaintext : t -> int array
(** The underlying permutation — test-only; no party could compute it. *)

val apply : ?width:int -> Ctx.t -> Share.shared -> t -> Share.shared
val apply_inverse : ?width:int -> Ctx.t -> Share.shared -> t -> Share.shared

val apply_flags : Ctx.t -> Share.flags -> t -> Share.flags
(** Apply to a packed flag sharing: the flags travel as single bits
    (width-1 {!apply_cost}), the local permutes and resharing noise run
    over packed words. *)

val apply_table :
  ?width:int -> Ctx.t -> Share.shared list -> t -> Share.shared list
(** One permutation over several columns: rounds of a single application,
    bytes scaling with data volume — what lets TableSort permute a whole
    table once. *)

val apply_table_inverse :
  ?width:int -> Ctx.t -> Share.shared list -> t -> Share.shared list

(** {2 Chunked (out-of-core) application}

    Streaming twins of the above: the local permute and per-component
    resharing run chunk-at-a-time through the {!Orq_util.Chunkvec} store,
    so a multi-chunk column's working set is one column (with cold chunks
    evictable), while the metered rounds/bits/messages are charged once at
    the whole-logical-vector level and are byte-identical to the
    monolithic path. The monolithic functions are the single-chunk special
    case of these. *)

val apply_c : ?width:int -> Ctx.t -> Share.chunked -> t -> Share.chunked
val apply_inverse_c : ?width:int -> Ctx.t -> Share.chunked -> t -> Share.chunked

val apply_table_c :
  ?width:int -> Ctx.t -> Share.chunked list -> t -> Share.chunked list

val apply_table_inverse_c :
  ?width:int -> Ctx.t -> Share.chunked list -> t -> Share.chunked list
