(** Sharded permutations (Appendix A.3): a secret permutation represented as
    a composition of local permutations, each known to one shuffle group but
    none to the adversary.

    - 3PC: three components; each round one pair of parties permutes under
      its common-seed permutation and reshares to the excluded party.
    - 4PC: four components; shuffle groups of three parties, redundant
      resharing (value + digest) gives malicious detection.
    - 2PC: two permutation correlations (Peceny et al.), one per direction,
      produced in preprocessing; online application costs two rounds.

    The lockstep simulation stores the component permutations and performs
    permute-and-reshare exactly; traffic is metered at the per-protocol
    totals of the paper's Table 1. *)

open Orq_proto
module Comm = Orq_net.Comm

type t = {
  n : int;
  components : int array array;  (** applied left to right *)
}

let components_of_kind = function
  | Ctx.Sh_dm -> 2
  | Ctx.Sh_hm -> 3
  | Ctx.Mal_hm -> 4

(* Per-application online cost of one sharded permutation over n elements
   of w bits: (bits, rounds, messages); Table 1 totals. *)
let apply_cost (ctx : Ctx.t) ~w n =
  match ctx.kind with
  | Ctx.Sh_dm -> (2 * w * n, 2, 2)
  | Ctx.Sh_hm -> (6 * w * n, 3, 6)
  | Ctx.Mal_hm -> (24 * w * n, 4, 12)

(** Generate a random sharded permutation of [n] elements. Honest-majority
    generation is free (common PRG seeds); the 2PC permutation correlations
    are charged to preprocessing. *)
let gen (ctx : Ctx.t) n : t =
  let k = components_of_kind ctx.kind in
  (* permutations come from the dedicated stream: shuffle-group seeds are
     independent of correlation randomness (see Ctx.perm_prg) *)
  let components = Array.init k (fun _ -> Localperm.random ctx.perm_prg n) in
  (match ctx.kind with
  | Ctx.Sh_dm ->
      (* two OPRF-based permutation correlations (sender roles swapped) *)
      Comm.round ctx.preproc ~bits:(2 * 2 * ctx.ell * n) ~messages:2
  | Ctx.Sh_hm | Ctx.Mal_hm -> ());
  { n; components }

(** The plaintext permutation a sharded permutation represents (test-only:
    no party could compute this). *)
let plaintext (t : t) =
  Array.fold_left
    (fun acc p -> Localperm.compose p acc)
    (Localperm.identity t.n) t.components

(* Permute-and-reshare one component: every shuffle group applies its local
   permutation to all share vectors and rerandomizes before resharing to the
   excluded party. The Mal-HM redundant resharing verifies sender honesty.

   The permute runs chunk-at-a-time through the store ([Chunkvec.scatter] /
   [Chunkvec.gather]) and the resharing noise is drawn per chunk in
   ascending order, so a multi-chunk column streams with a working set of
   one column instead of one table. On a single-chunk (wrapped monolithic)
   input every step degenerates to exactly the pre-chunking code path:
   same values, same PRG draw order. [owned] marks an intermediate whose
   chunks we must release deterministically. *)
let apply_component_c (ctx : Ctx.t) (c : Share.chunked) (p : int array)
    ~inverse ~owned =
  (* Localperm.apply places x.(i) at p.(i) (a scatter); its inverse is a
     gather by p. *)
  let permuted =
    if inverse then Share.gather_c c p else Share.scatter_c c p
  in
  if owned then Share.dispose_c c;
  (match ctx.kind with
  | Ctx.Mal_hm ->
      for party = 0 to ctx.parties - 1 do
        if Ctx.tamper_delta ctx ~party ~op:"shuffle" <> 0 then
          raise (Ctx.Abort "shuffle: reshare verification failed")
      done
  | Ctx.Sh_dm | Ctx.Sh_hm -> ());
  let rows = if Share.chunked_length permuted = 0 then 1
    else Orq_util.Chunkvec.rows_of permuted.Share.cv.(0) in
  let reshared =
    Share.build_chunked ~like:permuted (fun pos _len ->
        Share.with_chunk_c permuted (pos / rows) (fun s ->
            Mpc.reshare_unmetered ctx s))
  in
  Share.dispose_c permuted;
  reshared

(* Unmetered component fold over all components (forward or reverse). *)
let fold_components_c (ctx : Ctx.t) (c : Share.chunked) (t : t) ~inverse =
  if inverse then begin
    let acc = ref c in
    for i = Array.length t.components - 1 downto 0 do
      acc :=
        apply_component_c ctx !acc t.components.(i) ~inverse:true
          ~owned:(!acc != c)
    done;
    !acc
  end
  else
    Array.fold_left
      (fun acc p -> apply_component_c ctx acc p ~inverse:false ~owned:(acc != c))
      c t.components

(* Packed-lane twin of {!apply_component}: the local permutation moves
   flags bit-granularly inside the packed words and the rerandomization
   noise is drawn per word. *)
let apply_flags_component (ctx : Ctx.t) (f : Share.flags) (p : int array) =
  let f =
    { Share.fv = Array.map (fun bk -> Orq_util.Bits.scatter bk p) f.Share.fv }
  in
  (match ctx.kind with
  | Ctx.Mal_hm ->
      for party = 0 to ctx.parties - 1 do
        if Ctx.tamper_delta ctx ~party ~op:"shuffle" <> 0 then
          raise (Ctx.Abort "shuffle: reshare verification failed")
      done
  | Ctx.Sh_dm | Ctx.Sh_hm -> ());
  Mpc.reshare_flags_unmetered ctx f

(** Apply a sharded permutation to a packed flag sharing — the flags move
    as single bits on the wire, so the metered cost is {!apply_cost} at
    width 1, identical to permuting the unpacked 0/1 column. *)
let apply_flags (ctx : Ctx.t) (f : Share.flags) (t : t) : Share.flags =
  if Share.flags_length f <> t.n then
    invalid_arg "Shardedperm.apply_flags: length";
  let bits, rounds, messages = apply_cost ctx ~w:1 t.n in
  Comm.round ctx.comm ~bits ~messages;
  Comm.rounds_only ctx.comm (rounds - 1);
  Array.fold_left (fun acc p -> apply_flags_component ctx acc p) f t.components

(** Apply a sharded permutation to a chunked sharing, streaming
    chunk-at-a-time; metered exactly like the monolithic {!apply} (the
    interactive exchange is one whole-column reshare per component —
    chunking only reorders local evaluation, never the wire protocol). *)
let apply_c ?width (ctx : Ctx.t) (c : Share.chunked) (t : t) : Share.chunked =
  if Share.chunked_length c <> t.n then invalid_arg "Shardedperm.apply: length";
  let w = Option.value width ~default:ctx.ell in
  let bits, rounds, messages = apply_cost ctx ~w t.n in
  Comm.round ctx.comm ~bits ~messages;
  Comm.rounds_only ctx.comm (rounds - 1);
  fold_components_c ctx c t ~inverse:false

(** Apply the inverse (components undone in reverse order); same cost. *)
let apply_inverse_c ?width (ctx : Ctx.t) (c : Share.chunked) (t : t) :
    Share.chunked =
  if Share.chunked_length c <> t.n then
    invalid_arg "Shardedperm.apply_inverse: length";
  let w = Option.value width ~default:ctx.ell in
  let bits, rounds, messages = apply_cost ctx ~w t.n in
  Comm.round ctx.comm ~bits ~messages;
  Comm.rounds_only ctx.comm (rounds - 1);
  fold_components_c ctx c t ~inverse:true

(** One permutation over several chunked columns: rounds of a single
    application (columns travel together), bytes scaling with data volume;
    columns stream one at a time, so the working set is one column. *)
let apply_table_c ?width (ctx : Ctx.t) (cols : Share.chunked list) (t : t) :
    Share.chunked list =
  match cols with
  | [] -> []
  | _ ->
      let w = Option.value width ~default:ctx.ell in
      let per_col =
        List.map (fun c -> apply_cost ctx ~w (Share.chunked_length c)) cols
      in
      let bits = List.fold_left (fun a (b, _, _) -> a + b) 0 per_col in
      let _, rounds, messages = List.hd per_col in
      Comm.round ctx.comm ~bits ~messages;
      Comm.rounds_only ctx.comm (rounds - 1);
      List.map (fun c -> fold_components_c ctx c t ~inverse:false) cols

let apply_table_inverse_c ?width (ctx : Ctx.t) (cols : Share.chunked list)
    (t : t) : Share.chunked list =
  match cols with
  | [] -> []
  | _ ->
      let w = Option.value width ~default:ctx.ell in
      let per_col =
        List.map (fun c -> apply_cost ctx ~w (Share.chunked_length c)) cols
      in
      let bits = List.fold_left (fun a (b, _, _) -> a + b) 0 per_col in
      let _, rounds, messages = List.hd per_col in
      Comm.round ctx.comm ~bits ~messages;
      Comm.rounds_only ctx.comm (rounds - 1);
      List.map (fun c -> fold_components_c ctx c t ~inverse:true) cols

(* Monolithic API: the single-chunk special case of the streaming core
   (wrap is copy-free, and on one chunk the core replays the pre-chunking
   computation exactly — values, PRG order and metering all identical). *)

let apply ?width (ctx : Ctx.t) (s : Share.shared) (t : t) : Share.shared =
  Share.unpark (apply_c ?width ctx (Share.wrap s) t)

let apply_inverse ?width (ctx : Ctx.t) (s : Share.shared) (t : t) :
    Share.shared =
  Share.unpark (apply_inverse_c ?width ctx (Share.wrap s) t)

let apply_table ?width (ctx : Ctx.t) (cols : Share.shared list) (t : t) :
    Share.shared list =
  List.map Share.unpark (apply_table_c ?width ctx (List.map Share.wrap cols) t)

let apply_table_inverse ?width (ctx : Ctx.t) (cols : Share.shared list) (t : t)
    : Share.shared list =
  List.map Share.unpark
    (apply_table_inverse_c ?width ctx (List.map Share.wrap cols) t)
