(** Sharded permutations (Appendix A.3): a secret permutation represented as
    a composition of local permutations, each known to one shuffle group but
    none to the adversary.

    - 3PC: three components; each round one pair of parties permutes under
      its common-seed permutation and reshares to the excluded party.
    - 4PC: four components; shuffle groups of three parties, redundant
      resharing (value + digest) gives malicious detection.
    - 2PC: two permutation correlations (Peceny et al.), one per direction,
      produced in preprocessing; online application costs two rounds.

    The lockstep simulation stores the component permutations and performs
    permute-and-reshare exactly; traffic is metered at the per-protocol
    totals of the paper's Table 1. *)

open Orq_proto
module Comm = Orq_net.Comm

type t = {
  n : int;
  components : int array array;  (** applied left to right *)
}

let components_of_kind = function
  | Ctx.Sh_dm -> 2
  | Ctx.Sh_hm -> 3
  | Ctx.Mal_hm -> 4

(* Per-application online cost of one sharded permutation over n elements
   of w bits: (bits, rounds, messages); Table 1 totals. *)
let apply_cost (ctx : Ctx.t) ~w n =
  match ctx.kind with
  | Ctx.Sh_dm -> (2 * w * n, 2, 2)
  | Ctx.Sh_hm -> (6 * w * n, 3, 6)
  | Ctx.Mal_hm -> (24 * w * n, 4, 12)

(** Generate a random sharded permutation of [n] elements. Honest-majority
    generation is free (common PRG seeds); the 2PC permutation correlations
    are charged to preprocessing. *)
let gen (ctx : Ctx.t) n : t =
  let k = components_of_kind ctx.kind in
  (* permutations come from the dedicated stream: shuffle-group seeds are
     independent of correlation randomness (see Ctx.perm_prg) *)
  let components = Array.init k (fun _ -> Localperm.random ctx.perm_prg n) in
  (match ctx.kind with
  | Ctx.Sh_dm ->
      (* two OPRF-based permutation correlations (sender roles swapped) *)
      Comm.round ctx.preproc ~bits:(2 * 2 * ctx.ell * n) ~messages:2
  | Ctx.Sh_hm | Ctx.Mal_hm -> ());
  { n; components }

(** The plaintext permutation a sharded permutation represents (test-only:
    no party could compute this). *)
let plaintext (t : t) =
  Array.fold_left
    (fun acc p -> Localperm.compose p acc)
    (Localperm.identity t.n) t.components

(* Permute-and-reshare one component: every shuffle group applies its local
   permutation to all share vectors and rerandomizes before resharing to the
   excluded party. The Mal-HM redundant resharing verifies sender honesty. *)
let apply_component (ctx : Ctx.t) (s : Share.shared) (p : int array) ~inverse =
  let permute = if inverse then Localperm.apply_inverse else Localperm.apply in
  let s = { s with Share.v = Array.map (fun vk -> permute vk p) s.Share.v } in
  (match ctx.kind with
  | Ctx.Mal_hm ->
      for party = 0 to ctx.parties - 1 do
        if Ctx.tamper_delta ctx ~party ~op:"shuffle" <> 0 then
          raise (Ctx.Abort "shuffle: reshare verification failed")
      done
  | Ctx.Sh_dm | Ctx.Sh_hm -> ());
  Mpc.reshare_unmetered ctx s

(* Packed-lane twin of {!apply_component}: the local permutation moves
   flags bit-granularly inside the packed words and the rerandomization
   noise is drawn per word. *)
let apply_flags_component (ctx : Ctx.t) (f : Share.flags) (p : int array) =
  let f =
    { Share.fv = Array.map (fun bk -> Orq_util.Bits.scatter bk p) f.Share.fv }
  in
  (match ctx.kind with
  | Ctx.Mal_hm ->
      for party = 0 to ctx.parties - 1 do
        if Ctx.tamper_delta ctx ~party ~op:"shuffle" <> 0 then
          raise (Ctx.Abort "shuffle: reshare verification failed")
      done
  | Ctx.Sh_dm | Ctx.Sh_hm -> ());
  Mpc.reshare_flags_unmetered ctx f

(** Apply a sharded permutation to a packed flag sharing — the flags move
    as single bits on the wire, so the metered cost is {!apply_cost} at
    width 1, identical to permuting the unpacked 0/1 column. *)
let apply_flags (ctx : Ctx.t) (f : Share.flags) (t : t) : Share.flags =
  if Share.flags_length f <> t.n then
    invalid_arg "Shardedperm.apply_flags: length";
  let bits, rounds, messages = apply_cost ctx ~w:1 t.n in
  Comm.round ctx.comm ~bits ~messages;
  Comm.rounds_only ctx.comm (rounds - 1);
  Array.fold_left (fun acc p -> apply_flags_component ctx acc p) f t.components

(** Apply a sharded permutation obliviously to a shared vector. *)
let apply ?width (ctx : Ctx.t) (s : Share.shared) (t : t) : Share.shared =
  if Share.length s <> t.n then invalid_arg "Shardedperm.apply: length";
  let w = Option.value width ~default:ctx.ell in
  let bits, rounds, messages = apply_cost ctx ~w t.n in
  Comm.round ctx.comm ~bits ~messages;
  Comm.rounds_only ctx.comm (rounds - 1);
  Array.fold_left
    (fun acc p -> apply_component ctx acc p ~inverse:false)
    s t.components

(** Apply the inverse of a sharded permutation (components undone in
    reverse order); same cost as {!apply}. *)
let apply_inverse ?width (ctx : Ctx.t) (s : Share.shared) (t : t) : Share.shared =
  if Share.length s <> t.n then invalid_arg "Shardedperm.apply_inverse: length";
  let w = Option.value width ~default:ctx.ell in
  let bits, rounds, messages = apply_cost ctx ~w t.n in
  Comm.round ctx.comm ~bits ~messages;
  Comm.rounds_only ctx.comm (rounds - 1);
  let k = Array.length t.components in
  let acc = ref s in
  for i = k - 1 downto 0 do
    acc := apply_component ctx !acc t.components.(i) ~inverse:true
  done;
  !acc

(** Apply one sharded permutation to several columns of a table. Rounds are
    those of a single application (columns travel together); bytes scale
    with the data volume. This is the optimization that lets TableSort
    permute a whole table once. *)
let apply_table ?width (ctx : Ctx.t) (cols : Share.shared list) (t : t) :
    Share.shared list =
  match cols with
  | [] -> []
  | _ ->
      let w = Option.value width ~default:ctx.ell in
      let per_col = List.map (fun c -> apply_cost ctx ~w (Share.length c)) cols in
      let bits = List.fold_left (fun a (b, _, _) -> a + b) 0 per_col in
      let _, rounds, messages = List.hd per_col in
      Comm.round ctx.comm ~bits ~messages;
      Comm.rounds_only ctx.comm (rounds - 1);
      List.map
        (fun c ->
          Array.fold_left
            (fun acc p -> apply_component ctx acc p ~inverse:false)
            c t.components)
        cols

let apply_table_inverse ?width (ctx : Ctx.t) (cols : Share.shared list) (t : t) :
    Share.shared list =
  match cols with
  | [] -> []
  | _ ->
      let w = Option.value width ~default:ctx.ell in
      let per_col = List.map (fun c -> apply_cost ctx ~w (Share.length c)) cols in
      let bits = List.fold_left (fun a (b, _, _) -> a + b) 0 per_col in
      let _, rounds, messages = List.hd per_col in
      Comm.round ctx.comm ~bits ~messages;
      Comm.rounds_only ctx.comm (rounds - 1);
      List.map
        (fun c ->
          let k = Array.length t.components in
          let acc = ref c in
          for i = k - 1 downto 0 do
            acc := apply_component ctx !acc t.components.(i) ~inverse:true
          done;
          !acc)
        cols
