(** Plaintext permutations (Appendix A.2).

    Permutations are index maps: [p.(i) = j] means the value at position [i]
    moves to position [j]. Random permutations come from Fisher–Yates over a
    seeded PRG (so parties sharing a seed derive identical permutations);
    application is parallelized by giving each worker a contiguous input
    span with full write access to the output — a permutation writes every
    slot exactly once. *)

open Orq_util

let identity n = Array.init n (fun i -> i)

(** Fisher–Yates shuffle producing a uniform permutation of [n] elements. *)
let random (prg : Prg.t) n =
  let p = identity n in
  for i = n - 1 downto 1 do
    let j = Prg.int_below prg (i + 1) in
    let t = p.(i) in
    p.(i) <- p.(j);
    p.(j) <- t
  done;
  p

(** [apply x p] places [x.(i)] at position [p.(i)]. *)
let apply (x : Vec.t) (p : int array) : Vec.t = Parallel.apply_perm x p

(** [apply_inverse x p] undoes {!apply}: result.(i) = x.(p.(i)). *)
let apply_inverse (x : Vec.t) (p : int array) : Vec.t = Vec.gather x p

(** [invert p]: the permutation q with q.(p.(i)) = i. Parallel: inversion
    writes every output slot exactly once, so spans get full write access
    like {!apply}. *)
let invert (p : int array) =
  let n = Array.length p in
  let q = Array.make n 0 in
  Parallel.run_spans n (fun pos len ->
      for i = pos to pos + len - 1 do
        q.(p.(i)) <- i
      done);
  q

(** [compose pi rho] is pi ∘ rho (apply rho first): (pi ∘ rho).(i) =
    pi.(rho.(i)) — a gather of [pi] by [rho], parallel over output spans. *)
let compose (pi : int array) (rho : int array) = Vec.gather pi rho

let is_permutation p =
  let n = Array.length p in
  let seen = Array.make n false in
  Array.for_all
    (fun j -> j >= 0 && j < n && not seen.(j) && (seen.(j) <- true; true))
    p
