(** Rank-carrying instrumented mutexes: the runtime half of the
    concurrency discipline (see DESIGN.md "Concurrency discipline").

    Every mutex in the engine is created through {!create} with a [name]
    and a [rank] drawn from the audited lock registry
    ([lib/analysis/lockmap.ml]); the static lint ([orq_lint concur])
    cross-checks each create site against the registry and forbids raw
    [Mutex.t] use outside this file. Acquisition is structured:
    {!with_lock} is the only sanctioned way to hold a lock, and
    {!wait} the only sanctioned way to block on a condition variable.

    Under [ORQ_DEBUG_CHECKS=1] ({!Debug.enabled}) every thread carries a
    held-lock stack and each acquisition is validated against the total
    lock order: taking a lock whose rank is lower than or equal to the
    rank of any lock already held fails fast with both lock names, as
    does any acquisition attempted from inside a GC finaliser
    ({!finaliser_guard}) — the two mechanical preconditions of the PR 9
    chunk-store deadlock. Running the whole test suite with checks on
    cross-checks the statically-derived lock graph against the
    acquisition orders that actually happen.

    The checker itself must be finaliser-safe: a finaliser can fire at
    any allocation point, including between two bookkeeping steps of the
    very thread it interrupts. All checker state is therefore per-thread
    (mutated only by its owner) and reached through a lock-free
    compare-and-swap registry — the checker never takes a lock of its
    own, so it can never recreate the deadlock class it polices. *)

exception Discipline of string
(** A violation of the runtime lock discipline: rank inversion, wait on
    a lock that is not the innermost held, or acquisition from a GC
    finaliser. Raised eagerly at the faulting operation (fail fast: the
    stack trace names the offending call site). *)

type t = { l_name : string; l_rank : int; l_m : Mutex.t }

let create ~name ~rank () =
  { l_name = name; l_rank = rank; l_m = Mutex.create () }

let name l = l.l_name
let rank l = l.l_rank

(* ---------------- per-thread checker state ---------------- *)

(* Mutated only by the owning thread; other threads never read it. The
   registry that maps thread keys to state is an immutable assoc list
   swapped by CAS, so lookups and insertions are lock-free (finalisers
   may re-enter this code at any allocation point). Entries are never
   removed: the leak is bounded by the number of distinct threads ever
   started, and the checker only runs in debug mode. *)
type tstate = {
  mutable held : t list;  (** innermost (highest rank) first *)
  mutable fin_depth : int;  (** > 0 while running a finaliser body *)
}

let states : ((int * int) * tstate) list Atomic.t = Atomic.make []

let thread_key () =
  ((Domain.self () :> int), Thread.id (Thread.self ()))

let rec assoc_opt key = function
  | [] -> None
  | (k, s) :: rest -> if k = key then Some s else assoc_opt key rest

let state_for key =
  match assoc_opt key (Atomic.get states) with
  | Some s -> s
  | None ->
      let rec add () =
        let old = Atomic.get states in
        (* a finaliser interleaved on this very thread may have inserted
           our key between the miss above and this CAS *)
        match assoc_opt key old with
        | Some s -> s
        | None ->
            let s = { held = []; fin_depth = 0 } in
            if Atomic.compare_and_set states old ((key, s) :: old) then s
            else add ()
      in
      add ()

let fail fmt = Printf.ksprintf (fun s -> raise (Discipline s)) fmt

let held_names () =
  if not (Debug.enabled ()) then []
  else
    let s = state_for (thread_key ()) in
    List.map (fun l -> l.l_name) s.held

(* ---------------- checked acquisition ---------------- *)

let check_order l (s : tstate) =
  if s.fin_depth > 0 then
    fail
      "Locked: GC finaliser tried to acquire %S (rank %d) — finalisers \
       must hand work off lock-free (graveyard pattern), never lock"
      l.l_name l.l_rank;
  match s.held with
  | top :: _ when top.l_rank >= l.l_rank ->
      fail
        "Locked: lock-order violation: acquiring %S (rank %d) while \
         holding %S (rank %d) — the registry (lockmap.ml) requires \
         strictly increasing ranks"
        l.l_name l.l_rank top.l_name top.l_rank
  | _ -> ()

(* Remove the first physical occurrence; tolerate absence (checks may
   have been enabled mid-hold). The fast path — unlocking the innermost
   lock — allocates nothing. *)
let rec remove l = function
  | [] -> []
  | x :: rest -> if x == l then rest else x :: remove l rest

let lock l =
  if Debug.enabled () then begin
    let s = state_for (thread_key ()) in
    check_order l s;
    Mutex.lock l.l_m;
    s.held <- l :: s.held
  end
  else Mutex.lock l.l_m

let unlock l =
  if Debug.enabled () then begin
    let s = state_for (thread_key ()) in
    s.held <- remove l s.held
  end;
  Mutex.unlock l.l_m

let with_lock l f =
  lock l;
  Fun.protect ~finally:(fun () -> unlock l) f

let wait l c =
  if Debug.enabled () then begin
    let s = state_for (thread_key ()) in
    match s.held with
    | top :: _ when top == l -> ()
    | top :: _ ->
        fail
          "Locked: waiting on %S while %S is the innermost lock held — \
           wait only on the lock you hold innermost"
          l.l_name top.l_name
    | [] ->
        fail "Locked: waiting on %S without holding it" l.l_name
  end;
  (* Condition.wait releases and re-acquires [l]'s mutex; the held stack
     is deliberately left unchanged — the locked region logically
     continues across the wait. *)
  Condition.wait c l.l_m

let finaliser_guard f x =
  if not (Debug.enabled ()) then f x
  else begin
    let s = state_for (thread_key ()) in
    s.fin_depth <- s.fin_depth + 1;
    Fun.protect
      ~finally:(fun () -> s.fin_depth <- s.fin_depth - 1)
      (fun () -> f x)
  end
