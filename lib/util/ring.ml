(** Ring arithmetic over Z_2^63, the ring of native OCaml integers.

    All ORQ secret sharing is defined over the ring Z_2^ell. We fix the
    machine word to the native [int] (63 bits on 64-bit platforms), whose
    [+], [-], [*] operations wrap modulo 2^63 in two's complement, giving us
    the ring operations for free on unboxed arrays. Narrower widths
    (ell < 63) are handled by masking where a protocol requires it; metering
    is parameterized on the logical bit width separately (see {!Orq_net.Comm}).
*)

(** Number of bits in the ring word. *)
let word_bits = Sys.int_size (* 63 on 64-bit platforms *)

(** All-ones word: the ring element 2^63 - 1, also the full bit mask. *)
let ones = -1

(** [mask ell] is a word with the low [ell] bits set. [ell] must be in
    [0, word_bits]. *)
let mask ell =
  assert (ell >= 0 && ell <= word_bits);
  if ell = word_bits then ones else (1 lsl ell) - 1

(** [truncate ell x] keeps only the low [ell] bits of [x]. *)
let truncate ell x = x land mask ell

(** Sign bit position for signed comparison: the top bit of the word. *)
let sign_bit = 1 lsl (word_bits - 1)

(** [to_signed x] reinterprets the ring element as a signed integer, which
    for native ints is the identity. Kept for documentation symmetry. *)
let to_signed (x : int) = x

(** [bit x i] is bit [i] of [x] as 0 or 1. *)
let bit x i = (x lsr i) land 1

(** [popcount x] counts set bits. *)
let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

(** [log2_ceil n] is the smallest [k] with [2^k >= n]; [log2_ceil 0 = 0]. *)
let log2_ceil n =
  let rec go k p = if p >= n then k else go (k + 1) (p * 2) in
  if n <= 1 then 0 else go 0 1

(** [next_pow2 n] is the smallest power of two [>= n] (and [>= 1]). *)
let next_pow2 n = 1 lsl log2_ceil n

(** [is_pow2 n]. *)
let is_pow2 n = n > 0 && n land (n - 1) = 0
