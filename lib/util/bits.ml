(** Packed single-bit vectors: one flag per bit, {!Ring.word_bits} (= 63)
    flags per ring word.

    ORQ's operators are dominated by single-bit secret shares — comparison
    outputs, mux select bits, partition bits, radix digits, group-boundary
    bits, join validity flags — which {!Vec} stores one per 63-bit word.
    This module stores them one per *bit*, so bulk GF(2) operations
    ([land]/[lxor]/[lnot]) touch 63 flags per word op and randomness for
    packed protocol lanes is drawn per word rather than per element (the
    classic bitslicing trick of boolean-circuit MPC engines).

    Canonical form: bits at positions [>= n] in the last word are zero.
    Every constructor and operation here preserves that invariant (AND/XOR
    of canonical inputs are canonical; NOT and random fills re-mask the
    tail), so {!popcount} and word-level equality are exact. The word array
    is exposed ({!words}) precisely so the MPC layer can run the fused
    {!Vec} protocol kernels — Beaver recombination, replicated cross terms
    — directly over packed words. *)

type t = { n : int; w : int array }

(** Flags per word. The title trick is "64 flags per word"; on OCaml the
    native ring word has 63 usable bits, so packing is 63-to-1. *)
let bpw = Ring.word_bits

let words_for n = (n + bpw - 1) / bpw

let length t = t.n
let words t = t.w
let num_words t = Array.length t.w

let create n =
  if n < 0 then invalid_arg "Bits.create: negative length";
  { n; w = Array.make (words_for n) 0 }

(* Re-establish the canonical zero tail after an operation that may set
   bits at positions >= n (NOT, raw word injection, random fill). *)
let mask_tail t =
  let r = t.n mod bpw in
  if r <> 0 then begin
    let last = Array.length t.w - 1 in
    t.w.(last) <- t.w.(last) land Ring.mask r
  end;
  t

(** Wrap a raw word array as an [n]-bit vector (takes ownership; the tail
    of the last word is masked to canonical form). *)
let of_words n w =
  if Array.length w <> words_for n then invalid_arg "Bits.of_words: length";
  mask_tail { n; w }

let copy t = { t with w = Array.copy t.w }
let equal a b = a.n = b.n && a.w = b.w

let get t i =
  if i < 0 || i >= t.n then invalid_arg "Bits.get: index out of range";
  (t.w.(i / bpw) lsr (i mod bpw)) land 1

let set t i b =
  if i < 0 || i >= t.n then invalid_arg "Bits.set: index out of range";
  let wi = i / bpw and m = 1 lsl (i mod bpw) in
  if b land 1 = 0 then t.w.(wi) <- t.w.(wi) land lnot m
  else t.w.(wi) <- t.w.(wi) lor m

(* ------------------------------------------------------------------ *)
(* Pack / unpack                                                       *)
(* ------------------------------------------------------------------ *)

(** Pack the LSB of each element of a word vector. *)
let pack (v : int array) : t =
  let n = Array.length v in
  let t = create n in
  let nw = Array.length t.w in
  for wi = 0 to nw - 1 do
    let base = wi * bpw in
    let hi = min bpw (n - base) in
    let acc = ref 0 in
    for b = 0 to hi - 1 do
      acc := !acc lor ((Array.unsafe_get v (base + b) land 1) lsl b)
    done;
    t.w.(wi) <- !acc
  done;
  t

(** Pack bit [k] of each element — the fused radix-digit extraction
    straight into packed form. *)
let pack_bit (v : int array) k =
  if k < 0 || k >= bpw then invalid_arg "Bits.pack_bit: bit index";
  let n = Array.length v in
  let t = create n in
  let nw = Array.length t.w in
  for wi = 0 to nw - 1 do
    let base = wi * bpw in
    let hi = min bpw (n - base) in
    let acc = ref 0 in
    for b = 0 to hi - 1 do
      acc := !acc lor (((Array.unsafe_get v (base + b) lsr k) land 1) lsl b)
    done;
    t.w.(wi) <- !acc
  done;
  t

(** Unpack to a 0/1 word vector (one element per flag). *)
let unpack t : int array =
  let v = Array.make t.n 0 in
  let nw = Array.length t.w in
  for wi = 0 to nw - 1 do
    let base = wi * bpw in
    let hi = min bpw (t.n - base) in
    let word = Array.unsafe_get t.w wi in
    for b = 0 to hi - 1 do
      Array.unsafe_set v (base + b) ((word lsr b) land 1)
    done
  done;
  v

(** Unpack each flag to a full-word mask (0 or all-ones) — the packed form
    of {!Vec} LSB extension, building mux masks without an intermediate 0/1
    vector. *)
let extend t : int array =
  let v = Array.make t.n 0 in
  let nw = Array.length t.w in
  for wi = 0 to nw - 1 do
    let base = wi * bpw in
    let hi = min bpw (t.n - base) in
    let word = Array.unsafe_get t.w wi in
    for b = 0 to hi - 1 do
      Array.unsafe_set v (base + b) (-((word lsr b) land 1))
    done
  done;
  v

(* ------------------------------------------------------------------ *)
(* Bulk GF(2) operations (63 flags per word op)                        *)
(* ------------------------------------------------------------------ *)

let check_len op a b =
  if a.n <> b.n then
    invalid_arg
      (Printf.sprintf "Bits.%s: length mismatch: %d vs %d" op a.n b.n)

let xor a b =
  check_len "xor" a b;
  { a with w = Vec.xor a.w b.w }

let band a b =
  check_len "band" a b;
  { a with w = Vec.band a.w b.w }

let bor a b =
  check_len "bor" a b;
  { a with w = Vec.bor a.w b.w }

let bnot a = mask_tail { a with w = Vec.bnot a.w }

let xor_into dst src =
  check_len "xor_into" dst src;
  Vec.xor_into dst.w src.w

(** a ⊕ b ⊕ c in one pass. *)
let xor3 a b c =
  check_len "xor3" a b;
  check_len "xor3" a c;
  { a with w = Vec.xor3 a.w b.w c.w }

let popcount t = Array.fold_left (fun acc x -> acc + Ring.popcount x) 0 t.w

(* ------------------------------------------------------------------ *)
(* Randomness (per word: 63 flags per PRG call)                        *)
(* ------------------------------------------------------------------ *)

(** [random prg n]: n uniform flags from [words_for n] PRG draws — the
    63x-fewer-calls lever behind packed protocol randomness. *)
let random prg n =
  let t = { n; w = Array.init (words_for n) (fun _ -> Prg.word prg) } in
  mask_tail t

(* ------------------------------------------------------------------ *)
(* Structural operations (bit-granular; not on the word-op hot path)   *)
(* ------------------------------------------------------------------ *)

let blit_bits src dst ~at =
  for i = 0 to src.n - 1 do
    if (src.w.(i / bpw) lsr (i mod bpw)) land 1 = 1 then set dst (at + i) 1
  done

let append a b =
  let t = create (a.n + b.n) in
  blit_bits a t ~at:0;
  blit_bits b t ~at:a.n;
  t

let concat_many (ts : t array) =
  let total = Array.fold_left (fun acc t -> acc + t.n) 0 ts in
  let out = create total in
  let off = ref 0 in
  Array.iter
    (fun t ->
      blit_bits t out ~at:!off;
      off := !off + t.n)
    ts;
  out

let sub t pos len =
  if pos < 0 || len < 0 || pos + len > t.n then
    invalid_arg "Bits.sub: range out of bounds";
  let out = create len in
  for i = 0 to len - 1 do
    if (t.w.((pos + i) / bpw) lsr ((pos + i) mod bpw)) land 1 = 1 then
      set out i 1
  done;
  out

(** [gather t idx]: flag [i] of the result is flag [idx.(i)] of [t]. *)
let gather t (idx : int array) =
  if Debug.enabled () then Debug.validate_indices ~op:"Bits.gather" idx t.n;
  let out = create (Array.length idx) in
  Array.iteri
    (fun i j ->
      if (t.w.(j / bpw) lsr (j mod bpw)) land 1 = 1 then set out i 1)
    idx;
  out

(** [scatter t idx]: flag [i] of [t] lands at position [idx.(i)]; [idx]
    must be a permutation (same contract as {!Vec.scatter}). *)
let scatter t (idx : int array) =
  if Debug.enabled () then Debug.validate_perm ~op:"Bits.scatter" idx t.n;
  if Array.length idx <> t.n then invalid_arg "Bits.scatter: length";
  let out = create t.n in
  for i = 0 to t.n - 1 do
    if (t.w.(i / bpw) lsr (i mod bpw)) land 1 = 1 then set out idx.(i) 1
  done;
  out

let pp ppf t =
  Format.fprintf ppf "bits[%d]" t.n;
  if t.n <= 128 then begin
    Format.pp_print_char ppf ':';
    for i = 0 to t.n - 1 do
      Format.pp_print_char ppf (if get t i = 1 then '1' else '0')
    done
  end
