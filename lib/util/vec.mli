(** Dense vectors of ring words ([int array]) with the bulk operations the
    vectorized MPC layer is built from. Functions allocate fresh outputs
    unless suffixed [_into] or documented as in-place.

    Kernels are direct loops (no per-element closure) dispatched to the
    persistent domain pool ({!Parallel}) for large inputs; the fused
    kernels cover the compositions the MPC hot path executes so a secure
    multiplication performs O(1) allocations per share vector. *)

type t = int array

val length : t -> int
val make : int -> int -> t
val zeros : int -> t
val init : int -> (int -> int) -> t
val copy : t -> t
val of_list : int list -> t
val to_list : t -> int list
val map : (int -> int) -> t -> t
val map2 : (int -> int -> int) -> t -> t -> t
val map3 : (int -> int -> int -> int) -> t -> t -> t -> t
val iteri : (int -> int -> unit) -> t -> unit

(** {2 Ring (mod 2^63) elementwise operations} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t
val add_scalar : t -> int -> t
val mul_scalar : t -> int -> t

(** {2 Bitwise elementwise operations} *)

val xor : t -> t -> t
val band : t -> t -> t
val bor : t -> t -> t
val bnot : t -> t
val xor_scalar : t -> int -> t
val and_scalar : t -> int -> t
val shift_left : t -> int -> t

val shift_right : t -> int -> t
(** Logical right shift within the 63-bit word. *)

val bit_extract : t -> int -> t
(** [bit_extract a k] isolates bit [k] of each element into the LSB — the
    fused radixsort bit extraction [((a >> k) land 1)], logical shift. *)

(** {2 In-place / accumulating kernels (no allocation)} *)

val add_into : t -> t -> unit
(** dst += a. *)

val sub_into : t -> t -> unit
(** dst -= a. *)

val xor_into : t -> t -> unit
(** dst ^= a. *)

val mul_add_into : t -> t -> t -> unit
(** [mul_add_into dst a b]: dst += a·b in one pass. *)

val xor_band_into : t -> t -> t -> unit
(** [xor_band_into dst a b]: dst ^= a ∧ b — GF(2) twin of
    {!mul_add_into}. *)

val sub_acc_into : t -> t -> t -> unit
(** [sub_acc_into dst a b]: dst += a - b (folds one share vector of an
    opened Beaver difference into the accumulator). *)

val xor_acc_into : t -> t -> t -> unit
(** [xor_acc_into dst a b]: dst ^= a ⊕ b. *)

(** {2 Fused protocol kernels} *)

val xor3 : t -> t -> t -> t
(** a ⊕ b ⊕ c in one pass (local recombination of [bor]). *)

val add_sub : t -> t -> t -> t
(** a + b - c in one pass (genBitPerm's Z + s1 - s0). *)

val beaver_arith :
  tc:t -> d:t -> tb:t -> e:t -> ta:t -> with_de:bool -> t
(** Fused Beaver recombination tc + d·tb + e·ta (+ d·e when [with_de]):
    one pass, one allocation. *)

val beaver_bool :
  tc:t -> d:t -> tb:t -> e:t -> ta:t -> with_de:bool -> t
(** GF(2) Beaver recombination tc ⊕ (d∧tb) ⊕ (e∧ta) (⊕ d∧e). *)

val rep3_arith_into : t -> xi:t -> yi:t -> xj:t -> yj:t -> unit
(** dst += xi·yi + xi·yj + xj·yi — the fused local work of one party's
    replicated-3PC multiplication; zero allocations. *)

val rep3_bool_into : t -> xi:t -> yi:t -> xj:t -> yj:t -> unit
(** dst ^= (xi∧yi) ⊕ (xi∧yj) ⊕ (xj∧yi). *)

(** {2 Reductions} *)

val sum : t -> int
val xor_all : t -> int

val prefix_sum_inplace : t -> unit
(** In-place running (inclusive) prefix sum in the ring — linear local
    work; additive secret sharing commutes with it, which is what makes
    genBitPerm's destination computation local. Parallelized as a blocked
    two-pass scan; the wrapped-ring result is bit-identical to the
    sequential scan. *)

val prefix_sum : t -> t

val concat2 : t -> t -> t
(** Pack two vectors into one so two independent secure operations share a
    single communication round. *)

val split2 : t -> int -> t * t
val concat : t list -> t

val concat_many : t array -> t
(** n-way {!concat2}: offset-table based, one output allocation, per-lane
    blits in parallel. The backbone of cross-lane round fusion. *)

val split_many : t -> int array -> t array
(** n-way {!split2}: cut into pieces of the given lengths (must sum to the
    input length). *)

val gather : t -> int array -> t
(** [gather a idx] builds [|a.(idx.(0)); a.(idx.(1)); ...|]. Validates
    index bounds when {!Debug.set_checks} is enabled. *)

val scatter : t -> int array -> t
(** [scatter a idx] places [a.(i)] at position [idx.(i)]; [idx] must be a
    permutation (validated when {!Debug.set_checks} is enabled — a
    duplicate destination otherwise drops an element silently). *)

val sub_range : t -> int -> int -> t
val rev : t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
