(** Dense vectors of ring words ([int array]) with the bulk operations the
    vectorized MPC layer is built from. Functions allocate fresh outputs
    unless suffixed [_into] or documented as in-place. *)

type t = int array

val length : t -> int
val make : int -> int -> t
val zeros : int -> t
val init : int -> (int -> int) -> t
val copy : t -> t
val of_list : int list -> t
val to_list : t -> int list
val map : (int -> int) -> t -> t
val map2 : (int -> int -> int) -> t -> t -> t
val map3 : (int -> int -> int -> int) -> t -> t -> t -> t
val iteri : (int -> int -> unit) -> t -> unit

(** {2 Ring (mod 2^63) elementwise operations} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t
val add_scalar : t -> int -> t
val mul_scalar : t -> int -> t

(** {2 Bitwise elementwise operations} *)

val xor : t -> t -> t
val band : t -> t -> t
val bor : t -> t -> t
val bnot : t -> t
val xor_scalar : t -> int -> t
val and_scalar : t -> int -> t
val shift_left : t -> int -> t

val shift_right : t -> int -> t
(** Logical right shift within the 63-bit word. *)

val add_into : t -> t -> unit
val xor_into : t -> t -> unit
val sum : t -> int
val xor_all : t -> int

val prefix_sum_inplace : t -> unit
(** In-place running (inclusive) prefix sum in the ring — linear local
    work; additive secret sharing commutes with it, which is what makes
    genBitPerm's destination computation local. *)

val prefix_sum : t -> t

val concat2 : t -> t -> t
(** Pack two vectors into one so two independent secure operations share a
    single communication round. *)

val split2 : t -> int -> t * t
val concat : t list -> t

val gather : t -> int array -> t
(** [gather a idx] builds [|a.(idx.(0)); a.(idx.(1)); ...|]. *)

val scatter : t -> int array -> t
(** [scatter a idx] places [a.(i)] at position [idx.(i)];
    [idx] must be a permutation. *)

val sub_range : t -> int -> int -> t
val rev : t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
