(** Seeded pseudo-random generator (splitmix64 core).

    ORQ derives all protocol randomness — zero sharings, masks, local
    permutations, dealer correlations — from seeded PRGs so that parties
    holding a common seed derive identical streams (the "common PRG seed"
    construction of the paper's Appendix A.2). Statistically strong, not
    cryptographic: see DESIGN.md. *)

type t

val create : int -> t
(** [create seed] builds a generator with a deterministic stream. *)

val copy : t -> t
(** An independent handle continuing the same stream. *)

val reseed : t -> int -> unit
(** [reseed t seed] restarts the stream from [seed] in place, exactly as
    if [t] had just been built by [create seed]. *)

val sync : dst:t -> src:t -> unit
(** [sync ~dst ~src] overwrites [dst]'s state with [src]'s so [dst]
    continues [src]'s stream in place. *)

val split : t -> int -> t
(** [split t i] derives the [i]-th child generator (independent stream),
    without advancing [t]. *)

val next64 : t -> int64
(** Next raw 64-bit output. *)

val word : t -> int
(** A uniformly random ring word (63 bits). *)

val bool : t -> bool

val int_below : t -> int -> int
(** Uniform integer in [0, bound) (rejection-sampled; [bound] > 0). *)

val fill_words : t -> int array -> unit
(** Fill an array with uniform ring words. *)

val words : t -> int -> int array
(** [words t n] is a fresh array of [n] uniform ring words. *)
