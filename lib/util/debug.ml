(** Optional hot-path sanity checks.

    Scatter and permutation application silently corrupt their output (or
    raise a bare [Invalid_argument] deep inside a protocol) when handed an
    index vector that is out of range or not a permutation. These validators
    produce actionable errors instead. They cost O(n) time and a scratch
    byte per element, so they are off by default and enabled for tests and
    debugging via {!set_checks} or the [ORQ_DEBUG_CHECKS] environment
    variable. *)

let enabled_flag =
  ref
    (match Sys.getenv_opt "ORQ_DEBUG_CHECKS" with
    | None | Some "" | Some "0" | Some "false" -> false
    | Some _ -> true)

let set_checks b = enabled_flag := b
let enabled () = !enabled_flag

(** [validate_indices ~op idx n] checks every index lies in [0, n);
    duplicates are allowed (gather semantics). *)
let validate_indices ~op (idx : int array) n =
  Array.iteri
    (fun i j ->
      if j < 0 || j >= n then
        invalid_arg
          (Printf.sprintf "%s: index %d at position %d out of range [0,%d)" op
             j i n))
    idx

(** [validate_perm ~op p n] checks [p] is a permutation of [0, n): right
    length, in range, and no destination written twice. *)
let validate_perm ~op (p : int array) n =
  if Array.length p <> n then
    invalid_arg
      (Printf.sprintf "%s: permutation length %d <> vector length %d" op
         (Array.length p) n);
  let seen = Bytes.make (max n 1) '\000' in
  Array.iteri
    (fun i j ->
      if j < 0 || j >= n then
        invalid_arg
          (Printf.sprintf "%s: index %d at position %d out of range [0,%d)" op
             j i n);
      if Bytes.get seen j <> '\000' then
        invalid_arg
          (Printf.sprintf
             "%s: duplicate destination %d (position %d) — not a permutation"
             op j i);
      Bytes.set seen j '\001')
    p
