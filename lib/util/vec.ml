(** Dense vectors of ring words ([int array]) with the bulk operations the
    vectorized MPC layer is built from. All functions allocate fresh outputs
    unless suffixed [_into] or documented as in-place. *)

type t = int array

let length = Array.length
let make n x : t = Array.make n x
let zeros n : t = Array.make n 0
let init = Array.init
let copy = Array.copy
let of_list = Array.of_list
let to_list = Array.to_list

let map f (a : t) : t = Array.map f a

let map2 f (a : t) (b : t) : t =
  let n = Array.length a in
  assert (Array.length b = n);
  Array.init n (fun i -> f a.(i) b.(i))

let map3 f (a : t) (b : t) (c : t) : t =
  let n = Array.length a in
  assert (Array.length b = n && Array.length c = n);
  Array.init n (fun i -> f a.(i) b.(i) c.(i))

let iteri = Array.iteri

(* Ring (mod 2^63) elementwise operations. *)
let add a b : t = map2 ( + ) a b
let sub a b : t = map2 ( - ) a b
let mul a b : t = map2 ( * ) a b
let neg a : t = map (fun x -> -x) a
let add_scalar a (s : int) : t = map (fun x -> x + s) a
let mul_scalar a (s : int) : t = map (fun x -> x * s) a

(* Bitwise elementwise operations. *)
let xor a b : t = map2 ( lxor ) a b
let band a b : t = map2 ( land ) a b
let bor a b : t = map2 ( lor ) a b
let bnot a : t = map lnot a
let xor_scalar a s : t = map (fun x -> x lxor s) a
let and_scalar a s : t = map (fun x -> x land s) a
let shift_left a k : t = map (fun x -> x lsl k) a
(* logical right shift within the 63-bit word *)
let shift_right a k : t = map (fun x -> (x land Ring.ones) lsr k) a

let add_into (dst : t) (a : t) =
  for i = 0 to Array.length dst - 1 do
    dst.(i) <- dst.(i) + a.(i)
  done

let xor_into (dst : t) (a : t) =
  for i = 0 to Array.length dst - 1 do
    dst.(i) <- dst.(i) lxor a.(i)
  done

let sum (a : t) = Array.fold_left ( + ) 0 a
let xor_all (a : t) = Array.fold_left ( lxor ) 0 a

(** In-place running (inclusive) prefix sum in the ring; linear local work.
    Additive secret sharing commutes with prefix sums, which is what makes
    the paper's [genBitPerm] destinations computable locally. *)
let prefix_sum_inplace (a : t) =
  for i = 1 to Array.length a - 1 do
    a.(i) <- a.(i) + a.(i - 1)
  done

let prefix_sum (a : t) : t =
  let b = copy a in
  prefix_sum_inplace b;
  b

(** [concat2 a b] and [split2 v n] serve the batched-round pattern: two
    independent secure operations are packed into one vector so they cost a
    single communication round. *)
let concat2 (a : t) (b : t) : t = Array.append a b

let split2 (v : t) n : t * t =
  (Array.sub v 0 n, Array.sub v n (Array.length v - n))

let concat = Array.concat

(** [gather a idx] builds [|a.(idx.(0)); a.(idx.(1)); ...|]. *)
let gather (a : t) (idx : int array) : t = Array.map (fun i -> a.(i)) idx

(** [scatter a idx] places [a.(i)] at position [idx.(i)] of the result;
    [idx] must be a permutation. *)
let scatter (a : t) (idx : int array) : t =
  let n = Array.length a in
  let out = Array.make n 0 in
  for i = 0 to n - 1 do
    out.(idx.(i)) <- a.(i)
  done;
  out

let sub_range (a : t) pos len : t = Array.sub a pos len

let rev (a : t) : t =
  let n = Array.length a in
  Array.init n (fun i -> a.(n - 1 - i))

let equal (a : t) (b : t) =
  Array.length a = Array.length b
  &&
  let rec go i = i >= Array.length a || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let pp ppf (a : t) =
  Fmt.pf ppf "[|%a|]" Fmt.(array ~sep:(any "; ") int) a
