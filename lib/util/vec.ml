(** Dense vectors of ring words ([int array]) with the bulk operations the
    vectorized MPC layer is built from. All functions allocate fresh outputs
    unless suffixed [_into] or documented as in-place.

    Elementwise kernels are written as direct loops over preallocated
    outputs — no per-element closure call — and dispatch to the persistent
    domain pool ({!Parallel}) when the input clears the chunk threshold.
    The fused kernels ([beaver_arith], [rep3_arith_into], [mul_add_into],
    …) cover exactly the compositions the MPC hot path executes, so a
    secure multiplication performs O(1) allocations per share vector
    instead of one per intermediate. *)

type t = int array

let length = Array.length
let make n x : t = Array.make n x
let zeros n : t = Array.make n 0
let init = Array.init
let copy = Array.copy
let of_list = Array.of_list
let to_list = Array.to_list

let check2 (a : t) (b : t) =
  if Array.length b <> Array.length a then
    invalid_arg "Vec: length mismatch"

let check3 (a : t) (b : t) (c : t) =
  let n = Array.length a in
  if Array.length b <> n || Array.length c <> n then
    invalid_arg "Vec: length mismatch"

(* Generic maps (parallel over spans). Hot paths prefer the specialized
   kernels below, which avoid the per-element closure call. *)
let map f (a : t) : t =
  let n = Array.length a in
  let out = Array.make n 0 in
  Parallel.run_spans n (fun pos len ->
      for i = pos to pos + len - 1 do
        Array.unsafe_set out i (f (Array.unsafe_get a i))
      done);
  out

let map2 f (a : t) (b : t) : t =
  check2 a b;
  let n = Array.length a in
  let out = Array.make n 0 in
  Parallel.run_spans n (fun pos len ->
      for i = pos to pos + len - 1 do
        Array.unsafe_set out i (f (Array.unsafe_get a i) (Array.unsafe_get b i))
      done);
  out

let map3 f (a : t) (b : t) (c : t) : t =
  check3 a b c;
  let n = Array.length a in
  let out = Array.make n 0 in
  Parallel.run_spans n (fun pos len ->
      for i = pos to pos + len - 1 do
        Array.unsafe_set out i
          (f (Array.unsafe_get a i) (Array.unsafe_get b i)
             (Array.unsafe_get c i))
      done);
  out

let iteri = Array.iteri

(* Ring (mod 2^63) elementwise operations — specialized loops. *)

let add (a : t) (b : t) : t =
  check2 a b;
  let n = Array.length a in
  let out = Array.make n 0 in
  Parallel.run_spans n (fun pos len ->
      for i = pos to pos + len - 1 do
        Array.unsafe_set out i (Array.unsafe_get a i + Array.unsafe_get b i)
      done);
  out

let sub (a : t) (b : t) : t =
  check2 a b;
  let n = Array.length a in
  let out = Array.make n 0 in
  Parallel.run_spans n (fun pos len ->
      for i = pos to pos + len - 1 do
        Array.unsafe_set out i (Array.unsafe_get a i - Array.unsafe_get b i)
      done);
  out

let mul (a : t) (b : t) : t =
  check2 a b;
  let n = Array.length a in
  let out = Array.make n 0 in
  Parallel.run_spans n (fun pos len ->
      for i = pos to pos + len - 1 do
        Array.unsafe_set out i (Array.unsafe_get a i * Array.unsafe_get b i)
      done);
  out

let neg (a : t) : t =
  let n = Array.length a in
  let out = Array.make n 0 in
  Parallel.run_spans n (fun pos len ->
      for i = pos to pos + len - 1 do
        Array.unsafe_set out i (-Array.unsafe_get a i)
      done);
  out

let add_scalar (a : t) (s : int) : t =
  let n = Array.length a in
  let out = Array.make n 0 in
  Parallel.run_spans n (fun pos len ->
      for i = pos to pos + len - 1 do
        Array.unsafe_set out i (Array.unsafe_get a i + s)
      done);
  out

let mul_scalar (a : t) (s : int) : t =
  let n = Array.length a in
  let out = Array.make n 0 in
  Parallel.run_spans n (fun pos len ->
      for i = pos to pos + len - 1 do
        Array.unsafe_set out i (Array.unsafe_get a i * s)
      done);
  out

(* Bitwise elementwise operations. *)

let xor (a : t) (b : t) : t =
  check2 a b;
  let n = Array.length a in
  let out = Array.make n 0 in
  Parallel.run_spans n (fun pos len ->
      for i = pos to pos + len - 1 do
        Array.unsafe_set out i
          (Array.unsafe_get a i lxor Array.unsafe_get b i)
      done);
  out

let band (a : t) (b : t) : t =
  check2 a b;
  let n = Array.length a in
  let out = Array.make n 0 in
  Parallel.run_spans n (fun pos len ->
      for i = pos to pos + len - 1 do
        Array.unsafe_set out i
          (Array.unsafe_get a i land Array.unsafe_get b i)
      done);
  out

let bor (a : t) (b : t) : t =
  check2 a b;
  let n = Array.length a in
  let out = Array.make n 0 in
  Parallel.run_spans n (fun pos len ->
      for i = pos to pos + len - 1 do
        Array.unsafe_set out i
          (Array.unsafe_get a i lor Array.unsafe_get b i)
      done);
  out

let bnot (a : t) : t =
  let n = Array.length a in
  let out = Array.make n 0 in
  Parallel.run_spans n (fun pos len ->
      for i = pos to pos + len - 1 do
        Array.unsafe_set out i (lnot (Array.unsafe_get a i))
      done);
  out

let xor_scalar (a : t) (s : int) : t =
  let n = Array.length a in
  let out = Array.make n 0 in
  Parallel.run_spans n (fun pos len ->
      for i = pos to pos + len - 1 do
        Array.unsafe_set out i (Array.unsafe_get a i lxor s)
      done);
  out

let and_scalar (a : t) (s : int) : t =
  let n = Array.length a in
  let out = Array.make n 0 in
  Parallel.run_spans n (fun pos len ->
      for i = pos to pos + len - 1 do
        Array.unsafe_set out i (Array.unsafe_get a i land s)
      done);
  out

let shift_left (a : t) k : t =
  let n = Array.length a in
  let out = Array.make n 0 in
  Parallel.run_spans n (fun pos len ->
      for i = pos to pos + len - 1 do
        Array.unsafe_set out i (Array.unsafe_get a i lsl k)
      done);
  out

(* logical right shift within the 63-bit word *)
let shift_right (a : t) k : t =
  let n = Array.length a in
  let out = Array.make n 0 in
  Parallel.run_spans n (fun pos len ->
      for i = pos to pos + len - 1 do
        Array.unsafe_set out i ((Array.unsafe_get a i land Ring.ones) lsr k)
      done);
  out

(** [bit_extract a k] isolates bit [k] of each element into the LSB —
    the fused radixsort bit-extraction ((a >> k) land 1, logical shift). *)
let bit_extract (a : t) k : t =
  let n = Array.length a in
  let out = Array.make n 0 in
  Parallel.run_spans n (fun pos len ->
      for i = pos to pos + len - 1 do
        Array.unsafe_set out i
          (((Array.unsafe_get a i land Ring.ones) lsr k) land 1)
      done);
  out

(* ------------------------------------------------------------------ *)
(* In-place / accumulating kernels                                     *)
(* ------------------------------------------------------------------ *)

let add_into (dst : t) (a : t) =
  check2 dst a;
  Parallel.run_spans (Array.length dst) (fun pos len ->
      for i = pos to pos + len - 1 do
        Array.unsafe_set dst i (Array.unsafe_get dst i + Array.unsafe_get a i)
      done)

let sub_into (dst : t) (a : t) =
  check2 dst a;
  Parallel.run_spans (Array.length dst) (fun pos len ->
      for i = pos to pos + len - 1 do
        Array.unsafe_set dst i (Array.unsafe_get dst i - Array.unsafe_get a i)
      done)

let xor_into (dst : t) (a : t) =
  check2 dst a;
  Parallel.run_spans (Array.length dst) (fun pos len ->
      for i = pos to pos + len - 1 do
        Array.unsafe_set dst i
          (Array.unsafe_get dst i lxor Array.unsafe_get a i)
      done)

(** [mul_add_into dst a b]: dst += a * b, one pass, no allocation. *)
let mul_add_into (dst : t) (a : t) (b : t) =
  check3 dst a b;
  Parallel.run_spans (Array.length dst) (fun pos len ->
      for i = pos to pos + len - 1 do
        Array.unsafe_set dst i
          (Array.unsafe_get dst i
          + (Array.unsafe_get a i * Array.unsafe_get b i))
      done)

(** [xor_band_into dst a b]: dst ^= a ∧ b — the GF(2) twin of
    {!mul_add_into}. *)
let xor_band_into (dst : t) (a : t) (b : t) =
  check3 dst a b;
  Parallel.run_spans (Array.length dst) (fun pos len ->
      for i = pos to pos + len - 1 do
        Array.unsafe_set dst i
          (Array.unsafe_get dst i
          lxor (Array.unsafe_get a i land Array.unsafe_get b i))
      done)

(** [sub_acc_into dst a b]: dst += a - b. Folds one share vector of an
    opened difference (Beaver's d = x - a) into the accumulator in a
    single pass. *)
let sub_acc_into (dst : t) (a : t) (b : t) =
  check3 dst a b;
  Parallel.run_spans (Array.length dst) (fun pos len ->
      for i = pos to pos + len - 1 do
        Array.unsafe_set dst i
          (Array.unsafe_get dst i + Array.unsafe_get a i
          - Array.unsafe_get b i)
      done)

(** [xor_acc_into dst a b]: dst ^= a ^ b. *)
let xor_acc_into (dst : t) (a : t) (b : t) =
  check3 dst a b;
  Parallel.run_spans (Array.length dst) (fun pos len ->
      for i = pos to pos + len - 1 do
        Array.unsafe_set dst i
          (Array.unsafe_get dst i lxor Array.unsafe_get a i
          lxor Array.unsafe_get b i)
      done)

(* ------------------------------------------------------------------ *)
(* Fused protocol kernels                                              *)
(* ------------------------------------------------------------------ *)

(** [xor3 a b c] = a ⊕ b ⊕ c in one pass (the local recombination of
    [bor]: x ⊕ y ⊕ (x ∧ y)). *)
let xor3 (a : t) (b : t) (c : t) : t =
  check3 a b c;
  let n = Array.length a in
  let out = Array.make n 0 in
  Parallel.run_spans n (fun pos len ->
      for i = pos to pos + len - 1 do
        Array.unsafe_set out i
          (Array.unsafe_get a i lxor Array.unsafe_get b i
          lxor Array.unsafe_get c i)
      done);
  out

(** [add_sub a b c] = a + b - c in one pass (genBitPerm's Z + s1 - s0). *)
let add_sub (a : t) (b : t) (c : t) : t =
  check3 a b c;
  let n = Array.length a in
  let out = Array.make n 0 in
  Parallel.run_spans n (fun pos len ->
      for i = pos to pos + len - 1 do
        Array.unsafe_set out i
          (Array.unsafe_get a i + Array.unsafe_get b i - Array.unsafe_get c i)
      done);
  out

(** Fused Beaver recombination, arithmetic:
    out = tc + d·tb + e·ta (+ d·e when [with_de]) — one pass, one
    allocation, versus four to six intermediates in the unfused chain. *)
let beaver_arith ~(tc : t) ~(d : t) ~(tb : t) ~(e : t) ~(ta : t) ~with_de : t =
  check3 tc d tb;
  check3 tc e ta;
  let n = Array.length tc in
  let out = Array.make n 0 in
  if with_de then
    Parallel.run_spans n (fun pos len ->
        for i = pos to pos + len - 1 do
          let di = Array.unsafe_get d i and ei = Array.unsafe_get e i in
          Array.unsafe_set out i
            (Array.unsafe_get tc i
            + (di * Array.unsafe_get tb i)
            + (ei * Array.unsafe_get ta i)
            + (di * ei))
        done)
  else
    Parallel.run_spans n (fun pos len ->
        for i = pos to pos + len - 1 do
          Array.unsafe_set out i
            (Array.unsafe_get tc i
            + (Array.unsafe_get d i * Array.unsafe_get tb i)
            + (Array.unsafe_get e i * Array.unsafe_get ta i))
        done);
  out

(** Fused Beaver recombination over GF(2):
    out = tc ⊕ (d ∧ tb) ⊕ (e ∧ ta) (⊕ d ∧ e when [with_de]). *)
let beaver_bool ~(tc : t) ~(d : t) ~(tb : t) ~(e : t) ~(ta : t) ~with_de : t =
  check3 tc d tb;
  check3 tc e ta;
  let n = Array.length tc in
  let out = Array.make n 0 in
  if with_de then
    Parallel.run_spans n (fun pos len ->
        for i = pos to pos + len - 1 do
          let di = Array.unsafe_get d i and ei = Array.unsafe_get e i in
          Array.unsafe_set out i
            (Array.unsafe_get tc i
            lxor (di land Array.unsafe_get tb i)
            lxor (ei land Array.unsafe_get ta i)
            lxor (di land ei))
        done)
  else
    Parallel.run_spans n (fun pos len ->
        for i = pos to pos + len - 1 do
          Array.unsafe_set out i
            (Array.unsafe_get tc i
            lxor (Array.unsafe_get d i land Array.unsafe_get tb i)
            lxor (Array.unsafe_get e i land Array.unsafe_get ta i))
        done);
  out

(** Fused replicated-3PC cross-term accumulation, arithmetic:
    dst += xi·yi + xi·yj + xj·yi — the whole local work of Araki et al.
    multiplication for one party, one pass, zero allocations. *)
let rep3_arith_into (dst : t) ~(xi : t) ~(yi : t) ~(xj : t) ~(yj : t) =
  check3 dst xi yi;
  check3 dst xj yj;
  Parallel.run_spans (Array.length dst) (fun pos len ->
      for i = pos to pos + len - 1 do
        let x = Array.unsafe_get xi i
        and x' = Array.unsafe_get xj i
        and y = Array.unsafe_get yi i
        and y' = Array.unsafe_get yj i in
        Array.unsafe_set dst i
          (Array.unsafe_get dst i + (x * (y + y')) + (x' * y))
      done)

(** GF(2) twin: dst ^= (xi ∧ yi) ⊕ (xi ∧ yj) ⊕ (xj ∧ yi). *)
let rep3_bool_into (dst : t) ~(xi : t) ~(yi : t) ~(xj : t) ~(yj : t) =
  check3 dst xi yi;
  check3 dst xj yj;
  Parallel.run_spans (Array.length dst) (fun pos len ->
      for i = pos to pos + len - 1 do
        let x = Array.unsafe_get xi i
        and x' = Array.unsafe_get xj i
        and y = Array.unsafe_get yi i
        and y' = Array.unsafe_get yj i in
        Array.unsafe_set dst i
          (Array.unsafe_get dst i lxor (x land (y lxor y')) lxor (x' land y))
      done)

(* ------------------------------------------------------------------ *)
(* Reductions                                                          *)
(* ------------------------------------------------------------------ *)

let sum (a : t) =
  let n = Array.length a in
  let d = Parallel.get_num_domains () in
  let mc = Parallel.get_min_chunk () in
  if d <= 1 || n < d * mc then Array.fold_left ( + ) 0 a
  else begin
    let spans = Array.of_list (Parallel.chunks n d) in
    let partial = Array.make (Array.length spans) 0 in
    Parallel.run_tasks (Array.length spans) (fun t ->
        let pos, len = spans.(t) in
        let acc = ref 0 in
        for i = pos to pos + len - 1 do
          acc := !acc + Array.unsafe_get a i
        done;
        partial.(t) <- !acc);
    Array.fold_left ( + ) 0 partial
  end

let xor_all (a : t) =
  let n = Array.length a in
  let d = Parallel.get_num_domains () in
  let mc = Parallel.get_min_chunk () in
  if d <= 1 || n < d * mc then Array.fold_left ( lxor ) 0 a
  else begin
    let spans = Array.of_list (Parallel.chunks n d) in
    let partial = Array.make (Array.length spans) 0 in
    Parallel.run_tasks (Array.length spans) (fun t ->
        let pos, len = spans.(t) in
        let acc = ref 0 in
        for i = pos to pos + len - 1 do
          acc := !acc lxor Array.unsafe_get a i
        done;
        partial.(t) <- !acc);
    Array.fold_left ( lxor ) 0 partial
  end

(** In-place running (inclusive) prefix sum in the ring; linear local work.
    Additive secret sharing commutes with prefix sums, which is what makes
    the paper's [genBitPerm] destinations computable locally. Parallel via
    a blocked two-pass scan (local scans, sequential span-total scan, then
    offset add) — ring addition wraps associatively so the blocked result
    is bit-identical to the sequential one. *)
let prefix_sum_inplace (a : t) =
  let n = Array.length a in
  let d = Parallel.get_num_domains () in
  let mc = Parallel.get_min_chunk () in
  if d <= 1 || n < d * mc then
    for i = 1 to n - 1 do
      a.(i) <- a.(i) + a.(i - 1)
    done
  else begin
    let spans = Array.of_list (Parallel.chunks n d) in
    let k = Array.length spans in
    Parallel.run_tasks k (fun t ->
        let pos, len = spans.(t) in
        for i = pos + 1 to pos + len - 1 do
          Array.unsafe_set a i (Array.unsafe_get a i + Array.unsafe_get a (i - 1))
        done);
    let offset = Array.make k 0 in
    for t = 1 to k - 1 do
      let pos, len = spans.(t - 1) in
      offset.(t) <- offset.(t - 1) + a.(pos + len - 1)
    done;
    Parallel.run_tasks k (fun t ->
        let off = offset.(t) in
        if off <> 0 then begin
          let pos, len = spans.(t) in
          for i = pos to pos + len - 1 do
            Array.unsafe_set a i (Array.unsafe_get a i + off)
          done
        end)
  end

let prefix_sum (a : t) : t =
  let b = copy a in
  prefix_sum_inplace b;
  b

(** [concat2 a b] and [split2 v n] serve the batched-round pattern: two
    independent secure operations are packed into one vector so they cost a
    single communication round. *)
let concat2 (a : t) (b : t) : t = Array.append a b

let split2 (v : t) n : t * t =
  (Array.sub v 0 n, Array.sub v n (Array.length v - n))

let concat = Array.concat

(** n-way generalization of {!concat2}: one offset-table pass, one output
    allocation, per-lane blits dispatched to the domain pool (each lane
    writes a disjoint output range). *)
let concat_many (vs : t array) : t =
  let k = Array.length vs in
  if k = 0 then [||]
  else if k = 1 then Array.copy vs.(0)
  else begin
    let offs = Array.make k 0 in
    let total = ref 0 in
    for i = 0 to k - 1 do
      offs.(i) <- !total;
      total := !total + Array.length vs.(i)
    done;
    let out = Array.make !total 0 in
    Parallel.run_tasks k (fun i ->
        Array.blit vs.(i) 0 out offs.(i) (Array.length vs.(i)));
    out
  end

(** n-way generalization of {!split2}: cut [v] into pieces of the given
    lengths (which must sum to the input length). *)
let split_many (v : t) (ns : int array) : t array =
  let total = Array.fold_left ( + ) 0 ns in
  if total <> Array.length v then
    invalid_arg
      (Printf.sprintf "Vec.split_many: lengths sum to %d, vector has %d"
         total (Array.length v));
  let off = ref 0 in
  Array.map
    (fun n ->
      let p = Array.sub v !off n in
      off := !off + n;
      p)
    ns

(** [gather a idx] builds [|a.(idx.(0)); a.(idx.(1)); ...|]; reads may
    repeat, so each worker only needs read access plus its disjoint output
    span. *)
let gather (a : t) (idx : int array) : t =
  if Debug.enabled () then
    Debug.validate_indices ~op:"Vec.gather" idx (Array.length a);
  let n = Array.length idx in
  let out = Array.make n 0 in
  Parallel.run_spans n (fun pos len ->
      for i = pos to pos + len - 1 do
        Array.unsafe_set out i a.(Array.unsafe_get idx i)
      done);
  out

(** [scatter a idx] places [a.(i)] at position [idx.(i)] of the result;
    [idx] must be a permutation (validated when {!Debug.set_checks} is on —
    a duplicated destination otherwise drops an element silently). Workers
    get full write access to the output: a permutation writes every slot
    exactly once (Appendix A.2). *)
let scatter (a : t) (idx : int array) : t =
  let n = Array.length a in
  if Debug.enabled () then Debug.validate_perm ~op:"Vec.scatter" idx n;
  let out = Array.make n 0 in
  Parallel.run_spans n (fun pos len ->
      for i = pos to pos + len - 1 do
        out.(Array.unsafe_get idx i) <- Array.unsafe_get a i
      done);
  out

let sub_range (a : t) pos len : t = Array.sub a pos len

let rev (a : t) : t =
  let n = Array.length a in
  let out = Array.make n 0 in
  Parallel.run_spans n (fun pos len ->
      for i = pos to pos + len - 1 do
        Array.unsafe_set out i (Array.unsafe_get a (n - 1 - i))
      done);
  out

let equal (a : t) (b : t) =
  Array.length a = Array.length b
  &&
  let rec go i = i >= Array.length a || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let pp ppf (a : t) =
  Fmt.pf ppf "[|%a|]" Fmt.(array ~sep:(any "; ") int) a
