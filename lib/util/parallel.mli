(** Data-parallel execution of local vector work over OCaml 5 domains.

    Mirrors ORQ's per-party data parallelism (§4): workers operate on
    disjoint partitions of a vector. Defaults to 1 domain so tests are
    deterministic; benchmarks opt in via {!set_num_domains}. Only *local*
    (communication-free) loops go through this module. *)

val set_num_domains : int -> unit
val get_num_domains : unit -> int

val chunks : int -> int -> (int * int) list
(** [chunks n k] splits [0, n) into at most [k] contiguous (pos, len)
    spans covering it exactly. *)

val run_spans : int -> (int -> int -> unit) -> unit
(** [run_spans n f] calls [f pos len] for each chunk of [0, n), in
    parallel when more than one domain is configured; [f] must only write
    to disjoint output ranges determined by its span. *)

val map : (int -> int) -> int array -> int array
val map2 : (int -> int -> int) -> int array -> int array -> int array

val apply_perm : int array -> int array -> int array
(** Parallel application of a plaintext index permutation; each worker has
    full write access to the output because a permutation writes every
    slot exactly once (Appendix A.2). *)
