(** Data-parallel execution of local vector work over a persistent pool of
    OCaml 5 domains.

    Mirrors ORQ's per-party data parallelism (§4): workers operate on
    disjoint partitions of a vector. Workers are spawned once and parked
    between dispatches (persistent pool), so per-call overhead is a
    lock/signal pair rather than a [Domain.spawn]. Defaults to 1 domain so
    tests are deterministic; benchmarks and the CLI opt in via
    {!set_num_domains} / [ORQ_DOMAINS]. Only *local* (communication-free)
    loops go through this module — metering and PRG consumption stay on
    the calling domain. *)

val set_num_domains : int -> unit
(** Configure the global default number of parallel lanes (calling domain
    included). Pools are resized lazily at the next dispatch. *)

val get_num_domains : unit -> int

val set_lanes : int -> unit
(** Override the lane budget for the *calling domain only* ([n <= 0]
    restores the global default). Pools are per dispatching domain, so
    concurrent execution workers partition the global [ORQ_DOMAINS]
    budget among themselves with this — intra-query data parallelism and
    inter-query concurrency then compose without oversubscription. *)

val effective_lanes : unit -> int
(** The lane budget in force on the calling domain: its {!set_lanes}
    override if any, else the global default. *)

val set_min_chunk : int -> unit
(** Minimum elements per span for a parallel dispatch to be worthwhile;
    inputs smaller than twice this run sequentially. Default 1024. *)

val get_min_chunk : unit -> int

val init_from_env : unit -> unit
(** Honor [ORQ_DOMAINS] and [ORQ_MIN_CHUNK] if set (entry points call this
    before argument parsing; explicit flags override). *)

val chunks : int -> int -> (int * int) list
(** [chunks n k] splits [0, n) into at most [k] contiguous (pos, len)
    spans covering it exactly. *)

val run_spans : int -> (int -> int -> unit) -> unit
(** [run_spans n f] calls [f pos len] for each chunk of [0, n), on the
    pool when more than one domain is configured and the input clears the
    {!set_min_chunk} threshold; [f] must only write to disjoint output
    ranges determined by its span. Exceptions raised by any span are
    re-raised after all spans complete. *)

val run_tasks : int -> (int -> unit) -> unit
(** [run_tasks k f] runs indexed tasks [f 0 .. f (k-1)] on the pool — for
    blocked algorithms needing an explicit decomposition shared across
    phases (e.g. the two-pass prefix sum). *)

val shutdown_pool : unit -> unit
(** Join and discard the calling domain's worker domains (also registered
    via [Domain.at_exit]). The pool respawns automatically on the next
    parallel dispatch in that domain. *)

val map : (int -> int) -> int array -> int array
val map2 : (int -> int -> int) -> int array -> int array -> int array

val apply_perm : int array -> int array -> int array
(** Parallel application of a plaintext index permutation; each worker has
    full write access to the output because a permutation writes every
    slot exactly once (Appendix A.2). Validates the permutation when
    {!Debug.set_checks} is enabled. *)
