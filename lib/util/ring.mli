(** Ring arithmetic over Z_2^63, the ring of native OCaml integers.

    All ORQ secret sharing is defined over the ring Z_2^ell; the machine
    word is the native [int] (63 bits on 64-bit platforms), whose
    arithmetic wraps modulo 2^63 in two's complement. Narrower widths are
    handled by masking; communication metering is parameterized on the
    logical bit width separately. *)

val word_bits : int
(** Number of bits in the ring word (63 on 64-bit platforms). *)

val ones : int
(** All-ones word: the ring element 2^63 - 1, also the full bit mask. *)

val mask : int -> int
(** [mask ell] is a word with the low [ell] bits set;
    [ell] must be in [0, word_bits]. *)

val truncate : int -> int -> int
(** [truncate ell x] keeps only the low [ell] bits of [x]. *)

val sign_bit : int
(** The top bit of the word (sign position for signed comparison). *)

val to_signed : int -> int
(** Reinterpret a ring element as a signed integer (the identity for
    native ints; kept for documentation symmetry). *)

val bit : int -> int -> int
(** [bit x i] is bit [i] of [x], as 0 or 1. *)

val popcount : int -> int
(** Number of set bits. *)

val log2_ceil : int -> int
(** [log2_ceil n] is the smallest [k] with [2^k >= n]; [log2_ceil 0 = 0]. *)

val next_pow2 : int -> int
(** Smallest power of two [>= n] (and [>= 1]). *)

val is_pow2 : int -> bool
