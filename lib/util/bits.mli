(** Packed single-bit vectors: one flag per bit, {!Ring.word_bits} (= 63)
    flags per ring word.

    Canonical form: bits at positions [>= n] in the last word are zero —
    preserved by every operation here, so {!popcount} and word equality
    are exact. {!words} exposes the underlying word array so the MPC layer
    can run the fused {!Vec} protocol kernels directly over packed words;
    treat it as read/write shared state, not a copy. *)

type t = { n : int; w : int array }

val bpw : int
(** Flags per word (= {!Ring.word_bits} = 63 on 64-bit platforms). *)

val words_for : int -> int
(** Number of words backing [n] flags. *)

val length : t -> int
val words : t -> int array
val num_words : t -> int
val create : int -> t
val of_words : int -> int array -> t
(** Wrap a raw word array (takes ownership; tail re-masked to canonical
    form). The array must have exactly [words_for n] words. *)

val copy : t -> t
val equal : t -> t -> bool
val get : t -> int -> int
val set : t -> int -> int -> unit

val pack : int array -> t
(** Pack the LSB of each element of a word vector. *)

val pack_bit : int array -> int -> t
(** [pack_bit v k] packs bit [k] of each element — fused radix-digit
    extraction straight into packed form. *)

val unpack : t -> int array
(** Unpack to a 0/1 word vector. *)

val extend : t -> int array
(** Unpack each flag to a 0 / all-ones word — packed-to-mux-mask in one
    pass. *)

val xor : t -> t -> t
val band : t -> t -> t
val bor : t -> t -> t
val bnot : t -> t
val xor_into : t -> t -> unit
val xor3 : t -> t -> t -> t
val popcount : t -> int

val random : Prg.t -> int -> t
(** [random prg n]: n uniform flags from [words_for n] PRG draws (one call
    per 63 flags instead of one per flag). *)

val append : t -> t -> t
val concat_many : t array -> t
val sub : t -> int -> int -> t
val gather : t -> int array -> t
(** Result flag [i] = input flag [idx.(i)]; bounds validated under
    {!Debug.set_checks}. *)

val scatter : t -> int array -> t
(** Input flag [i] lands at [idx.(i)]; [idx] must be a permutation
    (validated under {!Debug.set_checks}). *)

val pp : Format.formatter -> t -> unit
