(** Rank-carrying instrumented mutexes — the runtime half of the
    concurrency discipline.

    Every engine mutex is created with a name and a rank from the
    audited lock registry ([lib/analysis/lockmap.ml], enforced by
    [orq_lint concur]); acquisition is structured ({!with_lock} /
    {!wait} only). Under [ORQ_DEBUG_CHECKS=1] each thread tracks its
    held-lock stack and fails fast ({!Discipline}) on any rank
    inversion, wait on a non-innermost lock, or acquisition from a GC
    finaliser — so running the test suite with checks on validates the
    declared total lock order against real acquisition orders. With
    checks off, the wrapper costs one flag test per operation. *)

exception Discipline of string

type t

val create : name:string -> rank:int -> unit -> t
(** Create a registered lock. The static lint requires [name] and
    [rank] to be literals matching an entry in the lock registry. *)

val name : t -> string
val rank : t -> int

val with_lock : t -> (unit -> 'a) -> 'a
(** Run [f] with the lock held; always released, even on exceptions.
    The only sanctioned way to hold a registered lock. *)

val wait : t -> Condition.t -> unit
(** [wait l c] blocks on [c], atomically releasing [l] (which must be
    the innermost lock held) and re-acquiring it before returning. The
    only sanctioned way to block on a condition variable. *)

val lock : t -> unit
(** Unstructured acquisition — for the checker's own tests only; the
    static lint rejects it outside [lib/util/locked.ml] fixtures. *)

val unlock : t -> unit

val finaliser_guard : ('a -> unit) -> 'a -> unit
(** Wrap a GC-finaliser body: under checks, any registered-lock
    acquisition inside [f] raises {!Discipline}. Finalisers can fire at
    any allocation point — including while the interrupted thread holds
    the very lock the finaliser would take — so they must hand work off
    lock-free (see the chunk store's graveyard). *)

val held_names : unit -> string list
(** The calling thread's held-lock names, innermost first (empty when
    checks are off). For tests. *)
