(** Optional hot-path sanity checks for index/permutation vectors.

    Off by default (they cost O(n)); enabled via {!set_checks} or the
    [ORQ_DEBUG_CHECKS] environment variable. When enabled, {!Vec.scatter},
    {!Vec.gather} and {!Parallel.apply_perm} validate their index arguments
    and raise an [Invalid_argument] naming the operation and the offending
    position instead of corrupting output silently. *)

val set_checks : bool -> unit
val enabled : unit -> bool

val validate_indices : op:string -> int array -> int -> unit
(** Check every index lies in [0, n); duplicates allowed (gather). *)

val validate_perm : op:string -> int array -> int -> unit
(** Check the array is a permutation of [0, n). *)
