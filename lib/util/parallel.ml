(** Data-parallel execution of local vector work over persistent pools of
    OCaml 5 domains.

    ORQ's engine is data-parallel within each computing party (§4): workers
    operate on disjoint partitions of a vector. We mirror that with a
    chunked-parallel layer backed by *persistent* domain pools — workers
    are spawned once and parked on a condition variable between dispatches,
    so the per-call overhead is a lock/signal pair rather than a
    [Domain.spawn]/[join] (hundreds of µs) per operation. The calling
    domain participates in draining the span queue, so [k] configured
    lanes means [k] lanes of work, not [k + 1].

    Pools are {e per calling domain} (domain-local storage): the query
    service runs several execution workers, each in its own domain, and
    each gets its own private pool sized by {!set_lanes}. That is how
    intra-query data parallelism and inter-query concurrency compose
    without oversubscription — the service partitions the global
    [ORQ_DOMAINS] budget across its execution workers, and no two workers
    ever contend on pool state. Pool worker domains are permanently marked
    busy, so nested dispatch from inside a span runs sequentially instead
    of spawning pools-of-pools.

    The number of lanes defaults to 1 so unit tests are deterministic and
    cheap; benchmarks and the CLI enable more via {!set_num_domains} (or
    the [ORQ_DOMAINS] environment variable through {!init_from_env}). The
    minimum per-span element count that justifies a dispatch is
    configurable with {!set_min_chunk}.

    Only *local* (communication-free) loops go through this module: all
    {!Orq_net.Comm} metering and PRG consumption stays on the calling
    domain, which is what keeps traffic tallies and protocol randomness
    byte-identical whatever the lane count (asserted by the
    metering-invariance tests). *)

let num_domains = ref 1

(* Minimum per-lane element count that justifies a pool dispatch. The
   default comes from the micro-kernel calibration (see BENCH_kernels.json
   and the PR 3 notes in DESIGN.md): memory-bound elementwise kernels need
   roughly 64k elements per lane before the lock/signal handoff and
   cross-core cache traffic pay for themselves; below that the sequential
   path wins. Override with ORQ_MIN_CHUNK. *)
let min_chunk = ref 65536

let set_min_chunk c = min_chunk := max 1 c
let get_min_chunk () = !min_chunk

(** [chunks n k] splits [0, n) into at most [k] contiguous (pos, len) spans. *)
let chunks n k =
  let k = max 1 (min k n) in
  let base = n / k and rem = n mod k in
  List.init k (fun i ->
      let pos = (i * base) + min i rem in
      let len = base + if i < rem then 1 else 0 in
      (pos, len))

(* ------------------------------------------------------------------ *)
(* Per-domain lane budgets                                             *)
(* ------------------------------------------------------------------ *)

(* A domain-local lane override: service execution workers partition the
   global [num_domains] budget among themselves with [set_lanes]; domains
   with no override (the main domain, tests, the CLI) use the global
   setting. *)
let lanes_key : int option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let set_lanes n =
  let r = Domain.DLS.get lanes_key in
  r := if n <= 0 then None else Some (max 1 n)

let effective_lanes () =
  match !(Domain.DLS.get lanes_key) with Some n -> n | None -> !num_domains

(* ------------------------------------------------------------------ *)
(* Persistent worker pool (one per dispatching domain)                 *)
(* ------------------------------------------------------------------ *)

type pool = {
  m : Locked.t;
  ready : Condition.t;  (** work arrived, or shutdown requested *)
  finished : Condition.t;  (** all spans of the current dispatch completed *)
  mutable job : int -> int -> unit;
  mutable queue : (int * int) list;  (** unclaimed spans *)
  mutable pending : int;  (** spans claimed or queued, not yet completed *)
  mutable failed : exn option;  (** first exception raised by any span *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let pool_key : pool option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

(* True while this domain has a dispatch in flight. A span function that
   itself calls back into this module (nested data parallelism) must run
   sequentially: re-dispatching would clobber the active job. Pool worker
   domains are marked permanently busy for the same reason. *)
let busy_key : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let record_failure p e =
  Locked.with_lock p.m (fun () ->
      if p.failed = None then p.failed <- Some e)

(* One span completed (under the pool lock). *)
let span_done p =
  p.pending <- p.pending - 1;
  if p.pending = 0 then Condition.broadcast p.finished

let rec worker p =
  let task =
    Locked.with_lock p.m (fun () ->
        while p.queue = [] && not p.stop do
          Locked.wait p.m p.ready
        done;
        match p.queue with
        | (pos, len) :: rest ->
            p.queue <- rest;
            Some (p.job, pos, len)
        | [] -> None (* stop requested and the queue is drained *))
  in
  match task with
  | Some (f, pos, len) ->
      (try f pos len with e -> record_failure p e);
      Locked.with_lock p.m (fun () -> span_done p);
      worker p
  | None -> ()

let shutdown_pool () =
  let slot = Domain.DLS.get pool_key in
  match !slot with
  | None -> ()
  | Some p ->
      Locked.with_lock p.m (fun () ->
          p.stop <- true;
          Condition.broadcast p.ready);
      (* join outside the lock: never block on a domain while holding it *)
      List.iter Domain.join p.workers;
      slot := None

let exit_hook_key : bool ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref false)

(* The pool holds [lanes - 1] parked workers; the calling domain is the
   remaining lane. Created lazily on first parallel dispatch in each
   domain, torn down and respawned when the configured size changes. Each
   pool worker marks itself permanently busy so spans that re-enter this
   module run their nested loops sequentially. *)
let ensure_pool () =
  let lanes = effective_lanes () in
  let slot = Domain.DLS.get pool_key in
  match !slot with
  | Some p when List.length p.workers = lanes - 1 -> p
  | _ ->
      shutdown_pool ();
      let p =
        {
          m = Locked.create ~name:"parallel" ~rank:60 ();
          ready = Condition.create ();
          finished = Condition.create ();
          job = (fun _ _ -> ());
          queue = [];
          pending = 0;
          failed = None;
          stop = false;
          workers = [];
        }
      in
      p.workers <-
        List.init (lanes - 1) (fun _ ->
            Domain.spawn (fun () ->
                Domain.DLS.get busy_key := true;
                worker p));
      slot := Some p;
      let hooked = Domain.DLS.get exit_hook_key in
      if not !hooked then begin
        hooked := true;
        (* per-domain: tears the pool down when this domain terminates
           (at program exit for the main domain) *)
        Domain.at_exit shutdown_pool
      end;
      p

let set_num_domains n =
  let n = max 1 n in
  if n <> !num_domains then begin
    num_domains := n;
    (* resize lazily at the next dispatch; tear down eagerly when going
       sequential so no idle domains outlive their use *)
    if n = 1 then shutdown_pool ()
  end

let get_num_domains () = !num_domains

let init_from_env () =
  (match Sys.getenv_opt "ORQ_DOMAINS" with
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n -> set_num_domains n
      | None -> ())
  | None -> ());
  match Sys.getenv_opt "ORQ_MIN_CHUNK" with
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some c -> set_min_chunk c
      | None -> ())
  | None -> ()

(* Publish spans, drain the queue from the calling domain too, then wait
   for stragglers. The first exception raised by any span is re-raised
   here once every span has completed. *)
let dispatch p spans f =
  let busy = Domain.DLS.get busy_key in
  busy := true;
  Locked.with_lock p.m (fun () ->
      p.job <- f;
      p.queue <- spans;
      p.pending <- List.length spans;
      Condition.broadcast p.ready);
  let rec drain () =
    let claimed =
      Locked.with_lock p.m (fun () ->
          match p.queue with
          | (pos, len) :: rest ->
              p.queue <- rest;
              Some (pos, len)
          | [] -> None)
    in
    match claimed with
    | Some (pos, len) ->
        (try f pos len with e -> record_failure p e);
        Locked.with_lock p.m (fun () -> span_done p);
        drain ()
    | None ->
        Locked.with_lock p.m (fun () ->
            while p.pending > 0 do
              Locked.wait p.m p.finished
            done)
  in
  drain ();
  let fail =
    Locked.with_lock p.m (fun () ->
        let e = p.failed in
        p.failed <- None;
        e)
  in
  busy := false;
  match fail with Some e -> raise e | None -> ()

(** [run_spans n f] calls [f pos len] for each chunk of [0, n), on this
    domain's pool when more than one lane is configured and every lane
    gets at least {!set_min_chunk} elements; below that the dispatch
    overhead exceeds the parallel win (the BENCH_kernels small-input
    regression), so the call runs sequentially on the calling domain
    instead of shrinking the lane count. [f] must only write to disjoint
    output ranges determined by its span. *)
let run_spans n f =
  let d = effective_lanes () in
  if d <= 1 || n < d * !min_chunk || !(Domain.DLS.get busy_key) then f 0 n
  else dispatch (ensure_pool ()) (chunks n d) f

(** [run_tasks k f] runs the indexed tasks [f 0 .. f (k-1)] on the pool
    (sequentially when only one lane is configured). Used for blocked
    algorithms — e.g. the two-pass parallel prefix sum — that need an
    explicit chunk decomposition shared across phases. *)
let run_tasks k f =
  let d = effective_lanes () in
  if d <= 1 || k <= 1 || !(Domain.DLS.get busy_key) then
    for i = 0 to k - 1 do
      f i
    done
  else dispatch (ensure_pool ()) (List.init k (fun i -> (i, 1))) (fun pos _ -> f pos)

(* ------------------------------------------------------------------ *)
(* Convenience maps                                                    *)
(* ------------------------------------------------------------------ *)

(** Parallel elementwise map over an int vector. *)
let map f (a : int array) =
  let n = Array.length a in
  let out = Array.make n 0 in
  run_spans n (fun pos len ->
      for i = pos to pos + len - 1 do
        out.(i) <- f a.(i)
      done);
  out

(** Parallel elementwise binary map. *)
let map2 f (a : int array) (b : int array) =
  let n = Array.length a in
  assert (Array.length b = n);
  let out = Array.make n 0 in
  run_spans n (fun pos len ->
      for i = pos to pos + len - 1 do
        out.(i) <- f a.(i) b.(i)
      done);
  out

(** Parallel application of a plaintext index permutation: the paper's
    Appendix A.2 observation that each thread may receive full write access
    to the output because a permutation writes every slot exactly once. *)
let apply_perm (a : int array) (perm : int array) =
  let n = Array.length a in
  if Debug.enabled () then Debug.validate_perm ~op:"Parallel.apply_perm" perm n;
  let out = Array.make n 0 in
  run_spans n (fun pos len ->
      for i = pos to pos + len - 1 do
        out.(perm.(i)) <- a.(i)
      done);
  out
