(** Data-parallel execution of local vector work over OCaml 5 domains.

    ORQ's engine is data-parallel within each computing party (§4): workers
    operate on disjoint partitions of a vector. We mirror that with a small
    chunked-parallel layer. The number of domains defaults to 1 so that unit
    tests are deterministic and cheap; benchmarks enable more via
    {!set_num_domains}. Only *local* (communication-free) loops go through
    this module — metering of simulated network traffic stays single-threaded.
*)

let num_domains = ref 1

let set_num_domains n = num_domains := max 1 n
let get_num_domains () = !num_domains

(** [chunks n k] splits [0, n) into at most [k] contiguous (pos, len) spans. *)
let chunks n k =
  let k = max 1 (min k n) in
  let base = n / k and rem = n mod k in
  List.init k (fun i ->
      let pos = (i * base) + min i rem in
      let len = base + if i < rem then 1 else 0 in
      (pos, len))

(** [run_spans n f] calls [f pos len] for each chunk of [0, n), in parallel
    when more than one domain is configured. [f] must only write to disjoint
    output ranges determined by its span. Domains are spawned per call, so
    parallelism only pays for itself on large vectors — small inputs stay
    sequential regardless of the configured domain count. *)
let run_spans n f =
  let d = !num_domains in
  if d <= 1 || n < 65536 then f 0 n
  else
    match chunks n d with
    | [] -> ()
    | (p0, l0) :: rest ->
        let workers =
          List.map (fun (pos, len) -> Domain.spawn (fun () -> f pos len)) rest
        in
        f p0 l0;
        List.iter Domain.join workers

(** Parallel elementwise map over an int vector. *)
let map f (a : int array) =
  let n = Array.length a in
  let out = Array.make n 0 in
  run_spans n (fun pos len ->
      for i = pos to pos + len - 1 do
        out.(i) <- f a.(i)
      done);
  out

(** Parallel elementwise binary map. *)
let map2 f (a : int array) (b : int array) =
  let n = Array.length a in
  assert (Array.length b = n);
  let out = Array.make n 0 in
  run_spans n (fun pos len ->
      for i = pos to pos + len - 1 do
        out.(i) <- f a.(i) b.(i)
      done);
  out

(** Parallel application of a plaintext index permutation: the paper's
    Appendix A.2 observation that each thread may receive full write access
    to the output because a permutation writes every slot exactly once. *)
let apply_perm (a : int array) (perm : int array) =
  let n = Array.length a in
  let out = Array.make n 0 in
  run_spans n (fun pos len ->
      for i = pos to pos + len - 1 do
        out.(perm.(i)) <- a.(i)
      done);
  out
