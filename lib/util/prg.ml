(** Seeded pseudo-random generator (splitmix64 core).

    ORQ derives all protocol randomness — zero sharings, masks, local
    permutations, dealer correlations — from seeded PRGs so that pairs of
    parties holding a common seed derive identical streams (the paper's
    "common PRG seed" construction, Appendix A.2). splitmix64 is a
    statistically strong, splittable generator; we do not claim
    cryptographic strength for this simulation (see DESIGN.md).
*)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(** Restart the stream from [seed], discarding any state. Used to give
    each service query its own derived session seed so executions are
    history-independent (identical transcripts whatever ran before). *)
let reseed t seed = t.state <- Int64.of_int seed

(** Overwrite [dst]'s state with [src]'s, making [dst] continue [src]'s
    stream in place (for generators embedded in immutable record fields). *)
let sync ~dst ~src = dst.state <- src.state

(** Derive an independent child generator; used to give each (pair of)
    parties its own stream from a session seed. *)
let split t i =
  { state = Int64.add t.state (Int64.mul (Int64.of_int (i + 1)) 0x9E3779B97F4A7C15L) }

let next64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** A uniformly random ring word (63 bits). *)
let word t = Int64.to_int (next64 t) land Ring.ones

let bool t = Int64.logand (next64 t) 1L = 1L

(** Uniform integer in [0, bound). [bound] must be positive. *)
let int_below t bound =
  assert (bound > 0);
  if bound land (bound - 1) = 0 then word t land (bound - 1)
  else
    (* rejection sampling to avoid modulo bias *)
    let limit = max_int - (max_int mod bound) in
    let rec go () =
      let x = word t land max_int in
      if x < limit then x mod bound else go ()
    in
    go ()

(** Fill [dst] with uniform ring words. *)
let fill_words t dst =
  for i = 0 to Array.length dst - 1 do
    dst.(i) <- word t
  done

let words t n =
  let a = Array.make n 0 in
  fill_words t a;
  a
