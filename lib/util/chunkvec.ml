(** Out-of-core chunked ring-word vectors with a global memory budget.

    A [Chunkvec.t] stores a logical [int array] as fixed-size chunks owned
    by a process-wide store. Chunks belonging to *tracked* vectors are
    charged against [ORQ_MEM_BUDGET]; when the store goes over budget it
    spills the least-recently-used unpinned chunks to an unlinked tempfile
    and faults them back on access. Chunks are immutable once registered,
    so a spilled chunk keeps its disk slot forever and re-eviction is a
    free array drop. Structural sharing is explicit: [append]/[sub] reuse
    whole chunks of their inputs (refcounted) instead of copying, which is
    what makes incremental table building linear instead of quadratic.

    *Untracked* vectors ({!alias}) wrap an existing array as one chunk with
    no copy, no accounting and no spilling — they are how the monolithic
    code path flows through the chunk-aware operators unchanged: a
    single-chunk vector visits every kernel exactly once, so values, PRG
    draw order and metered traffic are byte-identical to the pre-chunking
    engine.

    Thread safety: all store bookkeeping (pin/unpin/register/evict/fault)
    holds one global mutex; chunk payloads are only read or written while
    pinned, and eviction skips pinned chunks, so concurrent query workers
    can share the store. *)

let word_bytes = 8

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

(** Parse "65536", "512K", "64M", "2G" (case-insensitive suffixes). *)
let parse_bytes s =
  let s = String.trim s in
  let n = String.length s in
  if n = 0 then 0
  else
    let mult, digits =
      match s.[n - 1] with
      | 'k' | 'K' -> (1024, n - 1)
      | 'm' | 'M' -> (1024 * 1024, n - 1)
      | 'g' | 'G' -> (1024 * 1024 * 1024, n - 1)
      | _ -> (1, n)
    in
    match int_of_string_opt (String.sub s 0 digits) with
    | Some v when v >= 0 -> v * mult
    | _ -> invalid_arg (Printf.sprintf "Chunkvec: bad byte count %S" s)

let default_chunk_rows = 65_536

let env_chunk_rows = Sys.getenv_opt "ORQ_CHUNK_ROWS"
let env_budget = Sys.getenv_opt "ORQ_MEM_BUDGET"

let chunk_rows_ref =
  ref
    (match env_chunk_rows with
    | Some s when String.trim s <> "" -> max 1 (int_of_string (String.trim s))
    | _ -> default_chunk_rows)

(* 0 = unlimited *)
let budget_ref =
  ref (match env_budget with Some s -> parse_bytes s | None -> 0)

(* Streaming (chunked table columns, parking at operator boundaries) is
   opt-in: either env knob present, or a test/bench called a setter. When
   off, every vector is a single chunk and the engine behaves exactly as
   before this layer existed. *)
let streaming_ref = ref (env_chunk_rows <> None || env_budget <> None)

let chunk_rows () = !chunk_rows_ref
let budget () = !budget_ref
let streaming_enabled () = !streaming_ref
let set_streaming b = streaming_ref := b

let set_chunk_rows r =
  if r < 1 then invalid_arg "Chunkvec.set_chunk_rows";
  chunk_rows_ref := r;
  streaming_ref := true

(* ------------------------------------------------------------------ *)
(* The store                                                           *)
(* ------------------------------------------------------------------ *)

type chunk = {
  id : int;
  clen : int;
  tracked : bool;
  mutable data : int array option;  (** [None] = spilled to disk *)
  mutable slot : int;  (** byte offset of the disk copy; -1 = none *)
  mutable pins : int;
  mutable tick : int;
  mutable refs : int;  (** structural-sharing count across vectors *)
  mutable dead : bool;
}

type t = {
  n : int;
  rows : int;  (** chunk capacity; every interior chunk has this length *)
  vtracked : bool;
  chunks : chunk array;
  mutable disposed : bool;
}

(* Innermost lock in the registry: the store is entered from operator
   kernels, worker domains and session threads alike, so nothing may be
   acquired while it is held (see lib/analysis/lockmap.ml). *)
let mutex = Locked.create ~name:"chunkvec" ~rank:70 ()

(* GC finalisers can fire at any allocation point, including while this
   very thread holds the store mutex — so they must never lock. Instead
   they park dead chunks on a lock-free graveyard (see [bury] below),
   reaped here on every locked entry. *)
let reap_hook : (unit -> unit) ref = ref (fun () -> ())

let locked f =
  Locked.with_lock mutex (fun () ->
      !reap_hook ();
      f ())

let next_id = ref 0
let clock = ref 0

(* Eviction candidates: sealed tracked chunks whose payload is resident. *)
let resident : (int, chunk) Hashtbl.t = Hashtbl.create 1024

let live = ref 0
let peak_live = ref 0
let spill_count = ref 0
let fault_count = ref 0
let spilled_bytes = ref 0
let faulted_bytes = ref 0
let disk_bytes = ref 0

let bytes_of c = c.clen * word_bytes

(* -------- spill file: one unlinked tempfile, size-bucketed freelist --- *)

let spill_file : Unix.file_descr option ref = ref None
let freelist : (int, int list ref) Hashtbl.t = Hashtbl.create 16
let file_end = ref 0

(* A raw fd, not buffered channels: an [in_channel]'s read buffer does not
   see writes made through a separate [out_channel], so a freed slot that
   is reused would be read back stale. All slot I/O happens under the
   store mutex, so one shared fd with lseek is safe. *)
let spill_channels () =
  match !spill_file with
  | Some fd -> fd
  | None ->
      let path = Filename.temp_file "orq-chunks" ".spill" in
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0o600 in
      (* unlink immediately: the kernel reclaims the space when the
         process exits, however it exits *)
      (try Sys.remove path with Sys_error _ -> ());
      spill_file := Some fd;
      fd

let alloc_slot bytes =
  match Hashtbl.find_opt freelist bytes with
  | Some ({ contents = off :: rest } as l) ->
      l := rest;
      off
  | _ ->
      let off = !file_end in
      file_end := off + bytes;
      disk_bytes := !disk_bytes + bytes;
      off

let free_slot off bytes =
  if off >= 0 then begin
    (match Hashtbl.find_opt freelist bytes with
    | Some l -> l := off :: !l
    | None -> Hashtbl.add freelist bytes (ref [ off ]))
  end

let write_slot off (a : int array) =
  let fd = spill_channels () in
  let len = Array.length a in
  let buf = Bytes.create (len * word_bytes) in
  for j = 0 to len - 1 do
    Bytes.set_int64_le buf (j * word_bytes) (Int64.of_int a.(j))
  done;
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let n = len * word_bytes in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write fd buf !sent (n - !sent)
  done

let read_slot off len =
  let fd = spill_channels () in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let n = len * word_bytes in
  let buf = Bytes.create n in
  let got = ref 0 in
  while !got < n do
    let r = Unix.read fd buf !got (n - !got) in
    if r = 0 then failwith "Chunkvec: truncated spill file";
    got := !got + r
  done;
  Array.init len (fun j -> Int64.to_int (Bytes.get_int64_le buf (j * word_bytes)))

(* -------- accounting (call with the mutex held) -------- *)

let charge c =
  if c.tracked then begin
    live := !live + bytes_of c;
    if !live > !peak_live then peak_live := !live;
    Hashtbl.replace resident c.id c
  end

let uncharge c =
  if c.tracked then begin
    live := !live - bytes_of c;
    Hashtbl.remove resident c.id
  end

(* Spill one chunk to disk: the payload is immutable, so an existing disk
   slot is already up to date and the write is skipped. *)
let spill_chunk c =
  (match c.data with
  | None -> ()
  | Some a ->
      if c.slot < 0 then begin
        c.slot <- alloc_slot (bytes_of c);
        write_slot c.slot a
      end;
      c.data <- None;
      uncharge c;
      incr spill_count;
      spilled_bytes := !spilled_bytes + bytes_of c)

(* Evict LRU unpinned chunks until within budget (or nothing evictable). *)
let rec evict_until_within () =
  let b = !budget_ref in
  if b > 0 && !live > b then begin
    let victim =
      Hashtbl.fold
        (fun _ c best ->
          if c.pins > 0 || c.dead || c.data = None then best
          else
            match best with
            | Some v when v.tick <= c.tick -> best
            | _ -> Some c)
        resident None
    in
    match victim with
    | None -> ()
    | Some c ->
        spill_chunk c;
        evict_until_within ()
  end

let register_chunk ~tracked (a : int array) =
  locked (fun () ->
      incr next_id;
      incr clock;
      let c =
        {
          id = !next_id;
          clen = Array.length a;
          tracked;
          data = Some a;
          slot = -1;
          pins = 0;
          tick = !clock;
          refs = 1;
          dead = false;
        }
      in
      charge c;
      evict_until_within ();
      c)

(* Pin: fault the payload back in if spilled; while pinned the chunk
   cannot be evicted. *)
let pin_chunk c =
  locked (fun () ->
      if c.dead then invalid_arg "Chunkvec: access to disposed chunk";
      incr clock;
      c.tick <- !clock;
      match c.data with
      | Some a ->
          c.pins <- c.pins + 1;
          a
      | None ->
          let a = read_slot c.slot c.clen in
          c.data <- Some a;
          charge c;
          incr fault_count;
          faulted_bytes := !faulted_bytes + bytes_of c;
          c.pins <- c.pins + 1;
          evict_until_within ();
          a)

let unpin_chunk c = locked (fun () -> c.pins <- c.pins - 1)

(* requires the store mutex *)
let release_chunk_locked c =
  c.refs <- c.refs - 1;
  if c.refs = 0 && not c.dead then begin
    c.dead <- true;
    (match c.data with Some _ -> uncharge c | None -> ());
    c.data <- None;
    free_slot c.slot (bytes_of c);
    c.slot <- -1
  end

let release_chunk c = locked (fun () -> release_chunk_locked c)

(* -------- the finaliser-safe release path -------- *)

let graveyard : chunk list Atomic.t = Atomic.make []

let rec bury cs =
  let old = Atomic.get graveyard in
  if not (Atomic.compare_and_set graveyard old (List.rev_append cs old)) then
    bury cs

let () =
  reap_hook :=
    fun () ->
      match Atomic.exchange graveyard [] with
      | [] -> ()
      | cs -> List.iter release_chunk_locked cs

(* ------------------------------------------------------------------ *)
(* Vectors                                                             *)
(* ------------------------------------------------------------------ *)

let length t = t.n
let nchunks t = Array.length t.chunks
let rows_of t = t.rows
let tracked t = t.vtracked
let chunk_base t i = i * t.rows
let chunk_len t i = t.chunks.(i).clen
let chunk_ids t = Array.map (fun c -> c.id) t.chunks

let dispose t =
  if not t.disposed then begin
    t.disposed <- true;
    if t.vtracked then Array.iter release_chunk t.chunks
  end

(* The GC backstop must not take the store mutex (it may already be held
   by this thread at the triggering allocation): park the chunks on the
   graveyard instead of releasing inline. *)
let finalise_vec t =
  if not t.disposed then begin
    t.disposed <- true;
    if t.vtracked then bury (Array.to_list t.chunks)
  end

let mk ~rows ~tracked chunks n =
  let t = { n; rows = max 1 rows; vtracked = tracked; chunks; disposed = false } in
  (* finaliser_guard: under ORQ_DEBUG_CHECKS any registered-lock
     acquisition inside the finaliser fails fast — the mechanical check
     that the graveyard handoff stays lock-free *)
  if tracked then Gc.finalise (Locked.finaliser_guard finalise_vec) t;
  t

(** Incremental constructor: chunks are pushed in order and become
    budget-managed (evictable) immediately, so building a vector larger
    than the budget spills the cold prefix while the tail is produced. *)
module Builder = struct
  type b = {
    total : int;
    brows : int;
    btracked : bool;
    mutable filled : int;
    mutable acc : chunk list;
  }

  let create ?rows ?(tracked = true) total =
    if total < 0 then invalid_arg "Chunkvec.Builder.create";
    let brows =
      match rows with Some r -> max 1 r | None -> chunk_rows ()
    in
    let brows = if tracked then brows else max 1 total in
    { total; brows; btracked = tracked; filled = 0; acc = [] }

  let expected_len b =
    min b.brows (b.total - b.filled)

  let push b (a : int array) =
    let l = Array.length a in
    if l <> expected_len b || l = 0 then
      invalid_arg
        (Printf.sprintf "Chunkvec.Builder.push: chunk of %d, expected %d" l
           (expected_len b));
    b.filled <- b.filled + l;
    b.acc <- register_chunk ~tracked:b.btracked a :: b.acc

  let finish b =
    if b.filled <> b.total then
      invalid_arg
        (Printf.sprintf "Chunkvec.Builder.finish: %d of %d rows pushed"
           b.filled b.total);
    mk ~rows:b.brows ~tracked:b.btracked
      (Array.of_list (List.rev b.acc))
      b.total
end

(** Wrap an existing array as a single untracked chunk — no copy, no
    accounting, never spilled. The monolithic fast path. *)
let alias (a : int array) =
  let n = Array.length a in
  mk ~rows:(max 1 n) ~tracked:false
    (if n = 0 then [||] else [| register_chunk ~tracked:false a |])
    n

(** Copy an array into tracked chunks. *)
let of_array (a : int array) =
  let n = Array.length a in
  let b = Builder.create n in
  let pos = ref 0 in
  while !pos < n do
    let l = min (Builder.expected_len b) (n - !pos) in
    Builder.push b (Array.sub a !pos l);
    pos := !pos + l
  done;
  Builder.finish b

let with_chunk t i f =
  let c = t.chunks.(i) in
  let a = pin_chunk c in
  Fun.protect ~finally:(fun () -> unpin_chunk c) (fun () -> f a)

let iter_chunks t f =
  Array.iteri (fun i _ -> with_chunk t i (fun a -> f i a)) t.chunks

(** Materialize as one array (zero-copy for an untracked single chunk). *)
let to_array t =
  if t.n = 0 then [||]
  else if nchunks t = 1 && not t.vtracked then with_chunk t 0 (fun a -> a)
  else begin
    let out = Array.make t.n 0 in
    iter_chunks t (fun i a ->
        Array.blit a 0 out (chunk_base t i) (Array.length a));
    out
  end

let get t i =
  if i < 0 || i >= t.n then invalid_arg "Chunkvec.get";
  with_chunk t (i / t.rows) (fun a -> a.(i mod t.rows))

let equal a b =
  a.n = b.n
  &&
  let ok = ref true in
  iter_chunks a (fun i ca ->
      if !ok then
        let base = chunk_base a i in
        for j = 0 to Array.length ca - 1 do
          if !ok && get b (base + j) <> ca.(j) then ok := false
        done);
  !ok

(* Derived vectors keep the source's granularity and tracking, so the
   wrapped-monolithic path stays single-chunk end to end. *)
let like_builder t total =
  Builder.create ~rows:t.rows ~tracked:t.vtracked total

(** Chunkwise map: [f] gets each payload and must return a fresh array of
    the same length. *)
let map f t =
  let b = like_builder t t.n in
  iter_chunks t (fun _ a ->
      let o = f a in
      if Array.length o <> Array.length a then
        invalid_arg "Chunkvec.map: length change";
      Builder.push b o);
  Builder.finish b

let map2 f x y =
  if x.n <> y.n then invalid_arg "Chunkvec.map2: length mismatch";
  if x.rows = y.rows then begin
    let b = like_builder x x.n in
    Array.iteri
      (fun i _ ->
        with_chunk x i (fun xa ->
            with_chunk y i (fun ya ->
                let o = f xa ya in
                if Array.length o <> Array.length xa then
                  invalid_arg "Chunkvec.map2: length change";
                Builder.push b o)))
      x.chunks;
    Builder.finish b
  end
  else begin
    (* granularity mismatch (e.g. tracked vs wrapped): go through arrays *)
    let xa = to_array x and ya = to_array y in
    let o = f xa ya in
    if x.vtracked then of_array o else alias o
  end

(** [gather t idx]: out.(i) = t.(idx.(i)) under a public index vector.
    Output chunks are produced (and become evictable) one at a time; the
    source faults chunks in on demand, so the resident working set is one
    output chunk plus the touched source chunks. *)
let gather t (idx : int array) =
  if Debug.enabled () then
    Debug.validate_indices ~op:"Chunkvec.gather" idx t.n;
  let m = Array.length idx in
  let b = like_builder t m in
  let nc = nchunks t in
  (* per-output-chunk pin cache over source chunks *)
  let cache : int array option array = Array.make (max 1 nc) None in
  let pos = ref 0 in
  while !pos < m do
    let l = min b.Builder.brows (m - !pos) in
    let out = Array.make l 0 in
    for j = 0 to l - 1 do
      let g = idx.(!pos + j) in
      let ci = g / t.rows in
      let src =
        match cache.(ci) with
        | Some a -> a
        | None ->
            let a = pin_chunk t.chunks.(ci) in
            cache.(ci) <- Some a;
            a
      in
      out.(j) <- src.(g - (ci * t.rows))
    done;
    Array.iteri
      (fun ci v ->
        match v with
        | Some _ ->
            unpin_chunk t.chunks.(ci);
            cache.(ci) <- None
        | None -> ())
      cache;
    Builder.push b out;
    pos := !pos + l
  done;
  Builder.finish b

(** [scatter t idx]: out.(idx.(i)) = t.(i); [idx] must be a permutation.
    Destination chunks are all materialized while the source streams
    through, so the working set is one full output column. *)
let scatter t (idx : int array) =
  if Array.length idx <> t.n then invalid_arg "Chunkvec.scatter: length";
  if Debug.enabled () then Debug.validate_perm ~op:"Chunkvec.scatter" idx t.n;
  let rows = if t.vtracked then t.rows else max 1 t.n in
  let nout = (t.n + rows - 1) / rows in
  let outs =
    Array.init nout (fun i -> Array.make (min rows (t.n - (i * rows))) 0)
  in
  iter_chunks t (fun i a ->
      let base = chunk_base t i in
      for j = 0 to Array.length a - 1 do
        let d = idx.(base + j) in
        outs.(d / rows).(d mod rows) <- a.(j)
      done);
  let b = like_builder t t.n in
  Array.iter (fun o -> Builder.push b o) outs;
  Builder.finish b

(** [sub t pos len]: interior chunks are shared (refcounted), only the
    unaligned boundary chunks are copied. *)
let sub t pos len =
  if pos < 0 || len < 0 || pos + len > t.n then invalid_arg "Chunkvec.sub";
  if pos = 0 && len = t.n then t
  else if t.vtracked && pos mod t.rows = 0 && (pos + len = t.n || len mod t.rows = 0)
  then begin
    let first = pos / t.rows in
    let cnt = (len + t.rows - 1) / t.rows in
    let chunks = Array.sub t.chunks first cnt in
    locked (fun () -> Array.iter (fun c -> c.refs <- c.refs + 1) chunks);
    mk ~rows:t.rows ~tracked:true chunks len
  end
  else begin
    let b = like_builder t len in
    let done_ = ref 0 in
    while !done_ < len do
      let l = min b.Builder.brows (len - !done_) in
      let out = Array.make l 0 in
      let out_off = ref 0 in
      while !out_off < l do
        let g = pos + !done_ + !out_off in
        let ci = g / t.rows in
        let coff = g - (ci * t.rows) in
        let take = min (l - !out_off) (chunk_len t ci - coff) in
        with_chunk t ci (fun a -> Array.blit a coff out !out_off take);
        out_off := !out_off + take
      done;
      Builder.push b out;
      done_ := !done_ + l
    done;
    Builder.finish b
  end

(** [append a b]: when [a] ends on a chunk boundary at the shared
    granularity, both inputs' chunks are reused wholesale — O(1) in data
    moved. Otherwise [a]'s full chunks are shared and only the unaligned
    tail plus [b] is repacked, so repeatedly appending to an accumulator
    stays linear in the total size. *)
let append a b =
  if a.n = 0 then b
  else if b.n = 0 then a
  else begin
    let tracked = a.vtracked || b.vtracked in
    let rows = if a.vtracked then a.rows else b.rows in
    if a.vtracked && b.vtracked && a.rows = rows && b.rows = rows
       && a.n mod rows = 0
    then begin
      let chunks = Array.append a.chunks b.chunks in
      locked (fun () -> Array.iter (fun c -> c.refs <- c.refs + 1) chunks);
      mk ~rows ~tracked:true chunks (a.n + b.n)
    end
    else begin
      (* share a's aligned prefix, repack the boundary + b *)
      let keep =
        if tracked && a.vtracked && a.rows = rows then (a.n / rows) * rows
        else 0
      in
      let bld = Builder.create ~rows ~tracked (a.n + b.n) in
      let prefix = if keep > 0 then Array.sub a.chunks 0 (keep / rows) else [||] in
      locked (fun () -> Array.iter (fun c -> c.refs <- c.refs + 1) prefix);
      Array.iter
        (fun c ->
          bld.Builder.filled <- bld.Builder.filled + c.clen;
          bld.Builder.acc <- c :: bld.Builder.acc)
        prefix;
      let total = a.n + b.n in
      let read_at g =
        if g < a.n then (a, g) else (b, g - a.n)
      in
      let pos = ref keep in
      while !pos < total do
        let l = min rows (total - !pos) in
        let out = Array.make l 0 in
        let off = ref 0 in
        while !off < l do
          let src, g = read_at (!pos + !off) in
          let ci = g / src.rows in
          let coff = g - (ci * src.rows) in
          let take = min (l - !off) (chunk_len src ci - coff) in
          with_chunk src ci (fun arr -> Array.blit arr coff out !off take);
          off := !off + take
        done;
        Builder.push bld out;
        pos := !pos + l
      done;
      Builder.finish bld
    end
  end

let concat = function
  | [] -> invalid_arg "Chunkvec.concat: empty"
  | t :: rest -> List.fold_left append t rest

(** Chunkwise running prefix sum over the ring (carry threaded through the
    chunks; identical to the monolithic scan modulo the ring). *)
let prefix_sum t =
  let b = like_builder t t.n in
  let carry = ref 0 in
  iter_chunks t (fun _ a ->
      let o = Array.copy a in
      Vec.prefix_sum_inplace o;
      if !carry <> 0 then
        for j = 0 to Array.length o - 1 do
          (* native ints are the 63-bit ring; addition wraps in-ring *)
          o.(j) <- o.(j) + !carry
        done;
      (if Array.length o > 0 then carry := o.(Array.length o - 1));
      Builder.push b o);
  Builder.finish b

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

type stats = {
  st_live_bytes : int;
  st_peak_live_bytes : int;
  st_spills : int;
  st_faults : int;
  st_spilled_bytes : int;
  st_faulted_bytes : int;
  st_disk_bytes : int;
}

let stats () =
  locked (fun () ->
      {
        st_live_bytes = !live;
        st_peak_live_bytes = !peak_live;
        st_spills = !spill_count;
        st_faults = !fault_count;
        st_spilled_bytes = !spilled_bytes;
        st_faulted_bytes = !faulted_bytes;
        st_disk_bytes = !disk_bytes;
      })

let live_bytes () = locked (fun () -> !live)
let peak_live_bytes () = locked (fun () -> !peak_live)
let reset_peak () = locked (fun () -> peak_live := !live)
let set_budget b =
  locked (fun () -> budget_ref := max 0 b);
  streaming_ref := true;
  locked evict_until_within

(** Peak resident-set size of this process in KiB (VmHWM from
    /proc/self/status; 0 where unavailable). The honest companion to the
    store's own accounting: chunk bytes bound what the store manages,
    VmHWM shows everything including per-operator monolithic working
    sets. *)
let rss_peak_kb () =
  try
    let ic = open_in "/proc/self/status" in
    let rec scan () =
      match input_line ic with
      | line ->
          if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then begin
            let v =
              String.trim (String.sub line 6 (String.length line - 6))
            in
            let v =
              match String.index_opt v ' ' with
              | Some i -> String.sub v 0 i
              | None -> v
            in
            close_in ic;
            int_of_string v
          end
          else scan ()
      | exception End_of_file ->
          close_in ic;
          0
    in
    scan ()
  with _ -> 0
