(** Plaintext reference relational engine.

    The paper validates every query against SQLite (§5.1); this module
    plays that role offline: a small, obviously correct, in-memory
    relational evaluator over integer columns. Every MPC query in the test
    suite is checked against its plaintext twin, row-multiset for
    row-multiset. *)

type row = int list

type t = { schema : string list; rows : row list }

let create schema rows =
  List.iter
    (fun r ->
      if List.length r <> List.length schema then
        invalid_arg "Ptable.create: ragged row")
    rows;
  { schema; rows }

let of_cols (cols : (string * int array) list) : t =
  let schema = List.map fst cols in
  let n = match cols with (_, v) :: _ -> Array.length v | [] -> 0 in
  let rows =
    List.init n (fun i -> List.map (fun (_, v) -> v.(i)) cols)
  in
  { schema; rows }

let nrows t = List.length t.rows
let schema t = t.schema

let col_idx t name =
  let rec go i = function
    | [] -> invalid_arg ("Ptable: no column " ^ name)
    | c :: _ when c = name -> i
    | _ :: tl -> go (i + 1) tl
  in
  go 0 t.schema

(** Accessor for a row: [get t name row]. *)
let get t name =
  let i = col_idx t name in
  fun (r : row) -> List.nth r i

let filter t pred = { t with rows = List.filter (pred (get t)) t.rows }

(** Add a derived column computed from each row. *)
let map t ~dst f =
  {
    schema = t.schema @ [ dst ];
    rows = List.map (fun r -> r @ [ f (get t) r ]) t.rows;
  }

let project t names =
  let idxs = List.map (col_idx t) names in
  { schema = names; rows = List.map (fun r -> List.map (List.nth r) idxs) t.rows }

let rename_col t ~from ~into =
  { t with schema = List.map (fun n -> if n = from then into else n) t.schema }

let distinct t names =
  let key = project t names in
  let seen = Hashtbl.create 16 in
  let rows =
    List.filteri
      (fun i r ->
        let k = List.nth key.rows i in
        ignore r;
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      t.rows
  in
  { t with rows }

(** Sort by named columns; [dirs] gives +1 (asc) or -1 (desc) per key. *)
let sort t (specs : (string * int) list) =
  let keyf r = List.map (fun (n, d) -> d * get t n r) specs in
  { t with rows = List.stable_sort (fun a b -> compare (keyf a) (keyf b)) t.rows }

let limit t k = { t with rows = List.filteri (fun i _ -> i < k) t.rows }

(* ------------------------------------------------------------------ *)
(* Joins                                                               *)
(* ------------------------------------------------------------------ *)

let key_of t on r = List.map (fun k -> get t k r) on

(** Natural inner join on the named key columns; non-key column names must
    be disjoint (as in the MPC engine). *)
let inner_join (l : t) (r : t) ~on : t =
  let l_rest = List.filter (fun n -> not (List.mem n on)) l.schema in
  let r_rest = List.filter (fun n -> not (List.mem n on)) r.schema in
  List.iter
    (fun n -> if List.mem n r_rest then invalid_arg ("join collision: " ^ n))
    l_rest;
  let lkey = key_of l on and rkey = key_of r on in
  let lproj = project l l_rest and rproj = project r r_rest in
  let rows =
    List.concat_map
      (fun (lr, lrest) ->
        List.filter_map
          (fun (rr, rrest) ->
            if lkey lr = rkey rr then Some (lkey lr @ lrest @ rrest) else None)
          (List.combine r.rows rproj.rows))
      (List.combine l.rows lproj.rows)
  in
  { schema = on @ l_rest @ r_rest; rows }

let semi_join (l : t) (r : t) ~on : t =
  let rkeys = Hashtbl.create 16 in
  List.iter (fun rr -> Hashtbl.replace rkeys (key_of r on rr) ()) r.rows;
  { l with rows = List.filter (fun lr -> Hashtbl.mem rkeys (key_of l on lr)) l.rows }

let anti_join (l : t) (r : t) ~on : t =
  let rkeys = Hashtbl.create 16 in
  List.iter (fun rr -> Hashtbl.replace rkeys (key_of r on rr) ()) r.rows;
  {
    l with
    rows = List.filter (fun lr -> not (Hashtbl.mem rkeys (key_of l on lr))) l.rows;
  }

let left_outer_join (l : t) (r : t) ~on : t =
  let joined = inner_join l r ~on in
  let unmatched = anti_join l r ~on in
  let l_rest = List.filter (fun n -> not (List.mem n on)) l.schema in
  let r_rest = List.filter (fun n -> not (List.mem n on)) r.schema in
  let null_rows =
    List.map
      (fun lr ->
        key_of l on lr
        @ List.map (fun n -> get l n lr) l_rest
        @ List.map (fun _ -> 0) r_rest)
      unmatched.rows
  in
  { joined with rows = joined.rows @ null_rows }

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)
(* ------------------------------------------------------------------ *)

type aggfn = Sum | Count | Min | Max | Avg

type agg = { src : string; dst : string; fn : aggfn }

let apply_agg fn (vals : int list) =
  match fn with
  | Sum -> List.fold_left ( + ) 0 vals
  | Count -> List.length vals
  | Min -> List.fold_left min max_int vals
  | Max -> List.fold_left max min_int vals
  | Avg -> List.fold_left ( + ) 0 vals / List.length vals

(** GROUP BY with aggregate functions; output schema is keys @ agg dsts. *)
let group_by (t : t) ~(keys : string list) ~(aggs : agg list) : t =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun r ->
      let k = List.map (fun n -> get t n r) keys in
      if not (Hashtbl.mem tbl k) then begin
        order := k :: !order;
        Hashtbl.add tbl k []
      end;
      Hashtbl.replace tbl k (r :: Hashtbl.find tbl k))
    t.rows;
  let rows =
    List.rev_map
      (fun k ->
        let group = List.rev (Hashtbl.find tbl k) in
        k
        @ List.map
            (fun a ->
              let vals =
                match a.fn with
                | Count -> List.map (fun _ -> 1) group
                | _ -> List.map (fun r -> get t a.src r) group
              in
              apply_agg a.fn vals)
            aggs)
      !order
  in
  { schema = keys @ List.map (fun a -> a.dst) aggs; rows }

(** Canonical form for comparisons: multiset of rows over [names], sorted. *)
let rows_sorted (t : t) (names : string list) : int list list =
  List.sort compare (project t names).rows

let concat (a : t) (b : t) : t =
  if a.schema <> b.schema then invalid_arg "Ptable.concat: schema mismatch";
  { a with rows = a.rows @ b.rows }

let pp ppf t =
  Fmt.pf ppf "%a@." Fmt.(list ~sep:(any " | ") string) t.schema;
  List.iter (fun r -> Fmt.pf ppf "%a@." Fmt.(list ~sep:(any " | ") int) r) t.rows
