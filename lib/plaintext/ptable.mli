(** Plaintext reference relational engine — the role SQLite plays in the
    paper's validation (§5.1): a small, obviously correct, in-memory
    evaluator over integer columns, against which every MPC query in the
    test suite is checked row-multiset for row-multiset. *)

type row = int list

type t = { schema : string list; rows : row list }

val create : string list -> row list -> t
val of_cols : (string * int array) list -> t
val nrows : t -> int
val schema : t -> string list
val col_idx : t -> string -> int

val get : t -> string -> row -> int
(** Row accessor: [get t name row]. *)

val filter : t -> ((string -> row -> int) -> row -> bool) -> t
val map : t -> dst:string -> ((string -> row -> int) -> row -> int) -> t
val project : t -> string list -> t
val rename_col : t -> from:string -> into:string -> t
val distinct : t -> string list -> t

val sort : t -> (string * int) list -> t
(** Stable sort by named columns; +1 ascending, -1 descending per key. *)

val limit : t -> int -> t

(** {2 Joins} *)

val inner_join : t -> t -> on:string list -> t
(** Natural inner join; non-key column names must be disjoint (as in the
    MPC engine). *)

val semi_join : t -> t -> on:string list -> t
val anti_join : t -> t -> on:string list -> t
val left_outer_join : t -> t -> on:string list -> t

(** {2 Aggregation} *)

type aggfn = Sum | Count | Min | Max | Avg

type agg = { src : string; dst : string; fn : aggfn }

val apply_agg : aggfn -> int list -> int

val group_by : t -> keys:string list -> aggs:agg list -> t
(** Output schema is keys @ agg destinations. *)

val rows_sorted : t -> string list -> int list list
(** Canonical multiset of rows over [names], sorted. *)

val concat : t -> t -> t
val pp : Format.formatter -> t -> unit
