(** Secret-shared vectors (§2.3).

    A [shared] value is a column of [n] secrets held jointly by the
    computing parties, in one of two encodings over Z_2^63:
    [Arith] — the secret is the modular sum of the share vectors;
    [Bool] — the bitwise xor.

    The lockstep simulation stores all share vectors side by side
    ([v.(k).(i)] is element [i] of share vector [k]); each protocol defines
    which party holds which vectors, and {!Mpc} only combines vectors in
    ways the owning parties could. Sharing and reconstruction here are the
    data-owner/analyst endpoints (unmetered). *)

type enc = Arith | Bool

val enc_label : enc -> string

type shared = { enc : enc; v : Orq_util.Vec.t array }

val length : shared -> int
val nvec : shared -> int
val enc : shared -> enc
val check_same_len : shared -> shared -> unit
val check_enc : enc -> shared -> unit

val share : Ctx.t -> enc -> Orq_util.Vec.t -> shared
(** Secret-share a plaintext vector: [nvec - 1] uniform masks plus a
    correction vector; each vector alone is uniform over the ring. *)

val reconstruct : shared -> Orq_util.Vec.t
(** Reconstruct the plaintext (test/analyst-side; for the metered
    in-protocol opening see {!Mpc.open_}). *)

val public : Ctx.t -> enc -> int -> int -> shared
(** A sharing of the all-[c] constant vector (the paper's [publicShare]). *)

val public_vec : Ctx.t -> enc -> Orq_util.Vec.t -> shared

val map_vectors : (Orq_util.Vec.t -> Orq_util.Vec.t) -> shared -> shared
val map2_vectors :
  (Orq_util.Vec.t -> Orq_util.Vec.t -> Orq_util.Vec.t) ->
  shared -> shared -> shared

val map3_vectors :
  (Orq_util.Vec.t -> Orq_util.Vec.t -> Orq_util.Vec.t -> Orq_util.Vec.t) ->
  shared -> shared -> shared -> shared
(** Combine three sharings per share vector — used to drive fused kernels
    such as {!Orq_util.Vec.xor3} and {!Orq_util.Vec.add_sub}. *)

val copy : shared -> shared

val append : shared -> shared -> shared
(** Concatenate two shared vectors of the same encoding (used to batch
    independent secure operations into a single round). *)

val concat : shared list -> shared

val concat_many : shared array -> shared
(** n-way concatenation in one offset-table pass per share vector — the
    packing step of cross-lane round fusion. *)

val split_many : shared -> int array -> shared array
(** Inverse of {!concat_many}: pieces of the given lengths (must sum to
    the input length). *)

val split2 : shared -> int -> shared * shared
val sub_range : shared -> int -> int -> shared

val gather : shared -> int array -> shared
(** Gather rows by public indices — local, e.g. after an opened
    shuffled comparison. *)

val scatter : shared -> int array -> shared
val rev : shared -> shared

val update_rows : shared -> int array -> shared -> shared
(** [update_rows dst idx src]: [dst] with row [idx.(t)] replaced by row
    [t] of [src] (local rearrangement under public indices). *)

(** {2 Packed single-bit sharings (flag lanes)}

    A [flags] value is a boolean sharing of single-bit secrets stored one
    flag per *bit* ({!Orq_util.Bits}, 63 flags per word) instead of one
    per word. Because xor is bitwise, the LSB plane of a boolean sharing's
    vectors is itself a valid GF(2) sharing of the flags, so each lane
    packs and unpacks locally. The {!Mpc} flag primitives operate on this
    form directly, drawing their randomness per packed word. *)

type flags = { fv : Orq_util.Bits.t array }

val flags_length : flags -> int
val flags_nvec : flags -> int
val check_same_flags_len : flags -> flags -> unit

val pack_flags : shared -> flags
(** Pack a boolean sharing of LSB flags (bits above the LSB are dropped;
    callers assert single-bit values). Local, per lane. *)

val unpack_flags : flags -> shared
(** Boolean sharing holding 0/1 words. *)

val extend_flags : flags -> shared
(** Each lane's flags extended to 0 / all-ones mux masks (replication is
    GF(2)-linear, so this extends the secret). *)

val reconstruct_flags : flags -> Orq_util.Bits.t

val share_flags : Ctx.t -> Orq_util.Bits.t -> flags
(** Secret-share a packed bit vector with per-word mask draws. *)

val public_flags : Ctx.t -> Orq_util.Bits.t -> flags
val copy_flags : flags -> flags
val flags_append : flags -> flags -> flags
val flags_concat_many : flags array -> flags
val flags_sub_range : flags -> int -> int -> flags
val flags_gather : flags -> int array -> flags
val flags_scatter : flags -> int array -> flags

(** {2 Chunked (out-of-core) sharings}

    A [chunked] value stores each share vector as an {!Orq_util.Chunkvec}:
    fixed-size chunks owned by the process-wide budget-managed store,
    spilled to disk under memory pressure. {!wrap} lifts a monolithic
    sharing into the chunked world as a single untracked chunk with no
    copy — the monolithic engine is the single-chunk special case of every
    chunk-aware operator, with identical values, PRG draw order and
    metered traffic. *)

type chunked = { cenc : enc; cn : int; cv : Orq_util.Chunkvec.t array }

val chunked_length : chunked -> int
val chunked_enc : chunked -> enc
val chunked_nvec : chunked -> int
val chunked_nchunks : chunked -> int
val chunked_tracked : chunked -> bool
val chunked_chunk_len : chunked -> int -> int
val chunked_chunk_base : chunked -> int -> int
val check_enc_c : enc -> chunked -> unit

val wrap : shared -> chunked
(** One untracked chunk, no copy (the monolithic fast path). *)

val park : shared -> chunked
(** Copy into budget-managed (evictable) chunks. *)

val unpark : chunked -> shared
(** Materialize monolithic vectors (zero-copy for a {!wrap} round trip). *)

val with_chunk_c : chunked -> int -> (shared -> 'a) -> 'a
(** Pinned read-only access to one chunk as an ordinary [shared]. *)

val build_chunked : like:chunked -> (int -> int -> shared) -> chunked
(** Build with [like]'s length/granularity/tracking from fresh per-chunk
    sharings [f base len]; chunks become evictable as produced. *)

val map_chunks : (shared -> shared) -> chunked -> chunked
(** Chunkwise local map ([f] must preserve length and not communicate). *)

val share_chunked : Ctx.t -> enc -> n:int -> (int -> int -> Orq_util.Vec.t) -> chunked
(** Secret-share a plaintext chunk stream; draws are element-major, so the
    shares are byte-identical to sharing the whole vector at once. *)

val public_chunked : Ctx.t -> enc -> n:int -> (int -> int -> Orq_util.Vec.t) -> chunked

val append_c : chunked -> chunked -> chunked
(** Chunk-reusing concatenation: aligned input chunks are shared, not
    copied (see {!Orq_util.Chunkvec.append}). *)

val sub_range_c : chunked -> int -> int -> chunked
val gather_c : chunked -> int array -> chunked
val scatter_c : chunked -> int array -> chunked

val dispose_c : chunked -> unit
(** Deterministically release store bytes and disk slots of an
    intermediate (ahead of the GC finalizer). *)

val reconstruct_c : chunked -> Orq_util.Vec.t
