(** Secret-shared vectors.

    A [shared] value is a column of [n] secrets held jointly by the
    computing parties. Following §2.3, ORQ uses two encodings over the ring
    Z_2^ell:

    - [Arith]: the secret is the modular *sum* of the share vectors;
    - [Bool]: the secret is the bitwise *xor* of the share vectors.

    The lockstep simulation stores all share vectors side by side
    ([v.(k).(i)] is element [i] of share vector [k]); each protocol defines
    which party holds which vectors, and the {!Mpc} primitives only ever
    combine vectors in ways the owning parties could. Sharing and
    reconstruction here are the data-owner/analyst endpoints and are
    unmetered (they happen outside the computing-party protocol). *)

open Orq_util

type enc = Arith | Bool

let enc_label = function Arith -> "A" | Bool -> "B"

type shared = { enc : enc; v : Vec.t array }

let length s = Vec.length s.v.(0)
let nvec s = Array.length s.v
let enc s = s.enc

let check_same_len a b =
  if length a <> length b then
    invalid_arg
      (Printf.sprintf "shared length mismatch: %d vs %d" (length a) (length b))

let check_enc e s =
  if s.enc <> e then
    invalid_arg
      (Printf.sprintf "expected %s-shared value, got %s" (enc_label e)
         (enc_label s.enc))

(** Secret-share a plaintext vector: [nvec - 1] uniform masks plus a
    correction vector. Individually each vector is uniform over the ring. *)
let share (ctx : Ctx.t) enc (x : Vec.t) =
  let n = Vec.length x in
  let v = Array.init ctx.nvec (fun _ -> Vec.zeros n) in
  (match enc with
  | Arith ->
      for i = 0 to n - 1 do
        let acc = ref 0 in
        for k = 1 to ctx.nvec - 1 do
          let r = Prg.word ctx.prg in
          v.(k).(i) <- r;
          acc := !acc + r
        done;
        v.(0).(i) <- x.(i) - !acc
      done
  | Bool ->
      for i = 0 to n - 1 do
        let acc = ref 0 in
        for k = 1 to ctx.nvec - 1 do
          let r = Prg.word ctx.prg in
          v.(k).(i) <- r;
          acc := !acc lxor r
        done;
        v.(0).(i) <- x.(i) lxor !acc
      done);
  { enc; v }

(** Reconstruct the plaintext (test/analyst-side; no protocol communication
    is implied — for the metered in-protocol opening see {!Mpc.open_}). *)
let reconstruct (s : shared) : Vec.t =
  let n = length s in
  let out = Array.make n 0 in
  (match s.enc with
  | Arith ->
      Array.iter (fun vk -> Vec.add_into out vk) s.v
  | Bool -> Array.iter (fun vk -> Vec.xor_into out vk) s.v);
  out

(** A sharing of the all-[c] constant vector with no randomness; used for
    public values entering the computation (the paper's [publicShare]). *)
let public (ctx : Ctx.t) enc n (c : int) =
  let v = Array.init ctx.nvec (fun k -> Vec.make n (if k = 0 then c else 0)) in
  { enc; v }

let public_vec (ctx : Ctx.t) enc (x : Vec.t) =
  let n = Vec.length x in
  let v =
    Array.init ctx.nvec (fun k -> if k = 0 then Vec.copy x else Vec.zeros n)
  in
  { enc; v }

let map_vectors f s = { s with v = Array.map f s.v }

let map2_vectors f a b =
  check_same_len a b;
  { enc = a.enc; v = Array.init (nvec a) (fun k -> f a.v.(k) b.v.(k)) }

let map3_vectors f a b c =
  check_same_len a b;
  check_same_len a c;
  { enc = a.enc; v = Array.init (nvec a) (fun k -> f a.v.(k) b.v.(k) c.v.(k)) }

let copy s = map_vectors Vec.copy s

(** Concatenate two shared vectors of the same encoding (used to batch
    independent secure operations into a single round). *)
let append a b =
  if a.enc <> b.enc then invalid_arg "Share.append: encoding mismatch";
  { enc = a.enc; v = Array.init (nvec a) (fun k -> Vec.concat2 a.v.(k) b.v.(k)) }

(** n-way concatenation: one offset-table pass per share vector
    ({!Orq_util.Vec.concat_many}) instead of the O(k^2) repeated-append
    chain — the packing step of cross-lane round fusion. *)
let concat_many (ss : shared array) : shared =
  match Array.length ss with
  | 0 -> invalid_arg "Share.concat_many: empty"
  | 1 -> ss.(0)
  | _ ->
      let e = ss.(0).enc in
      Array.iter
        (fun s ->
          if s.enc <> e then invalid_arg "Share.concat_many: encoding mismatch")
        ss;
      {
        enc = e;
        v =
          Array.init (nvec ss.(0)) (fun k ->
              Vec.concat_many (Array.map (fun s -> s.v.(k)) ss));
      }

let concat = function
  | [] -> invalid_arg "Share.concat: empty"
  | ss -> concat_many (Array.of_list ss)

(** Inverse of {!concat_many}: split back into pieces of the given lengths
    (which must sum to the input length). *)
let split_many (s : shared) (ns : int array) : shared array =
  let total = Array.fold_left ( + ) 0 ns in
  if total <> length s then
    invalid_arg
      (Printf.sprintf "Share.split_many: lengths sum to %d, sharing has %d"
         total (length s));
  let off = ref 0 in
  Array.map
    (fun n ->
      let pos = !off in
      off := !off + n;
      { s with v = Array.map (fun vk -> Vec.sub_range vk pos n) s.v })
    ns

let split2 s n =
  ( { s with v = Array.map (fun vk -> Array.sub vk 0 n) s.v },
    { s with v = Array.map (fun vk -> Array.sub vk n (Vec.length vk - n)) s.v } )

let sub_range s pos len =
  { s with v = Array.map (fun vk -> Array.sub vk pos len) s.v }

(** Gather rows by public indices (a local operation: all parties know the
    index map, as after an opened shuffle-comparison). *)
let gather s idx = { s with v = Array.map (fun vk -> Vec.gather vk idx) s.v }

let scatter s idx = { s with v = Array.map (fun vk -> Vec.scatter vk idx) s.v }

let rev s = { s with v = Array.map Vec.rev s.v }

(* ------------------------------------------------------------------ *)
(* Packed single-bit sharings (flag lanes)                             *)
(* ------------------------------------------------------------------ *)

type flags = { fv : Bits.t array }

let flags_length f = Bits.length f.fv.(0)
let flags_nvec f = Array.length f.fv

let check_same_flags_len a b =
  if flags_length a <> flags_length b then
    invalid_arg
      (Printf.sprintf "flags length mismatch: %d vs %d" (flags_length a)
         (flags_length b))

(** Pack a boolean sharing of single-bit values (flags in the LSB) into
    packed lanes. The key observation: xor is bitwise, so the LSB plane of
    the share vectors is by itself a valid GF(2) sharing of the flag
    bits — each lane packs independently, no communication, no resharing.
    Bits above the LSB are dropped; callers assert the values are
    single-bit (every flag producer in the engine masks to bit 0). *)
let pack_flags (s : shared) : flags =
  check_enc Bool s;
  { fv = Array.map Bits.pack s.v }

(** Inverse of {!pack_flags}: a boolean sharing holding 0/1 words. *)
let unpack_flags (f : flags) : shared =
  { enc = Bool; v = Array.map Bits.unpack f.fv }

(** Unpack each lane straight to mux masks (LSB replicated across the
    word): replication is GF(2)-linear, so extending per lane extends the
    secret. *)
let extend_flags (f : flags) : shared =
  { enc = Bool; v = Array.map Bits.extend f.fv }

let reconstruct_flags (f : flags) : Bits.t =
  let acc = Bits.copy f.fv.(0) in
  for k = 1 to Array.length f.fv - 1 do
    Bits.xor_into acc f.fv.(k)
  done;
  acc

(** Secret-share a packed bit vector: [nvec - 1] uniform packed masks
    (drawn per *word* — 63 flags per PRG call) plus a correction lane. *)
let share_flags (ctx : Ctx.t) (x : Bits.t) : flags =
  let n = Bits.length x in
  let fv = Array.make ctx.nvec x in
  let acc = Bits.copy x in
  for k = 1 to ctx.nvec - 1 do
    let r = Bits.random ctx.prg n in
    fv.(k) <- r;
    Bits.xor_into acc r
  done;
  fv.(0) <- acc;
  { fv }

let public_flags (ctx : Ctx.t) (x : Bits.t) : flags =
  {
    fv =
      Array.init ctx.nvec (fun k ->
          if k = 0 then Bits.copy x else Bits.create (Bits.length x));
  }

let copy_flags f = { fv = Array.map Bits.copy f.fv }

let flags_append a b =
  { fv = Array.init (flags_nvec a) (fun k -> Bits.append a.fv.(k) b.fv.(k)) }

let flags_concat_many (fs : flags array) : flags =
  match Array.length fs with
  | 0 -> invalid_arg "Share.flags_concat_many: empty"
  | 1 -> fs.(0)
  | _ ->
      {
        fv =
          Array.init (flags_nvec fs.(0)) (fun k ->
              Bits.concat_many (Array.map (fun f -> f.fv.(k)) fs));
      }

let flags_sub_range f pos len =
  { fv = Array.map (fun bk -> Bits.sub bk pos len) f.fv }

let flags_gather f idx = { fv = Array.map (fun bk -> Bits.gather bk idx) f.fv }
let flags_scatter f idx = { fv = Array.map (fun bk -> Bits.scatter bk idx) f.fv }

(** [update_rows dst idx src] returns [dst] with row [idx.(t)] replaced by
    row [t] of [src] (a local rearrangement under public indices, as used by
    sorting-network compare-exchange writebacks). *)
let update_rows (dst : shared) (idx : int array) (src : shared) : shared =
  let v =
    Array.mapi
      (fun k vk ->
        let o = Array.copy vk in
        Array.iteri (fun t i -> o.(i) <- src.v.(k).(t)) idx;
        o)
      dst.v
  in
  { dst with v }
