(** Secret-shared vectors.

    A [shared] value is a column of [n] secrets held jointly by the
    computing parties. Following §2.3, ORQ uses two encodings over the ring
    Z_2^ell:

    - [Arith]: the secret is the modular *sum* of the share vectors;
    - [Bool]: the secret is the bitwise *xor* of the share vectors.

    The lockstep simulation stores all share vectors side by side
    ([v.(k).(i)] is element [i] of share vector [k]); each protocol defines
    which party holds which vectors, and the {!Mpc} primitives only ever
    combine vectors in ways the owning parties could. Sharing and
    reconstruction here are the data-owner/analyst endpoints and are
    unmetered (they happen outside the computing-party protocol). *)

open Orq_util

type enc = Arith | Bool

let enc_label = function Arith -> "A" | Bool -> "B"

type shared = { enc : enc; v : Vec.t array }

let length s = Vec.length s.v.(0)
let nvec s = Array.length s.v
let enc s = s.enc

let check_same_len a b =
  if length a <> length b then
    invalid_arg
      (Printf.sprintf "shared length mismatch: %d vs %d" (length a) (length b))

let check_enc e s =
  if s.enc <> e then
    invalid_arg
      (Printf.sprintf "expected %s-shared value, got %s" (enc_label e)
         (enc_label s.enc))

(** Secret-share a plaintext vector: [nvec - 1] uniform masks plus a
    correction vector. Individually each vector is uniform over the ring. *)
let share (ctx : Ctx.t) enc (x : Vec.t) =
  let n = Vec.length x in
  let v = Array.init ctx.nvec (fun _ -> Vec.zeros n) in
  (match enc with
  | Arith ->
      for i = 0 to n - 1 do
        let acc = ref 0 in
        for k = 1 to ctx.nvec - 1 do
          let r = Prg.word ctx.prg in
          v.(k).(i) <- r;
          acc := !acc + r
        done;
        v.(0).(i) <- x.(i) - !acc
      done
  | Bool ->
      for i = 0 to n - 1 do
        let acc = ref 0 in
        for k = 1 to ctx.nvec - 1 do
          let r = Prg.word ctx.prg in
          v.(k).(i) <- r;
          acc := !acc lxor r
        done;
        v.(0).(i) <- x.(i) lxor !acc
      done);
  { enc; v }

(** Reconstruct the plaintext (test/analyst-side; no protocol communication
    is implied — for the metered in-protocol opening see {!Mpc.open_}). *)
let reconstruct (s : shared) : Vec.t =
  let n = length s in
  let out = Array.make n 0 in
  (match s.enc with
  | Arith ->
      Array.iter (fun vk -> Vec.add_into out vk) s.v
  | Bool -> Array.iter (fun vk -> Vec.xor_into out vk) s.v);
  out

(** A sharing of the all-[c] constant vector with no randomness; used for
    public values entering the computation (the paper's [publicShare]). *)
let public (ctx : Ctx.t) enc n (c : int) =
  let v = Array.init ctx.nvec (fun k -> Vec.make n (if k = 0 then c else 0)) in
  { enc; v }

let public_vec (ctx : Ctx.t) enc (x : Vec.t) =
  let n = Vec.length x in
  let v =
    Array.init ctx.nvec (fun k -> if k = 0 then Vec.copy x else Vec.zeros n)
  in
  { enc; v }

let map_vectors f s = { s with v = Array.map f s.v }

let map2_vectors f a b =
  check_same_len a b;
  { enc = a.enc; v = Array.init (nvec a) (fun k -> f a.v.(k) b.v.(k)) }

let map3_vectors f a b c =
  check_same_len a b;
  check_same_len a c;
  { enc = a.enc; v = Array.init (nvec a) (fun k -> f a.v.(k) b.v.(k) c.v.(k)) }

let copy s = map_vectors Vec.copy s

(** Concatenate two shared vectors of the same encoding (used to batch
    independent secure operations into a single round). *)
let append a b =
  if a.enc <> b.enc then invalid_arg "Share.append: encoding mismatch";
  { enc = a.enc; v = Array.init (nvec a) (fun k -> Vec.concat2 a.v.(k) b.v.(k)) }

(** n-way concatenation: one offset-table pass per share vector
    ({!Orq_util.Vec.concat_many}) instead of the O(k^2) repeated-append
    chain — the packing step of cross-lane round fusion. *)
let concat_many (ss : shared array) : shared =
  match Array.length ss with
  | 0 -> invalid_arg "Share.concat_many: empty"
  | 1 -> ss.(0)
  | _ ->
      let e = ss.(0).enc in
      Array.iter
        (fun s ->
          if s.enc <> e then invalid_arg "Share.concat_many: encoding mismatch")
        ss;
      {
        enc = e;
        v =
          Array.init (nvec ss.(0)) (fun k ->
              Vec.concat_many (Array.map (fun s -> s.v.(k)) ss));
      }

let concat = function
  | [] -> invalid_arg "Share.concat: empty"
  | ss -> concat_many (Array.of_list ss)

(** Inverse of {!concat_many}: split back into pieces of the given lengths
    (which must sum to the input length). *)
let split_many (s : shared) (ns : int array) : shared array =
  let total = Array.fold_left ( + ) 0 ns in
  if total <> length s then
    invalid_arg
      (Printf.sprintf "Share.split_many: lengths sum to %d, sharing has %d"
         total (length s));
  let off = ref 0 in
  Array.map
    (fun n ->
      let pos = !off in
      off := !off + n;
      { s with v = Array.map (fun vk -> Vec.sub_range vk pos n) s.v })
    ns

let split2 s n =
  ( { s with v = Array.map (fun vk -> Array.sub vk 0 n) s.v },
    { s with v = Array.map (fun vk -> Array.sub vk n (Vec.length vk - n)) s.v } )

let sub_range s pos len =
  { s with v = Array.map (fun vk -> Array.sub vk pos len) s.v }

(** Gather rows by public indices (a local operation: all parties know the
    index map, as after an opened shuffle-comparison). *)
let gather s idx = { s with v = Array.map (fun vk -> Vec.gather vk idx) s.v }

let scatter s idx = { s with v = Array.map (fun vk -> Vec.scatter vk idx) s.v }

let rev s = { s with v = Array.map Vec.rev s.v }

(* ------------------------------------------------------------------ *)
(* Packed single-bit sharings (flag lanes)                             *)
(* ------------------------------------------------------------------ *)

type flags = { fv : Bits.t array }

let flags_length f = Bits.length f.fv.(0)
let flags_nvec f = Array.length f.fv

let check_same_flags_len a b =
  if flags_length a <> flags_length b then
    invalid_arg
      (Printf.sprintf "flags length mismatch: %d vs %d" (flags_length a)
         (flags_length b))

(** Pack a boolean sharing of single-bit values (flags in the LSB) into
    packed lanes. The key observation: xor is bitwise, so the LSB plane of
    the share vectors is by itself a valid GF(2) sharing of the flag
    bits — each lane packs independently, no communication, no resharing.
    Bits above the LSB are dropped; callers assert the values are
    single-bit (every flag producer in the engine masks to bit 0). *)
let pack_flags (s : shared) : flags =
  check_enc Bool s;
  { fv = Array.map Bits.pack s.v }

(** Inverse of {!pack_flags}: a boolean sharing holding 0/1 words. *)
let unpack_flags (f : flags) : shared =
  { enc = Bool; v = Array.map Bits.unpack f.fv }

(** Unpack each lane straight to mux masks (LSB replicated across the
    word): replication is GF(2)-linear, so extending per lane extends the
    secret. *)
let extend_flags (f : flags) : shared =
  { enc = Bool; v = Array.map Bits.extend f.fv }

let reconstruct_flags (f : flags) : Bits.t =
  let acc = Bits.copy f.fv.(0) in
  for k = 1 to Array.length f.fv - 1 do
    Bits.xor_into acc f.fv.(k)
  done;
  acc

(** Secret-share a packed bit vector: [nvec - 1] uniform packed masks
    (drawn per *word* — 63 flags per PRG call) plus a correction lane. *)
let share_flags (ctx : Ctx.t) (x : Bits.t) : flags =
  let n = Bits.length x in
  let fv = Array.make ctx.nvec x in
  let acc = Bits.copy x in
  for k = 1 to ctx.nvec - 1 do
    let r = Bits.random ctx.prg n in
    fv.(k) <- r;
    Bits.xor_into acc r
  done;
  fv.(0) <- acc;
  { fv }

let public_flags (ctx : Ctx.t) (x : Bits.t) : flags =
  {
    fv =
      Array.init ctx.nvec (fun k ->
          if k = 0 then Bits.copy x else Bits.create (Bits.length x));
  }

let copy_flags f = { fv = Array.map Bits.copy f.fv }

let flags_append a b =
  { fv = Array.init (flags_nvec a) (fun k -> Bits.append a.fv.(k) b.fv.(k)) }

let flags_concat_many (fs : flags array) : flags =
  match Array.length fs with
  | 0 -> invalid_arg "Share.flags_concat_many: empty"
  | 1 -> fs.(0)
  | _ ->
      {
        fv =
          Array.init (flags_nvec fs.(0)) (fun k ->
              Bits.concat_many (Array.map (fun f -> f.fv.(k)) fs));
      }

let flags_sub_range f pos len =
  { fv = Array.map (fun bk -> Bits.sub bk pos len) f.fv }

let flags_gather f idx = { fv = Array.map (fun bk -> Bits.gather bk idx) f.fv }
let flags_scatter f idx = { fv = Array.map (fun bk -> Bits.scatter bk idx) f.fv }

(** [update_rows dst idx src] returns [dst] with row [idx.(t)] replaced by
    row [t] of [src] (a local rearrangement under public indices, as used by
    sorting-network compare-exchange writebacks). *)
let update_rows (dst : shared) (idx : int array) (src : shared) : shared =
  let v =
    Array.mapi
      (fun k vk ->
        let o = Array.copy vk in
        Array.iteri (fun t i -> o.(i) <- src.v.(k).(t)) idx;
        o)
      dst.v
  in
  { dst with v }

(* ------------------------------------------------------------------ *)
(* Chunked (out-of-core) sharings                                      *)
(* ------------------------------------------------------------------ *)

type chunked = { cenc : enc; cn : int; cv : Chunkvec.t array }

let chunked_length c = c.cn
let chunked_enc c = c.cenc
let chunked_nvec c = Array.length c.cv
let chunked_nchunks c = if c.cn = 0 then 0 else Chunkvec.nchunks c.cv.(0)
let chunked_tracked c = c.cn > 0 && Chunkvec.tracked c.cv.(0)
let chunked_chunk_len c i = Chunkvec.chunk_len c.cv.(0) i
let chunked_chunk_base c i = Chunkvec.chunk_base c.cv.(0) i

let check_enc_c e c =
  if c.cenc <> e then
    invalid_arg
      (Printf.sprintf "expected %s-shared value, got %s" (enc_label e)
         (enc_label c.cenc))

(** Wrap a monolithic sharing as one untracked chunk — no copy, no store
    accounting. A wrapped sharing visits every chunk-aware kernel exactly
    once, so the monolithic code path is a special case of the chunked
    one (identical values, PRG draw order and metered traffic). *)
let wrap (s : shared) : chunked =
  { cenc = s.enc; cn = length s; cv = Array.map Chunkvec.alias s.v }

(** Copy a monolithic sharing into budget-managed chunks. *)
let park (s : shared) : chunked =
  let n = length s in
  let cv =
    Array.map (fun vk -> Chunkvec.of_array vk) s.v
  in
  { cenc = s.enc; cn = n; cv }

(** Materialize a chunked sharing as monolithic vectors (zero-copy when
    the input is a single untracked chunk, i.e. a {!wrap} round trip). *)
let unpark (c : chunked) : shared =
  { enc = c.cenc; v = Array.map Chunkvec.to_array c.cv }

(** Pinned access to chunk [i] as an ordinary [shared] (the callback must
    treat it as read-only; every protocol kernel allocates its output). *)
let with_chunk_c (c : chunked) i (f : shared -> 'a) : 'a =
  let nv = Array.length c.cv in
  let rec go k acc =
    if k = nv then f { enc = c.cenc; v = Array.of_list (List.rev acc) }
    else Chunkvec.with_chunk c.cv.(k) i (fun a -> go (k + 1) (a :: acc))
  in
  go 0 []

(** [build_chunked ~like f] builds a chunked sharing with [like]'s length,
    chunk granularity and tracking; [f base len] must return a fresh
    [shared] of length [len] whose vectors are consumed as chunk payloads.
    Chunks become evictable as soon as they are produced. *)
let build_chunked ~(like : chunked) (f : int -> int -> shared) : chunked =
  let n = like.cn in
  let nv = Array.length like.cv in
  let rows = if n = 0 then 1 else Chunkvec.rows_of like.cv.(0) in
  let tracked = chunked_tracked like in
  let builders =
    Array.init nv (fun _ -> Chunkvec.Builder.create ~rows ~tracked n)
  in
  let step = if tracked then rows else max 1 n in
  let enc_ref = ref like.cenc in
  let pos = ref 0 in
  while !pos < n do
    let l = min step (n - !pos) in
    let s = f !pos l in
    if length s <> l then invalid_arg "Share.build_chunked: chunk length";
    enc_ref := s.enc;
    Array.iteri (fun k vk -> Chunkvec.Builder.push builders.(k) vk) s.v;
    pos := !pos + l
  done;
  { cenc = !enc_ref; cn = n; cv = Array.map Chunkvec.Builder.finish builders }

(** Chunkwise local map (e.g. a public xor): [f] must preserve length and
    must not communicate. *)
let map_chunks (f : shared -> shared) (c : chunked) : chunked =
  build_chunked ~like:c (fun pos len ->
      ignore pos;
      let i = pos / (if chunked_tracked c then Chunkvec.rows_of c.cv.(0) else max 1 c.cn) in
      with_chunk_c c i (fun s ->
          let o = f s in
          if length o <> len then invalid_arg "Share.map_chunks: length";
          o))

(** Secret-share a stream of plaintext chunks into budget-managed chunks:
    [get pos len] returns the plaintext slice. Sharing draws are
    element-major, so the result is byte-identical to sharing the whole
    vector at once. *)
let share_chunked (ctx : Ctx.t) enc ~n (get : int -> int -> Vec.t) : chunked =
  let rows = Chunkvec.chunk_rows () in
  let nv = ctx.Ctx.nvec in
  let builders =
    Array.init nv (fun _ -> Chunkvec.Builder.create ~rows ~tracked:true n)
  in
  let pos = ref 0 in
  while !pos < n do
    let l = min rows (n - !pos) in
    let s = share ctx enc (get !pos l) in
    Array.iteri (fun k vk -> Chunkvec.Builder.push builders.(k) vk) s.v;
    pos := !pos + l
  done;
  { cenc = enc; cn = n; cv = Array.map Chunkvec.Builder.finish builders }

(** Tracked sharing of a public value stream (no randomness). *)
let public_chunked (ctx : Ctx.t) enc ~n (get : int -> int -> Vec.t) : chunked =
  let rows = Chunkvec.chunk_rows () in
  let nv = ctx.Ctx.nvec in
  let builders =
    Array.init nv (fun _ -> Chunkvec.Builder.create ~rows ~tracked:true n)
  in
  let pos = ref 0 in
  while !pos < n do
    let l = min rows (n - !pos) in
    let s = public_vec ctx enc (get !pos l) in
    Array.iteri (fun k vk -> Chunkvec.Builder.push builders.(k) vk) s.v;
    pos := !pos + l
  done;
  { cenc = enc; cn = n; cv = Array.map Chunkvec.Builder.finish builders }

let append_c (a : chunked) (b : chunked) : chunked =
  if a.cenc <> b.cenc then invalid_arg "Share.append_c: encoding mismatch";
  {
    cenc = a.cenc;
    cn = a.cn + b.cn;
    cv = Array.init (Array.length a.cv) (fun k -> Chunkvec.append a.cv.(k) b.cv.(k));
  }

let sub_range_c (c : chunked) pos len : chunked =
  { c with cn = len; cv = Array.map (fun v -> Chunkvec.sub v pos len) c.cv }

let gather_c (c : chunked) (idx : int array) : chunked =
  {
    c with
    cn = Array.length idx;
    cv = Array.map (fun v -> Chunkvec.gather v idx) c.cv;
  }

let scatter_c (c : chunked) (idx : int array) : chunked =
  { c with cv = Array.map (fun v -> Chunkvec.scatter v idx) c.cv }

(** Deterministically release a chunked intermediate's store bytes and
    disk slots (the GC finalizer would get there eventually; hot loops
    should not wait for it). *)
let dispose_c (c : chunked) = Array.iter Chunkvec.dispose c.cv

let reconstruct_c (c : chunked) : Vec.t =
  let out = Array.make c.cn 0 in
  for i = 0 to chunked_nchunks c - 1 do
    with_chunk_c c i (fun s ->
        Array.blit (reconstruct s) 0 out (chunked_chunk_base c i) (length s))
  done;
  out
