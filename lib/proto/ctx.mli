(** Protocol context: which MPC protocol is running, its metering state,
    and the session randomness (§2.4). *)

(** The three supported protocols:
    - [Sh_dm]  — ABY, semi-honest, dishonest majority (2 parties, T = 1);
    - [Sh_hm]  — Araki et al., semi-honest, honest majority (3 parties);
    - [Mal_hm] — Fantastic Four, malicious with abort (4 parties). *)
type kind = Sh_dm | Sh_hm | Mal_hm

val all_kinds : kind list
val kind_label : kind -> string
val parties_of : kind -> int

val nvec_of : kind -> int
(** Number of share vectors in the sharing of one secret (2/3/4); in the
    replicated schemes each party holds a strict subset of them. *)

type tamper = party:int -> op:string -> int option
(** Fault injection for the maliciously secure protocol: return
    [Some delta] to corrupt the named party's contribution in the named
    operation ("mul", "open", "shuffle"). Semi-honest protocols ignore the
    hook — they do not verify. *)

type t = {
  kind : kind;
  parties : int;
  nvec : int;
  ell : int;  (** logical element bit width used for metering (paper: 64) *)
  perm_bits : int;  (** permutation index width (paper: l_sigma = 32) *)
  comm : Orq_net.Comm.t;  (** online-phase traffic *)
  preproc : Orq_net.Comm.t;  (** preprocessing traffic (dealer-simulated) *)
  prg : Orq_util.Prg.t;
  perm_prg : Orq_util.Prg.t;
      (** Dedicated stream for shuffle permutations, split off [prg] at
          creation — keeps shuffle-driven control flow independent of how
          many correlation words the protocols draw (packed vs unpacked
          flag lanes). *)
  mutable tamper : tamper option;
}

exception Abort of string
(** Raised when the maliciously secure protocol detects cheating
    (security with abort, §2.4). *)

val create : ?seed:int -> ?ell:int -> kind -> t

val reseed : t -> int -> unit
(** Restart the session randomness (protocol and permutation streams)
    from [seed], as if the context were freshly created with it; metering
    state is untouched. Makes an execution's transcript independent of
    execution history — the query service reseeds per query. *)

val with_label : t -> string -> (unit -> 'a) -> 'a
(** Run a thunk with an operator label pushed on the online meter's
    transcript label stack (popped on exit, exception-safe). Free when
    transcript recording is off. *)

val with_tamper : t -> tamper -> (unit -> 'a) -> 'a
(** Run a thunk with the fault-injection hook installed (restored after). *)

val tamper_delta : t -> party:int -> op:string -> int
(** The active hook's corruption for (party, op), or 0. *)
