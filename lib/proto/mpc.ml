(** Black-box MPC functionalities (§2.4): vectorized [+], [-], [×], [⊕],
    [∧], constants, and metered opening, instantiated for the three
    supported protocols. Everything above this module — circuits, shuffling,
    sorting, relational operators — uses only these functions, which is what
    makes ORQ protocol-agnostic.

    Metering conventions: [bits] counts traffic summed over all parties;
    every interactive primitive takes an optional [?width] (default
    [ctx.ell]) giving the logical bit width of the elements involved, so
    that e.g. an AND of single-bit validity flags is charged 1 bit per
    element rather than a full word. *)

open Orq_util
module Comm = Orq_net.Comm

type shared = Share.shared

let reconstruct = Share.reconstruct

(* ------------------------------------------------------------------ *)
(* Cross-lane round fusion toggle                                      *)
(* ------------------------------------------------------------------ *)

(* When enabled (the default), the [_many] primitives below execute all
   their lanes as one metered communication round; when disabled (env
   ORQ_NO_FUSION=1, or {!set_fusion}), they loop lane by lane, paying one
   round per lane. Gating lives at this level only: the circuits above
   call the [_many] entry points unconditionally, so the two modes tally
   *identical* bits and messages — and, because fused execution draws its
   dealer correlations per lane in lane order, identical PRG streams and
   opened values — differing only in rounds. *)
let fusion =
  ref
    (match Sys.getenv_opt "ORQ_NO_FUSION" with
    | Some ("1" | "true" | "yes" | "on") -> false
    | _ -> true)

let set_fusion b = fusion := b
let fusion_enabled () = !fusion

(* ------------------------------------------------------------------ *)
(* Bit-packing toggle                                                  *)
(* ------------------------------------------------------------------ *)

(* When enabled (the default), the flag primitives below ([band_f] etc.)
   run over packed single-bit lanes ({!Share.flags}): local work and
   randomness per 63-flag word instead of per element. When disabled (env
   ORQ_NO_BITPACK=1, or {!set_bitpack}), they unpack, run the ordinary
   word-per-flag primitives at width 1, and repack. Both modes charge
   byte-identical traffic (width-1 metering either way) and produce
   identical opened values — only the simulation's local compute and PRG
   draw differ. *)
let bitpack =
  ref
    (match Sys.getenv_opt "ORQ_NO_BITPACK" with
    | Some ("1" | "true" | "yes" | "on") -> false
    | _ -> true)

let set_bitpack b = bitpack := b
let bitpack_enabled () = !bitpack

(* Per-lane metering of a fused round: lane 0 opens the round, the other
   lanes piggyback their traffic on it, so bits/messages equal the sum of
   the unfused per-lane charges exactly. *)
let meter_lane (ctx : Ctx.t) i ~bits ~messages =
  if i = 0 then Comm.round ctx.comm ~bits ~messages
  else Comm.traffic ctx.comm ~bits ~messages

(* ------------------------------------------------------------------ *)
(* Parallel round tracks                                               *)
(* ------------------------------------------------------------------ *)

(** [fuse_rounds ctx thunks] runs the thunks in order (so the lockstep
    simulation, dealer draws and opened values are exactly those of the
    sequential execution) and then — when fusion is enabled — re-meters
    their online rounds as if the tracks had run concurrently: total
    rounds charged is the *maximum* track depth rather than the sum, while
    bits and messages keep their exact sequential tallies. The caller
    asserts the tracks are data-independent (no thunk reads another's
    result); under that assumption a real deployment interleaves their
    messages in shared network rounds. Nests freely. *)
let fuse_rounds (ctx : Ctx.t) (thunks : (unit -> 'a) array) : 'a array =
  if (not !fusion) || Array.length thunks <= 1 then
    Array.map (fun f -> f ()) thunks
  else begin
    let total = ref 0 and deepest = ref 0 in
    let res =
      Array.map
        (fun f ->
          let before = ctx.Ctx.comm.Comm.rounds in
          let r = f () in
          let d = ctx.Ctx.comm.Comm.rounds - before in
          total := !total + d;
          if d > !deepest then deepest := d;
          r)
        thunks
    in
    Comm.refund_rounds ctx.comm (!total - !deepest);
    res
  end

(* ------------------------------------------------------------------ *)
(* Input / constants (data-owner side; unmetered)                      *)
(* ------------------------------------------------------------------ *)

let share_a ctx x = Share.share ctx Arith x
let share_b ctx x = Share.share ctx Bool x
let public_a ctx n c = Share.public ctx Arith n c
let public_b ctx n c = Share.public ctx Bool n c
let public_a_vec ctx x = Share.public_vec ctx Arith x
let public_b_vec ctx x = Share.public_vec ctx Bool x

(* ------------------------------------------------------------------ *)
(* Local linear operations                                             *)
(* ------------------------------------------------------------------ *)

let add a b =
  Share.check_enc Arith a;
  Share.map2_vectors Vec.add a b

let sub a b =
  Share.check_enc Arith a;
  Share.map2_vectors Vec.sub a b

let neg a =
  Share.check_enc Arith a;
  Share.map_vectors Vec.neg a

(** Add a public constant: affects a single share vector so the sum moves
    by exactly the constant. *)
let add_pub a c =
  Share.check_enc Arith a;
  { a with Share.v = Array.mapi (fun k vk -> if k = 0 then Vec.add_scalar vk c else Vec.copy vk) a.Share.v }

let add_pub_vec a (c : Vec.t) =
  Share.check_enc Arith a;
  { a with Share.v = Array.mapi (fun k vk -> if k = 0 then Vec.add vk c else Vec.copy vk) a.Share.v }

(** Multiply by a public constant: scales every share vector (linear). *)
let mul_pub a c =
  Share.check_enc Arith a;
  Share.map_vectors (fun vk -> Vec.mul_scalar vk c) a

let mul_pub_vec a (c : Vec.t) =
  Share.check_enc Arith a;
  Share.map_vectors (fun vk -> Vec.mul vk c) a

let xor a b =
  Share.check_enc Bool a;
  Share.map2_vectors Vec.xor a b

let xor_pub a c =
  Share.check_enc Bool a;
  { a with Share.v = Array.mapi (fun k vk -> if k = 0 then Vec.xor_scalar vk c else Vec.copy vk) a.Share.v }

let xor_pub_vec a (c : Vec.t) =
  Share.check_enc Bool a;
  { a with Share.v = Array.mapi (fun k vk -> if k = 0 then Vec.xor vk c else Vec.copy vk) a.Share.v }

(** Bitwise AND with a public mask (linear over GF(2)). *)
let and_mask a m =
  Share.check_enc Bool a;
  Share.map_vectors (fun vk -> Vec.and_scalar vk m) a

let and_mask_vec a (m : Vec.t) =
  Share.check_enc Bool a;
  Share.map_vectors (fun vk -> Vec.band vk m) a

let lshift a k =
  Share.check_enc Bool a;
  Share.map_vectors (fun vk -> Vec.shift_left vk k) a

let rshift a k =
  Share.check_enc Bool a;
  Share.map_vectors (fun vk -> Vec.shift_right vk k) a

(** Bitwise NOT over the full word (circuits mask to their logical width). *)
let bnot a = xor_pub a Ring.ones

(** Isolate bit [k] of each element into the LSB — the fused form of
    [and_mask (rshift a k) 1], one pass per share vector (linear over
    GF(2): both shift and mask are). Radixsort's bit extraction. *)
let extract_bit a k =
  Share.check_enc Bool a;
  Share.map_vectors (fun vk -> Vec.bit_extract vk k) a

(** Replicate the LSB of each element across the whole word — a linear
    operation per share vector (each output bit equals the input LSB), used
    to turn a single-bit condition into a mux mask. *)
let extend_bit a =
  Share.check_enc Bool a;
  Share.map_vectors (fun vk -> Vec.map (fun x -> -(x land 1)) vk) a

(* ------------------------------------------------------------------ *)
(* Opening (reveal to all computing parties)                           *)
(* ------------------------------------------------------------------ *)

let hash_bits = 256 (* digest size for Mal-HM redundant delivery *)

(* One lane's opening charge: value traffic per protocol, plus (Mal-HM)
   one digest per reconstructed vector and the redundant-delivery check: a
   tampering sender is caught because the verifier party's digest of the
   true share vector cannot match. *)
let meter_open_lane (ctx : Ctx.t) i ~w ~n =
  match ctx.kind with
  | Sh_dm -> meter_lane ctx i ~bits:(2 * w * n) ~messages:2
  | Sh_hm -> meter_lane ctx i ~bits:(3 * w * n) ~messages:3
  | Mal_hm ->
      meter_lane ctx i ~bits:(4 * ((w * n) + hash_bits)) ~messages:8;
      for p = 0 to ctx.parties - 1 do
        if Ctx.tamper_delta ctx ~party:p ~op:"open" <> 0 then
          raise (Ctx.Abort "open: share/hash mismatch detected")
      done

(** Open a shared vector to all parties. Under [Mal_hm] every reconstructed
    vector is delivered redundantly (value + digest from distinct parties);
    an injected corruption of the sender therefore raises {!Ctx.Abort}. *)
let open_ ?width (ctx : Ctx.t) (s : shared) : Vec.t =
  let w = Option.value width ~default:ctx.ell in
  let x = Share.reconstruct s in
  meter_open_lane ctx 0 ~w ~n:(Share.length s);
  x

(** Open several independent shared vectors in one fused round (each lane
    keeps its own width charge; under [ORQ_NO_FUSION] the lanes open one
    round apiece, with identical bits/messages). *)
let open_many ?widths (ctx : Ctx.t) (ss : shared array) : Vec.t array =
  let k = Array.length ss in
  let ws =
    match widths with
    | None -> Array.make k ctx.ell
    | Some ws ->
        if Array.length ws <> k then invalid_arg "Mpc.open_many: widths length";
        ws
  in
  if k <= 1 || not !fusion then
    Array.mapi (fun i s -> open_ ~width:ws.(i) ctx s) ss
  else begin
    let outs = Array.map Share.reconstruct ss in
    Array.iteri (fun i s -> meter_open_lane ctx i ~w:ws.(i) ~n:(Share.length s)) ss;
    outs
  end

(* ------------------------------------------------------------------ *)
(* Multiplication / AND                                                *)
(* ------------------------------------------------------------------ *)

(* Zero sharing: alpha_k = r_k (-|xor) r_{k+1 mod nvec}, so the alphas sum
   (or xor) to zero. In the real protocols these come from pairwise PRG
   seeds; the lockstep simulation draws them from the session PRG — in the
   same order as before the in-place rewrite, so PRG streams are unchanged.
   The combination is computed in place over the PRG vectors (plus one
   saved copy of r_0 for the wrap-around term): nvec + 1 allocations
   instead of 2·nvec. *)
let zero_sharing (ctx : Ctx.t) (enc : Share.enc) n =
  let r = Array.init ctx.nvec (fun _ -> Prg.words ctx.prg n) in
  let r0 = Vec.copy r.(0) in
  for k = 0 to ctx.nvec - 1 do
    let r' = if k = ctx.nvec - 1 then r0 else r.(k + 1) in
    match enc with
    | Arith -> Vec.sub_into r.(k) r'
    | Bool -> Vec.xor_into r.(k) r'
  done;
  r

(* Opened difference d = x - t (Arith) or x ⊕ t (Bool) without
   materializing the intermediate sharing — in Beaver the masked
   difference is only ever reconstructed, so fold the per-vector
   differences straight into the opened accumulator: one allocation
   instead of nvec + 1. *)
let open_diff (enc : Share.enc) (x : shared) (t : shared) : Vec.t =
  let n = Share.length x in
  let out = Vec.zeros n in
  for k = 0 to Array.length x.Share.v - 1 do
    match enc with
    | Arith -> Vec.sub_acc_into out x.Share.v.(k) t.Share.v.(k)
    | Bool -> Vec.xor_acc_into out x.Share.v.(k) t.Share.v.(k)
  done;
  out

(* 2PC Beaver multiplication: open d = x - a and e = y - b (one batched
   round), then z = c + d*b + e*a + d*e with the public d*e folded into one
   share vector. The boolean case is identical over GF(2). Recombination is
   the fused one-pass {!Vec.beaver_arith}/{!Vec.beaver_bool} kernel: the
   whole multiplication allocates d, e and the nvec result vectors. *)
let beaver_mul (ctx : Ctx.t) enc w (x : shared) (y : shared) : shared =
  let n = Share.length x in
  let { Dealer.ta; tb; tc } = Dealer.beaver ctx enc n in
  (* both openings batched: one round, each party sends both its shares *)
  Comm.round ctx.comm ~bits:(2 * 2 * w * n) ~messages:2;
  let d = open_diff enc x ta and e = open_diff enc y tb in
  let v =
    Array.init ctx.nvec (fun k ->
        let with_de = k = 0 in
        match (enc : Share.enc) with
        | Arith ->
            Vec.beaver_arith ~tc:tc.Share.v.(k) ~d ~tb:tb.Share.v.(k) ~e
              ~ta:ta.Share.v.(k) ~with_de
        | Bool ->
            Vec.beaver_bool ~tc:tc.Share.v.(k) ~d ~tb:tb.Share.v.(k) ~e
              ~ta:ta.Share.v.(k) ~with_de)
  in
  { Share.enc; v }

(* 3PC replicated multiplication (Araki et al.): party i computes
   z_i = x_i y_i + x_i y_{i+1} + x_{i+1} y_i + alpha_i and sends it to its
   neighbour to restore replication: one round, one ring element per party.
   The cross terms are accumulated directly into the (freshly generated)
   alpha vectors by the fused {!Vec.rep3_arith_into} kernel — no
   per-term intermediates. *)
let rep3_mul (ctx : Ctx.t) enc w (x : shared) (y : shared) : shared =
  let n = Share.length x in
  let alpha = zero_sharing ctx enc n in
  let xv = x.Share.v and yv = y.Share.v in
  for i = 0 to 2 do
    let j = (i + 1) mod 3 in
    match (enc : Share.enc) with
    | Arith ->
        Vec.rep3_arith_into alpha.(i) ~xi:xv.(i) ~yi:yv.(i) ~xj:xv.(j)
          ~yj:yv.(j)
    | Bool ->
        Vec.rep3_bool_into alpha.(i) ~xi:xv.(i) ~yi:yv.(i) ~xj:xv.(j)
          ~yj:yv.(j)
  done;
  Comm.round ctx.comm ~bits:(3 * w * n) ~messages:3;
  { Share.enc; v = alpha }

(* 4PC Fantastic-Four-style multiplication. Each cross term x_i y_j is
   computable by the >= 2 parties holding both shares; the lowest-index
   eligible party contributes it and the next one verifies it (value vs
   digest), so a corrupted contribution aborts. Contributions are
   rerandomized into a fresh 4-vector sharing. Metered at 3 ring elements
   per party per multiplication (consistent with the paper's Table 7
   Mal-HM/SH-HM bandwidth ratio). *)
let rep4_mul (ctx : Ctx.t) enc w (x : shared) (y : shared) : shared =
  let n = Share.length x in
  let xv = x.Share.v and yv = y.Share.v in
  (* contributions accumulate straight into the fresh alpha vectors via the
     fused multiply-accumulate kernels: zero-sharing noise plus cross terms
     in nvec + 1 allocations total, no per-term intermediates *)
  let alpha = zero_sharing ctx enc n in
  for i = 0 to 3 do
    for j = 0 to 3 do
      (* parties eligible for term (i, j): those holding x_i and y_j,
         i.e. everyone except parties i and j *)
      let eligible =
        List.filter (fun p -> p <> i && p <> j) [ 0; 1; 2; 3 ]
      in
      match eligible with
      | assignee :: verifier :: _ ->
          let delta = Ctx.tamper_delta ctx ~party:assignee ~op:"mul" in
          if delta <> 0 then
            (* the verifier recomputes the same term from its own copies of
               x_i and y_j; any additive corruption mismatches *)
            raise (Ctx.Abort "mul: cross-term verification failed");
          ignore verifier;
          (match (enc : Share.enc) with
          | Arith -> Vec.mul_add_into alpha.(assignee) xv.(i) yv.(j)
          | Bool -> Vec.xor_band_into alpha.(assignee) xv.(i) yv.(j))
      | _ -> assert false
    done
  done;
  Comm.round ctx.comm ~bits:(4 * 3 * w * n) ~messages:12;
  { Share.enc; v = alpha }

(* ------------------------------------------------------------------ *)
(* Fused multi-lane multiplication                                     *)
(*                                                                     *)
(* Each [_many] core runs k independent multiplications as one metered  *)
(* round. Dealer correlations (and zero-sharing randomness) are drawn   *)
(* per lane in lane order — exactly the stream k separate calls would   *)
(* consume — then the lanes are packed with {!Share.concat_many} so the *)
(* local recombination kernels make one pass over one long vector.      *)
(* Metering is per lane ({!meter_lane}), so bits and messages equal the *)
(* unfused totals and only the round count drops to one.                *)
(* ------------------------------------------------------------------ *)

let lane_lengths (lanes : (shared * shared * int) array) =
  Array.map (fun (x, _, _) -> Share.length x) lanes

let beaver_mul_many (ctx : Ctx.t) enc (lanes : (shared * shared * int) array) :
    shared array =
  let ns = lane_lengths lanes in
  let triples =
    Array.mapi (fun i (_, _, _) -> Dealer.beaver ctx enc ns.(i)) lanes
  in
  Array.iteri
    (fun i (_, _, w) -> meter_lane ctx i ~bits:(2 * 2 * w * ns.(i)) ~messages:2)
    lanes;
  let bx = Share.concat_many (Array.map (fun (x, _, _) -> x) lanes) in
  let by = Share.concat_many (Array.map (fun (_, y, _) -> y) lanes) in
  let ta = Share.concat_many (Array.map (fun t -> t.Dealer.ta) triples) in
  let tb = Share.concat_many (Array.map (fun t -> t.Dealer.tb) triples) in
  let tc = Share.concat_many (Array.map (fun t -> t.Dealer.tc) triples) in
  let d = open_diff enc bx ta and e = open_diff enc by tb in
  let v =
    Array.init ctx.nvec (fun k ->
        let with_de = k = 0 in
        match (enc : Share.enc) with
        | Arith ->
            Vec.beaver_arith ~tc:tc.Share.v.(k) ~d ~tb:tb.Share.v.(k) ~e
              ~ta:ta.Share.v.(k) ~with_de
        | Bool ->
            Vec.beaver_bool ~tc:tc.Share.v.(k) ~d ~tb:tb.Share.v.(k) ~e
              ~ta:ta.Share.v.(k) ~with_de)
  in
  Share.split_many { Share.enc; v } ns

let rep3_mul_many (ctx : Ctx.t) enc (lanes : (shared * shared * int) array) :
    shared array =
  let ns = lane_lengths lanes in
  let alphas = Array.map (fun n -> zero_sharing ctx enc n) ns in
  let alpha =
    Array.init ctx.nvec (fun k ->
        Vec.concat_many (Array.map (fun a -> a.(k)) alphas))
  in
  let bx = Share.concat_many (Array.map (fun (x, _, _) -> x) lanes) in
  let by = Share.concat_many (Array.map (fun (_, y, _) -> y) lanes) in
  let xv = bx.Share.v and yv = by.Share.v in
  for i = 0 to 2 do
    let j = (i + 1) mod 3 in
    match (enc : Share.enc) with
    | Arith ->
        Vec.rep3_arith_into alpha.(i) ~xi:xv.(i) ~yi:yv.(i) ~xj:xv.(j)
          ~yj:yv.(j)
    | Bool ->
        Vec.rep3_bool_into alpha.(i) ~xi:xv.(i) ~yi:yv.(i) ~xj:xv.(j)
          ~yj:yv.(j)
  done;
  Array.iteri
    (fun i (_, _, w) -> meter_lane ctx i ~bits:(3 * w * ns.(i)) ~messages:3)
    lanes;
  Share.split_many { Share.enc; v = alpha } ns

let rep4_mul_many (ctx : Ctx.t) enc (lanes : (shared * shared * int) array) :
    shared array =
  let ns = lane_lengths lanes in
  let alphas = Array.map (fun n -> zero_sharing ctx enc n) ns in
  let alpha =
    Array.init ctx.nvec (fun k ->
        Vec.concat_many (Array.map (fun a -> a.(k)) alphas))
  in
  let bx = Share.concat_many (Array.map (fun (x, _, _) -> x) lanes) in
  let by = Share.concat_many (Array.map (fun (_, y, _) -> y) lanes) in
  let xv = bx.Share.v and yv = by.Share.v in
  for i = 0 to 3 do
    for j = 0 to 3 do
      let eligible = List.filter (fun p -> p <> i && p <> j) [ 0; 1; 2; 3 ] in
      match eligible with
      | assignee :: verifier :: _ ->
          let delta = Ctx.tamper_delta ctx ~party:assignee ~op:"mul" in
          if delta <> 0 then
            raise (Ctx.Abort "mul: cross-term verification failed");
          ignore verifier;
          (match (enc : Share.enc) with
          | Arith -> Vec.mul_add_into alpha.(assignee) xv.(i) yv.(j)
          | Bool -> Vec.xor_band_into alpha.(assignee) xv.(i) yv.(j))
      | _ -> assert false
    done
  done;
  Array.iteri
    (fun i (_, _, w) -> meter_lane ctx i ~bits:(4 * 3 * w * ns.(i)) ~messages:12)
    lanes;
  Share.split_many { Share.enc; v = alpha } ns

let mul_core (ctx : Ctx.t) enc w x y =
  match ctx.kind with
  | Ctx.Sh_dm -> beaver_mul ctx enc w x y
  | Ctx.Sh_hm -> rep3_mul ctx enc w x y
  | Ctx.Mal_hm -> rep4_mul ctx enc w x y

let mul_core_many (ctx : Ctx.t) enc (lanes : (shared * shared * int) array) :
    shared array =
  if Array.length lanes <= 1 || not !fusion then
    Array.map (fun (x, y, w) -> mul_core ctx enc w x y) lanes
  else
    match ctx.kind with
    | Ctx.Sh_dm -> beaver_mul_many ctx enc lanes
    | Ctx.Sh_hm -> rep3_mul_many ctx enc lanes
    | Ctx.Mal_hm -> rep4_mul_many ctx enc lanes

let check_lanes name enc (xs : shared array) (ys : shared array) widths =
  let k = Array.length xs in
  if Array.length ys <> k then invalid_arg (name ^ ": operand arrays differ");
  (match widths with
  | Some ws when Array.length ws <> k -> invalid_arg (name ^ ": widths length")
  | _ -> ());
  Array.iteri
    (fun i x ->
      Share.check_enc enc x;
      Share.check_enc enc ys.(i);
      Share.check_same_len x ys.(i))
    xs

let make_lanes (ctx : Ctx.t) xs ys widths =
  Array.mapi
    (fun i x ->
      (x, ys.(i), match widths with Some ws -> ws.(i) | None -> ctx.ell))
    xs

(* Debug-mode width-sanity check: an interactive primitive whose width
   defaulted to ell while both operands reconstruct to single-bit vectors
   almost certainly means a missing [?width] at the call site — the
   modeled traffic would be overcharged ~64x. Requires n >= 8 and at
   least one set bit on each side so small or degenerate vectors (e.g. an
   all-invalid mask ANDed with data) cannot trip it. Reconstruction makes
   this O(nvec * n), so it runs only under {!Debug.set_checks}. *)
let check_width_sane op width (x : shared) (y : shared) =
  if width = None && Debug.enabled () then begin
    let single_bit s =
      let v = Share.reconstruct s in
      Vec.length v >= 8
      &&
      let all01 = ref true and any1 = ref false in
      Array.iter
        (fun e -> if e = 1 then any1 := true else if e <> 0 then all01 := false)
        v;
      !all01 && !any1
    in
    if single_bit x && single_bit y then
      invalid_arg
        (op
       ^ ": width defaulted to ell but both operands are single-bit vectors \
          — missing ?width:1 at the call site?")
  end

let check_width_sane_many op widths (xs : shared array) (ys : shared array) =
  if widths = None && Debug.enabled () then
    Array.iteri (fun i x -> check_width_sane op None x ys.(i)) xs

(** Secure elementwise multiplication of arithmetic shares. *)
let mul ?width (ctx : Ctx.t) (x : shared) (y : shared) : shared =
  Share.check_enc Arith x;
  Share.check_enc Arith y;
  Share.check_same_len x y;
  check_width_sane "Mpc.mul" width x y;
  let w = Option.value width ~default:ctx.ell in
  mul_core ctx Arith w x y

(** Secure elementwise bitwise AND of boolean shares. *)
let band ?width (ctx : Ctx.t) (x : shared) (y : shared) : shared =
  Share.check_enc Bool x;
  Share.check_enc Bool y;
  Share.check_same_len x y;
  check_width_sane "Mpc.band" width x y;
  let w = Option.value width ~default:ctx.ell in
  mul_core ctx Bool w x y

(** [mul_many ctx xs ys] multiplies k independent lane pairs (possibly of
    different lengths and widths) in one metered round. *)
let mul_many ?widths (ctx : Ctx.t) (xs : shared array) (ys : shared array) :
    shared array =
  check_lanes "Mpc.mul_many" Arith xs ys widths;
  check_width_sane_many "Mpc.mul_many" widths xs ys;
  mul_core_many ctx Arith (make_lanes ctx xs ys widths)

(** [band_many ctx xs ys]: k independent ANDs in one metered round. *)
let band_many ?widths (ctx : Ctx.t) (xs : shared array) (ys : shared array) :
    shared array =
  check_lanes "Mpc.band_many" Bool xs ys widths;
  check_width_sane_many "Mpc.band_many" widths xs ys;
  mul_core_many ctx Bool (make_lanes ctx xs ys widths)

(** OR via De Morgan / inclusion–exclusion: x ∨ y = x ⊕ y ⊕ (x ∧ y); the
    two local xors are fused into one {!Vec.xor3} pass per share vector. *)
let bor ?width ctx x y =
  let z = band ?width ctx x y in
  Share.map3_vectors Vec.xor3 x y z

(** k independent ORs in one metered round (one fused AND plus the local
    xor3 recombination per lane). *)
let bor_many ?widths (ctx : Ctx.t) (xs : shared array) (ys : shared array) :
    shared array =
  let zs = band_many ?widths ctx xs ys in
  Array.mapi (fun i z -> Share.map3_vectors Vec.xor3 xs.(i) ys.(i) z) zs

(* ------------------------------------------------------------------ *)
(* Packed single-bit flag lanes                                        *)
(*                                                                     *)
(* The same three protocol cores as above, specialized to GF(2) over    *)
(* packed words ({!Share.flags}): each 63-flag word is one ring element *)
(* of the boolean sharing, so Beaver triples, zero sharings and daBit   *)
(* masks are drawn per word — 63x fewer PRG calls and correlation       *)
(* material — and the local recombination kernels ({!Vec.beaver_bool},  *)
(* {!Vec.rep3_bool_into}, {!Vec.xor_band_into}) run unchanged over the  *)
(* word arrays. Metering stays per *element* at width 1, byte-identical *)
(* to the unpacked primitives; with the gate off every entry point      *)
(* falls back to unpack -> width-1 primitive -> pack.                   *)
(* ------------------------------------------------------------------ *)

(** Lanewise xor of packed flag sharings (local, linear). *)
let xor_f (a : Share.flags) (b : Share.flags) : Share.flags =
  Share.check_same_flags_len a b;
  {
    Share.fv =
      Array.init (Share.flags_nvec a) (fun k ->
          Bits.xor a.Share.fv.(k) b.Share.fv.(k));
  }

(** Flip every flag (xor with public all-ones: one lane's bits invert). *)
let bnot_f (a : Share.flags) : Share.flags =
  {
    Share.fv =
      Array.mapi
        (fun k bk -> if k = 0 then Bits.bnot bk else Bits.copy bk)
        a.Share.fv;
  }

(** Extract bit [k] of each element of a boolean sharing straight into
    packed flag lanes — the fused radix-digit extraction ({!extract_bit}
    composed with {!Share.pack_flags}, one pass, no 0/1 intermediate). *)
let extract_bit_f (a : shared) k : Share.flags =
  Share.check_enc Bool a;
  { Share.fv = Array.map (fun vk -> Bits.pack_bit vk k) a.Share.v }

(* Packed zero sharing: alpha_k = r_k xor r_{k+1 mod nvec} over packed
   words — the per-word twin of {!zero_sharing}. *)
let zero_sharing_f (ctx : Ctx.t) n : Bits.t array =
  let r = Array.init ctx.nvec (fun _ -> Bits.random ctx.prg n) in
  let r0 = Bits.copy r.(0) in
  for k = 0 to ctx.nvec - 1 do
    let r' = if k = ctx.nvec - 1 then r0 else r.(k + 1) in
    Bits.xor_into r.(k) r'
  done;
  r

(* d = x ⊕ t folded across lanes directly on the packed words (the flag
   twin of {!open_diff}). *)
let open_diff_f (x : Share.flags) (t : Share.flags) : Vec.t =
  let out = Vec.zeros (Bits.num_words x.Share.fv.(0)) in
  for k = 0 to Share.flags_nvec x - 1 do
    Vec.xor_acc_into out (Bits.words x.Share.fv.(k)) (Bits.words t.Share.fv.(k))
  done;
  out

(* One packed AND lane under the protocol cores; [lane] indexes the fused
   round ({!meter_lane}), and the charges are exactly the unpacked
   width-1 charges. *)
let band_f_lane (ctx : Ctx.t) lane (x : Share.flags) (y : Share.flags) :
    Share.flags =
  let n = Share.flags_length x in
  match ctx.kind with
  | Ctx.Sh_dm ->
      let { Dealer.fta; ftb; ftc } = Dealer.beaver_flags ctx n in
      meter_lane ctx lane ~bits:(2 * 2 * n) ~messages:2;
      let d = open_diff_f x fta and e = open_diff_f y ftb in
      {
        Share.fv =
          Array.init ctx.nvec (fun k ->
              Bits.of_words n
                (Vec.beaver_bool
                   ~tc:(Bits.words ftc.Share.fv.(k))
                   ~d
                   ~tb:(Bits.words ftb.Share.fv.(k))
                   ~e
                   ~ta:(Bits.words fta.Share.fv.(k))
                   ~with_de:(k = 0)));
      }
  | Ctx.Sh_hm ->
      let alpha = zero_sharing_f ctx n in
      for i = 0 to 2 do
        let j = (i + 1) mod 3 in
        Vec.rep3_bool_into
          (Bits.words alpha.(i))
          ~xi:(Bits.words x.Share.fv.(i))
          ~yi:(Bits.words y.Share.fv.(i))
          ~xj:(Bits.words x.Share.fv.(j))
          ~yj:(Bits.words y.Share.fv.(j));
      done;
      meter_lane ctx lane ~bits:(3 * n) ~messages:3;
      { Share.fv = alpha }
  | Ctx.Mal_hm ->
      let alpha = zero_sharing_f ctx n in
      for i = 0 to 3 do
        for j = 0 to 3 do
          let eligible =
            List.filter (fun p -> p <> i && p <> j) [ 0; 1; 2; 3 ]
          in
          match eligible with
          | assignee :: _ ->
              if Ctx.tamper_delta ctx ~party:assignee ~op:"mul" <> 0 then
                raise (Ctx.Abort "mul: cross-term verification failed");
              Vec.xor_band_into
                (Bits.words alpha.(assignee))
                (Bits.words x.Share.fv.(i))
                (Bits.words y.Share.fv.(j))
          | _ -> assert false
        done
      done;
      meter_lane ctx lane ~bits:(4 * 3 * n) ~messages:12;
      { Share.fv = alpha }

(** Secure AND of packed flag sharings — one round, width-1 charges. *)
let band_f (ctx : Ctx.t) (x : Share.flags) (y : Share.flags) : Share.flags =
  Share.check_same_flags_len x y;
  if not !bitpack then
    Share.pack_flags
      (band ~width:1 ctx (Share.unpack_flags x) (Share.unpack_flags y))
  else band_f_lane ctx 0 x y

(** k independent packed ANDs in one fused round (lane by lane under
    [ORQ_NO_FUSION], with identical bits/messages). *)
let band_f_many (ctx : Ctx.t) (xs : Share.flags array)
    (ys : Share.flags array) : Share.flags array =
  let k = Array.length xs in
  if Array.length ys <> k then
    invalid_arg "Mpc.band_f_many: operand arrays differ";
  Array.iteri (fun i x -> Share.check_same_flags_len x ys.(i)) xs;
  if k = 0 then [||]
  else if not !bitpack then
    Array.map Share.pack_flags
      (band_many
         ~widths:(Array.make k 1)
         ctx
         (Array.map Share.unpack_flags xs)
         (Array.map Share.unpack_flags ys))
  else if k = 1 || not !fusion then
    Array.map2 (fun x y -> band_f_lane ctx 0 x y) xs ys
  else Array.mapi (fun i x -> band_f_lane ctx i x ys.(i)) xs

(** OR over packed flags: x ⊕ y ⊕ (x ∧ y), one packed AND plus a fused
    lanewise xor3 over the words. *)
let bor_f (ctx : Ctx.t) (x : Share.flags) (y : Share.flags) : Share.flags =
  let z = band_f ctx x y in
  {
    Share.fv =
      Array.init (Share.flags_nvec x) (fun k ->
          Bits.xor3 x.Share.fv.(k) y.Share.fv.(k) z.Share.fv.(k));
  }

(** k independent packed ORs in one fused round. *)
let bor_f_many (ctx : Ctx.t) (xs : Share.flags array) (ys : Share.flags array)
    : Share.flags array =
  let zs = band_f_many ctx xs ys in
  Array.mapi
    (fun i z ->
      {
        Share.fv =
          Array.init (Share.flags_nvec z) (fun k ->
              Bits.xor3 xs.(i).Share.fv.(k) ys.(i).Share.fv.(k) z.Share.fv.(k));
      })
    zs

(** Packed mux over flag-valued columns: [b ? y : x] = x ⊕ (b ∧ (x⊕y)) —
    one packed AND round. *)
let mux_f (ctx : Ctx.t) (b : Share.flags) (x : Share.flags)
    (y : Share.flags) : Share.flags =
  xor_f x (band_f ctx b (xor_f x y))

(** Open a packed flag sharing; metered exactly like [open_ ~width:1]. *)
let open_f (ctx : Ctx.t) (f : Share.flags) : Bits.t =
  let x = Share.reconstruct_flags f in
  meter_open_lane ctx 0 ~w:1 ~n:(Share.flags_length f);
  x

(** Open several packed flag sharings in one fused round. *)
let open_f_many (ctx : Ctx.t) (fs : Share.flags array) : Bits.t array =
  if Array.length fs <= 1 || not !fusion then Array.map (open_f ctx) fs
  else begin
    let outs = Array.map Share.reconstruct_flags fs in
    Array.iteri
      (fun i f -> meter_open_lane ctx i ~w:1 ~n:(Share.flags_length f))
      fs;
    outs
  end

(** Rerandomize packed flag lanes without changing the secret (traffic
    metered by the caller, like {!reshare_unmetered}) — zero-sharing noise
    drawn per word. *)
let reshare_flags_unmetered (ctx : Ctx.t) (f : Share.flags) : Share.flags =
  let alpha = zero_sharing_f ctx (Share.flags_length f) in
  Array.iteri (fun k bk -> Bits.xor_into alpha.(k) bk) f.Share.fv;
  { Share.fv = alpha }

(** AND of two known-single-bit boolean sharings (flags in the LSB),
    routed through the packed kernel: identical value and traffic to
    [band ~width:1], with per-word local work and randomness. The drop-in
    upgrade for validity-flag conjunctions. *)
let band1 (ctx : Ctx.t) (x : shared) (y : shared) : shared =
  Share.unpack_flags (band_f ctx (Share.pack_flags x) (Share.pack_flags y))

(** OR of two known-single-bit boolean sharings via the packed kernel. *)
let bor1 (ctx : Ctx.t) (x : shared) (y : shared) : shared =
  let z = band1 ctx x y in
  Share.map3_vectors Vec.xor3 x y z

(* ------------------------------------------------------------------ *)
(* Resharing (used by the shuffle stack)                               *)
(* ------------------------------------------------------------------ *)

(** Rerandomize a sharing without changing the secret; traffic is metered by
    the caller (the shuffle protocols account whole-protocol totals per the
    paper's Table 1). The input's share vectors are folded into the fresh
    zero-sharing vectors in place, so no further allocation happens. *)
let reshare_unmetered (ctx : Ctx.t) (s : shared) : shared =
  let n = Share.length s in
  let alpha = zero_sharing ctx s.Share.enc n in
  for k = 0 to ctx.nvec - 1 do
    match s.Share.enc with
    | Arith -> Vec.add_into alpha.(k) s.Share.v.(k)
    | Bool -> Vec.xor_into alpha.(k) s.Share.v.(k)
  done;
  { s with Share.v = alpha }

(* ------------------------------------------------------------------ *)
(* Reductions                                                          *)
(* ------------------------------------------------------------------ *)

(** Sum all elements of an arithmetic sharing into a 1-element sharing
    (local: addition is linear). *)
let sum_all (s : shared) : shared =
  Share.check_enc Arith s;
  { s with Share.v = Array.map (fun vk -> [| Vec.sum vk |]) s.Share.v }

(** Local prefix sums on an arithmetic sharing. *)
let prefix_sum (s : shared) : shared =
  Share.check_enc Arith s;
  Share.map_vectors Vec.prefix_sum s
