(** Attach a real transport to a protocol context.

    The MPC engine meters every primitive through [ctx.comm]; installing a
    {!Orq_net.Comm.channel} there makes each metered round drive an actual
    on-the-wire exchange (lib/party/). Only the online meter gets a
    channel: preprocessing is dealer-simulated and stays virtual, exactly
    as the paper separates the phases. *)

type t = Orq_net.Comm.channel = {
  ch_round : bits:int -> messages:int -> unit;
  ch_traffic : bits:int -> messages:int -> unit;
  ch_barrier : int -> unit;
  ch_refund : int -> unit;
}

let attach (ctx : Ctx.t) (ch : t) = Orq_net.Comm.set_channel ctx.comm (Some ch)
let detach (ctx : Ctx.t) = Orq_net.Comm.set_channel ctx.comm None
let attached (ctx : Ctx.t) = Orq_net.Comm.channel ctx.comm <> None

(** Run a thunk with the channel installed on the online meter, detaching
    on exit (exception-safe). Channels do not nest: the engine has exactly
    one transport, and silently stacking two would double-send. *)
let with_channel (ctx : Ctx.t) (ch : t) f =
  if attached ctx then invalid_arg "Channel.with_channel: already attached";
  attach ctx ch;
  Fun.protect ~finally:(fun () -> detach ctx) f
