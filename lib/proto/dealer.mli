(** Preprocessing correlations (trusted-dealer simulation).

    The real ORQ generates input-independent correlated randomness with
    libOTe; this repository substitutes a trusted dealer emitting the same
    correlations directly (DESIGN.md): the online protocols consuming them
    are unchanged. Dealer traffic is metered on [ctx.preproc], never on
    the online counter. *)

type triple = { ta : Share.shared; tb : Share.shared; tc : Share.shared }

val beaver : Ctx.t -> Share.enc -> int -> triple
(** A Beaver triple [c = a * b] (arithmetic) or [c = a AND b] (boolean),
    secret-shared; used by the 2PC protocol. *)

type dabits = { da_bool : Share.shared; da_arith : Share.shared }

val dabits : Ctx.t -> int -> dabits
(** Random bits shared simultaneously as boolean (LSB) and arithmetic 0/1
    values; drives the protocol-agnostic bit conversions. *)

type edabits = { ed_arith : Share.shared; ed_bool : Share.shared }

val edabits : Ctx.t -> int -> edabits
(** Random ring elements shared both arithmetically and booleanly — the
    correlation behind A2B conversion. *)

type flag_triple = { fta : Share.flags; ftb : Share.flags; ftc : Share.flags }

val beaver_flags : Ctx.t -> int -> flag_triple
(** Packed boolean Beaver triple over n single-bit lanes: randomness drawn
    and shared per packed word (63 flags per PRG call); preprocessing
    metered byte-identically to {!beaver}. *)

type flag_dabits = { fda_bool : Share.flags; fda_arith : Share.shared }

val dabits_flags : Ctx.t -> int -> flag_dabits
(** daBits with a packed boolean side (per-word draws); metered
    byte-identically to {!dabits}. *)

val random_shared : Ctx.t -> Share.enc -> int -> Share.shared
(** A secret-shared random vector unknown to every party. *)
