(** Attach a real transport to a protocol context (DESIGN.md, "Real
    multi-party deployment").

    Installing a {!Orq_net.Comm.channel} on [ctx.comm] makes every metered
    online round drive an actual on-the-wire exchange; the engine itself
    ([Mpc]/[Share]/operators) is unchanged. Preprocessing stays virtual
    (dealer-simulated), matching the paper's phase separation. *)

type t = Orq_net.Comm.channel = {
  ch_round : bits:int -> messages:int -> unit;
  ch_traffic : bits:int -> messages:int -> unit;
  ch_barrier : int -> unit;
  ch_refund : int -> unit;
}

val attach : Ctx.t -> t -> unit
(** Install the channel on the online meter ([ctx.comm]). *)

val detach : Ctx.t -> unit

val attached : Ctx.t -> bool

val with_channel : Ctx.t -> t -> (unit -> 'a) -> 'a
(** Run a thunk with the channel installed, detaching on exit
    (exception-safe). @raise Invalid_argument if one is already attached —
    channels do not nest. *)
