(** Protocol context: which MPC protocol is running, its metering state, and
    the session randomness.

    ORQ instantiates the same operator stack over three protocols (§2.4):

    - [Sh_dm]  — ABY, semi-honest, dishonest majority (2 parties, T = 1);
    - [Sh_hm]  — Araki et al., semi-honest, honest majority (3 parties);
    - [Mal_hm] — Fantastic Four, malicious, honest majority (4 parties).

    The context also carries the fault-injection hook used to exercise the
    malicious protocol's abort behaviour in tests. *)

open Orq_util

type kind = Sh_dm | Sh_hm | Mal_hm

let all_kinds = [ Sh_dm; Sh_hm; Mal_hm ]

let kind_label = function
  | Sh_dm -> "SH-DM"
  | Sh_hm -> "SH-HM"
  | Mal_hm -> "Mal-HM"

let parties_of = function Sh_dm -> 2 | Sh_hm -> 3 | Mal_hm -> 4

(** Number of share vectors in the sharing of one secret. For the additive
    2PC scheme this equals the party count; for the replicated 3PC and 4PC
    schemes each party holds a strict subset of these vectors (2 of 3 and
    3 of 4 respectively). *)
let nvec_of = function Sh_dm -> 2 | Sh_hm -> 3 | Mal_hm -> 4

(** Fault injection for the maliciously secure protocol: return [Some delta]
    to additively corrupt the named party's contribution in the named
    operation. Semi-honest protocols ignore the hook (they do not verify),
    which the test suite demonstrates. *)
type tamper = party:int -> op:string -> int option

type t = {
  kind : kind;
  parties : int;
  nvec : int;
  ell : int;  (** logical element bit width used for metering (paper: 64) *)
  perm_bits : int;  (** bit width of permutation indices (paper: ell_sigma = 32) *)
  comm : Orq_net.Comm.t;  (** online-phase traffic *)
  preproc : Orq_net.Comm.t;  (** preprocessing traffic (dealer-simulated) *)
  prg : Prg.t;
  perm_prg : Prg.t;
      (** Dedicated stream for shuffle permutations. Real deployments draw
          permutations from common seeds shared by shuffle groups, entirely
          separate from dealer/correlation randomness; splitting the streams
          here mirrors that and keeps data-dependent control flow (e.g.
          quicksort partition sizes, driven by the random shuffle) identical
          whether correlations are drawn per element or per packed word
          (see {!Mpc.set_bitpack}). *)
  mutable tamper : tamper option;
}

exception Abort of string

let create ?(seed = 0x5EED) ?(ell = 64) kind =
  let parties = parties_of kind in
  let prg = Prg.create seed in
  {
    kind;
    parties;
    nvec = nvec_of kind;
    ell;
    perm_bits = 32;
    comm = Orq_net.Comm.create ~parties;
    preproc = Orq_net.Comm.create ~parties;
    prg;
    perm_prg = Prg.split prg 0x9E4B;
    tamper = None;
  }

(** Restart the context's randomness from [seed], exactly as if the
    context had just been created with it: both the protocol stream and
    the dedicated shuffle-permutation stream are re-derived. Metering
    state is untouched. The query service reseeds before every execution
    with a seed derived from (service seed, protocol, query) so each
    query's transcript — including data-dependent control flow like
    shuffled-quicksort recursion — is a pure function of the query, never
    of what ran before it or of which worker ran it. *)
let reseed t seed =
  Prg.reseed t.prg seed;
  Prg.sync ~dst:t.perm_prg ~src:(Prg.split t.prg 0x9E4B)

(** Run [f] with [lbl] pushed on the transcript label stack of the
    online-phase meter. Operators wrap their bodies in this so recorded
    events carry the operator path ("aggregate/radixsort/shuffle", …).
    Free when transcript recording is off. *)
let with_label t lbl f =
  Orq_net.Comm.push_label t.comm lbl;
  Fun.protect ~finally:(fun () -> Orq_net.Comm.pop_label t.comm) f

let with_tamper t f g =
  let saved = t.tamper in
  t.tamper <- Some f;
  Fun.protect ~finally:(fun () -> t.tamper <- saved) g

let tamper_delta t ~party ~op =
  match t.tamper with None -> 0 | Some f -> ( match f ~party ~op with None -> 0 | Some d -> d)
