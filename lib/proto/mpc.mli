(** Black-box MPC functionalities (§2.4): vectorized [+], [-], [×], [⊕],
    [∧], constants, and metered opening, instantiated for the three
    supported protocols. Everything above this module — circuits,
    shuffling, sorting, relational operators — uses only these functions,
    which is what makes ORQ protocol-agnostic.

    [bits] metering counts traffic summed over all parties; interactive
    primitives take an optional [?width] (default [ctx.ell]) giving the
    logical element width, so e.g. an AND of single-bit validity flags is
    charged 1 bit per element. *)

type shared = Share.shared

val reconstruct : shared -> Orq_util.Vec.t

(** {2 Cross-lane round fusion}

    The [_many] primitives execute k independent interactive operations as
    one metered communication round (lane 0 opens the round, the others
    piggyback). Disabling fusion (env [ORQ_NO_FUSION=1] at startup, or
    {!set_fusion}) makes them loop lane by lane instead — with identical
    [bits]/[messages] tallies, identical PRG consumption and identical
    opened values, since fused execution draws its correlations per lane
    in lane order; only the round count changes. *)

val set_fusion : bool -> unit
(** Toggle cross-lane fusion (tests and the rounds benchmark). *)

val fusion_enabled : unit -> bool

val set_bitpack : bool -> unit
(** Toggle the packed single-bit flag representation (default on; env
    [ORQ_NO_BITPACK=1] at startup disables it). With packing off, every
    flag primitive falls back to unpack -> width-1 word primitive ->
    pack, with identical opened values and identical [bits]/[messages]
    tallies; only local work and PRG draws differ. *)

val bitpack_enabled : unit -> bool

val fuse_rounds : Ctx.t -> (unit -> 'a) array -> 'a array
(** Run data-independent operation tracks sequentially (identical dealer
    draws and opened values) but meter their online rounds as overlapped:
    the total charged is the deepest track, not the sum. Bits and messages
    keep their exact sequential tallies. No-op re-metering when fusion is
    disabled. The caller asserts no track depends on another's result. *)

(** {2 Input / constants (data-owner side; unmetered)} *)

val share_a : Ctx.t -> Orq_util.Vec.t -> shared
val share_b : Ctx.t -> Orq_util.Vec.t -> shared
val public_a : Ctx.t -> int -> int -> shared
val public_b : Ctx.t -> int -> int -> shared
val public_a_vec : Ctx.t -> Orq_util.Vec.t -> shared
val public_b_vec : Ctx.t -> Orq_util.Vec.t -> shared

(** {2 Local linear operations} *)

val add : shared -> shared -> shared
val sub : shared -> shared -> shared
val neg : shared -> shared

val add_pub : shared -> int -> shared
(** Add a public constant (affects one share vector). *)

val add_pub_vec : shared -> Orq_util.Vec.t -> shared

val mul_pub : shared -> int -> shared
(** Multiply by a public constant (scales every share vector). *)

val mul_pub_vec : shared -> Orq_util.Vec.t -> shared
val xor : shared -> shared -> shared
val xor_pub : shared -> int -> shared
val xor_pub_vec : shared -> Orq_util.Vec.t -> shared

val and_mask : shared -> int -> shared
(** Bitwise AND with a public mask (linear over GF(2)). *)

val and_mask_vec : shared -> Orq_util.Vec.t -> shared
val lshift : shared -> int -> shared
val rshift : shared -> int -> shared

val bnot : shared -> shared
(** Bitwise NOT over the full word (circuits mask to their width). *)

val extract_bit : shared -> int -> shared
(** Isolate bit [k] of each element into the LSB — fused
    [and_mask (rshift a k) 1] in one pass per share vector (linear over
    GF(2)). *)

val extend_bit : shared -> shared
(** Replicate each element's LSB across the whole word — linear per share
    vector; turns a single-bit condition into a mux mask. *)

(** {2 Opening (reveal to all computing parties)} *)

val hash_bits : int
(** Digest size metered for Mal-HM redundant delivery. *)

val open_ : ?width:int -> Ctx.t -> shared -> Orq_util.Vec.t
(** Open a shared vector to all parties. Under [Mal_hm] every
    reconstructed vector is delivered redundantly (value + digest from
    distinct parties), so an injected sender corruption raises
    {!Ctx.Abort}. *)

val open_many : ?widths:int array -> Ctx.t -> shared array -> Orq_util.Vec.t array
(** Open several independent shared vectors in one fused round; each lane
    keeps its own width charge (default [ctx.ell]). *)

(** {2 Multiplication / AND} *)

val mul : ?width:int -> Ctx.t -> shared -> shared -> shared
(** Secure elementwise multiplication of arithmetic shares: Beaver (2PC),
    replicated cross-terms + resharing (3PC), redundantly verified
    cross-terms (4PC). One round each. *)

val band : ?width:int -> Ctx.t -> shared -> shared -> shared
(** Secure elementwise bitwise AND of boolean shares (same structures over
    GF(2)). *)

val bor : ?width:int -> Ctx.t -> shared -> shared -> shared
(** x ∨ y = x ⊕ y ⊕ (x ∧ y). *)

val mul_many :
  ?widths:int array -> Ctx.t -> shared array -> shared array -> shared array
(** k independent multiplications (possibly different lengths/widths) in
    one metered round. *)

val band_many :
  ?widths:int array -> Ctx.t -> shared array -> shared array -> shared array
(** k independent ANDs in one metered round. *)

val bor_many :
  ?widths:int array -> Ctx.t -> shared array -> shared array -> shared array
(** k independent ORs in one metered round (fused AND + local xor3). *)

(** {2 Packed single-bit flag lanes}

    The flag-typed twins of the boolean primitives, operating on
    {!Share.flags} (63 flags per word, {!Orq_util.Bits}). Interactive ones
    draw their correlated randomness per packed *word* instead of per
    element and run the local GF(2) kernels over the word arrays, while
    metering stays per element at width 1 — byte-identical to the unpacked
    width-1 primitives. *)

val xor_f : Share.flags -> Share.flags -> Share.flags
(** Lanewise xor (local, linear). *)

val bnot_f : Share.flags -> Share.flags
(** Flip every flag (xor with public all-ones). *)

val extract_bit_f : shared -> int -> Share.flags
(** Bit [k] of each element of a boolean sharing, extracted straight into
    packed lanes — fused {!extract_bit} + {!Share.pack_flags}. *)

val band_f : Ctx.t -> Share.flags -> Share.flags -> Share.flags
(** Secure AND over packed flags: one round, width-1 element charges,
    per-word Beaver/replicated randomness. *)

val band_f_many :
  Ctx.t -> Share.flags array -> Share.flags array -> Share.flags array
(** k independent packed ANDs in one fused round. *)

val bor_f : Ctx.t -> Share.flags -> Share.flags -> Share.flags

val bor_f_many :
  Ctx.t -> Share.flags array -> Share.flags array -> Share.flags array
(** k independent packed ORs in one fused round (fused AND + local
    xor3). *)

val mux_f : Ctx.t -> Share.flags -> Share.flags -> Share.flags -> Share.flags
(** [mux_f ctx b x y]: flagwise [b ? y : x] in one packed AND round. *)

val open_f : Ctx.t -> Share.flags -> Orq_util.Bits.t
(** Open packed flags; metered exactly like [open_ ~width:1]. *)

val open_f_many : Ctx.t -> Share.flags array -> Orq_util.Bits.t array

val reshare_flags_unmetered : Ctx.t -> Share.flags -> Share.flags
(** Rerandomize packed lanes (zero-sharing noise per word); traffic is
    metered by the caller, like {!reshare_unmetered}. *)

val band1 : Ctx.t -> shared -> shared -> shared
(** AND of two known-single-bit boolean sharings routed through the packed
    kernel: identical value and traffic to [band ~width:1] with per-word
    local work — the drop-in upgrade for validity-flag conjunctions. *)

val bor1 : Ctx.t -> shared -> shared -> shared

(** {2 Resharing and reductions} *)

val zero_sharing : Ctx.t -> Share.enc -> int -> Orq_util.Vec.t array
(** Fresh vectors summing (or xoring) to zero — the rerandomization noise
    real protocols derive from pairwise PRG seeds. *)

val reshare_unmetered : Ctx.t -> shared -> shared
(** Rerandomize a sharing without changing the secret; traffic is metered
    by the caller (the shuffle protocols account whole-protocol totals). *)

val sum_all : shared -> shared
(** Sum all elements into a 1-element arithmetic sharing (local). *)

val prefix_sum : shared -> shared
(** Local prefix sums on an arithmetic sharing. *)
