(** Preprocessing correlations (trusted-dealer simulation).

    The real ORQ generates its input-independent correlated randomness with
    libOTe (random OTs -> OLE correlations and Beaver triples) and the
    permutation-correlation technique of Peceny et al. This repository
    substitutes a trusted dealer that emits the same correlations directly
    (see DESIGN.md): the *online* protocols consuming them are unchanged, and
    the paper itself reports online time for the dishonest-majority protocol.
    Dealer traffic is metered on [ctx.preproc], never on the online counter. *)

open Orq_util

(* Each correlation delivered to a party is metered as if the dealer sent it:
   [vectors] share vectors of [n] elements of [width] bits. *)
let meter_preproc (ctx : Ctx.t) ~vectors ~n ~width =
  Orq_net.Comm.round ctx.preproc ~bits:(vectors * n * width) ~messages:ctx.parties

type triple = { ta : Share.shared; tb : Share.shared; tc : Share.shared }

(** A Beaver multiplication triple [c = a * b] (arithmetic) or
    [c = a AND b] (boolean), secret-shared. Used by the 2PC protocol. *)
let beaver (ctx : Ctx.t) enc n : triple =
  let a = Prg.words ctx.prg n and b = Prg.words ctx.prg n in
  let c =
    match (enc : Share.enc) with
    | Arith -> Vec.mul a b
    | Bool -> Vec.band a b
  in
  meter_preproc ctx ~vectors:(3 * ctx.nvec) ~n ~width:ctx.ell;
  { ta = Share.share ctx enc a; tb = Share.share ctx enc b; tc = Share.share ctx enc c }

type dabits = { da_bool : Share.shared; da_arith : Share.shared }

(** daBits: random bits [r] shared simultaneously as boolean single-bit
    values (in the word's LSB) and as arithmetic 0/1 values. These drive the
    protocol-agnostic bit-conversion in {!Orq_circuits.Convert}. *)
let dabits (ctx : Ctx.t) n : dabits =
  let r = Array.init n (fun _ -> if Prg.bool ctx.prg then 1 else 0) in
  meter_preproc ctx ~vectors:(2 * ctx.nvec) ~n ~width:(ctx.ell + 1);
  { da_bool = Share.share ctx Bool r; da_arith = Share.share ctx Arith r }

type edabits = { ed_arith : Share.shared; ed_bool : Share.shared }

(** Extended daBits: random ring elements [r] shared both arithmetically and
    booleanly; the standard correlation behind A2B conversion. *)
let edabits (ctx : Ctx.t) n : edabits =
  let r = Prg.words ctx.prg n in
  meter_preproc ctx ~vectors:(2 * ctx.nvec) ~n ~width:(2 * ctx.ell);
  { ed_arith = Share.share ctx Arith r; ed_bool = Share.share ctx Bool r }

(* ------------------------------------------------------------------ *)
(* Packed flag-lane correlations. Same correlations as above, for the
   bit-packed single-bit representation: the dealer's randomness is drawn
   per *word* (63 flags per PRG call) instead of per element, and the
   boolean side is emitted directly in packed lanes. Metering is kept
   byte-identical to the unpacked variants — the modeled dealer ships the
   same logical correlation either way; only the simulation's local
   compute and PRG draw shrink.                                        *)
(* ------------------------------------------------------------------ *)

type flag_triple = { fta : Share.flags; ftb : Share.flags; ftc : Share.flags }

(** Packed boolean Beaver triple [c = a AND b] over n single-bit lanes:
    per-word draws and per-word sharing; metered exactly like {!beaver}. *)
let beaver_flags (ctx : Ctx.t) n : flag_triple =
  let a = Bits.random ctx.prg n and b = Bits.random ctx.prg n in
  let c = Bits.band a b in
  meter_preproc ctx ~vectors:(3 * ctx.nvec) ~n ~width:ctx.ell;
  {
    fta = Share.share_flags ctx a;
    ftb = Share.share_flags ctx b;
    ftc = Share.share_flags ctx c;
  }

type flag_dabits = { fda_bool : Share.flags; fda_arith : Share.shared }

(** daBits with the boolean side packed: the random bits and their boolean
    sharing are drawn/shared per word; the arithmetic side stays
    per-element (arithmetic sharings have no packed form). Metered exactly
    like {!dabits}. *)
let dabits_flags (ctx : Ctx.t) n : flag_dabits =
  let r = Bits.random ctx.prg n in
  meter_preproc ctx ~vectors:(2 * ctx.nvec) ~n ~width:(ctx.ell + 1);
  {
    fda_bool = Share.share_flags ctx r;
    fda_arith = Share.share ctx Arith (Bits.unpack r);
  }

(** A secret-shared random vector unknown to every party (e.g. masks for
    padding). *)
let random_shared (ctx : Ctx.t) enc n : Share.shared =
  let r = Prg.words ctx.prg n in
  meter_preproc ctx ~vectors:ctx.nvec ~n ~width:ctx.ell;
  Share.share ctx enc r
