(** The compose-based radixsort of Asharov et al. (CCS'22), reimplemented
    as in the paper's Appendix B.3 comparison: per-bit sorting
    permutations are composed into a running elementwise permutation and
    the data moves only once — fewer bytes for very wide elements, more
    rounds ([18l - 14] vs the hybrid's [11l + 7]). *)

open Orq_proto

type dir = Asc | Desc

val sort_with_perm :
  Ctx.t -> bits:int -> ?skip:int -> ?dir:dir -> Share.shared ->
  Share.shared list -> (Share.shared * Share.shared list) * Share.shared
(** As {!sort}, also returning the composed sorting permutation. *)

val sort :
  Ctx.t -> bits:int -> ?skip:int -> ?dir:dir -> Share.shared ->
  Share.shared list -> Share.shared * Share.shared list
