(** Oblivious iterative quicksort (§3.2, Appendix B.1, Protocol 9).

    Shuffle-then-sort: the rows are first moved through a random sharded
    permutation; afterwards the results of pivot comparisons may be opened —
    for unique keys, any comparison outcome is consistent with many
    permutations of the original data, so the opened bits reveal only the
    (random) shuffled order (Hamada et al.). The control flow is iterative:
    every active segment is partitioned against its pivot in the same
    vectorized comparison round, giving O(log n) comparison rounds instead
    of the naive O(n).

    Keys must be unique for security (the {!Sortwrap} wrapper guarantees
    this by appending the row index); composite keys with per-column
    direction are compared lexicographically. *)

open Orq_proto
module Compare = Orq_circuits.Compare

type dir = Asc | Desc

type key = { col : Share.shared; width : int; dir : dir }

let rec take n = function
  | [] -> []
  | x :: tl -> if n = 0 then [] else x :: take (n - 1) tl

let rec drop n = function
  | [] -> []
  | _ :: tl as l -> if n = 0 then l else drop (n - 1) tl

(** [sort ctx ~keys carry] sorts the rows formed by the key columns plus
    [carry] columns; returns (sorted key columns, sorted carry columns). *)
let sort (ctx : Ctx.t) ~(keys : key list) (carry : Share.shared list) :
    Share.shared list * Share.shared list =
  let n = Share.length (List.hd keys).col in
  let nk = List.length keys in
  if n <= 1 then (List.map (fun k -> k.col) keys, carry)
  else begin
    let all =
      Orq_shuffle.Permops.shuffle_table ctx
        (List.map (fun k -> k.col) keys @ carry)
    in
    let key_cols = ref (take nk all) and carry_cols = ref (drop nk all) in
    let segs = ref [ (0, n) ] in
    let round_cap = n + 2 in
    let rounds = ref 0 in
    while !segs <> [] do
      incr rounds;
      if !rounds > round_cap then
        failwith "quicksort: partition did not converge (duplicate keys?)";
      (* one batched comparison round: every non-pivot element of every
         active segment against its segment's pivot (prevPivot is the
         segment head after each partition step) *)
      let elems =
        List.concat_map
          (fun (lo, hi) -> List.init (hi - lo - 1) (fun j -> (lo + 1 + j, lo)))
          !segs
      in
      let elem_idx = Array.of_list (List.map fst elems) in
      let pivot_idx = Array.of_list (List.map snd elems) in
      let cmp_operands =
        List.map2
          (fun k col ->
            let a = Share.gather col elem_idx in
            let b = Share.gather col pivot_idx in
            match k.dir with
            | Asc -> (a, b, k.width)
            | Desc -> (b, a, k.width))
          keys !key_cols
      in
      (* the comparison result and its opening stay in packed lanes: the
         partition below only reads one bit per element *)
      let lt = Compare.lt_lex_f ctx cmp_operands in
      let bits = Mpc.open_f ctx lt in
      (* local partition: [less...; pivot; geq...] per segment *)
      let src = Array.init n (fun i -> i) in
      let new_segs = ref [] in
      let pos = ref 0 in
      List.iter
        (fun (lo, hi) ->
          let less = ref [] and geq = ref [] in
          for i = lo + 1 to hi - 1 do
            if Orq_util.Bits.get bits !pos = 1 then less := i :: !less
            else geq := i :: !geq;
            incr pos
          done;
          let less = List.rev !less and geq = List.rev !geq in
          let nl = List.length less in
          List.iteri (fun j i -> src.(lo + j) <- i) less;
          src.(lo + nl) <- lo;
          List.iteri (fun j i -> src.(lo + nl + 1 + j) <- i) geq;
          if nl >= 2 then new_segs := (lo, lo + nl) :: !new_segs;
          if hi - (lo + nl + 1) >= 2 then
            new_segs := (lo + nl + 1, hi) :: !new_segs)
        !segs;
      key_cols := List.map (fun c -> Share.gather c src) !key_cols;
      carry_cols := List.map (fun c -> Share.gather c src) !carry_cols;
      segs := !new_segs
    done;
    (!key_cols, !carry_cols)
  end
