(** Preprocessing budget for two-party quicksort (Appendix B.4): triples
    for [2 n lg n] comparisons suffice ≈99.9% of the time (McDiarmid &
    Hayward concentration), with an additive 10k-triple buffer below
    n = 2000. *)

val expected_comparisons : int -> float
(** q_n = 2 n ln n - (4 - 2γ) n + 2 ln n + O(1) ≤ 1.39 n lg n. *)

val comparison_budget : int -> int

val epsilon : int -> float
(** Multiplicative headroom of the budget over the expectation. *)

val overflow_probability_bound : int -> float
(** Upper bound on exceeding the budget (Theorem 1 of McDiarmid &
    Hayward); the paper targets 2^-10. *)

val triples_for_sort : n:int -> w:int -> perm_bits:int -> int
(** Beaver triples to pregenerate for sorting [n] elements of [w] bits
    (plus uniqueness padding). *)
