(** [genBitPerm] (Asharov et al.): the elementwise sharing of a secret
    bit-vector's *stable* sorting permutation — zeros first, ones second,
    original order preserved within each class. One bit conversion and one
    multiplication; prefix sums are local, so the protocol is agnostic to
    the protocol and party count. *)

open Orq_proto

val broadcast_last : Share.shared -> Share.shared
(** Broadcast the last element of a sharing to every position (linear). *)

val gen : Ctx.t -> Share.shared -> Share.shared
(** [gen ctx bit]: arithmetic elementwise sorting permutation of the
    single-bit boolean sharing [bit]. *)

val gen_f : Ctx.t -> Share.flags -> Share.shared
(** {!gen} consuming the bit vector as packed flag lanes (the bit
    conversion runs packed; the rest is arithmetic and word-based). *)
