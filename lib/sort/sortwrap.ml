(** The general sorting wrapper (Appendix B.2, Protocol 11): input padding,
    base-sort dispatch, and sorting-permutation extraction.

    Each row is tagged with its (public, then secret-shared) index. For
    quicksort the index joins the comparison key, making rows unique (a
    security requirement of the shuffle-then-reveal approach) and the sort
    stable; radixsort is stable by construction and carries the index as
    data. After sorting, the index column holds [sigma(I) = sigma^{-1}];
    inverting it with Protocol 8 yields the elementwise sorting permutation
    [sigma] that TableSort composes and applies to the remaining columns. *)

open Orq_proto
module Permops = Orq_shuffle.Permops
module Localperm = Orq_shuffle.Localperm

type algo = Quicksort | Radixsort

type dir = Asc | Desc

let default_algo_for_width w = if w <= 32 then Radixsort else Quicksort

(* Shared index column 0..n-1 (the publicShare padding step). *)
let index_column (ctx : Ctx.t) n =
  Share.public_vec ctx Share.Bool (Localperm.identity n)

let run_base (ctx : Ctx.t) algo dir ~w key carry =
  match algo with
  | Radixsort ->
      Ctx.with_label ctx "radixsort" @@ fun () ->
      let rdir = match dir with Asc -> Radixsort.Asc | Desc -> Radixsort.Desc in
      Radixsort.sort ctx ~bits:w ~dir:rdir key carry
  | Quicksort -> (
      Ctx.with_label ctx "quicksort" @@ fun () ->
      let n = Share.length key in
      (* the index is part of the composite key: uniqueness + stability *)
      let idx = index_column ctx n in
      let qdir = match dir with Asc -> Quicksort.Asc | Desc -> Quicksort.Desc in
      let keys =
        [
          { Quicksort.col = key; width = w; dir = qdir };
          { Quicksort.col = idx; width = ctx.perm_bits; dir = Quicksort.Asc };
        ]
      in
      match Quicksort.sort ctx ~keys carry with
      | [ key'; idx' ], carry' -> (key', carry' @ [ idx' ])
      | _ -> assert false)

(* For radixsort the index must be appended to the carried columns so the
   permutation can be extracted; quicksort already returns it. *)
let with_index ctx algo n carry =
  match algo with
  | Radixsort -> carry @ [ index_column ctx n ]
  | Quicksort -> carry

(** [sort_with_perm ctx ?algo ~dir ~w key carry] sorts rows by the single
    key column (plus index tiebreak), returning the sorted key, the sorted
    carry columns, and the elementwise sorting permutation [sigma]. *)
let sort_with_perm (ctx : Ctx.t) ?algo ~(dir : dir) ~w (key : Share.shared)
    (carry : Share.shared list) :
    Share.shared * Share.shared list * Share.shared =
  let algo = Option.value algo ~default:(default_algo_for_width w) in
  let n = Share.length key in
  let ncarry = List.length carry in
  let key', cols' = run_base ctx algo dir ~w key (with_index ctx algo n carry) in
  let carry' = Quicksort.take ncarry cols' in
  let pi =
    match Quicksort.drop ncarry cols' with
    | [ pi ] -> pi
    | _ -> assert false
  in
  let sigma = Permops.invert ctx pi in
  (key', carry', sigma)

(** [sort ctx ?algo ~dir ~w key carry] as above but without extracting the
    sorting permutation (single-key sorts that carry all their columns
    through the base sort do not need it). *)
let sort (ctx : Ctx.t) ?algo ~(dir : dir) ~w (key : Share.shared)
    (carry : Share.shared list) : Share.shared * Share.shared list =
  let algo = Option.value algo ~default:(default_algo_for_width w) in
  match algo with
  | Radixsort -> run_base ctx Radixsort dir ~w key carry
  | Quicksort ->
      let ncarry = List.length carry in
      let key', cols' = run_base ctx Quicksort dir ~w key carry in
      (key', Quicksort.take ncarry cols')

(* Shared 0..n-1 index column, chunk-by-chunk. *)
let index_column_c (ctx : Ctx.t) n =
  Share.public_chunked ctx Share.Bool ~n (fun pos len ->
      Array.init len (fun i -> pos + i))

(* Rematerialize a monolithic fallback result with the tracking of the
   chunked input it replaces. *)
let repack_like (like : Share.chunked) (s : Share.shared) =
  if Share.chunked_tracked like then Share.park s else Share.wrap s

(** Chunked {!sort_with_perm}: radixsort streams the key/carry columns
    chunk-at-a-time; quicksort (wide keys) is a documented monolithic
    fallback — its shuffle-then-open control flow keys on whole opened
    vectors, so the columns are unparked around it. The extracted sigma
    stays monolithic (a single index column). *)
let sort_with_perm_c (ctx : Ctx.t) ?algo ~(dir : dir) ~w (key : Share.chunked)
    (carry : Share.chunked list) :
    Share.chunked * Share.chunked list * Share.shared =
  let algo = Option.value algo ~default:(default_algo_for_width w) in
  match algo with
  | Quicksort ->
      let k, c, sigma =
        sort_with_perm ctx ~algo:Quicksort ~dir ~w (Share.unpark key)
          (List.map Share.unpark carry)
      in
      (repack_like key k, List.map (repack_like key) c, sigma)
  | Radixsort ->
      let n = Share.chunked_length key in
      let ncarry = List.length carry in
      let rdir = match dir with Asc -> Radixsort.Asc | Desc -> Radixsort.Desc in
      let key', cols' =
        Ctx.with_label ctx "radixsort" @@ fun () ->
        Radixsort.sort_c ctx ~bits:w ~dir:rdir key
          (carry @ [ index_column_c ctx n ])
      in
      let carry' = Quicksort.take ncarry cols' in
      let pi_c =
        match Quicksort.drop ncarry cols' with
        | [ pi ] -> pi
        | _ -> assert false
      in
      let pi = Share.unpark pi_c in
      Share.dispose_c pi_c;
      let sigma = Permops.invert ctx pi in
      (key', carry', sigma)

(** Chunked {!sort} (no permutation extraction). *)
let sort_c (ctx : Ctx.t) ?algo ~(dir : dir) ~w (key : Share.chunked)
    (carry : Share.chunked list) : Share.chunked * Share.chunked list =
  let algo = Option.value algo ~default:(default_algo_for_width w) in
  match algo with
  | Radixsort ->
      Ctx.with_label ctx "radixsort" @@ fun () ->
      let rdir = match dir with Asc -> Radixsort.Asc | Desc -> Radixsort.Desc in
      Radixsort.sort_c ctx ~bits:w ~dir:rdir key carry
  | Quicksort ->
      let k, c =
        sort ctx ~algo:Quicksort ~dir ~w (Share.unpark key)
          (List.map Share.unpark carry)
      in
      (repack_like key k, List.map (repack_like key) c)
