(** Oblivious bitonic sorting network — the O(n log^2 n) approach used by
    Secrecy and the TEE systems the paper compares against (§6). Kept as a
    baseline: every compare-exchange is a secure comparison plus a
    multiplexed swap, all pairs of a stage batched into one round. Requires
    a power-of-two row count (callers pad with validity-0 rows). Handles
    duplicate keys (sorting networks are comparison-oblivious), but is not
    stable. *)

open Orq_proto
module Compare = Orq_circuits.Compare
module Mux = Orq_circuits.Mux

type dir = Asc | Desc

type key = { col : Share.shared; width : int; dir : dir }

let take = Quicksort.take
let drop = Quicksort.drop

(** [sort ctx ~keys carry] sorts rows by the composite key; n must be a
    power of two. *)
let sort (ctx : Ctx.t) ~(keys : key list) (carry : Share.shared list) :
    Share.shared list * Share.shared list =
  let n = Share.length (List.hd keys).col in
  if not (Orq_util.Ring.is_pow2 n) then
    invalid_arg "Bitonic.sort: size must be a power of two";
  let nk = List.length keys in
  let cols = ref (List.map (fun k -> k.col) keys @ carry) in
  let k = ref 2 in
  while !k <= n do
    let j = ref (!k / 2) in
    while !j >= 1 do
      (* all pairs (i, i lor j) of this stage in one round *)
      let idx_a = ref [] and idx_b = ref [] and flip = ref [] in
      for i = n - 1 downto 0 do
        if i land !j = 0 && i lor !j < n then begin
          idx_a := i :: !idx_a;
          idx_b := (i lor !j) :: !idx_b;
          flip := (if i land !k <> 0 then 1 else 0) :: !flip
        end
      done;
      let idx_a = Array.of_list !idx_a and idx_b = Array.of_list !idx_b in
      let flip = Array.of_list !flip in
      let rows_a = List.map (fun c -> Share.gather c idx_a) !cols in
      let rows_b = List.map (fun c -> Share.gather c idx_b) !cols in
      (* out of order (for an ascending segment) iff b < a under the
         direction-adjusted lexicographic comparator *)
      let cmp_operands =
        List.map2
          (fun key (a, b) ->
            match key.dir with
            | Asc -> (b, a, key.width)
            | Desc -> (a, b, key.width))
          keys
          (List.map2 (fun a b -> (a, b)) (take nk rows_a) (take nk rows_b))
      in
      let out_of_order = Compare.lt_lex ctx cmp_operands in
      let swap = Mpc.xor_pub_vec out_of_order flip in
      let muxed =
        Mux.mux_b_many ctx swap
          (List.map2 (fun a b -> (a, b)) rows_a rows_b
          @ List.map2 (fun a b -> (a, b)) rows_b rows_a)
      in
      let ncols = List.length !cols in
      let new_a = take ncols muxed and new_b = drop ncols muxed in
      cols :=
        List.mapi
          (fun ci c ->
            let c = Share.update_rows c idx_a (List.nth new_a ci) in
            Share.update_rows c idx_b (List.nth new_b ci))
          !cols;
      j := !j / 2
    done;
    k := !k * 2
  done;
  (take nk !cols, drop nk !cols)
