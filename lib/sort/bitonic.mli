(** Oblivious bitonic sorting network — the O(n log² n) approach of
    Secrecy and TEE systems (§6), kept as a baseline. Requires a
    power-of-two row count; handles duplicates; not stable. *)

open Orq_proto

type dir = Asc | Desc

type key = { col : Share.shared; width : int; dir : dir }

val take : int -> 'a list -> 'a list
val drop : int -> 'a list -> 'a list

val sort :
  Ctx.t -> keys:key list -> Share.shared list ->
  Share.shared list * Share.shared list
