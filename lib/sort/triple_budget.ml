(** Preprocessing budget for two-party quicksort (Appendix B.4).

    Quicksort consumes a data-dependent number of secure comparisons, but
    Beaver triples must be generated ahead of time. Following McDiarmid &
    Hayward's concentration bounds for randomized quicksort, the paper
    budgets [2 n lg n] comparisons — sufficient in about 99.9% of runs
    (failures fall back to online triple generation, a performance but not
    a security event) — with an additive buffer of 10,000 triples for tiny
    inputs (n < 2000) where the asymptotic bound is loose. *)

let log2f x = log x /. log 2.

(** Expected number of quicksort comparisons with uniform random pivots:
    q_n = 2 n ln n - (4 - 2 gamma) n + 2 ln n + O(1) <= 1.39 n lg n. *)
let expected_comparisons n =
  if n <= 1 then 0.
  else
    let nf = float_of_int n in
    let gamma = 0.5772156649 in
    (2. *. nf *. log nf) -. ((4. -. (2. *. gamma)) *. nf) +. (2. *. log nf)

(** The paper's budget: triples for [2 n lg n] comparisons, plus the small-
    input buffer. *)
let comparison_budget n =
  if n <= 1 then 0
  else
    let base =
      int_of_float (ceil (2. *. float_of_int n *. log2f (float_of_int n)))
    in
    if n < 2000 then base + 10_000 else base

(** Multiplicative headroom of the budget over the expectation
    ((1 + epsilon) in the paper's analysis; >= 1.43 for n >= 1300). *)
let epsilon n =
  let e = expected_comparisons n in
  if e <= 0. then infinity else (float_of_int (comparison_budget n) /. e) -. 1.

(** Upper bound on the probability that a run exceeds the budget, from
    Theorem 1 of McDiarmid & Hayward:
    p <= n^(-2 eps (ln ln n - ln (1/eps))). The paper targets p = 2^-10. *)
let overflow_probability_bound n =
  if n < 1300 then 0. (* covered by the additive buffer *)
  else
    let nf = float_of_int n in
    let eps = min (epsilon n) 0.43 in
    let expo = -2. *. eps *. (log (log nf) -. log (1. /. eps)) in
    nf ** expo

(** Number of Beaver triples to pregenerate for sorting [n] elements of
    width [w] bits: each comparison is an O(w)-gate circuit, and each
    element carries the [perm_bits] uniqueness padding. *)
let triples_for_sort ~n ~w ~perm_bits =
  comparison_budget n * (w + perm_bits)
