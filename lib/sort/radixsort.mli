(** ORQ's hybrid oblivious radixsort (§3.2, Appendix B, Protocol 10):
    per-bit stable sorting permutations applied *eagerly* to the whole
    working table (Bogdanov-style) through the efficient
    elementwise-permutation application of Asharov et al. — trading a
    little bandwidth for [7(l-1)] fewer rounds than the compose-based
    protocol (up to 1.44x faster in the paper). Stable; descending order
    flips each bit, preserving stability. *)

open Orq_proto

type dir = Asc | Desc

val sort :
  Ctx.t -> bits:int -> ?skip:int -> ?dir:dir -> Share.shared ->
  Share.shared list -> Share.shared * Share.shared list
(** [sort ctx ~bits ?skip ~dir key carry] stably sorts rows
    [(key, carry...)] on the [bits] key bits starting at bit [skip]. *)

val sort_c :
  Ctx.t -> bits:int -> ?skip:int -> ?dir:dir -> Share.chunked ->
  Share.chunked list -> Share.chunked * Share.chunked list
(** Chunked twin of {!sort}: key/carry columns stream chunk-at-a-time;
    only the packed 1-bit-per-row flag column and the ranking permutation
    are materialized whole. Wire cost identical to {!sort}. *)
