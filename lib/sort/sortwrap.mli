(** The general sorting wrapper (Appendix B.2, Protocol 11): index
    padding, base-sort dispatch, and sorting-permutation extraction. After
    sorting, the carried index column holds [sigma(I) = sigma^{-1}];
    Protocol 8 inverts it into the elementwise permutation TableSort
    composes and applies to the remaining columns. *)

open Orq_proto

type algo = Quicksort | Radixsort

type dir = Asc | Desc

val default_algo_for_width : int -> algo
(** Radixsort for narrow keys (≤ 32 bits), quicksort above — the engine
    default (§3.2). *)

val index_column : Ctx.t -> int -> Share.shared
(** The shared 0..n-1 index column (the publicShare padding step). *)

val sort_with_perm :
  Ctx.t -> ?algo:algo -> dir:dir -> w:int -> Share.shared ->
  Share.shared list -> Share.shared * Share.shared list * Share.shared
(** Sort by a single key column (index tiebreak), returning the sorted
    key, the sorted carry columns, and the sorting permutation sigma. *)

val sort :
  Ctx.t -> ?algo:algo -> dir:dir -> w:int -> Share.shared ->
  Share.shared list -> Share.shared * Share.shared list
(** As above without extracting the permutation (single-key sorts that
    carry all their columns need none). *)

val sort_with_perm_c :
  Ctx.t -> ?algo:algo -> dir:dir -> w:int -> Share.chunked ->
  Share.chunked list -> Share.chunked * Share.chunked list * Share.shared
(** Chunked {!sort_with_perm}: radixsort streams the columns
    chunk-at-a-time; quicksort is a monolithic fallback (columns unparked
    around it). Sigma stays monolithic. Wire cost identical. *)

val sort_c :
  Ctx.t -> ?algo:algo -> dir:dir -> w:int -> Share.chunked ->
  Share.chunked list -> Share.chunked * Share.chunked list
(** Chunked {!sort}. *)
