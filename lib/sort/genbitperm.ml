(** [genBitPerm] (Asharov et al., used by both radixsort variants): given a
    secret single-bit vector, compute the elementwise sharing of its *stable*
    sorting permutation — zeros first, ones second, original order preserved
    within each class.

    The destination of element i is

      dest_i = (s0_i - 1) + b_i * (Z + s1_i - s0_i)

    where s0/s1 are running counts of zeros/ones and Z the total number of
    zeros. Prefix sums are linear (local on additive shares); the only
    interactive steps are one bit conversion and one multiplication, so the
    protocol is agnostic to the number of parties. *)

open Orq_proto

(* Broadcast the last element of a sharing to every position (linear). *)
let broadcast_last (s : Share.shared) =
  Share.map_vectors
    (fun vk -> Array.make (Array.length vk) vk.(Array.length vk - 1))
    s

(** [gen_f ctx bit] returns the arithmetic elementwise sorting permutation
    of the packed flag vector [bit] — the bit conversion consumes the
    packed lanes directly; everything after it is arithmetic and stays
    word-based. *)
let gen_f (ctx : Ctx.t) (bit : Share.flags) : Share.shared =
  let b_a = Orq_circuits.Convert.bit_b2a_flags ctx bit in
  let f0 = Mpc.add_pub (Mpc.neg b_a) 1 in
  let s0 = Mpc.prefix_sum f0 in
  let s1 = Mpc.prefix_sum b_a in
  let z = broadcast_last s0 in
  (* destination offset Z + s1 - s0, fused into one pass per share vector *)
  let t = Share.map3_vectors Orq_util.Vec.add_sub z s1 s0 in
  let prod = Mpc.mul ~width:ctx.perm_bits ctx b_a t in
  Mpc.add_pub (Mpc.add s0 prod) (-1)

(** [gen ctx bit] — same, for a single-bit boolean sharing (LSB). *)
let gen (ctx : Ctx.t) (bit : Share.shared) : Share.shared =
  gen_f ctx (Share.pack_flags bit)
