(** ORQ's hybrid oblivious radixsort (§3.2, Appendix B.1, Protocol 10).

    For each key bit from least to most significant, compute the bit's
    stable sorting permutation with {!Genbitperm} and *eagerly apply it to
    the whole working table* (Bogdanov-style), using the efficient
    elementwise-permutation application of Asharov et al. Compared to the
    compose-then-apply variant ({!Radix_compose}) this trades a little
    bandwidth for [7 (l - 1)] fewer rounds — the hybrid the paper reports as
    up to 1.44x faster.

    Stable by construction, so no uniqueness padding is needed for
    correctness; the wrapper still carries an index column when the sorting
    permutation must be extracted. Descending order flips each bit before
    ranking, which preserves stability. *)

open Orq_proto

type dir = Asc | Desc

(** [sort ctx ~bits ?skip ~dir key carry] stably sorts the rows
    [(key, carry...)] on the [bits] key bits starting at bit [skip],
    returning the rearranged columns. *)
let sort (ctx : Ctx.t) ~bits ?(skip = 0) ?(dir = Asc) (key : Share.shared)
    (carry : Share.shared list) : Share.shared * Share.shared list =
  Share.check_enc Bool key;
  let y = ref key and rest = ref carry in
  for i = skip to skip + bits - 1 do
    (* fused bit extraction straight into packed flag lanes: one pass per
       share vector, no 0/1 word intermediate *)
    let b = Mpc.extract_bit_f !y i in
    let b = match dir with Asc -> b | Desc -> Mpc.bnot_f b in
    let sigma = Genbitperm.gen_f ctx b in
    match Orq_shuffle.Permops.apply_elementwise_table ctx (!y :: !rest) sigma with
    | y' :: rest' ->
        y := y';
        rest := rest'
    | [] -> assert false
  done;
  (!y, !rest)

(** Chunked twin of {!sort}: the key and carry columns stream
    chunk-at-a-time through bit extraction and the table-wide permutation
    application. The per-bit ranking ({!Genbitperm}) stays monolithic over
    the packed flag column — a 1-bit-per-row working set, 63x smaller than
    the table it ranks. Wire cost identical to {!sort}. *)
let sort_c (ctx : Ctx.t) ~bits ?(skip = 0) ?(dir = Asc) (key : Share.chunked)
    (carry : Share.chunked list) : Share.chunked * Share.chunked list =
  Share.check_enc_c Bool key;
  let y = ref key and rest = ref carry in
  let owned = ref false in
  for i = skip to skip + bits - 1 do
    (* per-chunk extraction, repacked bit-granularly into one flag column *)
    let b =
      Share.flags_concat_many
        (Array.init (Share.chunked_nchunks !y) (fun k ->
             Share.with_chunk_c !y k (fun s -> Mpc.extract_bit_f s i)))
    in
    let b = match dir with Asc -> b | Desc -> Mpc.bnot_f b in
    let sigma = Genbitperm.gen_f ctx b in
    let cols =
      Orq_shuffle.Permops.apply_elementwise_table_c ctx (!y :: !rest) sigma
    in
    if !owned then List.iter Share.dispose_c (!y :: !rest);
    owned := true;
    match cols with
    | y' :: rest' ->
        y := y';
        rest := rest'
    | [] -> assert false
  done;
  (!y, !rest)
