(** The compose-based radixsort of Asharov et al. (CCS'22), reimplemented as
    in the paper's Appendix B.3 comparison (their codebase is proprietary;
    the paper benchmarks its own reimplementation, as do we).

    Instead of eagerly permuting the working table after every bit, the
    running sorting permutation is kept as an elementwise sharing: each key
    bit is routed through the current permutation, its bit-sorting
    permutation is generated, and the two are composed. The data moves only
    once, at the end. This costs [composePerms] per bit — fewer bytes for
    very wide elements, but more rounds ([18 l - 14] vs [11 l + 7]). *)

open Orq_proto
module Permops = Orq_shuffle.Permops

type dir = Asc | Desc

(** [sort ctx ~bits ?skip ~dir key carry]: same contract as
    {!Radixsort.sort}. Also returns the composed sorting permutation. *)
let sort_with_perm (ctx : Ctx.t) ~bits ?(skip = 0) ?(dir = Asc)
    (key : Share.shared) (carry : Share.shared list) :
    (Share.shared * Share.shared list) * Share.shared =
  Share.check_enc Bool key;
  let sigma = ref None in
  for i = skip to skip + bits - 1 do
    let b = Mpc.extract_bit_f key i in
    let b = match dir with Asc -> b | Desc -> Mpc.bnot_f b in
    let b =
      match !sigma with
      | None -> b
      | Some s -> Permops.apply_elementwise_flags ctx b s
    in
    let si = Genbitperm.gen_f ctx b in
    sigma :=
      Some
        (match !sigma with
        | None -> si
        | Some s -> Permops.compose ctx s si)
  done;
  match !sigma with
  | None -> ((key, carry), Share.public_vec ctx Share.Arith (Orq_shuffle.Localperm.identity (Share.length key)))
  | Some s -> (
      match Permops.apply_elementwise_table ctx (key :: carry) s with
      | y :: rest -> ((y, rest), s)
      | [] -> assert false)

let sort ctx ~bits ?skip ?dir key carry =
  fst (sort_with_perm ctx ~bits ?skip ?dir key carry)
