(** Oblivious iterative quicksort (§3.2, Appendix B, Protocol 9):
    shuffle-then-sort. After a random sharded shuffle the results of pivot
    comparisons may be opened — for unique keys any outcome is consistent
    with many permutations of the data (Hamada et al.) — and the iterative
    control flow partitions every active segment in the same vectorized
    comparison round: O(log n) comparison rounds.

    Keys must be unique for security ({!Sortwrap} appends the row index);
    composite keys with per-column direction compare lexicographically. *)

open Orq_proto

type dir = Asc | Desc

type key = { col : Share.shared; width : int; dir : dir }

val take : int -> 'a list -> 'a list
val drop : int -> 'a list -> 'a list

val sort :
  Ctx.t -> keys:key list -> Share.shared list ->
  Share.shared list * Share.shared list
(** [sort ctx ~keys carry] = (sorted key columns, sorted carry columns). *)
