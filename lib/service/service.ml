open Orq_proto
module Wire = Orq_net.Wire
module Comm = Orq_net.Comm
module Netsim = Orq_net.Netsim
module Sql = Orq_planner.Sql
module Table = Orq_core.Table
module Tpch_gen = Orq_workloads.Tpch_gen

type config = {
  socket_path : string;
  sf : float;
  seed : int;
  max_jobs : int;
  max_rows : int;
  cache_capacity : int;
  verbose : bool;
  job_hook : (unit -> unit) option;
}

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some v when v >= 0 -> v
    | _ -> default)
  | None -> default

let default_config ?(socket_path = "/tmp/orq-service.sock") () =
  {
    socket_path;
    sf = 0.001;
    seed = 42;
    max_jobs = env_int "ORQ_SERVICE_MAX_JOBS" 4;
    max_rows = env_int "ORQ_SERVICE_MAX_ROWS" 10_000;
    cache_capacity = 64;
    verbose = false;
    job_hook = None;
  }

let proto_of_label = function
  | "sh-dm" | "2pc" -> Ok Ctx.Sh_dm
  | "sh-hm" | "3pc" -> Ok Ctx.Sh_hm
  | "mal-hm" | "4pc" -> Ok Ctx.Mal_hm
  | s -> Error (Printf.sprintf "unknown protocol %S (sh-dm|sh-hm|mal-hm)" s)

(* One backend per protocol kind: a long-lived context plus the shared
   database. Built lazily on first use, by the worker thread only. *)
type backend = { b_ctx : Ctx.t; b_db : Tpch_gen.mpc }

type job = {
  j_sql : string;
  j_proto : Ctx.kind;
  mutable j_reply : Wire.response option;
  j_m : Mutex.t;
  j_c : Condition.t;
}

type session = { s_id : int; s_fd : Unix.file_descr }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  plain : Tpch_gen.plain;
  backends : (Ctx.kind, backend) Hashtbl.t;
  cache : Wire.query_result Plan_cache.t;
  jobs : job Jobqueue.t;
  catalog_version : int;
  mutable running : bool;
  mutable sessions : session list;
  mutable next_session : int;
  mutable jobs_done : int;
  mutable rejected : int;
  m : Mutex.t;  (** sessions / counters / running *)
  mutable threads : Thread.t list;
}

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let logf t fmt =
  Printf.ksprintf
    (fun s -> if t.cfg.verbose then Printf.eprintf "[orq-service] %s\n%!" s)
    fmt

let socket_path t = t.cfg.socket_path

(* ------------------------------------------------------------------ *)
(* Query execution (worker thread)                                     *)
(* ------------------------------------------------------------------ *)

let backend t kind =
  match Hashtbl.find_opt t.backends kind with
  | Some b -> b
  | None ->
      let b_ctx = Ctx.create ~seed:t.cfg.seed kind in
      let b_db = Tpch_gen.share b_ctx t.plain in
      let b = { b_ctx; b_db } in
      Hashtbl.replace t.backends kind b;
      logf t "shared catalog for %s (%d parties)" (Ctx.kind_label kind)
        b_ctx.Ctx.parties;
      b

(* Canonical response rows: [Table.reveal] shuffles before opening (order
   carries no information), so we sort rows lexicographically to make
   responses deterministic — required for cache-hit ≡ cold-run equality. *)
let rows_of_opened (opened : (string * int array) list) (cols : string list) =
  let present = List.filter (fun c -> List.mem_assoc c opened) cols in
  let arrays = List.map (fun c -> List.assoc c opened) present in
  let n = match arrays with a :: _ -> Array.length a | [] -> 0 in
  let rows = List.init n (fun i -> List.map (fun a -> a.(i)) arrays) in
  (present, List.sort compare rows)

let execute t (j : job) : Wire.response =
  let proto_label = Ctx.kind_label j.j_proto in
  match
    Plan_cache.find t.cache ~proto:proto_label ~version:t.catalog_version
      ~sql:j.j_sql
  with
  | Some r -> Wire.Result { r with Wire.r_cache_hit = true }
  | None -> (
      let b = backend t j.j_proto in
      let c0 = Comm.snapshot b.b_ctx.Ctx.comm in
      let p0 = Comm.snapshot b.b_ctx.Ctx.preproc in
      match Sql.run (Tpch_gen.catalog b.b_db) j.j_sql with
      | exception Sql.Parse_error msg ->
          Wire.Error_r { code = Wire.Bad_request; msg }
      | exception Ctx.Abort msg ->
          Wire.Error_r { code = Wire.Internal; msg = "protocol abort: " ^ msg }
      | exception e ->
          Wire.Error_r { code = Wire.Internal; msg = Printexc.to_string e }
      | tbl, cols, fallbacks ->
          let opened = Table.reveal tbl in
          let r_tally = Comm.since b.b_ctx.Ctx.comm c0 in
          let r_pre = Comm.since b.b_ctx.Ctx.preproc p0 in
          let r_cols, rows = rows_of_opened opened cols in
          let r_truncated = List.length rows > t.cfg.max_rows in
          let r_rows =
            if r_truncated then List.filteri (fun i _ -> i < t.cfg.max_rows) rows
            else rows
          in
          let r =
            {
              Wire.r_cols;
              r_rows;
              r_truncated;
              r_fallbacks = fallbacks;
              r_cache_hit = false;
              r_tally;
              r_pre;
              r_lan_s = Netsim.network_time Netsim.lan r_tally;
              r_wan_s = Netsim.network_time Netsim.wan r_tally;
            }
          in
          Plan_cache.add t.cache ~proto:proto_label ~version:t.catalog_version
            ~sql:j.j_sql r;
          Wire.Result r)

let worker t () =
  let rec loop () =
    match Jobqueue.pop t.jobs with
    | None -> ()
    | Some j ->
        (match t.cfg.job_hook with Some h -> h () | None -> ());
        let reply =
          try execute t j
          with e ->
            Wire.Error_r { code = Wire.Internal; msg = Printexc.to_string e }
        in
        Jobqueue.finish t.jobs;
        with_lock t (fun () -> t.jobs_done <- t.jobs_done + 1);
        Mutex.lock j.j_m;
        j.j_reply <- Some reply;
        Condition.signal j.j_c;
        Mutex.unlock j.j_m;
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Sessions (one handler thread per connection)                        *)
(* ------------------------------------------------------------------ *)

let stats t : Wire.stats =
  with_lock t (fun () ->
      {
        Wire.s_sessions = List.length t.sessions;
        s_jobs = t.jobs_done;
        s_rejected = t.rejected;
        s_cache_hits = Plan_cache.hits t.cache;
        s_cache_misses = Plan_cache.misses t.cache;
      })

let submit t proto sql : Wire.response =
  let j =
    {
      j_sql = sql;
      j_proto = proto;
      j_reply = None;
      j_m = Mutex.create ();
      j_c = Condition.create ();
    }
  in
  if not (Jobqueue.try_push t.jobs j) then begin
    with_lock t (fun () -> t.rejected <- t.rejected + 1);
    Wire.Error_r
      {
        code = Wire.Busy;
        msg =
          Printf.sprintf "server busy: %d jobs in flight (max %d)"
            (Jobqueue.in_flight t.jobs) t.cfg.max_jobs;
      }
  end
  else begin
    Mutex.lock j.j_m;
    while j.j_reply = None do
      Condition.wait j.j_c j.j_m
    done;
    let r = Option.get j.j_reply in
    Mutex.unlock j.j_m;
    r
  end

let handle_session t (s : session) =
  let proto = ref Ctx.Sh_hm in
  (try
     let rec loop () =
       match Wire.recv_request s.s_fd with
       | None -> logf t "session %d: closed" s.s_id
       | Some req ->
           (match req with
           | Wire.Hello label -> (
               match proto_of_label label with
               | Ok k ->
                   proto := k;
                   Wire.send_response s.s_fd
                     (Wire.Hello_ok
                        { session = s.s_id; proto = Ctx.kind_label k })
               | Error msg ->
                   Wire.send_response s.s_fd
                     (Wire.Error_r { code = Wire.Bad_request; msg }))
           | Wire.Ping -> Wire.send_response s.s_fd Wire.Pong
           | Wire.Stats_req ->
               Wire.send_response s.s_fd (Wire.Stats_r (stats t))
           | Wire.Query sql ->
               logf t "session %d: query under %s: %s" s.s_id
                 (Ctx.kind_label !proto) sql;
               Wire.send_response s.s_fd (submit t !proto sql));
           loop ()
     in
     loop ()
   with
  | Wire.Wire_error msg ->
      logf t "session %d: malformed frame: %s" s.s_id msg;
      (* best-effort error frame; the connection is then dropped *)
      (try
         Wire.send_response s.s_fd
           (Wire.Error_r
              { code = Wire.Bad_request; msg = "malformed frame: " ^ msg })
       with _ -> ())
  | Unix.Unix_error _ | Sys_error _ ->
      (* client went away mid-exchange; session-local, server lives on *)
      logf t "session %d: connection error" s.s_id);
  with_lock t (fun () ->
      t.sessions <- List.filter (fun s' -> s'.s_id <> s.s_id) t.sessions);
  try Unix.close s.s_fd with _ -> ()

let accept_loop t () =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> if t.running then loop ()
    | exception _ -> if t.running then loop ()
    | fd, _ ->
        let s =
          with_lock t (fun () ->
              let id = t.next_session in
              t.next_session <- id + 1;
              let s = { s_id = id; s_fd = fd } in
              t.sessions <- s :: t.sessions;
              s)
        in
        logf t "session %d: accepted" s.s_id;
        let th = Thread.create (fun () -> handle_session t s) () in
        with_lock t (fun () -> t.threads <- th :: t.threads);
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let start (cfg : config) : t =
  (* a dying client must not kill the server on write *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen listen_fd 64;
  let t =
    {
      cfg;
      listen_fd;
      plain = Tpch_gen.generate ~seed:cfg.seed cfg.sf;
      backends = Hashtbl.create 4;
      cache = Plan_cache.create ~capacity:cfg.cache_capacity;
      jobs = Jobqueue.create ~capacity:cfg.max_jobs;
      catalog_version = 1;
      running = true;
      sessions = [];
      next_session = 1;
      jobs_done = 0;
      rejected = 0;
      m = Mutex.create ();
      threads = [];
    }
  in
  let worker_th = Thread.create (worker t) () in
  with_lock t (fun () -> t.threads <- worker_th :: t.threads);
  let accept_th = Thread.create (accept_loop t) () in
  with_lock t (fun () -> t.threads <- accept_th :: t.threads);
  logf t "listening on %s (sf=%g, max-jobs=%d, max-rows=%d, cache=%d)"
    cfg.socket_path cfg.sf cfg.max_jobs cfg.max_rows cfg.cache_capacity;
  t

let stop t =
  let was_running = with_lock t (fun () ->
      let r = t.running in
      t.running <- false;
      r)
  in
  if was_running then begin
    Jobqueue.close t.jobs;
    (* shutdown before close: close alone does not wake a thread blocked
       in accept on Linux *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with _ -> ());
    (try Unix.close t.listen_fd with _ -> ());
    (* wake handler threads blocked in read *)
    with_lock t (fun () ->
        List.iter
          (fun s ->
            try Unix.shutdown s.s_fd Unix.SHUTDOWN_ALL with _ -> ())
          t.sessions);
    let ths = with_lock t (fun () -> t.threads) in
    List.iter (fun th -> try Thread.join th with _ -> ()) ths;
    try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ()
  end

let wait t =
  let ths = with_lock t (fun () -> t.threads) in
  List.iter (fun th -> try Thread.join th with _ -> ()) ths
