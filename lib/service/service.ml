open Orq_proto
module Wire = Orq_net.Wire
module Comm = Orq_net.Comm
module Netsim = Orq_net.Netsim
module Sql = Orq_planner.Sql
module Table = Orq_core.Table
module Joincost = Orq_core.Joincost
module Tpch_gen = Orq_workloads.Tpch_gen
module Parallel = Orq_util.Parallel
module Locked = Orq_util.Locked

type config = {
  socket_path : string;
  sf : float;
  seed : int;
  workers : int;
  max_jobs : int;
  max_rows : int;
  cache_capacity : int;
  admit_timeout_s : float;
  drain_timeout_s : float;
  pace : Netsim.profile option;
  prewarm : Ctx.kind list;
  verbose : bool;
  job_hook : (unit -> unit) option;
}

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v >= 0 -> v
      | _ -> default)
  | None -> default

let pace_of_label = function
  | "" | "off" | "none" -> Ok None
  | "lan" -> Ok (Some Netsim.lan)
  | "wan" -> Ok (Some Netsim.wan)
  | "geo" -> Ok (Some Netsim.geo)
  | s -> Error (Printf.sprintf "unknown pace profile %S (off|lan|wan|geo)" s)

let env_pace () =
  match Sys.getenv_opt "ORQ_SERVICE_PACE" with
  | None -> None
  | Some s -> (
      match pace_of_label (String.lowercase_ascii (String.trim s)) with
      | Ok p -> p
      | Error _ -> None)

let default_config ?(socket_path = "/tmp/orq-service.sock") () =
  let workers = max 1 (env_int "ORQ_SERVICE_WORKERS" 1) in
  {
    socket_path;
    sf = 0.001;
    seed = 42;
    workers;
    max_jobs = env_int "ORQ_SERVICE_MAX_JOBS" (max 4 (2 * workers));
    max_rows = env_int "ORQ_SERVICE_MAX_ROWS" 10_000;
    cache_capacity = 64;
    admit_timeout_s = float_of_int (env_int "ORQ_SERVICE_ADMIT_MS" 2_000) /. 1e3;
    drain_timeout_s = float_of_int (env_int "ORQ_SERVICE_DRAIN_MS" 5_000) /. 1e3;
    pace = env_pace ();
    prewarm = [];
    verbose = false;
    job_hook = None;
  }

let proto_of_label = function
  | "sh-dm" | "2pc" -> Ok Ctx.Sh_dm
  | "sh-hm" | "3pc" -> Ok Ctx.Sh_hm
  | "mal-hm" | "4pc" -> Ok Ctx.Mal_hm
  | s -> Error (Printf.sprintf "unknown protocol %S (sh-dm|sh-hm|mal-hm)" s)

(* One backend per (worker, protocol kind): a long-lived context plus this
   worker's own sharing of the database. Worker-local so execution workers
   never contend on protocol state (PRG, metering, label stacks). *)
type backend = { b_ctx : Ctx.t; b_db : Tpch_gen.mpc }

type job = {
  j_sql : string;
  j_proto : Ctx.kind;
  j_qseed : int;  (** per-query session seed: derived, deterministic *)
  j_explain : bool;
      (** capture the per-join physical-operator decision log and answer
          with [Explain_r] instead of [Result] *)
  mutable j_reply : Wire.response option;
  j_m : Locked.t;
  j_c : Condition.t;
}

(* Per-job reply lock: ranks above the queue and cache locks because a
   worker delivers while holding nothing, and a session thread waits on
   it having released everything else. *)
let fresh_job ~sql ~proto ~qseed ~explain =
  {
    j_sql = sql;
    j_proto = proto;
    j_qseed = qseed;
    j_explain = explain;
    j_reply = None;
    j_m = Locked.create ~name:"service_job" ~rank:40 ();
    j_c = Condition.create ();
  }

type session = { s_id : int; s_fd : Unix.file_descr; mutable s_group : int }

(* A live execution worker: the quit flag retires it on a live
   resize-down without disturbing the rest of the pool. *)
type worker = { w_id : int; w_quit : bool ref }

let exec_ring_size = 512

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  plain : Tpch_gen.plain;
  cache : Wire.query_result Plan_cache.t;
  jobs : job Jobqueue.t;
  catalog_version : int;
  mutable running : bool;
  mutable sessions : session list;
  mutable next_session : int;
  mutable jobs_done : int;
  mutable rejected : int;
  mutable desired_workers : int;
  mutable workers : worker list;  (** live workers, newest first *)
  mutable next_worker : int;
  mutable domains : unit Domain.t list;  (** every worker domain spawned *)
  execs : float array;  (** ring of recent execution times, seconds *)
  mutable nexecs : int;
  m : Locked.t;  (** sessions / counters / workers / running *)
  mutable session_threads : Thread.t list;
  mutable accept_thread : Thread.t option;
}

let with_lock t f = Locked.with_lock t.m f

let logf t fmt =
  Printf.ksprintf
    (fun s -> if t.cfg.verbose then Printf.eprintf "[orq-service] %s\n%!" s)
    fmt

let socket_path t = t.cfg.socket_path

(* ------------------------------------------------------------------ *)
(* Query execution (worker domains)                                    *)
(* ------------------------------------------------------------------ *)

(* Each query runs under a session seed derived from the service seed,
   the protocol, and the normalized SQL — never from execution history.
   Combined with [Ctx.reseed] this makes every execution a pure function
   of (catalog, protocol, query): per-query Comm tallies and transcripts
   are byte-identical whatever ran before, whichever worker runs it, and
   at every worker count — including data-dependent control flow like
   shuffled-quicksort recursion depths. *)
let query_seed_for ~seed ~proto_label ~sql =
  Hashtbl.hash (seed, proto_label, Plan_cache.normalize sql)

let query_seed t ~proto_label ~sql =
  query_seed_for ~seed:t.cfg.seed ~proto_label ~sql

let backend t backends kind =
  match Hashtbl.find_opt backends kind with
  | Some b -> b
  | None ->
      let b_ctx = Ctx.create ~seed:t.cfg.seed kind in
      let b_db = Tpch_gen.share b_ctx t.plain in
      let b = { b_ctx; b_db } in
      Hashtbl.replace backends kind b;
      logf t "shared catalog for %s (%d parties)" (Ctx.kind_label kind)
        b_ctx.Ctx.parties;
      b

(* Canonical response rows: [Table.reveal] shuffles before opening (order
   carries no information), so we sort rows lexicographically to make
   responses deterministic — required for cache-hit ≡ cold-run equality. *)
let canonical_rows (opened : (string * int array) list) (cols : string list) =
  let present = List.filter (fun c -> List.mem_assoc c opened) cols in
  let arrays = List.map (fun c -> List.assoc c opened) present in
  let n = match arrays with a :: _ -> Array.length a | [] -> 0 in
  let rows = List.init n (fun i -> List.map (fun a -> a.(i)) arrays) in
  (present, List.sort compare rows)

(* The one execution path every deployment shares: reseed to the derived
   query seed, run the planner, reveal, canonicalize. The in-process
   service calls it from worker domains; a party cluster (lib/party/)
   calls it with a transport channel attached to [ctx.comm], so results
   and tallies are byte-identical across deployments by construction. *)
let execute_sql ~(ctx : Ctx.t) ~(db : Tpch_gen.mpc) ~qseed ~max_rows sql :
    Wire.response =
  Ctx.reseed ctx qseed;
  let c0 = Comm.snapshot ctx.Ctx.comm in
  let p0 = Comm.snapshot ctx.Ctx.preproc in
  (* Chunk-store accounting is process-wide: the peak and spill counts are
     exact for a lone query and approximate (an upper bound) when several
     workers execute concurrently. *)
  Orq_util.Chunkvec.reset_peak ();
  let m0 = (Orq_util.Chunkvec.stats ()).Orq_util.Chunkvec.st_spills in
  match Sql.run (Tpch_gen.catalog db) sql with
  | exception Sql.Parse_error msg ->
      Wire.Error_r { code = Wire.Bad_request; msg }
  | exception Ctx.Abort msg ->
      Wire.Error_r { code = Wire.Internal; msg = "protocol abort: " ^ msg }
  | exception e -> Wire.Error_r { code = Wire.Internal; msg = Printexc.to_string e }
  | tbl, cols, fallbacks ->
      let opened = Table.reveal tbl in
      let r_tally = Comm.since ctx.Ctx.comm c0 in
      let r_pre = Comm.since ctx.Ctx.preproc p0 in
      let r_cols, rows = canonical_rows opened cols in
      let r_truncated = List.length rows > max_rows in
      let r_rows =
        if r_truncated then List.filteri (fun i _ -> i < max_rows) rows
        else rows
      in
      Wire.Result
        {
          Wire.r_cols;
          r_rows;
          r_truncated;
          r_fallbacks = fallbacks;
          r_cache_hit = false;
          r_tally;
          r_pre;
          r_lan_s = Netsim.network_time Netsim.lan r_tally;
          r_wan_s = Netsim.network_time Netsim.wan r_tally;
          r_peak_bytes = Orq_util.Chunkvec.peak_live_bytes ();
          r_spills = (Orq_util.Chunkvec.stats ()).Orq_util.Chunkvec.st_spills - m0;
        }

(* Render the worker domain's Joincost decision log as the Explain wire
   body. Must run on the domain that executed the query — the log is
   domain-local state. *)
let explain_of_log ~fallbacks (ds : Joincost.decision list) : Wire.explain =
  let cand (op, tally, est) =
    {
      Wire.jc_op = Joincost.op_label op;
      jc_rounds = tally.Comm.t_rounds;
      jc_bits = tally.Comm.t_bits;
      jc_messages = tally.Comm.t_messages;
      jc_est_s = est;
    }
  in
  let dec (d : Joincost.decision) =
    {
      Wire.je_node = d.Joincost.jd_node;
      je_variant = Joincost.variant_label d.jd_shape.Joincost.j_variant;
      je_n = d.jd_shape.Joincost.j_n;
      je_m = d.jd_shape.Joincost.j_m;
      je_chosen = Joincost.op_label d.jd_chosen;
      je_forced = d.jd_forced;
      je_cands = List.map cand d.jd_cands;
    }
  in
  {
    Wire.e_mode = Joincost.mode_label (Joincost.mode ());
    e_profile = (Joincost.profile ()).Netsim.label;
    e_fallbacks = fallbacks;
    e_joins = List.map dec ds;
  }

let execute t backends (j : job) : Wire.response =
  let b = backend t backends j.j_proto in
  let run () =
    execute_sql ~ctx:b.b_ctx ~db:b.b_db ~qseed:j.j_qseed
      ~max_rows:t.cfg.max_rows j.j_sql
  in
  if not j.j_explain then run ()
  else begin
    Joincost.reset_log ();
    match run () with
    | Wire.Result r ->
        Wire.Explain_r
          (explain_of_log ~fallbacks:r.Wire.r_fallbacks (Joincost.log ()))
    | other -> other
  end

let deliver (j : job) (reply : Wire.response) =
  Locked.with_lock j.j_m (fun () ->
      j.j_reply <- Some reply;
      Condition.signal j.j_c)

let await_reply (j : job) : Wire.response =
  Locked.with_lock j.j_m (fun () ->
      while j.j_reply = None do
        Locked.wait j.j_m j.j_c
      done;
      Option.get j.j_reply)

(* Partition the global data-parallel lane budget across the execution
   workers: inter-query concurrency times intra-query data parallelism
   never exceeds ORQ_DOMAINS lanes in total. *)
let lanes_per_worker t =
  max 1 (Parallel.get_num_domains () / max 1 t.desired_workers)

let worker_loop t (w : worker) () =
  let backends : (Ctx.kind, backend) Hashtbl.t = Hashtbl.create 4 in
  (* build the configured protocol backends before serving, so the first
     queries after startup (or a live resize) don't pay catalog sharing *)
  List.iter (fun k -> ignore (backend t backends k)) t.cfg.prewarm;
  let rec loop () =
    Parallel.set_lanes (lanes_per_worker t);
    match Jobqueue.pop ~should_stop:(fun () -> !(w.w_quit)) t.jobs with
    | None -> ()
    | Some j ->
        (match t.cfg.job_hook with Some h -> h () | None -> ());
        let t0 = Unix.gettimeofday () in
        let reply =
          try execute t backends j
          with e ->
            Wire.Error_r { code = Wire.Internal; msg = Printexc.to_string e }
        in
        (* Paced mode: model a real deployment where each query's wall
           time is compute + network (Netsim's first-order model). The
           worker stays bound to the query for its modeled network time —
           exactly the regime in which a pool of workers, each driving
           its own party connections, overlaps queries and scales
           throughput. *)
        (match (t.cfg.pace, reply) with
        | Some p, Wire.Result r ->
            Unix.sleepf (Netsim.network_time p r.Wire.r_tally)
        | _ -> ());
        Jobqueue.finish t.jobs;
        let dt = Unix.gettimeofday () -. t0 in
        with_lock t (fun () ->
            t.jobs_done <- t.jobs_done + 1;
            t.execs.(t.nexecs mod exec_ring_size) <- dt;
            t.nexecs <- t.nexecs + 1);
        deliver j reply;
        loop ()
  in
  loop ()

(* Spawn [n] fresh workers (caller must not hold [t.m]). *)
let spawn_workers t n =
  for _ = 1 to n do
    let w =
      with_lock t (fun () ->
          let w = { w_id = t.next_worker; w_quit = ref false } in
          t.next_worker <- t.next_worker + 1;
          t.workers <- w :: t.workers;
          w)
    in
    let d = Domain.spawn (worker_loop t w) in
    with_lock t (fun () -> t.domains <- d :: t.domains);
    logf t "worker %d started" w.w_id
  done

(* Live resize: spawn up, or retire the newest workers down (they finish
   their current job, re-check their quit flag, and exit). *)
let set_workers t n =
  let n = max 1 (min 64 n) in
  let grow =
    with_lock t (fun () ->
        t.desired_workers <- n;
        let cur = List.length t.workers in
        if n >= cur then n - cur
        else begin
          let rec retire k = function
            | w :: rest when k > 0 ->
                w.w_quit := true;
                retire (k - 1) rest
            | rest -> rest
          in
          t.workers <- retire (cur - n) t.workers;
          0
        end)
  in
  if grow > 0 then spawn_workers t grow;
  Jobqueue.wake t.jobs;
  logf t "workers resized to %d" n

let workers t = with_lock t (fun () -> t.desired_workers)

(* ------------------------------------------------------------------ *)
(* Sessions (one handler thread per connection)                        *)
(* ------------------------------------------------------------------ *)

let percentiles samples n =
  let n = min n (Array.length samples) in
  if n = 0 then (0., 0.)
  else begin
    let s = Array.sub samples 0 n in
    Array.sort compare s;
    let at p =
      s.(min (n - 1) (int_of_float ((float_of_int (n - 1) *. p) +. 0.5)))
    in
    (at 0.5, at 0.95)
  end

let stats t : Wire.stats =
  let qc = Jobqueue.counts t.jobs in
  let w50, w95 = Jobqueue.wait_percentiles t.jobs in
  let m = Orq_util.Chunkvec.stats () in
  with_lock t (fun () ->
      let e50, e95 = percentiles t.execs t.nexecs in
      {
        Wire.s_sessions = List.length t.sessions;
        s_workers = t.desired_workers;
        s_jobs = t.jobs_done;
        s_rejected = t.rejected;
        s_cache_hits = Plan_cache.hits t.cache;
        s_cache_misses = Plan_cache.misses t.cache;
        s_coalesced = Plan_cache.coalesced t.cache;
        s_queue_depth = qc.Jobqueue.c_depth;
        s_in_flight = qc.Jobqueue.c_depth + qc.Jobqueue.c_running;
        s_wait_p50_ms = w50 *. 1e3;
        s_wait_p95_ms = w95 *. 1e3;
        s_exec_p50_ms = e50 *. 1e3;
        s_exec_p95_ms = e95 *. 1e3;
        s_mem_live_bytes = m.Orq_util.Chunkvec.st_live_bytes;
        s_mem_peak_bytes = m.Orq_util.Chunkvec.st_peak_live_bytes;
        s_mem_spilled_bytes = m.Orq_util.Chunkvec.st_spilled_bytes;
        s_rss_peak_kb = Orq_util.Chunkvec.rss_peak_kb ();
      })

let busy_frame t =
  let qc = Jobqueue.counts t.jobs in
  Wire.Error_r
    {
      code = Wire.Busy;
      msg =
        Printf.sprintf
          "server busy: %d queued + %d executing (capacity %d, waited %.0f \
           ms; by class h/n/l = %d/%d/%d)"
          qc.Jobqueue.c_depth qc.Jobqueue.c_running (Jobqueue.capacity t.jobs)
          (t.cfg.admit_timeout_s *. 1e3)
          qc.Jobqueue.c_by_class.(0) qc.Jobqueue.c_by_class.(1)
          qc.Jobqueue.c_by_class.(2);
    }

(* Submit one query from a session thread. Cache hits and coalesced
   replays are answered here without touching the job queue; only genuine
   cold executions occupy a worker. *)
let rec submit t (s : session) ~prio proto sql : Wire.response =
  if not (with_lock t (fun () -> t.running)) then
    Wire.Error_r { code = Wire.Busy; msg = "server shutting down" }
  else
    let proto_label = Ctx.kind_label proto in
    let version = t.catalog_version in
    match Plan_cache.acquire t.cache ~proto:proto_label ~version ~sql with
    | Plan_cache.Cached r -> Wire.Result { r with Wire.r_cache_hit = true }
    | Plan_cache.Coalesced (Some r) ->
        Wire.Result { r with Wire.r_cache_hit = true }
    | Plan_cache.Coalesced None ->
        (* the flight we joined aborted; take our own turn *)
        submit t s ~prio proto sql
    | Plan_cache.Execute flight ->
        let j =
          fresh_job ~sql ~proto
            ~qseed:(query_seed t ~proto_label ~sql)
            ~explain:false
        in
        let resolve v =
          Plan_cache.resolve t.cache ~proto:proto_label ~version ~sql flight v
        in
        if
          not
            (Jobqueue.push t.jobs ~group:s.s_group ~prio
               ~timeout_s:t.cfg.admit_timeout_s j)
        then begin
          resolve None;
          with_lock t (fun () -> t.rejected <- t.rejected + 1);
          busy_frame t
        end
        else begin
          let r = await_reply j in
          (match r with
          | Wire.Result res -> resolve (Some res)
          | _ -> resolve None);
          r
        end

(* Explain always executes cold — the decision log is a property of an
   actual execution, and a cached response carries none — so it bypasses
   the plan cache entirely (no lookup, no store, no single-flight). *)
let submit_explain t (s : session) proto sql : Wire.response =
  if not (with_lock t (fun () -> t.running)) then
    Wire.Error_r { code = Wire.Busy; msg = "server shutting down" }
  else
    let proto_label = Ctx.kind_label proto in
    let j =
      fresh_job ~sql ~proto
        ~qseed:(query_seed t ~proto_label ~sql)
        ~explain:true
    in
    if
      not
        (Jobqueue.push t.jobs ~group:s.s_group ~prio:Jobqueue.Normal
           ~timeout_s:t.cfg.admit_timeout_s j)
    then begin
      with_lock t (fun () -> t.rejected <- t.rejected + 1);
      busy_frame t
    end
    else await_reply j

let handle_session t (s : session) =
  let proto = ref Ctx.Sh_hm in
  let run_query sql prio =
    logf t "session %d: query under %s (%s): %s" s.s_id
      (Ctx.kind_label !proto)
      (Jobqueue.prio_label prio)
      sql;
    Wire.send_response s.s_fd (submit t s ~prio !proto sql)
  in
  (try
     let rec loop () =
       match Wire.recv_request s.s_fd with
       | None -> logf t "session %d: closed" s.s_id
       | Some req ->
           (match req with
           | Wire.Hello { h_version; h_proto; h_client } -> (
               if h_version <> Wire.protocol_version then
                 Wire.send_response s.s_fd
                   (Wire.Error_r
                      {
                        code = Wire.Bad_request;
                        msg =
                          Printf.sprintf
                            "protocol version mismatch: client speaks v%d, \
                             server speaks v%d — upgrade the older side"
                            h_version Wire.protocol_version;
                      })
               else
                 match proto_of_label h_proto with
                 | Ok k ->
                     proto := k;
                     (* connections sharing a client name share a fairness
                        lane; anonymous connections are their own group *)
                     if h_client <> "" then
                       s.s_group <- Hashtbl.hash ("client:" ^ h_client);
                     Wire.send_response s.s_fd
                       (Wire.Hello_ok
                          { session = s.s_id; proto = Ctx.kind_label k })
                 | Error msg ->
                     Wire.send_response s.s_fd
                       (Wire.Error_r { code = Wire.Bad_request; msg }))
           | Wire.Ping -> Wire.send_response s.s_fd Wire.Pong
           | Wire.Net_stats_req ->
               Wire.send_response s.s_fd
                 (Wire.Error_r
                    {
                      code = Wire.Bad_request;
                      msg =
                        "this server is the in-process simulation, not a \
                         party cluster: no on-the-wire measurements (run \
                         `orq party` for a real deployment)";
                    })
           | Wire.Stats_req ->
               Wire.send_response s.s_fd (Wire.Stats_r (stats t))
           | Wire.Set_workers n ->
               set_workers t n;
               Wire.send_response s.s_fd (Wire.Stats_r (stats t))
           | Wire.Query sql -> run_query sql Jobqueue.Normal
           | Wire.Explain sql ->
               logf t "session %d: explain under %s: %s" s.s_id
                 (Ctx.kind_label !proto) sql;
               Wire.send_response s.s_fd (submit_explain t s !proto sql)
           | Wire.Query_p { q_sql; q_prio } -> (
               match Jobqueue.prio_of_int q_prio with
               | Some prio -> run_query q_sql prio
               | None ->
                   Wire.send_response s.s_fd
                     (Wire.Error_r
                        {
                          code = Wire.Bad_request;
                          msg =
                            Printf.sprintf "bad priority %d (0|1|2)" q_prio;
                        })));
           loop ()
     in
     loop ()
   with
  | Wire.Wire_error msg ->
      logf t "session %d: malformed frame: %s" s.s_id msg;
      (* best-effort error frame; the connection is then dropped *)
      (try
         Wire.send_response s.s_fd
           (Wire.Error_r
              { code = Wire.Bad_request; msg = "malformed frame: " ^ msg })
       with _ -> ())
  | Unix.Unix_error _ | Sys_error _ ->
      (* client went away mid-exchange; session-local, server lives on *)
      logf t "session %d: connection error" s.s_id);
  with_lock t (fun () ->
      t.sessions <- List.filter (fun s' -> s'.s_id <> s.s_id) t.sessions);
  try Unix.close s.s_fd with _ -> ()

let accept_loop t () =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> if t.running then loop ()
    | exception _ -> if t.running then loop ()
    | fd, _ ->
        let s =
          with_lock t (fun () ->
              let id = t.next_session in
              t.next_session <- id + 1;
              let s = { s_id = id; s_fd = fd; s_group = id } in
              t.sessions <- s :: t.sessions;
              s)
        in
        logf t "session %d: accepted" s.s_id;
        let th = Thread.create (fun () -> handle_session t s) () in
        with_lock t (fun () -> t.session_threads <- th :: t.session_threads);
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let start (cfg : config) : t =
  (* a dying client must not kill the server on write *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen listen_fd 64;
  let t =
    {
      cfg;
      listen_fd;
      plain = Tpch_gen.generate ~seed:cfg.seed cfg.sf;
      cache = Plan_cache.create ~capacity:cfg.cache_capacity;
      jobs = Jobqueue.create ~capacity:cfg.max_jobs;
      catalog_version = 1;
      running = true;
      sessions = [];
      next_session = 1;
      jobs_done = 0;
      rejected = 0;
      desired_workers = max 1 cfg.workers;
      workers = [];
      next_worker = 0;
      domains = [];
      execs = Array.make exec_ring_size 0.;
      nexecs = 0;
      m = Locked.create ~name:"service" ~rank:10 ();
      session_threads = [];
      accept_thread = None;
    }
  in
  spawn_workers t t.desired_workers;
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  logf t
    "listening on %s (sf=%g, workers=%d, max-jobs=%d, max-rows=%d, cache=%d%s)"
    cfg.socket_path cfg.sf t.desired_workers cfg.max_jobs cfg.max_rows
    cfg.cache_capacity
    (match cfg.pace with
    | Some p -> ", pace=" ^ p.Netsim.label
    | None -> "");
  t

(* Shutdown ordering: stop accepting, give in-flight jobs a drain
   deadline, fail whatever never started with a proper error frame, join
   the workers, and only then wind down the sessions — so a client
   mid-query gets its result (or an explicit shutdown error), never a
   silently dropped connection. *)
let stop t =
  let was_running =
    with_lock t (fun () ->
        let r = t.running in
        t.running <- false;
        r)
  in
  if was_running then begin
    (* 1. stop accepting new connections; shutdown before close: close
       alone does not wake a thread blocked in accept on Linux *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with _ -> ());
    (try Unix.close t.listen_fd with _ -> ());
    (match t.accept_thread with
    | Some th -> ( try Thread.join th with _ -> ())
    | None -> ());
    (* 2. drain in-flight jobs up to the deadline (new submissions are
       already refused by the [running] check in [submit]) *)
    let deadline = Unix.gettimeofday () +. t.cfg.drain_timeout_s in
    while Jobqueue.in_flight t.jobs > 0 && Unix.gettimeofday () < deadline do
      Unix.sleepf 0.01
    done;
    (* 3. close the queue; answer whatever never started with an error
       frame (their session threads wake, reply, and return to recv) *)
    Jobqueue.close t.jobs;
    List.iter
      (fun j ->
        deliver j
          (Wire.Error_r { code = Wire.Busy; msg = "server shutting down" }))
      (Jobqueue.drain_remaining t.jobs);
    (* 4. workers exit on the closed queue once their current job is done *)
    List.iter (fun d -> try Domain.join d with _ -> ()) t.domains;
    (* 5. sessions: end the read side only — in-flight replies and error
       frames still go out on the write side — then join the handlers.
       Snapshot under the lock, shut down outside it (no syscalls under
       a held lock). *)
    let sess = with_lock t (fun () -> t.sessions) in
    List.iter
      (fun s -> try Unix.shutdown s.s_fd Unix.SHUTDOWN_RECEIVE with _ -> ())
      sess;
    let ths = with_lock t (fun () -> t.session_threads) in
    List.iter (fun th -> try Thread.join th with _ -> ()) ths;
    try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ()
  end

let wait t =
  (match t.accept_thread with
  | Some th -> ( try Thread.join th with _ -> ())
  | None -> ());
  let ths = with_lock t (fun () -> t.session_threads) in
  List.iter (fun th -> try Thread.join th with _ -> ())
    ths
