type 'a t = {
  capacity : int;
  q : 'a Queue.t;
  mutable running : int;  (** popped but not yet finished *)
  mutable closed : bool;
  m : Mutex.t;
  c : Condition.t;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Jobqueue.create: negative capacity";
  {
    capacity;
    q = Queue.create ();
    running = 0;
    closed = false;
    m = Mutex.create ();
    c = Condition.create ();
  }

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let try_push t x =
  with_lock t (fun () ->
      if t.closed || Queue.length t.q + t.running >= t.capacity then false
      else begin
        Queue.push x t.q;
        Condition.signal t.c;
        true
      end)

let pop t =
  with_lock t (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.q) then begin
          t.running <- t.running + 1;
          Some (Queue.pop t.q)
        end
        else if t.closed then None
        else begin
          Condition.wait t.c t.m;
          wait ()
        end
      in
      wait ())

let finish t =
  with_lock t (fun () ->
      if t.running > 0 then t.running <- t.running - 1)

let in_flight t = with_lock t (fun () -> Queue.length t.q + t.running)

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.c)
