(** Fair, prioritized, bounded job queue for the query service.

    See the interface for the scheduling contract. Internally each
    priority class holds one FIFO per client group plus a round-robin
    ring of group ids; [pop] serves classes strictly by priority and
    groups within a class in ring order, so no group can starve another
    within its class. *)

module Locked = Orq_util.Locked

type prio = High | Normal | Low

let prio_index = function High -> 0 | Normal -> 1 | Low -> 2
let prio_label = function High -> "high" | Normal -> "normal" | Low -> "low"

let prio_of_int = function
  | 0 -> Some High
  | 1 -> Some Normal
  | 2 -> Some Low
  | _ -> None

type 'a item = { it_v : 'a; it_pushed : float }

(* One priority class: per-group FIFOs and the round-robin ring of groups
   that currently have queued work. *)
type 'a cls = {
  fifos : (int, 'a item Queue.t) Hashtbl.t;
  ring : int Queue.t;
  mutable cls_depth : int;
}

let wait_ring_size = 512

type 'a t = {
  mutable capacity : int;
  classes : 'a cls array;  (** indexed by {!prio_index} *)
  mutable running : int;  (** popped but not yet finished *)
  mutable closed : bool;
  waits : float array;  (** ring of recent queue-wait samples, seconds *)
  mutable nwaits : int;  (** total samples ever recorded *)
  m : Locked.t;
  nonempty : Condition.t;  (** work arrived, [close] or [wake] *)
}

type counts = {
  c_depth : int;  (** queued, all classes *)
  c_running : int;
  c_by_class : int array;  (** queued per class, [|high; normal; low|] *)
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Jobqueue.create: negative capacity";
  {
    capacity;
    classes =
      Array.init 3 (fun _ ->
          { fifos = Hashtbl.create 16; ring = Queue.create (); cls_depth = 0 });
    running = 0;
    closed = false;
    waits = Array.make wait_ring_size 0.;
    nwaits = 0;
    m = Locked.create ~name:"jobqueue" ~rank:20 ();
    nonempty = Condition.create ();
  }

let with_lock t f = Locked.with_lock t.m f

let depth_unlocked t =
  t.classes.(0).cls_depth + t.classes.(1).cls_depth + t.classes.(2).cls_depth

let enqueue_unlocked t ~group ~prio x =
  let c = t.classes.(prio_index prio) in
  let q =
    match Hashtbl.find_opt c.fifos group with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace c.fifos group q;
        q
  in
  if Queue.is_empty q then Queue.push group c.ring;
  Queue.push { it_v = x; it_pushed = Unix.gettimeofday () } q;
  c.cls_depth <- c.cls_depth + 1;
  Condition.signal t.nonempty

let try_push t ~group ~prio x =
  with_lock t (fun () ->
      if t.closed || depth_unlocked t + t.running >= t.capacity then false
      else begin
        enqueue_unlocked t ~group ~prio x;
        true
      end)

(* Blocking admission: wait up to [timeout_s] for an in-flight slot. The
   stdlib [Condition] has no timed wait, so saturation is polled on a
   short period — the poll only runs while the server is at capacity, so
   it costs nothing on the fast path. Each probe is its own locked
   region and the sleep happens unlocked (the discipline forbids
   blocking calls under a held lock). *)
let push t ~group ~prio ~timeout_s x =
  let deadline = Unix.gettimeofday () +. Float.max 0. timeout_s in
  let rec attempt () =
    let r =
      with_lock t (fun () ->
          if t.closed then `Fail
          else if depth_unlocked t + t.running < t.capacity then begin
            enqueue_unlocked t ~group ~prio x;
            `Ok
          end
          else if Unix.gettimeofday () >= deadline then `Fail
          else `Retry)
    in
    match r with
    | `Ok -> true
    | `Fail -> false
    | `Retry ->
        Unix.sleepf 0.002;
        attempt ()
  in
  attempt ()

(* Pop the next item honoring priority order and the per-group ring. *)
let take_unlocked t =
  let rec from_class i =
    if i >= 3 then None
    else
      let c = t.classes.(i) in
      if Queue.is_empty c.ring then from_class (i + 1)
      else begin
        let g = Queue.pop c.ring in
        match Hashtbl.find_opt c.fifos g with
        | None -> from_class i (* stale ring entry; impossible, but safe *)
        | Some q ->
            let item = Queue.pop q in
            if Queue.is_empty q then Hashtbl.remove c.fifos g
            else Queue.push g c.ring;
            c.cls_depth <- c.cls_depth - 1;
            Some item
      end
  in
  from_class 0

let pop ?(should_stop = fun () -> false) t =
  with_lock t (fun () ->
      let rec wait () =
        if should_stop () then None
        else
          match take_unlocked t with
          | Some item ->
              t.running <- t.running + 1;
              t.waits.(t.nwaits mod wait_ring_size) <-
                Unix.gettimeofday () -. item.it_pushed;
              t.nwaits <- t.nwaits + 1;
              Some item.it_v
          | None ->
              if t.closed then None
              else begin
                Locked.wait t.m t.nonempty;
                wait ()
              end
      in
      wait ())

let finish t =
  with_lock t (fun () ->
      if t.running > 0 then t.running <- t.running - 1)

let wake t = with_lock t (fun () -> Condition.broadcast t.nonempty)

let in_flight t = with_lock t (fun () -> depth_unlocked t + t.running)
let depth t = with_lock t (fun () -> depth_unlocked t)

let counts t =
  with_lock t (fun () ->
      {
        c_depth = depth_unlocked t;
        c_running = t.running;
        c_by_class = Array.map (fun c -> c.cls_depth) t.classes;
      })

let set_capacity t n =
  with_lock t (fun () -> t.capacity <- max 0 n)

let capacity t = with_lock t (fun () -> t.capacity)

(* p50/p95 of the recorded wait samples (seconds); (0, 0) with no samples. *)
let wait_percentiles t =
  with_lock t (fun () ->
      let n = min t.nwaits wait_ring_size in
      if n = 0 then (0., 0.)
      else begin
        let s = Array.sub t.waits 0 n in
        Array.sort compare s;
        let at p =
          s.(min (n - 1) (int_of_float (Float.of_int (n - 1) *. p +. 0.5)))
        in
        (at 0.5, at 0.95)
      end)

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let drain_remaining t =
  with_lock t (fun () ->
      let rec go acc =
        match take_unlocked t with
        | Some item -> go (item.it_v :: acc)
        | None -> List.rev acc
      in
      go [])
