module Sql = Orq_planner.Sql

type 'a t = {
  capacity : int;
  tbl : (string, 'a) Hashtbl.t;
  order : string Queue.t;  (** insertion order for FIFO eviction *)
  mutable hits : int;
  mutable misses : int;
  m : Mutex.t;
}

let create ~capacity =
  {
    capacity = max 0 capacity;
    tbl = Hashtbl.create 64;
    order = Queue.create ();
    hits = 0;
    misses = 0;
    m = Mutex.create ();
  }

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let normalize (sql : string) : string =
  match Sql.lex sql with
  | exception Sql.Parse_error _ -> String.trim sql
  | toks ->
      toks
      |> List.filter_map (function
           | Sql.Ident s -> Some s
           | Sql.Int i -> Some (string_of_int i)
           | Sql.Kw k -> Some k
           | Sql.Sym s -> Some s
           | Sql.Eof -> None)
      |> String.concat " "

let key ~proto ~version ~sql =
  Printf.sprintf "%s|%d|%s" proto version (normalize sql)

let find t ~proto ~version ~sql =
  let k = key ~proto ~version ~sql in
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl k with
      | Some v ->
          t.hits <- t.hits + 1;
          Some v
      | None ->
          t.misses <- t.misses + 1;
          None)

let add t ~proto ~version ~sql v =
  if t.capacity > 0 then
    let k = key ~proto ~version ~sql in
    with_lock t (fun () ->
        if not (Hashtbl.mem t.tbl k) then begin
          if Queue.length t.order >= t.capacity then
            Hashtbl.remove t.tbl (Queue.pop t.order);
          Hashtbl.replace t.tbl k v;
          Queue.push k t.order
        end)

let hits t = with_lock t (fun () -> t.hits)
let misses t = with_lock t (fun () -> t.misses)
let length t = with_lock t (fun () -> Hashtbl.length t.tbl)
