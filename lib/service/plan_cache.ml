module Sql = Orq_planner.Sql
module Joincost = Orq_core.Joincost
module Locked = Orq_util.Locked

(* A single-flight ticket: the first thread to miss on a key becomes the
   leader and executes; followers park on the condition until the leader
   resolves with a value (replayed to them) or aborts (they retry). The
   flight lock ranks just above the cache lock, so a leader may publish
   under the cache lock and then wake followers — never the reverse. *)
type 'a flight = {
  f_m : Locked.t;
  f_c : Condition.t;
  mutable f_done : bool;
  mutable f_value : 'a option;  (** [None] after an aborted flight *)
}

type 'a t = {
  capacity : int;
  tbl : (string, 'a) Hashtbl.t;
  flights : (string, 'a flight) Hashtbl.t;
  order : string Queue.t;  (** insertion order for FIFO eviction *)
  mutable hits : int;
  mutable misses : int;
  mutable coalesced : int;
  m : Locked.t;
}

type 'a acquire =
  | Cached of 'a
  | Execute of 'a flight
  | Coalesced of 'a option

let create ~capacity =
  {
    capacity = max 0 capacity;
    tbl = Hashtbl.create 64;
    flights = Hashtbl.create 16;
    order = Queue.create ();
    hits = 0;
    misses = 0;
    coalesced = 0;
    m = Locked.create ~name:"plan_cache" ~rank:30 ();
  }

let with_lock t f = Locked.with_lock t.m f

let fresh_flight () =
  {
    f_m = Locked.create ~name:"plan_flight" ~rank:35 ();
    f_c = Condition.create ();
    f_done = false;
    f_value = None;
  }

let normalize (sql : string) : string =
  match Sql.lex sql with
  | exception Sql.Parse_error _ -> String.trim sql
  | toks ->
      toks
      |> List.filter_map (function
           | Sql.Ident s -> Some s
           | Sql.Int i -> Some (string_of_int i)
           | Sql.Kw k -> Some k
           | Sql.Sym s -> Some s
           | Sql.Eof -> None)
      |> String.concat " "

(* The physical-plan configuration (ORQ_JOIN mode + pacing profile) is a
   key component: two configurations that could pick different physical
   join operators for the same SQL never alias to one cached response. *)
let key ~proto ~version ~sql =
  Printf.sprintf "%s|%d|%s|%s" proto version
    (Joincost.cache_tag ())
    (normalize sql)

let find t ~proto ~version ~sql =
  let k = key ~proto ~version ~sql in
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl k with
      | Some v ->
          t.hits <- t.hits + 1;
          Some v
      | None ->
          t.misses <- t.misses + 1;
          None)

let store_unlocked t k v =
  if t.capacity > 0 && not (Hashtbl.mem t.tbl k) then begin
    if Queue.length t.order >= t.capacity then
      Hashtbl.remove t.tbl (Queue.pop t.order);
    Hashtbl.replace t.tbl k v;
    Queue.push k t.order
  end

let add t ~proto ~version ~sql v =
  if t.capacity > 0 then
    let k = key ~proto ~version ~sql in
    with_lock t (fun () -> store_unlocked t k v)

(* Single-flight acquisition. With caching disabled (capacity 0) every
   caller is a leader on a private, unregistered ticket: cache-off means
   off — no replay, no coalescing — which is what the cold benchmarks
   rely on to execute every query. *)
let acquire t ~proto ~version ~sql : 'a acquire =
  if t.capacity = 0 then begin
    with_lock t (fun () -> t.misses <- t.misses + 1);
    Execute (fresh_flight ())
  end
  else
    let k = key ~proto ~version ~sql in
    let outcome =
      with_lock t (fun () ->
          match Hashtbl.find_opt t.tbl k with
          | Some v ->
              t.hits <- t.hits + 1;
              `Hit v
          | None -> (
              match Hashtbl.find_opt t.flights k with
              | Some f -> `Wait f
              | None ->
                  t.misses <- t.misses + 1;
                  let f = fresh_flight () in
                  Hashtbl.replace t.flights k f;
                  `Lead f))
    in
    match outcome with
    | `Hit v -> Cached v
    | `Lead f -> Execute f
    | `Wait f ->
        let v =
          Locked.with_lock f.f_m (fun () ->
              while not f.f_done do
                Locked.wait f.f_m f.f_c
              done;
              f.f_value)
        in
        with_lock t (fun () ->
            match v with
            | Some _ -> t.coalesced <- t.coalesced + 1
            | None -> ());
        Coalesced v

(* Leader completion: publish the value (or the abort) to the cache and
   wake every follower of this flight. *)
let resolve t ~proto ~version ~sql (f : 'a flight) (v : 'a option) =
  (if t.capacity > 0 then
     let k = key ~proto ~version ~sql in
     with_lock t (fun () ->
         (match v with Some v -> store_unlocked t k v | None -> ());
         (* only unregister our own ticket: an aborted flight may already
            have been replaced by a retrying follower's new one *)
         match Hashtbl.find_opt t.flights k with
         | Some f' when f' == f -> Hashtbl.remove t.flights k
         | _ -> ()));
  Locked.with_lock f.f_m (fun () ->
      f.f_value <- v;
      f.f_done <- true;
      Condition.broadcast f.f_c)

let hits t = with_lock t (fun () -> t.hits)
let misses t = with_lock t (fun () -> t.misses)
let coalesced t = with_lock t (fun () -> t.coalesced)
let length t = with_lock t (fun () -> Hashtbl.length t.tbl)
