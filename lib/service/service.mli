(** Long-running oblivious query service (DESIGN.md, "Query service").

    Serves SQL queries over the shared TPC-H database through the
    automatic planner, on a Unix-domain socket speaking the {!Orq_net.Wire}
    framed protocol. Each connection is a session with its own protocol
    kind (sh-dm / sh-hm / mal-hm, selected by [Hello]); queries from all
    sessions funnel through a fair, prioritized, bounded {!Jobqueue} into
    a pool of execution {b worker domains} (default size
    [ORQ_SERVICE_WORKERS], live-resizable with [Set_workers]). Each worker
    lazily builds its own per-protocol backend (context + shared catalog),
    so workers never contend on protocol state and cold queries on
    distinct workers run concurrently.

    {b Determinism.} Every query executes under a session seed derived
    only from (service seed, protocol, normalized SQL) via
    {!Orq_proto.Ctx.reseed}, so its scoped {!Orq_net.Comm} tallies and
    certified transcript are byte-identical whichever worker runs it, at
    every worker count, whatever ran before — exactly those of a serial
    run. The plan cache replays the exact cold response; concurrent
    identical cold queries are coalesced single-flight (one execution,
    everyone replays its bytes).

    {b Pacing.} With [ORQ_SERVICE_PACE] (or [config.pace]) set to a
    {!Orq_net.Netsim} profile, each worker holds its slot for the query's
    modeled network time after computing — reproducing the paper's
    network-bound deployment where per-query latency is dominated by
    round trips, and a pool of workers overlaps queries for near-linear
    throughput scaling on any core count.

    The server process ignores SIGPIPE and treats per-session failures
    (client disconnect mid-query, malformed frames) as session-local:
    the session is closed, the server keeps serving. *)

type config = {
  socket_path : string;
  sf : float;  (** TPC-H scale factor of the served catalog *)
  seed : int;  (** data-generation and protocol randomness seed *)
  workers : int;  (** execution worker domains (>= 1) *)
  max_jobs : int;  (** in-flight query bound (admission control) *)
  max_rows : int;  (** response row cap; larger results are truncated *)
  cache_capacity : int;  (** plan-cache entries; 0 disables caching *)
  admit_timeout_s : float;
      (** how long a full queue blocks an admission before refusing *)
  drain_timeout_s : float;
      (** how long {!stop} waits for in-flight queries to finish *)
  pace : Orq_net.Netsim.profile option;
      (** paced execution: workers hold their slot for the query's
          modeled network time ([None] = compute-bound, no pacing) *)
  prewarm : Orq_proto.Ctx.kind list;
      (** protocol backends each worker builds at spawn (catalog sharing
          off the query path; default none — backends build lazily) *)
  verbose : bool;  (** log sessions/queries to stderr *)
  job_hook : (unit -> unit) option;
      (** test instrumentation: runs in the worker before each execution
          (cache hits and coalesced replays do not trigger it) *)
}

val default_config : ?socket_path:string -> unit -> config
(** Defaults: sf 0.001, seed 42, [ORQ_SERVICE_WORKERS] (else 1),
    [ORQ_SERVICE_MAX_JOBS] (else [2 x workers], min 4),
    [ORQ_SERVICE_MAX_ROWS] (else 10000), cache 64,
    [ORQ_SERVICE_ADMIT_MS] (else 2000), [ORQ_SERVICE_DRAIN_MS] (else
    5000), [ORQ_SERVICE_PACE] (off | lan | wan | geo, else off), quiet. *)

type t

val start : config -> t
(** Bind the socket (replacing any stale file), spawn the accept loop and
    the worker pool, and return immediately. *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, let in-flight queries finish (up
    to [drain_timeout_s]), answer never-started jobs with an explicit
    shutdown error frame, join every worker domain and session thread,
    remove the socket file. A client mid-query gets its result or a
    proper error — never a silently dropped connection. Idempotent. *)

val wait : t -> unit
(** Block until the server is stopped (for a foreground [serve]). *)

val set_workers : t -> int -> unit
(** Live-resize the execution pool (clamped to 1..64). Growing spawns
    fresh domains; shrinking retires the newest workers after their
    current job. *)

val workers : t -> int
(** Currently configured worker count. *)

val stats : t -> Orq_net.Wire.stats
(** The same snapshot a [Stats_req] frame returns. *)

val socket_path : t -> string

val proto_of_label : string -> (Orq_proto.Ctx.kind, string) result
(** "sh-dm" | "2pc" | "sh-hm" | "3pc" | "mal-hm" | "4pc". *)

(** {2 Shared execution path}

    The party runtime (lib/party/) executes queries through exactly these
    functions, so a cluster's per-query results and tallies are
    byte-identical to this in-process service by construction. *)

val query_seed_for : seed:int -> proto_label:string -> sql:string -> int
(** The per-query session seed: a pure function of (service seed,
    protocol label, normalized SQL) — never of execution history. *)

val canonical_rows :
  (string * int array) list -> string list -> string list * int list list
(** Project the revealed columns onto the SELECT list and sort rows
    lexicographically ([Table.reveal] shuffles before opening, so the
    arrival order carries no information). *)

val execute_sql :
  ctx:Orq_proto.Ctx.t ->
  db:Orq_workloads.Tpch_gen.mpc ->
  qseed:int ->
  max_rows:int ->
  string ->
  Orq_net.Wire.response
(** Reseed to [qseed], run the SQL through the planner over [db], reveal,
    canonicalize; parse errors and protocol aborts come back as
    [Error_r] frames. Scoped online/preprocessing tallies and modeled
    LAN/WAN times ride on the [Result]. *)

val pace_of_label : string -> (Orq_net.Netsim.profile option, string) result
(** "off" | "none" | "" | "lan" | "wan" | "geo". *)

val explain_of_log :
  fallbacks:int -> Orq_core.Joincost.decision list -> Orq_net.Wire.explain
(** Render a {!Orq_core.Joincost} decision log as the [Explain_r] wire
    body. Must be called on the domain that executed the query — the
    decision log is domain-local state. *)
