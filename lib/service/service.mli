(** Long-running oblivious query service (DESIGN.md, "Query service").

    Serves SQL queries over the shared TPC-H database through the
    automatic planner, on a Unix-domain socket speaking the {!Orq_net.Wire}
    framed protocol. Each connection is a session with its own protocol
    kind (sh-dm / sh-hm / mal-hm, selected by [Hello]); queries from all
    sessions funnel through a bounded job queue (admission control: a full
    queue refuses with a [Busy] error frame rather than stalling) into a
    single execution worker, whose per-query scoped {!Orq_net.Comm}
    tallies and {!Orq_net.Netsim} LAN/WAN estimates travel back in the
    response — every reply is a mini §5 report. A plan cache keyed by
    normalized SQL + protocol + catalog version replays the exact cold
    response (rows and tallies byte-identical).

    The server process ignores SIGPIPE and treats per-session failures
    (client disconnect mid-query, malformed frames) as session-local:
    the session is closed, the server keeps serving. *)

type config = {
  socket_path : string;
  sf : float;  (** TPC-H scale factor of the served catalog *)
  seed : int;  (** data-generation and protocol randomness seed *)
  max_jobs : int;  (** in-flight query bound (admission control) *)
  max_rows : int;  (** response row cap; larger results are truncated *)
  cache_capacity : int;  (** plan-cache entries; 0 disables caching *)
  verbose : bool;  (** log sessions/queries to stderr *)
  job_hook : (unit -> unit) option;
      (** test instrumentation: runs in the worker before each query *)
}

val default_config : ?socket_path:string -> unit -> config
(** Defaults: sf 0.001, seed 42, [ORQ_SERVICE_MAX_JOBS] (else 4),
    [ORQ_SERVICE_MAX_ROWS] (else 10000), cache 64, quiet. *)

type t

val start : config -> t
(** Bind the socket (replacing any stale file), spawn the accept loop and
    the execution worker, and return immediately. *)

val stop : t -> unit
(** Close the listener and all sessions, drain the worker, remove the
    socket file. Idempotent. *)

val wait : t -> unit
(** Block until the server is stopped (for a foreground [serve]). *)

val socket_path : t -> string

val proto_of_label : string -> (Orq_proto.Ctx.kind, string) result
(** "sh-dm" | "2pc" | "sh-hm" | "3pc" | "mal-hm" | "4pc". *)
