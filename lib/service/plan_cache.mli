(** Plan/result cache for the query service, with single-flight
    execution.

    Keyed by the *normalized* SQL text (token stream re-rendered
    canonically, so whitespace and keyword case do not fragment the
    cache), the session's protocol kind, the server's catalog version,
    and the physical-plan configuration ({!Orq_core.Joincost.cache_tag}:
    the active ORQ_JOIN mode and pacing profile) — two configurations
    that could pick different physical join operators never alias to one
    cached response. A hit returns exactly the value stored by the cold
    run —
    the service stores the full response payload, so a cached reply is
    byte-identical to the uncached one, tallies included.

    {b Single-flight:} when several sessions miss on the same key
    concurrently, {!acquire} elects exactly one leader ([Execute]); the
    rest park until the leader {!resolve}s and then replay its
    byte-identical response ([Coalesced (Some v)]) without consuming an
    execution worker. If the leader aborts (error responses are never
    cached) followers get [Coalesced None] and retry — each retry elects
    a new leader, so every caller eventually gets a first-hand answer.

    Bounded FIFO eviction; [capacity = 0] disables storage *and*
    coalescing (every caller leads a private flight — cache-off means
    every query really executes). Thread- and domain-safe. *)

type 'a t

type 'a flight
(** A single-flight ticket held by the leader of one cold execution. *)

type 'a acquire =
  | Cached of 'a  (** stored result: replay it *)
  | Execute of 'a flight
      (** caller is the leader: execute, then {!resolve} the ticket *)
  | Coalesced of 'a option
      (** another leader finished first: [Some] its response to replay,
          [None] if it aborted (retry {!acquire}) *)

val create : capacity:int -> 'a t

val normalize : string -> string
(** Canonical form of a SQL query: lexed with {!Orq_planner.Sql.lex} and
    re-rendered one-space-separated with uppercase keywords. Unlexable
    input normalizes to its trimmed self (it will fail in parsing, and
    error responses are never cached). *)

val acquire : 'a t -> proto:string -> version:int -> sql:string -> 'a acquire
(** Look up, or join/lead the in-flight execution for this key (may
    block until the leader resolves). *)

val resolve :
  'a t -> proto:string -> version:int -> sql:string -> 'a flight -> 'a option -> unit
(** Leader completion: [Some v] stores the response and replays it to
    every follower; [None] aborts the flight (followers retry). Must be
    called exactly once per [Execute] ticket. *)

val find : 'a t -> proto:string -> version:int -> sql:string -> 'a option
(** Plain lookup, counting a hit or miss (no single-flight). *)

val add : 'a t -> proto:string -> version:int -> sql:string -> 'a -> unit

val hits : 'a t -> int
val misses : 'a t -> int

val coalesced : 'a t -> int
(** Queries served by replaying another session's in-flight execution. *)

val length : 'a t -> int
