(** Plan/result cache for the query service.

    Keyed by the *normalized* SQL text (token stream re-rendered
    canonically, so whitespace and keyword case do not fragment the
    cache), the session's protocol kind, and the server's catalog
    version. A hit returns exactly the value stored by the cold run —
    the service stores the full response payload, so a cached reply is
    byte-identical to the uncached one, tallies included.

    Bounded FIFO eviction; [capacity = 0] disables storage (every lookup
    is a countable miss). Thread-safe. *)

type 'a t

val create : capacity:int -> 'a t

val normalize : string -> string
(** Canonical form of a SQL query: lexed with {!Orq_planner.Sql.lex} and
    re-rendered one-space-separated with uppercase keywords. Unlexable
    input normalizes to its trimmed self (it will fail in parsing, and
    error responses are never cached). *)

val find : 'a t -> proto:string -> version:int -> sql:string -> 'a option
(** Lookup, counting a hit or miss. *)

val add : 'a t -> proto:string -> version:int -> sql:string -> 'a -> unit

val hits : 'a t -> int
val misses : 'a t -> int
val length : 'a t -> int
