(** Blocking client for the query service: one Unix-domain connection,
    request/response in lockstep over the {!Orq_net.Wire} protocol. *)

exception Service_error of string
(** Connection closed or an unexpected response arrived. *)

type t

val connect : string -> t
(** Connect to the service socket at the given path. *)

val close : t -> unit

val set_protocol : t -> string -> (string, string) result
(** [Hello]: select this session's protocol ("sh-dm"|"sh-hm"|"mal-hm");
    returns the server's canonical label, or the server's error. *)

val query : t -> string -> (Orq_net.Wire.query_result, Orq_net.Wire.err_code * string) result
(** Run one SQL query; blocks until the result (or error) frame. *)

val ping : t -> bool
val stats : t -> Orq_net.Wire.stats
