(** Blocking client for the query service: one Unix-domain connection,
    request/response in lockstep over the {!Orq_net.Wire} protocol. *)

exception Service_error of string
(** Connection closed, receive timeout, or an unexpected response
    arrived. *)

type t

val connect : ?timeout_ms:int -> ?retry_ms:int -> string -> t
(** Connect to a server address in any {!Orq_net.Transport} spelling
    ([unix:/path], a bare path, [tcp:host:port], [host:port]) — the same
    client dials the in-process service or a party cluster's TCP front
    end. [timeout_ms] (or [ORQ_CLIENT_TIMEOUT_MS] when absent) arms a
    receive timeout on the socket: an RPC whose response does not arrive
    in time raises {!Service_error} instead of hanging forever on a
    stalled server. [retry_ms] dials with bounded exponential-backoff
    retry for that many milliseconds while the server is still binding
    (default: a single attempt). *)

val close : t -> unit

val set_protocol : ?client:string -> t -> string -> (string, string) result
(** [Hello]: select this session's protocol ("sh-dm"|"sh-hm"|"mal-hm")
    and optionally a client-group name — connections sharing a group
    share one fairness lane in the server's job queue. Returns the
    server's canonical label, or the server's error. *)

val query :
  ?prio:int ->
  t ->
  string ->
  (Orq_net.Wire.query_result, Orq_net.Wire.err_code * string) result
(** Run one SQL query; blocks until the result (or error) frame. [prio]
    is a priority class (0 = high, 1 = normal, 2 = low; default
    normal). *)

val explain :
  t -> string -> (Orq_net.Wire.explain, Orq_net.Wire.err_code * string) result
(** Execute one SQL query cold (bypassing the server's plan cache) and
    return the per-join-node physical-operator decisions: the chosen
    operator plus every applicable candidate's predicted rounds, bits,
    messages, and modeled seconds under the server's active profile. *)

val ping : t -> bool
val stats : t -> Orq_net.Wire.stats

val net_stats : t -> (Orq_net.Wire.net_stats, string) result
(** Measured mesh traffic of the cluster's last query. Party clusters
    only — the in-process service answers with its error string. *)

val set_workers : t -> int -> Orq_net.Wire.stats
(** Live-resize the server's execution worker pool; returns the stats
    snapshot after the resize. *)
