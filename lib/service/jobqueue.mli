(** Bounded job queue with admission control.

    Capacity bounds the number of *in-flight* jobs — queued plus currently
    executing — so a server with [capacity = k] never holds more than [k]
    admitted queries at once. Admission is non-blocking ({!try_push}
    returns [false] when full: the caller replies "busy" instead of
    stalling the session); consumption blocks ({!pop} parks the worker
    until a job or {!close} arrives). *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 0]. *)

val try_push : 'a t -> 'a -> bool
(** Admit a job if in-flight < capacity and the queue is open. *)

val pop : 'a t -> 'a option
(** Block until a job is available ([Some job], now counted as executing)
    or the queue is closed and drained ([None]). *)

val finish : 'a t -> unit
(** Mark one executing job as done, freeing its in-flight slot. *)

val in_flight : 'a t -> int
(** Queued + executing jobs (admission-control view). *)

val close : 'a t -> unit
(** Reject future pushes; wake blocked consumers once drained. *)
