(** Fair, prioritized, bounded job queue with graceful backpressure.

    Capacity bounds the number of *in-flight* jobs — queued plus currently
    executing — so a server with [capacity = k] never holds more than [k]
    admitted queries at once. Three refinements over a plain bounded FIFO:

    - {b Priority classes.} Jobs carry one of three classes
      ({!High}/{!Normal}/{!Low}); {!pop} always serves a higher class
      before a lower one.
    - {b Per-group fairness.} Within a class, jobs are organized as one
      FIFO per client group with round-robin service across groups, so a
      group flooding the queue delays another group's job by at most one
      job per competing group — it cannot starve it.
    - {b Graceful backpressure.} {!push} blocks the caller (up to a
      timeout) while the server is at capacity instead of failing
      immediately; {!try_push} keeps the old non-blocking admission for
      callers that want it. Queue depth and recent queue-wait percentiles
      are observable ({!counts}, {!wait_percentiles}) so saturation is
      reported with numbers, not a bare busy bit.

    Consumption blocks ({!pop} parks the worker until a job, {!close}, or
    a {!wake} with its [should_stop] predicate true arrives). All
    operations are thread- and domain-safe. *)

type prio = High | Normal | Low

val prio_index : prio -> int
(** [High] = 0, [Normal] = 1, [Low] = 2 (the wire encoding). *)

val prio_of_int : int -> prio option
val prio_label : prio -> string

type 'a t

type counts = {
  c_depth : int;  (** queued jobs, all classes *)
  c_running : int;  (** popped but not yet finished *)
  c_by_class : int array;  (** queued per class, [|high; normal; low|] *)
}

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 0]. *)

val try_push : 'a t -> group:int -> prio:prio -> 'a -> bool
(** Admit a job if in-flight < capacity and the queue is open; never
    blocks. *)

val push : 'a t -> group:int -> prio:prio -> timeout_s:float -> 'a -> bool
(** Blocking admission: wait up to [timeout_s] for an in-flight slot,
    then enqueue. [false] on timeout or if the queue is (or becomes)
    closed. *)

val pop : ?should_stop:(unit -> bool) -> 'a t -> 'a option
(** Block until a job is available ([Some job], now counted as
    executing) or the queue is closed ([None]; remaining queued jobs are
    still handed out until {!drain_remaining} collects them). The
    [should_stop] predicate is re-checked whenever the consumer wakes
    (see {!wake}) — [None] when it turns true, letting individual
    workers retire while the queue stays open. *)

val finish : 'a t -> unit
(** Mark one executing job as done, freeing its in-flight slot. *)

val wake : 'a t -> unit
(** Wake all blocked consumers so they re-check their [should_stop]
    predicate (used when retiring workers on a live resize). *)

val in_flight : 'a t -> int
(** Queued + executing jobs (admission-control view). *)

val depth : 'a t -> int
(** Queued (not yet executing) jobs. *)

val counts : 'a t -> counts

val wait_percentiles : 'a t -> float * float
(** (p50, p95) of recent queue-wait times in seconds, over a sliding
    window of the last 512 pops; (0, 0) before any pop. *)

val set_capacity : 'a t -> int -> unit
(** Live-adjust the in-flight bound (existing jobs are never evicted). *)

val capacity : 'a t -> int

val close : 'a t -> unit
(** Reject future pushes and wake blocked consumers. *)

val drain_remaining : 'a t -> 'a list
(** Atomically remove and return every still-queued job (in service
    order), so a stopping server can fail them with a proper error frame
    instead of dropping their connections. *)
