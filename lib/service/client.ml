module Wire = Orq_net.Wire
module Transport = Orq_net.Transport

exception Service_error of string

type t = { fd : Unix.file_descr }

let env_timeout_ms () =
  match Sys.getenv_opt "ORQ_CLIENT_TIMEOUT_MS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v > 0 -> Some v
      | _ -> None)
  | None -> None

(* Addresses accept every Transport spelling (unix:/path, bare path,
   tcp:host:port, host:port), so the same client dials the in-process
   service's Unix socket or a party cluster's TCP front end. [retry_ms]
   adds a bounded exponential-backoff dial window — a client started
   alongside the server (cluster scripts, CI) needn't race its bind. *)
let connect ?timeout_ms ?retry_ms addr_s =
  let addr =
    match Transport.parse_addr addr_s with
    | Ok a -> a
    | Error m -> raise (Service_error ("bad address: " ^ m))
  in
  let fd =
    match retry_ms with
    | Some total_ms when total_ms > 0 -> Transport.connect_retry ~total_ms addr
    | _ -> Transport.connect addr
  in
  (try
     let tmo =
       match timeout_ms with Some _ as t -> t | None -> env_timeout_ms ()
     in
     match tmo with
     | Some ms when ms > 0 ->
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO (float_of_int ms /. 1e3)
     | _ -> ()
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  { fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let rpc t (req : Wire.request) : Wire.response =
  Wire.send_request t.fd req;
  match Wire.recv_response t.fd with
  | Some r -> r
  | None -> raise (Service_error "connection closed by server")
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      raise (Service_error "receive timeout waiting for server response")

let set_protocol ?(client = "") t label =
  match
    rpc t
      (Wire.Hello
         {
           h_version = Wire.protocol_version;
           h_proto = label;
           h_client = client;
         })
  with
  | Wire.Hello_ok { proto; _ } -> Ok proto
  | Wire.Error_r { msg; _ } -> Error msg
  | _ -> raise (Service_error "unexpected response to Hello")

let query ?prio t sql =
  let req =
    match prio with
    | None -> Wire.Query sql
    | Some p -> Wire.Query_p { q_sql = sql; q_prio = p }
  in
  match rpc t req with
  | Wire.Result r -> Ok r
  | Wire.Error_r { code; msg } -> Error (code, msg)
  | _ -> raise (Service_error "unexpected response to Query")

let explain t sql =
  match rpc t (Wire.Explain sql) with
  | Wire.Explain_r e -> Ok e
  | Wire.Error_r { code; msg } -> Error (code, msg)
  | _ -> raise (Service_error "unexpected response to Explain")

let ping t = match rpc t Wire.Ping with Wire.Pong -> true | _ -> false

let stats t =
  match rpc t Wire.Stats_req with
  | Wire.Stats_r s -> s
  | _ -> raise (Service_error "unexpected response to Stats")

let net_stats t =
  match rpc t Wire.Net_stats_req with
  | Wire.Net_stats_r s -> Ok s
  | Wire.Error_r { msg; _ } -> Error msg
  | _ -> raise (Service_error "unexpected response to Net_stats")

let set_workers t n =
  match rpc t (Wire.Set_workers n) with
  | Wire.Stats_r s -> s
  | _ -> raise (Service_error "unexpected response to Set_workers")
