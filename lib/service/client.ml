module Wire = Orq_net.Wire

exception Service_error of string

type t = { fd : Unix.file_descr }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  { fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let rpc t (req : Wire.request) : Wire.response =
  Wire.send_request t.fd req;
  match Wire.recv_response t.fd with
  | Some r -> r
  | None -> raise (Service_error "connection closed by server")

let set_protocol t label =
  match rpc t (Wire.Hello label) with
  | Wire.Hello_ok { proto; _ } -> Ok proto
  | Wire.Error_r { msg; _ } -> Error msg
  | _ -> raise (Service_error "unexpected response to Hello")

let query t sql =
  match rpc t (Wire.Query sql) with
  | Wire.Result r -> Ok r
  | Wire.Error_r { code; msg } -> Error (code, msg)
  | _ -> raise (Service_error "unexpected response to Query")

let ping t = match rpc t Wire.Ping with Wire.Pong -> true | _ -> false

let stats t =
  match rpc t Wire.Stats_req with
  | Wire.Stats_r s -> s
  | _ -> raise (Service_error "unexpected response to Stats")
