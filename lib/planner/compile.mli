(** Lower an (optimized) logical plan onto the ORQ dataflow operators,
    with a top-down needed-columns analysis that prunes scan payloads and
    derives join [~copy] lists. Joins still carrying duplicate keys on
    both sides take the oblivious quadratic fallback, exactly as §2.1
    prescribes for queries outside the tractable class. *)

val run :
  ?optimize:bool -> ?need:string list -> Plan.node -> Orq_core.Table.t * int
(** Compile and execute; returns the result table and the number of joins
    that needed the quadratic fallback. *)
