(** Logical-plan rewrites, applied to fixpoint:

    - {b filter pushdown}: conjuncts whose columns belong entirely to one
      side of a join (or below a map/aggregate boundary) move down the
      tree, so invalid rows stop paying for sorting and joining early;
    - {b join-side orientation}: the join-aggregation operator needs
      unique keys on the *left* (§3.3); if only the right side is unique,
      the inputs are swapped (the operator is symmetric under the
      schema-merge semantics);
    - {b §3.6 pre-aggregation}: a decomposable aggregation (COUNT / SUM)
      directly above a many-to-many join is rewritten into pre-aggregation
      of one side (making its keys unique), the one-to-many join, a
      multiplicity product, and a post-aggregation — the Figure 3
      evaluation, derived automatically. Queries outside the class are
      left for {!Compile}'s quadratic fallback (§2.1). *)

open Orq_core
open Plan

(* One pushdown step for a single conjunct above [n]; returns the new node
   and whether the conjunct was consumed. *)
let rec push_pred (p : Expr.pred) (n : node) : node * bool =
  let cols = pred_cols p in
  match n with
  | Join j when subset cols ((infer j.j_left).i_cols @ j.j_on) ->
      let l, ok = push_pred p j.j_left in
      if ok then (Join { j with j_left = l }, true)
      else (Join { j with j_left = Filter (p, j.j_left) }, true)
  | Join j when subset cols ((infer j.j_right).i_cols @ j.j_on) ->
      let r, ok = push_pred p j.j_right in
      if ok then (Join { j with j_right = r }, true)
      else (Join { j with j_right = Filter (p, j.j_right) }, true)
  | Filter (q, m) ->
      let m, ok = push_pred p m in
      if ok then (Filter (q, m), true) else (Filter (q, m), false)
  | Map (dst, e, m) when not (List.mem dst cols) ->
      let m, ok = push_pred p m in
      if ok then (Map (dst, e, m), true)
      else (Map (dst, e, Filter (p, m)), true)
  | Scan _ -> (Filter (p, n), true)
  | _ -> (n, false)

(* Push every filter as deep as it goes. *)
let rec pushdown (n : node) : node =
  match n with
  | Filter (p, m) ->
      let m = pushdown m in
      let rec place acc m = function
        | [] -> (acc, m)
        | c :: rest ->
            let m', ok = push_pred c m in
            if ok then place acc m' rest else place (c :: acc) m rest
      in
      let kept, m = place [] m (conjuncts p) in
      if kept = [] then m else Filter (conjoin (List.rev kept), m)
  | Project (cols, m) -> Project (cols, pushdown m)
  | Map (d, e, m) -> Map (d, e, pushdown m)
  | Join j ->
      Join { j with j_left = pushdown j.j_left; j_right = pushdown j.j_right }
  | Aggregate a -> Aggregate { a with a_input = pushdown a.a_input }
  | Order_limit (s, k, m) -> Order_limit (s, k, pushdown m)
  | Scan _ -> n

(* Orient joins so the unique-key side sits on the left (§3.3). *)
let rec orient (n : node) : node =
  match n with
  | Join j ->
      let l = orient j.j_left and r = orient j.j_right in
      let j = { j with j_left = l; j_right = r } in
      if unique_on l j.j_on then Join j
      else if unique_on r j.j_on then
        Join { j with j_left = r; j_right = l }
      else Join j (* many-to-many: handled by preagg or the fallback *)
  | Filter (p, m) -> Filter (p, orient m)
  | Project (c, m) -> Project (c, orient m)
  | Map (d, e, m) -> Map (d, e, orient m)
  | Aggregate a -> Aggregate { a with a_input = orient a.a_input }
  | Order_limit (s, k, m) -> Order_limit (s, k, orient m)
  | Scan _ -> n

(* The §3.6 rewrite: Aggregate(SUM/COUNT) over a many-to-many Join.
   Pre-aggregate the side NOT carrying the aggregation source to a
   multiplicity table (unique join keys), run the one-to-many join, weight
   by multiplicity, post-aggregate. *)
let rewrite_preagg (a : agg_node) : node option =
  match a.a_input with
  | Join j when (not (unique_on j.j_left j.j_on)) && not (unique_on j.j_right j.j_on)
    -> (
      let il = infer j.j_left and ir = infer j.j_right in
      match a.a_aggs with
      | [ { Dataflow.src; dst; fn = Dataflow.Count } ] ->
          (* COUNT(rows) of the join: sum of left multiplicities over matched
             right rows *)
          ignore src;
          let keys_ok side = subset a.a_keys (side.i_cols @ j.j_on) in
          if not (keys_ok ir) then None
          else
            let pre =
              Aggregate
                {
                  a_keys = j.j_on;
                  a_aggs = [ { Dataflow.src = List.hd j.j_on; dst = "__mult"; fn = Dataflow.Count } ];
                  a_input = j.j_left;
                }
            in
            Some
              (Aggregate
                 {
                   a_keys = a.a_keys;
                   a_aggs = [ { Dataflow.src = "__mult"; dst; fn = Dataflow.Sum } ];
                   a_input = Join { j_left = pre; j_right = j.j_right; j_on = j.j_on };
                 })
      | [ { Dataflow.src; dst; fn = Dataflow.Sum } ]
        when List.mem src ir.i_cols && subset a.a_keys (ir.i_cols @ j.j_on) ->
          (* SUM(right.col): weight each right row by the left multiplicity *)
          let pre =
            Aggregate
              {
                a_keys = j.j_on;
                a_aggs = [ { Dataflow.src = List.hd j.j_on; dst = "__mult"; fn = Dataflow.Count } ];
                a_input = j.j_left;
              }
          in
          let joined = Join { j_left = pre; j_right = j.j_right; j_on = j.j_on } in
          let weighted = Map ("__w", Expr.(col src *! col "__mult"), joined) in
          Some
            (Aggregate
               {
                 a_keys = a.a_keys;
                 a_aggs = [ { Dataflow.src = "__w"; dst; fn = Dataflow.Sum } ];
                 a_input = weighted;
               })
      | [ { Dataflow.src; dst; fn = Dataflow.Sum } ]
        when List.mem src il.i_cols && subset a.a_keys (il.i_cols @ j.j_on) ->
          (* SUM(left.col): symmetric — pre-aggregate the right side *)
          let pre =
            Aggregate
              {
                a_keys = j.j_on;
                a_aggs = [ { Dataflow.src = List.hd j.j_on; dst = "__mult"; fn = Dataflow.Count } ];
                a_input = j.j_right;
              }
          in
          let joined = Join { j_left = pre; j_right = j.j_left; j_on = j.j_on } in
          let weighted = Map ("__w", Expr.(col src *! col "__mult"), joined) in
          Some
            (Aggregate
               {
                 a_keys = a.a_keys;
                 a_aggs = [ { Dataflow.src = "__w"; dst; fn = Dataflow.Sum } ];
                 a_input = weighted;
               })
      | _ -> None)
  | _ -> None

let rec preagg (n : node) : node =
  match n with
  | Aggregate a -> (
      let a = { a with a_input = preagg a.a_input } in
      match rewrite_preagg a with Some n' -> n' | None -> Aggregate a)
  | Filter (p, m) -> Filter (p, preagg m)
  | Project (c, m) -> Project (c, preagg m)
  | Map (d, e, m) -> Map (d, e, preagg m)
  | Join j ->
      Join { j with j_left = preagg j.j_left; j_right = preagg j.j_right }
  | Order_limit (s, k, m) -> Order_limit (s, k, preagg m)
  | Scan _ -> n

(** The full optimization pipeline. *)
let run (n : node) : node = orient (preagg (pushdown n))
