(** Logical query plans — the automatic query planner the paper names as
    future work (§7). A plan is a relational-algebra tree over
    secret-shared base tables, with inferred output schemas and candidate
    keys (public schema metadata, §2.1). *)

open Orq_core

type node =
  | Scan of scan
  | Filter of Expr.pred * node
  | Project of string list * node
  | Map of string * Expr.num * node
  | Join of join
  | Aggregate of agg_node
  | Order_limit of (string * Tablesort.order) list * int option * node

and scan = {
  s_table : Table.t;
  s_keys : string list list;  (** candidate keys declared by the schema *)
}

and join = { j_left : node; j_right : node; j_on : string list }

and agg_node = {
  a_keys : string list;
  a_aggs : Dataflow.agg list;
  a_input : node;
}

(** {2 Constructors} *)

val scan : ?keys:string list list -> Table.t -> node
val filter : Expr.pred -> node -> node
val project : string list -> node -> node
val map : string -> Expr.num -> node -> node
val join : node -> node -> on:string list -> node
val aggregate : keys:string list -> aggs:Dataflow.agg list -> node -> node
val order_by : (string * Tablesort.order) list -> node -> node
val top : (string * Tablesort.order) list -> int -> node -> node

(** {2 Inference} *)

type info = {
  i_cols : string list;  (** output columns *)
  i_keys : string list list;  (** candidate keys *)
  i_rows : int;  (** physical row bound *)
}

val subset : 'a list -> 'a list -> bool
val infer : node -> info

val unique_on : node -> string list -> bool
(** Does the subtree expose a candidate key within [cols]? *)

(** {2 Predicate analysis} *)

val num_cols : Expr.num -> string list
val pred_cols : Expr.pred -> string list
val conjuncts : Expr.pred -> Expr.pred list
val conjoin : Expr.pred list -> Expr.pred

(** {2 EXPLAIN} *)

val pp : Format.formatter -> node -> unit
val explain : node -> string
