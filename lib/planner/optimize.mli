(** Logical-plan rewrites: filter pushdown (conjuncts sink below joins
    toward their scans), join orientation (the unique-key side moves to
    the operator's left, §3.3), and automatic §3.6 pre-aggregation (a
    decomposable COUNT/SUM above a many-to-many join becomes
    pre-aggregation + one-to-many join + multiplicity product +
    post-aggregation — the Figure 3 evaluation, derived mechanically). *)

val pushdown : Plan.node -> Plan.node
val orient : Plan.node -> Plan.node
val preagg : Plan.node -> Plan.node

val run : Plan.node -> Plan.node
(** The full pipeline: pushdown, then pre-aggregation, then orientation. *)
