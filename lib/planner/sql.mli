(** A small SQL front-end over the logical planner (see the .ml header for
    the supported grammar). Parsed queries become {!Plan} trees; the
    optimizer applies the paper's rewrites — including automatic §3.6
    pre-aggregation — before compilation. *)

exception Parse_error of string

type token =
  | Ident of string
  | Int of int
  | Kw of string
  | Sym of string
  | Eof

val lex : string -> token list

type catalog = string -> Orq_core.Table.t * string list list
(** Resolve a table name to its shared table and declared candidate keys;
    raise [Not_found] for unknown names. *)

val parse_query : catalog -> string -> Plan.node * string list
(** Parse into a logical plan plus the SELECT-list output columns.
    @raise Parse_error on malformed input. *)

val run : catalog -> string -> Orq_core.Table.t * string list * int
(** Parse, optimize, compile and execute; returns the projected result,
    the output column order, and the quadratic-fallback count. *)
