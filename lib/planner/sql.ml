(** A small SQL front-end over the logical planner.

    The paper deliberately exposes a dataflow API instead of SQL (§2.2,
    citing the CIDR'24 critique), but names automatic planning as future
    work; this module closes the loop for the SQL subset ORQ's operator
    class supports:

    {v
    SELECT item [, item ...]
    FROM table [JOIN table USING (col [, col])
               | JOIN table ON col = col [AND col = col ...]] ...
    [WHERE predicate]
    [GROUP BY col [, col ...]]
    [ORDER BY col [ASC|DESC] [, ...]]
    [LIMIT k]
    v}

    where [item] is a column, [expr AS name], or
    [SUM|COUNT|MIN|MAX|AVG(col) AS name], predicates are boolean
    combinations of comparisons over integer expressions, and join
    conditions are column equalities: [USING] follows the engine's
    natural-join convention, while [ON a = b] with distinct names
    renames the right table's column into the left's, so
    differently-prefixed schemas (TPC-H) join directly. Parsed queries become {!Plan} trees; the
    optimizer and compiler then apply the paper's rewrites, including the
    automatic §3.6 pre-aggregation for many-to-many joins. *)

open Orq_core

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | Ident of string
  | Int of int
  | Kw of string  (** uppercased keyword *)
  | Sym of string
  | Eof

let keywords =
  [
    "SELECT"; "FROM"; "JOIN"; "USING"; "ON"; "WHERE"; "GROUP"; "BY";
    "ORDER"; "LIMIT"; "AND"; "OR"; "NOT"; "AS"; "ASC"; "DESC"; "SUM";
    "COUNT"; "MIN"; "MAX"; "AVG";
  ]

let lex (s : string) : token list =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  let is_digit c = c >= '0' && c <= '9' in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\n' || c = '\t' || c = '\r' then incr i
    else if is_alpha c then begin
      let j = ref !i in
      while !j < n && (is_alpha s.[!j] || is_digit s.[!j]) do
        incr j
      done;
      let word = String.sub s !i (!j - !i) in
      let up = String.uppercase_ascii word in
      if List.mem up keywords then push (Kw up) else push (Ident word);
      i := !j
    end
    else if is_digit c then begin
      let j = ref !i in
      while !j < n && is_digit s.[!j] do
        incr j
      done;
      push (Int (int_of_string (String.sub s !i (!j - !i))));
      i := !j
    end
    else begin
      let two = if !i + 1 < n then String.sub s !i 2 else "" in
      match two with
      | "<=" | ">=" | "<>" | "!=" ->
          push (Sym (if two = "!=" then "<>" else two));
          i := !i + 2
      | _ -> (
          match c with
          | '=' | '<' | '>' | '+' | '-' | '*' | '/' | '(' | ')' | ',' ->
              push (Sym (String.make 1 c));
              incr i
          | _ -> fail "unexpected character %c" c)
    end
  done;
  List.rev (Eof :: !toks)

(* ------------------------------------------------------------------ *)
(* Parser (recursive descent over a token-list state)                  *)
(* ------------------------------------------------------------------ *)

type state = { mutable toks : token list }

let peek st = match st.toks with t :: _ -> t | [] -> Eof

let advance st =
  match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let expect_kw st kw =
  match peek st with
  | Kw k when k = kw -> advance st
  | t ->
      fail "expected %s, found %s" kw
        (match t with
        | Ident s -> s
        | Int i -> string_of_int i
        | Kw k -> k
        | Sym s -> s
        | Eof -> "<eof>")

let expect_sym st sym =
  match peek st with
  | Sym s when s = sym -> advance st
  | _ -> fail "expected '%s'" sym

let accept_kw st kw =
  match peek st with
  | Kw k when k = kw ->
      advance st;
      true
  | _ -> false

let accept_sym st sym =
  match peek st with
  | Sym s when s = sym ->
      advance st;
      true
  | _ -> false

let ident st =
  match peek st with
  | Ident s ->
      advance st;
      s
  | _ -> fail "expected identifier"

let integer st =
  match peek st with
  | Int v ->
      advance st;
      v
  | Sym "-" ->
      advance st;
      (match peek st with
      | Int v ->
          advance st;
          -v
      | _ -> fail "expected integer")
  | _ -> fail "expected integer"

(* expressions: term (('+'|'-') term)*; term: factor (('*'|'/') factor)*;
   both levels left-associative, so a * b / c = (a * b) / c *)
let rec parse_expr st : Expr.num =
  let lhs = ref (parse_term st) in
  let looping = ref true in
  while !looping do
    if accept_sym st "+" then lhs := Expr.Add (!lhs, parse_term st)
    else if accept_sym st "-" then lhs := Expr.Sub (!lhs, parse_term st)
    else looping := false
  done;
  !lhs

and parse_term st : Expr.num =
  let lhs = ref (parse_factor st) in
  let looping = ref true in
  while !looping do
    if accept_sym st "*" then lhs := Expr.Mul (!lhs, parse_factor st)
    else if accept_sym st "/" then
      (* public divisors compile to the cheaper public-division circuit *)
      lhs :=
        (match parse_factor st with
        | Expr.Const d -> Expr.Div_pub (!lhs, d)
        | e -> Expr.Div (!lhs, e))
    else looping := false
  done;
  !lhs

and parse_factor st : Expr.num =
  match peek st with
  | Int v ->
      advance st;
      Expr.Const v
  | Sym "-" ->
      advance st;
      Expr.Sub (Expr.Const 0, parse_factor st)
  | Ident c ->
      advance st;
      Expr.Col c
  | Sym "(" ->
      advance st;
      let e = parse_expr st in
      expect_sym st ")";
      e
  | _ -> fail "expected expression"

(* predicates: or_pred; and_pred; atom *)
let rec parse_pred st : Expr.pred =
  let lhs = parse_and st in
  if accept_kw st "OR" then Expr.Or (lhs, parse_pred st) else lhs

and parse_and st : Expr.pred =
  let lhs = parse_atom st in
  if accept_kw st "AND" then Expr.And (lhs, parse_and st) else lhs

and parse_atom st : Expr.pred =
  if accept_kw st "NOT" then Expr.Not (parse_atom st)
  else if
    (* a parenthesis may open a nested predicate or a numeric expr *)
    peek st = Sym "("
    &&
    (* try as predicate; on failure rewind *)
    let saved = st.toks in
    advance st;
    try
      let _ = parse_pred st in
      st.toks <- saved;
      true
    with Parse_error _ ->
      st.toks <- saved;
      false
  then begin
    expect_sym st "(";
    let p = parse_pred st in
    expect_sym st ")";
    p
  end
  else begin
    let lhs = parse_expr st in
    let op =
      if accept_sym st "=" then `Eq
      else if accept_sym st "<>" then `Neq
      else if accept_sym st "<=" then `Le
      else if accept_sym st ">=" then `Ge
      else if accept_sym st "<" then `Lt
      else if accept_sym st ">" then `Gt
      else fail "expected comparison operator"
    in
    Expr.Cmp (op, lhs, parse_expr st)
  end

(* select items *)
type item =
  | It_col of string
  | It_agg of Dataflow.aggfn * string * string  (** fn, src, dst *)
  | It_expr of Expr.num * string  (** expr AS name *)

let parse_item st : item =
  let aggfn =
    match peek st with
    | Kw "SUM" -> Some Dataflow.Sum
    | Kw "COUNT" -> Some Dataflow.Count
    | Kw "MIN" -> Some Dataflow.Min
    | Kw "MAX" -> Some Dataflow.Max
    | Kw "AVG" -> Some Dataflow.Avg
    | _ -> None
  in
  match aggfn with
  | Some fn ->
      advance st;
      expect_sym st "(";
      let src = match peek st with Sym "*" -> advance st; "*" | _ -> ident st in
      expect_sym st ")";
      expect_kw st "AS";
      let dst = ident st in
      It_agg (fn, src, dst)
  | None -> (
      let e = parse_expr st in
      match e with
      | Expr.Col c when peek st <> Kw "AS" -> It_col c
      | _ ->
          expect_kw st "AS";
          It_expr (e, ident st))

(* ------------------------------------------------------------------ *)
(* Query assembly                                                      *)
(* ------------------------------------------------------------------ *)

type catalog = string -> Table.t * string list list
(** Resolve a table name to its shared table and declared candidate keys. *)

let parse_query (cat : catalog) (sql : string) : Plan.node * string list =
  let st = { toks = lex sql } in
  expect_kw st "SELECT";
  let items = ref [ parse_item st ] in
  while accept_sym st "," do
    items := parse_item st :: !items
  done;
  let items = List.rev !items in
  expect_kw st "FROM";
  (* Catalogs signal unknown names with [Not_found]; convert here so a
     bad table name surfaces as a clean [Parse_error] (the query service
     turns it into an error frame) instead of a raw [Not_found]. *)
  let scan_of name =
    match cat name with
    | t, keys -> Plan.scan ~keys t
    | exception Not_found -> fail "unknown table: %s" name
  in
  let plan = ref (scan_of (ident st)) in
  while accept_kw st "JOIN" do
    let rname = ident st in
    let rtbl, rkeys =
      match cat rname with
      | t, keys -> (ref t, ref keys)
      | exception Not_found -> fail "unknown table: %s" rname
    in
    let cols = ref [] in
    if accept_kw st "USING" then begin
      expect_sym st "(";
      cols := [ ident st ];
      while accept_sym st "," do
        cols := ident st :: !cols
      done;
      expect_sym st ")"
    end
    else begin
      expect_kw st "ON";
      let eq () =
        let a = ident st in
        expect_sym st "=";
        let b = ident st in
        (a, b)
      in
      let pairs = ref [ eq () ] in
      while accept_kw st "AND" do
        pairs := eq () :: !pairs
      done;
      (* [ON a = b] with distinct names renames the right side's column
         into the left's (either written order), so differently-prefixed
         schemas like TPC-H join without a rename view; the engine's
         natural-join convention is restored underneath. *)
      List.iter
        (fun (a, b) ->
          if a = b then cols := a :: !cols
          else begin
            let lcols = (Plan.infer !plan).Plan.i_cols in
            let rcols = Table.col_names !rtbl in
            let lname, rcol =
              if List.mem a lcols && List.mem b rcols then (a, b)
              else if List.mem b lcols && List.mem a rcols then (b, a)
              else
                fail
                  "ON %s = %s: one side must name a column of the tables \
                   joined so far, the other a column of %s"
                  a b rname
            in
            if List.mem lname (Table.col_names !rtbl) then
              fail
                "ON %s = %s: %s already has a column named %s — the rename \
                 would be ambiguous (use USING (%s))"
                a b rname lname lname;
            rtbl := Table.rename_col !rtbl ~from:rcol ~into:lname;
            rkeys :=
              List.map
                (List.map (fun k -> if k = rcol then lname else k))
                !rkeys;
            cols := lname :: !cols
          end)
        !pairs
    end;
    plan := Plan.join !plan (Plan.scan ~keys:!rkeys !rtbl) ~on:(List.rev !cols)
  done;
  if accept_kw st "WHERE" then plan := Plan.filter (parse_pred st) !plan;
  (* derived columns materialize before grouping *)
  List.iter
    (function
      | It_expr (e, name) -> plan := Plan.map name e !plan
      | It_col _ | It_agg _ -> ())
    items;
  let group_keys =
    if accept_kw st "GROUP" then begin
      expect_kw st "BY";
      let ks = ref [ ident st ] in
      while accept_sym st "," do
        ks := ident st :: !ks
      done;
      Some (List.rev !ks)
    end
    else None
  in
  let aggs =
    List.filter_map
      (function
        | It_agg (fn, src, dst) ->
            let src = if src = "*" then "" else src in
            Some { Dataflow.src; dst; fn }
        | It_col _ | It_expr _ -> None)
      items
  in
  (match (group_keys, aggs) with
  | Some keys, _ :: _ ->
      let aggs =
        List.map
          (fun (a : Dataflow.agg) ->
            if a.Dataflow.src = "" then { a with Dataflow.src = List.hd keys }
            else a)
          aggs
      in
      plan := Plan.aggregate ~keys ~aggs !plan
  | Some keys, [] ->
      (* GROUP BY without aggregates is DISTINCT; emulate via count *)
      plan :=
        Plan.aggregate ~keys
          ~aggs:[ { Dataflow.src = List.hd keys; dst = "__one"; fn = Dataflow.Count } ]
          !plan
  | None, _ :: _ -> fail "aggregates require GROUP BY (use a constant key)"
  | None, [] -> ());
  if accept_kw st "ORDER" then begin
    expect_kw st "BY";
    let spec () =
      let c = ident st in
      let d =
        if accept_kw st "DESC" then Tablesort.Desc
        else begin
          ignore (accept_kw st "ASC");
          Tablesort.Asc
        end
      in
      (c, d)
    in
    let specs = ref [ spec () ] in
    while accept_sym st "," do
      specs := spec () :: !specs
    done;
    let k = if accept_kw st "LIMIT" then Some (integer st) else None in
    plan :=
      (match k with
      | Some k -> Plan.top (List.rev !specs) k !plan
      | None -> Plan.order_by (List.rev !specs) !plan)
  end
  else if accept_kw st "LIMIT" then
    fail "LIMIT requires ORDER BY (deterministic top-k)";
  (match peek st with
  | Eof -> ()
  | _ -> fail "trailing tokens after query");
  let out_cols =
    List.map
      (function
        | It_col c -> c
        | It_agg (_, _, dst) -> dst
        | It_expr (_, name) -> name)
      items
  in
  (!plan, out_cols)

(** Parse, optimize, compile and execute a SQL query against a catalog.
    Returns the result table (projected to the SELECT list), the output
    column order, and the number of quadratic fallbacks taken. *)
let run (cat : catalog) (sql : string) : Table.t * string list * int =
  let plan, out_cols = parse_query cat sql in
  let t, fb = Compile.run ~need:out_cols plan in
  (Table.project t (List.filter (fun c -> Table.mem t c) out_cols), out_cols, fb)
