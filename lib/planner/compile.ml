(** Lower an (optimized) logical plan onto the ORQ dataflow operators.

    A top-down needed-columns analysis prunes payloads at the scans and
    derives each join's [~copy] list (the left columns that must propagate
    into the matching right rows). Joins whose inputs both carry duplicate
    keys — i.e. queries outside ORQ's tractable class that {!Optimize}
    could not rewrite — fall back to the oblivious quadratic join, exactly
    as the paper prescribes (§2.1: "for these queries ORQ falls back to an
    oblivious O(n^2) join algorithm, like prior work"). *)

open Orq_core
open Plan

type stats = { mutable quadratic_fallbacks : int }

let inter a b = List.filter (fun x -> List.mem x b) a
let union a b = a @ List.filter (fun x -> not (List.mem x a)) b
let minus a b = List.filter (fun x -> not (List.mem x b)) a

let rec compile_need (st : stats) (need : string list) (n : node) : Table.t =
  match n with
  | Scan s ->
      let keep = inter (Table.col_names s.s_table) need in
      if keep = [] then s.s_table else Table.project s.s_table keep
  | Filter (p, m) ->
      (* merge directly stacked filters (conjunct-by-conjunct pushdown
         leaves Filter(c2, Filter(c1, Scan)) chains) into one conjoined
         predicate, so all comparison legs batch into shared comparison
         rounds in [Expr.eval_pred] and validity is updated once *)
      let rec gather acc m =
        match m with Filter (q, m') -> gather (q :: acc) m' | _ -> (acc, m)
      in
      let ps, m = gather [ p ] m in
      let p = conjoin ps in
      let t = compile_need st (union need (pred_cols p)) m in
      Dataflow.filter t p
  | Project (cols, m) ->
      let t = compile_need st (inter cols need) m in
      Table.project t (inter cols (Table.col_names t))
  | Map (dst, e, m) ->
      let t = compile_need st (union (minus need [ dst ]) (num_cols e)) m in
      Dataflow.map t ~dst e
  | Join j ->
      let il = infer j.j_left and ir = infer j.j_right in
      let need_l = union (inter need il.i_cols) j.j_on in
      let need_r = union (inter need ir.i_cols) j.j_on in
      let l = compile_need st need_l j.j_left in
      let r = compile_need st need_r j.j_right in
      let copy = minus (inter need (Table.col_names l)) j.j_on in
      if unique_on j.j_left j.j_on then
        Dataflow.inner_join l r ~on:j.j_on ~copy
      else if unique_on j.j_right j.j_on then
        (* orientation normally fixes this; cover unoptimized plans too *)
        let copy_r = minus (inter need (Table.col_names r)) j.j_on in
        Dataflow.inner_join r l ~on:j.j_on ~copy:copy_r
      else begin
        (* outside the tractable class: quadratic oblivious fallback —
           logged as a forced decision so explain output stays complete *)
        st.quadratic_fallbacks <- st.quadratic_fallbacks + 1;
        let shape =
          {
            Joincost.j_n = Table.nrows l;
            j_m = Table.nrows r;
            j_key_w =
              List.map
                (fun k -> max (Table.width l k) (Table.width r k))
                j.j_on;
            j_copy_w = [];
            j_pay_w = [];
            j_aggs = false;
            j_bounded = false;
            j_variant = Joincost.J_inner;
          }
        in
        Joincost.log_fallback (Table.ctx l)
          ~node:
            (Printf.sprintf "%s \xe2\x8b\x88 %s (out-of-class)" l.Table.name
               r.Table.name)
          shape;
        Orq_baselines.Secrecy_engine.nested_join (Table.ctx l) l r ~on:j.j_on
      end
  | Aggregate a ->
      let srcs =
        List.filter_map
          (fun (g : Dataflow.agg) ->
            match g.Dataflow.fn with Dataflow.Count -> None | _ -> Some g.Dataflow.src)
          a.a_aggs
      in
      let t = compile_need st (union a.a_keys srcs) a.a_input in
      (* Count needs *some* column as its src handle *)
      let aggs =
        List.map
          (fun (g : Dataflow.agg) ->
            match g.Dataflow.fn with
            | Dataflow.Count -> { g with Dataflow.src = List.hd (Table.col_names t) }
            | _ -> g)
          a.a_aggs
      in
      Dataflow.aggregate t ~keys:a.a_keys ~aggs
  | Order_limit (specs, k, m) ->
      let t = compile_need st (union need (List.map fst specs)) m in
      let t = Dataflow.order_by t specs in
      (match k with Some k -> Dataflow.limit t k | None -> t)

(** Compile a plan; [need] restricts the output columns (defaults to the
    plan's full schema). Returns the result table and how many joins had
    to take the quadratic fallback. *)
let run ?(optimize = true) ?need (n : node) : Table.t * int =
  let n = if optimize then Optimize.run n else n in
  let need = match need with Some c -> c | None -> (infer n).i_cols in
  let st = { quadratic_fallbacks = 0 } in
  let t = compile_need st need n in
  (t, st.quadratic_fallbacks)
