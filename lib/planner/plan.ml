(** Logical query plans — the automatic query planner the paper names as
    future work ("As presented, ORQ requires data analysts to translate
    queries into our dataflow API; future work includes integrating ORQ
    with an automatic query planner", §7).

    A plan is a relational-algebra tree over secret-shared base tables.
    The planner infers output schemas and candidate keys (public metadata:
    §2.1 — "analysts can leverage these constraints, if they exist, to
    improve execution performance"), {!Optimize} rewrites the tree
    (filter pushdown, join orientation, §3.6 pre-aggregation), and
    {!Compile} lowers it onto the {!Orq_core.Dataflow} operators — falling
    back to the quadratic oblivious join for queries outside ORQ's
    tractable class, exactly as §2.1 prescribes. *)

open Orq_core

type node =
  | Scan of scan
  | Filter of Expr.pred * node
  | Project of string list * node
  | Map of string * Expr.num * node
  | Join of join
  | Aggregate of agg_node
  | Order_limit of (string * Tablesort.order) list * int option * node

and scan = {
  s_table : Table.t;
  s_keys : string list list;  (** candidate keys declared by the schema *)
}

and join = { j_left : node; j_right : node; j_on : string list }

and agg_node = {
  a_keys : string list;
  a_aggs : Dataflow.agg list;
  a_input : node;
}

(* -------- constructors -------- *)

let scan ?(keys = []) t = Scan { s_table = t; s_keys = keys }
let filter p n = Filter (p, n)
let project cols n = Project (cols, n)
let map dst e n = Map (dst, e, n)
let join l r ~on = Join { j_left = l; j_right = r; j_on = on }
let aggregate ~keys ~aggs n = Aggregate { a_keys = keys; a_aggs = aggs; a_input = n }
let order_by specs n = Order_limit (specs, None, n)
let top specs k n = Order_limit (specs, Some k, n)

(* -------- schema and candidate-key inference -------- *)

type info = {
  i_cols : string list;  (** output columns *)
  i_keys : string list list;  (** candidate keys (column sets) *)
  i_rows : int;  (** physical row bound *)
}

let subset a b = List.for_all (fun x -> List.mem x b) a

let rec infer (n : node) : info =
  match n with
  | Scan s ->
      {
        i_cols = Table.col_names s.s_table;
        i_keys = s.s_keys;
        i_rows = Table.nrows s.s_table;
      }
  | Filter (_, m) -> infer m
  | Project (cols, m) ->
      let i = infer m in
      {
        i with
        i_cols = cols;
        i_keys = List.filter (fun k -> subset k cols) i.i_keys;
      }
  | Map (dst, _, m) ->
      let i = infer m in
      { i with i_cols = i.i_cols @ [ dst ] }
  | Join { j_left; j_right; j_on } ->
      let il = infer j_left and ir = infer j_right in
      let l_unique = List.exists (fun k -> subset k j_on) il.i_keys in
      let r_unique = List.exists (fun k -> subset k j_on) ir.i_keys in
      let cols =
        j_on
        @ List.filter (fun c -> not (List.mem c j_on)) il.i_cols
        @ List.filter (fun c -> not (List.mem c j_on)) ir.i_cols
      in
      (* keys of the many side survive a one-to-many join *)
      let keys =
        (if l_unique then ir.i_keys else [])
        @ (if r_unique then il.i_keys else [])
        @ if l_unique && r_unique then [ j_on ] else []
      in
      let rows =
        if l_unique || r_unique then max il.i_rows ir.i_rows + min il.i_rows ir.i_rows
        else il.i_rows * ir.i_rows
      in
      { i_cols = cols; i_keys = keys; i_rows = rows }
  | Aggregate a ->
      let i = infer a.a_input in
      {
        i_cols = i.i_cols @ List.map (fun (g : Dataflow.agg) -> g.Dataflow.dst) a.a_aggs;
        i_keys = [ a.a_keys ];
        i_rows = i.i_rows;
      }
  | Order_limit (_, k, m) ->
      let i = infer m in
      { i with i_rows = (match k with Some k -> min k i.i_rows | None -> i.i_rows) }

(** Does the subtree expose a candidate key within [cols]? *)
let unique_on (n : node) (cols : string list) =
  List.exists (fun k -> subset k cols) (infer n).i_keys

(* -------- predicate column analysis -------- *)

let rec num_cols (e : Expr.num) =
  match e with
  | Expr.Col c -> [ c ]
  | Expr.Const _ -> []
  | Expr.Add (a, b) | Expr.Sub (a, b) | Expr.Mul (a, b) | Expr.Div (a, b) ->
      num_cols a @ num_cols b
  | Expr.Div_pub (a, _) -> num_cols a
  | Expr.If (p, a, b) -> pred_cols p @ num_cols a @ num_cols b

and pred_cols (p : Expr.pred) =
  match p with
  | Expr.Cmp (_, a, b) -> num_cols a @ num_cols b
  | Expr.And (a, b) | Expr.Or (a, b) -> pred_cols a @ pred_cols b
  | Expr.Not a -> pred_cols a
  | Expr.True -> []

(** Split a conjunctive predicate into its conjuncts. *)
let rec conjuncts (p : Expr.pred) =
  match p with
  | Expr.And (a, b) -> conjuncts a @ conjuncts b
  | _ -> [ p ]

let conjoin = function
  | [] -> Expr.True
  | p :: rest -> List.fold_left (fun acc q -> Expr.And (acc, q)) p rest

(* -------- EXPLAIN -------- *)

let rec pp ppf (n : node) =
  match n with
  | Scan s ->
      Fmt.pf ppf "Scan(%s, %d rows%s)" s.s_table.Table.name
        (Table.nrows s.s_table)
        (match s.s_keys with
        | [] -> ""
        | ks ->
            ", keys: "
            ^ String.concat "; " (List.map (String.concat ",") ks))
  | Filter (_, m) -> Fmt.pf ppf "Filter(@[%a@])" pp m
  | Project (cols, m) ->
      Fmt.pf ppf "Project(%s,@ @[%a@])" (String.concat "," cols) pp m
  | Map (dst, _, m) -> Fmt.pf ppf "Map(%s,@ @[%a@])" dst pp m
  | Join j ->
      Fmt.pf ppf "Join(on %s,@ @[%a@],@ @[%a@])"
        (String.concat "," j.j_on)
        pp j.j_left pp j.j_right
  | Aggregate a ->
      Fmt.pf ppf "Aggregate(by %s,@ @[%a@])"
        (String.concat "," a.a_keys)
        pp a.a_input
  | Order_limit (specs, k, m) ->
      Fmt.pf ppf "OrderLimit(%s%s,@ @[%a@])"
        (String.concat "," (List.map fst specs))
        (match k with Some k -> Printf.sprintf " limit %d" k | None -> "")
        pp m

let explain n = Fmt.str "%a" pp n
