(** Per-peer exchange layer: turns the {!Orq_net.Comm.channel} metering
    hooks into real framed messages on the party mesh.

    {b Model.} The engine is a deterministic lockstep simulation: every
    party runs the identical execution, so control flow, metering, and
    results agree bit-for-bit across the cluster. What a real deployment
    adds is the wire: at every metered round boundary this layer batches
    the round's payloads into {e one} framed message per party, sends it
    to the party's ring successor, and blocks until the matching message
    arrives from its predecessor — a physical lockstep barrier whose
    exchange count equals the metered round count by construction.

    {b Flow.} [ch_round] flushes the previous round and opens a new one;
    [ch_traffic] batches into the open round (vectorized piggybacking:
    more payload, same exchange); [ch_barrier k] performs [k] empty
    exchanges; [ch_refund] only counts — the fusion layer retracts
    rounds that a concurrent deployment would overlap, but this
    sequential execution already exchanged them, so physical exchanges
    equal metered rounds {e plus} refunds.

    {b Payload split.} A metered round carries [bits] summed over all
    parties; party [p] of [n] puts [bits/n] (plus one bit-group of the
    remainder when [p < bits mod n]) on the wire, so the cluster-wide
    measured payload reproduces the metered total exactly.

    {b Divergence detection.} Each message carries the metered totals of
    its round; the receiver checks them against its own. Any cross-party
    drift (seed mismatch slipping past the handshake, nondeterminism) is
    caught at the first differing round, not as a garbled result.

    {b Deadlock freedom.} A dedicated receiver thread per peer drains
    the socket into a queue, so peers never block writing to a party
    that is still computing; the execution thread only ever blocks on
    its predecessor's queue. *)

module Comm = Orq_net.Comm
module Locked = Orq_util.Locked

exception Exchange_error = Pwire.Party_error

let fail fmt = Printf.ksprintf (fun s -> raise (Exchange_error s)) fmt

(* One connected peer: the receiver thread pushes every incoming mesh
   message into [q]; [dead] flips on EOF or a receive error. *)
type peer = {
  pr_id : int;
  pr_fd : Unix.file_descr;
  pr_q : Pwire.msg Queue.t;
  pr_m : Locked.t;
  pr_c : Condition.t;
  mutable pr_dead : string option;  (** reason, once the peer is gone *)
  mutable pr_thread : Thread.t option;
}

(* Measured on-the-wire counters, reset per query. *)
type measured = {
  mutable mx_exchanges : int;
  mutable mx_refunds : int;
  mutable mx_bits : int;  (** this party's share of the metered bits *)
  mutable mx_msgs : int;
  mutable mx_payload : int;  (** payload bytes actually framed *)
  mutable mx_frames : int;  (** mesh frames sent this query *)
}

type t = {
  party : int;
  parties : int;
  peers : peer option array;  (** indexed by party id; own slot [None] *)
  verbose : bool;
  mutable seq : int;  (** exchange sequence within the current query *)
  (* the currently-open metered round, not yet flushed *)
  mutable pend_open : bool;
  mutable pend_events : int;
  mutable pend_bits : int;
  mutable pend_msgs : int;
  mx : measured;
}

let logf t fmt =
  Printf.ksprintf
    (fun s ->
      if t.verbose then Printf.eprintf "[party %d] %s\n%!" t.party s)
    fmt

(* ------------------------------------------------------------------ *)
(* Peer receiver threads                                               *)
(* ------------------------------------------------------------------ *)

let peer_mark_dead (p : peer) reason =
  Locked.with_lock p.pr_m (fun () ->
      if p.pr_dead = None then p.pr_dead <- Some reason;
      Condition.broadcast p.pr_c)

let receiver_loop (p : peer) () =
  let rec loop () =
    match Pwire.recv p.pr_fd with
    | None -> peer_mark_dead p "peer closed the connection"
    | Some m ->
        Locked.with_lock p.pr_m (fun () ->
            Queue.push m p.pr_q;
            Condition.broadcast p.pr_c);
        loop ()
    | exception e -> peer_mark_dead p (Printexc.to_string e)
  in
  loop ()

(* The [fail] inside the region is fine: [with_lock] releases on raise. *)
let pop_msg (p : peer) : Pwire.msg =
  Locked.with_lock p.pr_m (fun () ->
      let rec wait () =
        if not (Queue.is_empty p.pr_q) then Queue.pop p.pr_q
        else
          match p.pr_dead with
          | Some reason -> fail "lost peer %d: %s" p.pr_id reason
          | None ->
              Locked.wait p.pr_m p.pr_c;
              wait ()
      in
      wait ())

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create ~party ~parties ?(verbose = false)
    (conns : (int * Unix.file_descr) list) : t =
  if List.length conns <> parties - 1 then
    fail "party %d: %d peer connections for a %d-party mesh" party
      (List.length conns) parties;
  let peers = Array.make parties None in
  List.iter
    (fun (id, fd) ->
      if id < 0 || id >= parties || id = party then
        fail "party %d: bad peer id %d" party id;
      if peers.(id) <> None then fail "party %d: duplicate peer %d" party id;
      let p =
        {
          pr_id = id;
          pr_fd = fd;
          pr_q = Queue.create ();
          pr_m = Locked.create ~name:"exchange" ~rank:50 ();
          pr_c = Condition.create ();
          pr_dead = None;
          pr_thread = None;
        }
      in
      p.pr_thread <- Some (Thread.create (receiver_loop p) ());
      peers.(id) <- Some p)
    conns;
  {
    party;
    parties;
    peers;
    verbose;
    seq = 0;
    pend_open = false;
    pend_events = 0;
    pend_bits = 0;
    pend_msgs = 0;
    mx =
      {
        mx_exchanges = 0;
        mx_refunds = 0;
        mx_bits = 0;
        mx_msgs = 0;
        mx_payload = 0;
        mx_frames = 0;
      };
  }

let peer t id =
  match t.peers.(id) with
  | Some p -> p
  | None -> fail "party %d: no connection to peer %d" t.party id

let succ t = (t.party + 1) mod t.parties
let pred t = (t.party + t.parties - 1) mod t.parties

(* Party [p]'s share of a cluster-total quantity: [total/n] plus one unit
   of the remainder for the lowest-numbered parties, so shares sum to
   [total] exactly. *)
let share_of ~party ~parties total =
  (total / parties) + (if party < total mod parties then 1 else 0)

(* ------------------------------------------------------------------ *)
(* The ring exchange                                                   *)
(* ------------------------------------------------------------------ *)

(* Payload filler: the simulation holds all shares in-process, so the
   bytes themselves carry no secret — only their count is meaningful
   (and gated). A fixed pattern keeps frames cheap to build and obvious
   in a packet capture. *)
let payload_byte = '\xa5'

let exchange t ~events ~bits ~msgs =
  let my_bits = share_of ~party:t.party ~parties:t.parties bits in
  let my_msgs = share_of ~party:t.party ~parties:t.parties msgs in
  let payload = String.make ((my_bits + 7) / 8) payload_byte in
  let out =
    Pwire.Round_p
      { r_seq = t.seq; r_events = events; r_bits = bits; r_msgs = msgs;
        r_payload = payload }
  in
  Pwire.send (peer t (succ t)).pr_fd out;
  (match pop_msg (peer t (pred t)) with
  | Pwire.Round_p r ->
      if r.r_seq <> t.seq then
        fail "party %d: exchange out of step: got seq %d, expected %d"
          t.party r.r_seq t.seq;
      if r.r_events <> events || r.r_bits <> bits || r.r_msgs <> msgs then
        fail
          "party %d: cross-party divergence at exchange %d: peer %d metered \
           (events=%d bits=%d msgs=%d), we metered (events=%d bits=%d \
           msgs=%d)"
          t.party t.seq (pred t) r.r_events r.r_bits r.r_msgs events bits msgs;
      let want =
        (share_of ~party:(pred t) ~parties:t.parties bits + 7) / 8
      in
      if String.length r.r_payload <> want then
        fail "party %d: exchange %d: peer %d sent %d payload bytes, want %d"
          t.party t.seq (pred t)
          (String.length r.r_payload)
          want
  | m ->
      fail "party %d: expected a round frame at exchange %d, got %s" t.party
        t.seq (Pwire.msg_label m));
  t.seq <- t.seq + 1;
  t.mx.mx_exchanges <- t.mx.mx_exchanges + 1;
  t.mx.mx_bits <- t.mx.mx_bits + my_bits;
  t.mx.mx_msgs <- t.mx.mx_msgs + my_msgs;
  t.mx.mx_payload <- t.mx.mx_payload + String.length payload;
  t.mx.mx_frames <- t.mx.mx_frames + 1

let flush t =
  if t.pend_open then begin
    let events = t.pend_events
    and bits = t.pend_bits
    and msgs = t.pend_msgs in
    t.pend_open <- false;
    t.pend_events <- 0;
    t.pend_bits <- 0;
    t.pend_msgs <- 0;
    exchange t ~events ~bits ~msgs
  end

(* ------------------------------------------------------------------ *)
(* The Comm.channel hooks                                              *)
(* ------------------------------------------------------------------ *)

(* A new metered round closes the previous exchange and opens a fresh
   one; traffic piggybacks on whatever round is open (a traffic event
   with no open round — legal but unusual — opens one, so its bytes
   still reach the wire at the next boundary). *)
let channel (t : t) : Comm.channel =
  {
    Comm.ch_round =
      (fun ~bits ~messages ->
        flush t;
        t.pend_open <- true;
        t.pend_events <- 1;
        t.pend_bits <- bits;
        t.pend_msgs <- messages);
    ch_traffic =
      (fun ~bits ~messages ->
        if not t.pend_open then t.pend_open <- true;
        t.pend_events <- t.pend_events + 1;
        t.pend_bits <- t.pend_bits + bits;
        t.pend_msgs <- t.pend_msgs + messages);
    ch_barrier =
      (fun k ->
        flush t;
        for _ = 1 to k do
          exchange t ~events:0 ~bits:0 ~msgs:0
        done);
    ch_refund = (fun k -> t.mx.mx_refunds <- t.mx.mx_refunds + k);
  }

(* ------------------------------------------------------------------ *)
(* Query framing: reset / fence                                        *)
(* ------------------------------------------------------------------ *)

let reset_query t =
  t.seq <- 0;
  t.pend_open <- false;
  t.pend_events <- 0;
  t.pend_bits <- 0;
  t.pend_msgs <- 0;
  t.mx.mx_exchanges <- 0;
  t.mx.mx_refunds <- 0;
  t.mx.mx_bits <- 0;
  t.mx.mx_msgs <- 0;
  t.mx.mx_payload <- 0;
  t.mx.mx_frames <- 0

let broadcast t (m : Pwire.msg) =
  Array.iter
    (function Some p -> Pwire.send p.pr_fd m | None -> ())
    t.peers

(** End-of-query barrier: flush the open round, broadcast our fence, and
    collect every peer's. Verifies that all parties metered the same
    tally and digested the same result — any divergence the per-round
    checks missed is caught here. Returns the fences indexed by party
    (our own included). *)
let fence t ~qid ~(tally : Comm.tally) ~digest : Pwire.fence array =
  flush t;
  let own =
    {
      Pwire.f_qid = qid;
      f_party = t.party;
      f_rounds = tally.Comm.t_rounds;
      f_bits = tally.Comm.t_bits;
      f_msgs = tally.Comm.t_messages;
      f_digest = digest;
      f_exchanges = t.mx.mx_exchanges;
      f_refunds = t.mx.mx_refunds;
      f_sent_bits = t.mx.mx_bits;
      f_sent_msgs = t.mx.mx_msgs;
      f_payload_bytes = t.mx.mx_payload;
      f_frames = t.mx.mx_frames;
    }
  in
  (* the physical lockstep property, checked locally on every party:
     exchanges happened one per metered round event, refunds included *)
  if own.f_exchanges - own.f_refunds <> own.f_rounds then
    fail
      "party %d: query %d: %d physical exchanges - %d refunds <> %d metered \
       rounds"
      t.party qid own.f_exchanges own.f_refunds own.f_rounds;
  broadcast t (Pwire.Fence_p own);
  let fences = Array.make t.parties own in
  for id = 0 to t.parties - 1 do
    if id <> t.party then begin
      match pop_msg (peer t id) with
      | Pwire.Fence_p f ->
          if f.Pwire.f_qid <> qid then
            fail "party %d: fence for query %d from peer %d, expected %d"
              t.party f.Pwire.f_qid id qid;
          if
            f.Pwire.f_rounds <> own.f_rounds
            || f.Pwire.f_bits <> own.f_bits
            || f.Pwire.f_msgs <> own.f_msgs
          then
            fail
              "party %d: query %d: peer %d metered \
               (rounds=%d bits=%d msgs=%d), we metered (rounds=%d bits=%d \
               msgs=%d)"
              t.party qid id f.Pwire.f_rounds f.Pwire.f_bits f.Pwire.f_msgs
              own.f_rounds own.f_bits own.f_msgs;
          if f.Pwire.f_digest <> own.f_digest then
            fail
              "party %d: query %d: result digest mismatch with peer %d \
               (%016x vs %016x)"
              t.party qid id f.Pwire.f_digest own.f_digest;
          fences.(id) <- f
      | m ->
          fail "party %d: expected a fence from peer %d, got %s" t.party id
            (Pwire.msg_label m)
    end
  done;
  logf t "query %d fenced: %d exchanges, %d payload bytes" qid
    own.f_exchanges own.f_payload_bytes;
  fences

(* ------------------------------------------------------------------ *)
(* Coordinator control messages                                        *)
(* ------------------------------------------------------------------ *)

let send_query t ~qid ~sql ~max_rows =
  broadcast t (Pwire.Query_c { q_qid = qid; q_sql = sql; q_max_rows = max_rows })

(** Block until the coordinator's next control message: [Some] query to
    execute, [None] on an orderly [Bye_p] or coordinator disconnect. *)
let recv_query t : (int * string * int) option =
  if t.party = 0 then fail "party 0 is the coordinator: no queries to receive";
  match pop_msg (peer t 0) with
  | Pwire.Query_c { q_qid; q_sql; q_max_rows } -> Some (q_qid, q_sql, q_max_rows)
  | Pwire.Bye_p -> None
  | m -> fail "party %d: expected a query from the coordinator, got %s"
           t.party (Pwire.msg_label m)
  | exception Exchange_error _ -> None

let send_bye t = try broadcast t Pwire.Bye_p with _ -> ()

let close t =
  Array.iter
    (function
      | Some p -> ( try Unix.close p.pr_fd with Unix.Unix_error _ -> ())
      | None -> ())
    t.peers;
  Array.iter
    (function
      | Some { pr_thread = Some th; _ } -> ( try Thread.join th with _ -> ())
      | _ -> ())
    t.peers
