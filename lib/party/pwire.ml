(** Mesh wire protocol between party processes.

    Rides on {!Orq_net.Wire}'s length-prefixed framing (same [max_frame]
    bound, same big-endian {!Orq_net.Wire.Codec} primitives), with its
    own message set. Every frame body starts with a 4-byte protocol
    magic, so a stray client speaking the query-service protocol — or
    plain garbage — is rejected on the first frame instead of being
    mis-decoded. *)

module Wire = Orq_net.Wire
module C = Wire.Codec
module Comm = Orq_net.Comm

exception Party_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Party_error s)) fmt

(* Distinct from the service protocol's framing on purpose: the first
   body byte of a service frame is a tag in 0x01..0x86, never 'O'. *)
let magic = "ORQP"
let version = 1

type hello = {
  p_version : int;
  p_party : int;  (** sender's party id, 0-based *)
  p_parties : int;
  p_proto : string;  (** protocol kind label ("sh-dm"|"sh-hm"|"mal-hm") *)
  p_seed : int;  (** cluster data/session seed *)
  p_sf : float;  (** TPC-H scale factor of the shared catalog *)
  p_ell : int;  (** element bit width *)
}
(** Handshake: both sides must agree on every field except [p_party]
    before any round crosses the mesh — a cluster mixing seeds or scale
    factors would silently diverge later. *)

type round = {
  r_seq : int;  (** exchange sequence number within the query *)
  r_events : int;  (** metering events batched into this exchange *)
  r_bits : int;  (** metered bits of the round, summed over parties *)
  r_msgs : int;  (** metered messages of the round, all parties *)
  r_payload : string;  (** this party's byte share of the round *)
}
(** One physical exchange: all payloads of one metered round batched
    into a single frame. [r_events]/[r_bits]/[r_msgs] are the metered
    totals — identical on every party of a correct (deterministic)
    execution, so the receiver checks them against its own. *)

type fence = {
  f_qid : int;
  f_party : int;
  f_rounds : int;  (** metered online tally of the query … *)
  f_bits : int;
  f_msgs : int;
  f_digest : int;  (** FNV digest of the encoded query response *)
  f_exchanges : int;  (** … and what was measured on the wire: *)
  f_refunds : int;  (** fusion refunds signalled during the query *)
  f_sent_bits : int;  (** this party's share of the metered bits *)
  f_sent_msgs : int;
  f_payload_bytes : int;  (** payload bytes this party put on the wire *)
  f_frames : int;  (** mesh frames this party sent for the query *)
}
(** End-of-query barrier, broadcast to every peer: metered tally plus
    result digest (divergence detection) plus this party's measured
    on-the-wire counters (party 0 aggregates them for [Net_stats]). *)

type msg =
  | Hello_p of hello
  | Reject_p of string  (** handshake refusal, with the reason *)
  | Query_c of { q_qid : int; q_sql : string; q_max_rows : int }
      (** coordinator → peers: execute this query next *)
  | Round_p of round
  | Fence_p of fence
  | Bye_p  (** orderly cluster shutdown *)

let tag_hello = 0x01
and tag_reject = 0x02
and tag_query = 0x03
and tag_round = 0x04
and tag_fence = 0x05
and tag_bye = 0x06

let encode (m : msg) : bytes =
  let b = Buffer.create 64 in
  Buffer.add_string b magic;
  (match m with
  | Hello_p h ->
      C.put_u8 b tag_hello;
      C.put_u16 b h.p_version;
      C.put_u16 b h.p_party;
      C.put_u16 b h.p_parties;
      C.put_string b h.p_proto;
      C.put_i64 b h.p_seed;
      C.put_f64 b h.p_sf;
      C.put_u16 b h.p_ell
  | Reject_p msg ->
      C.put_u8 b tag_reject;
      C.put_string b msg
  | Query_c { q_qid; q_sql; q_max_rows } ->
      C.put_u8 b tag_query;
      C.put_i64 b q_qid;
      C.put_i64 b q_max_rows;
      C.put_string b q_sql
  | Round_p r ->
      C.put_u8 b tag_round;
      C.put_i64 b r.r_seq;
      C.put_i64 b r.r_events;
      C.put_i64 b r.r_bits;
      C.put_i64 b r.r_msgs;
      C.put_string b r.r_payload
  | Fence_p f ->
      C.put_u8 b tag_fence;
      C.put_i64 b f.f_qid;
      C.put_u16 b f.f_party;
      C.put_i64 b f.f_rounds;
      C.put_i64 b f.f_bits;
      C.put_i64 b f.f_msgs;
      C.put_i64 b f.f_digest;
      C.put_i64 b f.f_exchanges;
      C.put_i64 b f.f_refunds;
      C.put_i64 b f.f_sent_bits;
      C.put_i64 b f.f_sent_msgs;
      C.put_i64 b f.f_payload_bytes;
      C.put_i64 b f.f_frames
  | Bye_p -> C.put_u8 b tag_bye);
  Buffer.to_bytes b

let decode (body : bytes) : msg =
  if Bytes.length body < 5 then fail "mesh frame too short (%d bytes)"
      (Bytes.length body);
  if Bytes.sub_string body 0 4 <> magic then
    fail "bad protocol magic %S (want %S) — not a party mesh peer"
      (String.escaped (Bytes.sub_string body 0 4))
      magic;
  let c = C.cursor (Bytes.sub body 4 (Bytes.length body - 4)) in
  let m =
    match C.get_u8 c with
    | t when t = tag_hello ->
        let p_version = C.get_u16 c in
        let p_party = C.get_u16 c in
        let p_parties = C.get_u16 c in
        let p_proto = C.get_string c in
        let p_seed = C.get_i64 c in
        let p_sf = C.get_f64 c in
        let p_ell = C.get_u16 c in
        Hello_p { p_version; p_party; p_parties; p_proto; p_seed; p_sf; p_ell }
    | t when t = tag_reject -> Reject_p (C.get_string c)
    | t when t = tag_query ->
        let q_qid = C.get_i64 c in
        let q_max_rows = C.get_i64 c in
        let q_sql = C.get_string c in
        Query_c { q_qid; q_sql; q_max_rows }
    | t when t = tag_round ->
        let r_seq = C.get_i64 c in
        let r_events = C.get_i64 c in
        let r_bits = C.get_i64 c in
        let r_msgs = C.get_i64 c in
        let r_payload = C.get_string c in
        Round_p { r_seq; r_events; r_bits; r_msgs; r_payload }
    | t when t = tag_fence ->
        let f_qid = C.get_i64 c in
        let f_party = C.get_u16 c in
        let f_rounds = C.get_i64 c in
        let f_bits = C.get_i64 c in
        let f_msgs = C.get_i64 c in
        let f_digest = C.get_i64 c in
        let f_exchanges = C.get_i64 c in
        let f_refunds = C.get_i64 c in
        let f_sent_bits = C.get_i64 c in
        let f_sent_msgs = C.get_i64 c in
        let f_payload_bytes = C.get_i64 c in
        let f_frames = C.get_i64 c in
        Fence_p
          {
            f_qid;
            f_party;
            f_rounds;
            f_bits;
            f_msgs;
            f_digest;
            f_exchanges;
            f_refunds;
            f_sent_bits;
            f_sent_msgs;
            f_payload_bytes;
            f_frames;
          }
    | t when t = tag_bye -> Bye_p
    | t -> fail "unknown mesh tag 0x%02x" t
  in
  C.finish c;
  m

let send fd m = Wire.write_frame fd (encode m)

let recv fd : msg option =
  match Wire.read_frame fd with None -> None | Some b -> Some (decode b)

let msg_label = function
  | Hello_p _ -> "hello"
  | Reject_p _ -> "reject"
  | Query_c _ -> "query"
  | Round_p _ -> "round"
  | Fence_p _ -> "fence"
  | Bye_p -> "bye"
