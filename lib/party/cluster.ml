(** Party process runtime: N real OS processes, one per computing party,
    exchanging actual framed messages over TCP or Unix-domain sockets.

    The engine is a deterministic lockstep simulation, so every party
    runs the identical execution over the identical shared catalog; the
    cluster adds the physical wire. Startup establishes a full mesh —
    party [i] dials every [j < i] (with bounded retry, so processes can
    start in any order) and accepts from every [j > i], handshaking with
    a magic/version/parameter check — then each query runs with an
    {!Exchange} channel attached to the online meter, placing one framed
    message per metered round on the wire and fencing at query end.

    Party 0 doubles as the {e coordinator}: it serves the ordinary query
    service protocol ({!Orq_net.Wire}) to clients on a separate front-end
    socket, broadcasts each query to the peers, and aggregates the
    measured per-party wire counters into [Net_stats] — per-query
    results and tallies are byte-identical to the in-process service by
    construction (same seeds, same execution path). *)

open Orq_proto
module Wire = Orq_net.Wire
module Comm = Orq_net.Comm
module Transport = Orq_net.Transport
module Service = Orq_service.Service
module Tpch_gen = Orq_workloads.Tpch_gen

exception Cluster_error = Pwire.Party_error

let fail fmt = Printf.ksprintf (fun s -> raise (Cluster_error s)) fmt

type config = {
  party : int;  (** this process's party id, 0-based *)
  proto : Ctx.kind;
  seed : int;  (** cluster data/session seed — must agree everywhere *)
  sf : float;  (** TPC-H scale factor — must agree everywhere *)
  peers : Transport.addr array;  (** mesh addresses, indexed by party *)
  listen : Transport.addr option;
      (** mesh bind override (default [peers.(party)]) *)
  listen_fd : Unix.file_descr option;
      (** pre-bound mesh listener — lets a launcher bind every port
          before forking, eliminating startup races *)
  client : Transport.addr option;  (** party 0's client front end *)
  client_fd : Unix.file_descr option;
  max_rows : int;
  verbose : bool;
}

let default_config ~party ~proto ~peers () =
  {
    party;
    proto;
    seed = 42;
    sf = 0.001;
    peers;
    listen = None;
    listen_fd = None;
    client = None;
    client_fd = None;
    max_rows = 10_000;
    verbose = false;
  }

let logf (cfg : config) fmt =
  Printf.ksprintf
    (fun s ->
      if cfg.verbose then Printf.eprintf "[party %d] %s\n%!" cfg.party s)
    fmt

(* ------------------------------------------------------------------ *)
(* Handshake                                                           *)
(* ------------------------------------------------------------------ *)

let my_hello (cfg : config) ~ell : Pwire.hello =
  {
    Pwire.p_version = Pwire.version;
    p_party = cfg.party;
    p_parties = Array.length cfg.peers;
    p_proto = Ctx.kind_label cfg.proto;
    p_seed = cfg.seed;
    p_sf = cfg.sf;
    p_ell = ell;
  }

(* Everything except the party id must agree: a cluster mixing versions,
   protocols, seeds, or scale factors would diverge silently later —
   reject it at the first frame with a reason instead. *)
let verify_hello ~(mine : Pwire.hello) ~(theirs : Pwire.hello) :
    (unit, string) result =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if theirs.Pwire.p_version <> mine.Pwire.p_version then
    err "mesh protocol version mismatch: peer speaks v%d, we speak v%d"
      theirs.Pwire.p_version mine.Pwire.p_version
  else if theirs.Pwire.p_parties <> mine.Pwire.p_parties then
    err "party count mismatch: peer expects %d parties, we expect %d"
      theirs.Pwire.p_parties mine.Pwire.p_parties
  else if theirs.Pwire.p_proto <> mine.Pwire.p_proto then
    err "protocol mismatch: peer runs %s, we run %s" theirs.Pwire.p_proto
      mine.Pwire.p_proto
  else if theirs.Pwire.p_seed <> mine.Pwire.p_seed then
    err "session seed mismatch: peer has %d, we have %d" theirs.Pwire.p_seed
      mine.Pwire.p_seed
  else if theirs.Pwire.p_sf <> mine.Pwire.p_sf then
    err "scale factor mismatch: peer has %g, we have %g" theirs.Pwire.p_sf
      mine.Pwire.p_sf
  else if theirs.Pwire.p_ell <> mine.Pwire.p_ell then
    err "element width mismatch: peer has %d, we have %d" theirs.Pwire.p_ell
      mine.Pwire.p_ell
  else if
    theirs.Pwire.p_party < 0 || theirs.Pwire.p_party >= mine.Pwire.p_parties
  then err "bad peer party id %d" theirs.Pwire.p_party
  else if theirs.Pwire.p_party = mine.Pwire.p_party then
    err "peer claims our own party id %d" theirs.Pwire.p_party
  else Ok ()

let handshake_timeout_s = 5.0

let with_handshake_timeout fd f =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO handshake_timeout_s
   with Unix.Unix_error _ -> ());
  let r = f () in
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0. with Unix.Unix_error _ -> ());
  r

(* Acceptor side: read the dialer's hello, verify, answer with our own
   (or a reasoned [Reject_p]). Returns the authenticated peer id. *)
let accept_handshake ~(mine : Pwire.hello) fd : (int, string) result =
  match with_handshake_timeout fd (fun () -> Pwire.recv fd) with
  | None -> Error "peer closed during handshake"
  | exception e -> Error (Printexc.to_string e)
  | Some (Pwire.Hello_p theirs) -> (
      match verify_hello ~mine ~theirs with
      | Ok () ->
          if theirs.Pwire.p_party < mine.Pwire.p_party then
            Error
              (Printf.sprintf
                 "peer %d dialed us (party %d) but lower ids accept, higher \
                  ids dial"
                 theirs.Pwire.p_party mine.Pwire.p_party)
          else begin
            Pwire.send fd (Pwire.Hello_p mine);
            Ok theirs.Pwire.p_party
          end
      | Error reason ->
          (try Pwire.send fd (Pwire.Reject_p reason) with _ -> ());
          Error reason)
  | Some m ->
      let reason =
        Printf.sprintf "expected a mesh hello, got %s" (Pwire.msg_label m)
      in
      (try Pwire.send fd (Pwire.Reject_p reason) with _ -> ());
      Error reason

(* Dialer side: send our hello first, then verify the acceptor's reply. *)
let dial_handshake ~(mine : Pwire.hello) ~expect fd : (unit, string) result =
  Pwire.send fd (Pwire.Hello_p mine);
  match with_handshake_timeout fd (fun () -> Pwire.recv fd) with
  | None -> Error "peer closed during handshake"
  | exception e -> Error (Printexc.to_string e)
  | Some (Pwire.Reject_p reason) -> Error ("peer rejected us: " ^ reason)
  | Some (Pwire.Hello_p theirs) -> (
      match verify_hello ~mine ~theirs with
      | Error _ as e -> e
      | Ok () ->
          if theirs.Pwire.p_party <> expect then
            Error
              (Printf.sprintf "dialed party %d but party %d answered" expect
                 theirs.Pwire.p_party)
          else Ok ())
  | Some m ->
      Error (Printf.sprintf "expected a mesh hello, got %s" (Pwire.msg_label m))

(* ------------------------------------------------------------------ *)
(* Mesh establishment                                                  *)
(* ------------------------------------------------------------------ *)

(* Party [i] accepts from every [j > i] and dials every [j < i]; dialing
   retries with backoff so the cluster can start in any order. A
   connection failing the handshake is rejected and does not consume an
   expected slot — a stray client cannot wedge cluster startup. *)
let establish_mesh (cfg : config) ~ell : (int * Unix.file_descr) list =
  let parties = Array.length cfg.peers in
  let mine = my_hello cfg ~ell in
  let listen_fd =
    match cfg.listen_fd with
    | Some fd -> fd
    | None ->
        let addr =
          match cfg.listen with Some a -> a | None -> cfg.peers.(cfg.party)
        in
        Transport.listen addr
  in
  let expected = parties - 1 - cfg.party in
  let accepted = ref [] in
  let accept_err = ref None in
  let acceptor =
    Thread.create
      (fun () ->
        try
          while List.length !accepted < expected do
            let fd = Transport.accept listen_fd in
            match accept_handshake ~mine fd with
            | Ok id ->
                if List.mem_assoc id !accepted then begin
                  Transport.close_noerr fd;
                  logf cfg "duplicate connection from party %d dropped" id
                end
                else begin
                  logf cfg "accepted party %d" id;
                  accepted := (id, fd) :: !accepted
                end
            | Error reason ->
                Transport.close_noerr fd;
                logf cfg "rejected a connection: %s" reason
          done
        with e -> accept_err := Some e)
      ()
  in
  let dialed = ref [] in
  (try
     for j = 0 to cfg.party - 1 do
       let fd = Transport.connect_retry cfg.peers.(j) in
       (match dial_handshake ~mine ~expect:j fd with
       | Ok () -> ()
       | Error reason ->
           Transport.close_noerr fd;
           fail "party %d: handshake with party %d failed: %s" cfg.party j
             reason);
       logf cfg "connected to party %d" j;
       dialed := (j, fd) :: !dialed
     done
   with e ->
     List.iter (fun (_, fd) -> Transport.close_noerr fd) !dialed;
     (* unblock and reap the acceptor before propagating *)
     Transport.close_noerr listen_fd;
     (try Thread.join acceptor with _ -> ());
     List.iter (fun (_, fd) -> Transport.close_noerr fd) !accepted;
     raise e);
  Thread.join acceptor;
  (match !accept_err with
  | Some e ->
      List.iter (fun (_, fd) -> Transport.close_noerr fd) (!dialed @ !accepted);
      raise e
  | None -> ());
  (* the mesh is full: nobody dials us later *)
  Transport.close_noerr listen_fd;
  !dialed @ !accepted

(* ------------------------------------------------------------------ *)
(* Query execution                                                     *)
(* ------------------------------------------------------------------ *)

(* FNV-1a over the response's canonical wire encoding: one number that
   covers columns, rows, truncation, tallies, and modeled times. All
   parties must digest identically — checked at the fence. *)
let fnv_prime = 0x100000001b3L

let digest_of_response (resp : Wire.response) : int =
  let b = Wire.encode_response resp in
  let h = ref 0xcbf29ce484222325L in
  Bytes.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    b;
  Int64.to_int !h

type backend = { ctx : Ctx.t; db : Tpch_gen.mpc }

let build_backend (cfg : config) : backend =
  let ctx = Ctx.create ~seed:cfg.seed cfg.proto in
  let plain = Tpch_gen.generate ~seed:cfg.seed cfg.sf in
  let db = Tpch_gen.share ctx plain in
  { ctx; db }

(* Execute one query with the exchange channel attached to the online
   meter — the same [Service.execute_sql] path as the in-process
   service, so results and tallies agree byte-for-byte — then fence. *)
let run_query (cfg : config) (b : backend) (ex : Exchange.t) ~qid ~sql
    ~max_rows : Wire.response * Pwire.fence array =
  Exchange.reset_query ex;
  let proto_label = Ctx.kind_label cfg.proto in
  let qseed = Service.query_seed_for ~seed:cfg.seed ~proto_label ~sql in
  let resp =
    Channel.with_channel b.ctx (Exchange.channel ex) (fun () ->
        Service.execute_sql ~ctx:b.ctx ~db:b.db ~qseed ~max_rows sql)
  in
  let tally =
    match resp with Wire.Result r -> r.Wire.r_tally | _ -> Comm.zero_tally
  in
  let digest = digest_of_response resp in
  let fences = Exchange.fence ex ~qid ~tally ~digest in
  (resp, fences)

(* Aggregate the fences into the coordinator's [Net_stats] answer, and
   enforce the deployment's central invariant: the per-party measured
   bits/messages sum to the metered totals exactly, and every party
   performed the same number of physical exchanges. *)
let net_stats_of_fences (cfg : config) ~(tally : Comm.tally) ~wall_s ~queries
    (fences : Pwire.fence array) : Wire.net_stats =
  let parties = Array.length fences in
  let f0 = fences.(0) in
  Array.iter
    (fun (f : Pwire.fence) ->
      if f.Pwire.f_exchanges <> f0.Pwire.f_exchanges
         || f.Pwire.f_refunds <> f0.Pwire.f_refunds then
        fail
          "party %d: exchange counts diverge: party %d did %d (-%d), party \
           %d did %d (-%d)"
          cfg.party f0.Pwire.f_party f0.Pwire.f_exchanges f0.Pwire.f_refunds
          f.Pwire.f_party f.Pwire.f_exchanges f.Pwire.f_refunds)
    fences;
  let sum f = Array.fold_left (fun acc x -> acc + f x) 0 fences in
  let n_bits = sum (fun f -> f.Pwire.f_sent_bits) in
  let n_messages = sum (fun f -> f.Pwire.f_sent_msgs) in
  if n_bits <> tally.Comm.t_bits || n_messages <> tally.Comm.t_messages then
    fail
      "party %d: measured wire traffic (bits=%d msgs=%d) differs from the \
       metered tally (bits=%d msgs=%d)"
      cfg.party n_bits n_messages tally.Comm.t_bits tally.Comm.t_messages;
  {
    Wire.n_parties = parties;
    n_queries = queries;
    n_exchanges = f0.Pwire.f_exchanges;
    n_refunds = f0.Pwire.f_refunds;
    n_bits;
    n_messages;
    n_payload_bytes = sum (fun f -> f.Pwire.f_payload_bytes);
    n_frames = sum (fun f -> f.Pwire.f_frames);
    n_wall_s = wall_s;
  }

(* ------------------------------------------------------------------ *)
(* Coordinator: client front end (party 0)                             *)
(* ------------------------------------------------------------------ *)

type coord = {
  mutable c_qid : int;
  mutable c_queries : int;
  mutable c_last : Wire.net_stats option;
}

let handle_client_request (cfg : config) (b : backend) (ex : Exchange.t)
    (co : coord) (req : Wire.request) : Wire.response =
  let bad msg = Wire.Error_r { code = Wire.Bad_request; msg } in
  let proto_label = Ctx.kind_label cfg.proto in
  let run sql =
    co.c_qid <- co.c_qid + 1;
    let qid = co.c_qid in
    let t0 = Unix.gettimeofday () in
    Exchange.send_query ex ~qid ~sql ~max_rows:cfg.max_rows;
    let resp, fences = run_query cfg b ex ~qid ~sql ~max_rows:cfg.max_rows in
    let wall_s = Unix.gettimeofday () -. t0 in
    co.c_queries <- co.c_queries + 1;
    let tally =
      match resp with Wire.Result r -> r.Wire.r_tally | _ -> Comm.zero_tally
    in
    co.c_last <-
      Some
        (net_stats_of_fences cfg ~tally ~wall_s ~queries:co.c_queries fences);
    logf cfg "query %d done in %.3f s" qid wall_s;
    resp
  in
  match req with
  | Wire.Hello { h_version; h_proto; h_client = _ } -> (
      if h_version <> Wire.protocol_version then
        bad
          (Printf.sprintf
             "protocol version mismatch: client speaks v%d, cluster speaks \
              v%d — upgrade the older side"
             h_version Wire.protocol_version)
      else
        match Service.proto_of_label h_proto with
        | Ok k when k = cfg.proto ->
            Wire.Hello_ok { session = 1; proto = proto_label }
        | Ok k ->
            bad
              (Printf.sprintf
                 "this cluster runs %s with %d parties; reconnect with \
                  --proto %s (a cluster cannot switch protocols per session \
                  — party count differs)"
                 proto_label (Array.length cfg.peers) proto_label
              ^ Printf.sprintf " (you asked for %s)" (Ctx.kind_label k))
        | Error msg -> bad msg)
  | Wire.Ping -> Wire.Pong
  | Wire.Query sql -> run sql
  | Wire.Query_p { q_sql; q_prio = _ } ->
      (* the mesh is one lane: priorities would have nothing to reorder *)
      run q_sql
  | Wire.Explain sql -> (
      (* the coordinator executes its own share of the query on this
         domain, so its decision log is the cluster's (every party makes
         the identical shape-deterministic choice) *)
      Orq_core.Joincost.reset_log ();
      match run sql with
      | Wire.Result r ->
          Wire.Explain_r
            (Service.explain_of_log ~fallbacks:r.Wire.r_fallbacks
               (Orq_core.Joincost.log ()))
      | other -> other)
  | Wire.Net_stats_req -> (
      match co.c_last with
      | Some s -> Wire.Net_stats_r s
      | None -> bad "no query has executed on this cluster yet")
  | Wire.Stats_req | Wire.Set_workers _ ->
      bad
        "a party cluster has no worker pool: queries execute on the mesh, \
         one at a time (use Net_stats_req for wire measurements)"

let serve_clients (cfg : config) (b : backend) (ex : Exchange.t) : unit =
  let listen_fd =
    match cfg.client_fd with
    | Some fd -> fd
    | None -> (
        match cfg.client with
        | Some a -> Transport.listen a
        | None ->
            fail
              "party 0 needs a client front-end address (--client) or a \
               pre-bound socket")
  in
  let co = { c_qid = 0; c_queries = 0; c_last = None } in
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  logf cfg "coordinator serving clients";
  (* Sessions are sequential by design: the mesh is a single execution
     lane, so a second concurrent client would only wait anyway. *)
  let rec accept_loop () =
    match Transport.accept listen_fd with
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
    | fd ->
        (try
           let rec session () =
             match Wire.recv_request fd with
             | None -> ()
             | Some req ->
                 Wire.send_response fd (handle_client_request cfg b ex co req);
                 session ()
           in
           session ()
         with
        | Wire.Wire_error msg ->
            (try
               Wire.send_response fd
                 (Wire.Error_r
                    { code = Wire.Bad_request; msg = "malformed frame: " ^ msg })
             with _ -> ())
        | Unix.Unix_error _ | Sys_error _ -> ());
        Transport.close_noerr fd;
        accept_loop ()
  in
  accept_loop ()

(* ------------------------------------------------------------------ *)
(* Party main loops                                                    *)
(* ------------------------------------------------------------------ *)

let follow_coordinator (cfg : config) (b : backend) (ex : Exchange.t) : unit =
  let rec loop () =
    match Exchange.recv_query ex with
    | None -> logf cfg "coordinator left; shutting down"
    | Some (qid, sql, max_rows) ->
        let _resp, _fences = run_query cfg b ex ~qid ~sql ~max_rows in
        loop ()
  in
  loop ()

(** Run one party process: build the backend, establish the mesh, then
    serve — party 0 accepts clients and coordinates; the others follow
    the coordinator's query stream until [Bye_p] or disconnect. Blocks
    for the lifetime of the cluster. *)
let run (cfg : config) : unit =
  let parties = Array.length cfg.peers in
  if parties <> Ctx.parties_of cfg.proto then
    fail "%s runs %d parties, but %d peer addresses were given"
      (Ctx.kind_label cfg.proto)
      (Ctx.parties_of cfg.proto)
      parties;
  if cfg.party < 0 || cfg.party >= parties then
    fail "party id %d out of range 0..%d" cfg.party (parties - 1);
  logf cfg "building %s backend (sf=%g, seed=%d)"
    (Ctx.kind_label cfg.proto)
    cfg.sf cfg.seed;
  let b = build_backend cfg in
  logf cfg "establishing mesh at %s"
    (Transport.format_addr cfg.peers.(cfg.party));
  let conns = establish_mesh cfg ~ell:b.ctx.Ctx.ell in
  let ex =
    Exchange.create ~party:cfg.party ~parties ~verbose:cfg.verbose conns
  in
  logf cfg "mesh established (%d peers)" (List.length conns);
  Fun.protect
    ~finally:(fun () ->
      Exchange.send_bye ex;
      Exchange.close ex)
    (fun () ->
      if cfg.party = 0 then serve_clients cfg b ex
      else follow_coordinator cfg b ex)

(* ------------------------------------------------------------------ *)
(* Local cluster launcher (coordinator mode, bench, CI)                *)
(* ------------------------------------------------------------------ *)

type local = {
  l_client : Transport.addr;  (** dial this with {!Orq_service.Client} *)
  l_pids : int array;  (** one child process per party, index = id *)
}

(* Bind every listener in the parent and fork the parties with the fds
   inherited: no bind race, no port guessing — children on ephemeral
   TCP ports work first try. Children run [run] and never return. *)
let launch_local ?(tcp = true) ?(seed = 42) ?(sf = 0.001) ?(max_rows = 10_000)
    ?(verbose = false) (proto : Ctx.kind) : local =
  let parties = Ctx.parties_of proto in
  let mk_addr i =
    if tcp then Transport.Tcp ("127.0.0.1", 0)
    else
      Transport.Unix_sock
        (Filename.concat
           (Filename.get_temp_dir_name ())
           (Printf.sprintf "orq-party-%d-%d.sock" (Unix.getpid ()) i))
  in
  let mesh_fds = Array.init parties (fun i -> Transport.listen (mk_addr i)) in
  let peers = Array.map Transport.listen_addr mesh_fds in
  let client_fd = Transport.listen (mk_addr parties) in
  let client_addr = Transport.listen_addr client_fd in
  let pids =
    Array.init parties (fun p ->
        match Unix.fork () with
        | 0 ->
            (* child: keep only this party's listeners *)
            Array.iteri
              (fun i fd -> if i <> p then Transport.close_noerr fd)
              mesh_fds;
            if p <> 0 then Transport.close_noerr client_fd;
            let cfg =
              {
                party = p;
                proto;
                seed;
                sf;
                peers;
                listen = None;
                listen_fd = Some mesh_fds.(p);
                client = (if p = 0 then Some client_addr else None);
                client_fd = (if p = 0 then Some client_fd else None);
                max_rows;
                verbose;
              }
            in
            let code =
              try
                run cfg;
                0
              with e ->
                Printf.eprintf "[party %d] fatal: %s\n%!" p
                  (Printexc.to_string e);
                1
            in
            (* children must not run the parent's at_exit handlers *)
            Unix._exit code
        | pid -> pid)
  in
  Array.iter Transport.close_noerr mesh_fds;
  Transport.close_noerr client_fd;
  { l_client = client_addr; l_pids = pids }

(** Terminate a local cluster: SIGTERM every party, reap them all.
    Forceful by design — the parties hold no state worth draining. *)
let shutdown_local (l : local) : unit =
  Array.iter
    (fun pid -> try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
    l.l_pids;
  Array.iter
    (fun pid ->
      try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
    l.l_pids

(** True while every party process is still alive (non-blocking). *)
let alive (l : local) : bool =
  Array.for_all
    (fun pid ->
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ -> true
      | _ -> false
      | exception Unix.Unix_error _ -> false)
    l.l_pids
