(** Mesh wire protocol between party processes (DESIGN.md, "Real
    multi-party deployment").

    Rides on {!Orq_net.Wire}'s length-prefixed framing (same [max_frame]
    bound, same {!Orq_net.Wire.Codec} primitives). Every frame body
    starts with the 4-byte protocol {!magic}, so a stray query-service
    client — or plain garbage — is rejected on its first frame. *)

exception Party_error of string

val magic : string
(** ["ORQP"] — leading bytes of every mesh frame body. *)

val version : int
(** Mesh protocol version, verified during the handshake. *)

type hello = {
  p_version : int;
  p_party : int;  (** sender's party id, 0-based *)
  p_parties : int;
  p_proto : string;  (** protocol kind label ("sh-dm"|"sh-hm"|"mal-hm") *)
  p_seed : int;  (** cluster data/session seed *)
  p_sf : float;  (** TPC-H scale factor of the shared catalog *)
  p_ell : int;  (** element bit width *)
}
(** Handshake: both sides must agree on every field except [p_party]
    before any round crosses the mesh. *)

type round = {
  r_seq : int;  (** exchange sequence number within the query *)
  r_events : int;  (** metering events batched into this exchange *)
  r_bits : int;  (** metered bits of the round, summed over parties *)
  r_msgs : int;  (** metered messages of the round, all parties *)
  r_payload : string;  (** this party's byte share of the round *)
}
(** One physical exchange: all payloads of one metered round batched
    into a single frame. The metered fields are identical on every party
    of a correct (deterministic) execution — the receiver checks them
    against its own. *)

type fence = {
  f_qid : int;
  f_party : int;
  f_rounds : int;  (** metered online tally of the query … *)
  f_bits : int;
  f_msgs : int;
  f_digest : int;  (** FNV digest of the encoded query response *)
  f_exchanges : int;  (** … and what was measured on the wire: *)
  f_refunds : int;  (** fusion refunds signalled during the query *)
  f_sent_bits : int;  (** this party's share of the metered bits *)
  f_sent_msgs : int;
  f_payload_bytes : int;  (** payload bytes this party put on the wire *)
  f_frames : int;  (** mesh frames this party sent for the query *)
}
(** End-of-query barrier, broadcast to every peer: metered tally plus
    result digest (divergence detection) plus this party's measured
    on-the-wire counters (party 0 aggregates them for [Net_stats]). *)

type msg =
  | Hello_p of hello
  | Reject_p of string  (** handshake refusal, with the reason *)
  | Query_c of { q_qid : int; q_sql : string; q_max_rows : int }
      (** coordinator → peers: execute this query next *)
  | Round_p of round
  | Fence_p of fence
  | Bye_p  (** orderly cluster shutdown *)

val encode : msg -> bytes
val decode : bytes -> msg
(** @raise Party_error on bad magic or unknown tag;
    @raise Orq_net.Wire.Wire_error on a truncated body. *)

val send : Unix.file_descr -> msg -> unit

val recv : Unix.file_descr -> msg option
(** [None] on clean EOF at a frame boundary. *)

val msg_label : msg -> string
