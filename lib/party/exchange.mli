(** Per-peer exchange layer: turns the {!Orq_net.Comm.channel} metering
    hooks into real framed messages on the party mesh (DESIGN.md, "Real
    multi-party deployment").

    Every party runs the identical deterministic execution; this layer
    adds the wire. At each metered round boundary it batches the round's
    payloads into one framed message, sends it to the ring successor,
    and blocks on the matching message from the predecessor — a physical
    lockstep barrier whose exchange count equals the metered rounds
    (plus fusion refunds, which the sequential execution still exchanges
    physically) by construction. Messages carry the metered totals of
    their round, so cross-party divergence is caught at the first
    differing round. A receiver thread per peer drains the socket into a
    queue, keeping the mesh deadlock-free. *)

exception Exchange_error of string

type t

val create :
  party:int ->
  parties:int ->
  ?verbose:bool ->
  (int * Unix.file_descr) list ->
  t
(** Wrap the fully-connected mesh ([parties - 1] handshaken peer
    connections, keyed by party id) and start one receiver thread per
    peer. *)

val channel : t -> Orq_net.Comm.channel
(** The metering hooks to install on the online meter (via
    [Channel.attach]): rounds flush-and-open exchanges, traffic batches
    into the open exchange, barriers exchange empty frames, refunds are
    counted for the fence accounting. *)

val share_of : party:int -> parties:int -> int -> int
(** Party [p]'s share of a cluster-total quantity — [total/n] plus one
    unit of the remainder when [p < total mod n]; shares sum to [total]
    exactly. *)

val reset_query : t -> unit
(** Zero the per-query sequence number and measured counters. Call
    before each query on every party. *)

val fence : t -> qid:int -> tally:Orq_net.Comm.tally -> digest:int ->
  Pwire.fence array
(** End-of-query barrier: flush the open round, broadcast our fence
    (metered tally, result digest, measured on-the-wire counters), and
    collect every peer's, verifying tallies and digests agree. Returns
    the fences indexed by party, our own included.
    @raise Exchange_error on any cross-party divergence, or if physical
    exchanges minus refunds differ from the metered rounds. *)

val send_query : t -> qid:int -> sql:string -> max_rows:int -> unit
(** Coordinator (party 0): announce the next query to every peer. *)

val recv_query : t -> (int * string * int) option
(** Non-coordinator parties: block for the coordinator's next control
    message — [Some (qid, sql, max_rows)] to execute, [None] on an
    orderly [Bye_p] or coordinator disconnect. *)

val send_bye : t -> unit
(** Best-effort orderly shutdown announcement to all peers. *)

val close : t -> unit
(** Close every peer connection and join the receiver threads. *)
