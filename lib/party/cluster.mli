(** Party process runtime (DESIGN.md, "Real multi-party deployment"): N
    real OS processes, one per computing party, exchanging actual framed
    messages over TCP or Unix-domain sockets.

    Startup establishes a full mesh — party [i] dials every [j < i]
    (bounded retry: processes may start in any order) and accepts from
    every [j > i], with a magic/version/parameter handshake — then each
    query runs with an {!Exchange} channel on the online meter. Party 0
    doubles as the coordinator: it serves the ordinary {!Orq_net.Wire}
    query protocol to clients, broadcasts each query to the peers, and
    aggregates the measured wire counters into [Net_stats]. Results and
    tallies are byte-identical to the in-process service by
    construction. *)

exception Cluster_error of string

type config = {
  party : int;  (** this process's party id, 0-based *)
  proto : Orq_proto.Ctx.kind;
  seed : int;  (** cluster data/session seed — must agree everywhere *)
  sf : float;  (** TPC-H scale factor — must agree everywhere *)
  peers : Orq_net.Transport.addr array;  (** mesh addresses, by party *)
  listen : Orq_net.Transport.addr option;
      (** mesh bind override (default [peers.(party)]) *)
  listen_fd : Unix.file_descr option;
      (** pre-bound mesh listener — lets a launcher bind every port
          before forking, eliminating startup races *)
  client : Orq_net.Transport.addr option;  (** party 0's front end *)
  client_fd : Unix.file_descr option;
  max_rows : int;
  verbose : bool;
}

val default_config :
  party:int ->
  proto:Orq_proto.Ctx.kind ->
  peers:Orq_net.Transport.addr array ->
  unit ->
  config
(** Seed 42, sf 0.001, max 10000 rows, no client front end, quiet. *)

val run : config -> unit
(** Run one party process: build the backend, establish the mesh, then
    serve — party 0 accepts clients and coordinates; the others follow
    the coordinator's query stream until [Bye_p] or disconnect. Blocks
    for the lifetime of the cluster.
    @raise Cluster_error on configuration or mesh failures. *)

(** {2 Handshake (exposed for tests)} *)

val my_hello : config -> ell:int -> Pwire.hello

val verify_hello :
  mine:Pwire.hello -> theirs:Pwire.hello -> (unit, string) result
(** Everything except the party id must agree — version, party count,
    protocol, seed, scale factor, element width. *)

val accept_handshake : mine:Pwire.hello -> Unix.file_descr ->
  (int, string) result
(** Acceptor side: read the dialer's hello, verify, answer with our own
    hello (or a reasoned [Reject_p]); returns the peer's party id. Reads
    under a handshake timeout, so a silent connection cannot wedge the
    acceptor. *)

val dial_handshake : mine:Pwire.hello -> expect:int -> Unix.file_descr ->
  (unit, string) result
(** Dialer side: send our hello, verify the acceptor's reply. *)

(** {2 Query execution internals (exposed for tests)} *)

val digest_of_response : Orq_net.Wire.response -> int
(** FNV-1a over the response's canonical wire encoding — the per-query
    cross-party agreement check exchanged in fences. *)

(** {2 Local cluster launcher (coordinator mode, bench, CI)} *)

type local = {
  l_client : Orq_net.Transport.addr;
      (** dial this with {!Orq_service.Client} *)
  l_pids : int array;  (** one child process per party, index = id *)
}

val launch_local :
  ?tcp:bool ->
  ?seed:int ->
  ?sf:float ->
  ?max_rows:int ->
  ?verbose:bool ->
  Orq_proto.Ctx.kind ->
  local
(** Fork a complete local cluster (one child per party). Every listener
    is bound in the parent — ephemeral TCP ports on loopback by default,
    Unix-domain sockets with [~tcp:false] — and inherited by the forked
    parties, so there is no bind race and no port guessing. *)

val shutdown_local : local -> unit
(** SIGTERM every party and reap them all. *)

val alive : local -> bool
(** True while every party process is still alive (non-blocking). *)
