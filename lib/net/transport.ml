(** Socket transport shared by the query service and the party runtime:
    address parsing (Unix-domain paths and TCP host:port), listener setup,
    and a dialer with bounded exponential-backoff retry so cluster
    processes can be started in any order. *)

exception Transport_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Transport_error s)) fmt

type addr =
  | Unix_sock of string  (** Unix-domain socket path *)
  | Tcp of string * int  (** host (name or dotted quad) and port *)

(* Accepted spellings:
     unix:/path/to.sock      explicit Unix-domain
     /path/to.sock           bare absolute path = Unix-domain
     tcp:host:port           explicit TCP
     host:port               TCP when the suffix parses as a port
   A bare relative path without a colon is a Unix-domain path too (the
   historical service default). *)
let parse_addr (s : string) : (addr, string) result =
  let s = String.trim s in
  if s = "" then Error "empty address"
  else if String.length s >= 5 && String.sub s 0 5 = "unix:" then
    Ok (Unix_sock (String.sub s 5 (String.length s - 5)))
  else if String.length s >= 4 && String.sub s 0 4 = "tcp:" then
    let rest = String.sub s 4 (String.length s - 4) in
    match String.rindex_opt rest ':' with
    | None -> Error (Printf.sprintf "tcp address %S needs host:port" s)
    | Some i -> (
        let host = String.sub rest 0 i in
        let port = String.sub rest (i + 1) (String.length rest - i - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 ->
            Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
        | _ -> Error (Printf.sprintf "bad port in tcp address %S" s))
  else if String.length s > 0 && s.[0] = '/' then Ok (Unix_sock s)
  else
    match String.rindex_opt s ':' with
    | Some i when i > 0 -> (
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 -> Ok (Tcp (host, p))
        | _ -> Ok (Unix_sock s))
    | _ -> Ok (Unix_sock s)

let parse_addr_exn s =
  match parse_addr s with Ok a -> a | Error m -> fail "%s" m

let format_addr = function
  | Unix_sock p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | a -> a
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } -> fail "host %s resolves to nothing" host
      | h -> h.Unix.h_addr_list.(0)
      | exception Not_found -> fail "cannot resolve host %s" host)

let sockaddr_of = function
  | Unix_sock p -> Unix.ADDR_UNIX p
  | Tcp (h, p) -> Unix.ADDR_INET (resolve_host h, p)

(* Disable Nagle on TCP: MPC rounds are latency-critical small frames, and
   the exchange layer already batches a whole metered round per frame. *)
let tune fd = function
  | Tcp _ -> ( try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ())
  | Unix_sock _ -> ()

let domain_of = function
  | Unix_sock _ -> Unix.PF_UNIX
  | Tcp _ -> Unix.PF_INET

(** Bind and listen. A stale Unix-socket file is replaced; TCP listeners
    set [SO_REUSEADDR]. Port 0 picks an ephemeral port — read it back
    with {!listen_addr}. *)
let listen ?(backlog = 64) (a : addr) : Unix.file_descr =
  let fd = Unix.socket (domain_of a) Unix.SOCK_STREAM 0 in
  (try
     (match a with
     | Unix_sock p -> (
         try Unix.unlink p with Unix.Unix_error _ -> ())
     | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
     Unix.bind fd (sockaddr_of a);
     Unix.listen fd backlog
   with e ->
     close_noerr fd;
     raise e);
  fd

(** The address a listener actually bound (resolves port 0). *)
let listen_addr (fd : Unix.file_descr) : addr =
  match Unix.getsockname fd with
  | Unix.ADDR_UNIX p -> Unix_sock p
  | Unix.ADDR_INET (h, p) -> Tcp (Unix.string_of_inet_addr h, p)

(** Accept one connection (the caller loops); tunes TCP_NODELAY. *)
let accept (fd : Unix.file_descr) : Unix.file_descr =
  let c, peer = Unix.accept fd in
  (match peer with
  | Unix.ADDR_INET _ -> tune c (Tcp ("", 0))
  | Unix.ADDR_UNIX _ -> ());
  c

(** One connection attempt; raises on failure. *)
let connect (a : addr) : Unix.file_descr =
  let fd = Unix.socket (domain_of a) Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (sockaddr_of a);
     tune fd a
   with e ->
     close_noerr fd;
     raise e);
  fd

(* Errors that mean "the listener is not up yet" — worth retrying while
   the cluster starts in arbitrary order. Anything else propagates. *)
let retryable = function
  | Unix.Unix_error
      ( ( Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNRESET | Unix.ETIMEDOUT
        | Unix.EHOSTUNREACH | Unix.ENETUNREACH | Unix.EAGAIN ),
        _,
        _ ) ->
      true
  | Transport_error _ -> true (* DNS not up yet in fresh containers *)
  | _ -> false

(* Deterministically-seeded per-process jitter source: spreads concurrent
   dialers without perturbing any protocol randomness (which all flows
   through Orq_util.Prg). *)
let jitter_state = lazy (Random.State.make [| Unix.getpid (); 0x7A17 |])

(** [connect_retry ~total_ms a] dials [a], retrying "listener not up yet"
    failures with exponential backoff (doubling from [base_ms], capped at
    [max_ms]) plus ±25% jitter, until a bounded [total_ms] budget is
    spent. Cluster startup order therefore doesn't matter. *)
let connect_retry ?(total_ms = 10_000) ?(base_ms = 25) ?(max_ms = 1_000)
    (a : addr) : Unix.file_descr =
  let deadline = Unix.gettimeofday () +. (float_of_int total_ms /. 1e3) in
  let rec go delay_ms attempt =
    match connect a with
    | fd -> fd
    | exception e when retryable e ->
        let now = Unix.gettimeofday () in
        if now >= deadline then
          fail "connect %s: gave up after %d ms and %d attempts (%s)"
            (format_addr a) total_ms attempt (Printexc.to_string e)
        else begin
          let jitter =
            1.0 +. (0.5 *. (Random.State.float (Lazy.force jitter_state) 1.0 -. 0.5))
          in
          let sleep_s =
            min
              (float_of_int delay_ms *. jitter /. 1e3)
              (max 0.001 (deadline -. now))
          in
          Unix.sleepf sleep_s;
          go (min max_ms (delay_ms * 2)) (attempt + 1)
        end
  in
  go base_ms 1
