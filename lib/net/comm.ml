(** Metered communication layer for the lockstep MPC simulation.

    Every primitive of every protocol reports the traffic it *would* place on
    the wire in a real deployment: total bits sent (summed over all parties),
    message count, and communication rounds. Rounds are the latency-critical
    quantity under MPC — ORQ's vectorization exists precisely to batch
    independent messages into one round — so primitives batch their
    reporting exactly as the real engine batches its sends.

    Counters are cheap plain ints; snapshots ({!tally}) support scoped
    measurement (per-query, per-operator) by subtraction. *)

type t = {
  parties : int;
  mutable rounds : int;  (** sequential message-exchange rounds *)
  mutable bits : int;  (** total bits sent, summed over all parties *)
  mutable messages : int;  (** number of (batched) point-to-point sends *)
}

type tally = { t_rounds : int; t_bits : int; t_messages : int }

let create ~parties = { parties; rounds = 0; bits = 0; messages = 0 }

let reset t =
  t.rounds <- 0;
  t.bits <- 0;
  t.messages <- 0

(** [round t ~bits ~messages] records one communication round in which the
    parties collectively send [bits] bits in [messages] point-to-point
    messages. *)
let round t ~bits ~messages =
  t.rounds <- t.rounds + 1;
  t.bits <- t.bits + bits;
  t.messages <- t.messages + messages

(** [traffic t ~bits ~messages] records traffic that piggybacks on an
    already-counted round (the vectorized-batching case). *)
let traffic t ~bits ~messages =
  t.bits <- t.bits + bits;
  t.messages <- t.messages + messages

(** [rounds_only t k] records [k] extra rounds with no new payload, e.g. a
    barrier or an empty acknowledgement. *)
let rounds_only t k = t.rounds <- t.rounds + k

(** [refund_rounds t k] retracts [k] already-counted rounds. Used by the
    round-fusion layer after running independent operation tracks
    sequentially: the tracks' traffic stands, but their rounds overlap in a
    real deployment, so the total is lowered to the longest track. *)
let refund_rounds t k = t.rounds <- t.rounds - k

let snapshot t = { t_rounds = t.rounds; t_bits = t.bits; t_messages = t.messages }

(** Tally of traffic since [before] was taken. *)
let since t (before : tally) =
  {
    t_rounds = t.rounds - before.t_rounds;
    t_bits = t.bits - before.t_bits;
    t_messages = t.messages - before.t_messages;
  }

let add_tally a b =
  {
    t_rounds = a.t_rounds + b.t_rounds;
    t_bits = a.t_bits + b.t_bits;
    t_messages = a.t_messages + b.t_messages;
  }

let zero_tally = { t_rounds = 0; t_bits = 0; t_messages = 0 }

let bytes_total (tl : tally) = float_of_int tl.t_bits /. 8.

(** Bytes sent per computing party — the normalization used by the paper's
    Table 7 ("we divide the total communication by the number of computing
    parties"). *)
let bytes_per_party t (tl : tally) = bytes_total tl /. float_of_int t.parties

let pp_tally ppf (tl : tally) =
  Fmt.pf ppf "rounds=%d bits=%d msgs=%d (%.1f KiB)" tl.t_rounds tl.t_bits
    tl.t_messages
    (float_of_int tl.t_bits /. 8192.)
