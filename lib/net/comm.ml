(** Metered communication layer for the lockstep MPC simulation.

    Every primitive of every protocol reports the traffic it *would* place on
    the wire in a real deployment: total bits sent (summed over all parties),
    message count, and communication rounds. Rounds are the latency-critical
    quantity under MPC — ORQ's vectorization exists precisely to batch
    independent messages into one round — so primitives batch their
    reporting exactly as the real engine batches its sends.

    Counters are cheap plain ints; snapshots ({!tally}) support scoped
    measurement (per-query, per-operator) by subtraction.

    {2 Structural transcripts}

    Aggregate tallies cannot distinguish two traces with compensating
    differences (a missing round here, an extra one there). When recording
    is enabled ({!start_recording}) every metering call additionally appends
    a structured {!event} — its kind, the operator-label stack at the time
    (pushed via {!push_label}, normally through [Ctx.with_label]), and its
    exact (rounds, bits, messages) contribution — into a ring buffer. Two
    executions are observably identical iff their transcripts are
    event-for-event equal, which is the property the obliviousness tests and
    the {!Orq_analysis.Certify} gate check. Recording is off by default and
    costs one [match] per metering call when off. *)

type ev_op =
  | Round  (** one communication round carrying payload *)
  | Traffic  (** payload piggybacking on the current round *)
  | Barrier  (** payload-free extra rounds (lockstep barrier) *)
  | Refund  (** rounds retracted by the fusion layer *)

type event = {
  ev_op : ev_op;
  ev_label : string;  (** operator-label stack, outermost first, "/"-joined *)
  ev_rounds : int;  (** signed round delta of this event *)
  ev_bits : int;
  ev_messages : int;
}

(* Fixed-capacity ring: [pos] counts every event ever recorded; the buffer
   keeps the last [cap]. Certification requires [dropped_events = 0], so
   callers size the capacity to their workload. *)
type recorder = {
  cap : int;  (** power of two *)
  buf : event array;
  mutable pos : int;
  mutable stack : string list;  (** innermost label first *)
  mutable joined : string;  (** cached "/"-join of the stack, outermost first *)
}

(* Pluggable transport channel. The lockstep simulation meters virtual
   traffic; when a channel is installed (the real multi-party deployment,
   see lib/party/), every metering call additionally drives the hooks so
   actual bytes cross actual sockets with exactly the metered shape:
   [ch_round] opens a new on-the-wire exchange carrying [bits]/[messages],
   [ch_traffic] batches more payload into the current exchange,
   [ch_barrier] performs payload-free lockstep exchanges, and [ch_refund]
   notes rounds retracted by the fusion layer (the sequential execution
   still exchanged them physically; the accounting records the overlap a
   concurrent deployment would achieve). Hooks run after the counters
   update, on the metering (execution) thread. *)
type channel = {
  ch_round : bits:int -> messages:int -> unit;
  ch_traffic : bits:int -> messages:int -> unit;
  ch_barrier : int -> unit;
  ch_refund : int -> unit;
}

type t = {
  parties : int;
  mutable rounds : int;  (** sequential message-exchange rounds *)
  mutable bits : int;  (** total bits sent, summed over all parties *)
  mutable messages : int;  (** number of (batched) point-to-point sends *)
  mutable recorder : recorder option;
  mutable channel : channel option;
}

type tally = { t_rounds : int; t_bits : int; t_messages : int }

let create ~parties =
  {
    parties;
    rounds = 0;
    bits = 0;
    messages = 0;
    recorder = None;
    channel = None;
  }

let set_channel t ch = t.channel <- ch
let channel t = t.channel

let reset t =
  t.rounds <- 0;
  t.bits <- 0;
  t.messages <- 0

(* ------------------------------------------------------------------ *)
(* Transcript recording                                                *)
(* ------------------------------------------------------------------ *)

let null_event =
  { ev_op = Round; ev_label = ""; ev_rounds = 0; ev_bits = 0; ev_messages = 0 }

let rec next_pow2 n k = if k >= n then k else next_pow2 n (2 * k)

(** Start recording events into a fresh ring buffer of [capacity] (rounded
    up to a power of two; default 2^18 events). Any previous transcript is
    discarded; the label stack starts empty. *)
let start_recording ?(capacity = 1 lsl 18) t =
  let cap = next_pow2 (max 2 capacity) 2 in
  t.recorder <-
    Some { cap; buf = Array.make cap null_event; pos = 0; stack = []; joined = "" }

(** Stop recording (the transcript remains readable until the next
    {!start_recording}). *)
let stop_recording t = t.recorder <- None

let recording t = t.recorder <> None

(** Events recorded since {!start_recording} (including any overwritten in
    the ring). *)
let recorded_events t = match t.recorder with None -> 0 | Some r -> r.pos

let dropped_of r = max 0 (r.pos - r.cap)

(** Events lost to ring overwrite; a transcript with drops is not
    certifiable — re-record with a larger capacity. *)
let dropped_events t =
  match t.recorder with None -> 0 | Some r -> dropped_of r

(** The recorded events, oldest first (only the last [capacity] survive). *)
let transcript t : event array =
  match t.recorder with
  | None -> [||]
  | Some r ->
      let n = min r.pos r.cap in
      let first = r.pos - n in
      Array.init n (fun i -> r.buf.((first + i) land (r.cap - 1)))

(** Push an operator label onto the recording stack (no-op when recording
    is off). Labels nest: events record the full stack outermost-first. *)
let push_label t lbl =
  match t.recorder with
  | None -> ()
  | Some r ->
      r.stack <- lbl :: r.stack;
      r.joined <- String.concat "/" (List.rev r.stack)

let pop_label t =
  match t.recorder with
  | None -> ()
  | Some r -> (
      match r.stack with
      | [] -> ()
      | _ :: tl ->
          r.stack <- tl;
          r.joined <- String.concat "/" (List.rev tl))

let current_label t = match t.recorder with None -> "" | Some r -> r.joined

let record t ev_op ~rounds ~bits ~messages =
  match t.recorder with
  | None -> ()
  | Some r ->
      r.buf.(r.pos land (r.cap - 1)) <-
        {
          ev_op;
          ev_label = r.joined;
          ev_rounds = rounds;
          ev_bits = bits;
          ev_messages = messages;
        };
      r.pos <- r.pos + 1

let op_label = function
  | Round -> "round"
  | Traffic -> "traffic"
  | Barrier -> "barrier"
  | Refund -> "refund"

let pp_event ppf (e : event) =
  Fmt.pf ppf "[%s] %s r=%+d bits=%d msgs=%d"
    (if e.ev_label = "" then "-" else e.ev_label)
    (op_label e.ev_op) e.ev_rounds e.ev_bits e.ev_messages

let event_equal (a : event) (b : event) = a = b

(** First position where two transcripts disagree:
    [Some (i, a_i, b_i)] with [None] standing for "ended early". *)
let transcript_diff (a : event array) (b : event array) :
    (int * event option * event option) option =
  let na = Array.length a and nb = Array.length b in
  let rec go i =
    if i >= na && i >= nb then None
    else if i >= na then Some (i, None, Some b.(i))
    else if i >= nb then Some (i, Some a.(i), None)
    else if event_equal a.(i) b.(i) then go (i + 1)
    else Some (i, Some a.(i), Some b.(i))
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Metering                                                            *)
(* ------------------------------------------------------------------ *)

(* ORQ_DEBUG_CHECKS invariants: metered quantities are counts — they can
   never go negative, and a fusion refund can never exceed the rounds
   actually recorded. Checked only under {!Orq_util.Debug.enabled} (the
   checks are branches on every metering call). *)
let check_args op ~bits ~messages =
  if Orq_util.Debug.enabled () && (bits < 0 || messages < 0) then
    invalid_arg
      (Printf.sprintf "Comm.%s: negative traffic (bits=%d messages=%d)" op bits
         messages)

(** [round t ~bits ~messages] records one communication round in which the
    parties collectively send [bits] bits in [messages] point-to-point
    messages. *)
let round t ~bits ~messages =
  check_args "round" ~bits ~messages;
  t.rounds <- t.rounds + 1;
  t.bits <- t.bits + bits;
  t.messages <- t.messages + messages;
  record t Round ~rounds:1 ~bits ~messages;
  match t.channel with
  | None -> ()
  | Some ch -> ch.ch_round ~bits ~messages

(** [traffic t ~bits ~messages] records traffic that piggybacks on an
    already-counted round (the vectorized-batching case). *)
let traffic t ~bits ~messages =
  check_args "traffic" ~bits ~messages;
  t.bits <- t.bits + bits;
  t.messages <- t.messages + messages;
  record t Traffic ~rounds:0 ~bits ~messages;
  match t.channel with
  | None -> ()
  | Some ch -> ch.ch_traffic ~bits ~messages

(** [rounds_only t k] records [k] extra rounds with no new payload, e.g. a
    barrier or an empty acknowledgement. *)
let rounds_only t k =
  if Orq_util.Debug.enabled () && k < 0 then
    invalid_arg (Printf.sprintf "Comm.rounds_only: negative count %d" k);
  t.rounds <- t.rounds + k;
  if k <> 0 then begin
    record t Barrier ~rounds:k ~bits:0 ~messages:0;
    match t.channel with None -> () | Some ch -> ch.ch_barrier k
  end

(** [refund_rounds t k] retracts [k] already-counted rounds. Used by the
    round-fusion layer after running independent operation tracks
    sequentially: the tracks' traffic stands, but their rounds overlap in a
    real deployment, so the total is lowered to the longest track. *)
let refund_rounds t k =
  if Orq_util.Debug.enabled () && (k < 0 || k > t.rounds) then
    invalid_arg
      (Printf.sprintf
         "Comm.refund_rounds: refund of %d exceeds the %d recorded rounds" k
         t.rounds);
  t.rounds <- t.rounds - k;
  if k <> 0 then begin
    record t Refund ~rounds:(-k) ~bits:0 ~messages:0;
    match t.channel with None -> () | Some ch -> ch.ch_refund k
  end

let snapshot t = { t_rounds = t.rounds; t_bits = t.bits; t_messages = t.messages }

(** Tally of traffic since [before] was taken. *)
let since t (before : tally) =
  {
    t_rounds = t.rounds - before.t_rounds;
    t_bits = t.bits - before.t_bits;
    t_messages = t.messages - before.t_messages;
  }

let add_tally a b =
  {
    t_rounds = a.t_rounds + b.t_rounds;
    t_bits = a.t_bits + b.t_bits;
    t_messages = a.t_messages + b.t_messages;
  }

let zero_tally = { t_rounds = 0; t_bits = 0; t_messages = 0 }

let bytes_total (tl : tally) = float_of_int tl.t_bits /. 8.

(** Bytes sent per computing party — the normalization used by the paper's
    Table 7 ("we divide the total communication by the number of computing
    parties"). *)
let bytes_per_party t (tl : tally) = bytes_total tl /. float_of_int t.parties

let pp_tally ppf (tl : tally) =
  Fmt.pf ppf "rounds=%d bits=%d msgs=%d (%.1f KiB)" tl.t_rounds tl.t_bits
    tl.t_messages
    (float_of_int tl.t_bits /. 8192.)
