(** Socket transport shared by the query service and the party runtime
    (DESIGN.md, "Real multi-party deployment"): address parsing for
    Unix-domain and TCP endpoints, listener setup, and a dialer with
    bounded exponential-backoff retry so cluster processes can start in
    any order. *)

exception Transport_error of string

type addr =
  | Unix_sock of string  (** Unix-domain socket path *)
  | Tcp of string * int  (** host (name or dotted quad) and port *)

val parse_addr : string -> (addr, string) result
(** Accepted spellings: ["unix:/path"], a bare path, ["tcp:host:port"],
    or ["host:port"] (TCP when the suffix parses as a port). *)

val parse_addr_exn : string -> addr
(** @raise Transport_error on a malformed address. *)

val format_addr : addr -> string
(** Canonical round-trippable rendering (["unix:…"] / ["tcp:host:port"]). *)

val listen : ?backlog:int -> addr -> Unix.file_descr
(** Bind and listen. Replaces a stale Unix-socket file; TCP listeners set
    [SO_REUSEADDR], and port 0 picks an ephemeral port (read it back with
    {!listen_addr}). *)

val listen_addr : Unix.file_descr -> addr
(** The address a listener actually bound (resolves port 0). *)

val accept : Unix.file_descr -> Unix.file_descr
(** Accept one connection; sets [TCP_NODELAY] on TCP peers (MPC rounds
    are latency-critical small frames). *)

val connect : addr -> Unix.file_descr
(** One connection attempt; raises on failure. Sets [TCP_NODELAY]. *)

val connect_retry :
  ?total_ms:int -> ?base_ms:int -> ?max_ms:int -> addr -> Unix.file_descr
(** Dial with bounded retry: "listener not up yet" failures
    ([ECONNREFUSED], [ENOENT], …) back off exponentially (doubling from
    [base_ms], capped at [max_ms]) with ±25% jitter until [total_ms]
    (default 10 s) is spent, then raise {!Transport_error} with the last
    error. Other failures propagate immediately. *)

val close_noerr : Unix.file_descr -> unit
