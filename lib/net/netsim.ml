(** Analytic network-time model.

    The paper evaluates ORQ in three environments (§5.1, Appendix E):

    - LAN: 0.3 ms RTT, 25 Gbps;
    - WAN: 20 ms RTT, 6 Gbps (16 parallel connections);
    - geo-distributed: 50–61 ms RTT, 4.23–8.47 Gbps across four AWS regions.

    Our lockstep simulation executes protocol logic in-process, so the wire
    time is reintroduced analytically from the exact metered traffic:

      network time = rounds x RTT + bits / bandwidth

    which is the standard first-order model for synchronous MPC; the paper's
    own analysis (§5.2, §B.3) reasons in precisely these two terms. Estimated
    end-to-end time is compute time (measured) + network time (modeled). *)

type profile = {
  label : string;
  rtt_s : float;  (** round-trip time in seconds *)
  bandwidth_bps : float;  (** per-link bandwidth in bits/second *)
}

let lan = { label = "LAN"; rtt_s = 0.3e-3; bandwidth_bps = 25e9 }
let wan = { label = "WAN"; rtt_s = 20e-3; bandwidth_bps = 6e9 }

(** Worst link of the four-region deployment in Appendix E. *)
let geo = { label = "GEO"; rtt_s = 61e-3; bandwidth_bps = 4.23e9 }

(** Zero-cost profile: pure compute time (useful to isolate the simulation's
    own wall-clock from the modeled network). *)
let local = { label = "LOCAL"; rtt_s = 0.; bandwidth_bps = infinity }

let network_time p (tl : Comm.tally) =
  (float_of_int tl.t_rounds *. p.rtt_s)
  +. (float_of_int tl.t_bits /. p.bandwidth_bps)

(** Asymmetric multi-link deployments (Appendix E): a synchronous MPC round
    completes when its slowest link does, so the effective profile of a
    link set is (max RTT, min bandwidth). The four-region AWS deployment of
    Figure 12 has RTTs of 50-61 ms and bandwidths of 4.23-8.47 Gbps. *)
type link = { l_rtt_s : float; l_bandwidth_bps : float }

let of_links label (links : link list) : profile =
  match links with
  | [] -> invalid_arg "Netsim.of_links: empty"
  | _ ->
      {
        label;
        rtt_s = List.fold_left (fun a l -> Float.max a l.l_rtt_s) 0. links;
        bandwidth_bps =
          List.fold_left
            (fun a l -> Float.min a l.l_bandwidth_bps)
            infinity links;
      }

(** The paper's four-region deployment (us-east-1/2, us-west-1/2), built
    from its per-link measurements; equals {!geo}. *)
let geo_four_regions =
  of_links "GEO-4R"
    [
      { l_rtt_s = 50e-3; l_bandwidth_bps = 8.47e9 };
      { l_rtt_s = 52e-3; l_bandwidth_bps = 7.9e9 };
      { l_rtt_s = 55e-3; l_bandwidth_bps = 6.1e9 };
      { l_rtt_s = 58e-3; l_bandwidth_bps = 5.2e9 };
      { l_rtt_s = 60e-3; l_bandwidth_bps = 4.8e9 };
      { l_rtt_s = 61e-3; l_bandwidth_bps = 4.23e9 };
    ]

(** [estimate p ~compute_s tally] combines measured compute with modeled
    network time. *)
let estimate p ~compute_s (tl : Comm.tally) = compute_s +. network_time p tl

let pp_profile ppf p =
  Fmt.pf ppf "%s(rtt=%.1fms bw=%.1fGbps)" p.label (p.rtt_s *. 1e3)
    (p.bandwidth_bps /. 1e9)
