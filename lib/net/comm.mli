(** Metered communication layer for the lockstep MPC simulation.

    Every primitive of every protocol reports the traffic it would place
    on the wire in a real deployment: total bits sent (summed over all
    parties), message count, and communication rounds — the
    latency-critical quantity ORQ's vectorization exists to minimize.
    Snapshots support scoped measurement by subtraction. *)

type t = {
  parties : int;
  mutable rounds : int;  (** sequential message-exchange rounds *)
  mutable bits : int;  (** total bits sent, summed over all parties *)
  mutable messages : int;  (** number of (batched) point-to-point sends *)
}

type tally = { t_rounds : int; t_bits : int; t_messages : int }

val create : parties:int -> t
val reset : t -> unit

val round : t -> bits:int -> messages:int -> unit
(** Record one communication round in which the parties collectively send
    [bits] bits in [messages] point-to-point messages. *)

val traffic : t -> bits:int -> messages:int -> unit
(** Record traffic piggybacking on an already-counted round (the
    vectorized-batching case). *)

val rounds_only : t -> int -> unit
(** Record [k] extra rounds with no new payload. *)

val refund_rounds : t -> int -> unit
(** Retract already-counted rounds (the round-fusion layer's adjustment
    after overlapping independent operation tracks). *)

val snapshot : t -> tally
val since : t -> tally -> tally
val add_tally : tally -> tally -> tally
val zero_tally : tally
val bytes_total : tally -> float

val bytes_per_party : t -> tally -> float
(** Bytes sent per computing party — the paper's Table 7 normalization. *)

val pp_tally : Format.formatter -> tally -> unit
