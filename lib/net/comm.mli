(** Metered communication layer for the lockstep MPC simulation.

    Every primitive of every protocol reports the traffic it would place
    on the wire in a real deployment: total bits sent (summed over all
    parties), message count, and communication rounds — the
    latency-critical quantity ORQ's vectorization exists to minimize.
    Snapshots support scoped measurement by subtraction.

    Besides the aggregate counters, the layer can record a {e structural
    transcript}: the exact sequence of metering events, each tagged with
    the operator-label stack active when it fired. Two executions are
    observably identical iff their transcripts are event-for-event equal —
    the property the obliviousness tests and the certifier check.
    Recording is off by default and costs one [match] per metering call. *)

type ev_op =
  | Round  (** one communication round carrying payload *)
  | Traffic  (** payload piggybacking on the current round *)
  | Barrier  (** payload-free extra rounds (lockstep barrier) *)
  | Refund  (** rounds retracted by the fusion layer *)

type event = {
  ev_op : ev_op;
  ev_label : string;  (** operator-label stack, outermost first, "/"-joined *)
  ev_rounds : int;  (** signed round delta of this event *)
  ev_bits : int;
  ev_messages : int;
}

type recorder

type channel = {
  ch_round : bits:int -> messages:int -> unit;
      (** a new communication round was metered: open a fresh on-the-wire
          exchange carrying this payload *)
  ch_traffic : bits:int -> messages:int -> unit;
      (** more payload batched into the current round's exchange *)
  ch_barrier : int -> unit;  (** [k] payload-free lockstep rounds *)
  ch_refund : int -> unit;
      (** rounds retracted by the fusion layer (physically exchanged by the
          sequential execution; a concurrent deployment overlaps them) *)
}
(** Pluggable transport: when installed, every metering call additionally
    drives these hooks so a real deployment (lib/party/) places actual
    bytes on actual sockets with exactly the metered shape. Hooks run
    after the counters update, on the metering thread. [None] (the
    default) is the pure in-process simulation. *)

type t = {
  parties : int;
  mutable rounds : int;  (** sequential message-exchange rounds *)
  mutable bits : int;  (** total bits sent, summed over all parties *)
  mutable messages : int;  (** number of (batched) point-to-point sends *)
  mutable recorder : recorder option;
  mutable channel : channel option;
}

type tally = { t_rounds : int; t_bits : int; t_messages : int }

val create : parties:int -> t
val reset : t -> unit

val set_channel : t -> channel option -> unit
(** Install ([Some]) or remove ([None]) the transport channel. *)

val channel : t -> channel option

(** {2 Structural transcripts} *)

val start_recording : ?capacity:int -> t -> unit
(** Start recording events into a fresh ring buffer of [capacity] events
    (rounded up to a power of two; default [2^18]). Any previous
    transcript is discarded; the label stack starts empty. *)

val stop_recording : t -> unit
(** Stop recording. The transcript remains readable until the next
    {!start_recording}. *)

val recording : t -> bool

val recorded_events : t -> int
(** Events recorded since {!start_recording}, including any that were
    overwritten in the ring. *)

val dropped_events : t -> int
(** Events lost to ring overwrite. A transcript with drops is not
    certifiable — re-record with a larger capacity. *)

val transcript : t -> event array
(** The recorded events, oldest first (only the last [capacity] survive). *)

val push_label : t -> string -> unit
(** Push an operator label onto the recording stack (no-op when recording
    is off). Labels nest; events record the full stack outermost-first.
    Normally called through [Ctx.with_label]. *)

val pop_label : t -> unit
val current_label : t -> string
val event_equal : event -> event -> bool
val pp_event : Format.formatter -> event -> unit

val transcript_diff :
  event array -> event array -> (int * event option * event option) option
(** First position where two transcripts disagree, with the differing
    events ([None] = that transcript ended early); [None] if equal. *)

(** {2 Metering}

    Under [ORQ_DEBUG_CHECKS] (see {!Orq_util.Debug}) each call validates
    the tally invariants: traffic deltas are never negative and a refund
    never exceeds the recorded rounds; violations raise
    [Invalid_argument]. *)

val round : t -> bits:int -> messages:int -> unit
(** Record one communication round in which the parties collectively send
    [bits] bits in [messages] point-to-point messages. *)

val traffic : t -> bits:int -> messages:int -> unit
(** Record traffic piggybacking on an already-counted round (the
    vectorized-batching case). *)

val rounds_only : t -> int -> unit
(** Record [k] extra rounds with no new payload. *)

val refund_rounds : t -> int -> unit
(** Retract already-counted rounds (the round-fusion layer's adjustment
    after overlapping independent operation tracks). *)

val snapshot : t -> tally
val since : t -> tally -> tally
val add_tally : tally -> tally -> tally
val zero_tally : tally
val bytes_total : tally -> float

val bytes_per_party : t -> tally -> float
(** Bytes sent per computing party — the paper's Table 7 normalization. *)

val pp_tally : Format.formatter -> tally -> unit
