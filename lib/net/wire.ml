(** Framed binary wire protocol for the query service. See the interface
    for the frame layout. All multi-byte integers are big-endian; values
    travel as 64-bit two's complement so full ring elements round-trip. *)

exception Wire_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Wire_error s)) fmt
let max_frame = 16 * 1024 * 1024

(* Compat guard for future wire changes: [Hello] carries the client's
   protocol version; the server rejects a mismatch with a clear error
   instead of mis-decoding later frames. Bump on any frame-layout change. *)
let protocol_version = 4

type err_code = Bad_request | Busy | Too_large | Internal

let err_label = function
  | Bad_request -> "bad-request"
  | Busy -> "busy"
  | Too_large -> "too-large"
  | Internal -> "internal"

type query_result = {
  r_cols : string list;
  r_rows : int list list;
  r_truncated : bool;
  r_fallbacks : int;
  r_cache_hit : bool;
  r_tally : Comm.tally;
  r_pre : Comm.tally;
  r_lan_s : float;
  r_wan_s : float;
  r_peak_bytes : int;
  r_spills : int;
}

type stats = {
  s_sessions : int;
  s_workers : int;
  s_jobs : int;
  s_rejected : int;
  s_cache_hits : int;
  s_cache_misses : int;
  s_coalesced : int;
  s_queue_depth : int;
  s_in_flight : int;
  s_wait_p50_ms : float;
  s_wait_p95_ms : float;
  s_exec_p50_ms : float;
  s_exec_p95_ms : float;
  s_mem_live_bytes : int;
  s_mem_peak_bytes : int;
  s_mem_spilled_bytes : int;
  s_rss_peak_kb : int;
}

type net_stats = {
  n_parties : int;  (** computing parties in the cluster *)
  n_queries : int;  (** queries the cluster has executed *)
  n_exchanges : int;  (** physical on-the-wire exchanges, last query *)
  n_refunds : int;  (** fusion round refunds, last query *)
  n_bits : int;  (** payload bits measured on the wire (all parties) *)
  n_messages : int;  (** point-to-point sends measured on the wire *)
  n_payload_bytes : int;  (** actual payload bytes carried (all parties) *)
  n_frames : int;  (** frames sent on the mesh (all parties) *)
  n_wall_s : float;  (** coordinator wall-clock of the last query *)
}

type join_cand = {
  jc_op : string;  (** "sort" | "linear" | "quad" *)
  jc_rounds : int;
  jc_bits : int;
  jc_messages : int;
  jc_est_s : float;  (** modeled network seconds under the active profile *)
}

type join_decision = {
  je_node : string;  (** "left ⋈ right" *)
  je_variant : string;  (** inner | semi | anti | outer *)
  je_n : int;  (** build-side physical rows *)
  je_m : int;  (** probe-side physical rows *)
  je_chosen : string;
  je_forced : bool;  (** chosen by a forced mode, not by price *)
  je_cands : join_cand list;
}

type explain = {
  e_mode : string;  (** active ORQ_JOIN mode: auto | sort | linear | quad *)
  e_profile : string;  (** pacing profile costs were compared under *)
  e_fallbacks : int;  (** out-of-class quadratic fallbacks *)
  e_joins : join_decision list;
}

type request =
  | Hello of { h_version : int; h_proto : string; h_client : string }
  | Query of string
  | Query_p of { q_sql : string; q_prio : int }
  | Ping
  | Stats_req
  | Set_workers of int
  | Net_stats_req
  | Explain of string
      (** execute the SQL cold (bypassing the plan cache) and return the
          per-join-node physical-operator decisions *)

type response =
  | Hello_ok of { session : int; proto : string }
  | Result of query_result
  | Error_r of { code : err_code; msg : string }
  | Pong
  | Stats_r of stats
  | Net_stats_r of net_stats
  | Explain_r of explain

(* ------------------------------------------------------------------ *)
(* Encoding primitives                                                 *)
(* ------------------------------------------------------------------ *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_u16 b v =
  if v < 0 || v > 0xffff then fail "u16 out of range: %d" v;
  put_u8 b (v lsr 8);
  put_u8 b v

let put_u32 b v =
  if v < 0 || v > 0xffff_ffff then fail "u32 out of range: %d" v;
  put_u8 b (v lsr 24);
  put_u8 b (v lsr 16);
  put_u8 b (v lsr 8);
  put_u8 b v

let put_i64 b (v : int) =
  let v64 = Int64.of_int v in
  for shift = 7 downto 0 do
    put_u8 b (Int64.to_int (Int64.shift_right_logical v64 (8 * shift)))
  done

(* Floats need all 64 bits of their representation — going through the
   63-bit OCaml int would corrupt the sign for magnitudes >= 2.0. *)
let put_f64 b (v : float) =
  let bits = Int64.bits_of_float v in
  for shift = 7 downto 0 do
    put_u8 b (Int64.to_int (Int64.shift_right_logical bits (8 * shift)))
  done

let put_bool b v = put_u8 b (if v then 1 else 0)

let put_string b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_list b put xs =
  put_u32 b (List.length xs);
  List.iter (put b) xs

let put_tally b (t : Comm.tally) =
  put_i64 b t.Comm.t_rounds;
  put_i64 b t.Comm.t_bits;
  put_i64 b t.Comm.t_messages

(* ------------------------------------------------------------------ *)
(* Decoding primitives (bounds-checked cursor over the frame body)     *)
(* ------------------------------------------------------------------ *)

type cursor = { buf : bytes; mutable pos : int }

let need c n =
  if c.pos + n > Bytes.length c.buf then
    fail "truncated payload (want %d bytes at %d of %d)" n c.pos
      (Bytes.length c.buf)

let get_u8 c =
  need c 1;
  let v = Char.code (Bytes.get c.buf c.pos) in
  c.pos <- c.pos + 1;
  v

let get_u16 c =
  let a = get_u8 c in
  let b = get_u8 c in
  (a lsl 8) lor b

let get_u32 c =
  let a = get_u8 c in
  let b = get_u8 c in
  let d = get_u8 c in
  let e = get_u8 c in
  (a lsl 24) lor (b lsl 16) lor (d lsl 8) lor e

let get_i64 c =
  let v = ref 0L in
  for _ = 1 to 8 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (get_u8 c))
  done;
  Int64.to_int !v

let get_f64 c =
  let v = ref 0L in
  for _ = 1 to 8 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (get_u8 c))
  done;
  Int64.float_of_bits !v

let get_bool c =
  match get_u8 c with
  | 0 -> false
  | 1 -> true
  | v -> fail "bad bool byte %d" v

let get_string c =
  let n = get_u32 c in
  need c n;
  let s = Bytes.sub_string c.buf c.pos n in
  c.pos <- c.pos + n;
  s

let get_list c get =
  let n = get_u32 c in
  if n > max_frame then fail "list length %d exceeds frame bound" n;
  List.init n (fun _ -> get c)

let get_tally c =
  let t_rounds = get_i64 c in
  let t_bits = get_i64 c in
  let t_messages = get_i64 c in
  { Comm.t_rounds; t_bits; t_messages }

let finish c =
  if c.pos <> Bytes.length c.buf then
    fail "trailing garbage: %d bytes after payload" (Bytes.length c.buf - c.pos)

(* ------------------------------------------------------------------ *)
(* Message bodies                                                      *)
(* ------------------------------------------------------------------ *)

let tag_hello = 0x01
and tag_query = 0x02
and tag_ping = 0x03
and tag_stats_req = 0x04
and tag_query_p = 0x05
and tag_set_workers = 0x06
and tag_net_stats_req = 0x07
and tag_explain = 0x08

let tag_hello_ok = 0x81
and tag_result = 0x82
and tag_error = 0x83
and tag_pong = 0x84
and tag_stats = 0x85
and tag_net_stats = 0x86
and tag_explain_r = 0x87

let encode_request (r : request) : bytes =
  let b = Buffer.create 64 in
  (match r with
  | Hello { h_version; h_proto; h_client } ->
      put_u8 b tag_hello;
      put_u16 b h_version;
      put_string b h_proto;
      put_string b h_client
  | Query sql ->
      put_u8 b tag_query;
      put_string b sql
  | Query_p { q_sql; q_prio } ->
      put_u8 b tag_query_p;
      put_u8 b q_prio;
      put_string b q_sql
  | Ping -> put_u8 b tag_ping
  | Stats_req -> put_u8 b tag_stats_req
  | Set_workers n ->
      put_u8 b tag_set_workers;
      put_u32 b n
  | Net_stats_req -> put_u8 b tag_net_stats_req
  | Explain sql ->
      put_u8 b tag_explain;
      put_string b sql);
  Buffer.to_bytes b

let code_of_int = function
  | 0 -> Bad_request
  | 1 -> Busy
  | 2 -> Too_large
  | 3 -> Internal
  | v -> fail "bad error code %d" v

let int_of_code = function
  | Bad_request -> 0
  | Busy -> 1
  | Too_large -> 2
  | Internal -> 3

let encode_response (r : response) : bytes =
  let b = Buffer.create 256 in
  (match r with
  | Hello_ok { session; proto } ->
      put_u8 b tag_hello_ok;
      put_i64 b session;
      put_string b proto
  | Result q ->
      put_u8 b tag_result;
      put_list b put_string q.r_cols;
      put_list b (fun b row -> put_list b put_i64 row) q.r_rows;
      put_bool b q.r_truncated;
      put_i64 b q.r_fallbacks;
      put_bool b q.r_cache_hit;
      put_tally b q.r_tally;
      put_tally b q.r_pre;
      put_f64 b q.r_lan_s;
      put_f64 b q.r_wan_s;
      put_i64 b q.r_peak_bytes;
      put_i64 b q.r_spills
  | Error_r { code; msg } ->
      put_u8 b tag_error;
      put_u8 b (int_of_code code);
      put_string b msg
  | Pong -> put_u8 b tag_pong
  | Net_stats_r s ->
      put_u8 b tag_net_stats;
      put_i64 b s.n_parties;
      put_i64 b s.n_queries;
      put_i64 b s.n_exchanges;
      put_i64 b s.n_refunds;
      put_i64 b s.n_bits;
      put_i64 b s.n_messages;
      put_i64 b s.n_payload_bytes;
      put_i64 b s.n_frames;
      put_f64 b s.n_wall_s
  | Stats_r s ->
      put_u8 b tag_stats;
      put_i64 b s.s_sessions;
      put_i64 b s.s_workers;
      put_i64 b s.s_jobs;
      put_i64 b s.s_rejected;
      put_i64 b s.s_cache_hits;
      put_i64 b s.s_cache_misses;
      put_i64 b s.s_coalesced;
      put_i64 b s.s_queue_depth;
      put_i64 b s.s_in_flight;
      put_f64 b s.s_wait_p50_ms;
      put_f64 b s.s_wait_p95_ms;
      put_f64 b s.s_exec_p50_ms;
      put_f64 b s.s_exec_p95_ms;
      put_i64 b s.s_mem_live_bytes;
      put_i64 b s.s_mem_peak_bytes;
      put_i64 b s.s_mem_spilled_bytes;
      put_i64 b s.s_rss_peak_kb
  | Explain_r e ->
      put_u8 b tag_explain_r;
      put_string b e.e_mode;
      put_string b e.e_profile;
      put_i64 b e.e_fallbacks;
      put_list b
        (fun b (j : join_decision) ->
          put_string b j.je_node;
          put_string b j.je_variant;
          put_i64 b j.je_n;
          put_i64 b j.je_m;
          put_string b j.je_chosen;
          put_bool b j.je_forced;
          put_list b
            (fun b (cand : join_cand) ->
              put_string b cand.jc_op;
              put_i64 b cand.jc_rounds;
              put_i64 b cand.jc_bits;
              put_i64 b cand.jc_messages;
              put_f64 b cand.jc_est_s)
            j.je_cands)
        e.e_joins);
  Buffer.to_bytes b

let decode_request (body : bytes) : request =
  let c = { buf = body; pos = 0 } in
  let r =
    match get_u8 c with
    | t when t = tag_hello ->
        let h_version = get_u16 c in
        let h_proto = get_string c in
        let h_client = get_string c in
        Hello { h_version; h_proto; h_client }
    | t when t = tag_query -> Query (get_string c)
    | t when t = tag_query_p ->
        let q_prio = get_u8 c in
        let q_sql = get_string c in
        Query_p { q_sql; q_prio }
    | t when t = tag_ping -> Ping
    | t when t = tag_stats_req -> Stats_req
    | t when t = tag_set_workers -> Set_workers (get_u32 c)
    | t when t = tag_net_stats_req -> Net_stats_req
    | t when t = tag_explain -> Explain (get_string c)
    | t -> fail "unknown request tag 0x%02x" t
  in
  finish c;
  r

let decode_response (body : bytes) : response =
  let c = { buf = body; pos = 0 } in
  let r =
    match get_u8 c with
    | t when t = tag_hello_ok ->
        let session = get_i64 c in
        let proto = get_string c in
        Hello_ok { session; proto }
    | t when t = tag_result ->
        let r_cols = get_list c get_string in
        let r_rows = get_list c (fun c -> get_list c get_i64) in
        let r_truncated = get_bool c in
        let r_fallbacks = get_i64 c in
        let r_cache_hit = get_bool c in
        let r_tally = get_tally c in
        let r_pre = get_tally c in
        let r_lan_s = get_f64 c in
        let r_wan_s = get_f64 c in
        let r_peak_bytes = get_i64 c in
        let r_spills = get_i64 c in
        Result
          {
            r_cols;
            r_rows;
            r_truncated;
            r_fallbacks;
            r_cache_hit;
            r_tally;
            r_pre;
            r_lan_s;
            r_wan_s;
            r_peak_bytes;
            r_spills;
          }
    | t when t = tag_error ->
        let code = code_of_int (get_u8 c) in
        let msg = get_string c in
        Error_r { code; msg }
    | t when t = tag_pong -> Pong
    | t when t = tag_net_stats ->
        let n_parties = get_i64 c in
        let n_queries = get_i64 c in
        let n_exchanges = get_i64 c in
        let n_refunds = get_i64 c in
        let n_bits = get_i64 c in
        let n_messages = get_i64 c in
        let n_payload_bytes = get_i64 c in
        let n_frames = get_i64 c in
        let n_wall_s = get_f64 c in
        Net_stats_r
          {
            n_parties;
            n_queries;
            n_exchanges;
            n_refunds;
            n_bits;
            n_messages;
            n_payload_bytes;
            n_frames;
            n_wall_s;
          }
    | t when t = tag_stats ->
        let s_sessions = get_i64 c in
        let s_workers = get_i64 c in
        let s_jobs = get_i64 c in
        let s_rejected = get_i64 c in
        let s_cache_hits = get_i64 c in
        let s_cache_misses = get_i64 c in
        let s_coalesced = get_i64 c in
        let s_queue_depth = get_i64 c in
        let s_in_flight = get_i64 c in
        let s_wait_p50_ms = get_f64 c in
        let s_wait_p95_ms = get_f64 c in
        let s_exec_p50_ms = get_f64 c in
        let s_exec_p95_ms = get_f64 c in
        let s_mem_live_bytes = get_i64 c in
        let s_mem_peak_bytes = get_i64 c in
        let s_mem_spilled_bytes = get_i64 c in
        let s_rss_peak_kb = get_i64 c in
        Stats_r
          {
            s_sessions;
            s_workers;
            s_jobs;
            s_rejected;
            s_cache_hits;
            s_cache_misses;
            s_coalesced;
            s_queue_depth;
            s_in_flight;
            s_wait_p50_ms;
            s_wait_p95_ms;
            s_exec_p50_ms;
            s_exec_p95_ms;
            s_mem_live_bytes;
            s_mem_peak_bytes;
            s_mem_spilled_bytes;
            s_rss_peak_kb;
          }
    | t when t = tag_explain_r ->
        let e_mode = get_string c in
        let e_profile = get_string c in
        let e_fallbacks = get_i64 c in
        let e_joins =
          get_list c (fun c ->
              let je_node = get_string c in
              let je_variant = get_string c in
              let je_n = get_i64 c in
              let je_m = get_i64 c in
              let je_chosen = get_string c in
              let je_forced = get_bool c in
              let je_cands =
                get_list c (fun c ->
                    let jc_op = get_string c in
                    let jc_rounds = get_i64 c in
                    let jc_bits = get_i64 c in
                    let jc_messages = get_i64 c in
                    let jc_est_s = get_f64 c in
                    { jc_op; jc_rounds; jc_bits; jc_messages; jc_est_s })
              in
              { je_node; je_variant; je_n; je_m; je_chosen; je_forced; je_cands })
        in
        Explain_r { e_mode; e_profile; e_fallbacks; e_joins }
    | t -> fail "unknown response tag 0x%02x" t
  in
  finish c;
  r

(* ------------------------------------------------------------------ *)
(* Framed file-descriptor I/O                                          *)
(* ------------------------------------------------------------------ *)

let rec really_write fd buf pos len =
  if len > 0 then begin
    let n =
      try Unix.write fd buf pos len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    really_write fd buf (pos + n) (len - n)
  end

(* Returns the bytes actually read (stopping early only on EOF). *)
let really_read fd buf pos len =
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < len do
    match Unix.read fd buf (pos + !got) (len - !got) with
    | 0 -> eof := true
    | n -> got := !got + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  !got

let write_frame fd (body : bytes) =
  let n = Bytes.length body in
  if n > max_frame then fail "frame of %d bytes exceeds max_frame" n;
  let hdr = Bytes.create 4 in
  Bytes.set_uint8 hdr 0 (n lsr 24 land 0xff);
  Bytes.set_uint8 hdr 1 (n lsr 16 land 0xff);
  Bytes.set_uint8 hdr 2 (n lsr 8 land 0xff);
  Bytes.set_uint8 hdr 3 (n land 0xff);
  really_write fd hdr 0 4;
  really_write fd body 0 n

let read_frame fd : bytes option =
  let hdr = Bytes.create 4 in
  match really_read fd hdr 0 4 with
  | 0 -> None (* clean EOF at a frame boundary *)
  | 4 ->
      let n =
        (Bytes.get_uint8 hdr 0 lsl 24)
        lor (Bytes.get_uint8 hdr 1 lsl 16)
        lor (Bytes.get_uint8 hdr 2 lsl 8)
        lor Bytes.get_uint8 hdr 3
      in
      if n > max_frame then fail "frame length %d exceeds max_frame" n;
      if n = 0 then fail "empty frame";
      let body = Bytes.create n in
      let got = really_read fd body 0 n in
      if got < n then fail "truncated frame: got %d of %d body bytes" got n;
      Some body
  | k -> fail "truncated frame header: %d of 4 bytes" k

let send_request fd r = write_frame fd (encode_request r)
let send_response fd r = write_frame fd (encode_response r)

let recv_request fd =
  match read_frame fd with None -> None | Some b -> Some (decode_request b)

let recv_response fd =
  match read_frame fd with None -> None | Some b -> Some (decode_response b)

(* ------------------------------------------------------------------ *)
(* Codec primitives, re-exported                                       *)
(* ------------------------------------------------------------------ *)

(* The party mesh protocol (lib/party/) shares this module's framing and
   needs the same bounds-checked primitives for its own message bodies.
   Re-exported under one name so the two protocols cannot drift apart on
   integer endianness or string length prefixes. *)
module Codec = struct
  type nonrec cursor = cursor

  let cursor body = { buf = body; pos = 0 }
  let put_u8 = put_u8
  let put_u16 = put_u16
  let put_u32 = put_u32
  let put_i64 = put_i64
  let put_f64 = put_f64
  let put_bool = put_bool
  let put_string = put_string
  let put_list = put_list
  let get_u8 = get_u8
  let get_u16 = get_u16
  let get_u32 = get_u32
  let get_i64 = get_i64
  let get_f64 = get_f64
  let get_bool = get_bool
  let get_string = get_string
  let get_list = get_list
  let finish = finish
end
