(** Framed binary wire protocol for the query service (DESIGN.md, "Query
    service").

    Unlike {!Comm}/{!Netsim}, which *model* MPC traffic analytically, this
    module moves real bytes over real file descriptors: every message is a
    length-prefixed frame

    {v [u32 body length | u8 tag | payload] v}

    written to and read from a (Unix-domain) socket. Integers are
    big-endian; values are 64-bit two's complement; strings and lists are
    length-prefixed. Frames larger than {!max_frame} are rejected before
    allocation so a malformed or hostile length prefix cannot OOM the
    server. *)

exception Wire_error of string
(** Malformed input: oversized frame, truncated stream mid-frame, unknown
    tag, or payload that does not decode. Clean EOF at a frame boundary is
    not an error — the [recv_*] functions return [None] there. *)

val max_frame : int
(** Maximum accepted frame body size in bytes (16 MiB). *)

val protocol_version : int
(** Wire-protocol version carried in {!request.Hello}. The server rejects
    a mismatching client with a clear error instead of mis-decoding later
    frames. Bump on any frame-layout change. *)

(** {2 Messages} *)

type err_code =
  | Bad_request  (** unparseable SQL, unknown table, bad proto label *)
  | Busy  (** admission control: the bounded job queue is full *)
  | Too_large  (** query or result exceeds the configured limits *)
  | Internal  (** execution failure (including a malicious-protocol abort) *)

val err_label : err_code -> string

type query_result = {
  r_cols : string list;  (** output column order of the SELECT list *)
  r_rows : int list list;  (** row-major, canonical (sorted) order *)
  r_truncated : bool;  (** rows were cut to the server's max-rows limit *)
  r_fallbacks : int;  (** quadratic oblivious join fallbacks taken *)
  r_cache_hit : bool;  (** served from the plan cache *)
  r_tally : Comm.tally;  (** online traffic scoped to this query *)
  r_pre : Comm.tally;  (** preprocessing traffic scoped to this query *)
  r_lan_s : float;  (** modeled LAN network time for [r_tally] *)
  r_wan_s : float;  (** modeled WAN network time for [r_tally] *)
  r_peak_bytes : int;
      (** peak resident share-chunk bytes while this query executed (0
          when out-of-core streaming is off; approximate when several
          queries execute concurrently — the store's accounting is
          process-wide) *)
  r_spills : int;  (** chunk spills to disk while this query executed *)
}
(** A completed query: the opened result plus its own mini §5 report —
    scoped communication tallies and modeled LAN/WAN times. *)

type stats = {
  s_sessions : int;  (** currently connected sessions *)
  s_workers : int;  (** configured execution workers *)
  s_jobs : int;  (** queries executed since startup *)
  s_rejected : int;  (** queries refused by admission control *)
  s_cache_hits : int;
  s_cache_misses : int;
  s_coalesced : int;  (** queries served by another in-flight execution *)
  s_queue_depth : int;  (** jobs queued, not yet executing *)
  s_in_flight : int;  (** jobs queued + executing *)
  s_wait_p50_ms : float;  (** recent queue-wait percentiles *)
  s_wait_p95_ms : float;
  s_exec_p50_ms : float;  (** recent execution-time percentiles *)
  s_exec_p95_ms : float;
  s_mem_live_bytes : int;  (** share-chunk bytes resident right now *)
  s_mem_peak_bytes : int;  (** high-water mark of resident chunk bytes *)
  s_mem_spilled_bytes : int;  (** total chunk bytes spilled to disk *)
  s_rss_peak_kb : int;  (** process VmHWM in KiB (0 where unavailable) *)
}
(** Scheduler observability: queue depth and latency percentiles travel
    with every stats frame, so clients see *how* saturated the server is
    rather than a binary busy signal. *)

type net_stats = {
  n_parties : int;  (** computing parties in the cluster *)
  n_queries : int;  (** queries the cluster has executed *)
  n_exchanges : int;  (** physical on-the-wire exchanges, last query *)
  n_refunds : int;  (** fusion round refunds, last query *)
  n_bits : int;  (** payload bits measured on the wire (all parties) *)
  n_messages : int;  (** point-to-point sends measured on the wire *)
  n_payload_bytes : int;  (** actual payload bytes carried (all parties) *)
  n_frames : int;  (** frames sent on the mesh (all parties) *)
  n_wall_s : float;  (** coordinator wall-clock of the last query *)
}
(** On-the-wire measurements aggregated across a party cluster's mesh for
    its most recent query — what bench/net.ml compares against the
    {!Comm} tallies. Served only by party clusters ({!request.Net_stats_req}
    against the plain in-process service yields [Error_r]). *)

type join_cand = {
  jc_op : string;  (** "sort" | "linear" | "quad" *)
  jc_rounds : int;
  jc_bits : int;
  jc_messages : int;
  jc_est_s : float;  (** modeled network seconds under the active profile *)
}
(** One priced physical-join candidate from the cost model
    ({!Orq_core.Joincost}). *)

type join_decision = {
  je_node : string;  (** "left ⋈ right" *)
  je_variant : string;  (** inner | semi | anti | outer *)
  je_n : int;  (** build-side physical rows *)
  je_m : int;  (** probe-side physical rows *)
  je_chosen : string;
  je_forced : bool;  (** chosen by a forced mode, not by price *)
  je_cands : join_cand list;
}
(** The physical-operator decision at one join node. *)

type explain = {
  e_mode : string;  (** active ORQ_JOIN mode: auto | sort | linear | quad *)
  e_profile : string;  (** pacing profile costs were compared under *)
  e_fallbacks : int;  (** out-of-class quadratic fallbacks *)
  e_joins : join_decision list;
}
(** The response body of {!request.Explain}: every join node's physical
    operator choice with all candidates' predicted costs. *)

type request =
  | Hello of { h_version : int; h_proto : string; h_client : string }
      (** [h_version] is the client's {!protocol_version} (mismatches are
          rejected). [h_proto] sets the session protocol
          ("sh-dm"|"sh-hm"|"mal-hm"); [h_client] is an optional
          client-group name ([""] = this connection is its own group).
          Connections sharing a group share one fairness lane in the job
          queue — a client flooding from many connections still cannot
          starve other groups. *)
  | Query of string  (** SQL text, normal priority *)
  | Query_p of { q_sql : string; q_prio : int }
      (** SQL text with an explicit priority class (0 = high, 1 = normal,
          2 = low) *)
  | Ping
  | Stats_req
  | Set_workers of int  (** live-resize the execution worker pool *)
  | Net_stats_req
      (** measured mesh traffic of the cluster's last query (party
          clusters only) *)
  | Explain of string
      (** execute the SQL cold (bypassing the plan cache) and return the
          per-join-node physical-operator decisions *)

type response =
  | Hello_ok of { session : int; proto : string }
  | Result of query_result
  | Error_r of { code : err_code; msg : string }
  | Pong
  | Stats_r of stats
  | Net_stats_r of net_stats
  | Explain_r of explain

(** {2 Framed I/O} *)

val send_request : Unix.file_descr -> request -> unit
val send_response : Unix.file_descr -> response -> unit

val recv_request : Unix.file_descr -> request option
(** Read one request frame; [None] on clean EOF before the first header
    byte. @raise Wire_error on malformed input. *)

val recv_response : Unix.file_descr -> response option

(** {2 Raw framing and codecs (party runtime, tests, fuzzing)} *)

val write_frame : Unix.file_descr -> bytes -> unit
val read_frame : Unix.file_descr -> bytes option

val encode_request : request -> bytes
val decode_request : bytes -> request

val encode_response : response -> bytes
(** The canonical encoding — what the party runtime digests for its
    cross-party result-agreement check. *)

val decode_response : bytes -> response

(** {2 Codec primitives}

    Shared with the party mesh protocol (lib/party/) so the two protocols
    cannot drift apart on endianness or length prefixes. All [get_*]
    primitives are bounds-checked and raise {!Wire_error} on truncation. *)
module Codec : sig
  type cursor

  val cursor : bytes -> cursor
  val put_u8 : Buffer.t -> int -> unit
  val put_u16 : Buffer.t -> int -> unit
  val put_u32 : Buffer.t -> int -> unit
  val put_i64 : Buffer.t -> int -> unit
  val put_f64 : Buffer.t -> float -> unit
  val put_bool : Buffer.t -> bool -> unit
  val put_string : Buffer.t -> string -> unit
  val put_list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit
  val get_u8 : cursor -> int
  val get_u16 : cursor -> int
  val get_u32 : cursor -> int
  val get_i64 : cursor -> int
  val get_f64 : cursor -> float
  val get_bool : cursor -> bool
  val get_string : cursor -> string
  val get_list : cursor -> (cursor -> 'a) -> 'a list
  val finish : cursor -> unit
  (** Reject trailing bytes after a fully-decoded body. *)
end
