(** Analytic network-time model (see DESIGN.md, "Netsim cost model").

    The lockstep simulation executes protocol logic in-process; wire time
    is reintroduced analytically from exact metered traffic:

    network time = rounds x RTT + bits / bandwidth

    with the paper's LAN / WAN / geo-distributed link parameters (§5.1,
    Appendix E). *)

type profile = {
  label : string;
  rtt_s : float;  (** round-trip time in seconds *)
  bandwidth_bps : float;  (** per-link bandwidth in bits/second *)
}

val lan : profile
(** 0.3 ms RTT, 25 Gbps (us-east-2, §5.1). *)

val wan : profile
(** 20 ms RTT, 6 Gbps. *)

val geo : profile
(** Worst link of the four-region deployment of Appendix E. *)

val local : profile
(** Zero-cost profile: isolates the simulation's own compute time. *)

val network_time : profile -> Comm.tally -> float

val estimate : profile -> compute_s:float -> Comm.tally -> float
(** Measured compute plus modeled network time. *)

(** {2 Asymmetric multi-link deployments (Appendix E)} *)

type link = { l_rtt_s : float; l_bandwidth_bps : float }

val of_links : string -> link list -> profile
(** A synchronous MPC round completes when its slowest link does: the
    effective profile of a link set is (max RTT, min bandwidth). *)

val geo_four_regions : profile
(** The paper's four-region AWS deployment, built from per-link figures;
    equals {!geo}. *)

val pp_profile : Format.formatter -> profile -> unit
