(** Non-vectorized radixsort baseline, standing in for MP-SPDZ's
    radixsort (Figure 7, Table 11) and SecretFlow's SBK sorts (Figure 6,
    Table 10): the same genBitPerm + eager-application algorithm, but with
    secure operations issued row by row — each conversion and
    multiplication is its own round and its own small framed message,
    the execution profile the paper attributes the baselines' gaps to. *)

open Orq_proto

val overhead_bits : int
(** Modeled per-message protocol framing of a general-purpose MPC VM. *)

val sort :
  Ctx.t -> bits:int -> Share.shared -> Share.shared list ->
  Share.shared * Share.shared list
