(** Non-vectorized radixsort baseline, standing in for MP-SPDZ's radixsort
    (Figure 7, Table 11) and SecretFlow's SBK / SBK_valid sorts (Figure 6,
    Table 10).

    The paper attributes its 8.5x-189x speedups over MP-SPDZ to
    data-parallelism: "although MP-SPDZ supports parallelism and advanced
    vectorization, it does not parallelize sorting", and likewise
    "SecretFlow cannot leverage parallelism" (§5.3). This baseline runs the
    same genBitPerm + eager-application algorithm but issues its secure
    operations row by row, so every element conversion and multiplication
    is its own communication round and its own tiny message — exactly the
    execution profile of a non-vectorized engine. [overhead_bits] models
    the per-message framing of a general-purpose VM (MP-SPDZ sends many
    small messages; contributes the bandwidth gap of Table 11). *)

open Orq_proto
module Permops = Orq_shuffle.Permops

let overhead_bits = 128 (* per-message protocol framing *)

(* Per-element bit-to-arithmetic conversion: one opening round per element
   (no batching), plus framing overhead. *)
let bit_b2a_rowwise (ctx : Ctx.t) (b : Share.shared) : Share.shared =
  let n = Share.length b in
  let parts =
    List.init n (fun i ->
        let bi = Share.sub_range b i 1 in
        let r = Orq_circuits.Convert.bit_b2a ctx bi in
        Orq_net.Comm.traffic ctx.comm ~bits:(ctx.parties * overhead_bits)
          ~messages:ctx.parties;
        r)
  in
  Share.concat parts

(* Row-wise genBitPerm: prefix sums stay local, but the destination
   multiplication happens element by element. *)
let gen_bit_perm_rowwise (ctx : Ctx.t) (bit : Share.shared) : Share.shared =
  let b_a = bit_b2a_rowwise ctx bit in
  let f0 = Mpc.add_pub (Mpc.neg b_a) 1 in
  let s0 = Mpc.prefix_sum f0 in
  let s1 = Mpc.prefix_sum b_a in
  let z = Orq_sort.Genbitperm.broadcast_last s0 in
  let t = Mpc.add z (Mpc.sub s1 s0) in
  let n = Share.length bit in
  let prods =
    List.init n (fun i ->
        let p =
          Mpc.mul ~width:ctx.perm_bits ctx (Share.sub_range b_a i 1)
            (Share.sub_range t i 1)
        in
        Orq_net.Comm.traffic ctx.comm ~bits:(ctx.parties * overhead_bits)
          ~messages:ctx.parties;
        p)
  in
  Mpc.add_pub (Mpc.add s0 (Share.concat prods)) (-1)

(** Row-wise hybrid radixsort: same algorithm as {!Orq_sort.Radixsort} with
    per-element round structure. *)
let sort (ctx : Ctx.t) ~bits (key : Share.shared)
    (carry : Share.shared list) : Share.shared * Share.shared list =
  Share.check_enc Bool key;
  let y = ref key and rest = ref carry in
  for i = 0 to bits - 1 do
    let b = Mpc.and_mask (Mpc.rshift !y i) 1 in
    let sigma = gen_bit_perm_rowwise ctx b in
    match Permops.apply_elementwise_table ctx (!y :: !rest) sigma with
    | y' :: rest' ->
        y := y';
        rest := rest'
    | [] -> assert false
  done;
  (!y, !rest)
