(** Secrecy-style baseline operators (Liagouris et al., NSDI'23) — the
    system the paper compares against in Figure 5 (left) and Table 8.

    Secrecy is fully oblivious like ORQ but pays the worst-case costs ORQ's
    design avoids: its binary operators materialize the O(n*m) Cartesian
    product with per-pair equality bits, and its sorting/grouping is the
    O(n log^2 n) bitonic network. Reimplemented here over the same MPC
    substrate so the comparison isolates the algorithms (the standard
    artifact-evaluation substitute for the original single-threaded C
    codebase). *)

open Orq_proto
open Orq_core
module Compare = Orq_circuits.Compare

(* Row-index expansion for the Cartesian product of n x m rows. *)
let product_indices n m =
  let li = Array.make (n * m) 0 and ri = Array.make (n * m) 0 in
  for i = 0 to n - 1 do
    for j = 0 to m - 1 do
      li.((i * m) + j) <- i;
      ri.((i * m) + j) <- j
    done
  done;
  (li, ri)

(** Quadratic oblivious inner join: the output physically holds all n*m
    pairs; a secret equality bit per pair is its validity. *)
let nested_join (ctx : Ctx.t) (left : Table.t) (right : Table.t)
    ~(on : string list) : Table.t =
  let n = Table.nrows left and m = Table.nrows right in
  let li, ri = product_indices n m in
  let expand_l s = Share.gather s li and expand_r s = Share.gather s ri in
  let eq =
    Compare.eq_composite ctx
      (List.map
         (fun k ->
           let w = max (Table.width left k) (Table.width right k) in
           ( expand_l (Column.as_bool ctx (Table.find left k)),
             expand_r (Column.as_bool ctx (Table.find right k)),
             w ))
         on)
  in
  let valid =
    Mpc.band1 ctx
      (Mpc.band1 ctx (expand_l left.Table.valid) (expand_r right.Table.valid))
      eq
  in
  let cols =
    List.map
      (fun k ->
        let c = Table.find left k in
        (k, Column.with_data c (expand_l (Column.as_bool ctx c))))
      on
    @ List.filter_map
        (fun (name, c) ->
          if List.mem name on then None
          else
            Some (name, Column.with_data c (expand_l (Column.as_bool ctx c))))
        left.Table.cols
    @ List.filter_map
        (fun (name, c) ->
          if List.mem name on then None
          else
            Some (name, Column.with_data c (expand_r (Column.as_bool ctx c))))
        right.Table.cols
  in
  Table.of_columns ctx "nested_join" ~valid cols

(** Quadratic oblivious semi-join: left rows keep an OR over the m
    per-pair equality bits. *)
let nested_semi_join (ctx : Ctx.t) (left : Table.t) (right : Table.t)
    ~(on : string list) : Table.t =
  let n = Table.nrows left and m = Table.nrows right in
  let li, ri = product_indices n m in
  let eq =
    Compare.eq_composite ctx
      (List.map
         (fun k ->
           let w = max (Table.width left k) (Table.width right k) in
           ( Share.gather (Column.as_bool ctx (Table.find left k)) li,
             Share.gather (Column.as_bool ctx (Table.find right k)) ri,
             w ))
         on)
  in
  let eq = Mpc.band1 ctx eq (Share.gather right.Table.valid ri) in
  (* OR-reduce each row's m bits in log m rounds; odd stragglers OR with
     themselves (branchless) *)
  let rec fold s width =
    if width = 1 then s
    else
      let half = (width + 1) / 2 in
      let idx_a =
        Array.init (n * half) (fun t -> ((t / half) * width) + (t mod half))
      in
      let idx_b =
        Array.init (n * half) (fun t ->
            let i = t / half and j = t mod half in
            if j + half < width then (i * width) + j + half
            else (i * width) + j)
      in
      let merged =
        Mpc.bor1 ctx (Share.gather s idx_a) (Share.gather s idx_b)
      in
      fold merged half
  in
  let matched = fold eq m in
  Table.and_valid left matched

(** Bitonic table sort (pads to a power of two with invalid rows; the pad
    rows sort to the end via a leading validity key). *)
let bitonic_sort (t : Table.t) (specs : (string * Tablesort.order) list) :
    Table.t =
  let ctx = Table.ctx t in
  let n = Table.nrows t in
  let n2 = Orq_util.Ring.next_pow2 n in
  let pad s fill =
    if n2 = n then s else Share.append s (Share.public ctx s.Share.enc (n2 - n) fill)
  in
  let keys =
    { Orq_sort.Bitonic.col = pad t.Table.valid 0; width = 1; dir = Orq_sort.Bitonic.Desc }
    :: List.map
         (fun (name, o) ->
           let c = Table.find t name in
           {
             Orq_sort.Bitonic.col = pad (Column.as_bool ctx c) 0;
             width = c.Column.width;
             dir =
               (match o with
               | Tablesort.Asc -> Orq_sort.Bitonic.Asc
               | Tablesort.Desc -> Orq_sort.Bitonic.Desc);
           })
         specs
  in
  let others =
    List.filter_map
      (fun (name, c) ->
        if List.mem_assoc name specs then None
        else Some (name, pad (Column.as_bool ctx c) 0))
      t.Table.cols
  in
  let sorted_keys, sorted_others =
    Orq_sort.Bitonic.sort ctx ~keys (List.map snd others)
  in
  let key_cols =
    List.map2
      (fun (name, _) s -> (name, Share.sub_range s 0 n))
      specs (List.tl sorted_keys)
  in
  let valid = Share.sub_range (List.hd sorted_keys) 0 n in
  let cols =
    List.map
      (fun (name, c) ->
        match List.assoc_opt name key_cols with
        | Some data -> (name, Column.with_data c data)
        | None ->
            let data =
              List.assoc name
                (List.map2
                   (fun (nme, _) s -> (nme, Share.sub_range s 0 n))
                   others sorted_others)
            in
            (name, Column.with_data c data))
      t.Table.cols
  in
  Table.of_columns ctx t.Table.name ~valid cols

(** Secrecy-style group-by: bitonic sort on the keys, then the aggregation
    network (odd-even aggregation in the original), keeping group-last
    rows. *)
let group_by (t : Table.t) ~(keys : string list) ~(aggs : Dataflow.agg list) :
    Table.t =
  let ctx = Table.ctx t in
  let t = bitonic_sort t (List.map (fun k -> (k, Tablesort.Asc)) keys) in
  (* after the valid-leading bitonic sort, valid rows are on top but group
     boundaries still need the validity bit in the key *)
  let key_shares =
    (t.Table.valid, 1)
    :: List.map (fun k -> (Table.column t k, Table.width t k)) keys
  in
  let expanded =
    List.concat_map
      (fun (a : Dataflow.agg) ->
        match a.Dataflow.fn with
        | Dataflow.Sum ->
            let src = Table.find t a.Dataflow.src in
            let w = Dataflow.sum_width t src.Column.width in
            [
              ( {
                  Aggnet.col = Column.as_arith ctx src;
                  func = Aggnet.Sum;
                  keys = Aggnet.Group;
                  width = w;
                },
                w,
                a.Dataflow.dst,
                true )
            ]
        | Dataflow.Count ->
            let w = Dataflow.count_width t in
            [
              ( {
                  Aggnet.col = Share.public ctx Share.Arith (Table.nrows t) 1;
                  func = Aggnet.Sum;
                  keys = Aggnet.Group;
                  width = w;
                },
                w,
                a.Dataflow.dst,
                true )
            ]
        | Dataflow.Min ->
            let w = Table.width t a.Dataflow.src in
            [
              ( {
                  Aggnet.col = Table.column t a.Dataflow.src;
                  func = Aggnet.Min w;
                  keys = Aggnet.Group;
                  width = w;
                },
                w,
                a.Dataflow.dst,
                false )
            ]
        | Dataflow.Max ->
            let w = Table.width t a.Dataflow.src in
            [
              ( {
                  Aggnet.col = Table.column t a.Dataflow.src;
                  func = Aggnet.Max w;
                  keys = Aggnet.Group;
                  width = w;
                },
                w,
                a.Dataflow.dst,
                false )
            ]
        | Dataflow.Avg | Dataflow.Custom _ ->
            invalid_arg "Secrecy baseline group_by: sum/count/min/max only")
      aggs
  in
  let results =
    Aggnet.run ctx ~keys:key_shares (List.map (fun (sp, _, _, _) -> sp) expanded)
  in
  let t =
    List.fold_left2
      (fun t (_, w, dst, conv) r ->
        let data = if conv then Orq_circuits.Convert.a2b ~w ctx r else r in
        Table.set_col t dst (Column.of_shared ~width:w data))
      t expanded results
  in
  let last = Aggnet.last_of_group_bits ctx ~keys:key_shares in
  Table.and_valid t last

(** Secrecy-style DISTINCT: bitonic sort + adjacent comparison. *)
let distinct (t : Table.t) (keys : string list) : Table.t =
  let ctx = Table.ctx t in
  let t = bitonic_sort t (List.map (fun k -> (k, Tablesort.Asc)) keys) in
  let key_shares =
    (t.Table.valid, 1)
    :: List.map (fun k -> (Table.column t k, Table.width t k)) keys
  in
  Table.and_valid t (Aggnet.distinct_bits ctx ~keys:key_shares)
