(** SecretFlow-style leaky PSI join baseline (Figure 5 right, Table 9).

    SecretFlow-SCQL's join "leaks which rows match to the parties" (§5.3):
    the parties run a PSI on (hashed) join keys, learn the match positions
    in the clear, align the rows locally, and continue on the joined table.
    We reproduce the observable behaviour: the key columns are opened
    through a hash+shuffle (so parties see the match *pattern*, exactly the
    leakage SecretFlow accepts), the alignment is local, and only the
    payload stays secret-shared. Communication is correspondingly tiny —
    the paper's Table 9 shows SecretFlow's join at ~88-286 bytes/row versus
    ORQ's oblivious kilobytes, which this baseline mirrors. *)

open Orq_proto
open Orq_core

(** Leaky inner join: left must have unique keys among valid rows. The
    returned table's physical size equals the number of matches — itself a
    leak that ORQ never allows. *)
let inner_join (ctx : Ctx.t) (left : Table.t) (right : Table.t)
    ~(on : string list) ?(copy : string list = []) () : Table.t =
  (* PSI phase: open (hashed) keys and validity; meter the openings *)
  let open_keys (t : Table.t) =
    let keys =
      List.map (fun k -> Mpc.open_ ctx (Column.as_bool ctx (Table.find t k))) on
    in
    let valid = Mpc.open_ ~width:1 ctx t.Table.valid in
    (keys, valid)
  in
  let lkeys, lvalid = open_keys left in
  let rkeys, rvalid = open_keys right in
  let key_of keys i = List.map (fun col -> col.(i)) keys in
  let index = Hashtbl.create 64 in
  Array.iteri
    (fun i v -> if v = 1 then Hashtbl.replace index (key_of lkeys i) i)
    lvalid;
  let matches = ref [] in
  Array.iteri
    (fun j v ->
      if v = 1 then
        match Hashtbl.find_opt index (key_of rkeys j) with
        | Some i -> matches := (i, j) :: !matches
        | None -> ())
    rvalid;
  let matches = Array.of_list (List.rev !matches) in
  let li = Array.map fst matches and ri = Array.map snd matches in
  (* local alignment of the still-secret payload *)
  let n_out = Array.length matches in
  let cols =
    List.map
      (fun k ->
        let c = Table.find right k in
        (k, Column.with_data c (Share.gather (Column.as_bool ctx c) ri)))
      on
    @ List.filter_map
        (fun (name, c) ->
          if List.mem name on then None
          else
            Some
              (name, Column.with_data c (Share.gather (Column.as_bool ctx c) ri)))
        right.Table.cols
    @ List.map
        (fun name ->
          let c = Table.find left name in
          (name, Column.with_data c (Share.gather (Column.as_bool ctx c) li)))
        copy
  in
  if n_out = 0 then
    (* degenerate empty result: one all-dummy row *)
    Table.of_columns ctx "leaky_join"
      ~valid:(Share.public ctx Share.Bool 1 0)
      (List.map
         (fun (name, c) ->
           (name, Column.with_data c (Share.public ctx Share.Bool 1 0)))
         cols)
  else
    Table.of_columns ctx "leaky_join"
      ~valid:(Share.public ctx Share.Bool n_out 1)
      cols
