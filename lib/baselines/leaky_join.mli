(** SecretFlow-style leaky PSI join baseline (Figure 5 right, Table 9):
    parties learn which rows match (the leakage SecretFlow accepts), align
    rows locally, and keep only payloads secret-shared — tiny
    communication, but the output's physical size reveals the true match
    count, which ORQ never allows. *)

open Orq_proto
open Orq_core

val inner_join :
  Ctx.t -> Table.t -> Table.t -> on:string list -> ?copy:string list ->
  unit -> Table.t
(** Left must have unique keys among valid rows. *)
