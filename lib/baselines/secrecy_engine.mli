(** Secrecy-style baseline operators (Liagouris et al., NSDI'23) — the
    system the paper compares against in Figure 5 (left) and Table 8:
    fully oblivious like ORQ, but binary operators materialize the O(n·m)
    Cartesian product and sorting/grouping is the O(n log² n) bitonic
    network. Reimplemented over the same MPC substrate so comparisons
    isolate the algorithms. *)

open Orq_proto
open Orq_core

val product_indices : int -> int -> int array * int array

val nested_join : Ctx.t -> Table.t -> Table.t -> on:string list -> Table.t
(** Quadratic oblivious inner join: the output physically holds all n·m
    pairs, each with a secret equality bit as validity. *)

val nested_semi_join :
  Ctx.t -> Table.t -> Table.t -> on:string list -> Table.t
(** Quadratic semi-join: per-row OR over m equality bits (log m rounds). *)

val bitonic_sort : Table.t -> (string * Tablesort.order) list -> Table.t
(** Bitonic table sort (pads to a power of two; valid rows lead). *)

val group_by : Table.t -> keys:string list -> aggs:Dataflow.agg list -> Table.t
(** Bitonic sort + aggregation network (sum/count/min/max). *)

val distinct : Table.t -> string list -> Table.t
