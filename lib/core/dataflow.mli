(** The ORQ dataflow API (§2.2): relational operators as transformations
    on secret-shared tables, chained to build query plans (the model of
    the paper's Listing 1). Every operator is fully oblivious: output
    sizes and access patterns depend only on public input sizes. *)

open Orq_proto

type order = Tablesort.order = Asc | Desc

(** {2 Row-local operators} *)

val filter : Table.t -> Expr.pred -> Table.t
(** SELECT ... WHERE: evaluate the predicate obliviously and fold it into
    the validity column. *)

val map : Table.t -> dst:string -> ?width:int -> Expr.num -> Table.t
(** Attach a derived column (e.g. Revenue = Price * (100 - Disc) / 100). *)

val project : Table.t -> string list -> Table.t

(** {2 Sort / limit / distinct} *)

val order_by : Table.t -> (string * order) list -> Table.t
(** ORDER BY: valid rows float to the top, then the user keys apply. *)

val limit : Table.t -> int -> Table.t
(** LIMIT k after an ORDER BY: keep the first k physical rows. *)

val distinct : Table.t -> string list -> Table.t
(** DISTINCT on a composite key: sort, keep each group's first row. *)

(** {2 GROUP BY aggregation} *)

type aggfn =
  | Sum
  | Count
  | Min
  | Max
  | Avg  (** fully private: non-restoring division on secret sum/count *)
  | Custom of (Ctx.t -> Share.shared -> Share.shared -> Share.shared)
      (** pairwise combine on boolean shares; must be self-decomposable *)

type agg = { src : string; dst : string; fn : aggfn }

val sum_width : Table.t -> int -> int
val count_width : Table.t -> int

val aggregate : Table.t -> keys:string list -> aggs:agg list -> Table.t
(** GROUP BY (the paper's [.aggregate()]): sort on the keys, run the
    aggregation network, keep one valid row per group. *)

(** {2 Whole-table aggregation} *)

val global_aggregate : Table.t -> aggs:agg list -> Table.t
(** No grouping key: SUM/COUNT/AVG via a validity-masked local reduction
    (no sorting — why the paper's Q6 is its cheapest query); MIN/MAX via a
    log-depth compare tree. One-row result. *)

val with_scalar :
  Table.t -> scalar:Table.t -> src:string -> dst:string -> Table.t
(** Broadcast the single row of [scalar] (e.g. a global aggregate) as a
    constant column of [t] — local share replication. *)

(** {2 Joins} *)

type join_agg = Joinagg.agg_spec = {
  a_src : string;
  a_dst : string;
  a_func : Aggnet.func;
  a_width : int;
}

val inner_join :
  ?copy:string list -> ?aggs:join_agg list -> ?trim:Joinagg.trim_mode ->
  Table.t -> Table.t -> on:string list -> Table.t
(** INNER JOIN (one-to-many: the left input must have unique keys —
    pre-aggregate first for many-to-many, §3.6). [copy] propagates left
    columns into matching right rows. *)

val left_outer_join :
  ?copy:string list -> ?aggs:join_agg list -> Table.t -> Table.t ->
  on:string list -> Table.t

val right_outer_join :
  ?copy:string list -> ?aggs:join_agg list -> Table.t -> Table.t ->
  on:string list -> Table.t

val full_outer_join :
  ?copy:string list -> ?aggs:join_agg list -> Table.t -> Table.t ->
  on:string list -> Table.t

val inner_join_unique :
  ?copy:string list -> ?trim:Joinagg.trim_mode -> Table.t -> Table.t ->
  on:string list -> Table.t
(** Unique keys on both sides: the PSI-style join of Appendix C. *)

val count_distinct :
  Table.t -> keys:string list -> over:string list -> dst:string -> Table.t
(** COUNT(DISTINCT over) per group — DISTINCT + grouped count. *)

val theta_join :
  ?copy:string list -> ?aggs:join_agg list -> ?trim:Joinagg.trim_mode ->
  Table.t -> Table.t -> on:string list -> theta:Expr.pred -> Table.t
(** THETA JOIN (§3.4): equalities bound the output and drive the join;
    the remaining conjuncts become an oblivious filter. *)

val semi_join :
  ?trim:Joinagg.trim_mode -> Table.t -> Table.t -> on:string list -> Table.t
(** Keep left rows that match some right row (swapped inner join of
    Appendix C.1; handles duplicates on both sides). *)

val anti_join :
  ?trim:Joinagg.trim_mode -> Table.t -> Table.t -> on:string list -> Table.t
(** Keep left rows with no match in right. *)

(** {2 Set operations} *)

val concat_tables : Table.t -> Table.t -> Table.t
(** UNION ALL of tables with identical schemas. *)
