(** The ORQ dataflow API (§2.2): relational operators as transformations on
    secret-shared tables, chained to build query plans — the programming
    model of Listing 1. Every operator is fully oblivious: output sizes and
    access patterns depend only on public input sizes. *)

open Orq_proto

type order = Tablesort.order = Asc | Desc

(* ------------------------------------------------------------------ *)
(* Row-local operators                                                 *)
(* ------------------------------------------------------------------ *)

(** SELECT ... WHERE: evaluate the predicate obliviously and fold it into
    the validity column. *)
let filter (t : Table.t) (p : Expr.pred) : Table.t =
  Table.and_valid t (Expr.eval_pred t p)

(** Attach a derived column (e.g. Revenue = Price * (100 - Discount) / 100). *)
let map (t : Table.t) ~dst ?width (e : Expr.num) : Table.t =
  let c = Expr.eval_col t e in
  let c = match width with Some w -> { c with Column.width = w } | None -> c in
  Table.set_col t dst c

let project = Table.project

(* ------------------------------------------------------------------ *)
(* Sort / limit / distinct                                             *)
(* ------------------------------------------------------------------ *)

(** ORDER BY: valid rows float to the top (validity is a leading descending
    key), then the user keys apply. *)
let order_by (t : Table.t) (specs : (string * order) list) : Table.t =
  Tablesort.sort ~lead:[ (t.Table.valid, 1, Tablesort.Desc) ] t specs

(** LIMIT k (after an ORDER BY): keep the first k physical rows. *)
let limit (t : Table.t) k : Table.t = Table.take_rows t k

(** DISTINCT on a composite key: sort and keep each group's first row. *)
let distinct (t : Table.t) (keys : string list) : Table.t =
  let ctx = Table.ctx t in
  let t =
    Tablesort.sort
      ~lead:[ (t.Table.valid, 1, Tablesort.Asc) ]
      t
      (List.map (fun k -> (k, Asc)) keys)
  in
  let key_shares =
    (t.Table.valid, 1)
    :: List.map (fun k -> (Table.column t k, Table.width t k)) keys
  in
  let dist = Aggnet.distinct_bits ctx ~keys:key_shares in
  Table.and_valid t dist

(* ------------------------------------------------------------------ *)
(* GROUP BY aggregation                                                *)
(* ------------------------------------------------------------------ *)

type aggfn =
  | Sum
  | Count
  | Min
  | Max
  | Avg
  | Custom of (Ctx.t -> Share.shared -> Share.shared -> Share.shared)
      (** pairwise combine on boolean shares; must be self-decomposable *)

type agg = { src : string; dst : string; fn : aggfn }

let sum_width (t : Table.t) w =
  min (w + Orq_util.Ring.log2_ceil (Table.nrows t) + 1) 58

let count_width (t : Table.t) = Orq_util.Ring.log2_ceil (Table.nrows t) + 1

(* Build the Aggnet specs for one dataflow aggregation; Avg expands to a
   sum/count pair plus a post-division. Each entry is
   (spec, finisher, width, signedness of result, destination name). *)
let expand_agg (t : Table.t) (a : agg) :
    (Aggnet.spec * (Ctx.t -> Share.shared -> Share.shared) * int * bool * string)
    list =
  let ctx = Table.ctx t in
  let id _ s = s in
  match a.fn with
  | Sum ->
      let src = Table.find t a.src in
      let w = sum_width t src.Column.width in
      let col = Column.as_arith ctx src in
      [
        ( { Aggnet.col; func = Aggnet.Sum; keys = Aggnet.Group; width = w },
          (fun ctx s -> Orq_circuits.Convert.a2b ~w ctx s),
          w,
          src.Column.signed,
          a.dst );
      ]
  | Count ->
      let w = count_width t in
      let col = Share.public ctx Share.Arith (Table.nrows t) 1 in
      [
        ( { Aggnet.col; func = Aggnet.Sum; keys = Aggnet.Group; width = w },
          (fun ctx s -> Orq_circuits.Convert.a2b ~w ctx s),
          w,
          false,
          a.dst );
      ]
  | Min ->
      (* unsigned comparisons: signed min/max would need the sign-flip map *)
      let w = Table.width t a.src in
      [
        ( {
            Aggnet.col = Table.column t a.src;
            func = Aggnet.Min w;
            keys = Aggnet.Group;
            width = w;
          },
          id,
          w,
          false,
          a.dst );
      ]
  | Max ->
      let w = Table.width t a.src in
      [
        ( {
            Aggnet.col = Table.column t a.src;
            func = Aggnet.Max w;
            keys = Aggnet.Group;
            width = w;
          },
          id,
          w,
          false,
          a.dst );
      ]
  | Custom f ->
      let w = Table.width t a.src in
      [
        ( {
            Aggnet.col = Table.column t a.src;
            func = Aggnet.Custom f;
            keys = Aggnet.Group;
            width = w;
          },
          id,
          w,
          false,
          a.dst );
      ]
  | Avg ->
      (* expands to hidden sum and count columns; the (unsigned) division
         happens in [aggregate] once both results exist *)
      let src = Table.find t a.src in
      let ws = sum_width t src.Column.width in
      let wc = count_width t in
      let col = Column.as_arith ctx src in
      let ones = Share.public ctx Share.Arith (Table.nrows t) 1 in
      [
        ( { Aggnet.col; func = Aggnet.Sum; keys = Aggnet.Group; width = ws },
          (fun ctx s -> Orq_circuits.Convert.a2b ~w:ws ctx s),
          ws,
          false,
          a.dst ^ "#sum" );
        ( { Aggnet.col = ones; func = Aggnet.Sum; keys = Aggnet.Group; width = wc },
          (fun ctx s -> Orq_circuits.Convert.a2b ~w:wc ctx s),
          wc,
          false,
          a.dst ^ "#count" );
      ]

(** GROUP BY [keys] evaluating the aggregations [aggs] (the paper's
    [.aggregate()]): sorts on the keys, runs the aggregation network, and
    keeps one valid row per group (the one holding the group total). AVG is
    computed with the fully private non-restoring division circuit. *)
let aggregate (t : Table.t) ~(keys : string list) ~(aggs : agg list) : Table.t =
  let ctx = Table.ctx t in
  let t =
    Tablesort.sort
      ~lead:[ (t.Table.valid, 1, Tablesort.Asc) ]
      t
      (List.map (fun k -> (k, Asc)) keys)
  in
  let key_shares =
    (t.Table.valid, 1)
    :: List.map (fun k -> (Table.column t k, Table.width t k)) keys
  in
  let expanded = List.concat_map (expand_agg t) aggs in
  let results =
    Aggnet.run ctx ~keys:key_shares (List.map (fun (sp, _, _, _, _) -> sp) expanded)
  in
  let finished =
    List.map2
      (fun (_, finish, w, signed, dst) r ->
        (dst, Column.of_shared ~signed ~width:w (finish ctx r)))
      expanded results
  in
  let t =
    List.fold_left (fun t (dst, c) -> Table.set_col t dst c) t finished
  in
  (* resolve AVG divisions *)
  let t =
    List.fold_left
      (fun t a ->
        match a.fn with
        | Avg ->
            let s = Table.find t (a.dst ^ "#sum") in
            let c = Table.find t (a.dst ^ "#count") in
            let w = s.Column.width in
            let q, _ =
              Orq_circuits.Divide.udiv ctx ~w s.Column.data
                (Column.as_bool ctx c)
            in
            Table.drop_cols
              (Table.set_col t a.dst (Column.of_shared ~width:w q))
              [ a.dst ^ "#sum"; a.dst ^ "#count" ]
        | Sum | Count | Min | Max | Custom _ -> t)
      t aggs
  in
  let last = Aggnet.last_of_group_bits ctx ~keys:key_shares in
  Table.and_valid t last

(* ------------------------------------------------------------------ *)
(* Global (whole-table) aggregation                                    *)
(* ------------------------------------------------------------------ *)

(* Fold a shared vector to one element by pairwise combine in a log-depth
   tree (used for global min/max; one compare+mux round per level). *)
let tree_fold ctx combine (s : Share.shared) : Share.shared =
  let rec go s =
    let n = Share.length s in
    if n = 1 then s
    else
      let half = n / 2 in
      let a = Share.sub_range s 0 half in
      let b = Share.sub_range s half half in
      let merged = combine ctx a b in
      let merged =
        if n mod 2 = 1 then Share.append merged (Share.sub_range s (n - 1) 1)
        else merged
      in
      go merged
  in
  go s

(** Whole-table aggregation (no grouping key): SUM/COUNT/AVG are computed
    with a validity-masked local reduction — no sorting at all, which is
    why the paper's Q6 is its cheapest query — and MIN/MAX with a log-depth
    compare tree over validity-masked values. Returns a one-row table. *)
let global_aggregate (t : Table.t) ~(aggs : agg list) : Table.t =
  let ctx = Table.ctx t in
  let v_arith = lazy (Orq_circuits.Convert.bit_b2a ctx t.Table.valid) in
  let cols =
    List.map
      (fun a ->
        match a.fn with
        | Sum ->
            let src = Table.find t a.src in
            let w = sum_width t src.Column.width in
            let x = Column.as_arith ctx src in
            let masked = Mpc.mul ~width:w ctx x (Lazy.force v_arith) in
            (a.dst, Column.of_shared ~signed:src.Column.signed ~width:w
               (Orq_circuits.Convert.a2b ~w ctx (Mpc.sum_all masked)))
        | Count ->
            let w = count_width t in
            (a.dst, Column.of_shared ~width:w
               (Orq_circuits.Convert.a2b ~w ctx
                  (Mpc.sum_all (Lazy.force v_arith))))
        | Avg ->
            let ws = sum_width t (Table.width t a.src) in
            let x = Column.as_arith ctx (Table.find t a.src) in
            let masked = Mpc.mul ~width:ws ctx x (Lazy.force v_arith) in
            let sum =
              Orq_circuits.Convert.a2b ~w:ws ctx (Mpc.sum_all masked)
            in
            let cnt =
              Orq_circuits.Convert.a2b ~w:(count_width t) ctx
                (Mpc.sum_all (Lazy.force v_arith))
            in
            let q, _ = Orq_circuits.Divide.udiv ctx ~w:ws sum cnt in
            (a.dst, Column.of_shared ~width:ws q)
        | Min ->
            let w = Table.width t a.src in
            let x = Table.column t a.src in
            (* invalid rows become the identity (all ones) *)
            let masked =
              Orq_circuits.Mux.mux_b ~width:w ctx t.Table.valid
                (Share.public ctx Share.Bool t.Table.nrows (Orq_util.Ring.mask w))
                x
            in
            let combine ctx a b =
              let lt = Orq_circuits.Compare.lt ctx ~w a b in
              Orq_circuits.Mux.mux_b ~width:w ctx lt b a
            in
            (a.dst, Column.of_shared ~width:w (tree_fold ctx combine masked))
        | Max ->
            let w = Table.width t a.src in
            let x = Table.column t a.src in
            let masked =
              Orq_circuits.Mux.mux_b ~width:w ctx t.Table.valid
                (Share.public ctx Share.Bool t.Table.nrows 0)
                x
            in
            let combine ctx a b =
              let lt = Orq_circuits.Compare.lt ctx ~w a b in
              Orq_circuits.Mux.mux_b ~width:w ctx lt a b
            in
            (a.dst, Column.of_shared ~width:w (tree_fold ctx combine masked))
        | Custom _ ->
            invalid_arg "global_aggregate: custom functions need group keys")
      aggs
  in
  Table.of_columns ctx (t.Table.name ^ "_agg")
    ~valid:(Share.public ctx Share.Bool 1 1)
    cols

(** Broadcast the single row of [scalar] (e.g. a global aggregate) as a new
    constant column of [t] — a local share replication. *)
let with_scalar (t : Table.t) ~(scalar : Table.t) ~(src : string)
    ~(dst : string) : Table.t =
  let c = Table.find scalar src in
  if Column.length c <> 1 then invalid_arg "with_scalar: not a scalar";
  let data =
    Share.map_vectors (fun vk -> Array.make (Table.nrows t) vk.(0)) c.Column.data
  in
  Table.set_col t dst { c with Column.data }

(* ------------------------------------------------------------------ *)
(* Joins                                                               *)
(* ------------------------------------------------------------------ *)

type join_agg = Joinagg.agg_spec = {
  a_src : string;
  a_dst : string;
  a_func : Aggnet.func;
  a_width : int;
}

(** INNER JOIN (one-to-many: [left] must have unique keys — pre-aggregate
    first for many-to-many, §3.6). [copy] propagates left columns into the
    matching right rows. *)
let inner_join ?copy ?aggs ?trim (left : Table.t) (right : Table.t)
    ~(on : string list) : Table.t =
  Joinagg.join (Table.ctx left) Joinagg.V_inner ?copy ?aggs ?trim ~left ~right
    ~on ()

let left_outer_join ?copy ?aggs (left : Table.t) (right : Table.t)
    ~(on : string list) : Table.t =
  Joinagg.join (Table.ctx left) Joinagg.V_left_outer ?copy ?aggs ~left ~right
    ~on ()

let right_outer_join ?copy ?aggs (left : Table.t) (right : Table.t)
    ~(on : string list) : Table.t =
  Joinagg.join (Table.ctx left) Joinagg.V_right_outer ?copy ?aggs ~left ~right
    ~on ()

let full_outer_join ?copy ?aggs (left : Table.t) (right : Table.t)
    ~(on : string list) : Table.t =
  Joinagg.join (Table.ctx left) Joinagg.V_full_outer ?copy ?aggs ~left ~right
    ~on ()

(** Unique-key inner join (Appendix C): both sides' keys are unique in the
    public schema, so the aggregation network is skipped — an oblivious
    PSI-style join bounded by min(|L|, |R|). Used for the SecretFlow
    comparison, whose join requires unique keys. *)
let inner_join_unique ?copy ?trim (left : Table.t) (right : Table.t)
    ~(on : string list) : Table.t =
  Joinagg.join_unique (Table.ctx left) ?copy ?trim ~left ~right ~on ()

(** COUNT(DISTINCT over) per group: DISTINCT on (keys, over) followed by a
    grouped count — the §3.6 pattern ORQ uses to evaluate count-distinct
    over many-to-many joins without materializing them. *)
let count_distinct (t : Table.t) ~(keys : string list) ~(over : string list)
    ~(dst : string) : Table.t =
  let d = distinct t (keys @ over) in
  aggregate d ~keys
    ~aggs:[ { src = List.hd (keys @ over); dst; fn = Count } ]

(** THETA JOIN (§3.4): a conjunctive predicate containing at least one
    equality — the equalities bound the output size and drive the
    join-aggregation operator; the remaining conditions become an oblivious
    filter over the joined table. *)
let theta_join ?copy ?aggs ?trim (left : Table.t) (right : Table.t)
    ~(on : string list) ~(theta : Expr.pred) : Table.t =
  filter (inner_join ?copy ?aggs ?trim left right ~on) theta

(** SEMI JOIN — keep left rows that match some right row. Implemented as
    the swapped inner join of Appendix C.1, then projected back to the
    left schema. Handles duplicates on both sides. *)
let semi_join ?trim (left : Table.t) (right : Table.t) ~(on : string list) :
    Table.t =
  let right' = Table.project right on in
  let joined =
    Joinagg.join (Table.ctx left) Joinagg.V_inner ?trim ~left:right'
      ~right:left ~on ()
  in
  Table.rename (Table.project joined (Table.col_names left)) left.Table.name

(** ANTI JOIN — keep left rows with no match in right (swapped right-outer
    with cross-table valid propagation, Appendix C.1). *)
let anti_join ?trim (left : Table.t) (right : Table.t) ~(on : string list) :
    Table.t =
  let right' = Table.project right on in
  let joined =
    Joinagg.join (Table.ctx left) Joinagg.V_anti ?trim ~left:right'
      ~right:left ~on ()
  in
  Table.rename (Table.project joined (Table.col_names left)) left.Table.name

(* ------------------------------------------------------------------ *)
(* Set operations                                                      *)
(* ------------------------------------------------------------------ *)

(** UNION ALL of tables with identical schemas. *)
let concat_tables (a : Table.t) (b : Table.t) : Table.t =
  if Table.col_names a <> Table.col_names b then
    invalid_arg "concat_tables: schema mismatch";
  Table.of_columns (Table.ctx a) a.Table.name
    ~valid:(Share.append a.Table.valid b.Table.valid)
    (List.map
       (fun (n, ca) ->
         let cb = Table.find b n in
         ( n,
           {
             Column.data = Share.append ca.Column.data cb.Column.data;
             width = max ca.Column.width cb.Column.width;
             signed = ca.Column.signed || cb.Column.signed;
           } ))
       a.Table.cols)
