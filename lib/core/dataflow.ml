(** The ORQ dataflow API (§2.2): relational operators as transformations on
    secret-shared tables, chained to build query plans — the programming
    model of Listing 1. Every operator is fully oblivious: output sizes and
    access patterns depend only on public input sizes. *)

open Orq_proto

type order = Tablesort.order = Asc | Desc

(* Streaming operator boundary: when out-of-core execution is on, park the
   result's live columns into the budget-managed store so tables at rest
   stay evictable between operators; monolithic per-operator working sets
   ride above the budget only transiently. No-op when streaming is off. *)
let parked (t : Table.t) : Table.t =
  if Orq_util.Chunkvec.streaming_enabled () then Table.park t;
  t

(* ------------------------------------------------------------------ *)
(* Row-local operators                                                 *)
(* ------------------------------------------------------------------ *)

(** SELECT ... WHERE: evaluate the predicate obliviously and fold it into
    the validity column. *)
let filter (t : Table.t) (p : Expr.pred) : Table.t =
  Ctx.with_label (Table.ctx t) "filter" @@ fun () ->
  parked (Table.and_valid t (Expr.eval_pred t p))

(** Attach a derived column (e.g. Revenue = Price * (100 - Discount) / 100). *)
let map (t : Table.t) ~dst ?width (e : Expr.num) : Table.t =
  let c = Expr.eval_col t e in
  let c = match width with Some w -> { c with Column.width = w } | None -> c in
  parked (Table.set_col t dst c)

let project = Table.project

(* ------------------------------------------------------------------ *)
(* Sort / limit / distinct                                             *)
(* ------------------------------------------------------------------ *)

(** ORDER BY: valid rows float to the top (validity is a leading descending
    key), then the user keys apply. *)
let order_by (t : Table.t) (specs : (string * order) list) : Table.t =
  Ctx.with_label (Table.ctx t) "orderby" @@ fun () ->
  parked (Tablesort.sort ~lead:[ (t.Table.valid, 1, Tablesort.Desc) ] t specs)

(** LIMIT k (after an ORDER BY): keep the first k physical rows. *)
let limit (t : Table.t) k : Table.t = Table.take_rows t k

(** DISTINCT on a composite key: sort and keep each group's first row. *)
let distinct (t : Table.t) (keys : string list) : Table.t =
  let ctx = Table.ctx t in
  Ctx.with_label ctx "distinct" @@ fun () ->
  let t =
    Tablesort.sort
      ~lead:[ (t.Table.valid, 1, Tablesort.Asc) ]
      t
      (List.map (fun k -> (k, Asc)) keys)
  in
  let key_shares =
    (t.Table.valid, 1)
    :: List.map (fun k -> (Table.column t k, Table.width t k)) keys
  in
  let dist = Aggnet.distinct_bits ctx ~keys:key_shares in
  parked (Table.and_valid t dist)

(* ------------------------------------------------------------------ *)
(* GROUP BY aggregation                                                *)
(* ------------------------------------------------------------------ *)

type aggfn =
  | Sum
  | Count
  | Min
  | Max
  | Avg
  | Custom of (Ctx.t -> Share.shared -> Share.shared -> Share.shared)
      (** pairwise combine on boolean shares; must be self-decomposable *)

type agg = { src : string; dst : string; fn : aggfn }

let sum_width (t : Table.t) w =
  min (w + Orq_util.Ring.log2_ceil (Table.nrows t) + 1) 58

let count_width (t : Table.t) = Orq_util.Ring.log2_ceil (Table.nrows t) + 1

(* Build the Aggnet specs for one dataflow aggregation; Avg expands to a
   sum/count pair plus a post-division. Each entry is
   (spec, finisher tag, width, signedness of result, destination name).
   The finisher is a tag rather than a closure so [aggregate] can run all
   [`A2b] finishes through one fused conversion. *)
let expand_agg (t : Table.t) (a : agg) :
    (Aggnet.spec * [ `A2b | `Id ] * int * bool * string) list =
  let ctx = Table.ctx t in
  match a.fn with
  | Sum ->
      let src = Table.find t a.src in
      let w = sum_width t src.Column.width in
      let col = Column.as_arith ctx src in
      [
        ( { Aggnet.col; func = Aggnet.Sum; keys = Aggnet.Group; width = w },
          `A2b,
          w,
          src.Column.signed,
          a.dst );
      ]
  | Count ->
      let w = count_width t in
      let col = Share.public ctx Share.Arith (Table.nrows t) 1 in
      [
        ( { Aggnet.col; func = Aggnet.Sum; keys = Aggnet.Group; width = w },
          `A2b,
          w,
          false,
          a.dst );
      ]
  | Min ->
      (* unsigned comparisons: signed min/max would need the sign-flip map *)
      let w = Table.width t a.src in
      [
        ( {
            Aggnet.col = Table.column t a.src;
            func = Aggnet.Min w;
            keys = Aggnet.Group;
            width = w;
          },
          `Id,
          w,
          false,
          a.dst );
      ]
  | Max ->
      let w = Table.width t a.src in
      [
        ( {
            Aggnet.col = Table.column t a.src;
            func = Aggnet.Max w;
            keys = Aggnet.Group;
            width = w;
          },
          `Id,
          w,
          false,
          a.dst );
      ]
  | Custom f ->
      let w = Table.width t a.src in
      [
        ( {
            Aggnet.col = Table.column t a.src;
            func = Aggnet.Custom f;
            keys = Aggnet.Group;
            width = w;
          },
          `Id,
          w,
          false,
          a.dst );
      ]
  | Avg ->
      (* expands to hidden sum and count columns; the (unsigned) division
         happens in [aggregate] once both results exist *)
      let src = Table.find t a.src in
      let ws = sum_width t src.Column.width in
      let wc = count_width t in
      let col = Column.as_arith ctx src in
      let ones = Share.public ctx Share.Arith (Table.nrows t) 1 in
      [
        ( { Aggnet.col; func = Aggnet.Sum; keys = Aggnet.Group; width = ws },
          `A2b,
          ws,
          false,
          a.dst ^ "#sum" );
        ( { Aggnet.col = ones; func = Aggnet.Sum; keys = Aggnet.Group; width = wc },
          `A2b,
          wc,
          false,
          a.dst ^ "#count" );
      ]

(** GROUP BY [keys] evaluating the aggregations [aggs] (the paper's
    [.aggregate()]): sorts on the keys, runs the aggregation network, and
    keeps one valid row per group (the one holding the group total). AVG is
    computed with the fully private non-restoring division circuit. *)
let aggregate (t : Table.t) ~(keys : string list) ~(aggs : agg list) : Table.t =
  let ctx = Table.ctx t in
  Ctx.with_label ctx "aggregate" @@ fun () ->
  let t =
    Tablesort.sort
      ~lead:[ (t.Table.valid, 1, Tablesort.Asc) ]
      t
      (List.map (fun k -> (k, Asc)) keys)
  in
  let key_shares =
    (t.Table.valid, 1)
    :: List.map (fun k -> (Table.column t k, Table.width t k)) keys
  in
  let expanded = List.concat_map (expand_agg t) aggs in
  let results =
    Aggnet.run ctx ~keys:key_shares (List.map (fun (sp, _, _, _, _) -> sp) expanded)
  in
  (* every sum/count result converts through one fused A2B *)
  let conv =
    Orq_circuits.Convert.a2b_many ctx
      (Array.of_list
         (List.concat
            (List.map2
               (fun (_, fin, w, _, _) r ->
                 match fin with `A2b -> [ (r, w) ] | `Id -> [])
               expanded results)))
  in
  let ci = ref 0 in
  let finished =
    List.map2
      (fun (_, fin, w, signed, dst) r ->
        let v =
          match fin with
          | `A2b ->
              let c = conv.(!ci) in
              incr ci;
              c
          | `Id -> r
        in
        (dst, Column.of_shared ~signed ~width:w v))
      expanded results
  in
  let t =
    List.fold_left (fun t (dst, c) -> Table.set_col t dst c) t finished
  in
  (* resolve AVG divisions *)
  let t =
    List.fold_left
      (fun t a ->
        match a.fn with
        | Avg ->
            let s = Table.find t (a.dst ^ "#sum") in
            let c = Table.find t (a.dst ^ "#count") in
            let w = s.Column.width in
            let q, _ =
              Orq_circuits.Divide.udiv ctx ~w (Column.data s)
                (Column.as_bool ctx c)
            in
            Table.drop_cols
              (Table.set_col t a.dst (Column.of_shared ~width:w q))
              [ a.dst ^ "#sum"; a.dst ^ "#count" ]
        | Sum | Count | Min | Max | Custom _ -> t)
      t aggs
  in
  let last = Aggnet.last_of_group_bits ctx ~keys:key_shares in
  parked (Table.and_valid t last)

(* ------------------------------------------------------------------ *)
(* Global (whole-table) aggregation                                    *)
(* ------------------------------------------------------------------ *)

(** Whole-table aggregation (no grouping key): SUM/COUNT/AVG are computed
    with a validity-masked local reduction — no sorting at all, which is
    why the paper's Q6 is its cheapest query — and MIN/MAX with a log-depth
    compare tree over validity-masked values. Returns a one-row table.

    All aggregates batch across one another: the validity-masking
    multiplications fuse into one round, every sum/count finish goes
    through one fused A2B, and the MIN/MAX trees fold in lockstep (each
    level's comparisons and selections are shared rounds across lanes). *)
let global_aggregate (t : Table.t) ~(aggs : agg list) : Table.t =
  let ctx = Table.ctx t in
  Ctx.with_label ctx "globalagg" @@ fun () ->
  let module Cv = Orq_circuits.Convert in
  let module Mx = Orq_circuits.Mux in
  let module Cp = Orq_circuits.Compare in
  let v_arith = lazy (Cv.bit_b2a ctx t.Table.valid) in
  let plans =
    List.map
      (fun a ->
        match a.fn with
        | Sum ->
            let src = Table.find t a.src in
            let w = sum_width t src.Column.width in
            `Masked (a, Column.as_arith ctx src, w, src.Column.signed, false)
        | Avg ->
            let ws = sum_width t (Table.width t a.src) in
            `Masked (a, Column.as_arith ctx (Table.find t a.src), ws, false, true)
        | Count -> `Count a
        | Min -> `Minmax (a, true, Table.width t a.src, Table.column t a.src)
        | Max -> `Minmax (a, false, Table.width t a.src, Table.column t a.src)
        | Custom _ ->
            invalid_arg "global_aggregate: custom functions need group keys")
      aggs
  in
  (* fused validity-masked multiplications for SUM/AVG *)
  let masked_lanes =
    List.filter_map
      (function `Masked (_, x, w, _, _) -> Some (x, w) | _ -> None)
      plans
  in
  let products =
    if masked_lanes = [] then [||]
    else
      Mpc.mul_many
        ~widths:(Array.of_list (List.map snd masked_lanes))
        ctx
        (Array.of_list (List.map fst masked_lanes))
        (Array.of_list (List.map (fun _ -> Lazy.force v_arith) masked_lanes))
  in
  (* one fused A2B over every sum/count finish *)
  let a2b_lanes = ref [] in
  let na = ref 0 in
  let push_a2b s w =
    a2b_lanes := (s, w) :: !a2b_lanes;
    incr na;
    !na - 1
  in
  let mi = ref 0 in
  let staged =
    List.map
      (fun pl ->
        match pl with
        | `Masked (a, _, w, signed, is_avg) ->
            let p = products.(!mi) in
            incr mi;
            let si = push_a2b (Mpc.sum_all p) w in
            if is_avg then
              let ci =
                push_a2b (Mpc.sum_all (Lazy.force v_arith)) (count_width t)
              in
              `Avg' (a, w, si, ci)
            else `Sum' (a, w, signed, si)
        | `Count a ->
            let w = count_width t in
            `Sum' (a, w, false, push_a2b (Mpc.sum_all (Lazy.force v_arith)) w)
        | `Minmax (a, is_min, w, x) -> `Minmax (a, is_min, w, x))
      plans
  in
  let conv = Cv.a2b_many ctx (Array.of_list (List.rev !a2b_lanes)) in
  (* MIN/MAX: fused validity masking, then a lockstep log-depth fold *)
  let mm =
    Array.of_list
      (List.filter_map
         (function
           | `Minmax (a, is_min, w, x) -> Some (a, is_min, w, x)
           | _ -> None)
         staged)
  in
  let mm_vals =
    if Array.length mm = 0 then [||]
    else begin
      let ws = Array.map (fun (_, _, w, _) -> w) mm in
      let cur =
        Mx.select_many ~widths:ws ctx
          (Array.map
             (fun (_, is_min, w, x) ->
               (* invalid rows become the identity of the fold *)
               let ident = if is_min then Orq_util.Ring.mask w else 0 in
               (t.Table.valid, Share.public ctx Share.Bool t.Table.nrows ident, x))
             mm)
      in
      while Array.exists (fun s -> Share.length s > 1) cur do
        let act =
          Array.of_list
            (List.filter
               (fun i -> Share.length cur.(i) > 1)
               (List.init (Array.length cur) Fun.id))
        in
        let parts =
          Array.map
            (fun i ->
              let s = cur.(i) in
              let n = Share.length s in
              let half = n / 2 in
              ( Share.sub_range s 0 half,
                Share.sub_range s half half,
                if n mod 2 = 1 then Some (Share.sub_range s (n - 1) 1)
                else None ))
            act
        in
        let aws = Array.map (fun i -> let _, _, w, _ = mm.(i) in w) act in
        let lts =
          Cp.lt_many ctx
            (Array.mapi
               (fun j i ->
                 let a, b, _ = parts.(j) in
                 let _, _, w, _ = mm.(i) in
                 (a, b, w))
               act)
        in
        let sels =
          Mx.select_many ~widths:aws ctx
            (Array.mapi
               (fun j i ->
                 let a, b, _ = parts.(j) in
                 let _, is_min, _, _ = mm.(i) in
                 if is_min then (lts.(j), b, a) else (lts.(j), a, b))
               act)
        in
        Array.iteri
          (fun j i ->
            let _, _, rest = parts.(j) in
            cur.(i) <-
              (match rest with
              | Some r -> Share.append sels.(j) r
              | None -> sels.(j)))
          act
      done;
      cur
    end
  in
  let mmi = ref 0 in
  let cols =
    List.map
      (fun st ->
        match st with
        | `Sum' (a, w, signed, si) ->
            (a.dst, Column.of_shared ~signed ~width:w conv.(si))
        | `Avg' (a, ws, si, ci) ->
            let q, _ = Orq_circuits.Divide.udiv ctx ~w:ws conv.(si) conv.(ci) in
            (a.dst, Column.of_shared ~width:ws q)
        | `Minmax (a, _, w, _) ->
            let v = mm_vals.(!mmi) in
            incr mmi;
            (a.dst, Column.of_shared ~width:w v))
      staged
  in
  Table.of_columns ctx (t.Table.name ^ "_agg")
    ~valid:(Share.public ctx Share.Bool 1 1)
    cols

(** Broadcast the single row of [scalar] (e.g. a global aggregate) as a new
    constant column of [t] — a local share replication. *)
let with_scalar (t : Table.t) ~(scalar : Table.t) ~(src : string)
    ~(dst : string) : Table.t =
  let c = Table.find scalar src in
  if Column.length c <> 1 then invalid_arg "with_scalar: not a scalar";
  let data =
    Share.map_vectors
      (fun vk -> Array.make (Table.nrows t) vk.(0))
      (Column.data c)
  in
  Table.set_col t dst (Column.with_data c data)

(* ------------------------------------------------------------------ *)
(* Joins                                                               *)
(* ------------------------------------------------------------------ *)

type join_agg = Joinagg.agg_spec = {
  a_src : string;
  a_dst : string;
  a_func : Aggnet.func;
  a_width : int;
}

(* The public shape of a join node, handed to the cost-based operator
   selection (Joincost): cardinalities and widths only. *)
let join_shape (left : Table.t) (right : Table.t) ~(on : string list)
    ~(copy : string list) ~(aggs : bool) ~(bounded : bool)
    ~(variant : Joincost.variant) : Joincost.shape =
  let keys_w =
    List.map (fun k -> max (Table.width left k) (Table.width right k)) on
  in
  let pay_w =
    List.filter_map
      (fun (name, c) ->
        if List.mem name on then None else Some c.Column.width)
      right.Table.cols
  in
  {
    Joincost.j_n = Table.nrows left;
    j_m = Table.nrows right;
    j_key_w = keys_w;
    j_copy_w = List.map (fun c -> Table.width left c) copy;
    j_pay_w = pay_w;
    j_aggs = aggs;
    j_bounded = bounded;
    j_variant = variant;
  }

(** INNER JOIN (one-to-many: [left] must have unique keys — pre-aggregate
    first for many-to-many, §3.6). [copy] propagates left columns into the
    matching right rows. The physical operator — sort-based
    join-aggregation, LINQ-style linear join, or the quadratic baseline —
    is chosen per node by the {!Joincost} cost model (override with
    [ORQ_JOIN]). *)
let inner_join ?copy ?aggs ?trim (left : Table.t) (right : Table.t)
    ~(on : string list) : Table.t =
  let ctx = Table.ctx left in
  let has_aggs = match aggs with Some (_ :: _) -> true | _ -> false in
  let shape =
    join_shape left right ~on
      ~copy:(Option.value copy ~default:[])
      ~aggs:has_aggs
      ~bounded:(trim = Some `Always)
      ~variant:Joincost.J_inner
  in
  let node =
    Printf.sprintf "%s \xe2\x8b\x88 %s" left.Table.name right.Table.name
  in
  parked
    (match Joincost.choose_logged ctx ~node shape with
    | Joincost.Linear -> Linjoin.join ctx `Inner ?copy ~left ~right ~on ()
    | Joincost.Quad -> Linjoin.quad ctx ?copy ~left ~right ~on ()
    | Joincost.Sort ->
        Joinagg.join ctx Joinagg.V_inner ?copy ?aggs ?trim ~left ~right ~on ())

let left_outer_join ?copy ?aggs (left : Table.t) (right : Table.t)
    ~(on : string list) : Table.t =
  parked
    (Joinagg.join (Table.ctx left) Joinagg.V_left_outer ?copy ?aggs ~left
       ~right ~on ())

let right_outer_join ?copy ?aggs (left : Table.t) (right : Table.t)
    ~(on : string list) : Table.t =
  parked
    (Joinagg.join (Table.ctx left) Joinagg.V_right_outer ?copy ?aggs ~left
       ~right ~on ())

let full_outer_join ?copy ?aggs (left : Table.t) (right : Table.t)
    ~(on : string list) : Table.t =
  parked
    (Joinagg.join (Table.ctx left) Joinagg.V_full_outer ?copy ?aggs ~left
       ~right ~on ())

(** Unique-key inner join (Appendix C): both sides' keys are unique in the
    public schema, so the aggregation network is skipped — an oblivious
    PSI-style join bounded by min(|L|, |R|). Used for the SecretFlow
    comparison, whose join requires unique keys. *)
let inner_join_unique ?copy ?trim (left : Table.t) (right : Table.t)
    ~(on : string list) : Table.t =
  parked (Joinagg.join_unique (Table.ctx left) ?copy ?trim ~left ~right ~on ())

(** COUNT(DISTINCT over) per group: DISTINCT on (keys, over) followed by a
    grouped count — the §3.6 pattern ORQ uses to evaluate count-distinct
    over many-to-many joins without materializing them. *)
let count_distinct (t : Table.t) ~(keys : string list) ~(over : string list)
    ~(dst : string) : Table.t =
  let d = distinct t (keys @ over) in
  aggregate d ~keys
    ~aggs:[ { src = List.hd (keys @ over); dst; fn = Count } ]

(** THETA JOIN (§3.4): a conjunctive predicate containing at least one
    equality — the equalities bound the output size and drive the
    join-aggregation operator; the remaining conditions become an oblivious
    filter over the joined table. *)
let theta_join ?copy ?aggs ?trim (left : Table.t) (right : Table.t)
    ~(on : string list) ~(theta : Expr.pred) : Table.t =
  filter (inner_join ?copy ?aggs ?trim left right ~on) theta

(** SEMI JOIN — keep left rows that match some right row. Implemented as
    the swapped inner join of Appendix C.1, then projected back to the
    left schema. Handles duplicates on both sides. *)
let semi_join ?trim (left : Table.t) (right : Table.t) ~(on : string list) :
    Table.t =
  let ctx = Table.ctx left in
  let right' = Table.project right on in
  let shape =
    join_shape right' left ~on ~copy:[] ~aggs:false
      ~bounded:(trim = Some `Always) ~variant:Joincost.J_semi
  in
  let node =
    Printf.sprintf "%s \xe2\x8b\x89 %s" left.Table.name right.Table.name
  in
  let joined =
    (* the linear operator needs no unique-key contract here: with no copy
       columns only membership in the build side matters, and duplicate
       build keys share one fingerprint *)
    match Joincost.choose_logged ctx ~node shape with
    | Joincost.Linear -> Linjoin.join ctx `Inner ~left:right' ~right:left ~on ()
    | Joincost.Quad | Joincost.Sort ->
        Joinagg.join ctx Joinagg.V_inner ?trim ~left:right' ~right:left ~on ()
  in
  parked (Table.rename (Table.project joined (Table.col_names left)) left.Table.name)

(** ANTI JOIN — keep left rows with no match in right (swapped right-outer
    with cross-table valid propagation, Appendix C.1). *)
let anti_join ?trim (left : Table.t) (right : Table.t) ~(on : string list) :
    Table.t =
  let ctx = Table.ctx left in
  let right' = Table.project right on in
  let shape =
    join_shape right' left ~on ~copy:[] ~aggs:false
      ~bounded:(trim = Some `Always) ~variant:Joincost.J_anti
  in
  let node =
    Printf.sprintf "%s \xe2\x96\xb7 %s" left.Table.name right.Table.name
  in
  let joined =
    match Joincost.choose_logged ctx ~node shape with
    | Joincost.Linear -> Linjoin.join ctx `Anti ~left:right' ~right:left ~on ()
    | Joincost.Quad | Joincost.Sort ->
        Joinagg.join ctx Joinagg.V_anti ?trim ~left:right' ~right:left ~on ()
  in
  parked (Table.rename (Table.project joined (Table.col_names left)) left.Table.name)

(* ------------------------------------------------------------------ *)
(* Set operations                                                      *)
(* ------------------------------------------------------------------ *)

(** UNION ALL of tables with identical schemas. *)
let concat_tables (a : Table.t) (b : Table.t) : Table.t =
  if Table.col_names a <> Table.col_names b then
    invalid_arg "concat_tables: schema mismatch";
  Table.of_columns (Table.ctx a) a.Table.name
    ~valid:(Share.append a.Table.valid b.Table.valid)
    (List.map
       (fun (n, ca) ->
         let cb = Table.find b n in
         let joined = Column.append ca cb in
         ( n,
           {
             joined with
             Column.width = max ca.Column.width cb.Column.width;
             signed = ca.Column.signed || cb.Column.signed;
           } ))
       a.Table.cols)
