(** Cost-based physical join selection (DESIGN.md, "Cost-based physical
    planning").

    The engine carries three physical equi-join operators — the sort-based
    join-aggregation ({!Joinagg}, §3.3), the LINQ-style linear join
    ({!Linjoin}) and the quadratic oblivious baseline — and this module is
    the planner that picks between them: closed-form (rounds, bits,
    messages) estimates per candidate as a function of {b public shape
    only} (protocol kind, input cardinalities, column widths), compared as
    modeled network time under the active pacing profile.

    Because every input is public shape, the choice is a deterministic
    function of (kind, shape, mode, profile): the transcript certifier's
    shape-twin run selects the same operator as the measured run, and the
    recorded transcripts stay event-identical. The estimates are planning
    costs — ordering-faithful, not byte-exact; the certifier remains the
    ground truth for exactness.

    The [ORQ_JOIN] environment variable (auto|sort|linear|quad) forces an
    operator or restores automatic selection; [ORQ_JOIN_PROFILE]
    (lan|wan|geo|local) sets the pacing regime costs are compared under. *)

open Orq_proto
module Comm = Orq_net.Comm
module Netsim = Orq_net.Netsim

type op = Sort | Linear | Quad

val op_label : op -> string
val op_of_label : string -> op option

type mode = Auto | Force of op

val mode_label : mode -> string

val mode_of_label : string -> mode option
(** "auto" | "sort" | "linear" | "quad". *)

val mode : unit -> mode
(** The active selection mode (initially from [ORQ_JOIN], default
    [Auto]). *)

val set_mode : mode -> unit

val profile : unit -> Netsim.profile
(** The pacing profile candidate costs are compared under (initially from
    [ORQ_JOIN_PROFILE], default LAN). *)

val set_profile : Netsim.profile -> unit

val cache_tag : unit -> string
(** ["<mode>:<profile>"] — the physical-plan component of the service's
    plan-cache key: two configurations that could pick different physical
    joins for the same SQL never alias to one cached response. *)

type variant = J_inner | J_semi | J_anti | J_outer

val variant_label : variant -> string

type shape = {
  j_n : int;  (** build-side (left) physical rows *)
  j_m : int;  (** probe-side (right) physical rows *)
  j_key_w : int list;  (** per-key widths, already maxed across sides *)
  j_copy_w : int list;  (** widths of left columns copied into matches *)
  j_pay_w : int list;  (** widths of the probe side's non-key columns *)
  j_aggs : bool;  (** the node carries fused aggregations *)
  j_bounded : bool;
      (** the caller requires the output bounded by the probe cardinality
          (an explicit [trim:`Always]) — rules out the materializing
          quadratic operator *)
  j_variant : variant;
}
(** The public shape of one join node — everything the cost forms are
    allowed to see. *)

val applicable : Ctx.t -> shape -> op -> bool
(** Whether an operator can implement this node: [Linear] needs an
    inner/semi/anti variant with no fused aggregations, a composite key
    that packs into one ring word, and nonempty inputs; [Quad] is the
    inner-only materializing baseline, capped at 2^18 candidate pairs
    (beyond that the n*m blowup — which also inflates every downstream
    operator's input — is physically impractical); [Sort] implements
    everything. *)

val predict : Ctx.t -> shape -> op -> Comm.tally
(** Closed-form cost of running the node with [op], including a modeled
    downstream surcharge proportional to the operator's output
    cardinality (what makes the quadratic join's n·m output pay for the
    rows it forces every later operator to process). *)

val seconds : Comm.tally -> float
(** Modeled network time of a tally under the active profile. *)

val choose : Ctx.t -> shape -> op
(** The selection rule: a forced mode wins when applicable (falling back
    to [Sort] when not); [Auto] takes the cheapest applicable candidate
    under {!seconds}. *)

(** {2 Decision log}

    Each executed join node records which operator ran and what every
    candidate was predicted to cost — the observable half of the
    cost-based decision ([orq_cli query --explain], bench JSON). The log
    is per-domain, so concurrent service workers never interleave. *)

type decision = {
  jd_node : string;  (** "left⋈right" *)
  jd_shape : shape;
  jd_chosen : op;
  jd_forced : bool;  (** chosen by a forced mode, not by price *)
  jd_cands : (op * Comm.tally * float) list;
      (** every applicable candidate with its predicted tally and modeled
          seconds under the active profile *)
}

val reset_log : unit -> unit
val log : unit -> decision list

val choose_logged : Ctx.t -> node:string -> shape -> op
(** {!choose} plus a log record — what {!Dataflow}'s join operators call
    once per node, immediately before executing the winner. *)

val log_fallback : Ctx.t -> node:string -> shape -> unit
(** Record a join outside the tractable class (duplicate keys on both
    sides) that bypassed selection for the baseline quadratic operator —
    logged as a forced [Quad] decision so explain output stays
    complete. *)
