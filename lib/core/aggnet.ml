(** The aggregation network (§3.1, Protocol 1; correctness in Appendix C.2).

    A Hillis–Steele doubling network over a table sorted on its grouping
    key: at distance d, every row pair (i, i+d) with equal keys combines its
    values into row i+d. After ceil(log2 n) doublings, copy-style functions
    have propagated the *first* row of each group into all its rows, and
    self-decomposable functions (sum, min, max, ...) have accumulated the
    whole group into its *last* row — O(n log n) work, O(log n) rounds.

    Several aggregation functions run in the same control flow, reusing the
    per-level group-boundary bits (the paper's multi-function optimization);
    functions may also use the *extended* key set (group key plus the
    table-id column) for the valid-bit propagation of the join operator.

    The network pads to a power of two with invalid rows, exactly like the
    engine the paper describes (the padding is what produces the Q12
    scaling outlier in Figure 8); padded rows carry key 0 with validity 0
    and can never merge with a valid group because the validity bit is part
    of every aggregation key. *)

open Orq_proto
module Compare = Orq_circuits.Compare
module Mux = Orq_circuits.Mux
module Convert = Orq_circuits.Convert

type func =
  | Copy  (** propagate the group's first row downward (f(x, y) = x) *)
  | Sum  (** running sum; group total lands in the last row *)
  | Min of int  (** running minimum of the given width *)
  | Max of int
  | Custom of (Ctx.t -> Share.shared -> Share.shared -> Share.shared)
      (** pairwise combine [f ctx upper lower] on boolean shares *)

type keyset = Group | Group_and_tid
    (** which key set guards the function: the aggregation key K_a, or the
        extended K_s = K_a + table-id used for valid-bit propagation *)

type spec = {
  col : Share.shared;
  func : func;
  keys : keyset;
  width : int;  (** logical bit width of the column (metering) *)
}

(* Split a column into the upper rows [0, n-d) and lower rows [d, n). *)
let slices s d =
  let n = Share.length s in
  (Share.sub_range s 0 (n - d), Share.sub_range s d (n - d))

(** [run ctx ~keys ?tid specs] executes the aggregation network over a
    table already sorted on [keys] (which must include the validity
    column). [tid] supplies the table-id column for [Group_and_tid]
    functions. Returns the updated columns in the order of [specs]. *)
let run (ctx : Ctx.t) ~(keys : (Share.shared * int) list)
    ?(tid : Share.shared option) (specs : spec list) : Share.shared list =
  let n = Share.length (fst (List.hd keys)) in
  let n2 = Orq_util.Ring.next_pow2 n in
  let extra = n2 - n in
  let pad s = if extra = 0 then s else Share.append s (Share.public ctx s.Share.enc extra 0) in
  let keys = List.map (fun (k, w) -> (pad k, w)) keys in
  let tid = Option.map pad tid in
  let needs_tid = List.exists (fun sp -> sp.keys = Group_and_tid) specs in
  if needs_tid && tid = None then invalid_arg "Aggnet.run: tid column required";
  let cols = ref (List.map (fun sp -> pad sp.col) specs) in
  let d = ref 1 in
  while !d < n2 do
    let dd = !d in
    let m = n2 - dd in
    (* group-boundary bit over the aggregation keys *)
    let b_group =
      Compare.eq_composite ctx
        (List.map
           (fun (k, w) ->
             let u, l = slices k dd in
             (u, l, w))
           keys)
    in
    let b_ext =
      if needs_tid then
        match tid with
        | Some t ->
            let u, l = slices t dd in
            Some (Mpc.band ~width:1 ctx b_group (Compare.eq ctx ~w:1 u l))
        | None -> None
      else None
    in
    (* arithmetic view of the boundary bit, shared by all Sum functions *)
    let b_arith = lazy (Convert.bit_b2a ctx b_group) in
    let b_of = function
      | Group -> b_group
      | Group_and_tid -> Option.get b_ext
    in
    (* collect boolean-mux updates so they share one round *)
    let mux_batch = ref [] in
    let push_mux b lower g width =
      mux_batch := (b, lower, g, width) :: !mux_batch;
      `Mux (List.length !mux_batch - 1)
    in
    let updates =
      List.map2
        (fun sp col ->
          let upper, lower = slices col dd in
          match sp.func with
          | Copy -> push_mux (b_of sp.keys) lower upper sp.width
          | Sum ->
              Share.check_enc Arith col;
              (* lower + b * upper : local once b is arithmetic *)
              `Direct (Mpc.add lower (Mpc.mul ctx (Lazy.force b_arith) upper))
          | Min w ->
              let lt = Compare.lt ctx ~w upper lower in
              let smaller = Mux.mux_b ~width:w ctx lt lower upper in
              push_mux (b_of sp.keys) lower smaller w
          | Max w ->
              let lt = Compare.lt ctx ~w upper lower in
              let larger = Mux.mux_b ~width:w ctx lt upper lower in
              push_mux (b_of sp.keys) lower larger w
          | Custom f ->
              let g = f ctx upper lower in
              push_mux (b_of sp.keys) lower g sp.width)
        specs !cols
    in
    (* one batched round for all boolean muxes of this level *)
    let batched = Array.of_list (List.rev !mux_batch) in
    let mux_results =
      if Array.length batched = 0 then [||]
      else begin
        (* all conditions have the same length m; batch under one AND *)
        let conds = Array.to_list (Array.map (fun (b, _, _, _) -> b) batched) in
        let olds = Array.to_list (Array.map (fun (_, o, _, _) -> o) batched) in
        let news = Array.to_list (Array.map (fun (_, _, g, _) -> g) batched) in
        let width =
          Array.fold_left (fun acc (_, _, _, w) -> max acc w) 1 batched
        in
        let exts = List.map Mpc.extend_bit conds in
        let diffs = List.map2 Mpc.xor olds news in
        let anded =
          Mpc.band ~width ctx (Share.concat exts) (Share.concat diffs)
        in
        Array.of_list
          (List.mapi
             (fun i o -> Mpc.xor o (Share.sub_range anded (i * m) m))
             olds)
      end
    in
    cols :=
      List.map2
        (fun upd col ->
          let head = Share.sub_range col 0 dd in
          let new_lower =
            match upd with
            | `Direct s -> s
            | `Mux i -> mux_results.(i)
          in
          Share.append head new_lower)
        updates !cols;
    d := !d * 2
  done;
  List.map (fun c -> Share.sub_range c 0 n) !cols

(** Mark the first row of each group in a table sorted on [keys]:
    bit i = 1 iff row i differs from row i-1 (row 0 always 1). This is the
    oblivious DISTINCT of §3.1. *)
let distinct_bits (ctx : Ctx.t) ~(keys : (Share.shared * int) list) :
    Share.shared =
  let n = Share.length (fst (List.hd keys)) in
  if n = 1 then Share.public ctx Share.Bool 1 1
  else
    let eq =
      Compare.eq_composite ctx
        (List.map
           (fun (k, w) ->
             (Share.sub_range k 0 (n - 1), Share.sub_range k 1 (n - 1), w))
           keys)
    in
    Share.append (Share.public ctx Share.Bool 1 1) (Mpc.xor_pub eq 1)

(** Mark the last row of each group (the row holding the group aggregate
    after {!run}). *)
let last_of_group_bits (ctx : Ctx.t) ~(keys : (Share.shared * int) list) :
    Share.shared =
  let n = Share.length (fst (List.hd keys)) in
  if n = 1 then Share.public ctx Share.Bool 1 1
  else
    let eq =
      Compare.eq_composite ctx
        (List.map
           (fun (k, w) ->
             (Share.sub_range k 0 (n - 1), Share.sub_range k 1 (n - 1), w))
           keys)
    in
    Share.append (Mpc.xor_pub eq 1) (Share.public ctx Share.Bool 1 1)
