(** The aggregation network (§3.1, Protocol 1; correctness in Appendix C.2).

    A Hillis–Steele doubling network over a table sorted on its grouping
    key: at distance d, every row pair (i, i+d) with equal keys combines its
    values into row i+d. After ceil(log2 n) doublings, copy-style functions
    have propagated the *first* row of each group into all its rows, and
    self-decomposable functions (sum, min, max, ...) have accumulated the
    whole group into its *last* row — O(n log n) work, O(log n) rounds.

    Several aggregation functions run in the same control flow, reusing the
    per-level group-boundary bits (the paper's multi-function optimization);
    functions may also use the *extended* key set (group key plus the
    table-id column) for the valid-bit propagation of the join operator.

    The network pads to a power of two with invalid rows, exactly like the
    engine the paper describes (the padding is what produces the Q12
    scaling outlier in Figure 8); padded rows carry key 0 with validity 0
    and can never merge with a valid group because the validity bit is part
    of every aggregation key. *)

open Orq_proto
module Compare = Orq_circuits.Compare
module Mux = Orq_circuits.Mux
module Convert = Orq_circuits.Convert

type func =
  | Copy  (** propagate the group's first row downward (f(x, y) = x) *)
  | Sum  (** running sum; group total lands in the last row *)
  | Min of int  (** running minimum of the given width *)
  | Max of int
  | Custom of (Ctx.t -> Share.shared -> Share.shared -> Share.shared)
      (** pairwise combine [f ctx upper lower] on boolean shares *)

type keyset = Group | Group_and_tid
    (** which key set guards the function: the aggregation key K_a, or the
        extended K_s = K_a + table-id used for valid-bit propagation *)

type spec = {
  col : Share.shared;
  func : func;
  keys : keyset;
  width : int;  (** logical bit width of the column (metering) *)
}

(* Split a column into the upper rows [0, n-d) and lower rows [d, n). *)
let slices s d =
  let n = Share.length s in
  (Share.sub_range s 0 (n - d), Share.sub_range s d (n - d))

(** [run ctx ~keys ?tid specs] executes the aggregation network over a
    table already sorted on [keys] (which must include the validity
    column). [tid] supplies the table-id column for [Group_and_tid]
    functions. Returns the updated columns in the order of [specs]. *)
let run (ctx : Ctx.t) ~(keys : (Share.shared * int) list)
    ?(tid : Share.shared option) (specs : spec list) : Share.shared list =
  Ctx.with_label ctx "aggnet" @@ fun () ->
  let n = Share.length (fst (List.hd keys)) in
  let n2 = Orq_util.Ring.next_pow2 n in
  let extra = n2 - n in
  let pad s = if extra = 0 then s else Share.append s (Share.public ctx s.Share.enc extra 0) in
  let keys = List.map (fun (k, w) -> (pad k, w)) keys in
  let tid = Option.map pad tid in
  let needs_tid = List.exists (fun sp -> sp.keys = Group_and_tid) specs in
  if needs_tid && tid = None then invalid_arg "Aggnet.run: tid column required";
  let cols = ref (List.map (fun sp -> pad sp.col) specs) in
  let levels =
    let rec go d acc = if d < n2 then go (2 * d) (d :: acc) else List.rev acc in
    Array.of_list (go 1 [])
  in
  let nlev = Array.length levels in
  (* Pre-pass: the group-boundary bits of every doubling level depend only
     on the key (and tid) columns, which the network never modifies — so
     all levels' equality ladders run as one fused lockstep batch, the tid
     conjunctions as one round, and the arithmetic views (needed by Sum
     functions) as one fused opening, instead of paying each level's
     ladder sequentially. Only the value propagation is level-ordered. *)
  let key_groups =
    Array.map
      (fun dd ->
        List.map
          (fun (k, w) ->
            let u, l = slices k dd in
            (u, l, w))
          keys)
      levels
  in
  let all_groups =
    match tid with
    | Some t when needs_tid ->
        Array.append key_groups
          (Array.map
             (fun dd ->
               let u, l = slices t dd in
               [ (u, l, 1) ])
             levels)
    | _ -> key_groups
  in
  (* all group-boundary bits live in packed flag lanes: the equality
     ladders deliver them packed, the tid conjunction is a packed AND and
     Sum's bit conversion consumes the packed lanes directly *)
  let bits = Compare.eq_composite_many_f ctx all_groups in
  let b_groups = Array.sub bits 0 nlev in
  let b_exts =
    if needs_tid then
      Some (Mpc.band_f_many ctx b_groups (Array.sub bits nlev nlev))
    else None
  in
  let has_sum =
    List.exists (fun sp -> match sp.func with Sum -> true | _ -> false) specs
  in
  let b_ariths =
    if has_sum then Convert.bit_b2a_flags_many ctx b_groups else [||]
  in
  Array.iteri (fun li dd ->
    let b_group = b_groups.(li) in
    let b_ext = Option.map (fun a -> a.(li)) b_exts in
    let b_of = function
      | Group -> b_group
      | Group_and_tid -> Option.get b_ext
    in
    let specs_a = Array.of_list specs in
    let cols_a = Array.of_list !cols in
    let ns = Array.length specs_a in
    (* Phase 1 — pairwise pre-combination. All Sum multiplications fuse
       into one round; all Min/Max specs share one fused comparison ladder
       and one fused selection round. *)
    let direct = Array.make ns None in
    let sum_idx =
      Array.of_list
        (List.filter_map
           (fun i -> match specs_a.(i).func with Sum -> Some i | _ -> None)
           (List.init ns Fun.id))
    in
    if Array.length sum_idx > 0 then begin
      Array.iter (fun i -> Share.check_enc Arith cols_a.(i)) sum_idx;
      let b = b_ariths.(li) in
      (* charge each product at its column's logical width: the boundary
         bit is 0/1 and the value fits in spec.width bits, so defaulting
         to ell would overcharge every Sum level *)
      let prods =
        Mpc.mul_many
          ~widths:(Array.map (fun i -> specs_a.(i).width) sum_idx)
          ctx
          (Array.map (fun _ -> b) sum_idx)
          (Array.map (fun i -> fst (slices cols_a.(i) dd)) sum_idx)
      in
      Array.iteri
        (fun j i ->
          let _, lower = slices cols_a.(i) dd in
          direct.(i) <- Some (Mpc.add lower prods.(j)))
        sum_idx
    end;
    let pre = Array.make ns None in
    let pre_width = Array.make ns 1 in
    let mm =
      Array.of_list
        (List.filter_map
           (fun i ->
             match specs_a.(i).func with
             | Min w -> Some (i, true, w)
             | Max w -> Some (i, false, w)
             | _ -> None)
           (List.init ns Fun.id))
    in
    if Array.length mm > 0 then begin
      let ws = Array.map (fun (_, _, w) -> w) mm in
      let lts =
        Compare.lt_many ctx
          (Array.map
             (fun (i, _, w) ->
               let u, l = slices cols_a.(i) dd in
               (u, l, w))
             mm)
      in
      let combined =
        Mux.select_many ~widths:ws ctx
          (Array.mapi
             (fun j (i, is_min, _) ->
               let u, l = slices cols_a.(i) dd in
               (* min = lt ? upper : lower; max = lt ? lower-side pick *)
               if is_min then (lts.(j), l, u) else (lts.(j), u, l))
             mm)
      in
      Array.iteri
        (fun j (i, _, w) ->
          pre.(i) <- Some combined.(j);
          pre_width.(i) <- w)
        mm
    end;
    Array.iteri
      (fun i sp ->
        let upper, lower = slices cols_a.(i) dd in
        match sp.func with
        | Copy ->
            pre.(i) <- Some upper;
            pre_width.(i) <- sp.width
        | Custom f ->
            pre.(i) <- Some (f ctx upper lower);
            pre_width.(i) <- sp.width
        | Sum | Min _ | Max _ -> ())
      specs_a;
    (* Phase 2 — boundary muxes: one fused round at per-lane widths *)
    let bm =
      Array.of_list
        (List.filter_map
           (fun i -> Option.map (fun g -> (i, g)) pre.(i))
           (List.init ns Fun.id))
    in
    let bm_res =
      Mux.select_flags_many
        ~widths:(Array.map (fun (i, _) -> pre_width.(i)) bm)
        ctx
        (Array.map
           (fun (i, g) ->
             let _, lower = slices cols_a.(i) dd in
             (b_of specs_a.(i).keys, lower, g))
           bm)
    in
    let new_lower = Array.make ns None in
    Array.iteri (fun j (i, _) -> new_lower.(i) <- Some bm_res.(j)) bm;
    Array.iteri (fun i d -> if d <> None then new_lower.(i) <- d) direct;
    cols :=
      Array.to_list
        (Array.mapi
           (fun i col ->
             let head = Share.sub_range col 0 dd in
             Share.append head (Option.get new_lower.(i)))
           cols_a))
    levels;
  List.map (fun c -> Share.sub_range c 0 n) !cols

(** Mark the first row of each group in a table sorted on [keys]:
    bit i = 1 iff row i differs from row i-1 (row 0 always 1). This is the
    oblivious DISTINCT of §3.1. *)
let distinct_bits (ctx : Ctx.t) ~(keys : (Share.shared * int) list) :
    Share.shared =
  let n = Share.length (fst (List.hd keys)) in
  if n = 1 then Share.public ctx Share.Bool 1 1
  else
    let eq =
      Compare.eq_composite ctx
        (List.map
           (fun (k, w) ->
             (Share.sub_range k 0 (n - 1), Share.sub_range k 1 (n - 1), w))
           keys)
    in
    Share.append (Share.public ctx Share.Bool 1 1) (Mpc.xor_pub eq 1)

(** Mark the last row of each group (the row holding the group aggregate
    after {!run}). *)
let last_of_group_bits (ctx : Ctx.t) ~(keys : (Share.shared * int) list) :
    Share.shared =
  let n = Share.length (fst (List.hd keys)) in
  if n = 1 then Share.public ctx Share.Bool 1 1
  else
    let eq =
      Compare.eq_composite ctx
        (List.map
           (fun (k, w) ->
             (Share.sub_range k 0 (n - 1), Share.sub_range k 1 (n - 1), w))
           keys)
    in
    Share.append (Mpc.xor_pub eq 1) (Share.public ctx Share.Bool 1 1)
