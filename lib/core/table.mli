(** Secret-shared relational tables (§3.1): named shared columns plus the
    special validity column of secret-shared bits. Operators never delete
    rows — they invalidate them — so the physical row count (the only
    quantity a computing party observes) depends only on public input
    sizes. Invalid rows are masked and shuffled before any opening. *)

open Orq_proto

type t = {
  ctx : Ctx.t;
  name : string;
  cols : (string * Column.t) list;
  valid : Share.shared;  (** boolean single-bit validity column *)
  nrows : int;
}

val ctx : t -> Ctx.t
val nrows : t -> int
val col_names : t -> string list

val find : t -> string -> Column.t
(** @raise Invalid_argument naming the available columns if absent. *)

val width : t -> string -> int
val column : t -> string -> Share.shared
val mem : t -> string -> bool

val create :
  Ctx.t -> string -> ?valid:int array -> (string * int * int array) list -> t
(** Data-owner-side construction from plaintext columns
    (name, bit width, values); all rows valid unless a validity vector is
    supplied. *)

val of_columns :
  Ctx.t -> string -> valid:Share.shared -> (string * Column.t) list -> t

val rename : t -> string -> t
val set_col : t -> string -> Column.t -> t
val drop_cols : t -> string list -> t

val project : t -> string list -> t
(** PROJECT: keep only the named columns (validity is always kept). *)

val rename_col : t -> from:string -> into:string -> t

val take_rows : t -> int -> t
(** Restrict to the first [k] physical rows (public change; LIMIT). *)

val pad_rows : t -> int -> t
(** Data-owner padding (§3.1): append invalid zero-valued dummy rows,
    hiding the true input cardinality. *)

val park : t -> unit
(** Park every data column into budget-managed chunks (streaming operator
    boundary; no-op when already parked). Validity stays monolithic. *)

val and_valid : t -> Share.shared -> t
(** AND a predicate bit-vector into the validity column (the oblivious
    filter: physical size unchanged, selectivity hidden). *)

val reveal : t -> (string * int array) list
(** Open to the analyst: invalid rows are masked to zero and the table
    shuffled before opening, so only valid rows carry information (their
    order is destroyed — re-sort plaintext locally if needed). *)

val peek : t -> (string * int array) list * int array
(** Test-only: reconstruct all columns and validity bits directly. *)

val valid_rows_sorted : t -> string list -> int list list
(** Test-only canonical form: the multiset of valid rows over the named
    columns, sorted. *)
