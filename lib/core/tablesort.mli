(** TableSort (§3.2, Protocol 2): sort a table on a composite key without
    re-sorting every column per key — per-key sorting permutations are
    extracted (least-significant key first), composed, and applied to all
    columns once. Single-key sorts take a fast path carrying every column
    through the base sort. Signed key columns sort via the
    order-preserving sign-bit flip. *)

open Orq_proto

type order = Asc | Desc

val sort_cols :
  Ctx.t -> keys:(Share.shared * int * order) list -> Share.shared list ->
  Share.shared list * Share.shared list
(** Sort rows lexicographically by the key columns (width and direction
    each); returns (sorted keys, sorted others). *)

val sort_cols_c :
  Ctx.t -> keys:(Share.chunked * int * order) list -> Share.chunked list ->
  Share.chunked list * Share.chunked list
(** Chunked {!sort_cols}: columns stream chunk-at-a-time; wire cost
    identical. *)

val sort :
  ?lead:(Share.shared * int * order) list -> Table.t ->
  (string * order) list -> Table.t
(** Sort a table by named columns; [lead] prepends extra key columns
    (e.g. the validity bit). Runs on the chunked core — parked columns
    stream, live columns are single zero-copy chunks with identical
    values, PRG order and metering. *)
