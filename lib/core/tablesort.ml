(** TableSort (§3.2, Protocol 2): sort a table on a composite key without
    re-sorting every column for every key.

    Sorting permutations are extracted per key column (least-significant
    key first, so per-key stability composes into lexicographic order),
    composed right-to-left as elementwise permutations, and the final
    permutation is applied to all columns of the table once. A single-key
    sort takes the fast path of carrying every column through the base sort
    directly — no extraction or inversion needed. *)

open Orq_proto
module Sortwrap = Orq_sort.Sortwrap
module Permops = Orq_shuffle.Permops

type order = Asc | Desc

let to_dir = function Asc -> Sortwrap.Asc | Desc -> Sortwrap.Desc

(** [sort_cols ctx ~keys others] sorts rows lexicographically by the key
    columns (each with width and direction); returns (sorted keys, sorted
    others). *)
let sort_cols (ctx : Ctx.t) ~(keys : (Share.shared * int * order) list)
    (others : Share.shared list) : Share.shared list * Share.shared list =
  match keys with
  | [] -> invalid_arg "Tablesort.sort_cols: no keys"
  | [ (k, w, o) ] ->
      let k', others' = Sortwrap.sort ctx ~dir:(to_dir o) ~w k others in
      ([ k' ], others')
  | _ ->
      (* compose sorting permutations from the least-significant key *)
      let pi = ref None in
      List.iter
        (fun (k, w, o) ->
          let t =
            match !pi with
            | None -> k
            | Some p -> Permops.apply_elementwise ~width:w ctx k p
          in
          let _, _, sigma =
            Sortwrap.sort_with_perm ctx ~dir:(to_dir o) ~w t []
          in
          pi :=
            Some
              (match !pi with
              | None -> sigma
              | Some p -> Permops.compose ctx p sigma))
        (List.rev keys);
      let p = Option.get !pi in
      let key_cols = List.map (fun (k, _, _) -> k) keys in
      let nk = List.length key_cols in
      let all = Permops.apply_elementwise_table ctx (key_cols @ others) p in
      (Orq_sort.Quicksort.take nk all, Orq_sort.Quicksort.drop nk all)

(** Chunked {!sort_cols}: key/other columns stream chunk-at-a-time through
    the base sort and the final table-wide permutation application. The
    multi-key sigma-extraction pipeline works one monolithic key column at
    a time (a bounded single-column working set); wire cost is identical
    to {!sort_cols} in both shapes. *)
let sort_cols_c (ctx : Ctx.t) ~(keys : (Share.chunked * int * order) list)
    (others : Share.chunked list) : Share.chunked list * Share.chunked list =
  match keys with
  | [] -> invalid_arg "Tablesort.sort_cols: no keys"
  | [ (k, w, o) ] ->
      let k', others' = Sortwrap.sort_c ctx ~dir:(to_dir o) ~w k others in
      ([ k' ], others')
  | _ ->
      (* compose sorting permutations from the least-significant key *)
      let pi = ref None in
      List.iter
        (fun (k, w, o) ->
          let km = Share.unpark k in
          let t =
            match !pi with
            | None -> km
            | Some p -> Permops.apply_elementwise ~width:w ctx km p
          in
          let _, _, sigma =
            Sortwrap.sort_with_perm ctx ~dir:(to_dir o) ~w t []
          in
          pi :=
            Some
              (match !pi with
              | None -> sigma
              | Some p -> Permops.compose ctx p sigma))
        (List.rev keys);
      let p = Option.get !pi in
      let key_cols = List.map (fun (k, _, _) -> k) keys in
      let nk = List.length key_cols in
      let all = Permops.apply_elementwise_table_c ctx (key_cols @ others) p in
      (Orq_sort.Quicksort.take nk all, Orq_sort.Quicksort.drop nk all)

(** Sort a whole table by named columns; [lead] prepends extra key columns
    (e.g. the validity bit) ahead of the named ones. Runs on the chunked
    core: parked columns stream chunk-at-a-time, live columns flow through
    as single zero-copy chunks with values, PRG order and metering
    identical to the pre-chunking engine. *)
let sort ?(lead : (Share.shared * int * order) list = []) (t : Table.t)
    (specs : (string * order) list) : Table.t =
  let ctx = Table.ctx t in
  (* signed key columns sort correctly after the order-preserving
     two's-complement -> unsigned map (flip the sign bit); the flip is
     undone on the sorted output *)
  let flip_of name =
    let c = Table.find t name in
    if c.Column.signed then 1 lsl (c.Column.width - 1) else 0
  in
  (* chunked boolean view; arithmetic columns convert monolithically *)
  let chunked_bool c =
    match Column.enc c with
    | Share.Bool -> Column.chunked c
    | Share.Arith -> Share.wrap (Column.as_bool ctx c)
  in
  let flip_c f ck =
    if f = 0 then ck else Share.map_chunks (fun s -> Mpc.xor_pub s f) ck
  in
  let keys =
    List.map (fun (s, w, o) -> (Share.wrap s, w, o)) lead
    @ List.map
        (fun (name, o) ->
          let c = Table.find t name in
          (flip_c (flip_of name) (chunked_bool c), c.Column.width, o))
        specs
  in
  let key_names = List.map fst specs in
  let others =
    List.filter_map
      (fun (n, c) ->
        if List.mem n key_names then None else Some (n, chunked_bool c))
      t.Table.cols
  in
  let sorted_keys, sorted_others =
    sort_cols_c ctx ~keys (Share.wrap t.Table.valid :: List.map snd others)
  in
  let nlead = List.length lead in
  let sorted_named = Orq_sort.Quicksort.drop nlead sorted_keys in
  (* parked in, parked out: tracked results stay chunked *)
  let recol c (res : Share.chunked) =
    if Share.chunked_tracked res then
      Column.of_chunked ~signed:c.Column.signed ~width:c.Column.width res
    else Column.with_data c (Share.unpark res)
  in
  match sorted_others with
  | valid' :: rest ->
      let cols' =
        List.map
          (fun (n, c) ->
            match List.assoc_opt n (List.combine key_names sorted_named) with
            | Some data -> (n, recol c (flip_c (flip_of n) data))
            | None ->
                let data =
                  List.assoc n (List.combine (List.map fst others) rest)
                in
                (n, recol c data))
          t.Table.cols
      in
      { t with Table.cols = cols'; valid = Share.unpark valid' }
  | [] -> assert false
