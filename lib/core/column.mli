(** Table columns: a secret-shared vector plus its logical bit width and
    signedness. Stored boolean-encoded by default (filters, sorts, joins
    and distinct are comparison-shaped), converted to arithmetic sharing
    on demand, mirroring §2.3's dual representation. A [signed] column
    holds two's-complement values at its width. *)

open Orq_proto

type t = { data : Share.shared; width : int; signed : bool }

val length : t -> int
val enc : t -> Share.enc
val of_plaintext : Ctx.t -> width:int -> int array -> t
val of_public : Ctx.t -> width:int -> int array -> t
val of_shared : ?signed:bool -> width:int -> Share.shared -> t

val as_bool : Ctx.t -> t -> Share.shared
(** Boolean view (identity for boolean-encoded columns). *)

val as_arith : Ctx.t -> t -> Share.shared
(** Arithmetic view, honouring the column's signedness. *)

val reconstruct : t -> Orq_util.Vec.t
val gather : t -> int array -> t
val sub_range : t -> int -> int -> t
val append : t -> t -> t
