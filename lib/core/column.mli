(** Table columns: a secret-shared vector plus its logical bit width and
    signedness. Stored boolean-encoded by default (filters, sorts, joins
    and distinct are comparison-shaped), converted to arithmetic sharing
    on demand, mirroring §2.3's dual representation. A [signed] column
    holds two's-complement values at its width.

    The payload is either [Live] (monolithic {!Share.shared}) or [Parked]
    (budget-managed {!Orq_util.Chunkvec} chunks, evictable to disk);
    {!data} materializes, {!chunked} gives the streaming view under which
    a live column is a single zero-copy chunk. *)

open Orq_proto

type repr = Live of Share.shared | Parked of Share.chunked

type t = { mutable repr : repr; width : int; signed : bool }

val length : t -> int
val enc : t -> Share.enc
val of_plaintext : Ctx.t -> width:int -> int array -> t
val of_public : Ctx.t -> width:int -> int array -> t
val of_shared : ?signed:bool -> width:int -> Share.shared -> t
val of_chunked : ?signed:bool -> width:int -> Share.chunked -> t

val data : t -> Share.shared
(** The monolithic sharing (materializes and caches a parked payload). *)

val with_data : t -> Share.shared -> t
(** Payload replacement preserving width/signedness. *)

val chunked : t -> Share.chunked
(** Chunked view; a live column becomes one zero-copy untracked chunk. *)

val is_parked : t -> bool

val park : t -> unit
(** Move a live payload into budget-managed chunks in place. *)

val as_bool : Ctx.t -> t -> Share.shared
(** Boolean view (identity for boolean-encoded columns). *)

val as_arith : Ctx.t -> t -> Share.shared
(** Arithmetic view, honouring the column's signedness. *)

val reconstruct : t -> Orq_util.Vec.t
val gather : t -> int array -> t
val sub_range : t -> int -> int -> t
val append : t -> t -> t
