(** Secret-shared relational tables (§3.1).

    A table is an ordered set of named shared columns plus the special
    *validity column* of secret-shared bits: operators never delete rows,
    they invalidate them, so the number of physical rows — the only quantity
    a computing party observes — depends only on public input sizes.
    Invalid rows are masked and shuffled before any opening. *)

open Orq_proto

type t = {
  ctx : Ctx.t;
  name : string;
  cols : (string * Column.t) list;
  valid : Share.shared;  (** boolean single-bit validity column *)
  nrows : int;
}

let ctx t = t.ctx
let nrows t = t.nrows
let col_names t = List.map fst t.cols

let find t name =
  match List.assoc_opt name t.cols with
  | Some c -> c
  | None ->
      invalid_arg
        (Printf.sprintf "table %s has no column %s (has: %s)" t.name name
           (String.concat ", " (col_names t)))

let width t name = (find t name).Column.width
let column t name = Column.data (find t name)

let mem t name = List.mem_assoc name t.cols

(** Data-owner-side table construction from plaintext columns. All rows are
    initially valid unless a validity vector is supplied (padding). *)
let create (ctx : Ctx.t) name ?(valid : int array option)
    (cols : (string * int * int array) list) : t =
  let nrows =
    match cols with
    | (_, _, v) :: _ -> Array.length v
    | [] -> invalid_arg "Table.create: no columns"
  in
  let valid_bits =
    match valid with Some v -> v | None -> Array.make nrows 1
  in
  {
    ctx;
    name;
    cols =
      List.map
        (fun (n, w, v) ->
          if Array.length v <> nrows then
            invalid_arg ("Table.create: ragged column " ^ n);
          (n, Column.of_plaintext ctx ~width:w v))
        cols;
    valid = Share.share ctx Bool valid_bits;
    nrows;
  }

let of_columns (ctx : Ctx.t) name ~(valid : Share.shared)
    (cols : (string * Column.t) list) : t =
  let nrows = Share.length valid in
  List.iter
    (fun (n, c) ->
      if Column.length c <> nrows then
        invalid_arg ("Table.of_columns: ragged column " ^ n))
    cols;
  { ctx; name; cols; valid; nrows }

let rename t name = { t with name }

let set_col t name (c : Column.t) : t =
  if mem t name then
    { t with cols = List.map (fun (n, c0) -> (n, if n = name then c else c0)) t.cols }
  else { t with cols = t.cols @ [ (name, c) ] }

let drop_cols t names =
  { t with cols = List.filter (fun (n, _) -> not (List.mem n names)) t.cols }

(** PROJECT: keep only the named columns (validity is always kept). *)
let project t names =
  {
    t with
    cols = List.map (fun n -> (n, find t n)) names;
  }

let rename_col t ~from ~into =
  { t with cols = List.map (fun (n, c) -> ((if n = from then into else n), c)) t.cols }

(** Restrict to the first [k] physical rows (public row-count change; used
    by LIMIT after an ORDER BY that floated valid rows to the top). *)
let take_rows t k =
  let k = min k t.nrows in
  {
    t with
    cols = List.map (fun (n, c) -> (n, Column.sub_range c 0 k)) t.cols;
    valid = Share.sub_range t.valid 0 k;
    nrows = k;
  }

(** Data-owner padding (§3.1): append [extra] dummy (invalid, zero-valued)
    rows, hiding the true input cardinality from everyone — including the
    computing parties, since validity bits are secret-shared. *)
let pad_rows (t : t) extra : t =
  if extra <= 0 then t
  else
    {
      t with
      cols =
        List.map
          (fun (n, c) ->
            let pad =
              Column.of_shared ~signed:c.Column.signed ~width:c.Column.width
                (Share.public t.ctx (Column.enc c) extra 0)
            in
            (* Column.append reuses a parked column's chunks *)
            (n, Column.append c pad))
          t.cols;
      valid = Share.append t.valid (Share.public t.ctx Share.Bool extra 0);
      nrows = t.nrows + extra;
    }

(** Park every data column into budget-managed chunks (a streaming
    operator boundary; no-op for already-parked columns). The validity
    column stays monolithic — it is a single bit per row. *)
let park (t : t) : unit = List.iter (fun (_, c) -> Column.park c) t.cols

(** AND a predicate bit-vector into the validity column (oblivious filter:
    physical size unchanged, selectivity hidden). Both operands are
    single-bit, so the conjunction runs through the packed flag kernel. *)
let and_valid t (bit : Share.shared) =
  { t with valid = Mpc.band1 t.ctx t.valid bit }

(* ------------------------------------------------------------------ *)
(* Opening results to the analyst                                      *)
(* ------------------------------------------------------------------ *)

(** Open the table to the analyst: invalid rows are masked to zero and the
    table is shuffled before opening (§3.1), so only the valid result rows
    carry information. Returns the valid rows as plaintext columns. *)
let reveal (t : t) : (string * int array) list =
  let ctx = t.ctx in
  Ctx.with_label ctx "reveal" @@ fun () ->
  let ext = Mpc.extend_bit t.valid in
  let names = List.map fst t.cols in
  let datas = List.map (fun (_, c) -> Column.as_bool ctx c) t.cols in
  let masked =
    match datas with
    | [] -> []
    | _ ->
        let n = t.nrows in
        let exts = List.map (fun _ -> ext) datas in
        let all = Mpc.band ctx (Share.concat exts) (Share.concat datas) in
        List.mapi (fun i _ -> Share.sub_range all (i * n) n) datas
  in
  let shuffled = Orq_shuffle.Permops.shuffle_table ctx (t.valid :: masked) in
  match shuffled with
  | [] -> []
  | v :: cols ->
      let vbits = Mpc.open_ ~width:1 ctx v in
      let opened = List.map (fun c -> Mpc.open_ ctx c) cols in
      let keep = ref [] in
      Array.iteri (fun i b -> if b = 1 then keep := i :: !keep) vbits;
      let keep = Array.of_list (List.rev !keep) in
      List.map2
        (fun name c -> (name, Array.map (fun i -> c.(i)) keep))
        names opened

(** Test-only: reconstruct all columns and the validity bits without the
    masking/shuffling/opening protocol (no party could do this). *)
let peek (t : t) : (string * int array) list * int array =
  ( List.map (fun (n, c) -> (n, Column.reconstruct c)) t.cols,
    Share.reconstruct t.valid )

(** Test-only: the multiset of valid rows, each row restricted to [names],
    sorted — a canonical form for comparing against a reference engine. *)
let valid_rows_sorted (t : t) (names : string list) : int list list =
  let cols, v = peek t in
  let rows = ref [] in
  for i = 0 to t.nrows - 1 do
    if v.(i) = 1 then
      rows := List.map (fun n -> (List.assoc n cols).(i)) names :: !rows
  done;
  List.sort compare !rows
