(** LINQ-style linear-complexity oblivious join (PAPERS.md; DESIGN.md,
    "Cost-based physical planning").

    Where {!Joinagg} is sort-bound — O((n+m) log (n+m)) comparison ladders
    — this operator matches build and probe rows by opening keyed {e
    fingerprints} of the join keys after masking invalid rows with fresh
    randomness and routing each side through an independent random
    shuffle: O(n+m) secure work (a bit conversion, four multiplication
    lanes, two shuffles, one opening), then plaintext hash matching on the
    opened fingerprints.

    Declared leakage (registered in {!Declass}): the opened fingerprint
    multisets reveal the key-multiplicity histogram of each side's valid
    rows and the cross-side match structure — behind independent uniform
    shuffles and a per-query secret fingerprint key, exactly the LINQ
    leakage profile. {!Joincost} prices it; callers needing the
    zero-leakage operator keep {!Joinagg}.

    Contract mirrors {!Joinagg.join}'s inner/anti paths: the build (left)
    side has unique join keys among its valid rows; output is the probe
    (right) side's physical rows in a fresh shuffled order, schema
    [keys @ right-non-key @ copy], name ["left_join_right"]. *)

open Orq_proto

val packable : Ctx.t -> left:Table.t -> right:Table.t -> on:string list -> bool
(** Whether the composite key packs into one ring word (sum of maxed key
    widths <= ell - 1) — the operator's applicability bound. *)

val join :
  Ctx.t ->
  [ `Inner | `Anti ] ->
  ?copy:string list ->
  left:Table.t ->
  right:Table.t ->
  on:string list ->
  unit ->
  Table.t
(** [`Inner]: probe rows valid iff valid and matched by a valid build row
    (which is then unique); [copy] names build columns gathered into the
    matching probe rows. [`Anti]: probe rows valid iff valid and
    unmatched ([copy] must be empty). Metered under the ["linjoin"]
    label. *)

val quad :
  Ctx.t ->
  ?copy:string list ->
  left:Table.t ->
  right:Table.t ->
  on:string list ->
  unit ->
  Table.t
(** The quadratic oblivious inner join as an in-class physical candidate:
    materializes all n x m pairs, one composite equality ladder and two
    validity ANDs — no openings, no leakage, n x m output rows. Same
    output schema as [join `Inner]; metered under ["quadjoin"]. *)
