(** Expression combinators for filters and derived columns (§2.2),
    compiled into oblivious circuit evaluations. Numeric subexpressions
    track bit width and signedness; comparisons switch to the signed
    comparator when needed, sign-extending narrower boolean operands
    locally. *)

open Orq_proto

type num =
  | Col of string
  | Const of int
  | Add of num * num
  | Sub of num * num
  | Mul of num * num
  | Div of num * num  (** private divisor: non-restoring circuit *)
  | Div_pub of num * int  (** public divisor *)
  | If of pred * num * num  (** oblivious CASE WHEN (multiplexed) *)

and pred =
  | Cmp of [ `Eq | `Neq | `Lt | `Le | `Gt | `Ge ] * num * num
  | And of pred * pred
  | Or of pred * pred
  | Not of pred
  | True

(** {2 Convenience constructors} *)

val col : string -> num
val const : int -> num
val ( +! ) : num -> num -> num
val ( -! ) : num -> num -> num
val ( *! ) : num -> num -> num
val ( /! ) : num -> num -> num
val ( ==. ) : num -> num -> pred
val ( <>. ) : num -> num -> pred
val ( <. ) : num -> num -> pred
val ( <=. ) : num -> num -> pred
val ( >. ) : num -> num -> pred
val ( >=. ) : num -> num -> pred
val ( &&. ) : pred -> pred -> pred
val ( ||. ) : pred -> pred -> pred
val not_ : pred -> pred

(** {2 Evaluation} *)

type value = { data : Share.shared; width : int; signed : bool }

val cap_width : int -> int

val sign_extend : Share.shared -> from_w:int -> to_w:int -> Share.shared
(** Local two's-complement sign extension of a boolean sharing. *)

val eval_num : Table.t -> num -> value
val eval_pred : Table.t -> pred -> Share.shared
(** A single-bit sharing of the predicate per row. *)

val eval_col : Table.t -> num -> Column.t
(** Evaluate into a fresh boolean-encoded column. *)
