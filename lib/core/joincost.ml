(** Cost-based physical join selection — see the interface for the
    contract. The closed forms below are planning estimates built from the
    same per-primitive lane costs the metering layer charges (one
    multiplication round, one opening, one sharded-permutation pass); they
    only ever see public shape, so selection is a deterministic function
    of (protocol, shape, mode, profile) and the transcript certifier's
    shape-twin run picks the same operator as the measured run.

    The estimates are ordering-faithful rather than byte-exact: the sort
    estimate models TableSort + aggregation network at the leading-term
    level, and every candidate pays a modeled downstream surcharge of one
    oblivious pass over its output rows — which is what stops the
    quadratic join's n·m output from looking cheap at the node while
    poisoning every operator after it. *)

open Orq_proto
module Comm = Orq_net.Comm
module Netsim = Orq_net.Netsim
module Ring = Orq_util.Ring

type op = Sort | Linear | Quad

let op_label = function Sort -> "sort" | Linear -> "linear" | Quad -> "quad"

let op_of_label = function
  | "sort" -> Some Sort
  | "linear" -> Some Linear
  | "quad" -> Some Quad
  | _ -> None

type mode = Auto | Force of op

let mode_label = function Auto -> "auto" | Force o -> op_label o

let mode_of_label s =
  match String.lowercase_ascii (String.trim s) with
  | "auto" | "" -> Some Auto
  | s -> Option.map (fun o -> Force o) (op_of_label s)

let mode_of_env () =
  match Sys.getenv_opt "ORQ_JOIN" with
  | None -> Auto
  | Some s -> (
      match mode_of_label s with
      | Some m -> m
      | None ->
          Printf.eprintf
            "[orq] ignoring ORQ_JOIN=%S (want auto|sort|linear|quad)\n%!" s;
          Auto)

let profile_of_env () =
  match Sys.getenv_opt "ORQ_JOIN_PROFILE" with
  | Some "wan" -> Netsim.wan
  | Some "geo" -> Netsim.geo
  | Some "local" -> Netsim.local
  | _ -> Netsim.lan

let the_mode = ref (mode_of_env ())
let the_profile = ref (profile_of_env ())
let mode () = !the_mode
let set_mode m = the_mode := m
let profile () = !the_profile
let set_profile p = the_profile := p

let cache_tag () =
  Printf.sprintf "%s:%s" (mode_label !the_mode) !the_profile.Netsim.label

type variant = J_inner | J_semi | J_anti | J_outer

let variant_label = function
  | J_inner -> "inner"
  | J_semi -> "semi"
  | J_anti -> "anti"
  | J_outer -> "outer"

type shape = {
  j_n : int;
  j_m : int;
  j_key_w : int list;
  j_copy_w : int list;
  j_pay_w : int list;
  j_aggs : bool;
  j_bounded : bool;
  j_variant : variant;
}

(* ------------------------------------------------------------------ *)
(* Per-primitive lane costs (the metering layer's charges)             *)
(* ------------------------------------------------------------------ *)

let sum = List.fold_left ( + ) 0

let tally ~rounds ~bits ~messages =
  { Comm.t_rounds = rounds; t_bits = bits; t_messages = messages }

let ( ++ ) (a : Comm.tally) (b : Comm.tally) =
  {
    Comm.t_rounds = a.Comm.t_rounds + b.Comm.t_rounds;
    t_bits = a.Comm.t_bits + b.Comm.t_bits;
    t_messages = a.Comm.t_messages + b.Comm.t_messages;
  }

let scale k (a : Comm.tally) =
  {
    Comm.t_rounds = k * a.Comm.t_rounds;
    t_bits = k * a.Comm.t_bits;
    t_messages = k * a.Comm.t_messages;
  }

let hash_bits = 256 (* Mal-HM digest size, matches Mpc.hash_bits *)

(* One fused multiplication/AND round over n elements of w bits. *)
let mul_t kind ~w ~n =
  match kind with
  | Ctx.Sh_dm -> tally ~rounds:1 ~bits:(4 * w * n) ~messages:2
  | Ctx.Sh_hm -> tally ~rounds:1 ~bits:(3 * w * n) ~messages:3
  | Ctx.Mal_hm -> tally ~rounds:1 ~bits:(12 * w * n) ~messages:12

(* One opening round over n elements of w bits. *)
let open_t kind ~w ~n =
  match kind with
  | Ctx.Sh_dm -> tally ~rounds:1 ~bits:(2 * w * n) ~messages:2
  | Ctx.Sh_hm -> tally ~rounds:1 ~bits:(3 * w * n) ~messages:3
  | Ctx.Mal_hm ->
      tally ~rounds:1 ~bits:(4 * ((w * n) + hash_bits)) ~messages:8

(* One sharded-permutation application over n elements of w bits
   (Table 1 totals). *)
let shuffle_t kind ~w ~n =
  match kind with
  | Ctx.Sh_dm -> tally ~rounds:2 ~bits:(2 * w * n) ~messages:2
  | Ctx.Sh_hm -> tally ~rounds:3 ~bits:(6 * w * n) ~messages:6
  | Ctx.Mal_hm -> tally ~rounds:4 ~bits:(24 * w * n) ~messages:12

(* The equality ladder over w-bit keys: XOR locally then a logarithmic
   OR-fold — lg w rounds at halving stride widths (≈ w total bits). *)
let eq_t kind ~w ~n =
  let t = ref (tally ~rounds:0 ~bits:0 ~messages:0) in
  let s = ref (Ring.next_pow2 w / 2) in
  while !s > 0 do
    t := !t ++ mul_t kind ~w:(max 1 !s) ~n;
    s := !s / 2
  done;
  !t

(* ------------------------------------------------------------------ *)
(* Candidate operator estimates                                        *)
(* ------------------------------------------------------------------ *)

(* One TableSort pass over n rows keyed on kw bits carrying cw payload
   bits per row: the initial shuffle of keys + payload + index, the
   logarithmic partition levels (comparison ladder plus the opened
   post-shuffle comparison flags), and the two-pass elementwise
   permutation application that routes the payload (Protocol 5). *)
let sort_pass (ctx : Ctx.t) ~n ~kw ~cw =
  if n <= 1 then tally ~rounds:0 ~bits:0 ~messages:0
  else begin
    let kind = ctx.Ctx.kind in
    let ln = max 1 (Ring.log2_ceil n) in
    let lvl =
      (* a less-than ladder over the composite key plus the shuffled
         comparison-bit opening of one quicksort level *)
      mul_t kind ~w:kw ~n
      ++ scale (Ring.log2_ceil (max 2 kw)) (mul_t kind ~w:(max 1 (kw / 2)) ~n:(2 * n))
      ++ open_t kind ~w:1 ~n
    in
    shuffle_t kind ~w:(kw + cw + ctx.Ctx.perm_bits) ~n
    ++ scale ln lvl
    ++ scale 2 (shuffle_t kind ~w:(cw + ctx.Ctx.perm_bits) ~n)
    ++ open_t kind ~w:ctx.Ctx.perm_bits ~n
  end

(* Trimming heuristic, mirroring Joinagg.should_trim. *)
let trims (ctx : Ctx.t) ~n ~m =
  let omega = 2 * ctx.Ctx.ell in
  3 * ctx.Ctx.parties * m < n * Ring.log2_ceil n * Ring.log2_ceil omega

(* Modeled downstream surcharge: one oblivious sort-shaped pass (shuffle
   plus, per halving level, a full-width multiply and the comparison
   ladder) over the rows this operator hands to the rest of the plan —
   what the aggregation/ordering that follows a join actually costs to
   first order. Identical formula for every candidate — only the output
   cardinality differs; this is what makes the quadratic join's n·m
   output pay for the rows it forces every later operator to process. *)
let downstream (ctx : Ctx.t) ~rows ~width =
  if rows <= 0 then tally ~rounds:0 ~bits:0 ~messages:0
  else
    let kind = ctx.Ctx.kind in
    let ell = ctx.Ctx.ell in
    let ln = max 1 (Ring.log2_ceil rows) in
    shuffle_t kind ~w:width ~n:rows
    ++ scale ln
         (mul_t kind ~w:ell ~n:rows
         ++ scale (Ring.log2_ceil ell) (mul_t kind ~w:(ell / 2) ~n:(2 * rows)))

let out_width (s : shape) =
  sum s.j_key_w + sum s.j_copy_w + sum s.j_pay_w + 1

(* The sort-based join-aggregation (Protocol 3): TableSort over n+m rows
   on (V_LR, keys, Tid), the DISTINCT equality ladder, the per-variant
   validity AND, one aggregation network level per lg(n+m), and the
   optional single-bit trim sort. *)
let sort_estimate (ctx : Ctx.t) (s : shape) =
  let kind = ctx.Ctx.kind in
  let n = s.j_n + s.j_m in
  let wk = sum s.j_key_w in
  let cw = sum s.j_copy_w + sum s.j_pay_w + 1 in
  let ln = max 1 (Ring.log2_ceil n) in
  let net_level =
    (* one aggregation-network level: group-equality ladder plus the
       copy/valid multiplexes over the carried columns *)
    eq_t kind ~w:(wk + 1) ~n ++ mul_t kind ~w:(sum s.j_copy_w + 1) ~n
  in
  let base =
    sort_pass ctx ~n ~kw:(wk + 2) ~cw
    ++ eq_t kind ~w:(wk + 1) ~n (* DISTINCT bits *)
    ++ mul_t kind ~w:1 ~n (* validity rule *)
    ++ scale ln net_level
  in
  let trimmed = trims ctx ~n:s.j_n ~m:s.j_m in
  let base =
    if trimmed then base ++ sort_pass ctx ~n ~kw:1 ~cw:(out_width s) else base
  in
  let rows_out = if trimmed then s.j_m else n in
  base ++ downstream ctx ~rows:rows_out ~width:(out_width s)

(* The linear join: fused bit conversions, the keyed-fingerprint rounds,
   two independent table shuffles (rounds fused) and one fused opening of
   both fingerprint columns — mirrors Linjoin.join step by step. *)
let linear_estimate (ctx : Ctx.t) (s : shape) =
  let kind = ctx.Ctx.kind and ell = ctx.Ctx.ell in
  let n = s.j_n and m = s.j_m in
  let nm = n + m in
  let wk = max 1 (sum s.j_key_w) in
  let conv =
    (* b2a of the packed keys fused with bit_b2a of the validity bits *)
    let a = open_t kind ~w:1 ~n:(wk * nm) and b = open_t kind ~w:1 ~n:nm in
    tally ~rounds:1 ~bits:(a.Comm.t_bits + b.Comm.t_bits)
      ~messages:(a.Comm.t_messages + b.Comm.t_messages)
  in
  let fingerprint =
    (* one fused round of [x·r; t·u], then two keyed squarings *)
    mul_t kind ~w:ell ~n:(2 * nm) ++ scale 2 (mul_t kind ~w:ell ~n:nm)
  in
  let build_cols = 1 + List.length s.j_copy_w in
  let probe_cols = 2 + List.length s.j_key_w + List.length s.j_pay_w in
  let shuffles =
    let a = shuffle_t kind ~w:ell ~n:(build_cols * n)
    and b = shuffle_t kind ~w:ell ~n:(probe_cols * m) in
    (* independent permutations: traffic adds, rounds overlap *)
    tally ~rounds:a.Comm.t_rounds ~bits:(a.Comm.t_bits + b.Comm.t_bits)
      ~messages:(a.Comm.t_messages + b.Comm.t_messages)
  in
  let opening =
    let a = open_t kind ~w:ell ~n and b = open_t kind ~w:ell ~n:m in
    tally ~rounds:1 ~bits:(a.Comm.t_bits + b.Comm.t_bits)
      ~messages:(a.Comm.t_messages + b.Comm.t_messages)
  in
  conv ++ fingerprint ++ shuffles ++ opening
  ++ downstream ctx ~rows:m ~width:(out_width s)

(* The quadratic baseline: the composite-equality ladder over all n·m
   pairs plus the two validity ANDs — and an n·m-row output that every
   later operator pays for. *)
let quad_estimate (ctx : Ctx.t) (s : shape) =
  let kind = ctx.Ctx.kind in
  let p = max 1 (s.j_n * s.j_m) in
  let wk = max 1 (sum s.j_key_w) in
  eq_t kind ~w:wk ~n:p
  ++ scale 2 (mul_t kind ~w:1 ~n:p)
  ++ downstream ctx ~rows:p ~width:(out_width s)

let predict ctx (s : shape) = function
  | Sort -> sort_estimate ctx s
  | Linear -> linear_estimate ctx s
  | Quad -> quad_estimate ctx s

let seconds t = Netsim.network_time !the_profile t

(* ------------------------------------------------------------------ *)
(* Applicability and selection                                         *)
(* ------------------------------------------------------------------ *)

(* The quadratic operator materializes all n*m candidate pairs; past
   this many pairs the blowup is physically impractical (and cascades:
   its output inflates every downstream operator's input), so larger
   nodes are simply outside its applicability class. *)
let quad_cap = 1 lsl 18

let applicable (ctx : Ctx.t) (s : shape) = function
  | Sort -> true
  | Linear ->
      (* needs: a variant the operator implements, no fused aggregations,
         a composite key that packs into one ring word (the fingerprint
         domain), and nonempty sides (the shuffles need rows) *)
      (match s.j_variant with
      | J_inner | J_semi | J_anti -> true
      | J_outer -> false)
      && (not s.j_aggs)
      && sum s.j_key_w <= ctx.Ctx.ell - 1
      && s.j_n > 0 && s.j_m > 0
  | Quad ->
      s.j_variant = J_inner && (not s.j_aggs) && (not s.j_bounded)
      && s.j_n > 0 && s.j_m > 0
      && s.j_n * s.j_m <= quad_cap

let candidates ctx (s : shape) =
  List.filter_map
    (fun op ->
      if applicable ctx s op then
        let t = predict ctx s op in
        Some (op, t, seconds t)
      else None)
    [ Sort; Linear; Quad ]

let cheapest cands =
  match cands with
  | [] -> Sort
  | (op0, _, s0) :: rest ->
      let op, _ =
        List.fold_left
          (fun (bop, bs) (op, _, sec) ->
            if sec < bs then (op, sec) else (bop, bs))
          (op0, s0) rest
      in
      op

let choose ctx (s : shape) =
  match !the_mode with
  | Force op when applicable ctx s op -> op
  | Force _ -> Sort
  | Auto -> cheapest (candidates ctx s)

(* ------------------------------------------------------------------ *)
(* Decision log (per-domain: service workers never interleave)         *)
(* ------------------------------------------------------------------ *)

type decision = {
  jd_node : string;
  jd_shape : shape;
  jd_chosen : op;
  jd_forced : bool;
  jd_cands : (op * Comm.tally * float) list;
}

let dls_log : decision list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let reset_log () = Domain.DLS.get dls_log := []
let log () = List.rev !(Domain.DLS.get dls_log)

let choose_logged ctx ~node (s : shape) =
  let cands = candidates ctx s in
  let forced = match !the_mode with Force _ -> true | Auto -> false in
  let chosen =
    match !the_mode with
    | Force op when applicable ctx s op -> op
    | Force _ -> Sort
    | Auto -> cheapest cands
  in
  let r = Domain.DLS.get dls_log in
  r :=
    {
      jd_node = node;
      jd_shape = s;
      jd_chosen = chosen;
      jd_forced = forced;
      jd_cands = cands;
    }
    :: !r;
  chosen

let log_fallback ctx ~node (s : shape) =
  let t = quad_estimate ctx s in
  let r = Domain.DLS.get dls_log in
  r :=
    {
      jd_node = node;
      jd_shape = s;
      jd_chosen = Quad;
      jd_forced = true;
      jd_cands = [ (Quad, t, seconds t) ];
    }
    :: !r
