(** Table columns: a secret-shared vector plus its logical bit width and
    signedness.

    Columns are stored boolean-encoded by default — filters, sorts, joins
    and distinct are all comparison-shaped — and converted to arithmetic
    sharing on demand (sums, products, averages), mirroring §2.3's dual
    representation with on-the-fly conversion. A [signed] column holds
    two's-complement values at its width (e.g. a profit computed by
    subtraction); conversions and comparisons respect the flag. *)

open Orq_proto

type t = { data : Share.shared; width : int; signed : bool }

let length c = Share.length c.data
let enc c = c.data.Share.enc

let of_plaintext (ctx : Ctx.t) ~width (values : int array) : t =
  { data = Share.share ctx Bool values; width; signed = false }

let of_public (ctx : Ctx.t) ~width (values : int array) : t =
  { data = Share.public_vec ctx Bool values; width; signed = false }

let of_shared ?(signed = false) ~width data : t = { data; width; signed }

(** Boolean view of a column (identity for boolean-encoded columns). *)
let as_bool (ctx : Ctx.t) (c : t) : Share.shared =
  match c.data.Share.enc with
  | Bool -> c.data
  | Arith -> Orq_circuits.Convert.a2b ~w:c.width ctx c.data

(** Arithmetic view of a column, honouring its signedness. *)
let as_arith (ctx : Ctx.t) (c : t) : Share.shared =
  match c.data.Share.enc with
  | Arith -> c.data
  | Bool -> Orq_circuits.Convert.b2a ~w:c.width ~signed:c.signed ctx c.data

let reconstruct c = Share.reconstruct c.data

let gather c idx = { c with data = Share.gather c.data idx }
let sub_range c pos len = { c with data = Share.sub_range c.data pos len }
let append a b = { a with data = Share.append a.data b.data }
