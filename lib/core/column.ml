(** Table columns: a secret-shared vector plus its logical bit width and
    signedness.

    Columns are stored boolean-encoded by default — filters, sorts, joins
    and distinct are all comparison-shaped — and converted to arithmetic
    sharing on demand (sums, products, averages), mirroring §2.3's dual
    representation with on-the-fly conversion. A [signed] column holds
    two's-complement values at its width (e.g. a profit computed by
    subtraction); conversions and comparisons respect the flag.

    A column's payload lives in one of two representations: [Live] — the
    classic monolithic {!Share.shared}; [Parked] — chunks owned by the
    budget-managed {!Orq_util.Chunkvec} store, evictable to disk.
    {!data} materializes a parked column (and caches the result);
    chunk-aware operators use {!chunked}, under which a live column flows
    through as a single zero-copy chunk. *)

open Orq_proto

type repr = Live of Share.shared | Parked of Share.chunked

type t = { mutable repr : repr; width : int; signed : bool }

let length c =
  match c.repr with
  | Live s -> Share.length s
  | Parked ck -> Share.chunked_length ck

let enc c =
  match c.repr with
  | Live s -> s.Share.enc
  | Parked ck -> ck.Share.cenc

let of_plaintext (ctx : Ctx.t) ~width (values : int array) : t =
  { repr = Live (Share.share ctx Bool values); width; signed = false }

let of_public (ctx : Ctx.t) ~width (values : int array) : t =
  { repr = Live (Share.public_vec ctx Bool values); width; signed = false }

let of_shared ?(signed = false) ~width data : t =
  { repr = Live data; width; signed }

let of_chunked ?(signed = false) ~width ck : t =
  { repr = Parked ck; width; signed }

(** The monolithic sharing: materializes a parked column (caching the
    result, so repeated access pays the faults once). *)
let data c =
  match c.repr with
  | Live s -> s
  | Parked ck ->
      let s = Share.unpark ck in
      c.repr <- Live s;
      s

(** Functional payload replacement, preserving width/signedness. *)
let with_data c s = { c with repr = Live s }

(** Chunked view: a parked column's chunks, or a live column wrapped as a
    single untracked chunk (zero copy). *)
let chunked c =
  match c.repr with Parked ck -> ck | Live s -> Share.wrap s

let is_parked c = match c.repr with Parked _ -> true | Live _ -> false

(** Move a live column into budget-managed (evictable) chunks in place. *)
let park c =
  match c.repr with
  | Parked _ -> ()
  | Live s -> c.repr <- Parked (Share.park s)

(** Boolean view of a column (identity for boolean-encoded columns). *)
let as_bool (ctx : Ctx.t) (c : t) : Share.shared =
  match enc c with
  | Bool -> data c
  | Arith -> Orq_circuits.Convert.a2b ~w:c.width ctx (data c)

(** Arithmetic view of a column, honouring its signedness. *)
let as_arith (ctx : Ctx.t) (c : t) : Share.shared =
  match enc c with
  | Arith -> data c
  | Bool -> Orq_circuits.Convert.b2a ~w:c.width ~signed:c.signed ctx (data c)

let reconstruct c =
  match c.repr with
  | Live s -> Share.reconstruct s
  | Parked ck -> Share.reconstruct_c ck

let gather c idx =
  match c.repr with
  | Live s -> { c with repr = Live (Share.gather s idx) }
  | Parked ck -> { c with repr = Parked (Share.gather_c ck idx) }

let sub_range c pos len =
  match c.repr with
  | Live s -> { c with repr = Live (Share.sub_range s pos len) }
  | Parked ck -> { c with repr = Parked (Share.sub_range_c ck pos len) }

(* Appending parked columns reuses aligned chunks (refcounted) instead of
   copying, keeping incremental table building linear. *)
let append a b =
  match (a.repr, b.repr) with
  | Live sa, Live sb -> { a with repr = Live (Share.append sa sb) }
  | _ -> { a with repr = Parked (Share.append_c (chunked a) (chunked b)) }
