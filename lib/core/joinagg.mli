(** The composite oblivious join-aggregation operator (§3.3, Protocol 3;
    variants §3.4; correctness Appendix C; trimming heuristic C.3):
    concatenate, TableSort on (V_LR, keys, Tid), DISTINCT, per-variant
    validity rules, then one aggregation network for column copies,
    invalidation propagation, and fused decomposable aggregations. The
    left input must have unique join keys; many-to-many joins
    pre-aggregate first (§3.6, done by {!Dataflow}). *)

open Orq_proto

type variant =
  | V_inner
  | V_left_outer
      (** paper semantics (Appendix C.1): "an inner join, plus all rows
          from the left" — matched left rows also survive with NULL
          right-columns (unlike SQL LEFT JOIN) *)
  | V_right_outer
  | V_full_outer
  | V_anti  (** right-outer validity + cross-table valid propagation *)

type trim_mode = [ `Auto | `Always | `Never ]

type agg_spec = {
  a_src : string;  (** input column (from either table) *)
  a_dst : string;
  a_func : Aggnet.func;
  a_width : int;
}

val should_trim : Ctx.t -> left_n:int -> right_m:int -> bool
(** The C.3 heuristic: trim iff 3·α·N < lg L · lg ω, α = m/n. *)

val join :
  Ctx.t -> variant -> ?copy:string list -> ?aggs:agg_spec list ->
  ?trim:trim_mode -> left:Table.t -> right:Table.t -> on:string list ->
  unit -> Table.t
(** The full operator. [copy] names left columns to propagate into
    matching right rows; [aggs] are evaluated on the join-key groups
    (results in each group's last row). Inner/anti results are optionally
    trimmed to |right| rows. *)

val join_unique :
  Ctx.t -> ?copy:string list -> ?trim:trim_mode -> left:Table.t ->
  right:Table.t -> on:string list -> unit -> Table.t
(** Unique-key inner join (Appendix C): with unique keys on *both* sides
    the aggregation network is skipped — one adjacent-row multiplex, a
    PSI-style oblivious join bounded by min(|L|, |R|). *)
