(** Expression combinators for filters and derived columns (§2.2).

    Users build logical predicates and arithmetic expressions over named
    columns with ORQ's secure primitives; the engine compiles them into
    oblivious circuit evaluations. Numeric subexpressions track their
    logical bit width *and signedness*: subtraction yields signed
    (two's-complement) values, conversions interpret signed columns with a
    negatively weighted top bit, and comparisons switch to the signed
    comparator (sign-extending narrower boolean operands locally). *)

open Orq_proto

type num =
  | Col of string
  | Const of int
  | Add of num * num
  | Sub of num * num
  | Mul of num * num
  | Div of num * num  (** private divisor: non-restoring circuit *)
  | Div_pub of num * int  (** public divisor *)
  | If of pred * num * num  (** oblivious CASE WHEN: multiplexed, §3 *)

and pred =
  | Cmp of [ `Eq | `Neq | `Lt | `Le | `Gt | `Ge ] * num * num
  | And of pred * pred
  | Or of pred * pred
  | Not of pred
  | True

(* Convenience constructors *)
let col n = Col n
let const c = Const c
let ( +! ) a b = Add (a, b)
let ( -! ) a b = Sub (a, b)
let ( *! ) a b = Mul (a, b)
let ( /! ) a b = Div (a, b)
let ( ==. ) a b = Cmp (`Eq, a, b)
let ( <>. ) a b = Cmp (`Neq, a, b)
let ( <. ) a b = Cmp (`Lt, a, b)
let ( <=. ) a b = Cmp (`Le, a, b)
let ( >. ) a b = Cmp (`Gt, a, b)
let ( >=. ) a b = Cmp (`Ge, a, b)
let ( &&. ) a b = And (a, b)
let ( ||. ) a b = Or (a, b)
let not_ p = Not p

(* Evaluation produces a value with an encoding, width and signedness.
   Plain columns and constants stay in their stored (boolean) encoding so a
   filter like Col < Const costs only a comparison; genuine arithmetic is
   done on arithmetic shares. *)
type value = { data : Share.shared; width : int; signed : bool }

let cap_width w = min w (Orq_util.Ring.word_bits - 2)

let as_arith ctx (v : value) =
  match v.data.Share.enc with
  | Share.Arith -> v.data
  | Share.Bool ->
      Orq_circuits.Convert.b2a ~w:v.width ~signed:v.signed ctx v.data

(* Sign-extend a boolean sharing from [from_w] to [to_w] bits — local:
   replicate the top bit across the new high positions. *)
let sign_extend x ~from_w ~to_w =
  if from_w >= to_w then Mpc.and_mask x (Orq_util.Ring.mask to_w)
  else
    let sign = Mpc.and_mask (Mpc.rshift x (from_w - 1)) 1 in
    let hi =
      Orq_util.Ring.mask to_w land lnot (Orq_util.Ring.mask from_w)
    in
    Mpc.xor
      (Mpc.and_mask x (Orq_util.Ring.mask from_w))
      (Mpc.and_mask (Mpc.extend_bit sign) hi)

(* Boolean view of a value at a target width: arithmetic shares convert
   modulo 2^w (correct two's complement); narrower signed boolean operands
   are sign-extended. *)
let as_bool_at ctx (v : value) w =
  match v.data.Share.enc with
  | Share.Arith -> Orq_circuits.Convert.a2b ~w ctx v.data
  | Share.Bool ->
      if v.signed then sign_extend v.data ~from_w:v.width ~to_w:w
      else Mpc.and_mask v.data (Orq_util.Ring.mask w)

let rec eval_num (t : Table.t) (e : num) : value =
  let ctx = Table.ctx t in
  match e with
  | Col n ->
      let c = Table.find t n in
      { data = c.Column.data; width = c.Column.width; signed = c.Column.signed }
  | Const c ->
      let w = max 1 (Orq_util.Ring.log2_ceil (abs c + 1) + 1) in
      {
        data = Share.public ctx Share.Bool (Table.nrows t) (c land Orq_util.Ring.mask w);
        width = w;
        signed = c < 0;
      }
  | Add (a, b) ->
      let va = eval_num t a and vb = eval_num t b in
      let w = cap_width (1 + max va.width vb.width) in
      {
        data = Mpc.add (as_arith ctx va) (as_arith ctx vb);
        width = w;
        signed = va.signed || vb.signed;
      }
  | Sub (a, b) ->
      let va = eval_num t a and vb = eval_num t b in
      let w = cap_width (1 + max va.width vb.width) in
      {
        data = Mpc.sub (as_arith ctx va) (as_arith ctx vb);
        width = w;
        signed = true;
      }
  | Mul (a, b) ->
      let va = eval_num t a and vb = eval_num t b in
      let w = cap_width (va.width + vb.width) in
      {
        data = Mpc.mul ~width:w ctx (as_arith ctx va) (as_arith ctx vb);
        width = w;
        signed = va.signed || vb.signed;
      }
  | Div (a, b) ->
      let va = eval_num t a and vb = eval_num t b in
      let w = cap_width (max va.width vb.width) in
      let q, _ =
        Orq_circuits.Divide.udiv ctx ~w (as_bool_at ctx va w)
          (as_bool_at ctx vb w)
      in
      { data = q; width = w; signed = false }
  | Div_pub (a, d) ->
      let va = eval_num t a in
      let w = cap_width va.width in
      let q, _ =
        Orq_circuits.Divide.udiv_pub ctx ~w (as_bool_at ctx va w)
          (Array.make (Table.nrows t) d)
      in
      { data = q; width = w; signed = false }
  | If (p, a, b) ->
      let bit = eval_pred t p in
      let va = eval_num t a and vb = eval_num t b in
      let signed = va.signed || vb.signed in
      let w = cap_width (max va.width vb.width) in
      {
        data =
          Orq_circuits.Mux.mux_b ~width:w ctx bit (as_bool_at ctx vb w)
            (as_bool_at ctx va w);
        width = w;
        signed;
      }

and eval_pred (t : Table.t) (p : pred) : Share.shared =
  let ctx = Table.ctx t in
  match p with
  | True -> Share.public ctx Share.Bool (Table.nrows t) 1
  | Cmp (op, a, b) ->
      let va = eval_num t a and vb = eval_num t b in
      let w = max va.width vb.width in
      let signed = va.signed || vb.signed in
      let xa = as_bool_at ctx va w and xb = as_bool_at ctx vb w in
      let module C = Orq_circuits.Compare in
      (match op with
      | `Eq -> C.eq ctx ~w xa xb
      | `Neq -> C.neq ctx ~w xa xb
      | `Lt -> C.lt ~signed ctx ~w xa xb
      | `Le -> C.le ~signed ctx ~w xa xb
      | `Gt -> C.gt ~signed ctx ~w xa xb
      | `Ge -> C.ge ~signed ctx ~w xa xb)
  | And (a, b) ->
      Mpc.band ~width:1 ctx (eval_pred t a) (eval_pred t b)
  | Or (a, b) -> Mpc.bor ~width:1 ctx (eval_pred t a) (eval_pred t b)
  | Not a -> Mpc.xor_pub (eval_pred t a) 1

(** Evaluate a numeric expression into a fresh boolean-encoded column. *)
let eval_col (t : Table.t) (e : num) : Column.t =
  let v = eval_num t e in
  let ctx = Table.ctx t in
  let w = cap_width v.width in
  {
    Column.data = as_bool_at ctx v w;
    width = w;
    signed = v.signed;
  }
