(** Expression combinators for filters and derived columns (§2.2).

    Users build logical predicates and arithmetic expressions over named
    columns with ORQ's secure primitives; the engine compiles them into
    oblivious circuit evaluations. Numeric subexpressions track their
    logical bit width *and signedness*: subtraction yields signed
    (two's-complement) values, conversions interpret signed columns with a
    negatively weighted top bit, and comparisons switch to the signed
    comparator (sign-extending narrower boolean operands locally). *)

open Orq_proto

type num =
  | Col of string
  | Const of int
  | Add of num * num
  | Sub of num * num
  | Mul of num * num
  | Div of num * num  (** private divisor: non-restoring circuit *)
  | Div_pub of num * int  (** public divisor *)
  | If of pred * num * num  (** oblivious CASE WHEN: multiplexed, §3 *)

and pred =
  | Cmp of [ `Eq | `Neq | `Lt | `Le | `Gt | `Ge ] * num * num
  | And of pred * pred
  | Or of pred * pred
  | Not of pred
  | True

(* Convenience constructors *)
let col n = Col n
let const c = Const c
let ( +! ) a b = Add (a, b)
let ( -! ) a b = Sub (a, b)
let ( *! ) a b = Mul (a, b)
let ( /! ) a b = Div (a, b)
let ( ==. ) a b = Cmp (`Eq, a, b)
let ( <>. ) a b = Cmp (`Neq, a, b)
let ( <. ) a b = Cmp (`Lt, a, b)
let ( <=. ) a b = Cmp (`Le, a, b)
let ( >. ) a b = Cmp (`Gt, a, b)
let ( >=. ) a b = Cmp (`Ge, a, b)
let ( &&. ) a b = And (a, b)
let ( ||. ) a b = Or (a, b)
let not_ p = Not p

(* Evaluation produces a value with an encoding, width and signedness.
   Plain columns and constants stay in their stored (boolean) encoding so a
   filter like Col < Const costs only a comparison; genuine arithmetic is
   done on arithmetic shares. *)
type value = { data : Share.shared; width : int; signed : bool }

let cap_width w = min w (Orq_util.Ring.word_bits - 2)

let as_arith ctx (v : value) =
  match v.data.Share.enc with
  | Share.Arith -> v.data
  | Share.Bool ->
      Orq_circuits.Convert.b2a ~w:v.width ~signed:v.signed ctx v.data

(* Sign-extend a boolean sharing from [from_w] to [to_w] bits — local:
   replicate the top bit across the new high positions. *)
let sign_extend x ~from_w ~to_w =
  if from_w >= to_w then Mpc.and_mask x (Orq_util.Ring.mask to_w)
  else
    let sign = Mpc.and_mask (Mpc.rshift x (from_w - 1)) 1 in
    let hi =
      Orq_util.Ring.mask to_w land lnot (Orq_util.Ring.mask from_w)
    in
    Mpc.xor
      (Mpc.and_mask x (Orq_util.Ring.mask from_w))
      (Mpc.and_mask (Mpc.extend_bit sign) hi)

(* Boolean view of a value at a target width: arithmetic shares convert
   modulo 2^w (correct two's complement); narrower signed boolean operands
   are sign-extended. *)
let as_bool_at ctx (v : value) w =
  match v.data.Share.enc with
  | Share.Arith -> Orq_circuits.Convert.a2b ~w ctx v.data
  | Share.Bool ->
      if v.signed then sign_extend v.data ~from_w:v.width ~to_w:w
      else Mpc.and_mask v.data (Orq_util.Ring.mask w)

let rec eval_num (t : Table.t) (e : num) : value =
  let ctx = Table.ctx t in
  match e with
  | Col n ->
      let c = Table.find t n in
      { data = Column.data c; width = c.Column.width; signed = c.Column.signed }
  | Const c ->
      let w = max 1 (Orq_util.Ring.log2_ceil (abs c + 1) + 1) in
      {
        data = Share.public ctx Share.Bool (Table.nrows t) (c land Orq_util.Ring.mask w);
        width = w;
        signed = c < 0;
      }
  | Add (a, b) ->
      let va = eval_num t a and vb = eval_num t b in
      let w = cap_width (1 + max va.width vb.width) in
      {
        data = Mpc.add (as_arith ctx va) (as_arith ctx vb);
        width = w;
        signed = va.signed || vb.signed;
      }
  | Sub (a, b) ->
      let va = eval_num t a and vb = eval_num t b in
      let w = cap_width (1 + max va.width vb.width) in
      {
        data = Mpc.sub (as_arith ctx va) (as_arith ctx vb);
        width = w;
        signed = true;
      }
  | Mul (a, b) ->
      let va = eval_num t a and vb = eval_num t b in
      let w = cap_width (va.width + vb.width) in
      {
        data = Mpc.mul ~width:w ctx (as_arith ctx va) (as_arith ctx vb);
        width = w;
        signed = va.signed || vb.signed;
      }
  | Div (a, b) ->
      let va = eval_num t a and vb = eval_num t b in
      let w = cap_width (max va.width vb.width) in
      let q, _ =
        Orq_circuits.Divide.udiv ctx ~w (as_bool_at ctx va w)
          (as_bool_at ctx vb w)
      in
      { data = q; width = w; signed = false }
  | Div_pub (a, d) ->
      let va = eval_num t a in
      let w = cap_width va.width in
      let q, _ =
        Orq_circuits.Divide.udiv_pub ctx ~w (as_bool_at ctx va w)
          (Array.make (Table.nrows t) d)
      in
      { data = q; width = w; signed = false }
  | If (p, a, b) ->
      let bit = eval_pred t p in
      let va = eval_num t a and vb = eval_num t b in
      let signed = va.signed || vb.signed in
      let w = cap_width (max va.width vb.width) in
      {
        data =
          Orq_circuits.Mux.mux_b ~width:w ctx bit (as_bool_at ctx vb w)
            (as_bool_at ctx va w);
        width = w;
        signed;
      }

(* Predicate evaluation batches across comparison legs: all Cmp leaves of
   the And/Or tree are collected first, their arithmetic operands convert
   through one fused A2B, the equality legs share one fused OR-fold ladder
   and the ordering legs one fused less-than ladder (per-leg signedness is
   a local sign-bit flip), and the connective structure combines the leaf
   bits with log-depth fused AND/OR trees. A multi-conjunct filter such as
   Q6's thus costs one comparison-ladder depth instead of one per leg. *)
and eval_pred (t : Table.t) (p : pred) : Share.shared =
  let ctx = Table.ctx t in
  (* Pass 1: evaluate every leaf's operands, left to right. *)
  let leaves = ref [] in
  let nleaves = ref 0 in
  let rec skel p =
    match p with
    | True -> `T
    | Cmp (op, a, b) ->
        let va = eval_num t a in
        let vb = eval_num t b in
        let i = !nleaves in
        incr nleaves;
        leaves := (op, va, vb) :: !leaves;
        `L i
    | And (a, b) ->
        let sa = skel a in
        let sb = skel b in
        `And (sa, sb)
    | Or (a, b) ->
        let sa = skel a in
        let sb = skel b in
        `Or (sa, sb)
    | Not a -> `Not (skel a)
  in
  let sk = skel p in
  let leaves =
    Array.map
      (fun (op, va, vb) -> (op, va, vb, max va.width vb.width))
      (Array.of_list (List.rev !leaves))
  in
  (* Pass 2: every arithmetic operand's boolean view through one fused
     A2B; boolean operands convert locally. *)
  let a2b_lanes = ref [] in
  let na2b = ref 0 in
  let views =
    Array.map
      (fun (_, va, vb, w) ->
        let view v =
          match v.data.Share.enc with
          | Share.Arith ->
              let i = !na2b in
              incr na2b;
              a2b_lanes := (v.data, w) :: !a2b_lanes;
              `Conv i
          | Share.Bool -> `Local (as_bool_at ctx v w)
        in
        let xa = view va in
        let xb = view vb in
        (xa, xb))
      leaves
  in
  let converted =
    Orq_circuits.Convert.a2b_many ctx
      (Array.of_list (List.rev !a2b_lanes))
  in
  let resolve = function `Conv i -> converted.(i) | `Local s -> s in
  (* Pass 3: one fused equality pass and one fused less-than pass over all
     legs; Neq/Le/Ge are local negations, Gt/Le swap operands, and signed
     legs flip their sign bits locally before the unsigned ladder. *)
  let eq_lanes = ref [] and neq = ref 0 in
  let lt_lanes = ref [] and nlt = ref 0 in
  let plan =
    Array.mapi
      (fun i (op, va, vb, w) ->
        let xa = resolve (fst views.(i)) and xb = resolve (snd views.(i)) in
        let signed = va.signed || vb.signed in
        let flip v = if signed then Mpc.xor_pub v (1 lsl (w - 1)) else v in
        let push_eq a b neg =
          let j = !neq in
          incr neq;
          eq_lanes := (a, b, w) :: !eq_lanes;
          `Eq (j, neg)
        in
        let push_lt a b neg =
          let j = !nlt in
          incr nlt;
          lt_lanes := (flip a, flip b, w) :: !lt_lanes;
          `Lt (j, neg)
        in
        match op with
        | `Eq -> push_eq xa xb false
        | `Neq -> push_eq xa xb true
        | `Lt -> push_lt xa xb false
        | `Gt -> push_lt xb xa false
        | `Le -> push_lt xb xa true
        | `Ge -> push_lt xa xb true)
      leaves
  in
  let module C = Orq_circuits.Compare in
  let eqs = C.eq_many ctx (Array.of_list (List.rev !eq_lanes)) in
  let lts =
    if !nlt = 0 then [||]
    else C.lt_many ctx (Array.of_list (List.rev !lt_lanes))
  in
  let leaf_bit =
    Array.map
      (fun pl ->
        let b, neg =
          match pl with
          | `Eq (j, neg) -> (eqs.(j), neg)
          | `Lt (j, neg) -> (lts.(j), neg)
        in
        if neg then Mpc.xor_pub b 1 else b)
      plan
  in
  (* Pass 4: combine through the connective skeleton; associative And/Or
     chains flatten into log-depth fused trees. *)
  let rec tree : 'a. ('a array -> 'a array -> 'a array) -> 'a array -> 'a =
   fun f es ->
    let m = Array.length es in
    if m = 1 then es.(0)
    else
      let pn = m / 2 in
      let xs = Array.init pn (fun j -> es.(2 * j)) in
      let ys = Array.init pn (fun j -> es.((2 * j) + 1)) in
      let rs = f xs ys in
      tree f (if m mod 2 = 1 then Array.append rs [| es.(m - 1) |] else rs)
  in
  let rec flatten_and = function
    | `And (a, b) -> flatten_and a @ flatten_and b
    | s -> [ s ]
  and flatten_or = function
    | `Or (a, b) -> flatten_or a @ flatten_or b
    | s -> [ s ]
  in
  (* connective chains run over packed flag lanes: every leaf is a
     single-bit predicate, so each tree level is one packed fused round *)
  let rec combine = function
    | `T -> Share.public ctx Share.Bool (Table.nrows t) 1
    | `L i -> leaf_bit.(i)
    | `Not a -> Mpc.xor_pub (combine a) 1
    | `And _ as s ->
        let es =
          Array.of_list
            (List.map (fun a -> Share.pack_flags (combine a)) (flatten_and s))
        in
        Share.unpack_flags (tree (Mpc.band_f_many ctx) es)
    | `Or _ as s ->
        let es =
          Array.of_list
            (List.map (fun a -> Share.pack_flags (combine a)) (flatten_or s))
        in
        Share.unpack_flags (tree (Mpc.bor_f_many ctx) es)
  in
  combine sk

(** Evaluate a numeric expression into a fresh boolean-encoded column. *)
let eval_col (t : Table.t) (e : num) : Column.t =
  let v = eval_num t e in
  let ctx = Table.ctx t in
  let w = cap_width v.width in
  Column.of_shared ~signed:v.signed ~width:w (as_bool_at ctx v w)
