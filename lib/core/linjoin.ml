(** LINQ-style linear-complexity oblivious join — see the interface for
    the contract and the declared leakage.

    Pipeline (all vector lengths are the public physical sizes n, m,
    N = n + m):

    + pack the per-row composite key into one ring word (widths maxed
      across sides; local GF(2) shifts and xors);
    + convert packed keys to arithmetic and validity bits to 0/1 in one
      fused opening round;
    + fingerprint every row under per-query secret constants (r, c1, c2)
      and a per-row fresh mask u:
      {[ f = ((x*r + c1)^2 + c2)^2 + (1 - v) * u ]}
      — four multiplication lanes in three fused rounds. The secret
      multiplier and the two keyed squarings stand in for a shared-key
      PRF on the key (equal keys agree, distinct keys collide with
      probability ~ (n*m)/2^57); invalid rows are displaced by the
      uniform mask u, so they never match anything;
    + shuffle build and probe sides under independent random sharded
      permutations (rounds fused), carrying each side's payload columns;
    + open both fingerprint columns in one fused round and match them
      with a plaintext hash table — the only plaintext work, on values
      whose joint distribution is the declared LINQ profile;
    + assemble the output locally: public match indices gather the build
      payload; the probe validity column is AND-masked with the public
      matched (inner) or unmatched (anti) pattern. *)

open Orq_proto
module Ring = Orq_util.Ring
module Permops = Orq_shuffle.Permops

let sum_widths (left : Table.t) (right : Table.t) (on : string list) =
  List.fold_left
    (fun acc k -> acc + max (Table.width left k) (Table.width right k))
    0 on

let packable (ctx : Ctx.t) ~(left : Table.t) ~(right : Table.t)
    ~(on : string list) =
  let wk = sum_widths left right on in
  on <> [] && wk >= 1 && wk <= ctx.Ctx.ell - 1

(* Pack a table's join-key columns into one boolean-shared ring word per
   row: column k shifted to its offset, all xored (local, linear). *)
let pack_keys (ctx : Ctx.t) (t : Table.t) ~(on : string list)
    ~(widths : int list) : Share.shared =
  let packed, _ =
    List.fold_left2
      (fun (acc, off) k w ->
        let c = Mpc.and_mask (Column.as_bool ctx (Table.find t k)) (Ring.mask w) in
        let c = if off = 0 then c else Mpc.lshift c off in
        ((match acc with None -> Some c | Some a -> Some (Mpc.xor a c)), off + w))
      (None, 0) on widths
  in
  Option.get packed

(* Broadcast element [i] of a (short) shared vector across n rows — share
   replication is linear. *)
let broadcast_elt (s : Share.shared) i n =
  Share.map_vectors (fun vk -> Array.make n vk.(i)) s

let join (ctx : Ctx.t) (variant : [ `Inner | `Anti ])
    ?(copy : string list = []) ~(left : Table.t) ~(right : Table.t)
    ~(on : string list) () : Table.t =
  Ctx.with_label ctx "linjoin" @@ fun () ->
  let n = Table.nrows left and m = Table.nrows right in
  if n = 0 || m = 0 then invalid_arg "Linjoin.join: empty input";
  if variant = `Anti && copy <> [] then
    invalid_arg "Linjoin.join: anti join carries no copy columns";
  if not (packable ctx ~left ~right ~on) then
    invalid_arg "Linjoin.join: composite key does not pack into one word";
  let widths =
    List.map (fun k -> max (Table.width left k) (Table.width right k)) on
  in
  let wk = List.fold_left ( + ) 0 widths in
  let nm = n + m in
  (* --- 1-2: pack keys, concatenate sides, convert in one fused round --- *)
  let kcat =
    Share.append
      (pack_keys ctx left ~on ~widths)
      (pack_keys ctx right ~on ~widths)
  in
  let vcat = Share.append left.Table.valid right.Table.valid in
  let conv =
    Mpc.fuse_rounds ctx
      [|
        (fun () -> Orq_circuits.Convert.b2a ~w:wk ctx kcat);
        (fun () -> Orq_circuits.Convert.bit_b2a ctx vcat);
      |]
  in
  let x = conv.(0) and va = conv.(1) in
  (* --- 3: fingerprint under secret constants and per-row masks --- *)
  let rc = Dealer.random_shared ctx Share.Arith 3 in
  let u = Dealer.random_shared ctx Share.Arith nm in
  let t = Mpc.add_pub (Mpc.neg va) 1 in
  let prods = Mpc.mul_many ctx [| x; t |] [| broadcast_elt rc 0 nm; u |] in
  let s1 = Mpc.add prods.(0) (broadcast_elt rc 1 nm) in
  let y = Mpc.mul ctx s1 s1 in
  let s2 = Mpc.add y (broadcast_elt rc 2 nm) in
  let z = Mpc.mul ctx s2 s2 in
  let f = Mpc.add z prods.(1) in
  (* --- 4-5: split sides, shuffle independently (rounds fused),
         carrying each side's payload --- *)
  let f_build, f_probe = Share.split2 f n in
  let copy_cols =
    List.map (fun c -> Column.as_bool ctx (Table.find left c)) copy
  in
  let probe_data =
    List.map (fun (_, c) -> Column.as_bool ctx c) right.Table.cols
  in
  let shuffled =
    Mpc.fuse_rounds ctx
      [|
        (fun () -> Permops.shuffle_table ctx (f_build :: copy_cols));
        (fun () ->
          Permops.shuffle_table ctx (f_probe :: right.Table.valid :: probe_data));
      |]
  in
  let build', probe' = (shuffled.(0), shuffled.(1)) in
  let fb' = List.hd build' and copied' = List.tl build' in
  let fp', pvalid', probe_data' =
    match probe' with
    | fp :: v :: rest -> (fp, v, rest)
    | _ -> assert false
  in
  (* --- 6: open both fingerprint columns in one fused round --- *)
  let opened = Mpc.open_many ctx [| fb'; fp' |] in
  let ob = opened.(0) and op = opened.(1) in
  (* --- 7: plaintext matching on the opened fingerprints. Duplicate
         build fingerprints keep the first hit: valid build keys are
         unique by contract and invalid rows are uniformly displaced, so
         ties only arise from negligible-probability collisions. --- *)
  let tbl = Hashtbl.create (2 * n) in
  for i = n - 1 downto 0 do
    Hashtbl.replace tbl ob.(i) i
  done;
  let gidx = Array.make m 0 in
  let matched = Array.make m 0 in
  for j = 0 to m - 1 do
    match Hashtbl.find_opt tbl op.(j) with
    | Some i ->
        gidx.(j) <- i;
        matched.(j) <- 1
    | None -> ()
  done;
  (* --- 8: output validity — a local AND with the public match pattern.
         A matched probe row's build partner is valid with overwhelming
         probability (invalid fingerprints are uniform), so no secure AND
         with the build validity is needed. --- *)
  let mask =
    match variant with
    | `Inner -> matched
    | `Anti -> Array.map (fun b -> 1 - b) matched
  in
  let valid_out = Mpc.and_mask_vec pvalid' mask in
  (* --- 9: assemble — probe columns pass through; copy columns gather
         the matching build rows by public index (garbage on unmatched
         rows, which are invalid) --- *)
  let key_w = List.combine on widths in
  let out_cols =
    List.map2
      (fun (name, c) d ->
        let w =
          match List.assoc_opt name key_w with
          | Some w -> w
          | None -> c.Column.width
        in
        (name, Column.of_shared ~width:w d))
      right.Table.cols probe_data'
  in
  let key_cols, pay_cols =
    List.partition (fun (name, _) -> List.mem name on) out_cols
  in
  let key_cols = List.map (fun k -> (k, List.assoc k key_cols)) on in
  let copy_out =
    List.map2
      (fun name d ->
        let w = (Table.find left name).Column.width in
        (name, Column.of_shared ~width:w (Share.gather d gidx)))
      copy copied'
  in
  Table.of_columns ctx
    (left.Table.name ^ "_join_" ^ right.Table.name)
    ~valid:valid_out
    (key_cols @ pay_cols @ copy_out)

(* ------------------------------------------------------------------ *)
(* The quadratic candidate                                             *)
(* ------------------------------------------------------------------ *)

let quad (ctx : Ctx.t) ?(copy : string list = []) ~(left : Table.t)
    ~(right : Table.t) ~(on : string list) () : Table.t =
  Ctx.with_label ctx "quadjoin" @@ fun () ->
  let n = Table.nrows left and m = Table.nrows right in
  if n = 0 || m = 0 then invalid_arg "Linjoin.quad: empty input";
  let p = n * m in
  let li = Array.init p (fun t -> t / m) and ri = Array.init p (fun t -> t mod m) in
  let widths =
    List.map (fun k -> max (Table.width left k) (Table.width right k)) on
  in
  let eq =
    Orq_circuits.Compare.eq_composite ctx
      (List.map2
         (fun k w ->
           ( Share.gather (Column.as_bool ctx (Table.find left k)) li,
             Share.gather (Column.as_bool ctx (Table.find right k)) ri,
             w ))
         on widths)
  in
  let vv =
    Mpc.band1 ctx
      (Share.gather left.Table.valid li)
      (Share.gather right.Table.valid ri)
  in
  let valid_out = Mpc.band1 ctx vv eq in
  let key_w = List.combine on widths in
  let right_cols =
    List.map
      (fun (name, c) ->
        let w =
          match List.assoc_opt name key_w with
          | Some w -> w
          | None -> c.Column.width
        in
        (name, Column.of_shared ~width:w (Share.gather (Column.as_bool ctx c) ri)))
      right.Table.cols
  in
  let key_cols, pay_cols =
    List.partition (fun (name, _) -> List.mem name on) right_cols
  in
  let key_cols = List.map (fun k -> (k, List.assoc k key_cols)) on in
  let copy_out =
    List.map
      (fun name ->
        let c = Table.find left name in
        ( name,
          Column.of_shared ~width:c.Column.width
            (Share.gather (Column.as_bool ctx c) li) ))
      copy
  in
  Table.of_columns ctx
    (left.Table.name ^ "_join_" ^ right.Table.name)
    ~valid:valid_out
    (key_cols @ pay_cols @ copy_out)
