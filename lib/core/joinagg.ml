(** The composite oblivious join-aggregation operator (§3.3, Protocol 3;
    variants §3.4; correctness Appendix C; trimming heuristic C.3).

    Skeleton: concatenate the two tables; TableSort on the composite key
    (V_LR, join keys, table id) so each group is [one L row; its R rows];
    DISTINCT marks group heads; a per-variant validity rule invalidates the
    rows outside the join semantics; one aggregation network then (a)
    copies requested L-columns downward into the matching R rows, (b)
    propagates invalidation within each table's segment of the group (or
    across it, for anti-join), and (c) evaluates optional decomposable
    aggregations — all in the same oblivious control flow. An optional trim
    bounds the output at |R| rows, governed by the paper's heuristic.

    The left input must have unique join keys (one-to-many); many-to-many
    joins pre-aggregate the left table first (§3.6), which the dataflow
    layer does. Semi- and anti-join are the swapped-input reductions of
    Appendix C.1 and are exposed by {!Dataflow}. When *both* inputs have
    unique keys, {!join_unique} skips the aggregation network entirely
    (Appendix C, "Unique-key joins"). *)

open Orq_proto

type variant =
  | V_inner
  | V_left_outer
      (** the paper's semantics (Appendix C.1): "an inner join, plus all
          rows from the left" — matched left rows also survive, carrying
          NULL right-columns (unlike SQL LEFT JOIN, which suppresses them) *)
  | V_right_outer
  | V_full_outer
  | V_anti  (** right-outer validity + cross-table valid propagation *)

type trim_mode = [ `Auto | `Always | `Never ]

type agg_spec = {
  a_src : string;  (** input column (from either table) *)
  a_dst : string;  (** output column name *)
  a_func : Aggnet.func;
  a_width : int;  (** width of the output column *)
}

(** The paper's trimming heuristic (C.3): trimming the n redundant rows pays
    off iff a join over them would cost more than a valid-bit sort of the
    whole table — 3 * alpha * N < lg L * lg omega with alpha = m/n and
    omega the padded share width. *)
let should_trim (ctx : Ctx.t) ~left_n:n ~right_m:m =
  let omega = 2 * ctx.ell in
  3 * ctx.parties * m
  < n * Orq_util.Ring.log2_ceil n * Orq_util.Ring.log2_ceil omega

(* Concatenate a left and right column with the given fill value on the
   absent side. *)
let concat_lr (ctx : Ctx.t) ~n ~m (side : [ `L | `R ]) (data : Share.shared)
    ~fill : Share.shared =
  match side with
  | `L -> Share.append data (Share.public ctx data.Share.enc m fill)
  | `R -> Share.append (Share.public ctx data.Share.enc n fill) data

let identity_fill = function
  | Aggnet.Min w -> Orq_util.Ring.mask w
  | Aggnet.Max _ | Aggnet.Sum | Aggnet.Copy | Aggnet.Custom _ -> 0

(* The shared steps 1-2 of Protocol 3: schema merge, concatenation with
   the origin column, TableSort on (V_LR, K, Tid), and the DISTINCT bits
   over (V_LR, K). *)
type prepared = {
  p_v_lr : Share.shared;
  p_keys : (Share.shared * int) list;
  p_tid : Share.shared;
  p_dist : Share.shared;
  p_l_cols : (string * Share.shared * int) list;
  p_r_cols : (string * Share.shared * int) list;
  p_agg_cols : (agg_spec * Share.shared) list;
}

let prepare (ctx : Ctx.t) ~(left : Table.t) ~(right : Table.t)
    ~(on : string list) ~(aggs : agg_spec list) : prepared =
  let n = Table.nrows left and m = Table.nrows right in
  let key_widths =
    List.map (fun k -> max (Table.width left k) (Table.width right k)) on
  in
  let left_data =
    List.filter (fun (name, _) -> not (List.mem name on)) left.Table.cols
  in
  let right_data =
    List.filter (fun (name, _) -> not (List.mem name on)) right.Table.cols
  in
  List.iter
    (fun (name, _) ->
      if List.mem_assoc name right_data then
        invalid_arg
          ("Joinagg: column " ^ name
         ^ " exists in both inputs; rename before joining"))
    left_data;
  (* --- Step 1: concatenation --- *)
  let keys0 =
    List.map2
      (fun k w ->
        ( Share.append
            (Column.as_bool ctx (Table.find left k))
            (Column.as_bool ctx (Table.find right k)),
          w ))
      on key_widths
  in
  let v_lr = Share.append left.Table.valid right.Table.valid in
  let tid =
    Share.append
      (Share.public ctx Share.Bool n 0)
      (Share.public ctx Share.Bool m 1)
  in
  let l_cols =
    List.map
      (fun (name, c) ->
        (name, concat_lr ctx ~n ~m `L (Column.as_bool ctx c) ~fill:0, c.Column.width))
      left_data
  in
  let r_cols =
    List.map
      (fun (name, c) ->
        (name, concat_lr ctx ~n ~m `R (Column.as_bool ctx c) ~fill:0, c.Column.width))
      right_data
  in
  (* aggregation working columns get identity fill on the absent side *)
  let agg_cols =
    List.map
      (fun a ->
        let side, c =
          if Table.mem left a.a_src then (`L, Table.find left a.a_src)
          else (`R, Table.find right a.a_src)
        in
        let data = Column.as_bool ctx c in
        let filled =
          concat_lr ctx ~n ~m side data ~fill:(identity_fill a.a_func)
        in
        (a, filled))
      aggs
  in
  (* --- Step 2: sort on K_s = (V_LR, keys, Tid) and mark group heads --- *)
  let sort_keys =
    ((v_lr, 1, Tablesort.Asc)
    :: List.map (fun (k, w) -> (k, w, Tablesort.Asc)) keys0)
    @ [ (tid, 1, Tablesort.Asc) ]
  in
  let payload =
    List.map (fun (_, d, _) -> d) l_cols
    @ List.map (fun (_, d, _) -> d) r_cols
    @ List.map snd agg_cols
  in
  let sorted_keys, sorted_payload =
    Tablesort.sort_cols ctx ~keys:sort_keys payload
  in
  let v_lr', keys', tid' =
    match sorted_keys with
    | v :: rest ->
        let nk = List.length on in
        ( v,
          List.map2
            (fun k w -> (k, w))
            (Orq_sort.Quicksort.take nk rest)
            key_widths,
          List.nth rest nk )
    | [] -> assert false
  in
  let nl = List.length l_cols and nr = List.length r_cols in
  let l_cols' =
    List.map2
      (fun (name, _, w) d -> (name, d, w))
      l_cols
      (Orq_sort.Quicksort.take nl sorted_payload)
  in
  let r_cols' =
    List.map2
      (fun (name, _, w) d -> (name, d, w))
      r_cols
      (Orq_sort.Quicksort.take nr (Orq_sort.Quicksort.drop nl sorted_payload))
  in
  let agg_cols' =
    List.map2
      (fun (a, _) d -> (a, d))
      agg_cols
      (Orq_sort.Quicksort.drop (nl + nr) sorted_payload)
  in
  let dist = Aggnet.distinct_bits ctx ~keys:((v_lr', 1) :: keys') in
  {
    p_v_lr = v_lr';
    p_keys = keys';
    p_tid = tid';
    p_dist = dist;
    p_l_cols = l_cols';
    p_r_cols = r_cols';
    p_agg_cols = agg_cols';
  }

(* --- Step 4: assemble the output table, then optionally trim --- *)
let finalize (ctx : Ctx.t) ~name ~(valid : Share.shared)
    ~(cols : (string * Column.t) list) ~(bound : int) ~(do_trim : bool) :
    Table.t =
  let result = Table.of_columns ctx name ~valid cols in
  if not do_trim then result
  else begin
    (* single-bit valid sort (descending) then drop the spare rows *)
    let data_cols = List.map (fun (_, c) -> Column.data c) result.Table.cols in
    let sorted_v, sorted_data =
      Tablesort.sort_cols ctx
        ~keys:[ (result.Table.valid, 1, Tablesort.Desc) ]
        data_cols
    in
    let v = List.hd sorted_v in
    let cols =
      List.map2
        (fun (name, c) d ->
          (name, Column.with_data c (Share.sub_range d 0 bound)))
        result.Table.cols sorted_data
    in
    Table.of_columns ctx result.Table.name
      ~valid:(Share.sub_range v 0 bound)
      cols
  end

(** [join ctx variant ~copy ~aggs ~trim ~left ~right ~on ()] — the full
    operator. [copy] names left columns to propagate into matching right
    rows; [aggs] are decomposable aggregations evaluated on the join key
    groups (their results land in the last row of each group). *)
let join (ctx : Ctx.t) (variant : variant) ?(copy : string list = [])
    ?(aggs : agg_spec list = []) ?(trim : trim_mode = `Auto)
    ~(left : Table.t) ~(right : Table.t) ~(on : string list) () : Table.t =
  Ctx.with_label ctx "join" @@ fun () ->
  let n = Table.nrows left and m = Table.nrows right in
  let p = prepare ctx ~left ~right ~on ~aggs in
  let { p_v_lr = v_lr'; p_keys = keys'; p_tid = tid'; p_dist = dist; _ } = p in
  let k_a = (v_lr', 1) :: keys' in
  (* --- validity rule per variant (temporary column V_o; the aggregation
         keys keep using V_LR, cf. Appendix C footnote) --- *)
  let v_o =
    match variant with
    | V_inner -> Mpc.band1 ctx v_lr' (Mpc.xor_pub dist 1)
    | V_left_outer ->
        Mpc.band1 ctx v_lr' (Mpc.xor_pub (Mpc.band1 ctx tid' dist) 1)
    | V_right_outer | V_anti -> Mpc.band1 ctx v_lr' tid'
    | V_full_outer -> v_lr'
  in
  (* --- Step 3: one aggregation network for copies, valid propagation and
         user aggregations --- *)
  let copy_specs =
    List.map
      (fun cname ->
        match List.find_opt (fun (nme, _, _) -> nme = cname) p.p_l_cols with
        | Some (_, d, w) ->
            (cname, { Aggnet.col = d; func = Aggnet.Copy; keys = Aggnet.Group; width = w }, w)
        | None -> invalid_arg ("Joinagg.join: copy column not in left: " ^ cname))
      copy
  in
  let valid_spec =
    match variant with
    | V_inner | V_left_outer ->
        Some { Aggnet.col = v_o; func = Aggnet.Copy; keys = Aggnet.Group_and_tid; width = 1 }
    | V_anti ->
        Some { Aggnet.col = v_o; func = Aggnet.Copy; keys = Aggnet.Group; width = 1 }
    | V_right_outer | V_full_outer -> None
  in
  let agg_specs =
    List.map
      (fun (a, d) ->
        let col =
          match a.a_func with
          | Aggnet.Sum -> Orq_circuits.Convert.b2a ~w:a.a_width ctx d
          | _ -> d
        in
        (a, { Aggnet.col; func = a.a_func; keys = Aggnet.Group; width = a.a_width }))
      p.p_agg_cols
  in
  let all_specs =
    List.map (fun (_, sp, _) -> sp) copy_specs
    @ (match valid_spec with Some sp -> [ sp ] | None -> [])
    @ List.map snd agg_specs
  in
  let results =
    if all_specs = [] then []
    else Aggnet.run ctx ~keys:k_a ~tid:tid' all_specs
  in
  let ncopy = List.length copy_specs in
  let copied = Orq_sort.Quicksort.take ncopy results in
  let valid_final =
    match valid_spec with
    | Some _ -> List.nth results ncopy
    | None -> v_o
  in
  let agg_results =
    Orq_sort.Quicksort.drop
      (ncopy + match valid_spec with Some _ -> 1 | None -> 0)
      results
  in
  let out_cols =
    List.map2 (fun (k, w) name -> (name, Column.of_shared ~width:w k)) keys' on
    @ List.map (fun (name, d, w) -> (name, Column.of_shared ~width:w d)) p.p_r_cols
    @ List.map2
        (fun (name, _, w) d -> (name, Column.of_shared ~width:w d))
        copy_specs copied
    @
    (* all Sum finishers convert through one fused A2B *)
    let finished =
      let sums =
        List.filter_map
          (fun ((a, _), d) ->
            match a.a_func with
            | Aggnet.Sum -> Some (d, a.a_width)
            | _ -> None)
          (List.combine agg_specs agg_results)
      in
      let conv =
        ref
          (Array.to_list
             (Orq_circuits.Convert.a2b_many ctx (Array.of_list sums)))
      in
      List.map2
        (fun (a, _) d ->
          match a.a_func with
          | Aggnet.Sum ->
              let c = List.hd !conv in
              conv := List.tl !conv;
              (a, c)
          | _ -> (a, d))
        agg_specs agg_results
    in
    List.map
      (fun (a, d) -> (a.a_dst, Column.of_shared ~width:a.a_width d))
      finished
  in
  let do_trim =
    match (variant, trim) with
    | (V_left_outer | V_right_outer | V_full_outer), _ -> false
    | _, `Never -> false
    | _, `Always -> true
    | _, `Auto -> should_trim ctx ~left_n:n ~right_m:m
  in
  finalize ctx
    ~name:(left.Table.name ^ "_join_" ^ right.Table.name)
    ~valid:valid_final ~cols:out_cols ~bound:m ~do_trim

(** Unique-key inner join (Appendix C, "Unique-key joins"): when the public
    schema guarantees unique keys on *both* sides, every group holds at
    most one row from each input, so the aggregation network is
    unnecessary: a single adjacent-row multiplex identifies matches and
    pulls the left values into the right row — effectively an oblivious
    PSI join. The output is bounded by min(|L|, |R|). *)
let join_unique (ctx : Ctx.t) ?(copy : string list = [])
    ?(trim : trim_mode = `Auto) ~(left : Table.t) ~(right : Table.t)
    ~(on : string list) () : Table.t =
  Ctx.with_label ctx "joinunique" @@ fun () ->
  let n = Table.nrows left and m = Table.nrows right in
  let p = prepare ctx ~left ~right ~on ~aggs:[] in
  let nm = n + m in
  (* an R row is in the join iff its group has a head before it (the L row
     with the same key): valid = V_LR and Tid and not distinct *)
  let valid =
    Mpc.band1 ctx p.p_v_lr (Mpc.band1 ctx p.p_tid (Mpc.xor_pub p.p_dist 1))
  in
  (* copy each requested left column from the immediately preceding row *)
  let copied =
    match copy with
    | [] -> []
    | _ ->
        let sel = Share.sub_range valid 1 (nm - 1) in
        let pairs =
          List.map
            (fun cname ->
              match
                List.find_opt (fun (nme, _, _) -> nme = cname) p.p_l_cols
              with
              | Some (_, d, w) ->
                  (cname, w, Share.sub_range d 1 (nm - 1), Share.sub_range d 0 (nm - 1))
              | None ->
                  invalid_arg ("join_unique: copy column not in left: " ^ cname))
            copy
        in
        let muxed =
          Array.to_list
            (Orq_circuits.Mux.select_many
               ~widths:
                 (Array.of_list (List.map (fun (_, w, _, _) -> w) pairs))
               ctx
               (Array.of_list
                  (List.map (fun (_, _, cur, prev) -> (sel, cur, prev)) pairs)))
        in
        (* row 0 can never be a matched R row; keep its own value *)
        List.map2
          (fun (cname, w, _, prev) muxed_col ->
            ( cname,
              Column.of_shared ~width:w
                (Share.append (Share.sub_range prev 0 1) muxed_col) ))
          pairs muxed
  in
  let out_cols =
    List.map2
      (fun (k, w) name -> (name, Column.of_shared ~width:w k))
      p.p_keys on
    @ List.map
        (fun (name, d, w) -> (name, Column.of_shared ~width:w d))
        p.p_r_cols
    @ copied
  in
  let bound = min n m in
  let do_trim = match trim with `Never -> false | `Always | `Auto -> true in
  finalize ctx
    ~name:(left.Table.name ^ "_psijoin_" ^ right.Table.name)
    ~valid ~cols:out_cols ~bound ~do_trim
