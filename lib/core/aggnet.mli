(** The aggregation network (§3.1, Protocol 1; correctness Appendix C.2):
    a Hillis–Steele doubling network over a table sorted on its grouping
    key. Copy-style functions propagate each group's *first* row into all
    its rows; self-decomposable functions accumulate the group into its
    *last* row — O(n log n) work, O(log n) rounds. Multiple functions run
    in one control flow, reusing the per-level group-boundary bits. Pads
    internally to a power of two with invalid rows (the padding behind the
    paper's Q12 scaling outlier); the validity bit must be part of every
    aggregation key. *)

open Orq_proto

type func =
  | Copy  (** propagate the group's first row downward (f(x, y) = x) *)
  | Sum  (** running sum on arithmetic shares; total in the last row *)
  | Min of int  (** running minimum at the given width *)
  | Max of int
  | Custom of (Ctx.t -> Share.shared -> Share.shared -> Share.shared)
      (** pairwise combine [f ctx upper lower] on boolean shares; must be
          self-decomposable (§3.5) *)

(** Which key set guards a function: the aggregation key K_a, or the
    extended K_s = K_a + table-id used by the join's valid-bit
    propagation. *)
type keyset = Group | Group_and_tid

type spec = {
  col : Share.shared;
  func : func;
  keys : keyset;
  width : int;  (** logical bit width of the column (metering) *)
}

val run :
  Ctx.t -> keys:(Share.shared * int) list -> ?tid:Share.shared ->
  spec list -> Share.shared list
(** Execute the network over a table already sorted on [keys] (which must
    include the validity column); [tid] supplies the table-id column for
    [Group_and_tid] functions. Returns updated columns in spec order. *)

val distinct_bits :
  Ctx.t -> keys:(Share.shared * int) list -> Share.shared
(** Mark each group's first row in a sorted table — oblivious DISTINCT. *)

val last_of_group_bits :
  Ctx.t -> keys:(Share.shared * int) list -> Share.shared
(** Mark each group's last row (the one holding the group aggregate). *)
