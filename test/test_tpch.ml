(* End-to-end validation of the full TPC-H workload: every query runs under
   MPC at a micro scale factor and must produce exactly the rows of the
   plaintext reference engine (the paper's SQLite validation, §5.1). *)

open Orq_proto
open Orq_workloads

let sf = 0.0002

let plain = lazy (Tpch_gen.generate ~seed:99 sf)

let check_query kind qname () =
  let plain = Lazy.force plain in
  let ctx = Ctx.create ~seed:5 kind in
  let mdb = Tpch_gen.share ctx plain in
  let q = Tpch.find qname in
  let ok, mpc_rows, ref_rows = Tpch.validate q plain mdb in
  if not ok then
    Alcotest.failf "%s mismatch:@.MPC: %a@.REF: %a" qname
      Fmt.(brackets (list ~sep:semi (brackets (list ~sep:semi int))))
      mpc_rows
      Fmt.(brackets (list ~sep:semi (brackets (list ~sep:semi int))))
      ref_rows;
  (* results should not be trivially empty for most queries *)
  ignore mpc_rows

let sh_hm_cases =
  List.map
    (fun (q : Tpch.query) ->
      Alcotest.test_case (q.Tpch.name ^ " [SH-HM]") `Slow
        (check_query Ctx.Sh_hm q.Tpch.name))
    Tpch.all

(* cross-protocol smoke: one cheap and one join-heavy query under the
   dishonest-majority and malicious protocols *)
let cross_protocol_cases =
  List.concat_map
    (fun kind ->
      List.map
        (fun qname ->
          Alcotest.test_case
            (qname ^ " [" ^ Ctx.kind_label kind ^ "]")
            `Slow (check_query kind qname))
        [ "Q6"; "Q4" ])
    [ Ctx.Sh_dm; Ctx.Mal_hm ]

let test_generator_shape () =
  let db = Lazy.force plain in
  let n t = Orq_plaintext.Ptable.nrows t in
  Alcotest.(check int) "regions" 5 (n db.Tpch_gen.region);
  Alcotest.(check int) "nations" 25 (n db.Tpch_gen.nation);
  Alcotest.(check bool) "lineitem largest" true
    (n db.Tpch_gen.lineitem > n db.Tpch_gen.orders);
  Alcotest.(check bool) "orders 10x customers" true
    (n db.Tpch_gen.orders = 10 * n db.Tpch_gen.customer)

let test_generator_integrity () =
  (* primary keys unique, foreign keys resolvable — the constraints the
     one-to-many join plans rely on *)
  let module P = Orq_plaintext.Ptable in
  let db = Tpch_gen.generate ~seed:4242 0.0005 in
  let col t name = List.map (P.get t name) t.P.rows in
  let unique l = List.length (List.sort_uniq compare l) = List.length l in
  Alcotest.(check bool) "custkey pk" true (unique (col db.Tpch_gen.customer "c_custkey"));
  Alcotest.(check bool) "orderkey pk" true (unique (col db.Tpch_gen.orders "o_orderkey"));
  Alcotest.(check bool) "partkey pk" true (unique (col db.Tpch_gen.part "p_partkey"));
  Alcotest.(check bool) "suppkey pk" true (unique (col db.Tpch_gen.supplier "s_suppkey"));
  let ps_pairs =
    List.map
      (fun r -> (P.get db.Tpch_gen.partsupp "ps_partkey" r, P.get db.Tpch_gen.partsupp "ps_suppkey" r))
      db.Tpch_gen.partsupp.P.rows
  in
  Alcotest.(check bool) "partsupp composite pk" true (unique ps_pairs);
  let contains sub super =
    let s = List.sort_uniq compare super in
    List.for_all (fun x -> List.mem x s) (List.sort_uniq compare sub)
  in
  Alcotest.(check bool) "orders.custkey fk" true
    (contains (col db.Tpch_gen.orders "o_custkey") (col db.Tpch_gen.customer "c_custkey"));
  Alcotest.(check bool) "lineitem.orderkey fk" true
    (contains (col db.Tpch_gen.lineitem "l_orderkey") (col db.Tpch_gen.orders "o_orderkey"));
  Alcotest.(check bool) "lineitem.partkey fk" true
    (contains (col db.Tpch_gen.lineitem "l_partkey") (col db.Tpch_gen.part "p_partkey"));
  Alcotest.(check bool) "supplier nations in range" true
    (List.for_all (fun x -> x >= 0 && x < 25) (col db.Tpch_gen.supplier "s_nationkey"))

let test_generator_deterministic () =
  let a = Tpch_gen.generate ~seed:7 0.0002 in
  let b = Tpch_gen.generate ~seed:7 0.0002 in
  Alcotest.(check bool) "same seed, same data" true
    (a.Tpch_gen.lineitem.Orq_plaintext.Ptable.rows
    = b.Tpch_gen.lineitem.Orq_plaintext.Ptable.rows);
  let c = Tpch_gen.generate ~seed:8 0.0002 in
  Alcotest.(check bool) "different seed, different data" false
    (a.Tpch_gen.lineitem.Orq_plaintext.Ptable.rows
    = c.Tpch_gen.lineitem.Orq_plaintext.Ptable.rows)

(* robustness: a handful of queries re-validated on an unrelated dataset *)
let alt_seed_cases =
  List.map
    (fun qname ->
      Alcotest.test_case (qname ^ " [alt seed]") `Slow (fun () ->
          let plain = Tpch_gen.generate ~seed:777 0.0003 in
          let ctx = Ctx.create ~seed:42 Ctx.Sh_hm in
          let mdb = Tpch_gen.share ctx plain in
          let q = Tpch.find qname in
          let ok, _, _ = Tpch.validate q plain mdb in
          Alcotest.(check bool) (qname ^ " alt-seed validates") true ok))
    [ "Q1"; "Q3"; "Q9"; "Q13"; "Q18"; "Q21" ]

let () =
  Alcotest.run "orq_tpch"
    [
      ( "generator",
        [
          Alcotest.test_case "shape" `Quick test_generator_shape;
          Alcotest.test_case "pk/fk integrity" `Quick test_generator_integrity;
          Alcotest.test_case "determinism" `Quick test_generator_deterministic;
        ] );
      ("tpch-validate", sh_hm_cases @ cross_protocol_cases @ alt_seed_cases);
    ]
