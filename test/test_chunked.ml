(** Out-of-core chunked share vectors: the chunked layer and the chunked
    pipelines must be value- and traffic-identical to the monolithic
    engine — at chunk sizes that do and do not divide the row count, and
    under a spill-forcing tiny memory budget. *)

module Chunkvec = Orq_util.Chunkvec
module Vec = Orq_util.Vec
module Comm = Orq_net.Comm
module Permops = Orq_shuffle.Permops
module Sortwrap = Orq_sort.Sortwrap
module Tpch = Orq_workloads.Tpch
module Tpch_gen = Orq_workloads.Tpch_gen
open Orq_proto

let vec = Alcotest.(array int)

(* run [f] with the streaming knobs set, restoring the global state *)
let with_streaming ?(rows = 7) ?budget f =
  let rows0 = Chunkvec.chunk_rows () in
  let budget0 = Chunkvec.budget () in
  let on0 = Chunkvec.streaming_enabled () in
  Chunkvec.set_chunk_rows rows;
  (match budget with Some b -> Chunkvec.set_budget b | None -> ());
  Fun.protect
    ~finally:(fun () ->
      Chunkvec.set_chunk_rows rows0;
      Chunkvec.set_budget budget0;
      Chunkvec.set_streaming on0)
    f

let rand_array st n = Array.init n (fun _ -> Random.State.int st 100_000)

(* i * 13 + 5 mod n is a permutation whenever gcd(13, n) = 1 *)
let test_perm n = Array.init n (fun i -> ((i * 13) + 5) mod n)

let tally_eq name (a : Comm.tally) (b : Comm.tally) =
  Alcotest.(check int) (name ^ ": rounds") a.Comm.t_rounds b.Comm.t_rounds;
  Alcotest.(check int) (name ^ ": bits") a.Comm.t_bits b.Comm.t_bits;
  Alcotest.(check int) (name ^ ": messages") a.Comm.t_messages b.Comm.t_messages

let kind_name = function
  | Ctx.Sh_dm -> "Sh_dm"
  | Ctx.Sh_hm -> "Sh_hm"
  | Ctx.Mal_hm -> "Mal_hm"

let for_all_kinds f = List.iter f Ctx.all_kinds

(* ------------------------------------------------------------------ *)
(* Chunkvec unit tests                                                 *)
(* ------------------------------------------------------------------ *)

let test_parse_bytes () =
  Alcotest.(check int) "plain" 65536 (Chunkvec.parse_bytes "65536");
  Alcotest.(check int) "K" (512 * 1024) (Chunkvec.parse_bytes "512K");
  Alcotest.(check int) "k" 1024 (Chunkvec.parse_bytes "1k");
  Alcotest.(check int) "M" (64 * 1024 * 1024) (Chunkvec.parse_bytes "64M");
  Alcotest.(check int) "G" (2 * 1024 * 1024 * 1024) (Chunkvec.parse_bytes "2G");
  Alcotest.(check int) "empty" 0 (Chunkvec.parse_bytes "")

let test_roundtrip () =
  with_streaming ~rows:7 (fun () ->
      let st = Random.State.make [| 1 |] in
      List.iter
        (fun n ->
          let a = rand_array st n in
          let c = Chunkvec.of_array a in
          Alcotest.(check vec)
            (Printf.sprintf "to_array n=%d" n)
            a (Chunkvec.to_array c);
          Array.iteri
            (fun i v ->
              Alcotest.(check int) (Printf.sprintf "get n=%d i=%d" n i) v
                (Chunkvec.get c i))
            a)
        [ 0; 1; 6; 7; 14; 20; 21; 53 ])

let test_local_ops () =
  with_streaming ~rows:7 (fun () ->
      let st = Random.State.make [| 2 |] in
      (* 21 divides into 7-row chunks exactly; 53 does not *)
      List.iter
        (fun n ->
          let tag s = Printf.sprintf "%s n=%d" s n in
          let a = rand_array st n and b = rand_array st n in
          let ca = Chunkvec.of_array a and cb = Chunkvec.of_array b in
          let p = test_perm n in
          Alcotest.(check vec) (tag "gather")
            (Array.map (fun j -> a.(j)) p)
            (Chunkvec.to_array (Chunkvec.gather ca p));
          let scat = Array.make n 0 in
          Array.iteri (fun i j -> scat.(j) <- a.(i)) p;
          Alcotest.(check vec) (tag "scatter") scat
            (Chunkvec.to_array (Chunkvec.scatter ca p));
          Alcotest.(check vec) (tag "sub")
            (Array.sub a 3 (n - 5))
            (Chunkvec.to_array (Chunkvec.sub ca 3 (n - 5)));
          Alcotest.(check vec) (tag "append") (Array.append a b)
            (Chunkvec.to_array (Chunkvec.append ca cb));
          Alcotest.(check vec) (tag "map")
            (Array.map (fun x -> (x * 2) + 1) a)
            (Chunkvec.to_array
               (Chunkvec.map (Array.map (fun x -> (x * 2) + 1)) ca));
          Alcotest.(check vec) (tag "map2") (Array.map2 ( + ) a b)
            (Chunkvec.to_array (Chunkvec.map2 (Array.map2 ( + )) ca cb));
          let ps = Array.copy a in
          Vec.prefix_sum_inplace ps;
          Alcotest.(check vec) (tag "prefix_sum") ps
            (Chunkvec.to_array (Chunkvec.prefix_sum ca)))
        [ 21; 53 ])

let test_append_reuse () =
  with_streaming ~rows:7 (fun () ->
      let st = Random.State.make [| 3 |] in
      let a = Chunkvec.of_array (rand_array st 21) in
      let b = Chunkvec.of_array (rand_array st 14) in
      let c = Chunkvec.append a b in
      (* a's chunks are aligned to the result granularity: reused, not
         copied — the append fix satellite *)
      let ia = Chunkvec.chunk_ids a and ic = Chunkvec.chunk_ids c in
      Alcotest.(check int) "chunk count" 5 (Array.length ic);
      Array.iteri
        (fun i id -> Alcotest.(check int) "prefix chunk reused" id ic.(i))
        ia)

let test_spill () =
  with_streaming ~rows:7 ~budget:(2 * 7 * 8) (fun () ->
      let before = Chunkvec.stats () in
      let st = Random.State.make [| 4 |] in
      let a = rand_array st 70 in
      let c = Chunkvec.of_array a in
      let after = Chunkvec.stats () in
      Alcotest.(check bool) "spills happened" true
        (after.Chunkvec.st_spills > before.Chunkvec.st_spills);
      Alcotest.(check bool) "tracked bytes within budget" true
        (Chunkvec.live_bytes () <= 2 * 7 * 8);
      Alcotest.(check vec) "values survive spill + fault" a
        (Chunkvec.to_array c);
      let after2 = Chunkvec.stats () in
      Alcotest.(check bool) "faulted back from disk" true
        (after2.Chunkvec.st_faults > before.Chunkvec.st_faults))

(* ------------------------------------------------------------------ *)
(* Share-level: chunked == monolithic, values and tallies              *)
(* ------------------------------------------------------------------ *)

let test_share_gather_scatter () =
  for_all_kinds @@ fun kind ->
  let n = 53 in
  let st = Random.State.make [| 5 |] in
  let x = rand_array st n in
  let p = test_perm n in
  let ctx = Ctx.create ~seed:11 kind in
  let s = Mpc.share_b ctx x in
  let g1 = Share.reconstruct (Share.gather s p) in
  let sc1 = Share.reconstruct (Share.scatter s p) in
  with_streaming ~rows:7 (fun () ->
      let before = Comm.snapshot ctx.Ctx.comm in
      let c = Share.park s in
      let g2 = Share.reconstruct_c (Share.gather_c c p) in
      let sc2 = Share.reconstruct_c (Share.scatter_c c p) in
      let tal = Comm.since ctx.Ctx.comm before in
      let tag s = Printf.sprintf "%s %s" s (kind_name kind) in
      Alcotest.(check vec) (tag "gather_c") g1 g2;
      Alcotest.(check vec) (tag "scatter_c") sc1 sc2;
      (* gather/scatter are local: no traffic in either shape *)
      tally_eq (tag "local ops silent") Comm.zero_tally tal)

let test_shuffle_table () =
  for_all_kinds @@ fun kind ->
  (* 56 divides into 7-row chunks; 53 does not *)
  List.iter
    (fun n ->
      let tag s = Printf.sprintf "%s %s n=%d" s (kind_name kind) n in
      let st = Random.State.make [| 6; n |] in
      let x = rand_array st n and y = rand_array st n in
      let ctx1 = Ctx.create ~seed:21 kind in
      let sx = Mpc.share_b ctx1 x and sy = Mpc.share_b ctx1 y in
      let before1 = Comm.snapshot ctx1.Ctx.comm in
      let out1 = Permops.shuffle_table ctx1 [ sx; sy ] in
      let tal1 = Comm.since ctx1.Ctx.comm before1 in
      let r1 = List.map Share.reconstruct out1 in
      with_streaming ~rows:7 (fun () ->
          (* same seed => same sampled permutation; per-chunk resharing
             draws the same amount of zero-sum noise in a different
             order, so reconstructions and tallies must match exactly *)
          let ctx2 = Ctx.create ~seed:21 kind in
          let cx = Share.park (Mpc.share_b ctx2 x) in
          let cy = Share.park (Mpc.share_b ctx2 y) in
          let before2 = Comm.snapshot ctx2.Ctx.comm in
          let out2 = Permops.shuffle_table_c ctx2 [ cx; cy ] in
          let tal2 = Comm.since ctx2.Ctx.comm before2 in
          let r2 = List.map Share.reconstruct_c out2 in
          List.iter2
            (fun a b -> Alcotest.(check vec) (tag "shuffle values") a b)
            r1 r2;
          tally_eq (tag "shuffle tally") tal1 tal2))
    [ 56; 53 ]

let test_sort () =
  for_all_kinds @@ fun kind ->
  List.iter
    (fun n ->
      let tag s = Printf.sprintf "%s %s n=%d" s (kind_name kind) n in
      let st = Random.State.make [| 8; n |] in
      let key = Array.init n (fun _ -> Random.State.int st 256) in
      let pay = rand_array st n in
      let ctx1 = Ctx.create ~seed:33 kind in
      let k1 = Mpc.share_b ctx1 key and p1 = Mpc.share_b ctx1 pay in
      let before1 = Comm.snapshot ctx1.Ctx.comm in
      let k1', ps1 = Sortwrap.sort ctx1 ~dir:Sortwrap.Asc ~w:8 k1 [ p1 ] in
      let tal1 = Comm.since ctx1.Ctx.comm before1 in
      let rk1 = Share.reconstruct k1' in
      let rp1 = List.map Share.reconstruct ps1 in
      with_streaming ~rows:7 (fun () ->
          let ctx2 = Ctx.create ~seed:33 kind in
          let k2 = Share.park (Mpc.share_b ctx2 key) in
          let p2 = Share.park (Mpc.share_b ctx2 pay) in
          let before2 = Comm.snapshot ctx2.Ctx.comm in
          let k2', ps2 = Sortwrap.sort_c ctx2 ~dir:Sortwrap.Asc ~w:8 k2 [ p2 ] in
          let tal2 = Comm.since ctx2.Ctx.comm before2 in
          Alcotest.(check vec) (tag "sorted key") rk1 (Share.reconstruct_c k2');
          List.iter2
            (fun a b ->
              Alcotest.(check vec) (tag "sorted carry") a
                (Share.reconstruct_c b))
            rp1 ps2;
          tally_eq (tag "sort tally") tal1 tal2))
    [ 56; 53 ]

(* ------------------------------------------------------------------ *)
(* Query-level: full TPC-H plans, streaming + tiny budget              *)
(* ------------------------------------------------------------------ *)

let plain = lazy (Tpch_gen.generate ~seed:99 0.0002)

(* Q1: sort + group-by aggregation; Q6: filter + global aggregate;
   Q12: join + aggregation (exercises the oblivious join/agg stack) *)
let check_query qname kind =
  let tag s = Printf.sprintf "%s %s %s" qname (kind_name kind) s in
  let plain = Lazy.force plain in
  let q = Tpch.find qname in
  let ctx1 = Ctx.create ~seed:5 kind in
  let mdb1 = Tpch_gen.share ctx1 plain in
  let before1 = Comm.snapshot ctx1.Ctx.comm in
  let ok1, rows1, _ = Tpch.validate q plain mdb1 in
  let tal1 = Comm.since ctx1.Ctx.comm before1 in
  Alcotest.(check bool) (tag "monolithic ok") true ok1;
  (* chunked run under a budget small enough to force spilling *)
  with_streaming ~rows:64 ~budget:(32 * 1024) (fun () ->
      let sp0 = (Chunkvec.stats ()).Chunkvec.st_spills in
      let ctx2 = Ctx.create ~seed:5 kind in
      let mdb2 = Tpch_gen.share ctx2 plain in
      let before2 = Comm.snapshot ctx2.Ctx.comm in
      let ok2, rows2, _ = Tpch.validate q plain mdb2 in
      let tal2 = Comm.since ctx2.Ctx.comm before2 in
      Alcotest.(check bool) (tag "chunked ok") true ok2;
      Alcotest.(check (list (list int))) (tag "rows") rows1 rows2;
      tally_eq (tag "tally") tal1 tal2;
      Alcotest.(check bool) (tag "spilled under tiny budget") true
        ((Chunkvec.stats ()).Chunkvec.st_spills > sp0))

let test_queries () =
  for_all_kinds @@ fun kind ->
  List.iter (fun qname -> check_query qname kind) [ "Q1"; "Q6"; "Q12" ]

let suite =
  [
    Alcotest.test_case "parse_bytes" `Quick test_parse_bytes;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "local ops == monolithic" `Quick test_local_ops;
    Alcotest.test_case "append reuses chunks" `Quick test_append_reuse;
    Alcotest.test_case "spill + fault under budget" `Quick test_spill;
    Alcotest.test_case "share gather/scatter" `Quick test_share_gather_scatter;
    Alcotest.test_case "shuffle_table values+tally" `Quick test_shuffle_table;
    Alcotest.test_case "sort values+tally" `Quick test_sort;
    Alcotest.test_case "tpch queries streamed" `Slow test_queries;
  ]

let () = Alcotest.run "orq_chunked" [ ("chunked", suite) ]
