(* Obliviousness tests — the security property §2.4 and Appendix C claim:
   every operator's observable behaviour (communication rounds, bytes,
   message counts, and physical output sizes) must be *identical* for any
   two inputs of the same shape, whatever the data distribution,
   selectivities, join hit-rates or group structure. A difference in any
   metered quantity would be a leak.

   Equality is checked on *structural transcripts* (Comm.transcript): the
   exact labeled event sequence, not aggregate totals — two traces that
   differ but happen to sum to the same (rounds, bits, messages) triple
   still fail. *)

open Orq_proto
open Orq_core
module Comm = Orq_net.Comm

(* Run [f] on a fresh context and return its structural transcript. *)
let trace kind f =
  let ctx = Ctx.create ~seed:123 kind in
  Comm.start_recording ctx.Ctx.comm;
  f ctx;
  let tr = Comm.transcript ctx.Ctx.comm in
  Alcotest.(check int) "no transcript overflow" 0
    (Comm.dropped_events ctx.Ctx.comm);
  Comm.stop_recording ctx.Ctx.comm;
  tr

let event_t = Alcotest.testable Comm.pp_event Comm.event_equal

let check_same name kind f1 f2 =
  let t1 = trace kind f1 and t2 = trace kind f2 in
  Alcotest.(check bool) (name ^ ": transcripts nonempty") true
    (Array.length t1 > 0);
  Alcotest.(check (array event_t))
    (name ^ " [" ^ Ctx.kind_label kind ^ "]")
    t1 t2

let for_all_kinds f = List.iter f Ctx.all_kinds

(* two same-shaped datasets with very different distributions *)
let data_a = [| 1; 1; 1; 1; 1; 1; 1; 1 |] (* all duplicates *)
let data_b = [| 8; 3; 7; 1; 5; 2; 6; 4 |] (* all distinct *)

let test_filter_oblivious () =
  for_all_kinds (fun kind ->
      check_same "filter trace independent of selectivity" kind
        (fun ctx ->
          let t = Table.create ctx "t" [ ("x", 8, data_a) ] in
          ignore (Dataflow.filter t Expr.(col "x" ==. const 1)) (* all pass *))
        (fun ctx ->
          let t = Table.create ctx "t" [ ("x", 8, data_b) ] in
          ignore (Dataflow.filter t Expr.(col "x" ==. const 99)) (* none *)))

let test_sort_oblivious () =
  for_all_kinds (fun kind ->
      check_same "radixsort trace independent of data" kind
        (fun ctx ->
          ignore (Orq_sort.Radixsort.sort ctx ~bits:8 (Mpc.share_b ctx data_a) []))
        (fun ctx ->
          ignore (Orq_sort.Radixsort.sort ctx ~bits:8 (Mpc.share_b ctx data_b) [])))

let test_aggregate_oblivious () =
  for_all_kinds (fun kind ->
      check_same "group-by trace independent of group structure" kind
        (fun ctx ->
          let t = Table.create ctx "t" [ ("g", 8, data_a); ("x", 8, data_b) ] in
          ignore
            (Dataflow.aggregate t ~keys:[ "g" ]
               ~aggs:[ { Dataflow.src = "x"; dst = "s"; fn = Dataflow.Sum } ]))
        (fun ctx ->
          let t = Table.create ctx "t" [ ("g", 8, data_b); ("x", 8, data_a) ] in
          ignore
            (Dataflow.aggregate t ~keys:[ "g" ]
               ~aggs:[ { Dataflow.src = "x"; dst = "s"; fn = Dataflow.Sum } ])))

let test_join_oblivious () =
  (* all keys match vs none match: identical trace AND identical physical
     output size — the crux of §1 (no join-size leakage) *)
  for_all_kinds (fun kind ->
      let sizes = ref [] in
      check_same "join trace independent of hit rate" kind
        (fun ctx ->
          let l =
            Table.create ctx "L"
              [ ("k", 8, [| 1; 2; 3; 4 |]); ("lv", 8, [| 1; 2; 3; 4 |]) ]
          in
          let r = Table.create ctx "R" [ ("k", 8, [| 1; 2; 3; 1 |]); ("rv", 8, data_a |> fun a -> Array.sub a 0 4) ] in
          let j = Dataflow.inner_join l r ~on:[ "k" ] ~copy:[ "lv" ] in
          sizes := Table.nrows j :: !sizes)
        (fun ctx ->
          let l =
            Table.create ctx "L"
              [ ("k", 8, [| 1; 2; 3; 4 |]); ("lv", 8, [| 9; 9; 9; 9 |]) ]
          in
          let r = Table.create ctx "R" [ ("k", 8, [| 7; 7; 7; 7 |]); ("rv", 8, Array.sub data_b 0 4) ] in
          let j = Dataflow.inner_join l r ~on:[ "k" ] ~copy:[ "lv" ] in
          sizes := Table.nrows j :: !sizes);
      match !sizes with
      | [ s1; s2 ] ->
          Alcotest.(check int) "physical output size data-independent" s1 s2
      | _ -> Alcotest.fail "arity")

let test_full_query_oblivious () =
  (* an end-to-end pipeline: filter + join + group-by + order-by + limit *)
  let pipeline ctx keys vals =
    let l = Table.create ctx "L" [ ("k", 8, [| 1; 2; 3 |]); ("lv", 8, [| 1; 2; 3 |]) ] in
    let r = Table.create ctx "R" [ ("k", 8, keys); ("x", 8, vals) ] in
    let r = Dataflow.filter r Expr.(col "x" >. const 2) in
    let j = Dataflow.inner_join l r ~on:[ "k" ] ~copy:[ "lv" ] in
    let a =
      Dataflow.aggregate j ~keys:[ "k" ]
        ~aggs:[ { Dataflow.src = "x"; dst = "s"; fn = Dataflow.Sum } ]
    in
    ignore (Dataflow.limit (Dataflow.order_by a [ ("s", Dataflow.Desc) ]) 2)
  in
  for_all_kinds (fun kind ->
      check_same "full pipeline trace data-independent" kind
        (fun ctx -> pipeline ctx [| 1; 1; 1; 1; 1 |] [| 9; 9; 9; 9; 9 |])
        (fun ctx -> pipeline ctx [| 5; 6; 7; 8; 9 |] [| 0; 1; 0; 1; 0 |]))

let test_shares_look_random () =
  (* each share vector alone must carry no signal: sharing a constant
     column yields non-constant, well-spread share vectors *)
  for_all_kinds (fun kind ->
      let ctx = Ctx.create ~seed:9 kind in
      let s = Mpc.share_a ctx (Array.make 256 42) in
      Array.iteri
        (fun k vk ->
          if k > 0 || ctx.Ctx.nvec > 1 then begin
            let distinct = List.length (List.sort_uniq compare (Array.to_list vk)) in
            Alcotest.(check bool)
              (Printf.sprintf "share vector %d spread" k)
              true (distinct > 200)
          end)
        s.Share.v)

let test_quicksort_adversarial_orders () =
  (* quicksort's per-run trace is a random variable whose *distribution*
     is input-independent (the shuffle-then-reveal argument, B.1). What we
     can check deterministically: adversarially ordered inputs (sorted,
     reversed, organ-pipe) all sort correctly, and the comparison work
     stays within the Appendix B.4 budget the triple generator assumes *)
  let n = 64 in
  let inputs =
    [
      Array.init n (fun i -> i);
      Array.init n (fun i -> n - 1 - i);
      Array.init n (fun i -> if i < n / 2 then 2 * i else 2 * (n - 1 - i) + 1);
    ]
  in
  for_all_kinds (fun kind ->
      List.iter
        (fun x ->
          let ctx = Ctx.create ~seed:77 kind in
          let y, _ =
            Orq_sort.Sortwrap.sort ctx ~algo:Orq_sort.Sortwrap.Quicksort
              ~dir:Orq_sort.Sortwrap.Asc ~w:8 (Mpc.share_b ctx x) []
          in
          let expect = Array.copy x in
          Array.sort compare expect;
          Alcotest.(check (array int)) "adversarial order sorts" expect
            (Share.reconstruct y);
          (* partitioning rounds bounded well below the B.4 comparison
             budget's implied depth *)
          let rounds = (Orq_net.Comm.snapshot ctx.Ctx.comm).Orq_net.Comm.t_rounds in
          Alcotest.(check bool) "round count sane" true
            (rounds < 100 * Orq_util.Ring.log2_ceil n))
        inputs)

let test_joinagg_oblivious () =
  (* the join-aggregation operator (§3.5): group sizes, aggregate values
     and key overlap must all be invisible in the structural transcript *)
  for_all_kinds (fun kind ->
      check_same "joinagg trace independent of groups and values" kind
        (fun ctx ->
          let l =
            Table.create ctx "L"
              [ ("k", 8, [| 1; 2; 3; 4 |]); ("lv", 8, [| 1; 2; 3; 4 |]) ]
          in
          let r =
            Table.create ctx "R"
              [ ("k", 8, [| 1; 1; 1; 1; 1; 1 |]); ("x", 8, [| 9; 9; 9; 9; 9; 9 |]) ]
          in
          ignore
            (Dataflow.inner_join l r ~on:[ "k" ] ~copy:[ "lv" ]
               ~aggs:
                 [
                   {
                     Dataflow.a_src = "x";
                     a_dst = "sx";
                     a_func = Aggnet.Sum;
                     a_width = 12;
                   };
                 ]))
        (fun ctx ->
          let l =
            Table.create ctx "L"
              [ ("k", 8, [| 5; 6; 7; 8 |]); ("lv", 8, [| 0; 0; 0; 0 |]) ]
          in
          let r =
            Table.create ctx "R"
              [ ("k", 8, [| 1; 2; 3; 4; 5; 6 |]); ("x", 8, [| 0; 1; 2; 3; 4; 5 |]) ]
          in
          ignore
            (Dataflow.inner_join l r ~on:[ "k" ] ~copy:[ "lv" ]
               ~aggs:
                 [
                   {
                     Dataflow.a_src = "x";
                     a_dst = "sx";
                     a_func = Aggnet.Sum;
                     a_width = 12;
                   };
                 ])))

let test_service_path_oblivious () =
  (* the query-service execution path: SQL text -> planner -> engine over
     the shared TPC-H catalog must produce the same transcript on the real
     database and on its shape twin (values replaced by a function of the
     row index) *)
  let sf = 0.0001 in
  let plain = Orq_workloads.Tpch_gen.generate ~seed:99 sf in
  let twin = Orq_analysis.Certify.twin_tpch plain in
  let sql =
    "SELECT n_regionkey, COUNT(*) AS c FROM nation GROUP BY n_regionkey"
  in
  let run db ctx =
    let mdb = Orq_workloads.Tpch_gen.share ctx db in
    ignore
      (Orq_planner.Sql.run (Orq_workloads.Tpch_gen.catalog mdb) sql)
  in
  for_all_kinds (fun kind ->
      check_same "service path trace equals shape-twin trace" kind (run plain)
        (run twin))

let suite =
  [
    Alcotest.test_case "filter selectivity hidden" `Quick test_filter_oblivious;
    Alcotest.test_case "sort data-independent" `Quick test_sort_oblivious;
    Alcotest.test_case "group structure hidden" `Quick test_aggregate_oblivious;
    Alcotest.test_case "join hit-rate and size hidden" `Quick
      test_join_oblivious;
    Alcotest.test_case "full pipeline trace equality" `Quick
      test_full_query_oblivious;
    Alcotest.test_case "individual shares look random" `Quick
      test_shares_look_random;
    Alcotest.test_case "quicksort on adversarial orders" `Quick
      test_quicksort_adversarial_orders;
    Alcotest.test_case "joinagg groups and values hidden" `Quick
      test_joinagg_oblivious;
    Alcotest.test_case "query-service path transcript equality" `Quick
      test_service_path_oblivious;
  ]

let () = Alcotest.run "orq_oblivious" [ ("oblivious", suite) ]
