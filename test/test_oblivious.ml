(* Obliviousness tests — the security property §2.4 and Appendix C claim:
   every operator's observable behaviour (communication rounds, bytes,
   message counts, and physical output sizes) must be *identical* for any
   two inputs of the same shape, whatever the data distribution,
   selectivities, join hit-rates or group structure. A difference in any
   metered quantity would be a leak. *)

open Orq_proto
open Orq_core

(* Run [f] on a fresh context and return its full communication trace. *)
let trace kind f =
  let ctx = Ctx.create ~seed:123 kind in
  f ctx;
  let t = Orq_net.Comm.snapshot ctx.Ctx.comm in
  (t.Orq_net.Comm.t_rounds, t.Orq_net.Comm.t_bits, t.Orq_net.Comm.t_messages)

let check_same name kind f1 f2 =
  let t1 = trace kind f1 and t2 = trace kind f2 in
  Alcotest.(check (triple int int int)) name t1 t2

let for_all_kinds f = List.iter f Ctx.all_kinds

(* two same-shaped datasets with very different distributions *)
let data_a = [| 1; 1; 1; 1; 1; 1; 1; 1 |] (* all duplicates *)
let data_b = [| 8; 3; 7; 1; 5; 2; 6; 4 |] (* all distinct *)

let test_filter_oblivious () =
  for_all_kinds (fun kind ->
      check_same "filter trace independent of selectivity" kind
        (fun ctx ->
          let t = Table.create ctx "t" [ ("x", 8, data_a) ] in
          ignore (Dataflow.filter t Expr.(col "x" ==. const 1)) (* all pass *))
        (fun ctx ->
          let t = Table.create ctx "t" [ ("x", 8, data_b) ] in
          ignore (Dataflow.filter t Expr.(col "x" ==. const 99)) (* none *)))

let test_sort_oblivious () =
  for_all_kinds (fun kind ->
      check_same "radixsort trace independent of data" kind
        (fun ctx ->
          ignore (Orq_sort.Radixsort.sort ctx ~bits:8 (Mpc.share_b ctx data_a) []))
        (fun ctx ->
          ignore (Orq_sort.Radixsort.sort ctx ~bits:8 (Mpc.share_b ctx data_b) [])))

let test_aggregate_oblivious () =
  for_all_kinds (fun kind ->
      check_same "group-by trace independent of group structure" kind
        (fun ctx ->
          let t = Table.create ctx "t" [ ("g", 8, data_a); ("x", 8, data_b) ] in
          ignore
            (Dataflow.aggregate t ~keys:[ "g" ]
               ~aggs:[ { Dataflow.src = "x"; dst = "s"; fn = Dataflow.Sum } ]))
        (fun ctx ->
          let t = Table.create ctx "t" [ ("g", 8, data_b); ("x", 8, data_a) ] in
          ignore
            (Dataflow.aggregate t ~keys:[ "g" ]
               ~aggs:[ { Dataflow.src = "x"; dst = "s"; fn = Dataflow.Sum } ])))

let test_join_oblivious () =
  (* all keys match vs none match: identical trace AND identical physical
     output size — the crux of §1 (no join-size leakage) *)
  for_all_kinds (fun kind ->
      let sizes = ref [] in
      check_same "join trace independent of hit rate" kind
        (fun ctx ->
          let l =
            Table.create ctx "L"
              [ ("k", 8, [| 1; 2; 3; 4 |]); ("lv", 8, [| 1; 2; 3; 4 |]) ]
          in
          let r = Table.create ctx "R" [ ("k", 8, [| 1; 2; 3; 1 |]); ("rv", 8, data_a |> fun a -> Array.sub a 0 4) ] in
          let j = Dataflow.inner_join l r ~on:[ "k" ] ~copy:[ "lv" ] in
          sizes := Table.nrows j :: !sizes)
        (fun ctx ->
          let l =
            Table.create ctx "L"
              [ ("k", 8, [| 1; 2; 3; 4 |]); ("lv", 8, [| 9; 9; 9; 9 |]) ]
          in
          let r = Table.create ctx "R" [ ("k", 8, [| 7; 7; 7; 7 |]); ("rv", 8, Array.sub data_b 0 4) ] in
          let j = Dataflow.inner_join l r ~on:[ "k" ] ~copy:[ "lv" ] in
          sizes := Table.nrows j :: !sizes);
      match !sizes with
      | [ s1; s2 ] ->
          Alcotest.(check int) "physical output size data-independent" s1 s2
      | _ -> Alcotest.fail "arity")

let test_full_query_oblivious () =
  (* an end-to-end pipeline: filter + join + group-by + order-by + limit *)
  let pipeline ctx keys vals =
    let l = Table.create ctx "L" [ ("k", 8, [| 1; 2; 3 |]); ("lv", 8, [| 1; 2; 3 |]) ] in
    let r = Table.create ctx "R" [ ("k", 8, keys); ("x", 8, vals) ] in
    let r = Dataflow.filter r Expr.(col "x" >. const 2) in
    let j = Dataflow.inner_join l r ~on:[ "k" ] ~copy:[ "lv" ] in
    let a =
      Dataflow.aggregate j ~keys:[ "k" ]
        ~aggs:[ { Dataflow.src = "x"; dst = "s"; fn = Dataflow.Sum } ]
    in
    ignore (Dataflow.limit (Dataflow.order_by a [ ("s", Dataflow.Desc) ]) 2)
  in
  for_all_kinds (fun kind ->
      check_same "full pipeline trace data-independent" kind
        (fun ctx -> pipeline ctx [| 1; 1; 1; 1; 1 |] [| 9; 9; 9; 9; 9 |])
        (fun ctx -> pipeline ctx [| 5; 6; 7; 8; 9 |] [| 0; 1; 0; 1; 0 |]))

let test_shares_look_random () =
  (* each share vector alone must carry no signal: sharing a constant
     column yields non-constant, well-spread share vectors *)
  for_all_kinds (fun kind ->
      let ctx = Ctx.create ~seed:9 kind in
      let s = Mpc.share_a ctx (Array.make 256 42) in
      Array.iteri
        (fun k vk ->
          if k > 0 || ctx.Ctx.nvec > 1 then begin
            let distinct = List.length (List.sort_uniq compare (Array.to_list vk)) in
            Alcotest.(check bool)
              (Printf.sprintf "share vector %d spread" k)
              true (distinct > 200)
          end)
        s.Share.v)

let test_quicksort_adversarial_orders () =
  (* quicksort's per-run trace is a random variable whose *distribution*
     is input-independent (the shuffle-then-reveal argument, B.1). What we
     can check deterministically: adversarially ordered inputs (sorted,
     reversed, organ-pipe) all sort correctly, and the comparison work
     stays within the Appendix B.4 budget the triple generator assumes *)
  let n = 64 in
  let inputs =
    [
      Array.init n (fun i -> i);
      Array.init n (fun i -> n - 1 - i);
      Array.init n (fun i -> if i < n / 2 then 2 * i else 2 * (n - 1 - i) + 1);
    ]
  in
  for_all_kinds (fun kind ->
      List.iter
        (fun x ->
          let ctx = Ctx.create ~seed:77 kind in
          let y, _ =
            Orq_sort.Sortwrap.sort ctx ~algo:Orq_sort.Sortwrap.Quicksort
              ~dir:Orq_sort.Sortwrap.Asc ~w:8 (Mpc.share_b ctx x) []
          in
          let expect = Array.copy x in
          Array.sort compare expect;
          Alcotest.(check (array int)) "adversarial order sorts" expect
            (Share.reconstruct y);
          (* partitioning rounds bounded well below the B.4 comparison
             budget's implied depth *)
          let rounds = (Orq_net.Comm.snapshot ctx.Ctx.comm).Orq_net.Comm.t_rounds in
          Alcotest.(check bool) "round count sane" true
            (rounds < 100 * Orq_util.Ring.log2_ceil n))
        inputs)

let suite =
  [
    Alcotest.test_case "filter selectivity hidden" `Quick test_filter_oblivious;
    Alcotest.test_case "sort data-independent" `Quick test_sort_oblivious;
    Alcotest.test_case "group structure hidden" `Quick test_aggregate_oblivious;
    Alcotest.test_case "join hit-rate and size hidden" `Quick
      test_join_oblivious;
    Alcotest.test_case "full pipeline trace equality" `Quick
      test_full_query_oblivious;
    Alcotest.test_case "individual shares look random" `Quick
      test_shares_look_random;
    Alcotest.test_case "quicksort on adversarial orders" `Quick
      test_quicksort_adversarial_orders;
  ]

let () = Alcotest.run "orq_oblivious" [ ("oblivious", suite) ]
