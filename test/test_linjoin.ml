(* Tests for the LINQ-style linear join and the cost-based physical join
   selection: the linear and quadratic operators must be value-identical
   to the sort-based join-aggregation and to the plaintext reference
   across all three protocols and every planner-reachable variant
   (inner / inner+copy / composite-key / semi / anti / duplicates), the
   selection must respect applicability and the ORQ_JOIN override, and
   on concrete join shapes the predicted-cheapest operator must be the
   measured-cheapest one. *)

open Orq_proto
open Orq_core
open Orq_plaintext
module Comm = Orq_net.Comm

let kinds = Ctx.all_kinds
let rows_t = Alcotest.(list (list int))
let for_all_kinds f = List.iter (fun k -> f (Ctx.create ~seed:51 k)) kinds

let with_mode m f =
  let old = Joincost.mode () in
  Joincost.set_mode m;
  Fun.protect ~finally:(fun () -> Joincost.set_mode old) f

let forced op f = with_mode (Joincost.Force op) f

(* ---------------- fixtures ---------------- *)

let customers ctx =
  Table.create ctx "customers"
    [
      ("CustKey", 8, [| 1; 2; 3; 4; 7 |]);
      ("Nation", 4, [| 3; 1; 3; 2; 1 |]);
    ]

let orders ctx =
  Table.create ctx "orders"
    [
      ("CustKey", 8, [| 2; 1; 2; 5; 3; 2 |]);
      ("Price", 16, [| 10; 50; 20; 99; 70; 30 |]);
    ]

let p_customers () =
  Ptable.of_cols
    [ ("CustKey", [| 1; 2; 3; 4; 7 |]); ("Nation", [| 3; 1; 3; 2; 1 |]) ]

let p_orders () =
  Ptable.of_cols
    [
      ("CustKey", [| 2; 1; 2; 5; 3; 2 |]);
      ("Price", [| 10; 50; 20; 99; 70; 30 |]);
    ]

let join_cols = [ "CustKey"; "Nation"; "Price" ]

(* ---------------- value identity: inner ---------------- *)

let test_linear_inner_vs_sort_and_plaintext () =
  for_all_kinds (fun ctx ->
      let reference =
        Ptable.rows_sorted
          (Ptable.inner_join (p_customers ()) (p_orders ()) ~on:[ "CustKey" ])
          join_cols
      in
      let run op =
        forced op (fun () ->
            let j =
              Dataflow.inner_join (customers ctx) (orders ctx)
                ~on:[ "CustKey" ] ~copy:[ "Nation" ]
            in
            Table.valid_rows_sorted j join_cols)
      in
      Alcotest.(check rows_t) "linear vs plaintext" reference (run Joincost.Linear);
      Alcotest.(check rows_t) "sort vs plaintext" reference (run Joincost.Sort);
      Alcotest.(check rows_t) "quad vs plaintext" reference (run Joincost.Quad))

let test_linear_inner_no_copy () =
  for_all_kinds (fun ctx ->
      let run op =
        forced op (fun () ->
            Table.valid_rows_sorted
              (Dataflow.inner_join (customers ctx) (orders ctx)
                 ~on:[ "CustKey" ])
              [ "CustKey"; "Price" ])
      in
      Alcotest.(check rows_t) "no-copy inner" (run Joincost.Sort)
        (run Joincost.Linear))

let test_linear_respects_validity () =
  for_all_kinds (fun ctx ->
      let run op =
        forced op (fun () ->
            let c =
              Dataflow.filter (customers ctx) Expr.(col "CustKey" <>. const 2)
            in
            let o =
              Dataflow.filter (orders ctx) Expr.(col "Price" <. const 70)
            in
            let j = Dataflow.inner_join c o ~on:[ "CustKey" ] ~copy:[ "Nation" ] in
            Alcotest.(check int) "physical |R| rows" 6 (Table.nrows j);
            Table.valid_rows_sorted j join_cols)
      in
      Alcotest.(check rows_t) "invalid rows never match"
        (run Joincost.Sort) (run Joincost.Linear))

let test_linear_composite_key () =
  for_all_kinds (fun ctx ->
      let l =
        Table.create ctx "l"
          [
            ("A", 6, [| 1; 1; 2; 3 |]);
            ("B", 5, [| 1; 2; 1; 9 |]);
            ("X", 8, [| 11; 12; 13; 14 |]);
          ]
      and r =
        Table.create ctx "r"
          [
            ("A", 6, [| 1; 1; 2; 2; 3; 1 |]);
            ("B", 5, [| 2; 1; 1; 2; 9; 1 |]);
            ("Y", 8, [| 1; 2; 3; 4; 5; 6 |]);
          ]
      in
      let run op =
        forced op (fun () ->
            Table.valid_rows_sorted
              (Dataflow.inner_join l r ~on:[ "A"; "B" ] ~copy:[ "X" ])
              [ "A"; "B"; "X"; "Y" ])
      in
      Alcotest.(check rows_t) "two-column key" (run Joincost.Sort)
        (run Joincost.Linear))

(* ---------------- value identity: semi / anti ---------------- *)

let test_linear_semi_anti () =
  for_all_kinds (fun ctx ->
      let run sel op =
        forced op (fun () ->
            Table.valid_rows_sorted
              (sel (customers ctx) (orders ctx) ~on:[ "CustKey" ])
              [ "CustKey"; "Nation" ])
      in
      let semi l r ~on = Dataflow.semi_join l r ~on
      and anti l r ~on = Dataflow.anti_join l r ~on in
      Alcotest.(check rows_t) "semi" (run semi Joincost.Sort)
        (run semi Joincost.Linear);
      Alcotest.(check rows_t) "anti" (run anti Joincost.Sort)
        (run anti Joincost.Linear))

let test_linear_semi_anti_duplicates () =
  for_all_kinds (fun ctx ->
      let l =
        Table.create ctx "l" [ ("K", 6, [| 1; 1; 2; 4; 4 |]) ]
      and r = Table.create ctx "r" [ ("K", 6, [| 1; 1; 3; 4 |]) ] in
      let run sel op =
        forced op (fun () ->
            Table.valid_rows_sorted (sel l r ~on:[ "K" ]) [ "K" ])
      in
      let semi l r ~on = Dataflow.semi_join l r ~on
      and anti l r ~on = Dataflow.anti_join l r ~on in
      Alcotest.(check rows_t) "semi, dup both sides" (run semi Joincost.Sort)
        (run semi Joincost.Linear);
      Alcotest.(check rows_t) "anti, dup both sides" (run anti Joincost.Sort)
        (run anti Joincost.Linear))

(* ---------------- applicability and override ---------------- *)

let test_forced_linear_falls_back_when_inapplicable () =
  let ctx = Ctx.create ~seed:51 Ctx.Sh_hm in
  forced Joincost.Linear (fun () ->
      Joincost.reset_log ();
      (* fused aggregations are out of the linear operator's class *)
      let j =
        Dataflow.inner_join (customers ctx) (orders ctx) ~on:[ "CustKey" ]
          ~aggs:
            [
              {
                Dataflow.a_src = "Price";
                a_dst = "Total";
                a_func = Orq_core.Aggnet.Sum;
                a_width = 20;
              };
            ]
      in
      ignore j;
      match Joincost.log () with
      | [ d ] ->
          Alcotest.(check string) "fell back to sort" "sort"
            (Joincost.op_label d.Joincost.jd_chosen);
          Alcotest.(check bool) "logged as forced" true d.Joincost.jd_forced
      | ds -> Alcotest.failf "expected 1 decision, got %d" (List.length ds))

let test_decision_log_and_auto_pick () =
  let ctx = Ctx.create ~seed:51 Ctx.Sh_hm in
  with_mode Joincost.Auto (fun () ->
      Joincost.reset_log ();
      let j =
        Dataflow.inner_join (customers ctx) (orders ctx) ~on:[ "CustKey" ]
          ~copy:[ "Nation" ]
      in
      ignore j;
      match Joincost.log () with
      | [ d ] ->
          Alcotest.(check bool) "not forced" false d.Joincost.jd_forced;
          Alcotest.(check bool) "all three candidates priced" true
            (List.length d.Joincost.jd_cands = 3);
          (* the logged choice is the cheapest candidate by modeled time *)
          let cheapest =
            List.fold_left
              (fun (bo, bs) (o, _, s) -> if s < bs then (o, s) else (bo, bs))
              (Joincost.Sort, infinity)
              d.Joincost.jd_cands
            |> fst
          in
          Alcotest.(check string) "chosen == predicted cheapest"
            (Joincost.op_label cheapest)
            (Joincost.op_label d.Joincost.jd_chosen)
      | ds -> Alcotest.failf "expected 1 decision, got %d" (List.length ds))

let test_mode_labels_and_cache_tag () =
  List.iter
    (fun (s, expect) ->
      match Joincost.mode_of_label s with
      | Some m -> Alcotest.(check string) s expect (Joincost.mode_label m)
      | None -> Alcotest.failf "mode_of_label %s" s)
    [ ("auto", "auto"); ("sort", "sort"); ("linear", "linear"); ("quad", "quad") ];
  Alcotest.(check bool) "bad label rejected" true
    (Joincost.mode_of_label "bogus" = None);
  with_mode (Joincost.Force Joincost.Linear) (fun () ->
      let tag = Joincost.cache_tag () in
      Alcotest.(check bool) "tag names the mode" true
        (String.length tag > 6 && String.sub tag 0 6 = "linear"))

(* ---------------- pick correctness ---------------- *)

(* On a concrete join shape, run every applicable operator forced,
   measure its real traffic, and check that the operator the cost model
   ranks cheapest is also the measured-cheapest one (under the same
   modeled network time, without the downstream surcharge — the inputs
   are compared operator-vs-operator on equal output semantics, so we
   bound the check to Sort vs Linear whose outputs are row-equivalent). *)
let test_predicted_cheapest_is_measured_cheapest () =
  for_all_kinds (fun ctx ->
      let n = 48 and m = 64 in
      let l =
        Table.create ctx "l"
          [
            ("K", 16, Array.init n (fun i -> i + 1));
            ("X", 8, Array.init n (fun i -> (i * 7) land 255));
          ]
      and r =
        Table.create ctx "r"
          [
            ("K", 16, Array.init m (fun i -> (i * 3 mod (2 * n)) + 1));
            ("Y", 8, Array.init m (fun i -> (i * 5) land 255));
          ]
      in
      let measure op =
        forced op (fun () ->
            let snap = Comm.snapshot ctx.Ctx.comm in
            let j = Dataflow.inner_join l r ~on:[ "K" ] ~copy:[ "X" ] in
            ignore (Table.valid_rows_sorted j [ "K" ]);
            Comm.since ctx.Ctx.comm snap)
      in
      let t_sort = measure Joincost.Sort
      and t_linear = measure Joincost.Linear in
      let measured_cheapest =
        if Joincost.seconds t_linear <= Joincost.seconds t_sort then
          Joincost.Linear
        else Joincost.Sort
      in
      let shape =
        {
          Joincost.j_n = n;
          j_m = m;
          j_key_w = [ 16 ];
          j_copy_w = [ 8 ];
          j_pay_w = [ 8 ];
          j_aggs = false;
          j_bounded = false;
          j_variant = Joincost.J_inner;
        }
      in
      let predicted = with_mode Joincost.Auto (fun () -> Joincost.choose ctx shape) in
      Alcotest.(check string)
        (Printf.sprintf "pick on %s" (Ctx.kind_label ctx.Ctx.kind))
        (Joincost.op_label measured_cheapest)
        (Joincost.op_label predicted);
      (* and the model agrees with the meter on which of the two is
         lighter in absolute traffic, not just modeled seconds *)
      Alcotest.(check bool) "linear measured lighter in bits" true
        (t_linear.Comm.t_bits < t_sort.Comm.t_bits);
      Alcotest.(check bool) "linear measured lighter in rounds" true
        (t_linear.Comm.t_rounds < t_sort.Comm.t_rounds))

let () =
  Alcotest.run "linjoin"
    [
      ( "identity",
        [
          Alcotest.test_case "inner vs sort+plaintext" `Quick
            test_linear_inner_vs_sort_and_plaintext;
          Alcotest.test_case "inner no copy" `Quick test_linear_inner_no_copy;
          Alcotest.test_case "validity" `Quick test_linear_respects_validity;
          Alcotest.test_case "composite key" `Quick test_linear_composite_key;
          Alcotest.test_case "semi+anti" `Quick test_linear_semi_anti;
          Alcotest.test_case "semi+anti duplicates" `Quick
            test_linear_semi_anti_duplicates;
        ] );
      ( "selection",
        [
          Alcotest.test_case "inapplicable fallback" `Quick
            test_forced_linear_falls_back_when_inapplicable;
          Alcotest.test_case "decision log + auto" `Quick
            test_decision_log_and_auto_pick;
          Alcotest.test_case "labels + cache tag" `Quick
            test_mode_labels_and_cache_tag;
          Alcotest.test_case "predicted == measured" `Quick
            test_predicted_cheapest_is_measured_cheapest;
        ] );
    ]
