(* Tests for the oblivious circuit layer: comparisons, adders, mux,
   conversions and the non-restoring division circuit — each checked against
   plaintext semantics under all three protocols. *)

open Orq_util
open Orq_proto
open Orq_circuits

let kinds = Ctx.all_kinds
let vec = Alcotest.(array int)

let for_all_kinds f = List.iter (fun k -> f (Ctx.create ~seed:11 k)) kinds

let small_gen ~w n =
  QCheck.Gen.(array_size (return n) (map (fun x -> x land Ring.mask w) int))

let arb_small ~w n = QCheck.make (small_gen ~w n)

(* ------------- comparisons ------------- *)

let test_eq_qcheck =
  QCheck.Test.make ~name:"eq circuit" ~count:25
    (QCheck.pair (arb_small ~w:16 13) (arb_small ~w:16 13))
    (fun (x, y) ->
      List.for_all
        (fun k ->
          let ctx = Ctx.create ~seed:3 k in
          (* force some equal pairs *)
          let y = Array.mapi (fun i v -> if i mod 3 = 0 then x.(i) else v) y in
          let r =
            Compare.eq ctx ~w:16 (Mpc.share_b ctx x) (Mpc.share_b ctx y)
            |> Share.reconstruct
          in
          Array.for_all2 (fun got (a, b) -> got = if a = b then 1 else 0)
            r
            (Array.map2 (fun a b -> (a, b)) x y))
        kinds)

let test_lt_qcheck =
  QCheck.Test.make ~name:"lt circuit (unsigned)" ~count:25
    (QCheck.pair (arb_small ~w:20 13) (arb_small ~w:20 13))
    (fun (x, y) ->
      List.for_all
        (fun k ->
          let ctx = Ctx.create ~seed:5 k in
          let r =
            Compare.lt ctx ~w:20 (Mpc.share_b ctx x) (Mpc.share_b ctx y)
            |> Share.reconstruct
          in
          Array.for_all2 (fun got (a, b) -> got = if a < b then 1 else 0)
            r
            (Array.map2 (fun a b -> (a, b)) x y))
        kinds)

let test_lt_odd_width () =
  (* non-power-of-two width exercises the padding blocks *)
  for_all_kinds (fun ctx ->
      let x = [| 0; 1; 17; 16; 30; 31; 5 |] in
      let y = [| 0; 2; 17; 17; 29; 0; 31 |] in
      let r =
        Compare.lt ctx ~w:5 (Mpc.share_b ctx x) (Mpc.share_b ctx y)
        |> Share.reconstruct
      in
      Alcotest.(check vec) "lt w=5" [| 0; 1; 0; 1; 0; 0; 1 |] r)

let test_lt_signed () =
  for_all_kinds (fun ctx ->
      let m = Ring.mask 8 in
      let enc v = v land m in
      let x = Array.map enc [| -3; -1; 5; -128; 127; 0 |] in
      let y = Array.map enc [| 2; -2; 5; 127; -128; 0 |] in
      let r =
        Compare.lt ~signed:true ctx ~w:8 (Mpc.share_b ctx x)
          (Mpc.share_b ctx y)
        |> Share.reconstruct
      in
      Alcotest.(check vec) "signed lt" [| 1; 0; 0; 1; 0; 0 |] r)

let test_le_ge_gt () =
  for_all_kinds (fun ctx ->
      let x = [| 1; 5; 9 |] and y = [| 5; 5; 5 |] in
      let sx = Mpc.share_b ctx x and sy = Mpc.share_b ctx y in
      Alcotest.(check vec) "le" [| 1; 1; 0 |]
        (Share.reconstruct (Compare.le ctx ~w:8 sx sy));
      Alcotest.(check vec) "ge" [| 0; 1; 1 |]
        (Share.reconstruct (Compare.ge ctx ~w:8 sx sy));
      Alcotest.(check vec) "gt" [| 0; 0; 1 |]
        (Share.reconstruct (Compare.gt ctx ~w:8 sx sy)))

let test_lt_lex () =
  for_all_kinds (fun ctx ->
      let k1 = [| 1; 1; 2; 2 |] and k2 = [| 7; 9; 3; 3 |] in
      let l1 = [| 1; 1; 2; 2 |] and l2 = [| 9; 7; 3; 4 |] in
      let r =
        Compare.lt_lex ctx
          [
            (Mpc.share_b ctx k1, Mpc.share_b ctx l1, 8);
            (Mpc.share_b ctx k2, Mpc.share_b ctx l2, 8);
          ]
        |> Share.reconstruct
      in
      Alcotest.(check vec) "lex" [| 1; 0; 0; 1 |] r)

let test_eq_composite () =
  for_all_kinds (fun ctx ->
      let a1 = [| 1; 1; 2 |] and a2 = [| 5; 5; 5 |] in
      let b1 = [| 1; 2; 2 |] and b2 = [| 5; 5; 6 |] in
      let r =
        Compare.eq_composite ctx
          [
            (Mpc.share_b ctx a1, Mpc.share_b ctx b1, 8);
            (Mpc.share_b ctx a2, Mpc.share_b ctx b2, 8);
          ]
        |> Share.reconstruct
      in
      Alcotest.(check vec) "composite eq" [| 1; 0; 0 |] r)

(* ------------- mux ------------- *)

let test_mux_b () =
  for_all_kinds (fun ctx ->
      let b = [| 0; 1; 0; 1 |] in
      let x = [| 10; 20; 30; 40 |] and y = [| 1; 2; 3; 4 |] in
      let r =
        Mux.mux_b ctx (Mpc.share_b ctx b) (Mpc.share_b ctx x)
          (Mpc.share_b ctx y)
        |> Share.reconstruct
      in
      Alcotest.(check vec) "mux_b" [| 10; 2; 30; 4 |] r)

let test_mux_b_many () =
  for_all_kinds (fun ctx ->
      let b = Mpc.share_b ctx [| 1; 0 |] in
      let before = Orq_net.Comm.snapshot ctx.Ctx.comm in
      let out =
        Mux.mux_b_many ctx b
          [
            (Mpc.share_b ctx [| 1; 2 |], Mpc.share_b ctx [| 8; 9 |]);
            (Mpc.share_b ctx [| 3; 4 |], Mpc.share_b ctx [| 6; 7 |]);
          ]
      in
      let tl = Orq_net.Comm.since ctx.Ctx.comm before in
      Alcotest.(check int) "one round for many columns" 1
        tl.Orq_net.Comm.t_rounds;
      match out with
      | [ c1; c2 ] ->
          Alcotest.(check vec) "col1" [| 8; 2 |] (Share.reconstruct c1);
          Alcotest.(check vec) "col2" [| 6; 4 |] (Share.reconstruct c2)
      | _ -> Alcotest.fail "arity")

let test_mux_a () =
  for_all_kinds (fun ctx ->
      let b = Mpc.share_a ctx [| 1; 0; 1 |] in
      let x = Mpc.share_a ctx [| 5; 5; 5 |] in
      let y = Mpc.share_a ctx [| 9; 9; 9 |] in
      Alcotest.(check vec) "mux_a" [| 9; 5; 9 |]
        (Share.reconstruct (Mux.mux_a ctx b x y)))

(* ------------- adder ------------- *)

let test_add_qcheck =
  QCheck.Test.make ~name:"KS adder" ~count:25
    (QCheck.pair (arb_small ~w:32 11) (arb_small ~w:32 11))
    (fun (x, y) ->
      List.for_all
        (fun k ->
          let ctx = Ctx.create ~seed:6 k in
          let r =
            Adder.add ctx ~w:32 (Mpc.share_b ctx x) (Mpc.share_b ctx y)
            |> Share.reconstruct
          in
          Array.for_all2 (fun got (a, b) -> got = (a + b) land Ring.mask 32)
            r
            (Array.map2 (fun a b -> (a, b)) x y))
        kinds)

let test_sub () =
  for_all_kinds (fun ctx ->
      let x = [| 10; 0; 100; 7 |] and y = [| 3; 1; 100; 9 |] in
      let r =
        Adder.sub ctx ~w:16 (Mpc.share_b ctx x) (Mpc.share_b ctx y)
        |> Share.reconstruct
      in
      let expect = Array.map2 (fun a b -> (a - b) land Ring.mask 16) x y in
      Alcotest.(check vec) "sub" expect r)

let test_add_pub () =
  for_all_kinds (fun ctx ->
      let x = [| 100; 200; 300 |] and c = [| 1; 2; 3 |] in
      let r =
        Adder.add_pub ctx ~w:16 (Mpc.share_b ctx x) c |> Share.reconstruct
      in
      Alcotest.(check vec) "add_pub" [| 101; 202; 303 |] r;
      let r2 =
        Adder.sub_pub_minuend ctx ~w:16 [| 10; 10; 10 |] (Mpc.share_b ctx c)
        |> Share.reconstruct
      in
      Alcotest.(check vec) "sub_pub_minuend" [| 9; 8; 7 |] r2;
      let r3 =
        Adder.sub_pub ctx ~w:16 (Mpc.share_b ctx x) c |> Share.reconstruct
      in
      Alcotest.(check vec) "sub_pub" [| 99; 198; 297 |] r3)

let test_neg () =
  for_all_kinds (fun ctx ->
      let x = [| 1; 0; 255 |] in
      let r = Adder.neg ctx ~w:8 (Mpc.share_b ctx x) |> Share.reconstruct in
      Alcotest.(check vec) "neg" [| 255; 0; 1 |] r)

(* ------------- conversions ------------- *)

let test_bit_b2a () =
  for_all_kinds (fun ctx ->
      let b = [| 0; 1; 1; 0; 1 |] in
      let r = Convert.bit_b2a ctx (Mpc.share_b ctx b) |> Share.reconstruct in
      Alcotest.(check vec) "bit b2a" b r)

let test_b2a_qcheck =
  QCheck.Test.make ~name:"b2a full width" ~count:20 (arb_small ~w:39 9)
    (fun x ->
      List.for_all
        (fun k ->
          let ctx = Ctx.create ~seed:8 k in
          let r =
            Convert.b2a ~w:40 ctx (Mpc.share_b ctx x) |> Share.reconstruct
          in
          Vec.equal r x)
        kinds)

let test_b2a_signed () =
  (* two's-complement interpretation: the top bit weighs negatively *)
  for_all_kinds (fun ctx ->
      let m = Ring.mask 8 in
      let x = [| -3 land m; 127; 128; 255 |] in
      let r =
        Convert.b2a ~w:8 ~signed:true ctx (Mpc.share_b ctx x)
        |> Share.reconstruct
      in
      Alcotest.(check vec) "signed b2a" [| -3; 127; -128; -1 |]
        (Array.map Ring.to_signed r);
      let u = Convert.b2a ~w:8 ctx (Mpc.share_b ctx x) |> Share.reconstruct in
      Alcotest.(check vec) "unsigned b2a (default)" [| 253; 127; 128; 255 |] u)

let test_a2b_qcheck =
  QCheck.Test.make ~name:"a2b full word" ~count:20 (arb_small ~w:62 9)
    (fun x ->
      List.for_all
        (fun k ->
          let ctx = Ctx.create ~seed:10 k in
          let r =
            Convert.a2b ~w:Ring.word_bits ctx (Mpc.share_a ctx x)
            |> Share.reconstruct
          in
          Vec.equal r x)
        kinds)

let test_a2b_narrow () =
  for_all_kinds (fun ctx ->
      let x = [| 3; 250; 17 |] in
      let r =
        Convert.a2b ~w:8 ctx (Mpc.share_a ctx x) |> Share.reconstruct
      in
      Alcotest.(check vec) "a2b w=8" x r)

let test_b2a_rounds () =
  (* the batched conversion must stay a single online round *)
  let ctx = Ctx.create Ctx.Sh_hm in
  let x = Mpc.share_b ctx [| 1; 2; 3; 4 |] in
  let before = Orq_net.Comm.snapshot ctx.Ctx.comm in
  ignore (Convert.b2a ~w:16 ctx x);
  let tl = Orq_net.Comm.since ctx.Ctx.comm before in
  Alcotest.(check int) "b2a single round" 1 tl.Orq_net.Comm.t_rounds

(* ------------- division ------------- *)

let test_div_known () =
  for_all_kinds (fun ctx ->
      let x = [| 7; 7; 5; 4; 2; 0; 100; 99 |] in
      let d = [| 3; 2; 3; 3; 3; 5; 10; 10 |] in
      let q, r =
        Divide.udiv ctx ~w:8 (Mpc.share_b ctx x) (Mpc.share_b ctx d)
      in
      Alcotest.(check vec) "quotients" [| 2; 3; 1; 1; 0; 0; 10; 9 |]
        (Share.reconstruct q);
      Alcotest.(check vec) "remainders" [| 1; 1; 2; 1; 2; 0; 0; 9 |]
        (Share.reconstruct r))

let test_div_qcheck =
  QCheck.Test.make ~name:"non-restoring division" ~count:20
    (QCheck.pair (arb_small ~w:16 7)
       (QCheck.make
          QCheck.Gen.(
            array_size (return 7) (map (fun x -> 1 + (x land 0xFFF)) int))))
    (fun (x, d) ->
      List.for_all
        (fun k ->
          let ctx = Ctx.create ~seed:12 k in
          let q, r =
            Divide.udiv ctx ~w:16 (Mpc.share_b ctx x) (Mpc.share_b ctx d)
          in
          let q = Share.reconstruct q and r = Share.reconstruct r in
          Array.for_all2
            (fun (qi, ri) (xi, di) -> qi = xi / di && ri = xi mod di)
            (Array.map2 (fun a b -> (a, b)) q r)
            (Array.map2 (fun a b -> (a, b)) x d))
        kinds)

let test_div_pub () =
  for_all_kinds (fun ctx ->
      let x = [| 1000; 12345; 77; 64 |] in
      let d = [| 7; 100; 11; 64 |] in
      let q, r = Divide.udiv_pub ctx ~w:16 (Mpc.share_b ctx x) d in
      let expect_q = Array.map2 (fun a b -> a / b) x d in
      let expect_r = Array.map2 (fun a b -> a mod b) x d in
      Alcotest.(check vec) "pub quotients" expect_q (Share.reconstruct q);
      Alcotest.(check vec) "pub remainders" expect_r (Share.reconstruct r))

let suite =
  [
    QCheck_alcotest.to_alcotest test_eq_qcheck;
    QCheck_alcotest.to_alcotest test_lt_qcheck;
    Alcotest.test_case "lt at odd width" `Quick test_lt_odd_width;
    Alcotest.test_case "lt signed" `Quick test_lt_signed;
    Alcotest.test_case "le/ge/gt" `Quick test_le_ge_gt;
    Alcotest.test_case "lexicographic lt" `Quick test_lt_lex;
    Alcotest.test_case "composite eq" `Quick test_eq_composite;
    Alcotest.test_case "mux_b" `Quick test_mux_b;
    Alcotest.test_case "mux_b_many (1 round)" `Quick test_mux_b_many;
    Alcotest.test_case "mux_a" `Quick test_mux_a;
    QCheck_alcotest.to_alcotest test_add_qcheck;
    Alcotest.test_case "sub" `Quick test_sub;
    Alcotest.test_case "add/sub with public operand" `Quick test_add_pub;
    Alcotest.test_case "neg" `Quick test_neg;
    Alcotest.test_case "bit b2a" `Quick test_bit_b2a;
    QCheck_alcotest.to_alcotest test_b2a_qcheck;
    Alcotest.test_case "b2a signed/unsigned" `Quick test_b2a_signed;
    QCheck_alcotest.to_alcotest test_a2b_qcheck;
    Alcotest.test_case "a2b narrow width" `Quick test_a2b_narrow;
    Alcotest.test_case "b2a is one round" `Quick test_b2a_rounds;
    Alcotest.test_case "division known cases" `Quick test_div_known;
    QCheck_alcotest.to_alcotest test_div_qcheck;
    Alcotest.test_case "division by public divisor" `Quick test_div_pub;
  ]

let () = Alcotest.run "orq_circuits" [ ("circuits", suite) ]
